package pops

import (
	"container/list"
	"sync"

	"pops/internal/perms"
)

// CacheStats is a snapshot of a Planner's fingerprint plan cache counters
// (see WithPlanCache). Hits + Misses is the total number of lookups; a
// lookup that finds the fingerprint but fails the equality check (a 64-bit
// collision) counts as a miss.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// planCache memoizes *Plan results keyed by the permutation fingerprint,
// with an LRU bound on live entries. Because the key is a 64-bit digest,
// every hit re-verifies the stored permutation for equality before the plan
// is trusted; a fingerprint collision therefore degrades to a miss (the
// colliding entry is overwritten), never to a wrong plan.
//
// Cached *Plans are shared: a hit returns the same pointer that an earlier
// call produced, so callers must treat plans as immutable — which the rest
// of the API already assumes (Plan methods only read).
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*list.Element // fingerprint -> *cacheEntry element
	lru     list.List                // front = most recently used
	stats   CacheStats
}

// cacheEntry is one memoized plan. pi is the cache's own copy of the
// permutation, kept for the equality check on hits: under WithPlanNoCopy
// plan.Pi aliases caller memory, which the cache must not depend on.
type cacheEntry struct {
	fp   uint64
	pi   []int
	plan *Plan
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		entries: make(map[uint64]*list.Element, capacity),
		stats:   CacheStats{Capacity: capacity},
	}
}

// get returns the memoized plan for pi, if any, and records the hit or miss.
func (c *planCache) get(fp uint64, pi []int) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fp]; ok {
		e := el.Value.(*cacheEntry)
		if perms.Equal(e.pi, pi) {
			c.lru.MoveToFront(el)
			c.stats.Hits++
			return e.plan, true
		}
	}
	c.stats.Misses++
	return nil, false
}

// put memoizes plan under fp, snapshotting pi for hit-time verification and
// evicting the least recently used entry when the cache is full. A
// same-fingerprint entry (collision, or a racing insert of the same
// permutation) is overwritten in place.
func (c *planCache) put(fp uint64, pi []int, plan *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fp]; ok {
		e := el.Value.(*cacheEntry)
		e.pi = append(e.pi[:0], pi...)
		e.plan = plan
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.cap {
		back := c.lru.Back()
		delete(c.entries, back.Value.(*cacheEntry).fp)
		c.lru.Remove(back)
		c.stats.Evictions++
	}
	e := &cacheEntry{fp: fp, pi: append([]int(nil), pi...), plan: plan}
	c.entries[fp] = c.lru.PushFront(e)
}

// snapshot returns the current counters.
func (c *planCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}
