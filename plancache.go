package pops

import (
	"container/list"
	"sync"

	"pops/internal/perms"
)

// CacheStats is a snapshot of a Planner's workload plan cache counters
// (see WithPlanCache). Hits + Misses is the total number of lookups; a
// lookup that finds the key but fails the equality check (a 64-bit
// collision) counts as a miss.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// planCache memoizes *Plan results keyed by the workload cache key — the
// workload-kind tag mixed into the content fingerprint — with an LRU bound
// on live entries. Because the key is a 64-bit digest, every hit re-verifies
// the stored workload identity (kind plus the flattened content) for
// equality before the plan is trusted; a fingerprint collision therefore
// degrades to a miss (the colliding entry is overwritten), never to a wrong
// plan.
//
// Cached *Plans are shared: a hit returns the same pointer that an earlier
// call produced, so callers must treat plans as immutable — which the rest
// of the API already assumes (Plan methods only read).
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*list.Element // cache key -> *cacheEntry element
	lru     list.List                // front = most recently used
	stats   CacheStats
}

// cacheEntry is one memoized plan. ident is the cache's own copy of the
// workload's flattened identity (the permutation itself, or the src/dst
// pairs of an h-relation), kept for the equality check on hits: under
// WithPlanNoCopy plan.Pi aliases caller memory, which the cache must not
// depend on.
type cacheEntry struct {
	key   uint64
	kind  uint8
	ident []int
	plan  *Plan
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		entries: make(map[uint64]*list.Element, capacity),
		stats:   CacheStats{Capacity: capacity},
	}
}

// get returns the memoized plan for the workload identified by (key, kind,
// ident), if any, and records the hit or miss.
func (c *planCache) get(key uint64, kind uint8, ident []int) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.kind == kind && perms.Equal(e.ident, ident) {
			c.lru.MoveToFront(el)
			c.stats.Hits++
			return e.plan, true
		}
	}
	c.stats.Misses++
	return nil, false
}

// put memoizes plan under key, snapshotting ident for hit-time verification
// and evicting the least recently used entry when the cache is full. A
// same-key entry (collision, or a racing insert of the same workload) is
// overwritten in place.
func (c *planCache) put(key uint64, kind uint8, ident []int, plan *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.kind = kind
		e.ident = append(e.ident[:0], ident...)
		e.plan = plan
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.cap {
		back := c.lru.Back()
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.lru.Remove(back)
		c.stats.Evictions++
	}
	e := &cacheEntry{key: key, kind: kind, ident: append([]int(nil), ident...), plan: plan}
	c.entries[key] = c.lru.PushFront(e)
}

// snapshot returns the current counters.
func (c *planCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}
