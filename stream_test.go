package pops

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// collectStream fully drains a stream via Next and returns its fragments.
func collectStream(t *testing.T, ps *PlanStream) []StreamedSlot {
	t.Helper()
	var frags []StreamedSlot
	for {
		frag, ok := ps.Next()
		if !ok {
			break
		}
		frags = append(frags, frag)
	}
	if err := ps.Err(); err != nil {
		t.Fatal(err)
	}
	return frags
}

// plansEqual compares two plans field by field, schedules rendered to their
// canonical text so a divergence prints usefully.
func plansEqual(t *testing.T, got, want *Plan, context string) {
	t.Helper()
	if !reflect.DeepEqual(got.Pi, want.Pi) || !reflect.DeepEqual(got.Colors, want.Colors) ||
		got.Rounds != want.Rounds || got.Strategy != want.Strategy || got.Net != want.Net {
		t.Fatalf("%s: plan metadata diverges", context)
	}
	var g, w bytes.Buffer
	if err := got.Schedule().Format(&g); err != nil {
		t.Fatal(err)
	}
	if err := want.Schedule().Format(&w); err != nil {
		t.Fatal(err)
	}
	if g.String() != w.String() {
		t.Fatalf("%s: schedules diverge.\nstream:\n%s\nroute:\n%s", context, g.String(), w.String())
	}
}

// TestRouteStreamCollectEqualsRoute pins the headline contract: for every
// shape and seed, RouteStream(pi).Collect() is slot-for-slot identical to
// Route(pi).
func TestRouteStreamCollectEqualsRoute(t *testing.T) {
	for _, s := range []struct{ d, g int }{{1, 5}, {2, 2}, {3, 3}, {2, 8}, {8, 4}, {4, 16}, {12, 8}} {
		p, err := NewPlanner(s.d, s.g)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 4; seed++ {
			pi := RandomPermutation(s.d*s.g, rand.New(rand.NewSource(seed)))
			want, err := p.Route(pi)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := p.RouteStream(pi)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ps.Collect()
			if err != nil {
				t.Fatal(err)
			}
			plansEqual(t, got, want, "collect-vs-route")

			// Draining fragment by fragment then reading the plan must give
			// the same result as Collect.
			ps2, err := p.RouteStream(pi)
			if err != nil {
				t.Fatal(err)
			}
			frags := collectStream(t, ps2)
			if len(frags) != ps2.FragmentCount() {
				t.Fatalf("d=%d g=%d: %d fragments, want %d", s.d, s.g, len(frags), ps2.FragmentCount())
			}
			got2, err := ps2.Collect()
			if err != nil {
				t.Fatal(err)
			}
			plansEqual(t, got2, want, "drain-vs-route")
		}
	}
}

// TestRouteStreamCollectEqualsRouteQuick is the randomized property form:
// random (d, g, pi) triples, one planner cache across permutations.
func TestRouteStreamCollectEqualsRouteQuick(t *testing.T) {
	f := func(dSeed, gSeed uint8, seed int64) bool {
		d := int(dSeed)%8 + 1
		g := int(gSeed)%8 + 1
		p, err := NewPlanner(d, g)
		if err != nil {
			return false
		}
		pi := RandomPermutation(d*g, rand.New(rand.NewSource(seed)))
		want, err := p.Route(pi)
		if err != nil {
			return false
		}
		ps, err := p.RouteStream(pi)
		if err != nil {
			return false
		}
		got, err := ps.Collect()
		if err != nil {
			return false
		}
		var gb, wb bytes.Buffer
		if got.Schedule().Format(&gb) != nil || want.Schedule().Format(&wb) != nil {
			return false
		}
		return gb.String() == wb.String() &&
			reflect.DeepEqual(got.Colors, want.Colors) && reflect.DeepEqual(got.Pi, want.Pi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// FuzzRouteStreamCollect is the native-fuzzer form of the equivalence
// property: for fuzzer-chosen shapes, backends and permutation seeds,
// RouteStream.Collect must reproduce Route slot for slot.
func FuzzRouteStreamCollect(f *testing.F) {
	f.Add(uint8(2), uint8(4), uint8(0), int64(1))
	f.Add(uint8(4), uint8(2), uint8(1), int64(2))
	f.Add(uint8(1), uint8(6), uint8(0), int64(3))
	f.Add(uint8(3), uint8(3), uint8(2), int64(4))
	f.Fuzz(func(t *testing.T, dSeed, gSeed, algoSeed uint8, seed int64) {
		d := int(dSeed)%8 + 1
		g := int(gSeed)%8 + 1
		algo := []Algorithm{RepeatedMatching, EulerSplitDC, Insertion}[int(algoSeed)%3]
		p, err := NewPlanner(d, g, WithAlgorithm(algo))
		if err != nil {
			t.Fatal(err)
		}
		pi := RandomPermutation(d*g, rand.New(rand.NewSource(seed)))
		want, err := p.Route(pi)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := p.RouteStream(pi)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ps.Collect()
		if err != nil {
			t.Fatal(err)
		}
		plansEqual(t, got, want, fmt.Sprintf("fuzz d=%d g=%d algo=%v", d, g, algo))
	})
}

// TestRouteStreamConcurrentWithRoute interleaves a slow fragment-by-fragment
// stream consumer with concurrent Route and RouteStream traffic on the same
// Planner — the -race test of the issue. Results must be independent.
func TestRouteStreamConcurrentWithRoute(t *testing.T) {
	const d, g = 6, 8
	p, err := NewPlanner(d, g, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	streamPi := RandomPermutation(d*g, rng)
	want, err := p.Route(streamPi)
	if err != nil {
		t.Fatal(err)
	}

	ps, err := p.RouteStream(streamPi)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		pi := RandomPermutation(d*g, rand.New(rand.NewSource(int64(100+w))))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				plan, err := p.Route(pi)
				if err != nil {
					t.Errorf("concurrent route: %v", err)
					return
				}
				if plan.SlotCount() != OptimalSlots(d, g) {
					t.Errorf("concurrent route: %d slots", plan.SlotCount())
					return
				}
			}
		}()
	}
	// Consume the stream while the routers hammer the planner.
	frags := 0
	for {
		_, ok := ps.Next()
		if !ok {
			break
		}
		frags++
	}
	if err := ps.Err(); err != nil {
		t.Fatal(err)
	}
	got, err := ps.Collect()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	plansEqual(t, got, want, "stream-under-concurrency")
	if frags != ps.FragmentCount() {
		t.Fatalf("stream emitted %d of %d fragments", frags, ps.FragmentCount())
	}
}

// TestRouteStreamCacheHit pins the cache short-circuit: a second stream of
// the same permutation replays the memoized plan (whole-slot fragments, no
// replanning) and reports Cached.
func TestRouteStreamCacheHit(t *testing.T) {
	const d, g = 4, 8
	p, err := NewPlanner(d, g, WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	pi := VectorReversal(d * g)
	ps, err := p.RouteStream(pi)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Cached() {
		t.Fatal("first stream claims a cache hit")
	}
	first, err := ps.Collect()
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := p.RouteStream(pi)
	if err != nil {
		t.Fatal(err)
	}
	if !ps2.Cached() {
		t.Fatal("second stream missed the cache")
	}
	frags := collectStream(t, ps2)
	if len(frags) != first.SlotCount() {
		t.Fatalf("cached stream emitted %d fragments, want %d whole slots", len(frags), first.SlotCount())
	}
	for i, frag := range frags {
		if frag.Slot != i || !frag.Final || frag.Color != -1 {
			t.Fatalf("cached fragment %d = %+v, want whole slot %d", i, frag, i)
		}
	}
	second, err := ps2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatal("cached stream did not return the memoized plan pointer")
	}
	// A stream-built plan must also serve Route hits.
	if _, ok := p.CachedPlan(pi); !ok {
		t.Fatal("collected stream plan was not memoized")
	}
}

// TestRouteStreamVerifyOnDrainedCollect pins the WithVerify contract on
// the Next-drain path: the plan is not memoized while unverified, and the
// Collect that follows the drain replays the schedule and then caches it.
func TestRouteStreamVerifyOnDrainedCollect(t *testing.T) {
	const d, g = 4, 8
	p, err := NewPlanner(d, g, WithVerify(true), WithPlanCache(4))
	if err != nil {
		t.Fatal(err)
	}
	pi := VectorReversal(d * g)
	ps, err := p.RouteStream(pi)
	if err != nil {
		t.Fatal(err)
	}
	collectStream(t, ps) // drain via Next: no verification has run yet
	if _, ok := p.CachedPlan(pi); ok {
		t.Fatal("unverified drained plan was memoized under WithVerify")
	}
	plan, err := ps.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("no plan from post-drain Collect")
	}
	if _, ok := p.CachedPlan(pi); !ok {
		t.Fatal("verified plan was not memoized after Collect")
	}
}

// TestRouteStreamCloseReleasesWorker pins the ownership contract: an
// abandoned stream returns its worker planner to the free list, so a
// single-worker planner stays usable.
func TestRouteStreamCloseReleasesWorker(t *testing.T) {
	const d, g = 4, 4
	p, err := NewPlanner(d, g, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	pi := RandomPermutation(d*g, rand.New(rand.NewSource(13)))
	for i := 0; i < 3; i++ {
		ps, err := p.RouteStream(pi)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := ps.Next(); !ok {
			t.Fatal("no first fragment")
		}
		ps.Close() // abandon mid-stream
		if _, ok := ps.Next(); ok {
			t.Fatal("closed stream still yields fragments")
		}
		// Collect on an abandoned stream must refuse: its worker is back in
		// the pool and may already be planning for someone else.
		if plan, err := ps.Collect(); err == nil || plan != nil {
			t.Fatalf("Collect after Close returned (%v, %v), want error", plan, err)
		}
	}
	if len(p.free) != 1 {
		t.Fatalf("free list holds %d workers after closes, want 1", len(p.free))
	}
	// The recycled worker must still plan correctly.
	plan, err := p.Route(pi)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SlotCount() != OptimalSlots(d, g) {
		t.Fatalf("recycled worker produced %d slots", plan.SlotCount())
	}
}

// TestRouteStreamAllocBudget keeps the streaming path inside the batch
// path's allocation budget: a full RouteStream + drain cycle on a warmed
// planner must not allocate more than Route plus the stream bookkeeping.
func TestRouteStreamAllocBudget(t *testing.T) {
	const d, g = 8, 8
	p, err := NewPlanner(d, g, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	pi := RandomPermutation(d*g, rand.New(rand.NewSource(17)))
	drain := func() {
		ps, err := p.RouteStream(pi)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ps.Collect(); err != nil {
			t.Fatal(err)
		}
	}
	drain() // warm the worker free list
	route := testing.AllocsPerRun(20, func() {
		if _, err := p.Route(pi); err != nil {
			t.Fatal(err)
		}
	})
	stream := testing.AllocsPerRun(20, drain)
	// Route's steady state is 9 allocs/op (see BENCH baselines); the stream
	// adds only its fixed handles: the public and core stream structs and
	// the edgecolor stream handle.
	if stream > route+4 {
		t.Errorf("RouteStream+Collect allocates %.1f/op vs Route's %.1f/op (budget +4)", stream, route)
	}
}
