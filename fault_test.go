package pops

import (
	"context"
	"errors"
	"math/bits"
	"math/rand"
	"testing"

	"pops/internal/popsnet"
)

// assertFaultFree replays plan's schedule on the fault-injected simulator and
// scans every send against the compiled fault set: full delivery of pi, zero
// dead-coupler use.
func assertFaultFree(t *testing.T, plan *Plan, pi []int, fs FaultSet) *popsnet.FaultyNetwork {
	t.Helper()
	fn, err := fs.Compile(plan.Net)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if _, err := popsnet.VerifyPermutationRoutedFaulty(plan.Schedule(), pi, fn); err != nil {
		t.Fatalf("fault replay: %v", err)
	}
	for i, slot := range plan.Schedule().Slots {
		for _, snd := range slot.Sends {
			if fn.Dead(snd.DestGroup, plan.Net.Group(snd.Src)) {
				t.Fatalf("slot %d drives dead coupler c(%d,%d)", i, snd.DestGroup, plan.Net.Group(snd.Src))
			}
		}
	}
	return fn
}

// TestPlanCacheFaultSetKeys pins the cache-identity contract of the fault
// workload: the fault set is part of the key (same pi under different faults
// must not collide), spellings of one fault set canonicalize onto one entry,
// and the empty set lives under its own key next to the plain permutation.
func TestPlanCacheFaultSetKeys(t *testing.T) {
	ctx := context.Background()
	const d, g = 3, 3
	p, err := NewPlanner(d, g, WithPlanCache(16))
	if err != nil {
		t.Fatal(err)
	}
	pi := RandomPermutation(d*g, rand.New(rand.NewSource(42)))
	fsA := FaultSet{Couplers: []Coupler{{B: 0, A: 1}}}
	fsB := FaultSet{Couplers: []Coupler{{B: 1, A: 0}}}

	planA, cached, err := p.ExecuteCached(ctx, FaultyPermutation(pi, fsA))
	if err != nil || cached {
		t.Fatalf("first faulty plan: cached=%v err=%v", cached, err)
	}
	assertFaultFree(t, planA, pi, fsA)

	// Same pi, different fault set: a distinct plan, never a cache hit.
	if _, ok := p.CachedWorkload(FaultyPermutation(pi, fsB)); ok {
		t.Fatal("fault set B hit fault set A's cache entry")
	}
	planB, cached, err := p.ExecuteCached(ctx, FaultyPermutation(pi, fsB))
	if err != nil || cached || planB == planA {
		t.Fatalf("fault set B: cached=%v same=%v err=%v", cached, planB == planA, err)
	}
	assertFaultFree(t, planB, pi, fsB)

	// Replays hit, and a non-canonical spelling (duplicates, unsorted) of
	// fsA resolves to the same entry: construction canonicalizes.
	got, cached, err := p.ExecuteCached(ctx, FaultyPermutation(pi, fsA))
	if err != nil || !cached || got != planA {
		t.Fatalf("fsA replay: cached=%v same=%v err=%v", cached, got == planA, err)
	}
	messy := FaultSet{Couplers: []Coupler{{B: 0, A: 1}, {B: 0, A: 1}}}
	got, cached, err = p.ExecuteCached(ctx, FaultyPermutation(pi, messy))
	if err != nil || !cached || got != planA {
		t.Fatalf("non-canonical spelling: cached=%v same=%v err=%v", cached, got == planA, err)
	}

	// The empty fault set delegates to the normal planner but is keyed as its
	// own workload: it neither hits nor pollutes the plain permutation entry.
	planPerm, cached, err := p.ExecuteCached(ctx, Permutation(pi))
	if err != nil || cached {
		t.Fatalf("plain permutation: cached=%v err=%v", cached, err)
	}
	if _, ok := p.CachedWorkload(FaultyPermutation(pi, FaultSet{})); ok {
		t.Fatal("empty-fault workload aliased the plain permutation entry")
	}
	planEmpty, cached, err := p.ExecuteCached(ctx, FaultyPermutation(pi, FaultSet{}))
	if err != nil || cached {
		t.Fatalf("empty-fault plan: cached=%v err=%v", cached, err)
	}
	schedulesEqual(t, planEmpty.Schedule(), planPerm.Schedule(), "empty-fault-vs-permutation")
	if planEmpty.Strategy != StrategyTheoremTwo {
		t.Fatalf("empty-fault strategy = %q, want %q", planEmpty.Strategy, StrategyTheoremTwo)
	}
}

// TestFaultyPermutationStream pins the streaming form: fault plans are
// materialized at admission and replayed as whole-slot fragments that
// reassemble the batch-identical schedule.
func TestFaultyPermutationStream(t *testing.T) {
	ctx := context.Background()
	const d, g = 2, 4
	p, err := NewPlanner(d, g)
	if err != nil {
		t.Fatal(err)
	}
	pi := RandomPermutation(d*g, rand.New(rand.NewSource(9)))
	fs := FaultSet{Couplers: []Coupler{{B: 2, A: 1}, {B: 0, A: 3}}}
	batch, err := p.Execute(ctx, FaultyPermutation(pi, fs))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := p.ExecuteStream(ctx, FaultyPermutation(pi, fs))
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.Strategy(); got != batch.Strategy {
		t.Fatalf("stream strategy = %q, want %q", got, batch.Strategy)
	}
	count := 0
	for {
		frag, ok := ps.Next()
		if !ok {
			break
		}
		if frag.Color != -1 || !frag.Final {
			t.Fatalf("fault stream fragment %+v is not a whole slot", frag)
		}
		count++
	}
	streamed, err := ps.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if count != batch.SlotCount() {
		t.Fatalf("stream emitted %d fragments, want %d whole slots", count, batch.SlotCount())
	}
	schedulesEqual(t, streamed.Schedule(), batch.Schedule(), "fault stream-vs-batch")
}

// FuzzFaultyPermutation is the end-to-end property: for fuzzer-chosen shapes,
// permutations and fault sets, every plan must deliver pi on the
// fault-injected simulator without driving a dead coupler — or fail with the
// typed unroutable verdict — and an empty fault set must reproduce the normal
// Theorem 2 plan byte for byte.
func FuzzFaultyPermutation(f *testing.F) {
	f.Add(uint8(2), uint8(2), int64(1), uint64(0x8421), uint64(0))
	f.Add(uint8(3), uint8(4), int64(7), uint64(0xdeadbeefcafe), uint64(0))
	f.Add(uint8(1), uint8(5), int64(3), uint64(0x1085), uint64(0))
	f.Add(uint8(4), uint8(3), int64(11), uint64(0), uint64(0x1f2))
	f.Fuzz(func(t *testing.T, dSeed, gSeed uint8, seed int64, faultBits, groupBits uint64) {
		d := int(dSeed)%5 + 1
		g := int(gSeed)%5 + 1
		p, err := NewPlanner(d, g)
		if err != nil {
			t.Fatal(err)
		}
		pi := RandomPermutation(d*g, rand.New(rand.NewSource(seed)))
		// Two rotated copies ANDed give ~25% dead-coupler density from one
		// fuzzed word; a rare groupBits pattern adds a dead group, whose
		// plans must come back as typed unroutable verdicts.
		mask := faultBits & bits.RotateLeft64(faultBits, 17)
		var fs FaultSet
		for b := 0; b < g; b++ {
			for a := 0; a < g; a++ {
				if mask>>(uint(b*g+a)%64)&1 == 1 {
					fs.Couplers = append(fs.Couplers, Coupler{B: b, A: a})
				}
			}
		}
		deadGroup := groupBits&0xf == 0xf
		if deadGroup {
			fs.Groups = []int{int(groupBits>>4) % g}
		}

		plan, err := p.Execute(context.Background(), FaultyPermutation(pi, fs))
		if err != nil {
			var ue *UnroutableError
			if !errors.As(err, &ue) {
				t.Fatalf("POPS(%d,%d): %v", d, g, err)
			}
			if len(fs.Couplers) == 0 && !deadGroup {
				t.Fatal("unroutable verdict for an empty fault set")
			}
			return
		}
		if deadGroup {
			t.Fatalf("POPS(%d,%d): a dead group severs every permutation, but planning succeeded", d, g)
		}
		fn := assertFaultFree(t, plan, pi, fs)
		if fn.DeadCount() == 0 {
			want, err := p.Execute(context.Background(), Permutation(pi))
			if err != nil {
				t.Fatal(err)
			}
			schedulesEqual(t, plan.Schedule(), want.Schedule(), "empty-fault fuzz")
			if plan.Strategy != want.Strategy {
				t.Fatalf("empty-fault strategy = %q, want %q", plan.Strategy, want.Strategy)
			}
		} else if plan.Strategy != StrategyFaulty {
			t.Fatalf("fault plan strategy = %q, want %q", plan.Strategy, StrategyFaulty)
		}
	})
}

// seededFaults is the deterministic dead set the fault benchmarks and the
// slot-bound pin share: up to four distinct dead couplers drawn from rng.
func seededFaults(g int, rng *rand.Rand) FaultSet {
	k := 4
	if g < k {
		k = g
	}
	var fs FaultSet
	for i := 0; i < 4*k && len(fs.Canonical().Couplers) < k; i++ {
		fs.Couplers = append(fs.Couplers, Coupler{B: rng.Intn(g), A: rng.Intn(g)})
	}
	return fs.Canonical()
}

// faultRoundFloor is the structural lower bound on routing rounds under a
// fault set: a dead coupler c(b,a) removes relay b from every edge leaving
// group a and removes source a from every edge entering group b, so a group
// with only k alive out-relays (or in-relays) needs at least ceil(d/k)
// rounds for its d outgoing (incoming) packets no matter how they are
// colored. The floor is the max of that over all groups, and at least
// ceil(d/g) (the fault-free Theorem 2 round count).
func faultRoundFloor(d, g int, fs FaultSet) int {
	outDead := make([]int, g)
	inDead := make([]int, g)
	for _, c := range fs.Canonical().Couplers {
		outDead[c.A]++
		inDead[c.B]++
	}
	floor := (d + g - 1) / g
	for x := 0; x < g; x++ {
		for _, dead := range []int{outDead[x], inDead[x]} {
			if alive := g - dead; alive > 0 {
				if r := (d + alive - 1) / alive; r > floor {
					floor = r
				}
			}
		}
	}
	return floor
}

// TestFaultyPlanSlotBound pins the degradation budget on the benchmark
// shapes (the setting BENCH_2026-08-08_faults.json records): under the
// seeded dead sets, every repaired plan delivers within
//
//	max(OptimalSlots(d, g), 2*faultRoundFloor) + |groups touched|
//
// slots. For d <= g shapes the floor equals ceil(d/g) and this is the plain
// OptimalSlots + touched budget; for d >> g a dense dead column can leave a
// group a single alive relay, and the floor — not the fault-free optimum —
// is what any planner must pay (e.g. POPS(16,4) with 3 of group 3's 4
// transmit couplers dead forces 16 rounds; the repair hits that exactly).
func TestFaultyPlanSlotBound(t *testing.T) {
	ctx := context.Background()
	for _, s := range benchShapes() {
		rng := rand.New(rand.NewSource(int64(s.d*31 + s.g)))
		pi := RandomPermutation(s.d*s.g, rng)
		fs := seededFaults(s.g, rng)
		p, err := NewPlanner(s.d, s.g)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := p.Execute(ctx, FaultyPermutation(pi, fs))
		if err != nil {
			t.Fatalf("POPS(%d,%d): %v", s.d, s.g, err)
		}
		assertFaultFree(t, plan, pi, fs)
		touched := make(map[int]bool)
		for _, c := range fs.Couplers {
			touched[c.B] = true
			touched[c.A] = true
		}
		base := OptimalSlots(s.d, s.g)
		if fl := 2 * faultRoundFloor(s.d, s.g, fs); fl > base {
			base = fl
		}
		bound := base + len(touched)
		if plan.SlotCount() > bound {
			t.Errorf("POPS(%d,%d): %d slots exceeds the degradation bound %d (optimal %d, floor %d, %d groups touched)",
				s.d, s.g, plan.SlotCount(), bound, OptimalSlots(s.d, s.g), faultRoundFloor(s.d, s.g, fs), len(touched))
		}
		t.Logf("POPS(%d,%d): %d dead couplers, %d slots (optimal %d, round floor %d, bound %d)",
			s.d, s.g, len(fs.Couplers), plan.SlotCount(), OptimalSlots(s.d, s.g), faultRoundFloor(s.d, s.g, fs), bound)
	}
}
