package pops

import (
	"context"
	"math/rand"
	"testing"
)

func TestFacadeRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pi := RandomPermutation(64, rng)
	plan, err := Route(8, 8, pi)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SlotCount() != OptimalSlots(8, 8) {
		t.Fatalf("slots = %d, want %d", plan.SlotCount(), OptimalSlots(8, 8))
	}
	if _, err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRouteWithAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pi := RandomDerangement(24, rng)
	for _, algo := range []Algorithm{RepeatedMatching, EulerSplitDC, Insertion} {
		plan, err := Route(4, 6, pi, WithAlgorithm(algo), WithVerify(true))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if plan.Strategy != StrategyTheoremTwo {
			t.Fatalf("%v: strategy = %q, want %q", algo, plan.Strategy, StrategyTheoremTwo)
		}
		// The deprecated struct-options entry point must agree.
		old, err := RouteWith(4, 6, pi, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if old.SlotCount() != plan.SlotCount() {
			t.Fatalf("%v: RouteWith slots %d != Route slots %d", algo, old.SlotCount(), plan.SlotCount())
		}
	}
}

func TestFacadeLowerBound(t *testing.T) {
	lb, prop, err := LowerBound(4, 2, VectorReversal(8))
	if err != nil {
		t.Fatal(err)
	}
	if prop != "Prop2" || lb != 4 {
		t.Fatalf("LowerBound = %d (%s), want 4 (Prop2)", lb, prop)
	}
}

func TestFacadeGreedyAndSingleSlot(t *testing.T) {
	pi, err := GroupRotation(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := NewGreedy(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := greedy.Route(pi)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SlotCount() != 4 {
		t.Fatalf("greedy slots = %d, want 4", plan.SlotCount())
	}
	if plan.Strategy != StrategyGreedy {
		t.Fatalf("strategy = %q, want %q", plan.Strategy, StrategyGreedy)
	}
	ok, err := IsOneSlotRoutable(4, 4, pi)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("adversarial permutation claimed one-slot routable")
	}
	single, err := NewSingleSlot(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.Route(pi); err == nil {
		t.Fatal("SingleSlot accepted unroutable permutation")
	}
}

// TestDeprecatedWrappers keeps the legacy free functions working: they must
// delegate to the routers and produce identical slot counts.
func TestDeprecatedWrappers(t *testing.T) {
	pi, err := GroupRotation(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, slots, err := GreedyRoute(4, 4, pi); err != nil || slots != 4 {
		t.Fatalf("GreedyRoute = %d slots, err %v; want 4, nil", slots, err)
	}
	if _, slots, err := DirectOptimalRoute(4, 4, pi); err != nil || slots != 4 {
		t.Fatalf("DirectOptimalRoute = %d slots, err %v; want 4, nil", slots, err)
	}
	if _, err := OneSlotRoute(4, 4, pi); err == nil {
		t.Fatal("OneSlotRoute accepted unroutable permutation")
	}
}

func TestFacadeBroadcastAndRun(t *testing.T) {
	nw, err := NewNetwork(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BroadcastSchedule(nw, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.PacketsMoved) != 1 || tr.PacketsMoved[0] != nw.N() {
		t.Fatalf("broadcast trace = %+v", tr)
	}

	// The OneToAll workload carries the same schedule plus the broadcast
	// delivery contract on Verify.
	p, err := NewPlanner(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Execute(context.Background(), OneToAll(4))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != "one-to-all" || plan.Speaker != 4 || plan.SlotCount() != 1 {
		t.Fatalf("broadcast plan = strategy %q speaker %d slots %d", plan.Strategy, plan.Speaker, plan.SlotCount())
	}
	if _, err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePermutationFamilies(t *testing.T) {
	if err := ValidatePermutation(IdentityPermutation(5)); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePermutation(VectorReversal(7)); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePermutation(Transpose(3, 4)); err != nil {
		t.Fatal(err)
	}
	shift, err := MeshShift(3, 4, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePermutation(shift); err != nil {
		t.Fatal(err)
	}
	bpc, err := NewBPC(3, []int{1, 2, 0}, 0b101)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePermutation(bpc.Permutation()); err != nil {
		t.Fatal(err)
	}
	hc, err := HypercubeExchange(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hc.Apply(0) != 4 {
		t.Fatalf("exchange(0) = %d, want 4", hc.Apply(0))
	}
	br, err := BitReversal(3)
	if err != nil {
		t.Fatal(err)
	}
	if br.Apply(1) != 4 {
		t.Fatalf("bit-reversal(1) = %d, want 4", br.Apply(1))
	}
}

func TestFacadeHRelation(t *testing.T) {
	reqs := []Request{{Src: 0, Dst: 3}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}}
	plan, err := RouteHRelation(2, 2, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.H != 2 {
		t.Fatalf("degree = %d, want 2", plan.H)
	}
	if plan.SlotCount() != HRelationSlots(2, 2, 2) {
		t.Fatalf("slots = %d, want %d", plan.SlotCount(), HRelationSlots(2, 2, 2))
	}
	if _, err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAllToAll(t *testing.T) {
	plan, err := RouteAllToAll(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.H != 3 {
		t.Fatalf("degree = %d, want 3", plan.H)
	}
	if _, err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
}
