package pops_test

import (
	"fmt"
	"math/rand"

	"pops"
)

// ExampleRoute routes the Figure 3 permutation of the paper on POPS(3,3).
func ExampleRoute() {
	pi := []int{4, 8, 3, 6, 0, 2, 7, 1, 5} // Figure 3
	plan, err := pops.Route(3, 3, pi)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("slots:", plan.SlotCount())
	if _, err := plan.Verify(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("delivered: all packets")
	// Output:
	// slots: 2
	// delivered: all packets
}

// ExampleOptimalSlots shows the Theorem 2 slot bound across network shapes.
func ExampleOptimalSlots() {
	fmt.Println(pops.OptimalSlots(1, 16)) // d = 1: one slot
	fmt.Println(pops.OptimalSlots(8, 8))  // d ≤ g: two slots
	fmt.Println(pops.OptimalSlots(9, 3))  // d > g: 2⌈9/3⌉
	// Output:
	// 1
	// 2
	// 6
}

// ExampleLowerBound classifies vector reversal, the paper's optimality
// witness (Proposition 2).
func ExampleLowerBound() {
	lb, prop, _ := pops.LowerBound(4, 2, pops.VectorReversal(8))
	fmt.Printf("%d slots via %s; achieved %d\n", lb, prop, pops.OptimalSlots(4, 2))
	// Output:
	// 4 slots via Prop2; achieved 4
}

// ExampleGreedyRoute shows the adversarial instance where direct routing
// degenerates and the two-phase routing of Theorem 2 wins.
func ExampleGreedyRoute() {
	pi, _ := pops.GroupRotation(16, 4, 1) // every group targets the next one
	_, greedySlots, _ := pops.GreedyRoute(16, 4, pi)
	plan, _ := pops.Route(16, 4, pi)
	fmt.Printf("greedy: %d slots, Theorem 2: %d slots\n", greedySlots, plan.SlotCount())
	// Output:
	// greedy: 16 slots, Theorem 2: 8 slots
}

// ExampleDirectOptimalRoute recovers Sahni's specialized transpose bound.
func ExampleDirectOptimalRoute() {
	pi := pops.Transpose(4, 4) // 4×4 matrix on POPS(8,2)
	_, slots, _ := pops.DirectOptimalRoute(8, 2, pi)
	fmt.Printf("transpose: %d slots (general bound %d)\n", slots, pops.OptimalSlots(8, 2))
	// Output:
	// transpose: 4 slots (general bound 8)
}

// ExampleIsOneSlotRoutable shows the Gravenstreter–Melhem characterization.
func ExampleIsOneSlotRoutable() {
	rng := rand.New(rand.NewSource(1))
	ok, _ := pops.IsOneSlotRoutable(1, 8, pops.RandomPermutation(8, rng))
	fmt.Println("d=1 random:", ok)
	ok, _ = pops.IsOneSlotRoutable(3, 3, []int{4, 8, 3, 6, 0, 2, 7, 1, 5})
	fmt.Println("Figure 3:", ok)
	// Output:
	// d=1 random: true
	// Figure 3: false
}
