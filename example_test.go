package pops_test

import (
	"context"
	"fmt"
	"math/rand"

	"pops"
)

// ExampleRoute routes the Figure 3 permutation of the paper on POPS(3,3).
func ExampleRoute() {
	pi := []int{4, 8, 3, 6, 0, 2, 7, 1, 5} // Figure 3
	plan, err := pops.Route(3, 3, pi)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("slots:", plan.SlotCount())
	if _, err := plan.Verify(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("delivered: all packets")
	// Output:
	// slots: 2
	// delivered: all packets
}

// ExampleOptimalSlots shows the Theorem 2 slot bound across network shapes.
func ExampleOptimalSlots() {
	fmt.Println(pops.OptimalSlots(1, 16)) // d = 1: one slot
	fmt.Println(pops.OptimalSlots(8, 8))  // d ≤ g: two slots
	fmt.Println(pops.OptimalSlots(9, 3))  // d > g: 2⌈9/3⌉
	// Output:
	// 1
	// 2
	// 6
}

// ExampleLowerBound classifies vector reversal, the paper's optimality
// witness (Proposition 2).
func ExampleLowerBound() {
	lb, prop, _ := pops.LowerBound(4, 2, pops.VectorReversal(8))
	fmt.Printf("%d slots via %s; achieved %d\n", lb, prop, pops.OptimalSlots(4, 2))
	// Output:
	// 4 slots via Prop2; achieved 4
}

// ExampleNewGreedy shows the adversarial instance where direct routing
// degenerates and the two-phase routing of Theorem 2 wins, comparing the two
// strategies through the Router interface.
func ExampleNewGreedy() {
	pi, _ := pops.GroupRotation(16, 4, 1) // every group targets the next one
	greedy, _ := pops.NewGreedy(16, 4)
	theorem, _ := pops.NewTheoremTwo(16, 4)
	gp, _ := greedy.Route(pi)
	tp, _ := theorem.Route(pi)
	fmt.Printf("%s: %d slots, %s: %d slots\n", gp.Strategy, gp.SlotCount(), tp.Strategy, tp.SlotCount())
	// Output:
	// greedy: 16 slots, theorem2: 8 slots
}

// ExampleNewDirectOptimal recovers Sahni's specialized transpose bound.
func ExampleNewDirectOptimal() {
	pi := pops.Transpose(4, 4) // 4×4 matrix on POPS(8,2)
	direct, _ := pops.NewDirectOptimal(8, 2)
	plan, _ := direct.Route(pi)
	fmt.Printf("transpose: %d slots (general bound %d)\n", plan.SlotCount(), pops.OptimalSlots(8, 2))
	// Output:
	// transpose: 4 slots (general bound 8)
}

// ExampleNewAuto shows the strategy selector picking the cheapest applicable
// router per permutation and recording its choice in Plan.Strategy.
func ExampleNewAuto() {
	auto, _ := pops.NewAuto(8, 2)
	transpose, _ := auto.Route(pops.Transpose(4, 4)) // µmax = 4 < 2⌈d/g⌉ = 8
	rotation, _ := pops.GroupRotation(8, 2, 1)       // concentrated: relays win
	adversarial, _ := auto.Route(rotation)
	fmt.Printf("transpose: %s in %d slots\n", transpose.Strategy, transpose.SlotCount())
	fmt.Printf("rotation:  %s in %d slots\n", adversarial.Strategy, adversarial.SlotCount())
	// Output:
	// transpose: direct-optimal in 4 slots
	// rotation:  theorem2 in 8 slots
}

// ExamplePlanner routes a batch of permutations with one Planner: the
// network is validated once, internal buffers are reused, and results come
// back in input order.
func ExamplePlanner() {
	planner, _ := pops.NewPlanner(8, 8, pops.WithParallelism(2))
	rng := rand.New(rand.NewSource(3))
	pis := [][]int{
		pops.RandomPermutation(64, rng),
		pops.VectorReversal(64),
		pops.RandomDerangement(64, rng),
	}
	plans, _ := planner.RouteBatch(pis)
	for _, plan := range plans {
		fmt.Println(plan.SlotCount(), "slots")
	}
	// Output:
	// 2 slots
	// 2 slots
	// 2 slots
}

// ExamplePlanner_Execute plans every workload kind through the unified
// context-aware Execute surface.
func ExamplePlanner_Execute() {
	ctx := context.Background()
	planner, _ := pops.NewPlanner(2, 2) // n = 4
	perm, _ := planner.Execute(ctx, pops.Permutation([]int{3, 2, 1, 0}))
	hrel, _ := planner.Execute(ctx, pops.HRelation([]pops.Request{
		{Src: 0, Dst: 3}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3},
	}))
	exchange, _ := planner.Execute(ctx, pops.AllToAll())
	broadcast, _ := planner.Execute(ctx, pops.OneToAll(1))
	fmt.Printf("permutation: %d slots (%s)\n", perm.SlotCount(), perm.Strategy)
	fmt.Printf("h-relation:  %d slots (h = %d)\n", hrel.SlotCount(), hrel.H)
	fmt.Printf("all-to-all:  %d slots (h = %d)\n", exchange.SlotCount(), exchange.H)
	fmt.Printf("one-to-all:  %d slot  (speaker %d)\n", broadcast.SlotCount(), broadcast.Speaker)
	// Output:
	// permutation: 2 slots (theorem2)
	// h-relation:  4 slots (h = 2)
	// all-to-all:  6 slots (h = 3)
	// one-to-all:  1 slot  (speaker 1)
}

// ExamplePlanner_ExecuteStream streams an h-relation: each König factor of
// the request multigraph is routed as soon as it is peeled, and its slots
// are emitted while the remaining factorization is still running.
func ExamplePlanner_ExecuteStream() {
	planner, _ := pops.NewPlanner(2, 2)
	reqs := []pops.Request{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
		{Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 0}, {Src: 3, Dst: 1},
	}
	ps, _ := planner.ExecuteStream(context.Background(), pops.HRelation(reqs))
	for {
		frag, ok := ps.Next()
		if !ok {
			break
		}
		fmt.Printf("slot %d from factor %d: %d sends\n", frag.Slot, frag.Color, len(frag.Sends))
	}
	plan, _ := ps.Collect() // identical to Execute's plan
	fmt.Println("total slots:", plan.SlotCount())
	// Output:
	// slot 0 from factor 0: 4 sends
	// slot 1 from factor 0: 4 sends
	// slot 2 from factor 1: 4 sends
	// slot 3 from factor 1: 4 sends
	// total slots: 4
}

// ExampleIsOneSlotRoutable shows the Gravenstreter–Melhem characterization.
func ExampleIsOneSlotRoutable() {
	rng := rand.New(rand.NewSource(1))
	ok, _ := pops.IsOneSlotRoutable(1, 8, pops.RandomPermutation(8, rng))
	fmt.Println("d=1 random:", ok)
	ok, _ = pops.IsOneSlotRoutable(3, 3, []int{4, 8, 3, 6, 0, 2, 7, 1, 5})
	fmt.Println("Figure 3:", ok)
	// Output:
	// d=1 random: true
	// Figure 3: false
}
