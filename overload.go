package pops

import (
	"context"
	"fmt"
	"time"
)

// OverloadError is the typed verdict of an admission-control rejection: the
// serving side (a popsserved shard queue, its stream cap, or a popsproxy
// concurrency limit) chose to shed this request rather than queue it beyond
// its bound. It travels over the wire as HTTP 429 + Retry-After, and
// ServiceClient reconstructs it on the other side, so errors.As works across
// process boundaries exactly as it does in-process.
//
// An overload is not a failure of the request itself: the same workload
// retried after RetryAfter — or against a sibling node — is expected to
// succeed. That distinction is what the proxy's 429-aware failover and the
// client's backoff retries key on.
type OverloadError struct {
	// D, G identify the shard's shape when the shedding layer knows it
	// (zero when a proxy-level limit rejected before placement).
	D, G int
	// Tenant is the admission tenant the rejection was charged to, when the
	// request carried one.
	Tenant string
	// Queue names the bound that rejected: "admission" (the micro-batch
	// queue), "stream" (the per-shard concurrent-stream cap), "direct" (the
	// non-batched workload/strategy path), or "backend" (a proxy-side
	// per-backend concurrency limit).
	Queue string
	// RetryAfter is the server's backoff hint: how long the shedding layer
	// expects to need before it can admit again.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	msg := "pops: overloaded"
	if e.Queue != "" {
		msg += ": " + e.Queue + " queue full"
	}
	if e.D > 0 && e.G > 0 {
		msg += fmt.Sprintf(" on POPS(%d, %d)", e.D, e.G)
	}
	if e.Tenant != "" {
		msg += fmt.Sprintf(" (tenant %q)", e.Tenant)
	}
	if e.RetryAfter > 0 {
		msg += fmt.Sprintf(": retry after %s", e.RetryAfter)
	}
	return msg
}

// Temporary marks the error retryable, matching the net.Error convention.
func (e *OverloadError) Temporary() bool { return true }

// tenantCtxKey carries a caller's admission tenant through a context.
type tenantCtxKey struct{}

// ContextWithTenant returns a context that makes ServiceClient calls carry
// tenant as the X-Tenant header. The serving side charges the request to
// that tenant's weighted admission quota and its per-tenant fairness
// counters in /stats and /metrics; requests without a tenant share the
// default quota under the empty tenant name.
func ContextWithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// TenantFromContext returns the tenant attached by ContextWithTenant, or "".
func TenantFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	t, _ := ctx.Value(tenantCtxKey{}).(string)
	return t
}
