// Package hypercube simulates an n = 2^D processor SIMD hypercube on a
// POPS(d, g) network with d·g = n, reproducing the setting of Sahni 2000b.
// The primitive hypercube step — every processor exchanges a value with its
// neighbor across bit b — is the permutation π(i) = i ⊕ 2^b; Theorem 1 of
// Sahni 2000b routes it in 2⌈d/g⌉ slots under the identity mapping of
// hypercube processors onto POPS processors. Mei & Rizzi's Theorem 2 shows
// the same bound holds under ANY one-to-one mapping, since every permutation
// routes in 2⌈d/g⌉ slots; the Machine type takes an arbitrary mapping to
// demonstrate exactly that corollary (experiment E8).
//
// On top of the exchange primitive the package implements the fundamental
// data operations of Sahni 2000b: data sum, prefix sum, consecutive
// (sub-cube) sum, adjacent sum, data shift, and broadcast.
package hypercube

import (
	"fmt"

	"pops/internal/core"
	"pops/internal/perms"
	"pops/internal/simd"
)

// Machine is a SIMD hypercube with one int64 register per processor,
// executed on a POPS network.
type Machine struct {
	Bits int // hypercube dimension D; n = 2^D
	// Mapping[h] is the POPS processor simulating hypercube processor h.
	Mapping []int
	// Values[h] is the register of hypercube processor h.
	Values []int64

	inv    []int // POPS processor -> hypercube processor
	router *simd.Router
}

// New builds a machine with n = 2^bits processors on POPS(d, g), d·g = n.
// mapping maps hypercube processors to POPS processors; nil means identity.
func New(bits, d, g int, mapping []int, opts core.Options) (*Machine, error) {
	if bits < 0 || bits > 30 {
		return nil, fmt.Errorf("hypercube: dimension %d out of range", bits)
	}
	n := 1 << uint(bits)
	if d*g != n {
		return nil, fmt.Errorf("hypercube: POPS(%d,%d) has %d processors, hypercube needs %d", d, g, d*g, n)
	}
	if mapping == nil {
		mapping = perms.Identity(n)
	}
	if len(mapping) != n {
		return nil, fmt.Errorf("hypercube: mapping length %d, want %d", len(mapping), n)
	}
	if err := perms.Validate(mapping); err != nil {
		return nil, fmt.Errorf("hypercube: mapping: %w", err)
	}
	r, err := simd.NewRouter(d, g, opts)
	if err != nil {
		return nil, err
	}
	return &Machine{
		Bits:    bits,
		Mapping: append([]int(nil), mapping...),
		Values:  make([]int64, n),
		inv:     perms.Inverse(mapping),
		router:  r,
	}, nil
}

// N returns the number of processors.
func (m *Machine) N() int { return 1 << uint(m.Bits) }

// SlotsUsed returns the accumulated POPS slot cost of all operations.
func (m *Machine) SlotsUsed() int { return m.router.Slots }

// Load sets the machine registers.
func (m *Machine) Load(vals []int64) error {
	if len(vals) != m.N() {
		return fmt.Errorf("hypercube: loading %d values into %d processors", len(vals), m.N())
	}
	copy(m.Values, vals)
	return nil
}

// popsPermutation lifts a hypercube-index permutation hpi to POPS processors
// through the mapping: popsPi = Mapping ∘ hpi ∘ Mapping⁻¹.
func (m *Machine) popsPermutation(hpi []int) []int {
	n := m.N()
	out := make([]int, n)
	for p := 0; p < n; p++ {
		out[p] = m.Mapping[hpi[m.inv[p]]]
	}
	return out
}

// permuteValues routes hypercube values along the hypercube permutation hpi,
// paying POPS slots for popsPermutation(hpi).
func (m *Machine) permuteValues(hpi []int) error {
	n := m.N()
	popsVals := make([]int64, n)
	for h, v := range m.Values {
		popsVals[m.Mapping[h]] = v
	}
	if err := m.router.Permute(popsVals, m.popsPermutation(hpi)); err != nil {
		return err
	}
	for h := range m.Values {
		m.Values[h] = popsVals[m.Mapping[h]]
	}
	return nil
}

// exchangedValues returns, for every hypercube processor, the register value
// of its neighbor across the given bit, routed on the POPS network in
// 2⌈d/g⌉ slots (1 slot when d = 1).
func (m *Machine) exchangedValues(bit int) ([]int64, error) {
	if bit < 0 || bit >= m.Bits {
		return nil, fmt.Errorf("hypercube: bit %d outside dimension %d", bit, m.Bits)
	}
	ex, err := perms.HypercubeExchange(m.Bits, bit)
	if err != nil {
		return nil, err
	}
	hpi := ex.Permutation()
	saved := append([]int64(nil), m.Values...)
	if err := m.permuteValues(hpi); err != nil {
		return nil, err
	}
	got := append([]int64(nil), m.Values...)
	copy(m.Values, saved)
	return got, nil
}

// Reduce combines all registers with the associative and commutative
// operator op, leaving the result in every processor, using D exchange
// rounds (the classic hypercube all-reduce) at D·2⌈d/g⌉ POPS slots.
func (m *Machine) Reduce(op func(a, b int64) int64) (int64, error) {
	for b := 0; b < m.Bits; b++ {
		nb, err := m.exchangedValues(b)
		if err != nil {
			return 0, err
		}
		for h := range m.Values {
			m.Values[h] = op(m.Values[h], nb[h])
		}
	}
	return m.Values[0], nil
}

// DataSum leaves the sum of all registers in every processor — the data-sum
// primitive of Sahni 2000b.
func (m *Machine) DataSum() (int64, error) {
	return m.Reduce(func(a, b int64) int64 { return a + b })
}

// DataMax leaves the maximum of all registers in every processor.
func (m *Machine) DataMax() (int64, error) {
	return m.Reduce(func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
}

// DataMin leaves the minimum of all registers in every processor.
func (m *Machine) DataMin() (int64, error) {
	return m.Reduce(func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	})
}

// PrefixSum replaces every register with the inclusive prefix sum
// v[0] + … + v[h] (in hypercube index order), using the standard
// (prefix, total) scan: D exchange rounds.
func (m *Machine) PrefixSum() error {
	prefix := append([]int64(nil), m.Values...)
	total := append([]int64(nil), m.Values...)
	for b := 0; b < m.Bits; b++ {
		copy(m.Values, total)
		nbTotal, err := m.exchangedValues(b)
		if err != nil {
			return err
		}
		for h := range total {
			if h&(1<<uint(b)) != 0 {
				prefix[h] += nbTotal[h]
			}
			total[h] += nbTotal[h]
		}
	}
	copy(m.Values, prefix)
	return nil
}

// ConsecutiveSum leaves in every processor the sum of its block of size
// 2^blockBits (processors sharing the high Bits−blockBits index bits),
// using blockBits exchange rounds — the consecutive-sum primitive of
// Sahni 2000b.
func (m *Machine) ConsecutiveSum(blockBits int) error {
	if blockBits < 0 || blockBits > m.Bits {
		return fmt.Errorf("hypercube: block bits %d outside dimension %d", blockBits, m.Bits)
	}
	for b := 0; b < blockBits; b++ {
		nb, err := m.exchangedValues(b)
		if err != nil {
			return err
		}
		for h := range m.Values {
			m.Values[h] += nb[h]
		}
	}
	return nil
}

// AdjacentSum replaces v[h] with v[h] + v[(h+1) mod n], routing the cyclic
// shift as one permutation (2⌈d/g⌉ slots) — the adjacent-sum primitive of
// Sahni 2000b.
func (m *Machine) AdjacentSum() error {
	n := m.N()
	saved := append([]int64(nil), m.Values...)
	// Shift values down by one so processor h receives v[(h+1) mod n].
	if err := m.permuteValues(perms.CyclicShift(n, -1)); err != nil {
		return err
	}
	for h := range m.Values {
		m.Values[h] += saved[h]
	}
	return nil
}

// Shift moves every register s positions up (v'[h] = v[(h−s) mod n]),
// routed as one permutation.
func (m *Machine) Shift(s int) error {
	return m.permuteValues(perms.CyclicShift(m.N(), s))
}

// Broadcast copies hypercube processor src's register everywhere in a single
// slot using the POPS one-to-all primitive.
func (m *Machine) Broadcast(src int) error {
	if src < 0 || src >= m.N() {
		return fmt.Errorf("hypercube: broadcast source %d out of range", src)
	}
	n := m.N()
	popsVals := make([]int64, n)
	for h, v := range m.Values {
		popsVals[m.Mapping[h]] = v
	}
	if err := m.router.Broadcast(popsVals, m.Mapping[src]); err != nil {
		return err
	}
	for h := range m.Values {
		m.Values[h] = popsVals[m.Mapping[h]]
	}
	return nil
}

// ExchangeCost returns the slot cost of one exchange on this machine's
// network, 2⌈d/g⌉ (or 1 when d = 1) — what Theorem 2 charges per step.
func (m *Machine) ExchangeCost() int {
	return core.OptimalSlots(m.router.Net.D, m.router.Net.G)
}
