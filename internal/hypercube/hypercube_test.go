package hypercube

import (
	"math/rand"
	"testing"

	"pops/internal/core"
	"pops/internal/perms"
)

func seq(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(i + 1)
	}
	return v
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 1, 1, nil, core.Options{}); err == nil {
		t.Fatal("negative dimension accepted")
	}
	if _, err := New(3, 2, 2, nil, core.Options{}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := New(2, 2, 2, []int{0, 1}, core.Options{}); err == nil {
		t.Fatal("short mapping accepted")
	}
	if _, err := New(2, 2, 2, []int{0, 0, 1, 2}, core.Options{}); err == nil {
		t.Fatal("non-permutation mapping accepted")
	}
}

func TestLoadValidation(t *testing.T) {
	m, err := New(2, 2, 2, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load([]int64{1}); err == nil {
		t.Fatal("short load accepted")
	}
}

func TestDataSum(t *testing.T) {
	for _, tc := range []struct{ bits, d, g int }{
		{2, 2, 2}, {3, 2, 4}, {3, 4, 2}, {4, 4, 4}, {2, 1, 4},
	} {
		m, err := New(tc.bits, tc.d, tc.g, nil, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		n := m.N()
		if err := m.Load(seq(n)); err != nil {
			t.Fatal(err)
		}
		sum, err := m.DataSum()
		if err != nil {
			t.Fatalf("bits=%d d=%d g=%d: %v", tc.bits, tc.d, tc.g, err)
		}
		want := int64(n * (n + 1) / 2)
		if sum != want {
			t.Fatalf("bits=%d: sum = %d, want %d", tc.bits, sum, want)
		}
		// Every processor must hold the sum.
		for h, v := range m.Values {
			if v != want {
				t.Fatalf("processor %d holds %d, want %d", h, v, want)
			}
		}
		// Slot accounting: D exchanges at 2⌈d/g⌉ each.
		if got, want := m.SlotsUsed(), tc.bits*m.ExchangeCost(); got != want {
			t.Fatalf("slots = %d, want %d", got, want)
		}
	}
}

func TestPrefixSum(t *testing.T) {
	m, err := New(3, 4, 2, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	if err := m.Load(vals); err != nil {
		t.Fatal(err)
	}
	if err := m.PrefixSum(); err != nil {
		t.Fatal(err)
	}
	var run int64
	for h, v := range vals {
		run += v
		if m.Values[h] != run {
			t.Fatalf("prefix[%d] = %d, want %d", h, m.Values[h], run)
		}
	}
}

func TestConsecutiveSum(t *testing.T) {
	m, err := New(3, 2, 4, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(seq(8)); err != nil {
		t.Fatal(err)
	}
	// Blocks of 4: sums 1+2+3+4 = 10 and 5+6+7+8 = 26.
	if err := m.ConsecutiveSum(2); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 4; h++ {
		if m.Values[h] != 10 {
			t.Fatalf("block 0 processor %d = %d, want 10", h, m.Values[h])
		}
	}
	for h := 4; h < 8; h++ {
		if m.Values[h] != 26 {
			t.Fatalf("block 1 processor %d = %d, want 26", h, m.Values[h])
		}
	}
	if err := m.ConsecutiveSum(9); err == nil {
		t.Fatal("oversized block accepted")
	}
}

func TestAdjacentSum(t *testing.T) {
	m, err := New(2, 2, 2, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load([]int64{10, 20, 30, 40}); err != nil {
		t.Fatal(err)
	}
	if err := m.AdjacentSum(); err != nil {
		t.Fatal(err)
	}
	want := []int64{30, 50, 70, 50}
	for h := range want {
		if m.Values[h] != want[h] {
			t.Fatalf("adjacent sums = %v, want %v", m.Values, want)
		}
	}
}

func TestShift(t *testing.T) {
	m, err := New(2, 2, 2, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load([]int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Shift(1); err != nil {
		t.Fatal(err)
	}
	want := []int64{4, 1, 2, 3}
	for h := range want {
		if m.Values[h] != want[h] {
			t.Fatalf("shifted = %v, want %v", m.Values, want)
		}
	}
}

func TestBroadcastOneSlot(t *testing.T) {
	m, err := New(3, 2, 4, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(seq(8)); err != nil {
		t.Fatal(err)
	}
	if err := m.Broadcast(5); err != nil {
		t.Fatal(err)
	}
	for h, v := range m.Values {
		if v != 6 {
			t.Fatalf("processor %d = %d after broadcast, want 6", h, v)
		}
	}
	if m.SlotsUsed() != 1 {
		t.Fatalf("broadcast cost %d slots, want 1", m.SlotsUsed())
	}
	if err := m.Broadcast(99); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestMappingIndependence(t *testing.T) {
	// The paper's corollary (E8): the simulation works and costs exactly the
	// same under any one-to-one mapping of hypercube onto POPS processors.
	rng := rand.New(rand.NewSource(66))
	bits, d, g := 4, 4, 4
	n := 1 << uint(bits)

	br, err := perms.BitReversal(bits)
	if err != nil {
		t.Fatal(err)
	}
	mappings := map[string][]int{
		"identity":     nil,
		"random":       perms.Random(n, rng),
		"bit-reversal": br.Permutation(),
	}
	var wantSum int64 = int64(n * (n + 1) / 2)
	var slotCosts []int
	for name, mapping := range mappings {
		m, err := New(bits, d, g, mapping, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Load(seq(n)); err != nil {
			t.Fatal(err)
		}
		sum, err := m.DataSum()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sum != wantSum {
			t.Fatalf("%s: sum = %d, want %d", name, sum, wantSum)
		}
		slotCosts = append(slotCosts, m.SlotsUsed())
	}
	for _, c := range slotCosts {
		if c != slotCosts[0] {
			t.Fatalf("slot costs differ across mappings: %v", slotCosts)
		}
	}
}

func TestExchangeBitOutOfRange(t *testing.T) {
	m, err := New(2, 2, 2, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.exchangedValues(5); err == nil {
		t.Fatal("bit out of range accepted")
	}
}

func TestReduceMaxMin(t *testing.T) {
	vals := []int64{5, -2, 17, 3, 9, 0, -8, 11}
	mMax, err := New(3, 2, 4, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mMax.Load(vals); err != nil {
		t.Fatal(err)
	}
	max, err := mMax.DataMax()
	if err != nil {
		t.Fatal(err)
	}
	if max != 17 {
		t.Fatalf("max = %d, want 17", max)
	}
	for h, v := range mMax.Values {
		if v != 17 {
			t.Fatalf("processor %d holds %d after all-reduce max", h, v)
		}
	}

	mMin, err := New(3, 2, 4, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mMin.Load(vals); err != nil {
		t.Fatal(err)
	}
	min, err := mMin.DataMin()
	if err != nil {
		t.Fatal(err)
	}
	if min != -8 {
		t.Fatalf("min = %d, want -8", min)
	}
	// Reduce cost equals DataSum cost: D exchanges.
	if mMin.SlotsUsed() != 3*mMin.ExchangeCost() {
		t.Fatalf("slots = %d, want %d", mMin.SlotsUsed(), 3*mMin.ExchangeCost())
	}
}
