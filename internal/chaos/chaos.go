// Package chaos is the overload harness for the serving stack: scripted
// load ramps and induced slowness, with outcome classification and latency
// percentiles over the admitted requests. Its tests assert the robustness
// contract end to end — under sustained overload the service sheds excess
// load with typed 429 verdicts while the latency of what it does admit
// stays bounded ("shed, don't collapse") — and its benchmark records
// goodput and admitted-p99 at increasing load multiples.
package chaos

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pops"
)

// Slowdown is an HTTP middleware that injects a configurable delay in front
// of every request except health checks, simulating a node that is alive
// but degraded — the exact failure mode circuit breakers exist for, and one
// health-based ejection cannot see. The delay is adjustable at runtime so a
// test can degrade a backend mid-ramp and later lift the slowness to watch
// the breaker re-close.
type Slowdown struct {
	next    http.Handler
	delayNs atomic.Int64
}

// NewSlowdown wraps next with an initially-zero delay.
func NewSlowdown(next http.Handler) *Slowdown {
	return &Slowdown{next: next}
}

// Set replaces the injected delay. Zero restores pass-through.
func (s *Slowdown) Set(d time.Duration) { s.delayNs.Store(int64(d)) }

func (s *Slowdown) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d := time.Duration(s.delayNs.Load()); d > 0 && r.URL.Path != "/healthz" {
		select {
		case <-time.After(d):
		case <-r.Context().Done():
		}
	}
	s.next.ServeHTTP(w, r)
}

// PlanDrag is a pops.PlanObserver that stalls the planning path by a
// configurable duration per plan. Installed through
// service.Config.PlannerOptions (the service chains it with its own
// plan-time observer), it turns the planner into a throttle with a known
// service rate, so overload tests can exceed capacity deterministically
// instead of racing the real planner's speed.
type PlanDrag struct {
	delayNs atomic.Int64
}

// Set replaces the injected per-plan stall. Zero restores full speed.
func (p *PlanDrag) Set(d time.Duration) { p.delayNs.Store(int64(d)) }

// ObservePlan implements pops.PlanObserver by sleeping the configured drag.
func (p *PlanDrag) ObservePlan(strategy string, cached bool, d time.Duration) {
	if stall := time.Duration(p.delayNs.Load()); stall > 0 {
		time.Sleep(stall)
	}
}

// Outcome classifies how one request of a ramp ended.
type Outcome int

const (
	// Admitted: the request was served successfully.
	Admitted Outcome = iota
	// Shed: the stack refused it with a typed overload verdict (HTTP 429).
	Shed
	// DeadlineShed: it died to its own deadline (queued past expiry, or the
	// server answered 504 for an already-expired X-Deadline).
	DeadlineShed
	// Failed: any other error — the collapse bucket overload must not fill.
	Failed
)

// Classify maps a request error to its Outcome.
func Classify(err error) Outcome {
	var oe *pops.OverloadError
	switch {
	case err == nil:
		return Admitted
	case errors.As(err, &oe):
		return Shed
	case errors.Is(err, context.DeadlineExceeded):
		return DeadlineShed
	default:
		return Failed
	}
}

// Report aggregates one ramp: outcome counts, the latency distribution of
// the admitted requests, and wall-clock elapsed.
type Report struct {
	Admitted     int
	Shed         int
	DeadlineShed int
	Failed       int
	Elapsed      time.Duration

	mu        sync.Mutex
	latencies []time.Duration
}

func (r *Report) observe(o Outcome, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch o {
	case Admitted:
		r.Admitted++
		r.latencies = append(r.latencies, d)
	case Shed:
		r.Shed++
	case DeadlineShed:
		r.DeadlineShed++
	case Failed:
		r.Failed++
	}
}

// Total is the number of requests the ramp issued.
func (r *Report) Total() int { return r.Admitted + r.Shed + r.DeadlineShed + r.Failed }

// Percentile returns the q-quantile (0 < q <= 1) of admitted-request
// latency, or 0 if nothing was admitted.
func (r *Report) Percentile(q float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.latencies...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// GoodputRPS is admitted requests per second of ramp wall-clock.
func (r *Report) GoodputRPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Admitted) / r.Elapsed.Seconds()
}

// Ramp drives a fixed number of requests through a shared counter from
// Workers concurrent generators, each pacing itself by Interval between its
// own requests. Offered load scales as Workers/Interval, so a test dials
// load multiples by adding workers while holding Interval fixed.
type Ramp struct {
	Workers  int           // concurrent generators (default 4)
	Requests int           // total requests across all workers
	Interval time.Duration // per-worker pause between requests (0 = none)
}

// Run executes the ramp, calling do for each request index and classifying
// the returned error. It stops early when ctx is cancelled.
func (rp Ramp) Run(ctx context.Context, do func(ctx context.Context, i int) error) *Report {
	workers := rp.Workers
	if workers <= 0 {
		workers = 4
	}
	rep := &Report{}
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= rp.Requests {
					return
				}
				t0 := time.Now()
				err := do(ctx, i)
				rep.observe(Classify(err), time.Since(t0))
				if rp.Interval > 0 {
					select {
					case <-time.After(rp.Interval):
					case <-ctx.Done():
					}
				}
			}
		}()
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	return rep
}
