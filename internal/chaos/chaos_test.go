package chaos

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pops"
	"pops/internal/service"
	"pops/internal/wire"
)

// newShedStack builds a service whose planner is throttled by the returned
// PlanDrag, mounted on an httptest server, with a client pointed at it. The
// drag makes service capacity a known constant (≈ BatchSize per drag), so
// ramps can sit deterministically above or below it.
func newShedStack(t *testing.T, cfg service.Config, drag *PlanDrag) (*service.Service, *pops.ServiceClient) {
	t.Helper()
	cfg.PlannerOptions = append(cfg.PlannerOptions, pops.WithPlanObserver(drag))
	svc := service.New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		drag.Set(0) // let shutdown drain at full speed
		svc.Close()
		srv.Close()
	})
	return svc, pops.NewServiceClient(srv.URL, srv.Client())
}

// routeOnce is the unit of ramp load: one /route call with a generous
// propagated deadline (far above any bounded queue wait, so only a genuine
// stall could expire it).
func routeOnce(client *pops.ServiceClient, tenant string) func(ctx context.Context, i int) error {
	pi := pops.VectorReversal(16)
	return func(ctx context.Context, i int) error {
		cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		if tenant != "" {
			cctx = pops.ContextWithTenant(cctx, tenant)
		}
		_, err := client.Route(cctx, 4, 4, pi)
		return err
	}
}

// TestOverloadShedsDontCollapse is the tentpole assertion: a load ramp far
// past the throttled planner's capacity must be absorbed by shedding — a
// nonzero shed count, zero hard failures — while the latency of what IS
// admitted stays within 5x of the uncontended baseline p99 (floored at 10ms
// so scheduler noise on slow CI runners cannot fail a healthy stack).
func TestOverloadShedsDontCollapse(t *testing.T) {
	drag := &PlanDrag{}
	drag.Set(time.Millisecond)
	svc, client := newShedStack(t, service.Config{
		QueueDepth: 8, BatchSize: 4, BatchDelay: time.Millisecond,
	}, drag)

	// Baseline: 2 workers pacing at 2ms sit well under the ~4 plans/ms
	// drain, so nothing sheds and p99 is the uncontended floor.
	base := Ramp{Workers: 2, Requests: 100, Interval: 2 * time.Millisecond}.
		Run(context.Background(), routeOnce(client, ""))
	if base.Shed != 0 || base.Failed != 0 || base.Admitted != base.Total() {
		t.Fatalf("baseline ramp not clean: %+v", base)
	}
	p99Base := base.Percentile(0.99)

	// Overload: 16 unpaced workers against a queue of 8. The excess must
	// surface as typed sheds, not as errors and not as unbounded queueing.
	over := Ramp{Workers: 16, Requests: 600}.
		Run(context.Background(), routeOnce(client, ""))
	if over.Shed == 0 {
		t.Fatalf("overload ramp shed nothing: %+v", over)
	}
	if over.Failed != 0 {
		t.Fatalf("overload ramp hard-failed %d requests: %+v", over.Failed, over)
	}
	if over.Admitted == 0 {
		t.Fatalf("overload ramp admitted nothing: %+v", over)
	}

	bound := 5 * p99Base
	if floor := 5 * 10 * time.Millisecond; bound < floor {
		bound = floor
	}
	if p99 := over.Percentile(0.99); p99 > bound {
		t.Fatalf("admitted p99 under overload = %v, want <= %v (baseline p99 %v): latency collapsed instead of shedding", p99, bound, p99Base)
	}

	// The server's own ledger agrees with the client-side classification.
	stats := svc.Stats()
	if stats.Sheds < uint64(over.Shed) {
		t.Fatalf("server sheds = %d, client observed %d", stats.Sheds, over.Shed)
	}
}

// TestTenantWeightedFairness pins the TenantMix guarantee end to end: two
// tenants offering identical overload, weighted 9:1, and the 10%-weight
// tenant must still land at least 8% of admitted goodput — throttled to its
// share, never starved.
func TestTenantWeightedFairness(t *testing.T) {
	drag := &PlanDrag{}
	drag.Set(time.Millisecond)
	svc, client := newShedStack(t, service.Config{
		QueueDepth: 16, BatchSize: 4, BatchDelay: time.Millisecond,
		TenantWeights: map[string]float64{"gold": 9, "free": 1},
	}, drag)

	reports := make(map[string]*Report, 2)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, tenant := range []string{"gold", "free"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			rep := Ramp{Workers: 8, Requests: 400}.
				Run(context.Background(), routeOnce(client, tenant))
			mu.Lock()
			reports[tenant] = rep
			mu.Unlock()
		}(tenant)
	}
	wg.Wait()

	for tenant, rep := range reports {
		if rep.Failed != 0 {
			t.Fatalf("tenant %s hard-failed %d requests: %+v", tenant, rep.Failed, rep)
		}
	}

	var gold, free wire.TenantStats
	for _, ts := range svc.Stats().Tenants {
		switch ts.Tenant {
		case "gold":
			gold = ts
		case "free":
			free = ts
		}
	}
	if free.Shed == 0 {
		t.Fatalf("free tenant was never throttled (free=%+v gold=%+v): the ramp did not contend the queue", free, gold)
	}
	if gold.Admitted <= free.Admitted {
		t.Fatalf("weights did not bite: gold admitted %d <= free admitted %d", gold.Admitted, free.Admitted)
	}
	share := float64(free.Admitted) / float64(free.Admitted+gold.Admitted)
	if share < 0.08 {
		t.Fatalf("free tenant's admitted share = %.3f, want >= 0.08 (free=%+v gold=%+v)", share, free, gold)
	}
}

// TestSlowdownSparesHealthz pins the Slowdown contract the smoke test leans
// on: injected delay stalls routing but never the health endpoint, so a
// degraded-but-alive backend keeps passing health checks (the failure mode
// that needs a circuit breaker rather than ejection).
func TestSlowdownSparesHealthz(t *testing.T) {
	drag := &PlanDrag{}
	svc, _ := newShedStack(t, service.Config{}, drag)
	slow := NewSlowdown(svc.Handler())
	srv := httptest.NewServer(slow)
	t.Cleanup(srv.Close)
	slow.Set(50 * time.Millisecond)

	client := pops.NewServiceClient(srv.URL, srv.Client())

	start := time.Now()
	if err := client.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz through slowdown: %v", err)
	}
	if d := time.Since(start); d >= 50*time.Millisecond {
		t.Fatalf("healthz took %v, want unstalled", d)
	}

	start = time.Now()
	if _, err := client.Route(context.Background(), 4, 4, pops.VectorReversal(16)); err != nil {
		t.Fatalf("route through slowdown: %v", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("route took %v, want >= the injected 50ms", d)
	}
}
