package chaos

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"pops"
	"pops/internal/service"
)

// BenchmarkOverloadShedding records the overload posture at increasing load
// multiples against a drag-throttled service: goodput (admitted requests
// per second) and the admitted-request p99 at 1x, 2x, and 4x the baseline
// offered load. The robustness contract is visible directly in the series:
// goodput saturates near capacity while admitted p99 stays bounded — the
// excess shows up as sheds, not as latency. ns/op is whole-ramp wall time.
//
// Recorded as a BENCH artifact via:
//
//	go run ./cmd/benchrecord -out BENCH_<date>_overload.json \
//	    -bench BenchmarkOverloadShedding -pkg ./internal/chaos -benchtime 3x
func BenchmarkOverloadShedding(b *testing.B) {
	loads := []struct {
		name    string
		workers int
		pace    time.Duration
	}{
		// Capacity under a 1ms drag is ~BatchSize (4) plans per ms. 1x sits
		// well under it; 2x near it; 4x (unpaced) far past it.
		{"load-1x", 2, 2 * time.Millisecond},
		{"load-2x", 6, time.Millisecond},
		{"load-4x", 16, 0},
	}
	for _, load := range loads {
		b.Run(load.name, func(b *testing.B) {
			drag := &PlanDrag{}
			drag.Set(time.Millisecond)
			cfg := service.Config{
				QueueDepth: 8, BatchSize: 4, BatchDelay: time.Millisecond,
				PlannerOptions: []pops.Option{pops.WithPlanObserver(drag)},
			}
			svc := service.New(cfg)
			srv := httptest.NewServer(svc.Handler())
			defer func() {
				drag.Set(0)
				svc.Close()
				srv.Close()
			}()
			client := pops.NewServiceClient(srv.URL, srv.Client())
			pi := pops.VectorReversal(16)
			do := func(ctx context.Context, i int) error {
				cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
				defer cancel()
				_, err := client.Route(cctx, 4, 4, pi)
				return err
			}

			b.ResetTimer()
			var rep *Report
			for i := 0; i < b.N; i++ {
				rep = Ramp{Workers: load.workers, Requests: 300, Interval: load.pace}.
					Run(context.Background(), do)
			}
			b.StopTimer()
			b.ReportMetric(rep.GoodputRPS(), "goodput_rps")
			b.ReportMetric(float64(rep.Percentile(0.99))/1e6, "admitted_p99_ms")
			b.ReportMetric(float64(rep.Shed), "sheds")
		})
	}
}
