package service

import (
	"strconv"
	"time"

	"pops/internal/obs"
)

// collectMetrics renders the service's counters and histograms in Prometheus
// text exposition format. It is registered on the service's obs.Registry and
// runs on every GET /metrics scrape, reading the live counters — nothing is
// double-tracked. Plan-time families carry (d, g, strategy) labels, so the
// per-shape cost model the proxy's balancer wants can be scraped directly.
func (s *Service) collectMetrics(mw *obs.MetricWriter) {
	st := s.Stats()

	mw.Counter("pops_requests_total", "Routing requests admitted (batch entries counted individually).")
	mw.Value("", float64(st.Requests))
	mw.Counter("pops_streams_total", "Streaming plan requests admitted.")
	mw.Value("", float64(st.Streams))
	mw.Counter("pops_streamed_slots_total", "Slot records flushed over /route/stream.")
	mw.Value("", float64(st.StreamedSlots))
	mw.Gauge("pops_shards", "Live planner shards (distinct POPS shapes).")
	mw.Value("", float64(st.ShardCount))
	mw.Counter("pops_evicted_shards_total", "Planner shards evicted by the shard LRU.")
	mw.Value("", float64(st.EvictedShards))
	mw.Counter("pops_cache_hits_total", "Fingerprint plan-cache hits, including evicted shards.")
	mw.Value("", float64(st.CacheHits))
	mw.Counter("pops_cache_misses_total", "Fingerprint plan-cache misses, including evicted shards.")
	mw.Value("", float64(st.CacheMisses))
	mw.Counter("pops_fault_plans_total", "Faulty-permutation workloads served.")
	mw.Value("", float64(st.FaultPlans))
	mw.Counter("pops_unroutable_total", "Fault workloads rejected as unroutable.")
	mw.Value("", float64(st.Unroutable))
	mw.Counter("pops_sheds_total", "Requests shed with an overload verdict (HTTP 429).")
	mw.Value("", float64(st.Sheds))
	mw.Counter("pops_deadline_sheds_total", "Queued requests dropped because their propagated deadline expired.")
	mw.Value("", float64(st.DeadlineSheds))

	mw.Counter("pops_wire_requests_total", "Unary /route responses by negotiated wire codec.")
	for _, c := range st.WireCodecs {
		mw.Value(codecLabels(c.Codec), float64(c.Requests))
	}
	mw.Counter("pops_wire_streams_total", "/route/stream responses by negotiated wire codec.")
	for _, c := range st.WireCodecs {
		mw.Value(codecLabels(c.Codec), float64(c.Streams))
	}
	mw.Counter("pops_wire_streamed_bytes_total", "Bytes flushed over /route/stream by negotiated wire codec.")
	for _, c := range st.WireCodecs {
		mw.Value(codecLabels(c.Codec), float64(c.StreamedBytes))
	}

	mw.Counter("pops_tenant_admitted_total", "Requests admitted per tenant (TenantMix fairness ledger).")
	for _, t := range st.Tenants {
		mw.Value(tenantLabels(t.Tenant), float64(t.Admitted))
	}
	mw.Counter("pops_tenant_shed_total", "Requests shed per tenant with an overload verdict.")
	for _, t := range st.Tenants {
		mw.Value(tenantLabels(t.Tenant), float64(t.Shed))
	}
	mw.Counter("pops_tenant_deadline_shed_total", "Queued requests dropped per tenant on an expired deadline.")
	for _, t := range st.Tenants {
		mw.Value(tenantLabels(t.Tenant), float64(t.DeadlineShed))
	}
	mw.Gauge("pops_tenant_weight", "Configured admission weight per tenant.")
	for _, t := range st.Tenants {
		mw.Value(tenantLabels(t.Tenant), t.Weight)
	}

	mw.HistogramFamily("pops_request_latency_seconds", "End-to-end request latency (traced requests observe their span total).")
	mw.Histogram("", st.Latency, s.latency.Sum())
	mw.HistogramFamily("pops_time_to_first_slot_seconds", "Admission to first streamed slot record.")
	mw.Histogram("", st.TimeToFirstSlot, s.ttfs.Sum())

	mw.Counter("pops_shard_requests_total", "Requests admitted per live shard.")
	for _, sh := range st.Shards {
		mw.Value(shardLabels(sh.D, sh.G), float64(sh.Requests))
	}
	mw.Gauge("pops_shard_cache_entries", "Fingerprint plan-cache entries per live shard.")
	for _, sh := range st.Shards {
		mw.Value(shardLabels(sh.D, sh.G), float64(sh.Cache.Entries))
	}
	mw.Gauge("pops_shard_queue_len", "Admission-queue occupancy per live shard.")
	for _, sh := range st.Shards {
		mw.Value(shardLabels(sh.D, sh.G), float64(sh.QueueLen))
	}
	mw.Counter("pops_shard_sheds_total", "Overload rejections per live shard.")
	for _, sh := range st.Shards {
		mw.Value(shardLabels(sh.D, sh.G), float64(sh.Sheds))
	}

	mw.HistogramFamily("pops_plan_time_seconds", "Planning time by shape and strategy (cache hits excluded).")
	for _, pt := range st.PlanTimes {
		mw.Histogram(planLabels(pt), pt.Buckets, time.Duration(pt.SumMicros*float64(time.Microsecond)))
	}
	mw.Gauge("pops_plan_time_ewma_seconds", "EWMA of planning time by shape and strategy (alpha 0.2).")
	for _, pt := range st.PlanTimes {
		mw.Value(planLabels(pt), pt.EWMAMicros/1e6)
	}
	mw.Counter("pops_plan_cache_hits_total", "Plan-cache hits by shape and strategy.")
	for _, pt := range st.PlanTimes {
		mw.Value(planLabels(pt), float64(pt.CacheHits))
	}
}

func codecLabels(codec string) string {
	return obs.Labels("wire_codec", codec)
}

func shardLabels(d, g int) string {
	return obs.Labels("d", strconv.Itoa(d), "g", strconv.Itoa(g))
}

// tenantLabels renders the tenant label; the untagged default tenant scrapes
// as tenant="default" so the series name is never an empty label value.
func tenantLabels(tenant string) string {
	if tenant == "" {
		tenant = "default"
	}
	return obs.Labels("tenant", tenant)
}

func planLabels(pt obs.PlanTimeStat) string {
	return obs.Labels("d", strconv.Itoa(pt.D), "g", strconv.Itoa(pt.G), "strategy", pt.Strategy)
}
