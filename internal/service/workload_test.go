package service

import (
	"bytes"
	"context"
	"testing"

	"pops"
	"pops/internal/popsnet"
	"pops/internal/wire"
)

// testRelation builds a deterministic saturated h-relation on n processors.
func testRelation(n, h int) []pops.Request {
	reqs := make([]pops.Request, 0, n*h)
	for k := 0; k < h; k++ {
		for s := 0; s < n; s++ {
			reqs = append(reqs, pops.Request{Src: s, Dst: (s + k + 1) % n})
		}
	}
	return reqs
}

// TestWorkloadHRelationRoundTrip drives an h-relation through both wire
// surfaces: POST /route (tagged workload, full schedule) and POST
// /route/stream, requiring the streamed slots to reassemble into the exact
// batch schedule, the plan cache to answer the replay, and the delivery to
// replay on the simulator.
func TestWorkloadHRelationRoundTrip(t *testing.T) {
	_, client := newTestServer(t, Config{})
	const d, g, h = 2, 4, 3
	n := d * g
	ctx := context.Background()
	reqs := testRelation(n, h)
	w := pops.HRelation(reqs)

	first, err := client.Execute(ctx, d, g, w)
	if err != nil {
		t.Fatal(err)
	}
	wantSlots := h * pops.OptimalSlots(d, g)
	if first.Workload != wire.WorkloadHRelation || first.H != h || first.Slots != wantSlots || first.Cached {
		t.Fatalf("first execute = %+v, want uncached %q h=%d slots=%d", first, wire.WorkloadHRelation, h, wantSlots)
	}
	second, err := client.Execute(ctx, d, g, w)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second execute of the same h-relation missed the workload plan cache")
	}

	// The batch schedule over the wire, for the stream comparison below.
	wireReqs := make([]wire.Request, len(reqs))
	for i, r := range reqs {
		wireReqs[i] = wire.Request{Src: r.Src, Dst: r.Dst}
	}
	resp, err := client.Do(ctx, &pops.ServiceRouteRequest{
		D: d, G: g, Workload: wire.WorkloadHRelation, Requests: wireReqs, IncludeSchedule: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Plans) != 1 || resp.Plans[0].Schedule == nil {
		t.Fatalf("workload /route returned %+v", resp)
	}
	batchSched := resp.Plans[0].Schedule

	st, err := client.ExecuteStream(ctx, d, g, w)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	meta := st.Meta()
	if meta.Workload != wire.WorkloadHRelation || meta.Strategy != pops.StrategyHRelation || meta.Slots != wantSlots {
		t.Fatalf("stream meta = %+v", meta)
	}
	slots := collectServiceStream(t, st)
	st.Close()

	streamSched := &popsnet.Schedule{Net: batchSched.Net, Slots: slots}
	var sb, bb bytes.Buffer
	if err := streamSched.Format(&sb); err != nil {
		t.Fatal(err)
	}
	if err := batchSched.Format(&bb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != bb.String() {
		t.Fatalf("streamed schedule diverges from batch:\n%s\nvs\n%s", sb.String(), bb.String())
	}

	// Replay the delivery on the simulator: every request must arrive.
	home := make([]int, len(reqs))
	want := make([]int, len(reqs))
	for i, r := range reqs {
		home[i] = r.Src
		want[i] = r.Dst
	}
	if _, err := popsnet.VerifyDelivery(streamSched, home, want); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadAllToAllAndOneToAll covers the remaining workload kinds over
// the wire: the complete exchange (cached on replay — it is fully
// determined by the shape) and the broadcast.
func TestWorkloadAllToAllAndOneToAll(t *testing.T) {
	_, client := newTestServer(t, Config{})
	const d, g = 2, 2
	n := d * g
	ctx := context.Background()

	first, err := client.Execute(ctx, d, g, pops.AllToAll())
	if err != nil {
		t.Fatal(err)
	}
	if first.H != n-1 || first.Slots != (n-1)*pops.OptimalSlots(d, g) || first.Cached {
		t.Fatalf("all-to-all = %+v", first)
	}
	second, err := client.Execute(ctx, d, g, pops.AllToAll())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeated all-to-all missed the plan cache")
	}

	bc, err := client.Execute(ctx, d, g, pops.OneToAll(2))
	if err != nil {
		t.Fatal(err)
	}
	if bc.Workload != wire.WorkloadOneToAll || bc.Slots != 1 {
		t.Fatalf("one-to-all = %+v", bc)
	}
	// Planning failures stay per-entry: an out-of-range speaker.
	if _, err := client.Execute(ctx, d, g, pops.OneToAll(99)); err == nil {
		t.Fatal("out-of-range speaker accepted")
	}
	// Strategy selection is a permutation-only concept.
	if _, err := client.Do(ctx, &pops.ServiceRouteRequest{
		D: d, G: g, Workload: wire.WorkloadAllToAll, Strategy: pops.StrategyGreedy,
	}); err == nil {
		t.Fatal("strategy on a non-permutation workload accepted")
	}
}
