package service

import (
	"math/bits"
	"sync/atomic"
	"time"

	"pops/internal/wire"
)

// latencyBucketCount sizes the request-latency histogram: bucket i counts
// requests in (2^(i−1), 2^i] microseconds, so 20 buckets cover ≤1µs up to
// ≤262ms, with the last bucket absorbing everything slower.
const latencyBucketCount = 20

// histogram is a lock-free power-of-two latency histogram. Observations and
// snapshots may race benignly: each bucket is independently atomic, which is
// all a monitoring counter needs.
type histogram struct {
	counts [latencyBucketCount]atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	us := uint64(max(d.Microseconds(), 0))
	var b int
	if us > 0 {
		// Len64(us−1) keeps exact powers of two in their own bucket, so
		// bucket i really is (2^(i−1), 2^i]: 1µs → bucket 0, 2µs →
		// bucket 1, 3µs → bucket 2.
		b = bits.Len64(us - 1)
	}
	if b >= latencyBucketCount {
		b = latencyBucketCount - 1
	}
	h.counts[b].Add(1)
}

func (h *histogram) snapshot() []wire.LatencyBucket {
	out := make([]wire.LatencyBucket, latencyBucketCount)
	for i := range out {
		le := uint64(1) << i
		if i == latencyBucketCount-1 {
			le = 0 // the unbounded overflow bucket
		}
		out[i] = wire.LatencyBucket{LEMicros: le, Count: h.counts[i].Load()}
	}
	return out
}
