package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pops"
	"pops/internal/obs"
	"pops/internal/wire"
)

// Stream is one admitted /route/stream request: a handle that delivers the
// plan's slot fragments as the shard's planner peels them. Streams bypass
// the shard's micro-batching queue — each stream checks a worker planner
// out of the shard's pops.Planner pool and runs on the caller's goroutine,
// so the admission queue keeps admitting (and flushing) other requests
// between Next calls, including while this stream's factorization is still
// in progress.
//
// The admission context is threaded into the planner stream: cancelling it
// stops factor production at the next Next call (the context error surfaces
// through Err) and the worker planner returns to the pool on Close.
//
// The caller MUST Close the stream (idempotent, safe after exhaustion):
// Close releases the worker planner back to the shard's pool and signals
// the service's drain bookkeeping — an abandoned stream would otherwise
// block graceful shutdown.
type Stream struct {
	svc   *Service
	sh    *shard
	ps    *pops.PlanStream // nil for non-relay strategies (plan below)
	plan  *pops.Plan       // whole-slot replay for non-default strategies
	meta  wire.StreamMeta
	start time.Time
	ttfs  bool // first fragment observed

	replayIdx int
	slots     uint64
	ended     bool // all fragments produced (or planning failed)
	err       error
	closed    bool
}

// RouteStream admits a streaming plan request for permutation pi on
// POPS(d, g). The returned error is request-level (invalid shape or
// permutation, unknown strategy, service shutting down); planning failures
// after admission surface through Stream.Err. Strategy "" and "theorem2"
// stream incrementally; other strategies plan first and then replay whole
// slots.
func (s *Service) RouteStream(ctx context.Context, d, g int, pi []int, strategy string) (*Stream, error) {
	if strategy != "" && strategy != pops.StrategyTheoremTwo {
		return s.admitStreamRetrying(ctx, d, g, nil, pi, strategy)
	}
	return s.admitStreamRetrying(ctx, d, g, pops.Permutation(pi), nil, "")
}

// ExecuteStream admits a streaming plan request for any workload: slot
// fragments are flushed while the König factorization — of the group demand
// graph for permutations, of the request multigraph for h-relations — is
// still peeling later factors. ctx cancels planning between factors.
func (s *Service) ExecuteStream(ctx context.Context, d, g int, w pops.Workload) (*Stream, error) {
	if w == nil {
		return nil, pops.ErrNilWorkload
	}
	st, err := s.admitStreamRetrying(ctx, d, g, w, nil, "")
	if w.Kind() == pops.WorkloadFaultyPermutation {
		// Fault streams are planned at admission, so an unroutable fault set
		// surfaces here as the admission error — count it like Execute does.
		s.faultPlans.Add(1)
		var ue *pops.UnroutableError
		if errors.As(err, &ue) {
			s.unroutable.Add(1)
		}
	}
	return st, err
}

// admitStreamRetrying resolves the shard (retrying across evictions) and
// admits the stream. Exactly one of w (workload streaming) and pi+strategy
// (non-default strategy replay) is set.
func (s *Service) admitStreamRetrying(ctx context.Context, d, g int, w pops.Workload, pi []int, strategy string) (*Stream, error) {
	for {
		sh, err := s.shardFor(d, g)
		if err != nil {
			return nil, err
		}
		st, err := sh.admitStream(ctx, w, pi, strategy)
		if err == errShardRetired {
			continue // the shard was evicted between lookup and admission
		}
		if err != nil {
			return nil, err
		}
		return st, nil
	}
}

// admitStream checks shutdown state and the shard's concurrent-stream cap,
// registers the stream with the service's drain group, and starts planning.
func (sh *shard) admitStream(ctx context.Context, w pops.Workload, pi []int, strategy string) (*Stream, error) {
	svc := sh.svc
	tenant := pops.TenantFromContext(ctx)
	sh.mu.RLock()
	if sh.closed {
		sh.mu.RUnlock()
		return nil, errShardRetired
	}
	// Each open stream owns a worker planner and a goroutine's worth of
	// factorization, so unbounded streams were the one admission path with
	// no queue to overflow — cap them like everything else (satisfying the
	// shed-don't-collapse invariant for /route/stream too).
	if !sh.acquireStream() {
		sh.mu.RUnlock()
		return nil, sh.shed(tenant, "stream")
	}
	// Registered under the admission lock so a concurrent Close cannot
	// start waiting on the drain group before this stream is counted.
	svc.streamsWG.Add(1)
	sh.mu.RUnlock()

	st := &Stream{svc: svc, sh: sh, start: time.Now()}
	ok := false
	defer func() {
		if !ok {
			sh.releaseStream()
			svc.streamsWG.Done()
		}
	}()

	if w != nil {
		ps, err := sh.planner.ExecuteStream(ctx, w)
		if err != nil {
			return nil, err
		}
		st.ps = ps
		wireKind := w.Kind()
		planStrategy := pops.StrategyTheoremTwo
		switch wireKind {
		case pops.WorkloadPermutation:
			wireKind = "" // the original untagged schema
		case pops.WorkloadHRelation, pops.WorkloadAllToAll:
			planStrategy = pops.StrategyHRelation
		case pops.WorkloadOneToAll:
			planStrategy = pops.StrategyOneToAll
		case pops.WorkloadFaultyPermutation:
			// StrategyFaulty for a repaired plan, StrategyTheoremTwo when the
			// fault set was empty and planning delegated.
			planStrategy = ps.Strategy()
		}
		st.meta = wire.StreamMeta{
			D: sh.key.d, G: sh.key.g, Workload: wireKind,
			Slots: ps.SlotCount(), Fragments: ps.FragmentCount(),
			Strategy: planStrategy, Fingerprint: fmt.Sprintf("%016x", pops.WorkloadFingerprint(w)),
			Cached: ps.Cached(),
		}
	} else {
		// Direct strategies have no incremental planner; plan up front and
		// stream the finished slots (their time-to-first-slot is the full
		// planning latency, faithfully recorded in the histogram). The
		// router has no internal phase hooks, so its whole routing time is
		// the factorize phase and one plan-time observation.
		r, err := sh.routerFor(strategy)
		if err != nil {
			return nil, err
		}
		routeStart := time.Now()
		plan, err := r.Route(pi)
		dur := time.Since(routeStart)
		obs.SpanFromContext(ctx).Add(obs.PhaseFactorize, dur)
		if err != nil {
			return nil, err
		}
		svc.tracer.Plan.Observe(sh.key.d, sh.key.g, plan.Strategy, false, dur)
		st.plan = plan
		st.meta = wire.StreamMeta{
			D: sh.key.d, G: sh.key.g,
			Slots: plan.SlotCount(), Fragments: plan.SlotCount(),
			Strategy: plan.Strategy, Fingerprint: fmt.Sprintf("%016x", pops.PermutationFingerprint(pi)),
		}
	}
	sh.requests.Add(1)
	sh.streams.Add(1)
	svc.requests.Add(1)
	svc.streams.Add(1)
	svc.tenant(tenant).admitted.Add(1)
	ok = true
	return st, nil
}

// Meta returns the stream's opening record, available immediately after
// admission — before any slot has been computed.
func (st *Stream) Meta() wire.StreamMeta { return st.meta }

// Next produces the next slot fragment, or ok == false when the stream is
// exhausted or failed (see Err). The first successful Next observes the
// service's time-to-first-slot histogram.
func (st *Stream) Next() (wire.StreamSlot, bool) {
	if st.err != nil || st.closed {
		return wire.StreamSlot{}, false
	}
	var rec wire.StreamSlot
	if st.ps != nil {
		frag, ok := st.ps.Next()
		if !ok {
			st.err = st.ps.Err()
			if st.err == nil {
				// Collect the drained plan: under pops.WithVerify this is
				// where the completed schedule is replayed on the simulator
				// (a failure becomes the stream's error record instead of a
				// done record), and where the plan is memoized so repeated
				// streamed workloads hit the fingerprint cache.
				if _, err := st.ps.Collect(); err != nil {
					st.err = err
				}
			}
			st.finish()
			return wire.StreamSlot{}, false
		}
		rec = wire.StreamSlot{Slot: frag.Slot, Color: frag.Color, Offset: frag.Offset, Final: frag.Final, Sends: frag.Sends, Recvs: frag.Recvs}
	} else {
		slots := st.plan.Schedule().Slots
		if st.replayIdx >= len(slots) {
			st.finish()
			return wire.StreamSlot{}, false
		}
		slot := &slots[st.replayIdx]
		rec = wire.StreamSlot{Slot: st.replayIdx, Color: -1, Final: true, Sends: slot.Sends, Recvs: slot.Recvs}
		st.replayIdx++
	}
	if !st.ttfs {
		st.ttfs = true
		st.svc.ttfs.Observe(time.Since(st.start))
	}
	st.slots++
	st.svc.streamedSlots.Add(1)
	return rec, true
}

// Err returns the stream's planning error, if any — including ctx.Err()
// when the admission context was cancelled mid-stream.
func (st *Stream) Err() error { return st.err }

// finish records the stream's planning latency once all fragments have
// been produced (or planning failed). Measuring here — not at Close —
// keeps the shared request-latency histogram a server-side planning
// signal: Close time is dominated by how slowly the client read the
// records, and abandoned streams contribute no latency sample at all.
func (st *Stream) finish() {
	if st.ended {
		return
	}
	st.ended = true
	st.svc.latency.Observe(time.Since(st.start))
}

// Close releases the stream's worker planner, frees its slot against the
// shard's concurrent-stream cap, and unblocks graceful drain. Idempotent;
// always call it, drained or not.
func (st *Stream) Close() {
	if st.closed {
		return
	}
	st.closed = true
	if st.ps != nil {
		st.ps.Close()
	}
	st.sh.releaseStream()
	st.svc.streamsWG.Done()
}
