package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"pops"
	"pops/internal/obs"
	"pops/internal/perms"
	"pops/internal/wire"
)

// errShardRetired is returned by admit when the shard was evicted between
// the registry lookup and admission; callers re-resolve the shard and retry.
var errShardRetired = errors.New("service: shard retired")

// Result is the outcome of one admitted permutation: a plan or a per-entry
// planning error, plus whether the plan came from the fingerprint cache.
type Result struct {
	Plan   *pops.Plan
	Cached bool
	Err    error
}

// request is one queued routing demand awaiting a micro-batch flush. sp is
// the admitting request's trace span (nil when untraced) and at its admission
// time, so the flush can attribute the queue wait to the span's queue phase.
type request struct {
	pi   []int
	done chan Result // buffered (cap 1) so flush never blocks on a reader
	sp   *obs.Span
	at   time.Time
}

// planTimeAdapter feeds the planner's PlanObserver callbacks into the
// service-wide per-(d, g, strategy) plan-time table.
type planTimeAdapter struct {
	pt   *obs.PlanTimes
	d, g int
}

func (a planTimeAdapter) ObservePlan(strategy string, cached bool, d time.Duration) {
	a.pt.Observe(a.d, a.g, strategy, cached, d)
}

// shard serves one POPS(d, g) shape: a pops.Planner with a fingerprint plan
// cache, fed by an admission queue that coalesces concurrent requests into
// micro-batches for RouteBatch. Non-default strategies bypass the queue —
// routers are stateless and safe for concurrent use, and only the Theorem 2
// planner has batch-amortizable state.
type shard struct {
	key shapeKey
	svc *Service

	planner *pops.Planner

	// mu orders admissions against close: admitters hold the read lock
	// across the closed check and the queue send, so once close acquires
	// the write lock and flips closed, no further send can race the
	// close(reqs) that follows.
	mu     sync.RWMutex
	closed bool
	reqs   chan request
	done   chan struct{} // closed when loop has drained and exited

	routersMu sync.Mutex
	routers   map[string]pops.Router

	requests atomic.Uint64
	streams  atomic.Uint64
	batches  atomic.Uint64
	batched  atomic.Uint64
	maxBatch atomic.Uint64
}

func newShard(s *Service, d, g int) (*shard, error) {
	opts := append([]pops.Option(nil), s.cfg.PlannerOptions...)
	if s.cfg.CacheSize > 0 {
		opts = append(opts, pops.WithPlanCache(s.cfg.CacheSize))
	}
	opts = append(opts, pops.WithPlanObserver(planTimeAdapter{pt: s.tracer.Plan, d: d, g: g}))
	planner, err := pops.NewPlanner(d, g, opts...)
	if err != nil {
		return nil, err
	}
	return &shard{
		key:     shapeKey{d, g},
		svc:     s,
		planner: planner,
		reqs:    make(chan request, s.cfg.BatchSize),
		done:    make(chan struct{}),
		routers: make(map[string]pops.Router),
	}, nil
}

// route admits pi and waits for its result, abandoning the wait when ctx is
// cancelled (the admitted entry still completes within its micro-batch).
func (sh *shard) route(ctx context.Context, pi []int, strategy string) (Result, error) {
	ch, err := sh.admit(ctx, pi, strategy)
	if err != nil {
		return Result{}, err
	}
	select {
	case res := <-ch:
		return res, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// execute runs a non-permutation workload directly on the shard's planner,
// bypassing the micro-batching queue: the planner's own worker pool and
// plan cache provide the amortization for these kinds.
func (sh *shard) execute(ctx context.Context, w pops.Workload) (Result, error) {
	sh.mu.RLock()
	if sh.closed {
		sh.mu.RUnlock()
		return Result{}, errShardRetired
	}
	sh.requests.Add(1)
	sh.mu.RUnlock()
	plan, cached, err := sh.planner.ExecuteCached(ctx, w)
	if err != nil {
		// Context errors are request-level: the caller went away, nothing
		// was planned. Workload errors (bad requests, bad speaker) stay
		// per-entry like planning failures of the batch path.
		if ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		return Result{Err: err}, nil
	}
	return Result{Plan: plan, Cached: cached}, nil
}

// admit enqueues pi on the micro-batching queue (default strategy) or
// dispatches it to the named strategy router, returning the channel its
// Result will arrive on. The returned error is request-level: a retired
// shard or an unknown strategy, never a planning failure. ctx's trace span
// (if any) rides along: queued requests charge the wait to the queue phase,
// and strategy routers — which have no internal phase hooks — charge their
// whole routing time to the factorize phase. The channel hand-off orders the
// goroutines' span writes before the admitting request reads them.
func (sh *shard) admit(ctx context.Context, pi []int, strategy string) (chan Result, error) {
	ch := make(chan Result, 1)
	sp := obs.SpanFromContext(ctx)
	if strategy != "" && strategy != pops.StrategyTheoremTwo {
		r, err := sh.routerFor(strategy)
		if err != nil {
			return nil, err
		}
		sh.requests.Add(1)
		go func() {
			start := time.Now()
			plan, rerr := r.Route(pi)
			dur := time.Since(start)
			sp.Add(obs.PhaseFactorize, dur)
			if plan != nil {
				sh.svc.tracer.Plan.Observe(sh.key.d, sh.key.g, plan.Strategy, false, dur)
			}
			ch <- Result{Plan: plan, Err: rerr}
		}()
		return ch, nil
	}
	sh.mu.RLock()
	if sh.closed {
		sh.mu.RUnlock()
		return nil, errShardRetired
	}
	sh.requests.Add(1)
	sh.reqs <- request{pi: pi, done: ch, sp: sp, at: time.Now()}
	sh.mu.RUnlock()
	return ch, nil
}

// routerFor lazily builds and caches the non-default strategy routers.
func (sh *shard) routerFor(strategy string) (pops.Router, error) {
	sh.routersMu.Lock()
	defer sh.routersMu.Unlock()
	if r, ok := sh.routers[strategy]; ok {
		return r, nil
	}
	r, err := pops.NewRouter(strategy, sh.key.d, sh.key.g, sh.svc.cfg.PlannerOptions...)
	if err != nil {
		return nil, err
	}
	sh.routers[strategy] = r
	return r, nil
}

// close stops admissions and closes the queue; the loop drains whatever is
// already buffered and exits. Idempotent.
func (sh *shard) close() {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.closed = true
	sh.mu.Unlock()
	close(sh.reqs)
}

// loop is the shard's admission loop: it collects requests into a batch
// until the batch is full or BatchDelay has passed since the batch opened,
// then flushes the batch onto the planner. A closed queue delivers its
// buffered requests first, so shutdown drains in-flight work before the
// loop exits.
func (sh *shard) loop() {
	defer sh.svc.wg.Done()
	defer close(sh.done)
	size := sh.svc.cfg.BatchSize
	delay := sh.svc.cfg.BatchDelay
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var batch []request
	for {
		req, ok := <-sh.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], req)
		timer.Reset(delay)
		timerDrained := false
	fill:
		for len(batch) < size {
			select {
			case r, ok := <-sh.reqs:
				if !ok {
					// Queue closed and empty: flush what we have; the
					// next outer receive observes the close and exits.
					break fill
				}
				batch = append(batch, r)
			case <-timer.C:
				timerDrained = true
				break fill
			}
		}
		if !timerDrained && !timer.Stop() {
			<-timer.C
		}
		sh.flush(batch)
	}
}

// flush coalesces the batch's duplicate permutations (so N concurrent
// identical requests cost at most one planner invocation), plans the unique
// ones through Planner.RouteBatchCached, and fans the per-index results back
// out to every waiter.
func (sh *shard) flush(batch []request) {
	n := uint64(len(batch))
	sh.batches.Add(1)
	sh.batched.Add(n)
	for {
		cur := sh.maxBatch.Load()
		if n <= cur || sh.maxBatch.CompareAndSwap(cur, n) {
			break
		}
	}

	// Charge each waiter's queue delay — admission to flush start — to its
	// span's queue phase, whether or not its permutation dedups away.
	flushStart := time.Now()
	for _, r := range batch {
		r.sp.Add(obs.PhaseQueue, flushStart.Sub(r.at))
	}

	uniq := make([][]int, 0, len(batch))
	owners := make([][]int, 0, len(batch)) // unique index -> batch indices
	byFp := make(map[uint64][]int, len(batch))
	for bi, r := range batch {
		fp := pops.PermutationFingerprint(r.pi)
		idx := -1
		for _, ui := range byFp[fp] {
			if perms.Equal(uniq[ui], r.pi) {
				idx = ui
				break
			}
		}
		if idx < 0 {
			idx = len(uniq)
			uniq = append(uniq, r.pi)
			owners = append(owners, nil)
			byFp[fp] = append(byFp[fp], idx)
		}
		owners[idx] = append(owners[idx], bi)
	}

	// Each unique entry plans under the span of its first owner, so the
	// cache and factorize phases land on the request that triggered the
	// planning; duplicate waiters share the result but record no plan
	// phases of their own. The done-channel send orders those span writes
	// before the owning request reads its span back.
	ctxs := make([]context.Context, len(uniq))
	for ui, bis := range owners {
		if sp := batch[bis[0]].sp; sp != nil {
			ctxs[ui] = obs.ContextWithSpan(context.Background(), sp)
		}
	}

	plans, cached, err := sh.planner.RouteBatchContexts(ctxs, uniq)
	errs := perIndexErrors(err, len(uniq))
	for ui := range uniq {
		res := Result{Plan: plans[ui], Cached: cached[ui], Err: errs[ui]}
		for _, bi := range owners[ui] {
			batch[bi].done <- res
		}
	}
}

// perIndexErrors redistributes a RouteBatch errors.Join aggregate back onto
// batch indices, using the typed *pops.BatchError elements.
func perIndexErrors(err error, n int) []error {
	out := make([]error, n)
	if err == nil {
		return out
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		for i := range out {
			out[i] = err
		}
		return out
	}
	for _, sub := range joined.Unwrap() {
		var be *pops.BatchError
		if errors.As(sub, &be) && be.Index >= 0 && be.Index < n {
			out[be.Index] = be.Err
		}
	}
	return out
}

// stats snapshots the shard's counters.
func (sh *shard) stats() wire.ShardStats {
	cs := sh.planner.CacheStats()
	return wire.ShardStats{
		D:               sh.key.d,
		G:               sh.key.g,
		Requests:        sh.requests.Load(),
		Streams:         sh.streams.Load(),
		Batches:         sh.batches.Load(),
		BatchedRequests: sh.batched.Load(),
		MaxBatch:        sh.maxBatch.Load(),
		Cache: wire.CacheStats{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
			Capacity:  cs.Capacity,
		},
	}
}
