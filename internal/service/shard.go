package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"pops"
	"pops/internal/obs"
	"pops/internal/perms"
	"pops/internal/wire"
)

// errShardRetired is returned by admit when the shard was evicted between
// the registry lookup and admission; callers re-resolve the shard and retry.
var errShardRetired = errors.New("service: shard retired")

// Result is the outcome of one admitted permutation: a plan or a per-entry
// planning error, plus whether the plan came from the fingerprint cache.
type Result struct {
	Plan   *pops.Plan
	Cached bool
	Err    error
}

// request is one queued routing demand awaiting a micro-batch flush. sp is
// the admitting request's trace span (nil when untraced) and at its admission
// time, so the flush can attribute the queue wait to the span's queue phase.
// ctx is the admitting request's context: a queued entry whose deadline has
// already passed when its flush starts is shed before it reaches a planner
// worker, and tenant is the admission tenant the entry was charged to.
type request struct {
	ctx    context.Context
	pi     []int
	tenant string
	done   chan Result // buffered (cap 1) so flush never blocks on a reader
	sp     *obs.Span
	at     time.Time
}

// tenantBucket is one tenant's token bucket on one shard: tokens are debited
// at admission while the queue is contended and credited back in proportion
// to the tenant's weight as the queue drains, so refill is coupled to the
// shard's actual service rate — no separate rate configuration to drift out
// of sync with planner speed.
type tenantBucket struct {
	weight float64
	tokens float64
}

// planTimeAdapter feeds the planner's PlanObserver callbacks into the
// service-wide per-(d, g, strategy) plan-time table.
type planTimeAdapter struct {
	pt   *obs.PlanTimes
	d, g int
}

func (a planTimeAdapter) ObservePlan(strategy string, cached bool, d time.Duration) {
	a.pt.Observe(a.d, a.g, strategy, cached, d)
}

// observerChain fans one planner observation out to several observers, so a
// caller-supplied WithPlanObserver in Config.PlannerOptions composes with
// the service's plan-time table instead of being overridden by it.
type observerChain []pops.PlanObserver

func (c observerChain) ObservePlan(strategy string, cached bool, d time.Duration) {
	for _, o := range c {
		o.ObservePlan(strategy, cached, d)
	}
}

// shard serves one POPS(d, g) shape: a pops.Planner with a fingerprint plan
// cache, fed by an admission queue that coalesces concurrent requests into
// micro-batches for RouteBatch. Non-default strategies bypass the queue —
// routers are stateless and safe for concurrent use, and only the Theorem 2
// planner has batch-amortizable state.
type shard struct {
	key shapeKey
	svc *Service

	planner *pops.Planner

	// mu orders admissions against close: admitters hold the read lock
	// across the closed check and the queue send, so once close acquires
	// the write lock and flips closed, no further send can race the
	// close(reqs) that follows.
	mu     sync.RWMutex
	closed bool
	reqs   chan request
	done   chan struct{} // closed when loop has drained and exited

	routersMu sync.Mutex
	routers   map[string]pops.Router

	// buckets holds the per-tenant admission quotas (TenantMix): while the
	// queue is contended, each admission debits the tenant's bucket and each
	// flushed entry credits every bucket by its weight share.
	tenantMu sync.Mutex
	buckets  map[string]*tenantBucket

	requests atomic.Uint64
	streams  atomic.Uint64
	batches  atomic.Uint64
	batched  atomic.Uint64
	maxBatch atomic.Uint64

	// sheds counts overload rejections at this shard's bounds (queue,
	// tenant quota, stream cap, direct cap); deadlineSheds the queued
	// entries dropped at flush because their deadline had already passed.
	sheds         atomic.Uint64
	deadlineSheds atomic.Uint64
	// activeStreams/directActive hold the live occupancy against MaxStreams
	// and MaxDirect.
	activeStreams atomic.Int64
	directActive  atomic.Int64
}

func newShard(s *Service, d, g int) (*shard, error) {
	opts := append([]pops.Option(nil), s.cfg.PlannerOptions...)
	if s.cfg.CacheSize > 0 {
		opts = append(opts, pops.WithPlanCache(s.cfg.CacheSize))
	}
	var observer pops.PlanObserver = planTimeAdapter{pt: s.tracer.Plan, d: d, g: g}
	if user := pops.NewOptions(s.cfg.PlannerOptions...).Observer; user != nil {
		observer = observerChain{user, observer.(planTimeAdapter)}
	}
	opts = append(opts, pops.WithPlanObserver(observer))
	planner, err := pops.NewPlanner(d, g, opts...)
	if err != nil {
		return nil, err
	}
	return &shard{
		key:     shapeKey{d, g},
		svc:     s,
		planner: planner,
		reqs:    make(chan request, s.cfg.QueueDepth),
		done:    make(chan struct{}),
		routers: make(map[string]pops.Router),
		buckets: make(map[string]*tenantBucket),
	}, nil
}

// route admits pi and waits for its result, abandoning the wait when ctx is
// cancelled (the admitted entry still completes within its micro-batch).
func (sh *shard) route(ctx context.Context, pi []int, strategy string) (Result, error) {
	ch, err := sh.admit(ctx, pi, strategy)
	if err != nil {
		return Result{}, err
	}
	select {
	case res := <-ch:
		// An entry shed at flush because its own context expired is a
		// request-level outcome (the caller's deadline, not a planning
		// failure), normalized here so both select arms agree.
		if res.Err != nil && ctx.Err() != nil && errors.Is(res.Err, ctx.Err()) {
			return Result{}, res.Err
		}
		return res, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// execute runs a non-permutation workload directly on the shard's planner,
// bypassing the micro-batching queue: the planner's own worker pool and
// plan cache provide the amortization for these kinds.
func (sh *shard) execute(ctx context.Context, w pops.Workload) (Result, error) {
	tenant := pops.TenantFromContext(ctx)
	sh.mu.RLock()
	if sh.closed {
		sh.mu.RUnlock()
		return Result{}, errShardRetired
	}
	if !sh.acquireDirect() {
		sh.mu.RUnlock()
		return Result{}, sh.shed(tenant, "direct")
	}
	sh.requests.Add(1)
	sh.svc.tenant(tenant).admitted.Add(1)
	sh.mu.RUnlock()
	defer sh.releaseDirect()
	plan, cached, err := sh.planner.ExecuteCached(ctx, w)
	if err != nil {
		// Context errors are request-level: the caller went away, nothing
		// was planned. Workload errors (bad requests, bad speaker) stay
		// per-entry like planning failures of the batch path.
		if ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		return Result{Err: err}, nil
	}
	return Result{Plan: plan, Cached: cached}, nil
}

// admit enqueues pi on the micro-batching queue (default strategy) or
// dispatches it to the named strategy router, returning the channel its
// Result will arrive on. The returned error is request-level: a retired
// shard, an unknown strategy, or an overload verdict — never a planning
// failure. The queue send never blocks: a full queue (or an exhausted
// tenant quota while the queue is contended) sheds the request immediately
// with a typed *pops.OverloadError, so callers learn to back off in
// admission time rather than queueing time. ctx's trace span (if any) rides
// along: queued requests charge the wait to the queue phase, and strategy
// routers — which have no internal phase hooks — charge their whole routing
// time to the factorize phase. The channel hand-off orders the goroutines'
// span writes before the admitting request reads them.
func (sh *shard) admit(ctx context.Context, pi []int, strategy string) (chan Result, error) {
	ch := make(chan Result, 1)
	sp := obs.SpanFromContext(ctx)
	tenant := pops.TenantFromContext(ctx)
	if strategy != "" && strategy != pops.StrategyTheoremTwo {
		r, err := sh.routerFor(strategy)
		if err != nil {
			return nil, err
		}
		if !sh.acquireDirect() {
			return nil, sh.shed(tenant, "direct")
		}
		sh.requests.Add(1)
		sh.svc.tenant(tenant).admitted.Add(1)
		go func() {
			defer sh.releaseDirect()
			start := time.Now()
			plan, rerr := r.Route(pi)
			dur := time.Since(start)
			sp.Add(obs.PhaseFactorize, dur)
			if plan != nil {
				sh.svc.tracer.Plan.Observe(sh.key.d, sh.key.g, plan.Strategy, false, dur)
			}
			ch <- Result{Plan: plan, Err: rerr}
		}()
		return ch, nil
	}
	if err := ctx.Err(); err != nil {
		// The caller is already gone (deadline passed or hung up); refuse
		// the queue slot rather than planning for nobody.
		return nil, err
	}
	sh.mu.RLock()
	if sh.closed {
		sh.mu.RUnlock()
		return nil, errShardRetired
	}
	debited, ok := sh.tenantAdmit(tenant)
	if !ok {
		sh.mu.RUnlock()
		return nil, sh.shed(tenant, "admission")
	}
	select {
	case sh.reqs <- request{ctx: ctx, pi: pi, tenant: tenant, done: ch, sp: sp, at: time.Now()}:
		sh.requests.Add(1)
		sh.svc.tenant(tenant).admitted.Add(1)
		sh.mu.RUnlock()
		return ch, nil
	default:
		sh.mu.RUnlock()
		if debited {
			sh.refundTenant(tenant)
		}
		return nil, sh.shed(tenant, "admission")
	}
}

// acquireDirect claims one direct-path slot (strategy routers, workload
// execution), reporting false when MaxDirect is configured and exhausted.
func (sh *shard) acquireDirect() bool {
	n := sh.directActive.Add(1)
	if max := sh.svc.cfg.MaxDirect; max > 0 && n > int64(max) {
		sh.directActive.Add(-1)
		return false
	}
	return true
}

func (sh *shard) releaseDirect() { sh.directActive.Add(-1) }

// acquireStream claims one concurrent-stream slot, reporting false when
// MaxStreams is configured and exhausted. Stream.Close releases it.
func (sh *shard) acquireStream() bool {
	n := sh.activeStreams.Add(1)
	if max := sh.svc.cfg.MaxStreams; max > 0 && n > int64(max) {
		sh.activeStreams.Add(-1)
		return false
	}
	return true
}

func (sh *shard) releaseStream() { sh.activeStreams.Add(-1) }

// shed records one overload rejection against the shard and the tenant's
// fairness ledger, and builds the typed verdict with the shard's current
// backoff hint.
func (sh *shard) shed(tenant, queue string) error {
	sh.sheds.Add(1)
	sh.svc.tenant(tenant).shed.Add(1)
	return &pops.OverloadError{
		D: sh.key.d, G: sh.key.g, Tenant: tenant, Queue: queue,
		RetryAfter: sh.retryAfterHint(),
	}
}

// retryAfterHint estimates when the shard can admit again: the queued
// batches ahead times the measured per-batch plan time (the plan-time EWMA,
// floored at BatchDelay before any measurement exists), clamped to a sane
// advertisable range.
func (sh *shard) retryAfterHint() time.Duration {
	per := sh.svc.tracer.Plan.EWMA(sh.key.d, sh.key.g, pops.StrategyTheoremTwo)
	if per < sh.svc.cfg.BatchDelay {
		per = sh.svc.cfg.BatchDelay
	}
	batches := time.Duration(len(sh.reqs)/sh.svc.cfg.BatchSize + 1)
	hint := batches * per
	if hint < 5*time.Millisecond {
		hint = 5 * time.Millisecond
	}
	if hint > 2*time.Second {
		hint = 2 * time.Second
	}
	return hint
}

// tenantAdmit charges one queue slot to the tenant's bucket. While the
// queue is uncontended (less than half full) admission is free — quotas
// only bite when tenants are actually competing for queue service, so an
// idle shard never throttles a bursty tenant. It reports whether a token
// was debited (so a failed queue send can refund it) and whether the
// admission may proceed.
func (sh *shard) tenantAdmit(tenant string) (debited, ok bool) {
	if len(sh.reqs)*2 < cap(sh.reqs) {
		return false, true
	}
	sh.tenantMu.Lock()
	defer sh.tenantMu.Unlock()
	b := sh.bucketLocked(tenant)
	if b.tokens >= 1 {
		b.tokens--
		return true, true
	}
	return false, false
}

// bucketLocked resolves (creating on first use) one tenant's bucket. A new
// tenant starts with its full burst so it is never shed before its first
// credit round. Callers hold tenantMu.
func (sh *shard) bucketLocked(tenant string) *tenantBucket {
	b := sh.buckets[tenant]
	if b == nil {
		b = &tenantBucket{weight: sh.svc.cfg.tenantWeight(tenant)}
		sh.buckets[tenant] = b
		b.tokens = sh.burstLocked(b)
	}
	return b
}

// burstLocked is the most tokens one bucket may hold: the tenant's weight
// share of the queue depth, floored at 1 so every tenant can always make
// progress. Callers hold tenantMu.
func (sh *shard) burstLocked(b *tenantBucket) float64 {
	var total float64
	for _, o := range sh.buckets {
		total += o.weight
	}
	burst := float64(cap(sh.reqs)) * b.weight / total
	if burst < 1 {
		burst = 1
	}
	return burst
}

// creditTenants distributes n units of completed queue service across the
// tenants by weight — the bucket refill is the queue's measured drain rate,
// so a tenant's sustained admission rate converges on its weighted-fair
// share of whatever the planner can actually serve.
func (sh *shard) creditTenants(n int) {
	if n <= 0 {
		return
	}
	sh.tenantMu.Lock()
	defer sh.tenantMu.Unlock()
	if len(sh.buckets) == 0 {
		return
	}
	var total float64
	for _, b := range sh.buckets {
		total += b.weight
	}
	for _, b := range sh.buckets {
		b.tokens += float64(n) * b.weight / total
		if burst := sh.burstLocked(b); b.tokens > burst {
			b.tokens = burst
		}
	}
}

// refundTenant returns one debited token after a failed queue send.
func (sh *shard) refundTenant(tenant string) {
	sh.tenantMu.Lock()
	if b := sh.buckets[tenant]; b != nil {
		b.tokens++
	}
	sh.tenantMu.Unlock()
}

// routerFor lazily builds and caches the non-default strategy routers.
func (sh *shard) routerFor(strategy string) (pops.Router, error) {
	sh.routersMu.Lock()
	defer sh.routersMu.Unlock()
	if r, ok := sh.routers[strategy]; ok {
		return r, nil
	}
	r, err := pops.NewRouter(strategy, sh.key.d, sh.key.g, sh.svc.cfg.PlannerOptions...)
	if err != nil {
		return nil, err
	}
	sh.routers[strategy] = r
	return r, nil
}

// close stops admissions and closes the queue; the loop drains whatever is
// already buffered and exits. Idempotent.
func (sh *shard) close() {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.closed = true
	sh.mu.Unlock()
	close(sh.reqs)
}

// loop is the shard's admission loop: it collects requests into a batch
// until the batch is full or BatchDelay has passed since the batch opened,
// then flushes the batch onto the planner. A closed queue delivers its
// buffered requests first, so shutdown drains in-flight work before the
// loop exits.
func (sh *shard) loop() {
	defer sh.svc.wg.Done()
	defer close(sh.done)
	size := sh.svc.cfg.BatchSize
	delay := sh.svc.cfg.BatchDelay
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var batch []request
	for {
		req, ok := <-sh.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], req)
		timer.Reset(delay)
		timerDrained := false
	fill:
		for len(batch) < size {
			select {
			case r, ok := <-sh.reqs:
				if !ok {
					// Queue closed and empty: flush what we have; the
					// next outer receive observes the close and exits.
					break fill
				}
				batch = append(batch, r)
			case <-timer.C:
				timerDrained = true
				break fill
			}
		}
		if !timerDrained && !timer.Stop() {
			<-timer.C
		}
		sh.flush(batch)
	}
}

// flush coalesces the batch's duplicate permutations (so N concurrent
// identical requests cost at most one planner invocation), plans the unique
// ones through Planner.RouteBatchCached, and fans the per-index results back
// out to every waiter.
func (sh *shard) flush(batch []request) {
	n := uint64(len(batch))
	sh.batches.Add(1)
	sh.batched.Add(n)
	for {
		cur := sh.maxBatch.Load()
		if n <= cur || sh.maxBatch.CompareAndSwap(cur, n) {
			break
		}
	}

	// Charge each waiter's queue delay — admission to flush start — to its
	// span's queue phase, whether or not its permutation dedups away. An
	// entry whose context has already expired is shed here, before the
	// planner sees it: its caller has given up (or its propagated deadline
	// passed while queued), so planning it would burn a worker on a result
	// nobody reads. The shed entry's waiter receives the context error.
	flushStart := time.Now()
	live := batch[:0]
	for _, r := range batch {
		r.sp.Add(obs.PhaseQueue, flushStart.Sub(r.at))
		if r.ctx != nil && r.ctx.Err() != nil {
			sh.deadlineSheds.Add(1)
			sh.svc.tenant(r.tenant).deadlineShed.Add(1)
			r.done <- Result{Err: r.ctx.Err()}
			continue
		}
		live = append(live, r)
	}
	batch = live
	defer sh.creditTenants(len(batch))
	if len(batch) == 0 {
		return
	}

	uniq := make([][]int, 0, len(batch))
	owners := make([][]int, 0, len(batch)) // unique index -> batch indices
	byFp := make(map[uint64][]int, len(batch))
	for bi, r := range batch {
		fp := pops.PermutationFingerprint(r.pi)
		idx := -1
		for _, ui := range byFp[fp] {
			if perms.Equal(uniq[ui], r.pi) {
				idx = ui
				break
			}
		}
		if idx < 0 {
			idx = len(uniq)
			uniq = append(uniq, r.pi)
			owners = append(owners, nil)
			byFp[fp] = append(byFp[fp], idx)
		}
		owners[idx] = append(owners[idx], bi)
	}

	// Each unique entry plans under the span of its first owner, so the
	// cache and factorize phases land on the request that triggered the
	// planning; duplicate waiters share the result but record no plan
	// phases of their own. The done-channel send orders those span writes
	// before the owning request reads its span back.
	ctxs := make([]context.Context, len(uniq))
	for ui, bis := range owners {
		if sp := batch[bis[0]].sp; sp != nil {
			ctxs[ui] = obs.ContextWithSpan(context.Background(), sp)
		}
	}

	plans, cached, err := sh.planner.RouteBatchContexts(ctxs, uniq)
	errs := perIndexErrors(err, len(uniq))
	for ui := range uniq {
		res := Result{Plan: plans[ui], Cached: cached[ui], Err: errs[ui]}
		for _, bi := range owners[ui] {
			batch[bi].done <- res
		}
	}
}

// perIndexErrors redistributes a RouteBatch errors.Join aggregate back onto
// batch indices, using the typed *pops.BatchError elements.
func perIndexErrors(err error, n int) []error {
	out := make([]error, n)
	if err == nil {
		return out
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		for i := range out {
			out[i] = err
		}
		return out
	}
	for _, sub := range joined.Unwrap() {
		var be *pops.BatchError
		if errors.As(sub, &be) && be.Index >= 0 && be.Index < n {
			out[be.Index] = be.Err
		}
	}
	return out
}

// stats snapshots the shard's counters.
func (sh *shard) stats() wire.ShardStats {
	cs := sh.planner.CacheStats()
	return wire.ShardStats{
		D:               sh.key.d,
		G:               sh.key.g,
		Requests:        sh.requests.Load(),
		Streams:         sh.streams.Load(),
		Batches:         sh.batches.Load(),
		BatchedRequests: sh.batched.Load(),
		MaxBatch:        sh.maxBatch.Load(),
		QueueLen:        len(sh.reqs),
		QueueCap:        cap(sh.reqs),
		Sheds:           sh.sheds.Load(),
		DeadlineSheds:   sh.deadlineSheds.Load(),
		ActiveStreams:   sh.activeStreams.Load(),
		Cache: wire.CacheStats{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
			Capacity:  cs.Capacity,
		},
	}
}
