package service

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pops"
	"pops/internal/obs"
	"pops/internal/perms"
	"pops/internal/popsnet"
)

// newTestServer mounts a fresh service on an httptest server and returns a
// client for it. Cleanup drains the service before the server closes.
func newTestServer(t *testing.T, cfg Config) (*Service, *pops.ServiceClient) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		svc.Close()
		srv.Close()
	})
	return svc, pops.NewServiceClient(srv.URL, srv.Client())
}

// TestEndToEndRouteVerifiesOnSimulator is the full round-trip: /route with
// include_schedule, rebuild the schedule client-side, replay it on the
// slot-level simulator (pops.Run semantics), and check the permutation was
// actually routed.
func TestEndToEndRouteVerifiesOnSimulator(t *testing.T) {
	_, client := newTestServer(t, Config{})
	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)
	resp, err := client.Do(context.Background(), &pops.ServiceRouteRequest{
		D: d, G: g, Pi: pi, IncludeSchedule: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := resp.Plans[0]
	if plan.Error != "" {
		t.Fatalf("plan error: %s", plan.Error)
	}
	if plan.Slots != pops.OptimalSlots(d, g) {
		t.Fatalf("slots = %d, want %d", plan.Slots, pops.OptimalSlots(d, g))
	}
	if plan.Schedule == nil {
		t.Fatal("include_schedule did not return a schedule")
	}
	// The wire schedule must replay on the simulator and route pi.
	if _, err := popsnet.VerifyPermutationRouted(plan.Schedule, pi); err != nil {
		t.Fatalf("served schedule failed simulation: %v", err)
	}
	// And pops.Run (the canonical replay) must accept it too.
	if _, err := pops.Run(plan.Schedule); err != nil {
		t.Fatalf("pops.Run rejected served schedule: %v", err)
	}
}

// TestConcurrentShardsAndCacheHits exercises the registry and cache under
// the race detector: two shapes served concurrently, every worker routing a
// small set of recurring permutations, so shard creation races and cache
// hits both happen.
func TestConcurrentShardsAndCacheHits(t *testing.T) {
	svc, client := newTestServer(t, Config{BatchDelay: 200 * time.Microsecond})
	shapes := []struct{ d, g int }{{4, 8}, {8, 4}}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				shape := shapes[(w+iter)%len(shapes)]
				pi := pops.VectorReversal(shape.d * shape.g)
				if (w+iter)%3 == 0 {
					pi = pops.IdentityPermutation(shape.d * shape.g)
				}
				plan, err := client.Route(context.Background(), shape.d, shape.g, pi)
				if err != nil {
					t.Error(err)
					return
				}
				if plan.Slots != pops.OptimalSlots(shape.d, shape.g) {
					t.Errorf("POPS(%d,%d): slots = %d", shape.d, shape.g, plan.Slots)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	stats := svc.Stats()
	if stats.ShardCount != 2 {
		t.Fatalf("shard count = %d, want 2", stats.ShardCount)
	}
	if stats.Requests != 160 {
		t.Fatalf("requests = %d, want 160", stats.Requests)
	}
	// 160 routes over 4 distinct permutations: nearly everything hits the
	// cache or coalesces; at minimum, hits must dominate.
	if stats.CacheHits == 0 {
		t.Fatal("no cache hits recorded for recurring permutations")
	}
	if stats.CacheHits+stats.CacheMisses == 0 {
		t.Fatal("no cache lookups recorded")
	}
}

// TestRepeatedPermutationHitsCacheObservableViaStats pins the acceptance
// criterion: a repeated permutation is answered from the fingerprint cache,
// observable through the /stats hit counter and the plan's cached flag.
func TestRepeatedPermutationHitsCacheObservableViaStats(t *testing.T) {
	_, client := newTestServer(t, Config{})
	const d, g = 2, 4
	pi := pops.VectorReversal(d * g)
	first, err := client.Route(context.Background(), d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request reported a cache hit")
	}
	second, err := client.Route(context.Background(), d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeated permutation was not served from the cache")
	}
	if second.Fingerprint != first.Fingerprint {
		t.Fatalf("fingerprint changed between identical requests: %s vs %s", first.Fingerprint, second.Fingerprint)
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits < 1 {
		t.Fatalf("stats.cache_hits = %d, want ≥ 1", stats.CacheHits)
	}
}

// TestMicroBatchCoalescesIdenticalRequests proves the coalescing claim: N
// concurrent identical requests produce at most one planner invocation. The
// batch window is held open long enough for all N to coalesce, and planner
// work is counted by the shard's cache misses — every planner invocation
// for a cold cache is exactly one miss.
func TestMicroBatchCoalescesIdenticalRequests(t *testing.T) {
	const n = 16
	svc, _ := newTestServer(t, Config{BatchSize: n, BatchDelay: 300 * time.Millisecond})
	const d, g = 4, 4
	pi := pops.VectorReversal(d * g)

	var wg sync.WaitGroup
	results := make([]Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := svc.Route(context.Background(), d, g, pi, "")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if res.Plan == nil {
			t.Fatalf("request %d: no plan", i)
		}
	}
	stats := svc.Stats()
	if len(stats.Shards) != 1 {
		t.Fatalf("shard count = %d, want 1", len(stats.Shards))
	}
	sh := stats.Shards[0]
	// ≤1 planner invocation: a planner run on a cold cache is exactly one
	// miss, and coalesced duplicates never reach the planner.
	if sh.Cache.Misses > 1 {
		t.Fatalf("cache misses = %d: %d identical concurrent requests took more than one planner invocation", sh.Cache.Misses, n)
	}
	if sh.Requests != n {
		t.Fatalf("shard requests = %d, want %d", sh.Requests, n)
	}
}

// TestMicroBatchReachesRouteBatchWithSizeGreaterThanOne pins the other half
// of the acceptance criterion: concurrent distinct requests coalesce into a
// flush of size > 1 that lands on Planner.RouteBatch, observable through the
// shard's batch counters.
func TestMicroBatchReachesRouteBatchWithSizeGreaterThanOne(t *testing.T) {
	const n = 8
	svc, _ := newTestServer(t, Config{BatchSize: n, BatchDelay: 300 * time.Millisecond})
	const d, g = 4, 4
	pis := make([][]int, n)
	for i := range pis {
		pi, err := pops.MeshShift(d, g, i%d, i%g)
		if err != nil {
			t.Fatal(err)
		}
		pis[i] = pi
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := svc.Route(context.Background(), d, g, pis[i], "")
			if err != nil {
				t.Error(err)
				return
			}
			if res.Err != nil {
				t.Error(res.Err)
			}
		}(i)
	}
	wg.Wait()

	sh := svc.Stats().Shards[0]
	if sh.MaxBatch <= 1 {
		t.Fatalf("max batch = %d: concurrent requests never coalesced onto RouteBatch", sh.MaxBatch)
	}
	if sh.Batches == 0 || sh.BatchedRequests != n {
		t.Fatalf("batches = %d, batched requests = %d (want %d total)", sh.Batches, sh.BatchedRequests, n)
	}
}

// TestBatchRequestCarriesPerEntryErrors checks the wire-level batch
// contract mirrors Planner.RouteBatch: good entries plan, bad entries carry
// their own error, nothing fails the whole request.
func TestBatchRequestCarriesPerEntryErrors(t *testing.T) {
	_, client := newTestServer(t, Config{})
	const d, g = 2, 4
	pis := [][]int{
		pops.VectorReversal(d * g),
		{0, 1, 2},
		pops.IdentityPermutation(d * g),
	}
	plans, err := client.RouteBatch(context.Background(), d, g, pis)
	if err != nil {
		t.Fatal(err)
	}
	if plans[0].Error != "" || plans[2].Error != "" {
		t.Fatalf("valid entries failed: %+v", plans)
	}
	if plans[1].Error == "" {
		t.Fatal("invalid entry did not carry an error")
	}
	if plans[0].Slots != pops.OptimalSlots(d, g) {
		t.Fatalf("slots = %d", plans[0].Slots)
	}
}

// TestShardLRUEvictionBoundsLiveShards drives more shapes than MaxShards
// and checks the registry stays bounded, evicted shards drain cleanly, and
// their cache counters survive in the totals.
func TestShardLRUEvictionBoundsLiveShards(t *testing.T) {
	svc, client := newTestServer(t, Config{MaxShards: 2})
	shapes := []struct{ d, g int }{{2, 2}, {2, 3}, {2, 4}, {3, 3}, {2, 2}}
	for _, shape := range shapes {
		pi := pops.VectorReversal(shape.d * shape.g)
		if _, err := client.Route(context.Background(), shape.d, shape.g, pi); err != nil {
			t.Fatalf("POPS(%d,%d): %v", shape.d, shape.g, err)
		}
	}
	stats := svc.Stats()
	if stats.ShardCount > 2 {
		t.Fatalf("shard count = %d exceeds MaxShards = 2", stats.ShardCount)
	}
	if stats.EvictedShards == 0 {
		t.Fatal("no shards were evicted across 4 distinct shapes")
	}
	// 5 routes: every lookup (hit or miss) must be preserved across
	// eviction in the aggregated totals.
	if stats.CacheHits+stats.CacheMisses != 5 {
		t.Fatalf("aggregate lookups = %d, want 5", stats.CacheHits+stats.CacheMisses)
	}
	if stats.Requests != 5 {
		t.Fatalf("requests = %d, want 5", stats.Requests)
	}
}

// TestStrategySelection routes through a non-default strategy and checks it
// bypasses the cache but still plans correctly.
func TestStrategySelection(t *testing.T) {
	_, client := newTestServer(t, Config{})
	const d, g = 4, 4
	// The staircase permutation is single-slot routable, so Auto must pick
	// the one-slot router over Theorem 2's two slots.
	pi := perms.Staircase(d, g)
	resp, err := client.Do(context.Background(), &pops.ServiceRouteRequest{
		D: d, G: g, Pi: pi, Strategy: "auto", IncludeSchedule: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := resp.Plans[0]
	if plan.Error != "" {
		t.Fatal(plan.Error)
	}
	if plan.Strategy != "singleslot" {
		t.Fatalf("auto picked %q for the staircase, want singleslot", plan.Strategy)
	}
	if plan.Slots != 1 {
		t.Fatalf("slots = %d, want 1", plan.Slots)
	}
	if _, err := popsnet.VerifyPermutationRouted(plan.Schedule, pi); err != nil {
		t.Fatal(err)
	}
	// Unknown strategies are request-level errors.
	if _, err := client.Do(context.Background(), &pops.ServiceRouteRequest{D: d, G: g, Pi: pi, Strategy: "nonsense"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestRequestValidation covers the request-level failure modes of the HTTP
// surface.
func TestRequestValidation(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()
	// Invalid shape.
	if _, err := client.Route(ctx, 0, 4, []int{0}); err == nil {
		t.Fatal("invalid shape accepted")
	}
	// Neither pi nor pis.
	if _, err := client.Do(ctx, &pops.ServiceRouteRequest{D: 2, G: 2}); err == nil {
		t.Fatal("empty request accepted")
	}
	// Both pi and pis.
	pi := pops.IdentityPermutation(4)
	if _, err := client.Do(ctx, &pops.ServiceRouteRequest{D: 2, G: 2, Pi: pi, Pis: [][]int{pi}}); err == nil {
		t.Fatal("request with both pi and pis accepted")
	}
	// Slots endpoint validates too.
	if _, err := client.Slots(ctx, -1, 3); err == nil {
		t.Fatal("invalid /slots shape accepted")
	}
	if slots, err := client.Slots(ctx, 8, 8); err != nil || slots != 2 {
		t.Fatalf("slots(8,8) = %d, %v; want 2", slots, err)
	}
	if err := client.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyHistogramBucketBoundaries pins the documented bucket semantics
// of the /stats latency histogram: bucket i counts (2^(i−1), 2^i]
// microseconds, with exact powers of two in their own bucket and a final
// unbounded overflow bucket.
func TestLatencyHistogramBucketBoundaries(t *testing.T) {
	var h obs.Histogram
	h.Observe(0)
	h.Observe(time.Microsecond)     // exactly 1µs → bucket 0 (≤1µs)
	h.Observe(2 * time.Microsecond) // exactly 2µs → bucket 1 (≤2µs)
	h.Observe(3 * time.Microsecond) // 3µs → bucket 2 (≤4µs)
	h.Observe(time.Hour)            // beyond the last bound → overflow
	snap := h.Snapshot()
	if snap[0].Count != 2 || snap[1].Count != 1 || snap[2].Count != 1 {
		t.Fatalf("low buckets = %+v, want counts 2,1,1", snap[:3])
	}
	last := snap[len(snap)-1]
	if last.LEMicros != 0 || last.Count != 1 {
		t.Fatalf("overflow bucket = %+v, want unbounded with count 1", last)
	}
}

// TestCloseDrainsInFlightAndRejectsNew checks graceful shutdown: requests
// admitted before Close get answers, requests after get ErrClosed, and the
// health endpoint flips.
func TestCloseDrainsInFlightAndRejectsNew(t *testing.T) {
	svc := New(Config{BatchSize: 64, BatchDelay: 10 * time.Second})
	const d, g = 4, 4
	const n = 8
	pis := make([][]int, n)
	for i := range pis {
		pi, err := pops.MeshShift(d, g, i%d, i%g)
		if err != nil {
			t.Fatal(err)
		}
		pis[i] = pi
	}
	// RouteMany admits every entry before waiting, so once admitted is
	// signaled the requests are in the queue with a 10s batch window still
	// open: only Close's drain can answer them promptly.
	admitted := make(chan struct{})
	type outcome struct {
		results []Result
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		sh, err := svc.shardFor(d, g)
		if err != nil {
			done <- outcome{err: err}
			return
		}
		waiters := make([]chan Result, n)
		for i, pi := range pis {
			ch, err := sh.admit(context.Background(), pi, "")
			if err != nil {
				done <- outcome{err: err}
				return
			}
			waiters[i] = ch
		}
		close(admitted)
		results := make([]Result, n)
		for i := range waiters {
			results[i] = <-waiters[i]
		}
		done <- outcome{results: results}
	}()
	<-admitted
	start := time.Now()
	svc.Close()
	out := <-done
	if out.err != nil {
		t.Fatalf("admission failed: %v", out.err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("drain waited out the batch window (%v) instead of flushing", waited)
	}
	for i, res := range out.results {
		if res.Err != nil || res.Plan == nil {
			t.Fatalf("in-flight request %d lost across shutdown: %+v", i, res)
		}
	}
	if _, err := svc.Route(context.Background(), d, g, pops.VectorReversal(d*g), ""); err != ErrClosed {
		t.Fatalf("post-close route error = %v, want ErrClosed", err)
	}
	svc.Close() // idempotent
}
