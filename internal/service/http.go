package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"pops"
	"pops/internal/obs"
	"pops/internal/wire"
	"pops/internal/wirebin"
)

// maxRequestBody bounds /route bodies: the largest sensible request is a
// batch of large permutations, far under this.
const maxRequestBody = 64 << 20

// Handler returns the service's HTTP surface:
//
//	POST /route         plan one permutation ("pi") or a batch ("pis")
//	POST /route/stream  stream one permutation's slots as NDJSON chunks
//	GET  /slots         Theorem 2 slot count for ?d=&g=
//	GET  /stats         shard, cache, batching, latency and TTFS counters
//	GET  /metrics       Prometheus text exposition of the same counters
//	GET  /debug/slow    the slowest traced requests with phase breakdowns
//	GET  /healthz       liveness ("ok" until Close starts)
//
// Requests and responses use the JSON schema of internal/wire. Malformed
// requests (bad JSON, invalid shape, unknown strategy) get 400; requests
// admitted after Close starts get 503; per-permutation planning failures
// travel as the error field of their PlanResult under a 200 (or as an
// "error" stream record once a stream has opened).
//
// Every request is assigned a request ID — the client's X-Request-Id header
// when present, a generated one otherwise — echoed in the X-Request-Id
// response header, the request_id field of /route responses, and the meta
// record of /route/stream.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /route", s.handleRoute)
	mux.HandleFunc("POST /route/stream", s.handleRouteStream)
	mux.HandleFunc("GET /slots", s.handleSlots)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("GET /metrics", s.metrics)
	mux.HandleFunc("GET /debug/slow", s.handleSlow)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// requestID resolves the request's ID: the caller's X-Request-Id if it sent
// one (a proxy hop, or a client correlating its own logs), else a fresh one.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		return id
	}
	return obs.NewRequestID()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the connection is the only failure mode left here
}

// decodeRouteRequest reads a /route or /route/stream body in whichever
// request codec the caller sent: a binary FrameRequest when Content-Type is
// application/x-pops-bin, JSON otherwise. It writes the 400 itself on
// malformed input.
func decodeRouteRequest(w http.ResponseWriter, r *http.Request, req *wire.RouteRequest) bool {
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	if wirebin.IsContentType(r.Header.Get("Content-Type")) {
		dec := wirebin.GetDecoder(body)
		defer wirebin.PutDecoder(dec)
		typ, payload, err := dec.ReadFrame()
		if err == nil && typ != wirebin.FrameRequest {
			err = fmt.Errorf("frame type %d, want request", typ)
		}
		if err == nil {
			err = wirebin.DecodeRequest(payload, req)
		}
		if err != nil {
			http.Error(w, "service: decoding request: "+err.Error(), http.StatusBadRequest)
			return false
		}
		return true
	}
	if err := json.NewDecoder(body).Decode(req); err != nil {
		http.Error(w, "service: decoding request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// respondRoute writes a /route response in the negotiated codec: binary when
// the caller's Accept names application/x-pops-bin, JSON otherwise (unknown
// and empty Accept values change nothing). It also feeds the per-codec
// request ledger.
func (s *Service) respondRoute(w http.ResponseWriter, r *http.Request, resp *wire.RouteResponse) {
	if !wirebin.Accepts(r.Header.Get("Accept")) {
		s.codecJSON.requests.Add(1)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.codecBinary.requests.Add(1)
	enc := wirebin.GetEncoder()
	defer wirebin.PutEncoder(enc)
	frame := enc.AppendResponse(resp)
	w.Header().Set("Content-Type", wirebin.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(frame)
}

// requestStatus maps a request-level error to its HTTP status.
func requestStatus(err error) int {
	var oe *pops.OverloadError
	if errors.As(err, &oe) {
		return http.StatusTooManyRequests
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// writeError maps a request-level error onto the wire. Overload verdicts
// answer 429 with the standard Retry-After (whole seconds, rounded up), a
// millisecond-precision X-Retry-After-Ms, and the queue/tenant refinement
// headers clients use to reconstruct the typed *pops.OverloadError. An
// expired propagated deadline answers 504; shutdown stays 503 and malformed
// requests 400.
func writeError(w http.ResponseWriter, err error) {
	var oe *pops.OverloadError
	if errors.As(err, &oe) {
		if oe.RetryAfter > 0 {
			secs := (oe.RetryAfter + time.Second - 1) / time.Second
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(int64(secs), 10))
			ms := (oe.RetryAfter + time.Millisecond - 1) / time.Millisecond
			w.Header().Set(wire.HeaderRetryAfterMs, strconv.FormatInt(int64(ms), 10))
		}
		if oe.Queue != "" {
			w.Header().Set(wire.HeaderOverloadQueue, oe.Queue)
		}
		if oe.Tenant != "" {
			w.Header().Set(wire.HeaderTenant, oe.Tenant)
		}
	}
	http.Error(w, err.Error(), requestStatus(err))
}

// requestContext applies a route request's overload-control metadata to its
// context: the admission tenant (the body field wins over the X-Tenant
// header) and the propagated absolute deadline (X-Deadline). A deadline
// that has already passed is shed here — 504 without consuming a queue
// slot. The returned cancel must run when the handler finishes; ok reports
// whether the request may proceed (the error response is already written
// otherwise).
func (s *Service) requestContext(w http.ResponseWriter, r *http.Request, req *wire.RouteRequest) (ctx context.Context, cancel context.CancelFunc, ok bool) {
	ctx = r.Context()
	tenant := req.Tenant
	if tenant == "" {
		tenant = r.Header.Get(wire.HeaderTenant)
	}
	ctx = pops.ContextWithTenant(ctx, tenant)
	cancel = func() {}
	if h := r.Header.Get(wire.HeaderDeadline); h != "" {
		dl, err := wire.ParseDeadline(h)
		if err != nil {
			http.Error(w, "service: "+err.Error(), http.StatusBadRequest)
			return nil, nil, false
		}
		if !dl.After(time.Now()) {
			s.deadlineSheds.Add(1)
			s.tenant(tenant).deadlineShed.Add(1)
			http.Error(w, "service: "+context.DeadlineExceeded.Error(), http.StatusGatewayTimeout)
			return nil, nil, false
		}
		ctx, cancel = context.WithDeadline(ctx, dl)
	}
	return ctx, cancel, true
}

// workloadFromRequest resolves a tagged route request to its pops.Workload.
// It returns (nil, "") for the permutation kinds, which the handlers serve
// through the micro-batching queue instead, and an error for malformed
// combinations (wrong payload for the kind, a strategy on a non-permutation
// workload).
func workloadFromRequest(req *wire.RouteRequest) (pops.Workload, error) {
	// A fault set on any other kind would be silently ignored — reject it so
	// the caller never believes a plan routed around faults it never saw.
	if req.Faults != nil && req.Workload != wire.WorkloadFaultyPermutation {
		return nil, fmt.Errorf("service: faults apply to the faulty-permutation workload only")
	}
	switch req.Workload {
	case "", wire.WorkloadPermutation:
		return nil, nil
	case wire.WorkloadHRelation:
		if len(req.Pi) > 0 || len(req.Pis) > 0 {
			return nil, fmt.Errorf("service: hrelation workload takes requests, not pi/pis")
		}
		reqs := make([]pops.Request, len(req.Requests))
		for i, r := range req.Requests {
			reqs[i] = pops.Request{Src: r.Src, Dst: r.Dst}
		}
		return pops.HRelation(reqs), nil
	case wire.WorkloadAllToAll:
		if len(req.Pi) > 0 || len(req.Pis) > 0 || len(req.Requests) > 0 {
			return nil, fmt.Errorf("service: all-to-all workload takes no payload")
		}
		return pops.AllToAll(), nil
	case wire.WorkloadOneToAll:
		if len(req.Pi) > 0 || len(req.Pis) > 0 || len(req.Requests) > 0 {
			return nil, fmt.Errorf("service: one-to-all workload takes a speaker, not pi/requests")
		}
		return pops.OneToAll(req.Speaker), nil
	case wire.WorkloadFaultyPermutation:
		if len(req.Pis) > 0 || len(req.Requests) > 0 {
			return nil, fmt.Errorf("service: faulty-permutation workload takes pi and faults, not pis/requests")
		}
		if len(req.Pi) == 0 {
			return nil, fmt.Errorf("service: faulty-permutation workload takes a permutation (pi)")
		}
		var fs pops.FaultSet
		if req.Faults != nil {
			fs.Couplers = make([]pops.Coupler, len(req.Faults.Couplers))
			for i, c := range req.Faults.Couplers {
				fs.Couplers[i] = pops.Coupler{B: c.B, A: c.A}
			}
			fs.Groups = req.Faults.Groups
		}
		return pops.FaultyPermutation(req.Pi, fs), nil
	default:
		return nil, fmt.Errorf("service: unknown workload %q", req.Workload)
	}
}

func (s *Service) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req wire.RouteRequest
	if !decodeRouteRequest(w, r, &req) {
		return
	}
	wl, err := workloadFromRequest(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id := requestID(r)
	w.Header().Set("X-Request-Id", id)
	ctx, cancel, ok := s.requestContext(w, r, &req)
	if !ok {
		return
	}
	defer cancel()
	resp := wire.RouteResponse{D: req.D, G: req.G, RequestID: id}
	if wl != nil {
		if req.Strategy != "" && req.Strategy != pops.StrategyTheoremTwo {
			http.Error(w, "service: strategy selection applies to permutation workloads only", http.StatusBadRequest)
			return
		}
		sp := s.tracer.Start(id, req.D, req.G)
		sp.Workload = wl.Kind()
		res, err := s.Execute(obs.ContextWithSpan(ctx, sp), req.D, req.G, wl)
		if err != nil {
			writeError(w, err)
			s.tracer.Abandon(sp)
			return
		}
		if res.Plan != nil {
			sp.Strategy = res.Plan.Strategy
		}
		sp.Cached = res.Cached
		resp.Plans = []wire.PlanResult{workloadResult(wl, res, req.IncludeSchedule)}
		sp.Begin(obs.PhaseEncode)
		s.respondRoute(w, r, &resp)
		// The span total — not a separate clock — is the latency histogram
		// observation, so the phase breakdown and the histogram describe the
		// same measured interval (pinned by the service tests).
		s.latency.Observe(s.tracer.Finish(sp))
		return
	}

	single := len(req.Pi) > 0
	batch := len(req.Pis) > 0
	if single == batch {
		http.Error(w, "service: exactly one of pi and pis must be set", http.StatusBadRequest)
		return
	}
	if single {
		sp := s.tracer.Start(id, req.D, req.G)
		res, err := s.Route(obs.ContextWithSpan(ctx, sp), req.D, req.G, req.Pi, req.Strategy)
		if err != nil {
			writeError(w, err)
			// The micro-batch entry may still be in flight and recording
			// onto the span — never recycle it from here.
			s.tracer.Abandon(sp)
			return
		}
		if res.Plan != nil {
			sp.Strategy = res.Plan.Strategy
		}
		sp.Cached = res.Cached
		resp.Plans = []wire.PlanResult{planResult(req.Pi, res, req.IncludeSchedule)}
		sp.Begin(obs.PhaseEncode)
		s.respondRoute(w, r, &resp)
		s.latency.Observe(s.tracer.Finish(sp))
		return
	}
	// Batch requests share one response but plan as independent queue
	// entries; a single span would double-charge the concurrent waits, so
	// batches go untraced and observe the latency histogram in RouteMany.
	results, err := s.RouteMany(ctx, req.D, req.G, req.Pis, req.Strategy)
	if err != nil {
		writeError(w, err)
		return
	}
	resp.Plans = make([]wire.PlanResult, len(results))
	for i, res := range results {
		resp.Plans[i] = planResult(req.Pis[i], res, req.IncludeSchedule)
	}
	s.respondRoute(w, r, &resp)
}

// handleSlow serves GET /debug/slow: the slowest traced requests, worst
// first, with per-phase timing breakdowns. ?n= bounds the list (default all
// retained).
func (s *Service) handleSlow(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("n"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, "service: /debug/slow?n= takes a non-negative integer", http.StatusBadRequest)
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, wire.SlowResponse{
		Server:   s.cfg.Name,
		Requests: s.tracer.Slow.Snapshot(limit),
	})
}

// handleRouteStream serves POST /route/stream: the slot schedule of one
// permutation as newline-delimited JSON (wire.StreamRecord), each record
// flushed as its own chunk so early slots reach the caller while later
// color classes are still being peeled. Admission errors are plain HTTP
// statuses; once the meta record has been written, failures travel as an
// "error" record.
func (s *Service) handleRouteStream(w http.ResponseWriter, r *http.Request) {
	var req wire.RouteRequest
	if !decodeRouteRequest(w, r, &req) {
		return
	}
	wl, err := workloadFromRequest(&req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The request context is threaded all the way into the planner stream:
	// a hung-up client cancels it, and the stream's next factor check fails
	// with ctx.Err() — factor production stops for a plan nobody is
	// reading, and the worker planner returns to the pool on Close. The
	// trace span rides the same context; stream planning is synchronous on
	// this goroutine, so the span can be pooled when the handler returns.
	id := requestID(r)
	w.Header().Set("X-Request-Id", id)
	reqCtx, cancel, ok := s.requestContext(w, r, &req)
	if !ok {
		return
	}
	defer cancel()
	sp := s.tracer.Start(id, req.D, req.G)
	// Streams observe the latency histogram at exhaustion (Stream.finish),
	// a planning-side signal that excludes client read speed — so the span
	// total feeds only the slow ring here, never the histogram.
	defer s.tracer.Finish(sp)
	ctx := obs.ContextWithSpan(reqCtx, sp)
	var st *Stream
	if wl != nil {
		if req.Strategy != "" && req.Strategy != pops.StrategyTheoremTwo {
			http.Error(w, "service: strategy selection applies to permutation workloads only", http.StatusBadRequest)
			return
		}
		sp.Workload = wl.Kind()
		st, err = s.ExecuteStream(ctx, req.D, req.G, wl)
	} else {
		if len(req.Pis) > 0 || len(req.Pi) == 0 {
			http.Error(w, "service: /route/stream takes exactly one permutation (pi)", http.StatusBadRequest)
			return
		}
		st, err = s.RouteStream(ctx, req.D, req.G, req.Pi, req.Strategy)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	defer st.Close()

	flusher, _ := w.(http.Flusher)
	// flush pushes one encoded record (an NDJSON line or a binary frame) out
	// as its own chunk, then hands the processor to waiting readers: without
	// the Gosched, a CPU-bound factorization loop on a loaded (or
	// single-core) runtime can emit the entire plan before the connection
	// goroutine ever runs, silently turning the stream back into a batch.
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
		runtime.Gosched()
	}
	var write func(rec wire.StreamRecord) bool
	if wirebin.Accepts(r.Header.Get("Accept")) {
		s.codecBinary.streams.Add(1)
		w.Header().Set("Content-Type", wirebin.ContentType)
		enc := wirebin.GetEncoder()
		defer wirebin.PutEncoder(enc)
		write = func(rec wire.StreamRecord) bool {
			sp.Begin(obs.PhaseEncode)
			defer sp.End()
			var frame []byte
			switch rec.Type {
			case "meta":
				frame = enc.AppendMeta(rec.Meta)
			case "slot":
				frame = enc.AppendSlot(rec.Slot)
			case "done":
				frame = enc.AppendDone(rec.Done)
			default:
				frame = enc.AppendError(rec.Error)
			}
			if _, err := w.Write(frame); err != nil {
				return false // client went away; Close releases the worker
			}
			s.codecBinary.streamedBytes.Add(uint64(len(frame)))
			flush()
			return true
		}
	} else {
		s.codecNDJSON.streams.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		cw := &countingWriter{w: w}
		defer func() { s.codecNDJSON.streamedBytes.Add(cw.n) }()
		enc := json.NewEncoder(cw)
		write = func(rec wire.StreamRecord) bool {
			sp.Begin(obs.PhaseEncode)
			defer sp.End()
			if err := enc.Encode(rec); err != nil {
				return false // client went away; Close releases the worker
			}
			flush()
			return true
		}
	}
	meta := st.Meta()
	meta.RequestID = id
	sp.Strategy = meta.Strategy
	sp.Cached = meta.Cached
	if !write(wire.StreamRecord{Type: "meta", Meta: &meta}) {
		return
	}
	for {
		slot, ok := st.Next()
		if !ok {
			break
		}
		if !write(wire.StreamRecord{Type: "slot", Slot: &slot}) {
			return
		}
	}
	if err := st.Err(); err != nil {
		if ctx.Err() != nil {
			return // cancelled by the client: nobody is reading error records
		}
		write(wire.StreamRecord{Type: "error", Error: err.Error()})
		return
	}
	write(wire.StreamRecord{Type: "done", Done: &wire.StreamDone{Slots: meta.Slots, Fragments: meta.Fragments}})
}

// countingWriter tallies bytes written through it, so the NDJSON stream path
// can feed the per-codec streamed-bytes ledger without an extra copy.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

// planResult converts one permutation planning outcome to its wire form.
func planResult(pi []int, res Result, includeSchedule bool) wire.PlanResult {
	if res.Err != nil {
		return wire.PlanResult{Error: res.Err.Error()}
	}
	pr := wire.PlanResult{
		Strategy:    res.Plan.Strategy,
		Slots:       res.Plan.SlotCount(),
		Rounds:      res.Plan.Rounds,
		Fingerprint: fmt.Sprintf("%016x", pops.PermutationFingerprint(pi)),
		Cached:      res.Cached,
	}
	if includeSchedule {
		pr.Schedule = res.Plan.Schedule()
	}
	return pr
}

// workloadResult converts one non-permutation workload outcome to its wire
// form, tagging the workload kind and the relation degree.
func workloadResult(w pops.Workload, res Result, includeSchedule bool) wire.PlanResult {
	if res.Err != nil {
		pr := wire.PlanResult{Workload: w.Kind(), Error: res.Err.Error()}
		var ue *pops.UnroutableError
		if errors.As(res.Err, &ue) {
			pr.Unroutable = &wire.UnroutableInfo{
				Packet:     ue.Packet,
				SrcGroup:   ue.SrcGroup,
				DstGroup:   ue.DstGroup,
				SeveredSrc: ue.SeveredSrc,
				SeveredDst: ue.SeveredDst,
			}
		}
		return pr
	}
	pr := wire.PlanResult{
		Strategy:    res.Plan.Strategy,
		Workload:    w.Kind(),
		Slots:       res.Plan.SlotCount(),
		Rounds:      res.Plan.Rounds,
		H:           res.Plan.H,
		Fingerprint: fmt.Sprintf("%016x", pops.WorkloadFingerprint(w)),
		Cached:      res.Cached,
	}
	if includeSchedule {
		pr.Schedule = res.Plan.Schedule()
	}
	return pr
}

func (s *Service) handleSlots(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	d, errD := strconv.Atoi(q.Get("d"))
	g, errG := strconv.Atoi(q.Get("g"))
	if errD != nil || errG != nil {
		http.Error(w, "service: /slots needs integer query parameters d and g", http.StatusBadRequest)
		return
	}
	slots, err := s.Slots(d, g)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, wire.SlotsResponse{D: d, G: g, Slots: slots})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
