package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pops"
	"pops/internal/wire"
)

// newRawServer mounts svc on an httptest server and returns its base URL,
// for tests that need to read raw response headers and statuses.
func newRawServer(t *testing.T, svc *Service) string {
	t.Helper()
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		svc.Close()
		srv.Close()
	})
	return srv.URL
}

func permJSON(pi []int) string {
	b, _ := json.Marshal(pi)
	return string(b)
}

// newIdleShard builds a shard whose admission loop is NOT running, so its
// queue state is fully deterministic: admissions stay queued until the test
// starts the loop itself.
func newIdleShard(t *testing.T, svc *Service, d, g int) *shard {
	t.Helper()
	sh, err := newShard(svc, d, g)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func startLoop(svc *Service, sh *shard) {
	svc.wg.Add(1)
	go sh.loop()
}

// TestQueueOverflowShedsTyped fills a shard's bounded admission queue and
// pins the overflow contract: the excess admission is rejected immediately
// with a typed *pops.OverloadError carrying the shape, queue name, and a
// positive Retry-After hint — and every request that was admitted before the
// bound still completes once the loop runs.
func TestQueueOverflowShedsTyped(t *testing.T) {
	svc := New(Config{QueueDepth: 2, BatchSize: 2, BatchDelay: time.Millisecond})
	t.Cleanup(svc.Close)
	sh := newIdleShard(t, svc, 4, 4)

	pi := pops.VectorReversal(16)
	ctx := context.Background()
	var waiters []chan Result
	for i := 0; i < 2; i++ {
		ch, err := sh.admit(ctx, pi, "")
		if err != nil {
			t.Fatalf("admit %d within the queue bound: %v", i, err)
		}
		waiters = append(waiters, ch)
	}

	_, err := sh.admit(ctx, pi, "")
	var oe *pops.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("overflow admission returned %v, want *pops.OverloadError", err)
	}
	if oe.D != 4 || oe.G != 4 || oe.Queue != "admission" {
		t.Fatalf("verdict = %+v, want D=4 G=4 Queue=admission", oe)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", oe.RetryAfter)
	}
	if got := sh.sheds.Load(); got != 1 {
		t.Fatalf("shard sheds = %d, want 1", got)
	}

	// The queue bound rejected the overflow, not the admitted work: start
	// the loop and every queued request must still complete with a plan.
	startLoop(svc, sh)
	for i, ch := range waiters {
		select {
		case res := <-ch:
			if res.Err != nil || res.Plan == nil {
				t.Fatalf("queued request %d: %+v, want a plan", i, res)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("queued request %d never completed", i)
		}
	}
	sh.close()
	<-sh.done
}

// TestDeadlineExpiredQueuedRequestShed pins deadline shedding: a request
// whose propagated deadline expires while it sits in the queue is dropped at
// flush — its waiter receives context.DeadlineExceeded and the planner never
// sees it.
func TestDeadlineExpiredQueuedRequestShed(t *testing.T) {
	svc := New(Config{QueueDepth: 4, BatchSize: 2, BatchDelay: time.Millisecond})
	t.Cleanup(svc.Close)
	sh := newIdleShard(t, svc, 4, 4)

	dctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	doomed, err := sh.admit(dctx, pops.VectorReversal(16), "")
	if err != nil {
		t.Fatalf("admit with a live deadline: %v", err)
	}
	alive, err := sh.admit(context.Background(), pops.IdentityPermutation(16), "")
	if err != nil {
		t.Fatalf("admit without a deadline: %v", err)
	}
	<-dctx.Done() // the queued entry's deadline passes before any flush

	startLoop(svc, sh)
	select {
	case res := <-doomed:
		if !errors.Is(res.Err, context.DeadlineExceeded) {
			t.Fatalf("doomed entry resolved %+v, want DeadlineExceeded", res)
		}
		if res.Plan != nil {
			t.Fatal("doomed entry was planned anyway")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("doomed entry never resolved")
	}
	select {
	case res := <-alive:
		if res.Err != nil || res.Plan == nil {
			t.Fatalf("live entry resolved %+v, want a plan", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live entry never completed")
	}
	if got := sh.deadlineSheds.Load(); got != 1 {
		t.Fatalf("deadline sheds = %d, want 1", got)
	}
	sh.close()
	<-sh.done
}

// TestAdmitRefusesExpiredContext: a request that arrives already expired is
// refused before it takes a queue slot.
func TestAdmitRefusesExpiredContext(t *testing.T) {
	svc := New(Config{QueueDepth: 4})
	t.Cleanup(svc.Close)
	sh := newIdleShard(t, svc, 4, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sh.admit(ctx, pops.VectorReversal(16), ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("admit with a dead context: %v, want context.Canceled", err)
	}
	if n := len(sh.reqs); n != 0 {
		t.Fatalf("dead-context admission took a queue slot (%d queued)", n)
	}
	sh.close() // the loop never ran, so there is no drain to wait for
}

// TestStreamCapSheds is the regression test for /route/stream bypassing
// admission control: with MaxStreams=1, the slot is held for the life of an
// open stream — a second concurrent stream on the shard sheds with a typed
// "stream" overload verdict, and closing the first stream frees the slot.
func TestStreamCapSheds(t *testing.T) {
	svc := New(Config{MaxStreams: 1})
	t.Cleanup(svc.Close)
	const d, g = 4, 4
	pi := pops.VectorReversal(d * g)

	st, err := svc.RouteStream(context.Background(), d, g, pi, "")
	if err != nil {
		t.Fatalf("first stream: %v", err)
	}

	_, err = svc.RouteStream(context.Background(), d, g, pi, "")
	var oe *pops.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("second stream error %v, want *pops.OverloadError", err)
	}
	if oe.Queue != "stream" {
		t.Fatalf("overload queue %q, want stream", oe.Queue)
	}

	st.Close() // release the slot; the next stream must be admitted again
	st3, err := svc.RouteStream(context.Background(), d, g, pi, "")
	if err != nil {
		t.Fatalf("stream after slot release: %v", err)
	}
	st3.Close()
}

// TestHTTPShedAnswers429WithRetryAfter pins the wire shape of a shed: HTTP
// 429 with both Retry-After (whole seconds) and X-Retry-After-Ms, plus the
// queue attribution header.
func TestHTTPShedAnswers429WithRetryAfter(t *testing.T) {
	svc := New(Config{MaxStreams: 1})
	raw := newRawServer(t, svc)
	client := pops.NewServiceClient(raw, nil)

	// Hold the shard's one stream slot open in-process so the HTTP attempt
	// below is deterministically over the cap.
	st, err := svc.RouteStream(context.Background(), 4, 4, pops.VectorReversal(16), "")
	if err != nil {
		t.Fatalf("first stream: %v", err)
	}
	defer st.Close()

	resp, err := http.Post(raw+"/route/stream", "application/json",
		strings.NewReader(`{"d":4,"g":4,"pi":`+permJSON(pops.VectorReversal(16))+`}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if resp.Header.Get(wire.HeaderRetryAfterMs) == "" {
		t.Fatal("429 without X-Retry-After-Ms")
	}
	if got := resp.Header.Get(wire.HeaderOverloadQueue); got != "stream" {
		t.Fatalf("X-Overload-Queue = %q, want stream", got)
	}

	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sheds == 0 {
		t.Fatal("/stats Sheds = 0 after a shed")
	}
}

// TestHTTPExpiredDeadlineAnswers504: a request whose X-Deadline already
// passed is answered 504 without planning.
func TestHTTPExpiredDeadlineAnswers504(t *testing.T) {
	svc := New(Config{})
	raw := newRawServer(t, svc)

	req, err := http.NewRequest(http.MethodPost, raw+"/route",
		strings.NewReader(`{"d":4,"g":4,"pi":`+permJSON(pops.VectorReversal(16))+`}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(wire.HeaderDeadline, wire.EncodeDeadline(time.Now().Add(-time.Second)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	stats := svc.Stats()
	if stats.DeadlineSheds == 0 {
		t.Fatal("/stats DeadlineSheds = 0 after an expired-deadline request")
	}
	if stats.Requests != 0 {
		t.Fatalf("requests = %d, want 0 (nothing was admitted)", stats.Requests)
	}
}
