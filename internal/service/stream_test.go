package service

import (
	"context"
	"strings"
	"testing"
	"time"

	"pops"
	"pops/internal/popsnet"
)

// collectServiceStream drains a client stream and reassembles the slots by
// (Slot, Offset), returning the rebuilt schedule slots.
func collectServiceStream(t testing.TB, st *pops.ServiceStream) []popsnet.Slot {
	t.Helper()
	meta := st.Meta()
	slots := make([]popsnet.Slot, meta.Slots)
	for i := range slots {
		slots[i].Sends = nil
		slots[i].Recvs = nil
	}
	type frag struct{ rec pops.ServiceStreamSlot }
	perSlot := make([][]frag, meta.Slots)
	fragments := 0
	for {
		rec, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			break
		}
		fragments++
		if rec.Slot < 0 || rec.Slot >= meta.Slots {
			t.Fatalf("fragment for slot %d of %d", rec.Slot, meta.Slots)
		}
		perSlot[rec.Slot] = append(perSlot[rec.Slot], frag{rec: *rec})
	}
	if fragments != meta.Fragments {
		t.Fatalf("stream delivered %d fragments, meta promised %d", fragments, meta.Fragments)
	}
	if st.Done() == nil {
		t.Fatal("no done record")
	}
	for i, frags := range perSlot {
		// Place each fragment at its offset.
		size := 0
		for _, f := range frags {
			if end := f.rec.Offset + len(f.rec.Sends); end > size {
				size = end
			}
		}
		slots[i].Sends = make([]popsnet.Send, size)
		slots[i].Recvs = make([]popsnet.Recv, size)
		for _, f := range frags {
			copy(slots[i].Sends[f.rec.Offset:], f.rec.Sends)
			copy(slots[i].Recvs[f.rec.Offset:], f.rec.Recvs)
		}
	}
	return slots
}

// TestStreamEndToEnd opens a slot stream, reassembles the schedule from the
// fragments, and requires it to be identical to the batch /route schedule
// and to replay on the simulator.
func TestStreamEndToEnd(t *testing.T) {
	svc, client := newTestServer(t, Config{})
	const d, g = 4, 8
	ctx := context.Background()
	pi := pops.VectorReversal(d * g)

	st, err := client.RouteStream(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	meta := st.Meta()
	if meta.D != d || meta.G != g || meta.Slots != pops.OptimalSlots(d, g) {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.Cached {
		t.Fatal("first stream claims a cache hit")
	}
	if meta.Strategy != pops.StrategyTheoremTwo {
		t.Fatalf("meta.Strategy = %q", meta.Strategy)
	}
	slots := collectServiceStream(t, st)

	// Batch schedule for the same permutation must match fragment-for-slot.
	resp, err := client.Do(ctx, &pops.ServiceRouteRequest{D: d, G: g, Pi: pi, IncludeSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	batch := resp.Plans[0].Schedule
	if len(batch.Slots) != len(slots) {
		t.Fatalf("stream rebuilt %d slots, batch has %d", len(slots), len(batch.Slots))
	}
	for i := range slots {
		if len(slots[i].Sends) != len(batch.Slots[i].Sends) {
			t.Fatalf("slot %d: %d sends vs batch %d", i, len(slots[i].Sends), len(batch.Slots[i].Sends))
		}
		for j := range slots[i].Sends {
			if slots[i].Sends[j] != batch.Slots[i].Sends[j] || slots[i].Recvs[j] != batch.Slots[i].Recvs[j] {
				t.Fatalf("slot %d entry %d diverges from batch schedule", i, j)
			}
		}
	}
	sched := &popsnet.Schedule{Net: popsnet.Network{D: d, G: g}, Slots: slots}
	if _, err := popsnet.VerifyPermutationRouted(sched, pi); err != nil {
		t.Fatalf("reassembled stream schedule failed simulation: %v", err)
	}

	stats := svc.Stats()
	if stats.Streams != 1 {
		t.Fatalf("stats.streams = %d, want 1", stats.Streams)
	}
	if stats.StreamedSlots != uint64(meta.Fragments) {
		t.Fatalf("stats.streamed_slots = %d, want %d", stats.StreamedSlots, meta.Fragments)
	}
	var ttfs uint64
	for _, b := range stats.TimeToFirstSlot {
		ttfs += b.Count
	}
	if ttfs != 1 {
		t.Fatalf("time_to_first_slot histogram counted %d streams, want 1", ttfs)
	}
}

// TestStreamCacheHitReplaysWholeSlots pins the short-circuit: a stream of
// an already-cached permutation reports Cached and emits whole-slot
// fragments.
func TestStreamCacheHitReplaysWholeSlots(t *testing.T) {
	_, client := newTestServer(t, Config{})
	const d, g = 4, 8
	ctx := context.Background()
	pi := pops.VectorReversal(d * g)
	if _, err := client.Route(ctx, d, g, pi); err != nil {
		t.Fatal(err)
	}
	st, err := client.RouteStream(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	meta := st.Meta()
	if !meta.Cached {
		t.Fatal("stream of a cached permutation was not a cache hit")
	}
	if meta.Fragments != meta.Slots {
		t.Fatalf("cached stream promises %d fragments for %d slots", meta.Fragments, meta.Slots)
	}
	for {
		rec, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			break
		}
		if rec.Color != -1 || !rec.Final || rec.Offset != 0 {
			t.Fatalf("cached fragment %+v is not a whole slot", rec)
		}
	}
}

// TestStreamNonDefaultStrategy streams a greedy plan as whole slots.
func TestStreamNonDefaultStrategy(t *testing.T) {
	_, client := newTestServer(t, Config{})
	const d, g = 4, 4
	pi := pops.VectorReversal(d * g)
	st, err := client.DoStream(context.Background(), &pops.ServiceRouteRequest{
		D: d, G: g, Pi: pi, Strategy: pops.StrategyGreedy,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Meta().Strategy != pops.StrategyGreedy {
		t.Fatalf("meta.Strategy = %q", st.Meta().Strategy)
	}
	slots := collectServiceStream(t, st)
	sched := &popsnet.Schedule{Net: popsnet.Network{D: d, G: g}, Slots: slots}
	if _, err := popsnet.VerifyPermutationRouted(sched, pi); err != nil {
		t.Fatal(err)
	}
}

// TestStreamVerifyOptionCachesAndReplays pins the -verify contract on the
// streaming path: the drained plan is replayed on the simulator before the
// done record, and memoized, so a second stream of the same permutation is
// a cache hit.
func TestStreamVerifyOptionCachesAndReplays(t *testing.T) {
	_, client := newTestServer(t, Config{PlannerOptions: []pops.Option{pops.WithVerify(true)}})
	const d, g = 4, 8
	ctx := context.Background()
	pi := pops.VectorReversal(d * g)
	st, err := client.RouteStream(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	collectServiceStream(t, st) // must end in a done record, post-replay
	st.Close()
	st2, err := client.RouteStream(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !st2.Meta().Cached {
		t.Fatal("verified streamed plan was not memoized (second stream missed the cache)")
	}
}

// TestStreamRequestValidation covers the request-level failure modes.
func TestStreamRequestValidation(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := client.RouteStream(ctx, 0, 4, []int{0}); err == nil {
		t.Fatal("invalid shape accepted")
	}
	if _, err := client.RouteStream(ctx, 2, 2, []int{0, 0, 1, 2}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	if _, err := client.DoStream(ctx, &pops.ServiceRouteRequest{D: 2, G: 2, Pis: [][]int{{0, 1, 2, 3}}}); err == nil {
		t.Fatal("batch stream accepted")
	}
	if _, err := client.DoStream(ctx, &pops.ServiceRouteRequest{D: 2, G: 2, Pi: []int{0, 1, 2, 3}, Strategy: "nope"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestStreamAdmitsRequestsMidFactorization is the ROADMAP property the
// streaming layer was built for: while one stream is open (its plan only
// partially delivered), the same shard keeps admitting and answering batch
// requests.
func TestStreamAdmitsRequestsMidFactorization(t *testing.T) {
	_, client := newTestServer(t, Config{})
	const d, g = 8, 16
	ctx := context.Background()
	pi := pops.VectorReversal(d * g)
	st, err := client.RouteStream(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Consume exactly one fragment, leaving the stream mid-plan.
	if rec, err := st.Next(); err != nil || rec == nil {
		t.Fatalf("first fragment: %v %v", rec, err)
	}
	// The shard must still serve batch traffic promptly.
	other, err := pops.MeshShift(d, g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	doneCh := make(chan error, 1)
	go func() {
		_, err := client.Route(ctx, d, g, other)
		doneCh <- err
	}()
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatalf("batch request during stream: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch request blocked behind an open stream")
	}
	// Finish the stream normally.
	for {
		rec, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			break
		}
	}
}

// TestCloseDrainsOpenStreams pins graceful drain for streams: a stream
// admitted before Close keeps delivering until its consumer has every
// remaining slot, and Close returns only after that.
func TestCloseDrainsOpenStreams(t *testing.T) {
	svc, client := newTestServer(t, Config{})
	const d, g = 8, 16
	ctx := context.Background()
	pi := pops.VectorReversal(d * g)
	st, err := client.RouteStream(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if rec, err := st.Next(); err != nil || rec == nil {
		t.Fatalf("first fragment: %v %v", rec, err)
	}

	closed := make(chan struct{})
	go func() {
		svc.Close()
		close(closed)
	}()
	// Close must not preempt the open stream: every remaining fragment and
	// the done record still arrive.
	got := 1
	for {
		rec, err := st.Next()
		if err != nil {
			t.Fatalf("fragment %d after Close began: %v", got, err)
		}
		if rec == nil {
			break
		}
		got++
	}
	if got != st.Meta().Fragments {
		t.Fatalf("drained %d of %d fragments", got, st.Meta().Fragments)
	}
	st.Close()
	select {
	case <-closed:
	case <-time.After(15 * time.Second):
		t.Fatal("service Close did not return after the stream drained")
	}
	// New admissions are rejected after Close.
	if _, err := client.RouteStream(ctx, d, g, pi); err == nil || !strings.Contains(err.Error(), "shutting down") {
		t.Fatalf("post-Close stream admitted (err = %v)", err)
	}
}
