// Package service is the long-running serving layer over the pops planning
// library: a sharded planner service with micro-batching and a fingerprint
// plan cache, the subsystem behind cmd/popsserved.
//
// One shard wraps one pops.Planner per requested POPS(d, g) shape, created
// lazily on first use and bounded by an LRU over live shards. Each shard
// runs an admission queue that coalesces concurrent /route requests into
// micro-batches (flushed on batch size or a small deadline) onto
// Planner.RouteBatch, so the arena-backed allocation-free planning path is
// amortized across the wire, and duplicate in-flight permutations collapse
// onto a single planner invocation. Every shard's planner carries a
// WithPlanCache fingerprint cache, so recurring permutation families (BPC,
// mesh shifts) are answered without replanning; hit/miss counters and a
// request-latency histogram are exported over GET /stats.
//
// POST /route/stream delivers a plan incrementally: the stream checks a
// worker planner out of the shard's pool and flushes one NDJSON slot record
// per color class as the König factorization peels it, so the first slots
// reach the caller in a fraction of the full planning latency — and the
// shard's admission queue keeps admitting (and batching) other requests
// between records, including while a stream's factorization is still in
// progress. GET /stats exports a time-to-first-slot histogram next to the
// request-latency one.
//
// The HTTP surface (Handler) speaks the JSON schema of internal/wire:
// POST /route, POST /route/stream, GET /slots, GET /stats, GET /healthz.
// Close drains every shard's in-flight batches and slot streams before
// returning, which is what popsserved's graceful shutdown calls after
// http.Server.Shutdown.
package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pops"
	"pops/internal/obs"
	"pops/internal/wire"
)

// Config tunes the service. The zero value selects the defaults noted on
// each field.
type Config struct {
	// Name identifies this node in GET /stats (the Server field), so a
	// fleet aggregator can attribute shards and counters to machines.
	// Default "popsserved".
	Name string
	// MaxShards bounds the number of live planner shards (distinct POPS
	// shapes) via LRU eviction. Default 64.
	MaxShards int
	// BatchSize flushes a shard's admission queue once this many requests
	// have coalesced. Default 32.
	BatchSize int
	// BatchDelay flushes a partial batch this long after its first request
	// was admitted, bounding the latency cost of coalescing. Default 1ms.
	BatchDelay time.Duration
	// CacheSize is the per-shard fingerprint plan cache capacity in plans
	// (pops.WithPlanCache). Default 1024; negative disables caching.
	CacheSize int
	// PlannerOptions are extra options applied to every shard's planner
	// (e.g. pops.WithVerify, pops.WithParallelism, pops.WithAlgorithm).
	PlannerOptions []pops.Option
	// SlowRequests is how many of the slowest requests the tracer retains
	// for GET /debug/slow. Default 64.
	SlowRequests int
	// QueueDepth bounds each shard's admission queue. An admission that
	// finds the queue full is rejected immediately with a typed
	// *pops.OverloadError (HTTP 429) instead of blocking — load past the
	// bound is shed, not buffered. Default 32×BatchSize; negative means 1.
	QueueDepth int
	// MaxStreams bounds concurrently open slot streams per shard; excess
	// stream admissions are shed with *pops.OverloadError. Default 64;
	// negative disables the cap.
	MaxStreams int
	// MaxDirect bounds concurrently executing direct-path requests per
	// shard (non-batched strategies and workload kinds). Default 0: no cap,
	// matching the previous behavior; set it to shed the direct path too.
	MaxDirect int
	// TenantWeights assigns admission weights to tenant names for the
	// TenantMix quota model: when a shard's queue is contended, each tenant
	// is throttled to its weight's share of the queue's service rate.
	// Unlisted tenants (including the empty tenant) weigh 1. A nil map
	// leaves every tenant at weight 1 — fair sharing by request count.
	TenantWeights map[string]float64
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "popsserved"
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 64
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.BatchDelay == 0 {
		c.BatchDelay = time.Millisecond
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 32 * c.BatchSize
	} else if c.QueueDepth < 0 {
		c.QueueDepth = 1
	}
	if c.MaxStreams == 0 {
		c.MaxStreams = 64
	} else if c.MaxStreams < 0 {
		c.MaxStreams = 0 // uncapped
	}
	if c.MaxDirect < 0 {
		c.MaxDirect = 0 // uncapped
	}
	return c
}

// tenantWeight resolves a tenant's admission weight (1 unless configured).
func (c Config) tenantWeight(tenant string) float64 {
	if w, ok := c.TenantWeights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// ErrClosed is returned for requests admitted after Close started.
var ErrClosed = errors.New("service: shutting down")

// shapeKey identifies one planner shard.
type shapeKey struct{ d, g int }

// Service is the sharded planner service. Create one with New, mount
// Handler on an HTTP server, and Close it to drain in-flight batches on
// shutdown. All methods are safe for concurrent use.
type Service struct {
	cfg Config

	mu     sync.Mutex
	shards map[shapeKey]*list.Element
	lru    list.List // of *shard; front = most recently used
	closed bool
	wg     sync.WaitGroup // live shard loops

	requests      atomic.Uint64
	evictedShards atomic.Uint64
	// faultPlans counts faulty-permutation workloads served; unroutable
	// counts the subset that ended in a typed *pops.UnroutableError.
	faultPlans atomic.Uint64
	unroutable atomic.Uint64
	// retiredHits/Misses preserve the cache counters of evicted shards, so
	// /stats totals survive shard churn.
	retiredHits   atomic.Uint64
	retiredMisses atomic.Uint64
	// sheds counts overload rejections (429); deadlineSheds the queued
	// entries dropped because their propagated deadline expired before a
	// planner worker touched them. retiredSheds/retiredDeadlineSheds
	// preserve evicted shards' counts, mirroring the cache counters.
	sheds                atomic.Uint64
	deadlineSheds        atomic.Uint64
	retiredSheds         atomic.Uint64
	retiredDeadlineSheds atomic.Uint64
	latency              obs.Histogram

	// tenants is the per-tenant fairness ledger behind /stats and /metrics;
	// entries are created on a tenant's first admission or shed.
	tenantMu sync.RWMutex
	tenants  map[string]*tenantCounters

	// Per-codec wire-path ledgers: which negotiated response codec answered
	// each /route and /route/stream, and how many stream bytes it flushed.
	codecJSON   wireCodecCounters
	codecNDJSON wireCodecCounters
	codecBinary wireCodecCounters

	// Streaming state: /route/stream requests bypass the admission queues
	// (each stream owns a worker planner), so graceful drain tracks them
	// separately; ttfs is the time-to-first-slot histogram.
	streams       atomic.Uint64
	streamedSlots atomic.Uint64
	ttfs          obs.Histogram
	streamsWG     sync.WaitGroup

	// tracer owns request spans, the slowest-requests ring (/debug/slow)
	// and the per-(d, g, strategy) plan-time table; metrics is the /metrics
	// registry.
	tracer  *obs.Tracer
	metrics *obs.Registry
}

// wireCodecCounters is one response codec's live wire-path ledger.
type wireCodecCounters struct {
	requests      atomic.Uint64
	streams       atomic.Uint64
	streamedBytes atomic.Uint64
}

// snapshot renders the ledger as its wire form; ok is false when every
// counter is zero (the codec was never negotiated, so /stats omits it).
func (c *wireCodecCounters) snapshot(name string) (wire.WireCodecStats, bool) {
	st := wire.WireCodecStats{
		Codec:         name,
		Requests:      c.requests.Load(),
		Streams:       c.streams.Load(),
		StreamedBytes: c.streamedBytes.Load(),
	}
	return st, st.Requests != 0 || st.Streams != 0 || st.StreamedBytes != 0
}

// tenantCounters is one tenant's live fairness ledger.
type tenantCounters struct {
	admitted     atomic.Uint64
	shed         atomic.Uint64
	deadlineShed atomic.Uint64
}

// tenant resolves (creating on first use) the ledger for one tenant name.
func (s *Service) tenant(name string) *tenantCounters {
	s.tenantMu.RLock()
	tc := s.tenants[name]
	s.tenantMu.RUnlock()
	if tc != nil {
		return tc
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if tc = s.tenants[name]; tc == nil {
		tc = &tenantCounters{}
		s.tenants[name] = tc
	}
	return tc
}

// New builds a Service with the given configuration.
func New(cfg Config) *Service {
	s := &Service{
		cfg:     cfg.withDefaults(),
		shards:  make(map[shapeKey]*list.Element),
		tenants: make(map[string]*tenantCounters),
		tracer:  obs.NewTracer(cfg.SlowRequests),
	}
	s.metrics = obs.NewRegistry()
	s.metrics.Register(s.collectMetrics)
	return s
}

// Tracer exposes the service's tracer, so the binary can mirror
// /debug/slow on a separate debug listener.
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// Metrics exposes the /metrics registry, so the binary can mirror it on a
// separate debug listener.
func (s *Service) Metrics() *obs.Registry { return s.metrics }

// observeLatency records one request into the latency histogram — unless
// ctx carries a trace span, in which case the HTTP layer observes the span's
// total after encoding instead, keeping the histogram observation and the
// span's phase breakdown two views of the same measured interval.
func (s *Service) observeLatency(ctx context.Context, start time.Time) {
	if obs.SpanFromContext(ctx) == nil {
		s.latency.Observe(time.Since(start))
	}
}

// shardFor returns the live shard for POPS(d, g), creating it (and evicting
// the least recently used shard past MaxShards) on first use.
func (s *Service) shardFor(d, g int) (*shard, error) {
	key := shapeKey{d, g}
	var victim *shard
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if el, ok := s.shards[key]; ok {
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return el.Value.(*shard), nil
	}
	sh, err := newShard(s, d, g)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.shards[key] = s.lru.PushFront(sh)
	if s.lru.Len() > s.cfg.MaxShards {
		back := s.lru.Back()
		victim = back.Value.(*shard)
		delete(s.shards, victim.key)
		s.lru.Remove(back)
	}
	s.wg.Add(1)
	go sh.loop()
	s.mu.Unlock()
	if victim != nil {
		s.retire(victim)
	}
	return sh, nil
}

// retire drains one evicted shard and folds its cache counters into the
// service totals. It runs outside the registry lock: draining only depends
// on the shard's own loop, which keeps consuming until the queue closes.
func (s *Service) retire(sh *shard) {
	sh.close()
	<-sh.done
	cs := sh.planner.CacheStats()
	s.retiredHits.Add(cs.Hits)
	s.retiredMisses.Add(cs.Misses)
	s.retiredSheds.Add(sh.sheds.Load())
	s.retiredDeadlineSheds.Add(sh.deadlineSheds.Load())
	s.evictedShards.Add(1)
}

// Route plans one permutation on POPS(d, g) through the shard's admission
// queue (strategy "" or "theorem2") or directly through the named strategy
// router. ctx gates the wait: a cancelled context abandons the request (the
// in-flight micro-batch still completes server-side) and returns ctx.Err().
// The returned error is otherwise request-level (invalid shape, unknown
// strategy, service shutting down); per-permutation planning failures come
// back in Result.Err, mirroring the batch contract.
func (s *Service) Route(ctx context.Context, d, g int, pi []int, strategy string) (Result, error) {
	defer s.observeLatency(ctx, time.Now())
	s.requests.Add(1)
	for {
		sh, err := s.shardFor(d, g)
		if err != nil {
			return Result{}, err
		}
		res, err := sh.route(ctx, pi, strategy)
		if err == errShardRetired {
			continue // the shard was evicted between lookup and admission
		}
		if err != nil {
			return Result{}, err
		}
		return res, nil
	}
}

// Execute plans one non-permutation workload on POPS(d, g), bypassing the
// micro-batching queue (which amortizes only the Theorem 2 permutation
// path): the workload is executed directly on the shard's planner, where it
// shares the pooled worker arenas and the fingerprint plan cache. ctx
// cancels planning between König factors. Request-level failures (invalid
// shape, shutdown) are returned as the error; workload planning failures
// come back in Result.Err, mirroring Route.
func (s *Service) Execute(ctx context.Context, d, g int, w pops.Workload) (Result, error) {
	defer s.observeLatency(ctx, time.Now())
	s.requests.Add(1)
	for {
		sh, err := s.shardFor(d, g)
		if err != nil {
			return Result{}, err
		}
		res, err := sh.execute(ctx, w)
		if err == errShardRetired {
			continue // the shard was evicted between lookup and admission
		}
		if err != nil {
			return Result{}, err
		}
		if w.Kind() == pops.WorkloadFaultyPermutation {
			s.faultPlans.Add(1)
			var ue *pops.UnroutableError
			if errors.As(res.Err, &ue) {
				s.unroutable.Add(1)
			}
		}
		return res, nil
	}
}

// RouteMany plans a batch of permutations on POPS(d, g). All entries are
// admitted to the shard's queue before any result is awaited, so a batch
// coalesces with itself (and with concurrent requests) onto RouteBatch.
// Per-entry outcomes are independent: each result carries its own plan or
// error, mirroring the pops.Planner.RouteBatch contract — an entry shed by
// the admission bound carries its *pops.OverloadError without failing its
// batchmates. A cancelled ctx abandons the wait and returns ctx.Err().
func (s *Service) RouteMany(ctx context.Context, d, g int, pis [][]int, strategy string) ([]Result, error) {
	defer s.observeLatency(ctx, time.Now())
	s.requests.Add(uint64(len(pis)))
	results := make([]Result, len(pis))
	waiters := make([]chan Result, len(pis))
	pending := pis
	offset := 0
	for len(pending) > 0 {
		sh, err := s.shardFor(d, g)
		if err != nil {
			return nil, err
		}
		admitted := 0
		retired := false
		for i, pi := range pending {
			ch, err := sh.admit(ctx, pi, strategy)
			if err == errShardRetired {
				retired = true
				break
			}
			var oe *pops.OverloadError
			if errors.As(err, &oe) {
				// A shed entry is a per-entry outcome: the rest of the batch
				// proceeds, so one full queue degrades a batch instead of
				// erasing it.
				results[offset+i] = Result{Err: err}
				admitted++
				continue
			}
			if err != nil {
				return nil, err
			}
			waiters[offset+i] = ch
			admitted++
		}
		for i := 0; i < admitted; i++ {
			if waiters[offset+i] == nil {
				continue // shed at admission; its Result is already filled
			}
			select {
			case results[offset+i] = <-waiters[offset+i]:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		pending = pending[admitted:]
		offset += admitted
		if !retired && len(pending) > 0 {
			// Unreachable: admit only stops early on retirement.
			return nil, fmt.Errorf("service: batch admission stalled")
		}
	}
	return results, nil
}

// Slots returns the Theorem 2 slot count for POPS(d, g) after validating
// the shape.
func (s *Service) Slots(d, g int) (int, error) {
	if _, err := pops.NewNetwork(d, g); err != nil {
		return 0, err
	}
	return pops.OptimalSlots(d, g), nil
}

// Stats snapshots the service counters: one entry per live shard plus
// service-wide totals (cache counters include evicted shards).
func (s *Service) Stats() wire.StatsResponse {
	s.mu.Lock()
	shards := make([]*shard, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		shards = append(shards, el.Value.(*shard))
	}
	s.mu.Unlock()

	resp := wire.StatsResponse{
		Server:          s.cfg.Name,
		ShardCount:      len(shards),
		MaxShards:       s.cfg.MaxShards,
		EvictedShards:   s.evictedShards.Load(),
		Requests:        s.requests.Load(),
		Streams:         s.streams.Load(),
		StreamedSlots:   s.streamedSlots.Load(),
		CacheHits:       s.retiredHits.Load(),
		CacheMisses:     s.retiredMisses.Load(),
		FaultPlans:      s.faultPlans.Load(),
		Unroutable:      s.unroutable.Load(),
		Sheds:           s.sheds.Load() + s.retiredSheds.Load(),
		DeadlineSheds:   s.deadlineSheds.Load() + s.retiredDeadlineSheds.Load(),
		Latency:         s.latency.Snapshot(),
		TimeToFirstSlot: s.ttfs.Snapshot(),
		PlanTimes:       s.tracer.Plan.Snapshot(),
	}
	for _, sh := range shards {
		st := sh.stats()
		resp.CacheHits += st.Cache.Hits
		resp.CacheMisses += st.Cache.Misses
		resp.Sheds += st.Sheds
		resp.DeadlineSheds += st.DeadlineSheds
		resp.Shards = append(resp.Shards, st)
	}

	for _, c := range []struct {
		name    string
		counter *wireCodecCounters
	}{{wire.CodecJSON, &s.codecJSON}, {wire.CodecNDJSON, &s.codecNDJSON}, {wire.CodecBinary, &s.codecBinary}} {
		if st, ok := c.counter.snapshot(c.name); ok {
			resp.WireCodecs = append(resp.WireCodecs, st)
		}
	}

	s.tenantMu.RLock()
	for name, tc := range s.tenants {
		resp.Tenants = append(resp.Tenants, wire.TenantStats{
			Tenant:       name,
			Weight:       s.cfg.tenantWeight(name),
			Admitted:     tc.admitted.Load(),
			Shed:         tc.shed.Load(),
			DeadlineShed: tc.deadlineShed.Load(),
		})
	}
	s.tenantMu.RUnlock()
	sort.Slice(resp.Tenants, func(i, j int) bool { return resp.Tenants[i].Tenant < resp.Tenants[j].Tenant })
	return resp
}

// Close stops admitting requests, drains every shard's in-flight batches
// AND in-flight slot streams — a stream admitted before Close keeps
// delivering until its consumer has every remaining slot — and waits for
// the shard loops to exit. It is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		s.streamsWG.Wait()
		return
	}
	s.closed = true
	shards := make([]*shard, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		shards = append(shards, el.Value.(*shard))
	}
	s.mu.Unlock()
	for _, sh := range shards {
		sh.close()
	}
	s.wg.Wait()
	s.streamsWG.Wait()
}
