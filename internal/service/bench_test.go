package service

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"pops"
)

// BenchmarkServiceRoute measures the full wire path (HTTP/JSON round-trip,
// admission queue, planner) for one permutation per request: cold misses on
// the "miss" variant (the cache is disabled) and warm fingerprint-cache hits
// on the "hit" variant — the steady state of recurring-permutation traffic.
func BenchmarkServiceRoute(b *testing.B) {
	const d, g = 8, 8
	pi := pops.VectorReversal(d * g)
	run := func(b *testing.B, cfg Config) {
		svc := New(cfg)
		srv := httptest.NewServer(svc.Handler())
		defer srv.Close()
		defer svc.Close()
		client := pops.NewServiceClient(srv.URL, srv.Client())
		ctx := context.Background()
		if _, err := client.Route(ctx, d, g, pi); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Route(ctx, d, g, pi); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("hit", func(b *testing.B) {
		run(b, Config{BatchDelay: 50 * time.Microsecond})
	})
	b.Run("miss", func(b *testing.B) {
		run(b, Config{BatchDelay: 50 * time.Microsecond, CacheSize: -1})
	})
}

// BenchmarkServiceRouteBatch measures wire-path batch throughput: one
// request carrying a batch of distinct permutations, micro-batched onto
// Planner.RouteBatch server-side. Reported per batch.
func BenchmarkServiceRouteBatch(b *testing.B) {
	const d, g = 8, 8
	for _, size := range []int{8, 32} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			pis := make([][]int, size)
			for i := range pis {
				pi, err := pops.MeshShift(d, g, i%d, (i/d)%g)
				if err != nil {
					b.Fatal(err)
				}
				pis[i] = pi
			}
			svc := New(Config{BatchSize: size, BatchDelay: 50 * time.Microsecond, CacheSize: -1})
			srv := httptest.NewServer(svc.Handler())
			defer srv.Close()
			defer svc.Close()
			client := pops.NewServiceClient(srv.URL, srv.Client())
			ctx := context.Background()
			if _, err := client.RouteBatch(ctx, d, g, pis); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plans, err := client.RouteBatch(ctx, d, g, pis)
				if err != nil {
					b.Fatal(err)
				}
				if len(plans) != size {
					b.Fatal("short batch")
				}
			}
		})
	}
}

// BenchmarkServiceInProcess isolates the serving layers without HTTP: the
// admission queue + planner path as popsserved's handler sees it.
func BenchmarkServiceInProcess(b *testing.B) {
	const d, g = 8, 8
	pi := pops.VectorReversal(d * g)
	svc := New(Config{BatchDelay: 50 * time.Microsecond, CacheSize: -1})
	defer svc.Close()
	if _, err := svc.Route(d, g, pi, ""); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := svc.Route(d, g, pi, "")
		if err != nil || res.Err != nil {
			b.Fatal(err, res.Err)
		}
	}
}
