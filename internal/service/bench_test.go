package service

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"pops"
)

// BenchmarkServiceRoute measures the full wire path (HTTP/JSON round-trip,
// admission queue, planner) for one permutation per request: cold misses on
// the "miss" variant (the cache is disabled) and warm fingerprint-cache hits
// on the "hit" variant — the steady state of recurring-permutation traffic.
func BenchmarkServiceRoute(b *testing.B) {
	const d, g = 8, 8
	pi := pops.VectorReversal(d * g)
	run := func(b *testing.B, cfg Config) {
		svc := New(cfg)
		srv := httptest.NewServer(svc.Handler())
		defer srv.Close()
		defer svc.Close()
		client := pops.NewServiceClient(srv.URL, srv.Client())
		ctx := context.Background()
		if _, err := client.Route(ctx, d, g, pi); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Route(ctx, d, g, pi); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("hit", func(b *testing.B) {
		run(b, Config{BatchDelay: 50 * time.Microsecond})
	})
	b.Run("miss", func(b *testing.B) {
		run(b, Config{BatchDelay: 50 * time.Microsecond, CacheSize: -1})
	})
}

// BenchmarkServiceRouteBatch measures wire-path batch throughput: one
// request carrying a batch of distinct permutations, micro-batched onto
// Planner.RouteBatch server-side. Reported per batch.
func BenchmarkServiceRouteBatch(b *testing.B) {
	const d, g = 8, 8
	for _, size := range []int{8, 32} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			pis := make([][]int, size)
			for i := range pis {
				pi, err := pops.MeshShift(d, g, i%d, (i/d)%g)
				if err != nil {
					b.Fatal(err)
				}
				pis[i] = pi
			}
			svc := New(Config{BatchSize: size, BatchDelay: 50 * time.Microsecond, CacheSize: -1})
			srv := httptest.NewServer(svc.Handler())
			defer srv.Close()
			defer svc.Close()
			client := pops.NewServiceClient(srv.URL, srv.Client())
			ctx := context.Background()
			if _, err := client.RouteBatch(ctx, d, g, pis); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plans, err := client.RouteBatch(ctx, d, g, pis)
				if err != nil {
					b.Fatal(err)
				}
				if len(plans) != size {
					b.Fatal("short batch")
				}
			}
		})
	}
}

// BenchmarkServiceStream measures the streamed wire path over HTTP chunked
// NDJSON at the acceptance shape d=16/g=64. first-slot is the headline
// latency: POST /route/stream, read the meta record and the first slot
// record, then hang up (the server notices the dead connection and abandons
// the rest of the plan); drain reads the whole stream; route-full is the
// batch wire baseline — with include_schedule, so both sides serialize the
// complete slot schedule — whose first slot is only available when the
// whole plan arrives. The cache is disabled so every request plans from
// scratch.
func BenchmarkServiceStream(b *testing.B) {
	const d, g = 16, 64
	pi := pops.VectorReversal(d * g)
	newServer := func(b *testing.B) (*pops.ServiceClient, func()) {
		svc := New(Config{BatchDelay: 50 * time.Microsecond, CacheSize: -1})
		srv := httptest.NewServer(svc.Handler())
		return pops.NewServiceClient(srv.URL, srv.Client()), func() {
			srv.CloseClientConnections()
			svc.Close()
			srv.Close()
		}
	}
	ctx := context.Background()
	b.Run("route-full", func(b *testing.B) {
		client, shutdown := newServer(b)
		defer shutdown()
		req := &pops.ServiceRouteRequest{D: d, G: g, Pi: pi, IncludeSchedule: true}
		if _, err := client.Do(ctx, req); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Do(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Plans[0].Error != "" || resp.Plans[0].Schedule == nil {
				b.Fatal("no schedule in response")
			}
		}
	})
	b.Run("stream-first-slot", func(b *testing.B) {
		client, shutdown := newServer(b)
		defer shutdown()
		if _, err := client.Route(ctx, d, g, pi); err != nil { // warm the shard
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := client.RouteStream(ctx, d, g, pi)
			if err != nil {
				b.Fatal(err)
			}
			if rec, err := st.Next(); err != nil || rec == nil {
				b.Fatal("no first slot record:", err)
			}
			st.Close() // abandon: the server stops planning and releases the worker
		}
	})
	b.Run("stream-drain", func(b *testing.B) {
		client, shutdown := newServer(b)
		defer shutdown()
		if _, err := client.Route(ctx, d, g, pi); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := client.RouteStream(ctx, d, g, pi)
			if err != nil {
				b.Fatal(err)
			}
			for {
				rec, err := st.Next()
				if err != nil {
					b.Fatal(err)
				}
				if rec == nil {
					break
				}
			}
			st.Close()
		}
	})
}

// BenchmarkServiceStreamCodec compares the stream codecs head to head on the
// full wire path with a warm plan cache, so (de)serialization — not planning
// — dominates: the same cached plan is drained over NDJSON and over the
// binary framing across the shape grid. ns/slot is the headline metric (the
// per-fragment cost a consumer pays); the acceptance bar is binary at no more
// than half the NDJSON ns/slot on d=16/g=64.
func BenchmarkServiceStreamCodec(b *testing.B) {
	ctx := context.Background()
	for _, d := range []int{8, 16, 32} {
		for _, g := range []int{8, 64} {
			for _, codec := range []struct {
				name string
				c    pops.ServiceCodec
			}{{"ndjson", pops.CodecJSON}, {"binary", pops.CodecBinary}} {
				b.Run(fmt.Sprintf("d=%d/g=%d/%s", d, g, codec.name), func(b *testing.B) {
					pi := pops.VectorReversal(d * g)
					svc := New(Config{BatchDelay: 50 * time.Microsecond})
					srv := httptest.NewServer(svc.Handler())
					defer func() {
						srv.CloseClientConnections()
						svc.Close()
						srv.Close()
					}()
					client := pops.NewServiceClient(srv.URL, srv.Client()).WithCodec(codec.c)
					if _, err := client.Route(ctx, d, g, pi); err != nil { // warm the plan cache
						b.Fatal(err)
					}
					slots := 0
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						st, err := client.RouteStream(ctx, d, g, pi)
						if err != nil {
							b.Fatal(err)
						}
						n := 0
						for {
							rec, err := st.Next()
							if err != nil {
								b.Fatal(err)
							}
							if rec == nil {
								break
							}
							n++
						}
						st.Close()
						slots += n
					}
					b.StopTimer()
					if slots > 0 {
						b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(slots), "ns/slot")
					}
				})
			}
		}
	}
}

// BenchmarkServiceInProcess isolates the serving layers without HTTP: the
// admission queue + planner path as popsserved's handler sees it.
func BenchmarkServiceInProcess(b *testing.B) {
	const d, g = 8, 8
	pi := pops.VectorReversal(d * g)
	svc := New(Config{BatchDelay: 50 * time.Microsecond, CacheSize: -1})
	defer svc.Close()
	if _, err := svc.Route(context.Background(), d, g, pi, ""); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := svc.Route(context.Background(), d, g, pi, "")
		if err != nil || res.Err != nil {
			b.Fatal(err, res.Err)
		}
	}
}
