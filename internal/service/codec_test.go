package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"pops"
	"pops/internal/popsnet"
	"pops/internal/wire"
	"pops/internal/wirebin"
)

// newCodecTestServer mounts a fresh service and returns the service plus the
// raw httptest server, for tests that drive negotiation headers directly.
func newCodecTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		svc.Close()
		srv.Close()
	})
	return svc, srv
}

func postRoute(t *testing.T, srv *httptest.Server, path string, body []byte, contentType, accept string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRouteBinaryResponseMatchesJSON pins unary cross-codec equivalence at
// the handler level: the same request answered in JSON and in binary decodes
// to identical plans, and the binary answer carries the negotiated
// Content-Type.
func TestRouteBinaryResponseMatchesJSON(t *testing.T) {
	_, srv := newCodecTestServer(t, Config{})
	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)
	body, err := json.Marshal(wire.RouteRequest{D: d, G: g, Pi: pi, IncludeSchedule: true})
	if err != nil {
		t.Fatal(err)
	}

	jsonResp := postRoute(t, srv, "/route", body, "application/json", "")
	if jsonResp.StatusCode != http.StatusOK {
		t.Fatalf("json status %d", jsonResp.StatusCode)
	}
	var fromJSON wire.RouteResponse
	if err := json.NewDecoder(jsonResp.Body).Decode(&fromJSON); err != nil {
		t.Fatal(err)
	}

	binResp := postRoute(t, srv, "/route", body, "application/json", wirebin.ContentType)
	if binResp.StatusCode != http.StatusOK {
		t.Fatalf("binary status %d", binResp.StatusCode)
	}
	if ct := binResp.Header.Get("Content-Type"); !wirebin.IsContentType(ct) {
		t.Fatalf("binary response Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(binResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	dec := wirebin.NewDecoder(bytes.NewReader(raw))
	typ, payload, err := dec.ReadFrame()
	if err != nil || typ != wirebin.FrameResponse {
		t.Fatalf("ReadFrame: typ=%d err=%v", typ, err)
	}
	var fromBin wire.RouteResponse
	if err := wirebin.DecodeResponse(payload, &fromBin); err != nil {
		t.Fatal(err)
	}

	// Request IDs are generated per request; everything else must agree.
	fromJSON.RequestID, fromBin.RequestID = "", ""
	// The second request hits the plan cache; normalize the flag.
	for i := range fromJSON.Plans {
		fromJSON.Plans[i].Cached = false
	}
	for i := range fromBin.Plans {
		fromBin.Plans[i].Cached = false
	}
	if !reflect.DeepEqual(fromJSON, fromBin) {
		t.Fatalf("codec mismatch:\n json %+v\n bin  %+v", fromJSON, fromBin)
	}
}

// TestRouteBinaryRequestBody drives /route with a binary-framed request body
// and checks it plans identically to the JSON body.
func TestRouteBinaryRequestBody(t *testing.T) {
	_, srv := newCodecTestServer(t, Config{})
	const d, g = 2, 4
	pi := pops.VectorReversal(d * g)
	wreq := wire.RouteRequest{D: d, G: g, Pi: pi}
	enc := wirebin.GetEncoder()
	frame := append([]byte(nil), enc.AppendRequest(&wreq)...)
	wirebin.PutEncoder(enc)

	resp := postRoute(t, srv, "/route", frame, wirebin.ContentType, wirebin.ContentType)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wirebin.NewDecoder(bytes.NewReader(raw)).ReadFrame()
	if err != nil || typ != wirebin.FrameResponse {
		t.Fatalf("ReadFrame: typ=%d err=%v", typ, err)
	}
	var rr wire.RouteResponse
	if err := wirebin.DecodeResponse(payload, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Plans) != 1 || rr.Plans[0].Error != "" {
		t.Fatalf("unexpected response: %+v", rr)
	}
	if rr.Plans[0].Slots != pops.OptimalSlots(d, g) {
		t.Fatalf("slots = %d, want %d", rr.Plans[0].Slots, pops.OptimalSlots(d, g))
	}

	// A corrupt binary body must 400, not crash or hang.
	bad := postRoute(t, srv, "/route", frame[:len(frame)-2], wirebin.ContentType, "")
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt body status %d, want 400", bad.StatusCode)
	}
}

// TestStreamNegotiation pins the default surface: empty and unknown Accept
// values stream NDJSON exactly as before, and only an explicit
// application/x-pops-bin flips the stream to binary frames.
func TestStreamNegotiation(t *testing.T) {
	svc, srv := newCodecTestServer(t, Config{})
	const d, g = 2, 4
	body, err := json.Marshal(wire.RouteRequest{D: d, G: g, Pi: pops.VectorReversal(d * g)})
	if err != nil {
		t.Fatal(err)
	}

	for _, accept := range []string{"", "application/weird", "application/json, text/html", "*/*"} {
		resp := postRoute(t, srv, "/route/stream", body, "application/json", accept)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("Accept=%q: status %d", accept, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("Accept=%q: Content-Type %q, want NDJSON", accept, ct)
		}
		// The body must be plain NDJSON records ending in done.
		var last wire.StreamRecord
		dec := json.NewDecoder(resp.Body)
		for dec.More() {
			last = wire.StreamRecord{}
			if err := dec.Decode(&last); err != nil {
				t.Fatalf("Accept=%q: decode: %v", accept, err)
			}
		}
		if last.Type != "done" {
			t.Fatalf("Accept=%q: last record %q, want done", accept, last.Type)
		}
	}

	resp := postRoute(t, srv, "/route/stream", body, "application/json", wirebin.ContentType)
	if ct := resp.Header.Get("Content-Type"); !wirebin.IsContentType(ct) {
		t.Fatalf("binary stream Content-Type = %q", ct)
	}
	dec := wirebin.NewDecoder(resp.Body)
	var types []byte
	for {
		typ, _, err := dec.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		types = append(types, typ)
	}
	if len(types) < 3 || types[0] != wirebin.FrameMeta || types[len(types)-1] != wirebin.FrameDone {
		t.Fatalf("frame types %v, want meta ... done", types)
	}

	// Both codecs fed the per-codec ledger.
	var ndjson, binary *wire.WireCodecStats
	codecs := svc.Stats().WireCodecs
	for i := range codecs {
		switch codecs[i].Codec {
		case wire.CodecNDJSON:
			ndjson = &codecs[i]
		case wire.CodecBinary:
			binary = &codecs[i]
		}
	}
	if ndjson == nil || ndjson.Streams != 4 || ndjson.StreamedBytes == 0 {
		t.Fatalf("ndjson ledger %+v, want 4 streams with bytes", ndjson)
	}
	if binary == nil || binary.Streams != 1 || binary.StreamedBytes == 0 {
		t.Fatalf("binary ledger %+v, want 1 stream with bytes", binary)
	}
}

// scheduleText renders a reassembled slot sequence in the canonical popsnet
// text form, the byte-identity yardstick for cross-codec comparisons.
func scheduleText(t testing.TB, d, g int, slots []popsnet.Slot) string {
	t.Helper()
	var buf bytes.Buffer
	sched := &popsnet.Schedule{Net: popsnet.Network{D: d, G: g}, Slots: slots}
	if err := sched.Format(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// crossCodecCheck streams pi once per codec, reassembles both plans, and
// requires the binary text form to be byte-identical to the NDJSON form and
// to the locally planned schedule.
func crossCodecCheck(t testing.TB, client *pops.ServiceClient, d, g int, pi []int) {
	t.Helper()
	ctx := context.Background()

	binSt, err := client.WithCodec(pops.CodecBinary).RouteStream(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	binSlots := collectServiceStream(t, binSt)
	binSt.Close()

	jsonSt, err := client.WithCodec(pops.CodecJSON).RouteStream(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	jsonSlots := collectServiceStream(t, jsonSt)
	jsonSt.Close()

	binText := scheduleText(t, d, g, binSlots)
	jsonText := scheduleText(t, d, g, jsonSlots)
	if binText != jsonText {
		t.Fatalf("d=%d g=%d: binary and NDJSON streams reassemble differently.\nbinary:\n%s\nndjson:\n%s", d, g, binText, jsonText)
	}

	p, err := pops.NewPlanner(d, g)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Route(pi)
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	if err := plan.Schedule().Format(&local); err != nil {
		t.Fatal(err)
	}
	if binText != local.String() {
		t.Fatalf("d=%d g=%d: binary stream diverges from local Execute.\nbinary:\n%s\nlocal:\n%s", d, g, binText, local.String())
	}
}

// TestStreamCrossCodecCollectEquivalence is the correctness anchor of the
// binary codec: across shapes and seeds, the schedule reassembled from a
// binary stream is byte-identical (canonical popsnet text form) to the one
// reassembled from the NDJSON stream and to the locally planned schedule.
// Later seeds replay through the plan cache, so the whole-slot cached
// fragmentation is pinned to the same equivalence.
func TestStreamCrossCodecCollectEquivalence(t *testing.T) {
	_, client := newTestServer(t, Config{})
	for _, s := range []struct{ d, g int }{{1, 5}, {2, 4}, {4, 8}, {8, 8}} {
		for seed := int64(0); seed < 3; seed++ {
			pi := pops.RandomPermutation(s.d*s.g, rand.New(rand.NewSource(seed)))
			crossCodecCheck(t, client, s.d, s.g, pi)
		}
	}
}

// FuzzStreamCrossCodec is the native-fuzzer form of the cross-codec anchor:
// fuzzer-chosen shapes and permutation seeds must reassemble identically
// from binary and NDJSON streams and match the local planner.
func FuzzStreamCrossCodec(f *testing.F) {
	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler())
	f.Cleanup(func() {
		svc.Close()
		srv.Close()
	})
	client := pops.NewServiceClient(srv.URL, srv.Client())

	f.Add(uint8(2), uint8(4), int64(1))
	f.Add(uint8(4), uint8(2), int64(2))
	f.Add(uint8(1), uint8(6), int64(3))
	f.Add(uint8(3), uint8(3), int64(4))
	f.Fuzz(func(t *testing.T, dSeed, gSeed uint8, seed int64) {
		d := int(dSeed)%6 + 1
		g := int(gSeed)%6 + 1
		pi := pops.RandomPermutation(d*g, rand.New(rand.NewSource(seed)))
		crossCodecCheck(t, client, d, g, pi)
	})
}
