package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pops"
	"pops/internal/obs"
	"pops/internal/wire"
)

// newObsServer is newTestServer without the client wrapper: observability
// tests talk raw HTTP to inspect headers and exposition text.
func newObsServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		svc.Close()
		srv.Close()
	})
	return svc, srv
}

func routeBody(t *testing.T, d, g int, pi []int) *bytes.Reader {
	t.Helper()
	blob, err := json.Marshal(wire.RouteRequest{D: d, G: g, Pi: pi})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(blob)
}

func TestRequestIDEchoedAndGenerated(t *testing.T) {
	_, srv := newObsServer(t, Config{BatchDelay: 200 * time.Microsecond})
	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)

	// Client-supplied ID: echoed verbatim in header and body.
	req, _ := http.NewRequest("POST", srv.URL+"/route", routeBody(t, d, g, pi))
	req.Header.Set("X-Request-Id", "client-supplied-17")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var rr wire.RouteResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-supplied-17" {
		t.Errorf("header echo = %q, want the client's id", got)
	}
	if rr.RequestID != "client-supplied-17" {
		t.Errorf("response request_id = %q, want the client's id", rr.RequestID)
	}

	// No ID supplied: the server generates a 16-hex one and echoes it in
	// both places consistently.
	resp, err = srv.Client().Post(srv.URL+"/route", "application/json", routeBody(t, d, g, pi))
	if err != nil {
		t.Fatal(err)
	}
	var rr2 wire.RouteResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")
	if len(id) != 16 || strings.Trim(id, "0123456789abcdef") != "" {
		t.Errorf("generated id %q is not 16 hex chars", id)
	}
	if rr2.RequestID != id {
		t.Errorf("body request_id %q != header %q", rr2.RequestID, id)
	}
}

func TestStreamMetaCarriesRequestID(t *testing.T) {
	_, srv := newObsServer(t, Config{BatchDelay: 200 * time.Microsecond})
	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)

	req, _ := http.NewRequest("POST", srv.URL+"/route/stream", routeBody(t, d, g, pi))
	req.Header.Set("X-Request-Id", "stream-trace-1")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "stream-trace-1" {
		t.Errorf("stream header echo = %q, want stream-trace-1", got)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no meta record: %v", sc.Err())
	}
	var rec wire.StreamRecord
	if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Type != "meta" || rec.Meta == nil {
		t.Fatalf("first record = %+v, want meta", rec)
	}
	if rec.Meta.RequestID != "stream-trace-1" {
		t.Errorf("meta request_id = %q, want stream-trace-1", rec.Meta.RequestID)
	}
}

// TestPhaseBreakdownMatchesLatencyHistogram pins the acceptance contract
// between the tracer and the latency histogram: for a traced request the
// histogram observation IS the span total (one measured interval, not two
// clocks), and the traced phases must account for at least 90% of it — the
// queue wait, cache lookup, factorization, and encode are all instrumented,
// so only scheduler hand-offs may go unattributed. A generous batch delay
// dominates the total with deliberately-traced queue time, keeping the
// untraced slice well under 10% even on a loaded CI machine; timing noise is
// absorbed by taking the best of a few attempts.
func TestPhaseBreakdownMatchesLatencyHistogram(t *testing.T) {
	svc, srv := newObsServer(t, Config{BatchDelay: 5 * time.Millisecond})
	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)

	var lastPhase, lastTotal float64
	for attempt := 0; attempt < 5; attempt++ {
		before := svc.latency.Count()
		beforeSum := svc.latency.Sum()

		id := fmt.Sprintf("phase-pin-%d", attempt)
		req, _ := http.NewRequest("POST", srv.URL+"/route", routeBody(t, d, g, pi))
		req.Header.Set("X-Request-Id", id)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("route = %d", resp.StatusCode)
		}

		if got := svc.latency.Count(); got != before+1 {
			t.Fatalf("latency histogram count %d -> %d, want one new observation", before, got)
		}
		observed := svc.latency.Sum() - beforeSum

		var snap *obs.SpanSnapshot
		for _, s := range svc.tracer.Slow.Snapshot(0) {
			if s.ID == id {
				snap = &s
				break
			}
		}
		if snap == nil {
			t.Fatal("traced request not retained in the slow ring")
		}
		// The histogram observed exactly the span total.
		if diff := observed.Seconds()*1e6 - snap.TotalMicros; diff > 1 || diff < -1 {
			t.Fatalf("histogram observation %.1fµs != span total %.1fµs", observed.Seconds()*1e6, snap.TotalMicros)
		}
		lastPhase, lastTotal = snap.PhaseMicros, snap.TotalMicros
		if lastPhase >= 0.9*lastTotal {
			return // phases account for >= 90% of the measured latency
		}
	}
	t.Fatalf("traced phases cover %.1fµs of %.1fµs total (%.0f%%), want >= 90%%",
		lastPhase, lastTotal, 100*lastPhase/lastTotal)
}

func TestMetricsEndpoint(t *testing.T) {
	_, srv := newObsServer(t, Config{BatchDelay: 200 * time.Microsecond})
	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)

	// One planned request and one cache-hit replay, so both the plan-time
	// histogram and the hit counter have data.
	var strategy string
	for i := 0; i < 2; i++ {
		resp, err := srv.Client().Post(srv.URL+"/route", "application/json", routeBody(t, d, g, pi))
		if err != nil {
			t.Fatal(err)
		}
		var rr wire.RouteResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		strategy = rr.Plans[0].Strategy
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, mustReadAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	labels := fmt.Sprintf(`d="%d",g="%d",strategy="%s"`, d, g, strategy)
	for _, want := range []string{
		"# TYPE pops_requests_total counter",
		"pops_requests_total 2",
		"# TYPE pops_request_latency_seconds histogram",
		"pops_request_latency_seconds_count 2",
		`pops_request_latency_seconds_bucket{le="+Inf"} 2`,
		"# TYPE pops_plan_time_seconds histogram",
		fmt.Sprintf("pops_plan_time_seconds_count{%s} 1", labels),
		fmt.Sprintf("pops_plan_cache_hits_total{%s} 1", labels),
		fmt.Sprintf("pops_plan_time_ewma_seconds{%s} ", labels),
		fmt.Sprintf(`pops_shard_requests_total{d="%d",g="%d"} 2`, d, g),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}

func mustReadAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestDebugSlowEndpoint(t *testing.T) {
	_, srv := newObsServer(t, Config{Name: "slow-node", BatchDelay: 200 * time.Microsecond})
	const d, g = 4, 8
	n := d * g
	for i := 0; i < 3; i++ {
		pi := pops.IdentityPermutation(n)
		for j := range pi {
			pi[j] = (j + i + 1) % n
		}
		resp, err := srv.Client().Post(srv.URL+"/route", "application/json", routeBody(t, d, g, pi))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := srv.Client().Get(srv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	var slow wire.SlowResponse
	if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slow.Server != "slow-node" {
		t.Errorf("server = %q, want slow-node", slow.Server)
	}
	if len(slow.Requests) != 3 {
		t.Fatalf("retained %d requests, want 3", len(slow.Requests))
	}
	for i := 1; i < len(slow.Requests); i++ {
		if slow.Requests[i].TotalMicros > slow.Requests[i-1].TotalMicros {
			t.Error("slow requests not sorted slowest-first")
		}
	}
	r := slow.Requests[0]
	if r.D != d || r.G != g || r.ID == "" || len(r.Phases) == 0 {
		t.Errorf("slow entry missing identity or phases: %+v", r)
	}

	// ?n= bounds the list; a bogus value is a 400.
	resp, err = srv.Client().Get(srv.URL + "/debug/slow?n=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(slow.Requests) != 1 {
		t.Errorf("?n=1 returned %d requests", len(slow.Requests))
	}
	resp, err = srv.Client().Get(srv.URL + "/debug/slow?n=-2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("?n=-2 = %d, want 400", resp.StatusCode)
	}
}

// TestStatsCarriesPlanTimes pins the /stats side of the plan-time telemetry:
// per-(d, g, strategy) EWMAs ride the existing stats schema, which is what
// the fleet aggregation and the future Auto cost model consume.
func TestStatsCarriesPlanTimes(t *testing.T) {
	svc, _ := newObsServer(t, Config{BatchDelay: 200 * time.Microsecond})
	ctx := t.Context()
	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)
	if _, err := svc.Route(ctx, d, g, pi, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Route(ctx, d, g, pi, ""); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if len(st.PlanTimes) == 0 {
		t.Fatal("stats has no plan_times")
	}
	pt := st.PlanTimes[0]
	if pt.D != d || pt.G != g || pt.Strategy == "" {
		t.Errorf("plan-time key = (%d,%d,%q), want (%d,%d,<strategy>)", pt.D, pt.G, pt.Strategy, d, g)
	}
	if pt.Count != 1 || pt.CacheHits != 1 {
		t.Errorf("count=%d hits=%d, want 1 planned + 1 cache hit", pt.Count, pt.CacheHits)
	}
	if pt.EWMAMicros <= 0 {
		t.Error("EWMA not seeded by the planned request")
	}
}
