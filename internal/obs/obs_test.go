package obs

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSpanPhaseAccounting(t *testing.T) {
	sp := &Span{start: time.Now()}
	sp.Add(PhaseQueue, 3*time.Millisecond)
	sp.Add(PhaseFactorize, 5*time.Millisecond)
	sp.Add(PhaseFactorize, 2*time.Millisecond) // accumulates, not overwrites
	sp.Begin(PhaseEncode)
	time.Sleep(time.Millisecond)
	sp.End()

	if got := sp.Phase(PhaseQueue); got != 3*time.Millisecond {
		t.Errorf("PhaseQueue = %v, want 3ms", got)
	}
	if got := sp.Phase(PhaseFactorize); got != 7*time.Millisecond {
		t.Errorf("PhaseFactorize = %v, want 7ms (accumulated)", got)
	}
	if got := sp.Phase(PhaseEncode); got <= 0 {
		t.Errorf("PhaseEncode = %v, want > 0 after Begin/End", got)
	}
	want := sp.Phase(PhaseQueue) + sp.Phase(PhaseFactorize) + sp.Phase(PhaseEncode)
	if got := sp.PhaseTotal(); got != want {
		t.Errorf("PhaseTotal = %v, want %v", got, want)
	}
	total := sp.Finish()
	if total <= 0 || sp.Total() != total {
		t.Errorf("Finish = %v, Total = %v: want equal and positive", total, sp.Total())
	}
}

func TestSpanBeginClosesOpenPhase(t *testing.T) {
	sp := &Span{start: time.Now()}
	sp.Begin(PhaseCache)
	time.Sleep(time.Millisecond)
	sp.Begin(PhaseFactorize) // implicitly ends cache
	time.Sleep(time.Millisecond)
	sp.Finish() // closes factorize
	if sp.Phase(PhaseCache) <= 0 {
		t.Error("PhaseCache not recorded: Begin should close the previously open phase")
	}
	if sp.Phase(PhaseFactorize) <= 0 {
		t.Error("PhaseFactorize not recorded: Finish should close the open phase")
	}
}

func TestSpanNegativeAddIgnored(t *testing.T) {
	sp := &Span{start: time.Now()}
	sp.Add(PhaseVerify, -time.Second)
	sp.Add(PhaseVerify, 0)
	if got := sp.Phase(PhaseVerify); got != 0 {
		t.Errorf("Phase(Verify) = %v after non-positive Adds, want 0", got)
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var sp *Span
	sp.Begin(PhaseQueue)
	sp.End()
	sp.Add(PhaseCache, time.Second)
	if sp.Finish() != 0 || sp.Total() != 0 || sp.Phase(PhaseQueue) != 0 || sp.PhaseTotal() != 0 {
		t.Error("nil span methods must all return zero")
	}
	if ContextWithSpan(context.Background(), nil) != context.Background() {
		t.Error("ContextWithSpan(nil) should return ctx unchanged")
	}
	if SpanFromContext(context.Background()) != nil {
		t.Error("SpanFromContext on a bare context should be nil")
	}
	if SpanFromContext(nil) != nil { //nolint:staticcheck // nil ctx is the point
		t.Error("SpanFromContext(nil) should be nil")
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	sp := &Span{ID: "abc"}
	ctx := ContextWithSpan(context.Background(), sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Fatalf("SpanFromContext = %p, want %p", got, sp)
	}
}

func TestTracerReusesSpans(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Start("id-1", 4, 4)
	sp.Add(PhaseFactorize, time.Millisecond)
	sp.Strategy = "pops"
	tr.Finish(sp)
	sp2 := tr.Start("id-2", 8, 8)
	// Whether or not the pool handed back the same object, the reset must
	// clear prior identity and phase state.
	if sp2.ID != "id-2" || sp2.D != 8 || sp2.Strategy != "" || sp2.Phase(PhaseFactorize) != 0 {
		t.Errorf("recycled span not reset: %+v", sp2)
	}
	tr.Finish(sp2)
}

func TestTracerAbandonLeavesSpanAlone(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Start("abandoned", 4, 4)
	sp.Add(PhaseQueue, time.Millisecond)
	if d := tr.Abandon(sp); d < 0 {
		t.Errorf("Abandon = %v, want >= 0", d)
	}
	// Phase state untouched (a late flush-goroutine write must still land in
	// a consistent span), and the abandoned request never enters the ring.
	if got := sp.Phase(PhaseQueue); got != time.Millisecond {
		t.Errorf("Abandon mutated phase state: PhaseQueue = %v", got)
	}
	if got := tr.Slow.Snapshot(0); len(got) != 0 {
		t.Errorf("abandoned span entered the slow ring: %v", got)
	}
	if tr.Abandon(nil) != 0 {
		t.Error("Abandon(nil) should return 0")
	}
}

// TestSpanAllocBudget pins the zero-allocation contract of hot-path span
// recording: phase Begin/End/Add, context extraction, and the full tracer
// Start/Finish cycle (pool steady state) must not allocate. make alloc-guard
// runs this test; a regression here puts allocations on every request.
func TestSpanAllocBudget(t *testing.T) {
	tr := NewTracer(4)
	// Warm the pool and the slow ring's fast-reject floor: fill the ring with
	// slow spans so subsequent fast requests take the no-alloc reject path.
	for i := 0; i < 8; i++ {
		sp := tr.Start("warm", 4, 4)
		sp.Add(PhaseFactorize, time.Hour)
		sp.total = time.Hour // pre-set so Finish's Since() can't underrun
		tr.Finish(sp)
	}
	ctx := ContextWithSpan(context.Background(), tr.Start("hot", 4, 4))

	allocs := testing.AllocsPerRun(1000, func() {
		sp := SpanFromContext(ctx)
		sp.Begin(PhaseCache)
		sp.End()
		sp.Add(PhaseFactorize, 42*time.Nanosecond)
	})
	if allocs != 0 {
		t.Errorf("span recording allocated %.1f allocs/op, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(1000, func() {
		sp := tr.Start("hot", 4, 4)
		sp.Add(PhaseCache, time.Nanosecond)
		tr.Finish(sp)
	})
	if allocs != 0 {
		t.Errorf("tracer Start/Finish allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	var h Histogram
	cases := []struct {
		d    time.Duration
		want int // bucket index
	}{
		{0, 0},
		{500 * time.Nanosecond, 0}, // sub-microsecond truncates to 0µs
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2}, // (2µs, 4µs]
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{1 << 17 * time.Microsecond, 17},
		{1 << 18 * time.Microsecond, 18},
		{(1<<18 + 1) * time.Microsecond, 19}, // overflow bucket
		{time.Hour, 19},
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	snap := h.Snapshot()
	if len(snap) != BucketCount {
		t.Fatalf("snapshot has %d buckets, want %d", len(snap), BucketCount)
	}
	want := make([]uint64, BucketCount)
	for _, c := range cases {
		want[c.want]++
	}
	for i, b := range snap {
		if b.Count != want[i] {
			t.Errorf("bucket %d (le=%dµs): count %d, want %d", i, b.LEMicros, b.Count, want[i])
		}
		wantLE := uint64(1) << i
		if i == BucketCount-1 {
			wantLE = 0
		}
		if b.LEMicros != wantLE {
			t.Errorf("bucket %d: le=%d, want %d", i, b.LEMicros, wantLE)
		}
	}
	if got := h.Count(); got != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", got, len(cases))
	}
	var wantSum time.Duration
	for _, c := range cases {
		wantSum += c.d
	}
	if got := h.Sum(); got != wantSum {
		t.Errorf("Sum = %v, want %v", got, wantSum)
	}
}

func TestSlowRingRetainsSlowest(t *testing.T) {
	r := NewSlowRing(4)
	for i := 1; i <= 10; i++ {
		sp := &Span{ID: fmt.Sprintf("req-%d", i), total: time.Duration(i) * time.Millisecond}
		r.Record(sp)
	}
	got := r.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("ring kept %d entries, want 4", len(got))
	}
	// Slowest first: 10, 9, 8, 7 ms.
	for i, want := range []string{"req-10", "req-9", "req-8", "req-7"} {
		if got[i].ID != want {
			t.Errorf("snapshot[%d] = %s (%.0fµs), want %s", i, got[i].ID, got[i].TotalMicros, want)
		}
	}
	if limited := r.Snapshot(2); len(limited) != 2 || limited[0].ID != "req-10" {
		t.Errorf("Snapshot(2) = %v, want top 2 slowest", limited)
	}
}

func TestSlowRingFastReject(t *testing.T) {
	r := NewSlowRing(2)
	r.Record(&Span{ID: "slow-1", total: time.Second})
	r.Record(&Span{ID: "slow-2", total: 2 * time.Second})
	if !r.full.Load() {
		t.Fatal("ring should be full after capacity inserts")
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(&Span{ID: "fast", total: time.Microsecond})
	})
	// The Span literal escapes analysis-free; the Record call itself must not
	// snapshot a rejected request.
	if allocs > 1 {
		t.Errorf("fast-reject path allocated %.1f allocs/op, want <= 1 (the test's own literal)", allocs)
	}
	for _, s := range r.Snapshot(0) {
		if s.ID == "fast" {
			t.Error("fast request displaced a slower one")
		}
	}
}

func TestSpanSnapshotPhases(t *testing.T) {
	sp := &Span{ID: "snap", D: 4, G: 8, Strategy: "pops", Workload: "faulty", Cached: true, start: time.Now()}
	sp.Add(PhaseQueue, 2*time.Millisecond)
	sp.Add(PhaseFaultRepair, 5*time.Millisecond)
	sp.Finish()
	snap := sp.Snapshot()
	if snap.ID != "snap" || snap.D != 4 || snap.G != 8 || snap.Strategy != "pops" ||
		snap.Workload != "faulty" || !snap.Cached {
		t.Errorf("identity not carried: %+v", snap)
	}
	if len(snap.Phases) != 2 {
		t.Fatalf("Phases = %v, want exactly the 2 recorded phases", snap.Phases)
	}
	if snap.Phases[0].Phase != "queue" || snap.Phases[1].Phase != "fault_repair" {
		t.Errorf("phases out of taxonomy order: %v", snap.Phases)
	}
	if snap.PhaseMicros != 7000 {
		t.Errorf("PhaseMicros = %v, want 7000", snap.PhaseMicros)
	}
}

func TestNewRequestID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q: length %d, want 16", id, len(id))
		}
		for _, c := range id {
			if !strings.ContainsRune("0123456789abcdef", c) {
				t.Fatalf("id %q contains non-hex %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate id %q after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestPlanTimesEWMA(t *testing.T) {
	pt := NewPlanTimes()
	pt.Observe(4, 4, "pops", false, 100*time.Microsecond)
	if got := pt.EWMA(4, 4, "pops"); got != 100*time.Microsecond {
		t.Errorf("first observation should seed the EWMA: got %v", got)
	}
	pt.Observe(4, 4, "pops", false, 200*time.Microsecond)
	// 0.2*200 + 0.8*100 = 120µs
	if got := pt.EWMA(4, 4, "pops"); got != 120*time.Microsecond {
		t.Errorf("EWMA after second observation = %v, want 120µs", got)
	}
	if got := pt.EWMA(9, 9, "nope"); got != 0 {
		t.Errorf("unknown key EWMA = %v, want 0", got)
	}
}

func TestPlanTimesCacheHitsSeparate(t *testing.T) {
	pt := NewPlanTimes()
	pt.Observe(8, 8, "greedy", false, 50*time.Microsecond)
	pt.Observe(8, 8, "greedy", true, 0) // hit: must not move the EWMA or histogram
	pt.Observe(8, 8, "greedy", true, time.Hour)
	snap := pt.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %v, want 1 key", snap)
	}
	st := snap[0]
	if st.Count != 1 || st.CacheHits != 2 {
		t.Errorf("Count=%d CacheHits=%d, want 1/2", st.Count, st.CacheHits)
	}
	if st.EWMAMicros != 50 {
		t.Errorf("EWMAMicros = %v: cache hits must not move the EWMA", st.EWMAMicros)
	}
	if st.SumMicros != 50 {
		t.Errorf("SumMicros = %v: cache hits must not enter the histogram", st.SumMicros)
	}
	var histCount uint64
	for _, b := range st.Buckets {
		histCount += b.Count
	}
	if histCount != 1 {
		t.Errorf("histogram count = %d, want 1 (hits excluded)", histCount)
	}
}

func TestPlanTimesSnapshotSorted(t *testing.T) {
	pt := NewPlanTimes()
	pt.Observe(8, 8, "pops", false, time.Microsecond)
	pt.Observe(4, 4, "pops", false, time.Microsecond)
	pt.Observe(4, 4, "greedy", false, time.Microsecond)
	pt.Observe(4, 8, "pops", false, time.Microsecond)
	snap := pt.Snapshot()
	type key struct {
		d, g int
		s    string
	}
	want := []key{{4, 4, "greedy"}, {4, 4, "pops"}, {4, 8, "pops"}, {8, 8, "pops"}}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d keys, want %d", len(snap), len(want))
	}
	for i, w := range want {
		if snap[i].D != w.d || snap[i].G != w.g || snap[i].Strategy != w.s {
			t.Errorf("snapshot[%d] = (%d,%d,%s), want (%d,%d,%s)",
				i, snap[i].D, snap[i].G, snap[i].Strategy, w.d, w.g, w.s)
		}
	}
}

func TestPlanTimesObserveAllocBudget(t *testing.T) {
	pt := NewPlanTimes()
	pt.Observe(4, 4, "pops", false, time.Microsecond) // create the key
	allocs := testing.AllocsPerRun(1000, func() {
		pt.Observe(4, 4, "pops", false, time.Microsecond)
		pt.Observe(4, 4, "pops", true, 0)
	})
	if allocs != 0 {
		t.Errorf("Observe on an existing key allocated %.1f allocs/op, want 0", allocs)
	}
}

// parsePromText is a minimal exposition-format checker: every non-comment
// line must be `name{labels} value` or `name value`, and histogram bucket
// series must be cumulative with the +Inf bucket equal to _count.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sep := strings.LastIndexByte(line, ' ')
		if sep < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, val := line[:sep], line[sep+1:]
		var v float64
		if _, err := fmt.Sscanf(val, "%g", &v); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if _, dup := samples[name]; dup {
			t.Fatalf("duplicate sample %q", name)
		}
		samples[name] = v
	}
	return samples
}

func TestMetricWriterExposition(t *testing.T) {
	var sb strings.Builder
	mw := NewMetricWriter(&sb)
	mw.Counter("pops_requests_total", "Total requests.")
	mw.Value("", 42)
	mw.Gauge("pops_shards", "Live shards.")
	mw.Value(Labels("d", "4", "g", "8"), 3)

	var h Histogram
	h.Observe(time.Microsecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(time.Hour)
	mw.HistogramFamily("pops_latency_seconds", "Request latency.")
	mw.Histogram(Labels("strategy", "pops"), h.Snapshot(), h.Sum())
	if err := mw.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}

	text := sb.String()
	for _, want := range []string{
		"# HELP pops_requests_total Total requests.",
		"# TYPE pops_requests_total counter",
		"# TYPE pops_shards gauge",
		"# TYPE pops_latency_seconds histogram",
		`pops_shards{d="4",g="8"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in output:\n%s", want, text)
		}
	}
	samples := parsePromText(t, text)

	// Bucket counts must be cumulative and monotone, with +Inf == _count.
	var prev float64
	for i := 0; i < BucketCount-1; i++ {
		le := float64(uint64(1)<<i) / 1e6
		key := fmt.Sprintf(`pops_latency_seconds_bucket{strategy="pops",le="%s"}`,
			formatFloat(le))
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %q\n%s", key, text)
		}
		if v < prev {
			t.Errorf("bucket le=%g not cumulative: %g < %g", le, v, prev)
		}
		prev = v
	}
	inf := samples[`pops_latency_seconds_bucket{strategy="pops",le="+Inf"}`]
	count := samples[`pops_latency_seconds_count{strategy="pops"}`]
	if inf != 3 || count != 3 {
		t.Errorf("+Inf bucket = %g, _count = %g, want both 3", inf, count)
	}
	sum := samples[`pops_latency_seconds_sum{strategy="pops"}`]
	if math.Abs(sum-h.Sum().Seconds()) > 1e-9 {
		t.Errorf("_sum = %g, want %g", sum, h.Sum().Seconds())
	}
}

func TestLabelsEscaping(t *testing.T) {
	got := Labels("backend", `http://x:1/"quoted"\path`+"\n")
	want := `backend="http://x:1/\"quoted\"\\path\n"`
	if got != want {
		t.Errorf("Labels = %s, want %s", got, want)
	}
}

func TestRegistryServeHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Register(func(mw *MetricWriter) {
		mw.Counter("pops_test_total", "A test counter.")
		mw.Value("", 1)
	})
	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
	}
	if !strings.Contains(rec.Body.String(), "pops_test_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Errorf("POST /metrics = %d, want 405", rec.Code)
	}
}
