package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ewmaAlpha is the smoothing factor of the plan-time EWMA. 0.2 converges on
// a level shift in ~10 observations while riding out single-plan jitter —
// responsive enough for the online Auto cost model to track hardware drift.
const ewmaAlpha = 0.2

type planKey struct {
	d, g     int
	strategy string
}

type planStat struct {
	count atomic.Uint64 // plans actually computed (cache misses)
	hits  atomic.Uint64 // plan-cache hits for this key
	ewma  atomic.Uint64 // math.Float64bits of the EWMA in nanoseconds
	hist  Histogram
}

// PlanTimes is the per-(d, g, strategy) table of measured planning time —
// the data source the learned Auto cost model consumes (see ROADMAP). Each
// key keeps an EWMA, a power-of-two histogram, and a cache-hit counter.
// Observe takes only an RLock and allocates nothing once a key exists; new
// keys appear at most once per (shape, strategy) pair for the process
// lifetime.
type PlanTimes struct {
	mu sync.RWMutex
	m  map[planKey]*planStat
}

// NewPlanTimes builds an empty table.
func NewPlanTimes() *PlanTimes {
	return &PlanTimes{m: make(map[planKey]*planStat)}
}

// Observe records one planning outcome for (d, g, strategy). Cache hits only
// bump the hit counter — the EWMA and histogram measure actual planning
// work, which is what a cost model must predict.
func (pt *PlanTimes) Observe(d, g int, strategy string, cached bool, dur time.Duration) {
	if pt == nil {
		return
	}
	k := planKey{d: d, g: g, strategy: strategy}
	pt.mu.RLock()
	st := pt.m[k]
	pt.mu.RUnlock()
	if st == nil {
		pt.mu.Lock()
		if st = pt.m[k]; st == nil {
			st = new(planStat)
			pt.m[k] = st
		}
		pt.mu.Unlock()
	}
	if cached {
		st.hits.Add(1)
		return
	}
	st.count.Add(1)
	st.hist.Observe(dur)
	x := float64(dur)
	for {
		old := st.ewma.Load()
		var next float64
		if old == 0 {
			next = x // first observation seeds the average
		} else {
			next = ewmaAlpha*x + (1-ewmaAlpha)*math.Float64frombits(old)
		}
		// Float64bits(next) is never 0 for dur > 0, so 0 stays "unset".
		if st.ewma.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// EWMA returns the current smoothed plan time for a key, or 0 if the key has
// never observed an actual plan.
func (pt *PlanTimes) EWMA(d, g int, strategy string) time.Duration {
	if pt == nil {
		return 0
	}
	pt.mu.RLock()
	st := pt.m[planKey{d: d, g: g, strategy: strategy}]
	pt.mu.RUnlock()
	if st == nil {
		return 0
	}
	bits := st.ewma.Load()
	if bits == 0 {
		return 0
	}
	return time.Duration(math.Float64frombits(bits))
}

// PlanTimeStat is one key's snapshot, exposed in /stats (wire.PlanTimeStat
// aliases this type) and rendered as labeled series on /metrics.
type PlanTimeStat struct {
	D        int    `json:"d"`
	G        int    `json:"g"`
	Strategy string `json:"strategy"`
	// Count is the number of plans actually computed; CacheHits the number
	// answered from the fingerprint plan cache instead.
	Count     uint64 `json:"count"`
	CacheHits uint64 `json:"cache_hits,omitempty"`
	// EWMAMicros is the smoothed plan time in microseconds; SumMicros the
	// total plan time across Count plans (the histogram's _sum on /metrics).
	EWMAMicros float64  `json:"ewma_us"`
	SumMicros  float64  `json:"sum_us,omitempty"`
	Buckets    []Bucket `json:"buckets"`
}

// Snapshot renders every key, sorted by (d, g, strategy) for stable output.
func (pt *PlanTimes) Snapshot() []PlanTimeStat {
	if pt == nil {
		return nil
	}
	pt.mu.RLock()
	keys := make([]planKey, 0, len(pt.m))
	stats := make([]*planStat, 0, len(pt.m))
	for k, st := range pt.m {
		keys = append(keys, k)
		stats = append(stats, st)
	}
	pt.mu.RUnlock()
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		if ka.d != kb.d {
			return ka.d < kb.d
		}
		if ka.g != kb.g {
			return ka.g < kb.g
		}
		return ka.strategy < kb.strategy
	})
	out := make([]PlanTimeStat, 0, len(order))
	for _, i := range order {
		k, st := keys[i], stats[i]
		var ewmaUS float64
		if bits := st.ewma.Load(); bits != 0 {
			ewmaUS = math.Float64frombits(bits) / float64(time.Microsecond)
		}
		out = append(out, PlanTimeStat{
			D: k.d, G: k.g, Strategy: k.strategy,
			Count:      st.count.Load(),
			CacheHits:  st.hits.Load(),
			EWMAMicros: ewmaUS,
			SumMicros:  float64(st.hist.Sum()) / float64(time.Microsecond),
			Buckets:    st.hist.Snapshot(),
		})
	}
	return out
}
