package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// PromContentType is the Prometheus text exposition content type both
// binaries answer GET /metrics with.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricWriter renders metric families in Prometheus text exposition format
// (version 0.0.4). Usage: open a family with Counter/Gauge/HistogramFamily —
// which emits the # HELP and # TYPE header lines once — then emit one sample
// per label set. Errors are sticky and surfaced by Err, so collectors can
// write unconditionally.
type MetricWriter struct {
	w    io.Writer
	name string
	err  error
}

// NewMetricWriter wraps w.
func NewMetricWriter(w io.Writer) *MetricWriter { return &MetricWriter{w: w} }

// Err returns the first write error, if any.
func (mw *MetricWriter) Err() error { return mw.err }

func (mw *MetricWriter) printf(format string, args ...any) {
	if mw.err != nil {
		return
	}
	_, mw.err = fmt.Fprintf(mw.w, format, args...)
}

func (mw *MetricWriter) family(name, typ, help string) {
	mw.name = name
	mw.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Counter opens a counter family.
func (mw *MetricWriter) Counter(name, help string) { mw.family(name, "counter", help) }

// Gauge opens a gauge family.
func (mw *MetricWriter) Gauge(name, help string) { mw.family(name, "gauge", help) }

// HistogramFamily opens a histogram family; emit samples with Histogram.
func (mw *MetricWriter) HistogramFamily(name, help string) { mw.family(name, "histogram", help) }

// Value emits one sample of the open family. labels is a pre-rendered
// `k="v",k="v"` list (see Labels) or "" for an unlabeled sample.
func (mw *MetricWriter) Value(labels string, v float64) {
	if labels == "" {
		mw.printf("%s %s\n", mw.name, formatFloat(v))
		return
	}
	mw.printf("%s{%s} %s\n", mw.name, labels, formatFloat(v))
}

// Histogram emits one histogram sample of the open family from a bucket
// snapshot: cumulative `_bucket` series with `le` in seconds (the power-of-
// two microsecond bounds converted, the unbounded bucket as +Inf), then
// `_sum` and `_count`.
func (mw *MetricWriter) Histogram(labels string, buckets []Bucket, sum time.Duration) {
	var cum uint64
	for _, b := range buckets {
		cum += b.Count
		le := "+Inf"
		if b.LEMicros != 0 {
			le = formatFloat(float64(b.LEMicros) / 1e6)
		}
		sep := ""
		if labels != "" {
			sep = ","
		}
		mw.printf("%s_bucket{%s%sle=\"%s\"} %d\n", mw.name, labels, sep, le, cum)
	}
	if labels == "" {
		mw.printf("%s_sum %s\n%s_count %d\n", mw.name, formatFloat(sum.Seconds()), mw.name, cum)
		return
	}
	mw.printf("%s_sum{%s} %s\n%s_count{%s} %d\n", mw.name, labels, formatFloat(sum.Seconds()), mw.name, labels, cum)
}

// Labels renders a label list from alternating key/value pairs, escaping
// values per the exposition format.
func Labels(kv ...string) string {
	var sb strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(kv[i+1]))
		sb.WriteByte('"')
	}
	return sb.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// Registry is the process's metrics registry: named collectors that render
// their families on every scrape (expvar-style — metrics are read from the
// live counters at scrape time, never double-tracked). It is an
// http.Handler serving GET /metrics.
type Registry struct {
	mu         sync.Mutex
	collectors []func(*MetricWriter)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a collector. Collectors run in registration order on
// every scrape; each must emit complete families (header plus samples).
func (r *Registry) Register(collect func(*MetricWriter)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, collect)
	r.mu.Unlock()
}

// Render writes every registered collector to w.
func (r *Registry) Render(w io.Writer) error {
	mw := NewMetricWriter(w)
	r.mu.Lock()
	collectors := append([]func(*MetricWriter){}, r.collectors...)
	r.mu.Unlock()
	for _, c := range collectors {
		c(mw)
	}
	return mw.Err()
}

// ServeHTTP answers GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", PromContentType)
	_ = r.Render(w)
}
