// Package obs is the observability substrate of the serving stack: a
// zero-alloc-on-hot-path phase tracer, request-ID generation, a lock-free
// slowest-requests ring buffer, per-(d, g, strategy) plan-time statistics,
// and Prometheus text exposition — the measurement layer behind popsserved's
// and popsproxy's GET /metrics, GET /debug/slow, and the plan-time EWMAs in
// GET /stats that the learned Auto cost model consumes.
//
// The unit of tracing is the Span: one request's identity (request ID,
// shape, strategy, workload) plus a fixed-size table of per-phase durations.
// Spans are carried through context.Context (ContextWithSpan /
// SpanFromContext) so the planning layers can attribute time to phases
// without new parameters on every call; every Span method is nil-safe, so
// untraced paths pay one nil check and nothing else. Recording a phase
// performs no allocation and takes no lock — the budget is pinned by
// TestSpanAllocBudget under make alloc-guard.
package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// Phase is one stage of a request's lifecycle. The taxonomy is fixed and
// shared by popsserved and popsproxy, so phase breakdowns from both sides of
// a proxied request line up under one request ID.
type Phase uint8

const (
	// PhaseQueue is the admission-queue wait: from admission until the
	// micro-batch holding the request was flushed onto the planner.
	PhaseQueue Phase = iota
	// PhaseCache is the fingerprint plan-cache lookup (and, on a miss, the
	// memoization of the freshly planned result).
	PhaseCache
	// PhaseFactorize is planning proper: demand-graph build, balanced edge
	// coloring, and schedule assembly.
	PhaseFactorize
	// PhaseFaultRepair is the fault-plan repair pass of faulty-permutation
	// workloads (slack moves, Kempe recoloring, overflow rounds).
	PhaseFaultRepair
	// PhaseVerify is the simulator replay of a finished schedule under
	// WithVerify.
	PhaseVerify
	// PhaseForward is the proxy-side backend round trip (popsproxy only).
	PhaseForward
	// PhaseEncode is response encoding and flushing on the wire.
	PhaseEncode

	// NumPhases sizes per-phase tables.
	NumPhases = int(PhaseEncode) + 1
)

var phaseNames = [NumPhases]string{
	"queue", "cache", "factorize", "fault_repair", "verify", "forward", "encode",
}

// String returns the phase's wire name ("queue", "cache", ...).
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Span is one request's trace: identity plus per-phase durations. A Span is
// owned by one request and written from at most one goroutine at a time
// (hand-offs between the admission, planning, and encoding goroutines are
// ordered by the channels that carry the request). All methods are nil-safe:
// a nil *Span records nothing, so untraced call paths need no branching at
// the call sites.
type Span struct {
	ID       string // request ID (X-Request-Id)
	Backend  string // backend identity a proxy placed the request on
	D, G     int    // POPS shape
	Strategy string // resolved routing strategy
	Workload string // workload kind tag ("" = permutation)
	Cached   bool   // answered from the fingerprint plan cache

	start  time.Time
	mark   time.Time
	cur    Phase
	active bool
	total  time.Duration
	phase  [NumPhases]time.Duration
}

// Begin opens phase p, implicitly ending any phase still open. Phases do not
// nest: the taxonomy is a partition of the request's wall clock.
func (sp *Span) Begin(p Phase) {
	if sp == nil {
		return
	}
	if sp.active {
		sp.End()
	}
	sp.cur = p
	sp.active = true
	sp.mark = time.Now()
}

// End closes the currently open phase, accumulating its elapsed time. A
// no-op when no phase is open.
func (sp *Span) End() {
	if sp == nil || !sp.active {
		return
	}
	sp.phase[sp.cur] += time.Since(sp.mark)
	sp.active = false
}

// Add accumulates d into phase p directly, for callers that measured the
// interval themselves.
func (sp *Span) Add(p Phase, d time.Duration) {
	if sp == nil || d <= 0 {
		return
	}
	sp.phase[p] += d
}

// Finish closes any open phase and fixes the span's total latency. It is
// idempotent in the sense that the total is measured from the span's start;
// call it once, when the request is done.
func (sp *Span) Finish() time.Duration {
	if sp == nil {
		return 0
	}
	sp.End()
	sp.total = time.Since(sp.start)
	return sp.total
}

// Total returns the total latency fixed by Finish.
func (sp *Span) Total() time.Duration {
	if sp == nil {
		return 0
	}
	return sp.total
}

// Phase returns the accumulated duration of phase p.
func (sp *Span) Phase(p Phase) time.Duration {
	if sp == nil {
		return 0
	}
	return sp.phase[p]
}

// PhaseTotal returns the sum of all phase durations — the traced fraction of
// Total. The acceptance gap between the two is what the tracer does not see
// (request decode, channel hand-offs).
func (sp *Span) PhaseTotal() time.Duration {
	if sp == nil {
		return 0
	}
	var sum time.Duration
	for _, d := range sp.phase {
		sum += d
	}
	return sum
}

func (sp *Span) reset(id string, d, g int) {
	*sp = Span{ID: id, D: d, G: g, start: time.Now()}
}

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sp, for the planning layers to
// attribute phase time to. A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil. The nil result
// composes with the nil-safe Span methods: callers record unconditionally.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// Tracer owns a process's tracing state: a span pool (so steady-state
// request tracing allocates nothing), the slowest-requests ring, and the
// per-(d, g, strategy) plan-time table.
type Tracer struct {
	pool sync.Pool
	Slow *SlowRing
	Plan *PlanTimes
}

// NewTracer builds a Tracer whose slow ring keeps the slowest slowCap
// requests (slowCap <= 0 selects 64).
func NewTracer(slowCap int) *Tracer {
	if slowCap <= 0 {
		slowCap = 64
	}
	t := &Tracer{Slow: NewSlowRing(slowCap), Plan: NewPlanTimes()}
	t.pool.New = func() any { return new(Span) }
	return t
}

// Start checks a span out of the pool for one request, stamped with its ID
// and shape.
func (t *Tracer) Start(id string, d, g int) *Span {
	sp := t.pool.Get().(*Span)
	sp.reset(id, d, g)
	return sp
}

// Finish completes sp, offers it to the slow ring, returns it to the pool,
// and reports the request's total latency. The caller must not touch sp
// afterwards.
func (t *Tracer) Finish(sp *Span) time.Duration {
	total := sp.Finish()
	t.Slow.Record(sp)
	t.pool.Put(sp)
	return total
}

// Abandon releases a span whose request failed before its result arrived.
// Unlike Finish it must not touch the span's phase state or recycle it: an
// in-flight worker the request stopped waiting for (a cancelled wait on a
// queued micro-batch entry) may still be recording phases. The span is
// leaked to the garbage collector, which the worker's late writes land in
// harmlessly; only the immutable start time is read for the elapsed total.
func (t *Tracer) Abandon(sp *Span) time.Duration {
	if sp == nil {
		return 0
	}
	return time.Since(sp.start)
}

// reqIDSeed mixes a per-process random seed into the request-ID sequence so
// IDs from different nodes do not collide.
var reqIDSeed = func() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}()

var reqIDSeq atomic.Uint64

// NewRequestID returns a 16-hex-character request ID, unique within the
// process and collision-resistant across nodes (a splitmix64 of a random
// per-process seed and an atomic sequence). It is what the servers assign
// when the client did not supply an X-Request-Id of its own.
func NewRequestID() string {
	x := reqIDSeed + reqIDSeq.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	const hex = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hex[x&0xf]
		x >>= 4
	}
	return string(buf[:])
}
