package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// SlowRing keeps the slowest requests seen so far: a fixed set of slots,
// each holding an immutable snapshot behind an atomic pointer, with an
// atomic floor (the smallest retained total) for fast rejection. The common
// case — a request faster than everything retained — costs one atomic load
// and no allocation; only a request slow enough to enter the ring builds a
// snapshot. Writers never block readers and vice versa. Under concurrent
// insertion the ring is deliberately lossy (two racing writers may evict
// each other's victim choice); it is a monitoring aid, not a ledger.
type SlowRing struct {
	slots []atomic.Pointer[SpanSnapshot]
	floor atomic.Int64 // smallest retained total (ns) once the ring is full
	full  atomic.Bool
}

// NewSlowRing builds a ring retaining the slowest n requests (n <= 0
// selects 64).
func NewSlowRing(n int) *SlowRing {
	if n <= 0 {
		n = 64
	}
	return &SlowRing{slots: make([]atomic.Pointer[SpanSnapshot], n)}
}

// Record offers a finished span to the ring. The span must not be mutated
// during the call, and may be reused afterwards: the ring stores a snapshot.
func (r *SlowRing) Record(sp *Span) {
	if r == nil || sp == nil || len(r.slots) == 0 {
		return
	}
	total := int64(sp.total)
	if r.full.Load() && total <= r.floor.Load() {
		return // fast path: not among the slowest — one atomic load, no alloc
	}
	// Pick a victim: an empty slot, else the slot with the smallest total.
	victim := -1
	var victimTotal int64 = -1
	var old *SpanSnapshot
	for i := range r.slots {
		cur := r.slots[i].Load()
		if cur == nil {
			victim, old = i, nil
			victimTotal = -1
			break
		}
		t := int64(cur.TotalMicros * float64(time.Microsecond))
		if victimTotal < 0 || t < victimTotal {
			victim, old, victimTotal = i, cur, t
		}
	}
	if victim < 0 || (old != nil && total <= victimTotal) {
		return
	}
	snap := sp.Snapshot()
	if !r.slots[victim].CompareAndSwap(old, &snap) {
		return // lost a race with another writer; drop (lossy by design)
	}
	r.recompute()
}

// recompute refreshes the floor and fullness after an insertion. Racy reads
// are fine: the floor is a heuristic gate, and Record double-checks against
// the actual victim before replacing it.
func (r *SlowRing) recompute() {
	var minTotal int64 = -1
	for i := range r.slots {
		cur := r.slots[i].Load()
		if cur == nil {
			r.full.Store(false)
			return
		}
		t := int64(cur.TotalMicros * float64(time.Microsecond))
		if minTotal < 0 || t < minTotal {
			minTotal = t
		}
	}
	r.floor.Store(minTotal)
	r.full.Store(true)
}

// Snapshot returns up to limit retained requests, slowest first (limit <= 0
// returns all).
func (r *SlowRing) Snapshot(limit int) []SpanSnapshot {
	if r == nil {
		return nil
	}
	out := make([]SpanSnapshot, 0, len(r.slots))
	for i := range r.slots {
		if cur := r.slots[i].Load(); cur != nil {
			out = append(out, *cur)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].TotalMicros > out[b].TotalMicros })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// PhaseBreakdown is one phase's share of a retained request.
type PhaseBreakdown struct {
	Phase  string  `json:"phase"`
	Micros float64 `json:"us"`
}

// SpanSnapshot is the immutable, wire-ready form of a finished span, served
// by GET /debug/slow (wire.SlowRequest aliases this type). Phases lists only
// the phases that recorded time, in taxonomy order.
type SpanSnapshot struct {
	ID            string           `json:"id"`
	Backend       string           `json:"backend,omitempty"`
	D             int              `json:"d"`
	G             int              `json:"g"`
	Strategy      string           `json:"strategy,omitempty"`
	Workload      string           `json:"workload,omitempty"`
	Cached        bool             `json:"cached,omitempty"`
	StartUnixNano int64            `json:"start_unix_nano"`
	TotalMicros   float64          `json:"total_us"`
	PhaseMicros   float64          `json:"phase_total_us"`
	Phases        []PhaseBreakdown `json:"phases"`
}

// Snapshot renders the span for retention or serving. Call only after
// Finish.
func (sp *Span) Snapshot() SpanSnapshot {
	snap := SpanSnapshot{
		ID: sp.ID, Backend: sp.Backend, D: sp.D, G: sp.G,
		Strategy: sp.Strategy, Workload: sp.Workload, Cached: sp.Cached,
		StartUnixNano: sp.start.UnixNano(),
		TotalMicros:   float64(sp.total) / float64(time.Microsecond),
		PhaseMicros:   float64(sp.PhaseTotal()) / float64(time.Microsecond),
	}
	for p, d := range sp.phase {
		if d > 0 {
			snap.Phases = append(snap.Phases, PhaseBreakdown{
				Phase:  Phase(p).String(),
				Micros: float64(d) / float64(time.Microsecond),
			})
		}
	}
	return snap
}
