package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// BucketCount is the number of power-of-two latency buckets: 1µs, 2µs, ...,
// up to 2^18µs (~262ms), plus one unbounded overflow bucket.
const BucketCount = 20

// Bucket is one bucket of a latency histogram: Count observations completed
// in at most LEMicros microseconds (and more than the previous bucket's
// bound). The final bucket has LEMicros == 0, meaning "no upper bound".
// wire.LatencyBucket aliases this type, so histogram snapshots travel on the
// /stats schema unchanged.
type Bucket struct {
	LEMicros uint64 `json:"le_us"`
	Count    uint64 `json:"count"`
}

// Histogram is a fixed-shape power-of-two latency histogram: bucket i counts
// observations in (2^(i-1)µs, 2^iµs], the last bucket is unbounded, and a
// running sum of observed time rides along for Prometheus's _sum series.
// Observe is lock-free and allocation-free.
type Histogram struct {
	counts [BucketCount]atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := uint64(d.Microseconds())
	// bits.Len64(us-1) is ceil(log2(us)) for us >= 1: the index of the first
	// bucket whose bound is >= us. us <= 1 (including the us == 0 underflow
	// of the uint subtraction) lands in bucket 0.
	idx := 0
	if us > 1 {
		idx = bits.Len64(us - 1)
	}
	if idx >= BucketCount {
		idx = BucketCount - 1
	}
	h.counts[idx].Add(1)
	h.sum.Add(int64(d))
}

// Snapshot renders the histogram as wire buckets. The slice is freshly
// allocated; concurrent Observes may or may not be included.
func (h *Histogram) Snapshot() []Bucket {
	out := make([]Bucket, BucketCount)
	for i := range out {
		le := uint64(1) << i
		if i == BucketCount-1 {
			le = 0 // unbounded overflow bucket
		}
		out[i] = Bucket{LEMicros: le, Count: h.counts[i].Load()}
	}
	return out
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}
