package matching

import (
	"fmt"

	"pops/internal/graph"
)

// PerfectMatchingRegular finds a perfect matching in a k-regular bipartite
// multigraph with n nodes per side in O(m·log(nk)) time, using the
// Euler-halving scheme of Alon ("A simple algorithm for edge-coloring
// bipartite multigraphs"). This is the fast-matching engine underlying the
// near-linear 1-factorization algorithms (Kapoor–Rizzi, Rizzi) cited in
// Remark 1 of the paper.
//
// The idea: pad the graph to 2^t-regular by taking α parallel copies of
// every edge plus β copies of a dummy diagonal matching, where
// α = ⌊2^t/k⌋ and β = 2^t − α·k, with 2^t ≥ n·k so that β·n < 2^t. Then
// halve t times with Euler splits, always keeping the half containing fewer
// dummy edges; the dummy count at least halves each round, so the final
// 1-regular graph is a perfect matching made entirely of real edges.
// Parallel copies are represented implicitly by multiplicity counters, so
// each halving costs O(#distinct pairs + n), not O(2^t·n).
//
// It returns the matched edge IDs of b, or an error if b is not regular or
// has unequal sides. It is the convenience form of
// Matcher.PerfectMatchingRegularInto with a throwaway arena; repeated
// callers (the edge-coloring Factorizer) hold a Matcher instead and stay
// allocation-free.
func PerfectMatchingRegular(b *graph.Bipartite) ([]int, error) {
	n := b.NLeft()
	if n != b.NRight() {
		return nil, fmt.Errorf("matching: sides differ (%d vs %d)", n, b.NRight())
	}
	if n == 0 {
		return nil, nil
	}
	k, ok := b.RegularDegree()
	if !ok {
		return nil, graph.ErrNotBipartiteRegular
	}
	var m Matcher
	out := make([]int, n)
	outN, err := m.PerfectMatchingRegularInto(n, k, b.EdgeList(), out)
	if err != nil {
		return nil, err
	}
	return out[:outN], nil
}
