package matching

import (
	"fmt"
	"sort"

	"pops/internal/graph"
)

// dEntry is one distinct (left, right) pair of the implicit multiplicity
// representation used by PerfectMatchingRegular. Dummy entries belong to the
// padding diagonal, not to the input graph.
type dEntry struct {
	l, r  int
	dummy bool
}

// PerfectMatchingRegular finds a perfect matching in a k-regular bipartite
// multigraph with n nodes per side in O(m·log(nk)) time, using the
// Euler-halving scheme of Alon ("A simple algorithm for edge-coloring
// bipartite multigraphs"). This is the fast-matching engine underlying the
// near-linear 1-factorization algorithms (Kapoor–Rizzi, Rizzi) cited in
// Remark 1 of the paper.
//
// The idea: pad the graph to 2^t-regular by taking α parallel copies of
// every edge plus β copies of a dummy diagonal matching, where
// α = ⌊2^t/k⌋ and β = 2^t − α·k, with 2^t ≥ n·k so that β·n < 2^t. Then
// halve t times with Euler splits, always keeping the half containing fewer
// dummy edges; the dummy count at least halves each round, so the final
// 1-regular graph is a perfect matching made entirely of real edges.
// Parallel copies are represented implicitly by multiplicity counters, so
// each halving costs O(#distinct pairs + n), not O(2^t·n).
//
// It returns the matched edge IDs of b, or an error if b is not regular or
// has unequal sides.
func PerfectMatchingRegular(b *graph.Bipartite) ([]int, error) {
	n := b.NLeft()
	if n != b.NRight() {
		return nil, fmt.Errorf("matching: sides differ (%d vs %d)", n, b.NRight())
	}
	if n == 0 {
		return nil, nil
	}
	k, ok := b.RegularDegree()
	if !ok {
		return nil, graph.ErrNotBipartiteRegular
	}
	if k == 0 {
		return nil, fmt.Errorf("matching: 0-regular graph has no perfect matching")
	}
	if k == 1 {
		out := make([]int, 0, n)
		for l := 0; l < n; l++ {
			out = append(out, b.AdjL(l)[0])
		}
		return out, nil
	}

	// Index real edges by node pair so the abstract matching found on
	// multiplicity counters can be mapped back to concrete edge IDs.
	pairEdges := make(map[[2]int][]int)
	for id := 0; id < b.NumEdges(); id++ {
		e := b.Edge(id)
		key := [2]int{e.L, e.R}
		pairEdges[key] = append(pairEdges[key], id)
	}

	// Choose t with 2^t >= n*k, so beta*n <= (k-1)*n < 2^t.
	t := 0
	for (1 << t) < n*k {
		t++
	}
	pow := 1 << t
	alpha := pow / k
	beta := pow - alpha*k

	cur := make(map[dEntry]int, len(pairEdges)+n)
	for key, ids := range pairEdges {
		cur[dEntry{key[0], key[1], false}] = alpha * len(ids)
	}
	if beta > 0 {
		for i := 0; i < n; i++ {
			cur[dEntry{i, i, true}] += beta
		}
	}

	for step := 0; step < t; step++ {
		halfA := make(map[dEntry]int, len(cur))
		halfB := make(map[dEntry]int, len(cur))
		// Whole parallel pairs split evenly without touching the Euler tour;
		// odd leftovers (at most one per distinct entry) form an all-even-
		// degree leftover graph that EulerSplit partitions exactly.
		leftEntries := make([]dEntry, 0, len(cur))
		for en, c := range cur {
			if c/2 > 0 {
				halfA[en] = c / 2
				halfB[en] = c / 2
			}
			if c%2 == 1 {
				leftEntries = append(leftEntries, en)
			}
		}
		// Deterministic edge order regardless of map iteration order.
		sort.Slice(leftEntries, func(i, j int) bool {
			a, b := leftEntries[i], leftEntries[j]
			if a.l != b.l {
				return a.l < b.l
			}
			if a.r != b.r {
				return a.r < b.r
			}
			return !a.dummy && b.dummy
		})
		leftover := graph.New(n, n)
		for _, en := range leftEntries {
			leftover.AddEdge(en.l, en.r)
		}
		a, bb, err := graph.EulerSplit(leftover)
		if err != nil {
			return nil, fmt.Errorf("matching: internal halving failure: %w", err)
		}
		for _, id := range a {
			halfA[leftEntries[id]]++
		}
		for _, id := range bb {
			halfB[leftEntries[id]]++
		}
		if dummyCount(halfA) <= dummyCount(halfB) {
			cur = halfA
		} else {
			cur = halfB
		}
	}

	if d := dummyCount(cur); d != 0 {
		return nil, fmt.Errorf("matching: internal error: %d dummy edges survived halving", d)
	}
	// cur is 1-regular: exactly one real entry per left node, count 1 each.
	out := make([]int, 0, n)
	usedPerPair := make(map[[2]int]int, n)
	for en, c := range cur {
		for i := 0; i < c; i++ {
			key := [2]int{en.l, en.r}
			idx := usedPerPair[key]
			ids := pairEdges[key]
			if idx >= len(ids) {
				return nil, fmt.Errorf("matching: internal error: pair (%d,%d) overused", en.l, en.r)
			}
			usedPerPair[key] = idx + 1
			out = append(out, ids[idx])
		}
	}
	if err := VerifyMatching(b, out, true); err != nil {
		return nil, fmt.Errorf("matching: internal error: %w", err)
	}
	return out, nil
}

func dummyCount(m map[dEntry]int) int {
	total := 0
	for en, c := range m {
		if en.dummy {
			total += c
		}
	}
	return total
}
