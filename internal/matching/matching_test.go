package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pops/internal/graph"
)

func randomRegular(n, k int, rng *rand.Rand) *graph.Bipartite {
	b := graph.New(n, n)
	for j := 0; j < k; j++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			b.AddEdge(i, perm[i])
		}
	}
	return b
}

func TestKuhnPerfectOnRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, k int }{{1, 1}, {2, 1}, {4, 3}, {8, 5}, {16, 4}, {7, 7}} {
		b := randomRegular(tc.n, tc.k, rng)
		m := Kuhn(b)
		if err := VerifyMatching(b, m, true); err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
	}
}

func TestHopcroftKarpPerfectOnRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, tc := range []struct{ n, k int }{{1, 1}, {2, 2}, {4, 3}, {8, 5}, {32, 6}, {9, 3}} {
		b := randomRegular(tc.n, tc.k, rng)
		m := HopcroftKarp(b)
		if err := VerifyMatching(b, m, true); err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
	}
}

func TestMaximumMatchingNonPerfect(t *testing.T) {
	// A path: L0-R0, L1-R0, L1-R1, L2-R1. Max matching = 2.
	b := graph.New(3, 2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(1, 1)
	b.AddEdge(2, 1)
	if got := len(Kuhn(b)); got != 2 {
		t.Fatalf("Kuhn size = %d, want 2", got)
	}
	if got := len(HopcroftKarp(b)); got != 2 {
		t.Fatalf("HopcroftKarp size = %d, want 2", got)
	}
}

func TestMatchingEmptyGraph(t *testing.T) {
	b := graph.New(4, 4)
	if got := len(Kuhn(b)); got != 0 {
		t.Fatalf("Kuhn on empty graph = %d edges", got)
	}
	if got := len(HopcroftKarp(b)); got != 0 {
		t.Fatalf("HopcroftKarp on empty graph = %d edges", got)
	}
}

func TestKuhnEqualsHopcroftKarpSize(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(20) + 1
		m := rng.Intn(4 * n)
		b := graph.New(n, n)
		for e := 0; e < m; e++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		k, h := Kuhn(b), HopcroftKarp(b)
		if len(k) != len(h) {
			t.Fatalf("trial %d: Kuhn=%d HopcroftKarp=%d", trial, len(k), len(h))
		}
		if err := VerifyMatching(b, k, false); err != nil {
			t.Fatalf("Kuhn invalid: %v", err)
		}
		if err := VerifyMatching(b, h, false); err != nil {
			t.Fatalf("HopcroftKarp invalid: %v", err)
		}
	}
}

func TestPerfectMatchingRegularBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {1, 3}, {2, 2}, {3, 3}, {4, 2}, {8, 5}, {16, 7}, {32, 3}, {9, 6},
	} {
		b := randomRegular(tc.n, tc.k, rng)
		m, err := PerfectMatchingRegular(b)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if err := VerifyMatching(b, m, true); err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
	}
}

func TestPerfectMatchingRegularWithParallelEdges(t *testing.T) {
	// All d packets from group h to group (h+1) mod g: a d-regular multigraph
	// made of d parallel copies of one permutation — the adversarial demand
	// graph of the routing problem.
	for _, d := range []int{2, 3, 8} {
		g := 4
		b := graph.New(g, g)
		for c := 0; c < d; c++ {
			for h := 0; h < g; h++ {
				b.AddEdge(h, (h+1)%g)
			}
		}
		m, err := PerfectMatchingRegular(b)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if err := VerifyMatching(b, m, true); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestPerfectMatchingRegularRejectsIrregular(t *testing.T) {
	b := graph.New(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	if _, err := PerfectMatchingRegular(b); err == nil {
		t.Fatal("irregular graph accepted")
	}
}

func TestPerfectMatchingRegularRejectsUnequalSides(t *testing.T) {
	b := graph.New(2, 3)
	if _, err := PerfectMatchingRegular(b); err == nil {
		t.Fatal("unequal sides accepted")
	}
}

func TestPerfectMatchingRegularRejectsZeroRegular(t *testing.T) {
	b := graph.New(3, 3)
	if _, err := PerfectMatchingRegular(b); err == nil {
		t.Fatal("0-regular graph accepted")
	}
}

func TestPerfectMatchingRegularDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := randomRegular(12, 5, rng)
	m1, err := PerfectMatchingRegular(b)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := PerfectMatchingRegular(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != len(m2) {
		t.Fatalf("non-deterministic sizes %d vs %d", len(m1), len(m2))
	}
	set := make(map[int]bool)
	for _, id := range m1 {
		set[id] = true
	}
	for _, id := range m2 {
		if !set[id] {
			t.Fatalf("runs differ: edge %d only in second run", id)
		}
	}
}

func TestPerfectMatchingRegularProperty(t *testing.T) {
	f := func(nSeed, kSeed uint8, seed int64) bool {
		n := int(nSeed)%24 + 1
		k := int(kSeed)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		b := randomRegular(n, k, rng)
		m, err := PerfectMatchingRegular(b)
		if err != nil {
			return false
		}
		return VerifyMatching(b, m, true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMatchingCatchesViolations(t *testing.T) {
	b := graph.New(2, 2)
	e0 := b.AddEdge(0, 0)
	e1 := b.AddEdge(0, 1)
	e2 := b.AddEdge(1, 0)

	if err := VerifyMatching(b, []int{e0, e1}, false); err == nil {
		t.Fatal("shared left endpoint accepted")
	}
	if err := VerifyMatching(b, []int{e0, e2}, false); err == nil {
		t.Fatal("shared right endpoint accepted")
	}
	if err := VerifyMatching(b, []int{99}, false); err == nil {
		t.Fatal("out-of-range edge ID accepted")
	}
	if err := VerifyMatching(b, []int{e0}, true); err == nil {
		t.Fatal("non-perfect matching accepted as perfect")
	}
	if err := VerifyMatching(b, []int{e0}, false); err != nil {
		t.Fatalf("valid matching rejected: %v", err)
	}
}

func BenchmarkHopcroftKarpRegular(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := randomRegular(256, 16, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := HopcroftKarp(g); len(m) != 256 {
			b.Fatalf("matching size %d", len(m))
		}
	}
}

func BenchmarkPerfectMatchingRegularAlon(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := randomRegular(256, 16, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PerfectMatchingRegular(g); err != nil {
			b.Fatal(err)
		}
	}
}
