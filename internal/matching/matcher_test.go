package matching

import (
	"math/rand"
	"testing"

	"pops/internal/graph"
)

func randomRegularM(n, k int, rng *rand.Rand) *graph.Bipartite {
	b := graph.New(n, n)
	for j := 0; j < k; j++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			b.AddEdge(i, perm[i])
		}
	}
	return b
}

// TestHopcroftKarpIntoViewMatchesSubgraph pins the view contract: running
// the arena matcher on a gathered edge view equals HopcroftKarp on the
// materialized subgraph.
func TestHopcroftKarpIntoViewMatchesSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var m Matcher
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(10) + 1
		k := rng.Intn(5) + 1
		b := randomRegularM(n, k, rng)
		// Random subset view.
		var ids []int
		for id := 0; id < b.NumEdges(); id++ {
			if rng.Intn(3) > 0 {
				ids = append(ids, id)
			}
		}
		sub, _ := b.SubgraphByEdges(ids)
		want := HopcroftKarp(sub)

		edges := make([]graph.Edge, len(ids))
		for i, id := range ids {
			edges[i] = b.Edge(id)
		}
		out := make([]int, n)
		got := m.HopcroftKarpInto(n, n, edges, out)
		if got != len(want) {
			t.Fatalf("trial %d: size %d, want %d", trial, got, len(want))
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("trial %d: out[%d] = %d, want %d", trial, i, out[i], want[i])
			}
		}
	}
}

// TestPerfectMatchingRegularIntoViewValid checks the arena matcher on views
// of regular graphs: the result must be a perfect matching, identical to
// the package wrapper on the materialized graph.
func TestPerfectMatchingRegularIntoViewValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var m Matcher
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(10) + 1
		k := rng.Intn(6) + 1
		b := randomRegularM(n, k, rng)
		want, err := PerfectMatchingRegular(b)
		if err != nil {
			t.Fatalf("trial %d: wrapper: %v", trial, err)
		}
		out := make([]int, n)
		outN, err := m.PerfectMatchingRegularInto(n, k, b.EdgeList(), out)
		if err != nil {
			t.Fatalf("trial %d: arena: %v", trial, err)
		}
		if outN != n || len(want) != n {
			t.Fatalf("trial %d: sizes %d/%d, want %d", trial, outN, len(want), n)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("trial %d: out[%d] = %d, want %d", trial, i, out[i], want[i])
			}
		}
		if err := VerifyMatching(b, out[:outN], true); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestPerfectMatchingRegularIntoRejectsIrregularView checks degree
// validation on raw views.
func TestPerfectMatchingRegularIntoRejectsIrregularView(t *testing.T) {
	var m Matcher
	edges := []graph.Edge{{L: 0, R: 0}, {L: 0, R: 1}, {L: 1, R: 1}}
	out := make([]int, 2)
	if _, err := m.PerfectMatchingRegularInto(2, 2, edges, out); err == nil {
		t.Fatal("irregular view accepted")
	}
}

// TestMatcherSteadyStateAllocFree guards the arena contract for both
// matching engines: a warmed Matcher performs no allocations.
func TestMatcherSteadyStateAllocFree(t *testing.T) {
	b := graph.Circulant(48, 7)
	edges := b.EdgeList()
	out := make([]int, 48)
	var m Matcher
	if n := m.HopcroftKarpInto(48, 48, edges, out); n != 48 { // warm up
		t.Fatalf("HK matched %d of 48", n)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if n := m.HopcroftKarpInto(48, 48, edges, out); n != 48 {
			t.Fatal("HK incomplete")
		}
	})
	if allocs > 0 {
		t.Errorf("warmed HopcroftKarpInto allocates %.1f/op, want 0", allocs)
	}
	if _, err := m.PerfectMatchingRegularInto(48, 7, edges, out); err != nil { // warm up
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(10, func() {
		if _, err := m.PerfectMatchingRegularInto(48, 7, edges, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warmed PerfectMatchingRegularInto allocates %.1f/op, want 0", allocs)
	}
}
