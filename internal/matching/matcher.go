package matching

import (
	"fmt"

	"pops/internal/graph"
	"pops/internal/simd/bitvec"
)

// Matcher is a reusable arena for the matching algorithms. All scratch —
// CSR adjacency over the input edge list, match tables, BFS queues, the
// multiplicity counters and Euler-split buffers of the Alon engine — lives
// in the Matcher and is recycled across calls, so steady-state matching is
// allocation-free. The zero value is ready to use. A Matcher is not safe
// for concurrent use; hold one per worker.
//
// The Into methods operate on a plain edge list (a *view*: the i-th edge of
// the instance is edges[i]) and write matched edge indices into a
// caller-provided buffer. This lets the edge-coloring Factorizer run
// matchings directly on index-range views of its arena without
// materializing subgraphs.
type Matcher struct {
	// Hopcroft–Karp scratch.
	offL, adjL     []int // CSR left adjacency over the view
	fill           []int // CSR fill cursors / misc per-node scratch
	matchL, matchR []int
	dist, queue    []int
	edges          []graph.Edge // current view, only valid during a call
	nL             int

	// Alon perfect-matching scratch.
	order, orderTmp []int // edge indices sorted by (L, R), stable
	bucket          []int // counting-sort buckets
	entL, entR      []int // distinct (L, R) entries, sorted, dummies merged
	entDummy        bitvec.Vec
	pairStart       []int // run start of a real entry's edges in order
	pairMult        []int // run length (multiplicity) of a real entry
	cnt             []int // current parallel-copy count per entry
	levEdges        []graph.Edge
	levMap          []int // leftover index -> entry index
	levA, levB      []int
	split           graph.Splitter
	seenL, seenR    bitvec.Vec
	degL, degR      []int
}

// HopcroftKarpInto computes a maximum matching of the bipartite multigraph
// view whose i-th edge is edges[i] (endpoints in [0, nL) × [0, nR)), writes
// the matched edge indices into out in left-node order, and returns the
// matching size. out must hold at least min(nL, nR) entries. The result is
// identical to HopcroftKarp on a graph whose edges were added in the same
// order.
func (m *Matcher) HopcroftKarpInto(nL, nR int, edges []graph.Edge, out []int) int {
	m.edges = edges
	m.nL = nL
	m.buildLeftCSR(nL, edges)
	m.matchL = graph.ResizeInts(m.matchL, nL)
	m.matchR = graph.ResizeInts(m.matchR, nR)
	for i := range m.matchL {
		m.matchL[i] = -1
	}
	for i := range m.matchR {
		m.matchR[i] = -1
	}
	m.dist = graph.ResizeInts(m.dist, nL)
	if cap(m.queue) < nL {
		m.queue = make([]int, 0, nL)
	}

	for m.bfs() {
		for l := 0; l < nL; l++ {
			if m.matchL[l] == -1 {
				m.dfs(l)
			}
		}
	}
	n := 0
	for l := 0; l < nL; l++ {
		if m.matchL[l] != -1 {
			out[n] = m.matchL[l]
			n++
		}
	}
	m.edges = nil
	return n
}

// buildLeftCSR fills offL/adjL with the left adjacency of the view, stable
// in edge order (matching AddEdge insertion order on a materialized graph).
func (m *Matcher) buildLeftCSR(nL int, edges []graph.Edge) {
	m.offL = graph.ResizeInts(m.offL, nL+1)
	for i := range m.offL {
		m.offL[i] = 0
	}
	for _, e := range edges {
		m.offL[e.L+1]++
	}
	for l := 0; l < nL; l++ {
		m.offL[l+1] += m.offL[l]
	}
	m.adjL = graph.ResizeInts(m.adjL, len(edges))
	m.fill = graph.ResizeInts(m.fill, nL)
	copy(m.fill, m.offL[:nL])
	for i, e := range edges {
		m.adjL[m.fill[e.L]] = i
		m.fill[e.L]++
	}
}

const infDist = int(^uint(0) >> 1)

func (m *Matcher) bfs() bool {
	m.queue = m.queue[:0]
	for l := 0; l < m.nL; l++ {
		if m.matchL[l] == -1 {
			m.dist[l] = 0
			m.queue = append(m.queue, l)
		} else {
			m.dist[l] = infDist
		}
	}
	found := false
	for qi := 0; qi < len(m.queue); qi++ {
		l := m.queue[qi]
		for ai := m.offL[l]; ai < m.offL[l+1]; ai++ {
			id := m.adjL[ai]
			r := m.edges[id].R
			mm := m.matchR[r]
			if mm == -1 {
				found = true
				continue
			}
			nl := m.edges[mm].L
			if m.dist[nl] == infDist {
				m.dist[nl] = m.dist[l] + 1
				m.queue = append(m.queue, nl)
			}
		}
	}
	return found
}

func (m *Matcher) dfs(l int) bool {
	for ai := m.offL[l]; ai < m.offL[l+1]; ai++ {
		id := m.adjL[ai]
		r := m.edges[id].R
		mm := m.matchR[r]
		if mm == -1 {
			m.matchL[l] = id
			m.matchR[r] = id
			return true
		}
		nl := m.edges[mm].L
		if m.dist[nl] == m.dist[l]+1 && m.dfs(nl) {
			m.matchL[l] = id
			m.matchR[r] = id
			return true
		}
	}
	m.dist[l] = infDist
	return false
}

// PerfectMatchingRegularInto finds a perfect matching of the k-regular
// bipartite multigraph view whose i-th edge is edges[i] (n nodes per side),
// writes the n matched edge indices into out, and returns n. It uses the
// Euler-halving scheme of Alon (see PerfectMatchingRegular) with all state
// in the arena: the implicit parallel-copy multiset lives in counting-sorted
// entry arrays instead of maps, and the per-round leftover graphs are split
// by the arena's graph.Splitter. The matched edge *set* is identical to the
// historical map-based implementation (the golden factorization outputs
// depend on it); the order written to out is by sorted (L, R) pair.
//
// It returns graph.ErrNotBipartiteRegular if the view is not k-regular.
func (m *Matcher) PerfectMatchingRegularInto(n, k int, edges []graph.Edge, out []int) (int, error) {
	if n == 0 {
		return 0, nil
	}
	m.degL = graph.ResizeInts(m.degL, n)
	m.degR = graph.ResizeInts(m.degR, n)
	for i := 0; i < n; i++ {
		m.degL[i] = 0
		m.degR[i] = 0
	}
	for _, e := range edges {
		m.degL[e.L]++
		m.degR[e.R]++
	}
	for i := 0; i < n; i++ {
		if m.degL[i] != k || m.degR[i] != k {
			return 0, graph.ErrNotBipartiteRegular
		}
	}
	if k == 0 {
		return 0, fmt.Errorf("matching: 0-regular graph has no perfect matching")
	}
	if k == 1 {
		// The single incident edge of each left node, in left-node order.
		m.fill = graph.ResizeInts(m.fill, n)
		for i := range m.fill[:n] {
			m.fill[i] = -1
		}
		for i, e := range edges {
			if m.fill[e.L] == -1 {
				m.fill[e.L] = i
			}
		}
		copy(out[:n], m.fill[:n])
		return n, nil
	}

	m.sortByPair(n, edges)
	E := m.buildEntries(n, edges)

	// Pad to 2^t-regular: alpha parallel copies of every real edge plus beta
	// copies of the dummy diagonal, with 2^t >= n*k so beta*n < 2^t.
	t := 0
	for (1 << t) < n*k {
		t++
	}
	pow := 1 << t
	alpha := pow / k
	beta := pow - alpha*k
	m.cnt = graph.ResizeInts(m.cnt, E)
	for e := 0; e < E; e++ {
		if m.entDummy.Test(e) {
			m.cnt[e] = beta
		} else {
			m.cnt[e] = alpha * m.pairMult[e]
		}
	}

	m.levEdges = graph.ResizeEdges(m.levEdges, E)
	m.levMap = graph.ResizeInts(m.levMap, E)
	m.levA = graph.ResizeInts(m.levA, E)
	m.levB = graph.ResizeInts(m.levB, E)
	for step := 0; step < t; step++ {
		// Whole parallel pairs split evenly without touching the Euler tour;
		// odd leftovers (at most one per entry) form an all-even-degree
		// leftover graph that the splitter partitions exactly. Entries are
		// iterated in sorted order, keeping the leftover edge order — and so
		// the whole halving cascade — deterministic.
		lev := 0
		for e := 0; e < E; e++ {
			if m.cnt[e]%2 == 1 {
				m.levEdges[lev] = graph.Edge{L: m.entL[e], R: m.entR[e]}
				m.levMap[lev] = e
				lev++
			}
			m.cnt[e] /= 2
		}
		nA, nB, err := m.split.Split(n, n, m.levEdges[:lev], m.levA, m.levB)
		if err != nil {
			return 0, fmt.Errorf("matching: internal halving failure: %w", err)
		}
		// The evenly-split base is common to both halves, so the half with
		// fewer dummies is decided by the leftover assignment alone.
		dA, dB := 0, 0
		for _, idx := range m.levA[:nA] {
			if m.entDummy.Test(m.levMap[idx]) {
				dA++
			}
		}
		for _, idx := range m.levB[:nB] {
			if m.entDummy.Test(m.levMap[idx]) {
				dB++
			}
		}
		keep := m.levA[:nA]
		if dA > dB {
			keep = m.levB[:nB]
		}
		for _, idx := range keep {
			m.cnt[m.levMap[idx]]++
		}
	}

	dummies := 0
	for e := 0; e < E; e++ {
		if m.entDummy.Test(e) {
			dummies += m.cnt[e]
		}
	}
	if dummies != 0 {
		return 0, fmt.Errorf("matching: internal error: %d dummy edges survived halving", dummies)
	}
	// cnt is 1-regular on real entries: map each back to its first edge.
	outN := 0
	for e := 0; e < E; e++ {
		c := m.cnt[e]
		if c == 0 || m.entDummy.Test(e) {
			continue
		}
		if c > m.pairMult[e] {
			return 0, fmt.Errorf("matching: internal error: pair (%d,%d) overused", m.entL[e], m.entR[e])
		}
		for j := 0; j < c; j++ {
			out[outN] = m.order[m.pairStart[e]+j]
			outN++
		}
	}
	if err := m.verifyPerfect(n, edges, out[:outN]); err != nil {
		return 0, fmt.Errorf("matching: internal error: %w", err)
	}
	return outN, nil
}

// sortByPair fills m.order with the edge indices sorted by (L, R) using a
// stable two-pass counting sort, so each pair's run lists its edge indices
// in ascending order.
func (m *Matcher) sortByPair(n int, edges []graph.Edge) {
	mm := len(edges)
	m.order = graph.ResizeInts(m.order, mm)
	m.orderTmp = graph.ResizeInts(m.orderTmp, mm)
	m.bucket = graph.ResizeInts(m.bucket, n+1)
	// Pass 1: by R.
	for i := range m.bucket[:n+1] {
		m.bucket[i] = 0
	}
	for _, e := range edges {
		m.bucket[e.R+1]++
	}
	for i := 0; i < n; i++ {
		m.bucket[i+1] += m.bucket[i]
	}
	for i := 0; i < mm; i++ {
		r := edges[i].R
		m.orderTmp[m.bucket[r]] = i
		m.bucket[r]++
	}
	// Pass 2: by L (stable over pass 1). Rebuild buckets.
	for i := range m.bucket[:n+1] {
		m.bucket[i] = 0
	}
	for _, e := range edges {
		m.bucket[e.L+1]++
	}
	for i := 0; i < n; i++ {
		m.bucket[i+1] += m.bucket[i]
	}
	for _, i := range m.orderTmp[:mm] {
		l := edges[i].L
		m.order[m.bucket[l]] = i
		m.bucket[l]++
	}
}

// buildEntries scans the sorted order for distinct (L, R) runs and merges
// them with the n dummy diagonal entries (i, i) into entL/entR/entDummy,
// sorted by (L, R) with real entries before dummies on ties — the exact
// order the historical map-based implementation sorted its leftovers into.
// It returns the number of entries.
func (m *Matcher) buildEntries(n int, edges []graph.Edge) int {
	mm := len(edges)
	maxE := mm + n
	m.entL = graph.ResizeInts(m.entL, maxE)
	m.entR = graph.ResizeInts(m.entR, maxE)
	m.pairStart = graph.ResizeInts(m.pairStart, maxE)
	m.pairMult = graph.ResizeInts(m.pairMult, maxE)
	m.entDummy = m.entDummy.Resize(maxE)
	E := 0
	di := 0
	emitDummiesBelow := func(l, r int) {
		for di < n && (di < l || (di == l && di < r)) {
			m.entL[E] = di
			m.entR[E] = di
			m.entDummy.Set(E)
			m.pairStart[E] = -1
			m.pairMult[E] = 0
			E++
			di++
		}
	}
	for s := 0; s < mm; {
		e0 := edges[m.order[s]]
		t := s + 1
		for t < mm && edges[m.order[t]] == e0 {
			t++
		}
		emitDummiesBelow(e0.L, e0.R)
		m.entL[E] = e0.L
		m.entR[E] = e0.R
		m.pairStart[E] = s
		m.pairMult[E] = t - s
		E++
		s = t
	}
	emitDummiesBelow(n, 0)
	return E
}

// verifyPerfect checks ids is a perfect matching of the view using bit-set
// membership (the arena counterpart of VerifyMatching).
func (m *Matcher) verifyPerfect(n int, edges []graph.Edge, ids []int) error {
	if len(ids) != n {
		return fmt.Errorf("matching: size %d is not perfect for %d+%d nodes", len(ids), n, n)
	}
	m.seenL = m.seenL.Resize(n)
	m.seenR = m.seenR.Resize(n)
	for _, id := range ids {
		e := edges[id]
		if m.seenL.Test(e.L) {
			return fmt.Errorf("matching: left node %d covered twice", e.L)
		}
		if m.seenR.Test(e.R) {
			return fmt.Errorf("matching: right node %d covered twice", e.R)
		}
		m.seenL.Set(e.L)
		m.seenR.Set(e.R)
	}
	return nil
}
