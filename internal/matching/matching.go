// Package matching implements bipartite matching algorithms on the
// multigraphs of package graph. Matchings are the computational bottleneck
// of the routing planner (Remark 1 of Mei & Rizzi): a 1-factorization of a
// regular bipartite multigraph is obtained by repeatedly extracting perfect
// matchings, or faster by Euler-split halving.
//
// Three algorithms are provided:
//
//   - Kuhn: classic augmenting-path maximum matching, O(V·E). Simple and the
//     reference implementation the others are tested against.
//   - HopcroftKarp: O(E·√V) maximum matching.
//   - PerfectMatchingRegular: Alon-style Euler-halving perfect matching in a
//     k-regular bipartite multigraph, O(m·log(nk)) — the engine behind the
//     near-linear 1-factorizations of Kapoor–Rizzi and Rizzi cited by the
//     paper.
//
// All functions return matchings as slices of edge IDs of the input graph.
package matching

import (
	"fmt"

	"pops/internal/graph"
)

// Kuhn computes a maximum matching using augmenting paths and returns the
// IDs of the matched edges. Parallel edges are handled (at most one copy of
// a parallel bundle can be matched).
func Kuhn(b *graph.Bipartite) []int {
	nL, nR := b.NLeft(), b.NRight()
	matchL := make([]int, nL) // left node -> matched edge ID, -1 if free
	matchR := make([]int, nR)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	visited := make([]int, nR) // epoch marks
	epoch := 0

	var try func(l int) bool
	try = func(l int) bool {
		for _, id := range b.AdjL(l) {
			r := b.Edge(id).R
			if visited[r] == epoch {
				continue
			}
			visited[r] = epoch
			if matchR[r] == -1 || try(b.Edge(matchR[r]).L) {
				matchL[l] = id
				matchR[r] = id
				return true
			}
		}
		return false
	}

	for l := 0; l < nL; l++ {
		epoch++
		try(l)
	}
	out := make([]int, 0, len(matchL))
	for _, id := range matchL {
		if id != -1 {
			out = append(out, id)
		}
	}
	return out
}

// HopcroftKarp computes a maximum matching in O(E·√V) and returns the IDs of
// the matched edges, in left-node order. It is the convenience form of
// Matcher.HopcroftKarpInto with a throwaway arena; repeated callers (the
// edge-coloring Factorizer) hold a Matcher instead and stay
// allocation-free.
func HopcroftKarp(b *graph.Bipartite) []int {
	nL, nR := b.NLeft(), b.NRight()
	size := nL
	if nR < size {
		size = nR
	}
	var m Matcher
	out := make([]int, size)
	n := m.HopcroftKarpInto(nL, nR, b.EdgeList(), out)
	return out[:n]
}

// VerifyMatching checks that ids is a matching of b (no two edges share an
// endpoint) and, if perfect is true, that it covers every node of both
// classes. It returns a descriptive error on the first violation.
func VerifyMatching(b *graph.Bipartite, ids []int, perfect bool) error {
	seenL := make(map[int]bool, len(ids))
	seenR := make(map[int]bool, len(ids))
	for _, id := range ids {
		if id < 0 || id >= b.NumEdges() {
			return fmt.Errorf("matching: edge ID %d out of range", id)
		}
		e := b.Edge(id)
		if seenL[e.L] {
			return fmt.Errorf("matching: left node %d covered twice", e.L)
		}
		if seenR[e.R] {
			return fmt.Errorf("matching: right node %d covered twice", e.R)
		}
		seenL[e.L] = true
		seenR[e.R] = true
	}
	if perfect {
		if len(ids) != b.NLeft() || len(ids) != b.NRight() {
			return fmt.Errorf("matching: size %d is not perfect for %d+%d nodes",
				len(ids), b.NLeft(), b.NRight())
		}
	}
	return nil
}
