// Package matching implements bipartite matching algorithms on the
// multigraphs of package graph. Matchings are the computational bottleneck
// of the routing planner (Remark 1 of Mei & Rizzi): a 1-factorization of a
// regular bipartite multigraph is obtained by repeatedly extracting perfect
// matchings, or faster by Euler-split halving.
//
// Three algorithms are provided:
//
//   - Kuhn: classic augmenting-path maximum matching, O(V·E). Simple and the
//     reference implementation the others are tested against.
//   - HopcroftKarp: O(E·√V) maximum matching.
//   - PerfectMatchingRegular: Alon-style Euler-halving perfect matching in a
//     k-regular bipartite multigraph, O(m·log(nk)) — the engine behind the
//     near-linear 1-factorizations of Kapoor–Rizzi and Rizzi cited by the
//     paper.
//
// All functions return matchings as slices of edge IDs of the input graph.
package matching

import (
	"fmt"

	"pops/internal/graph"
)

// Kuhn computes a maximum matching using augmenting paths and returns the
// IDs of the matched edges. Parallel edges are handled (at most one copy of
// a parallel bundle can be matched).
func Kuhn(b *graph.Bipartite) []int {
	nL, nR := b.NLeft(), b.NRight()
	matchL := make([]int, nL) // left node -> matched edge ID, -1 if free
	matchR := make([]int, nR)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	visited := make([]int, nR) // epoch marks
	epoch := 0

	var try func(l int) bool
	try = func(l int) bool {
		for _, id := range b.AdjL(l) {
			r := b.Edge(id).R
			if visited[r] == epoch {
				continue
			}
			visited[r] = epoch
			if matchR[r] == -1 || try(b.Edge(matchR[r]).L) {
				matchL[l] = id
				matchR[r] = id
				return true
			}
		}
		return false
	}

	for l := 0; l < nL; l++ {
		epoch++
		try(l)
	}
	return collect(matchL)
}

// HopcroftKarp computes a maximum matching in O(E·√V) and returns the IDs of
// the matched edges.
func HopcroftKarp(b *graph.Bipartite) []int {
	nL, nR := b.NLeft(), b.NRight()
	matchL := make([]int, nL) // left -> edge ID or -1
	matchR := make([]int, nR)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}

	const inf = int(^uint(0) >> 1)
	dist := make([]int, nL)
	queue := make([]int, 0, nL)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < nL; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, id := range b.AdjL(l) {
				r := b.Edge(id).R
				m := matchR[r]
				if m == -1 {
					found = true
					continue
				}
				nl := b.Edge(m).L
				if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, id := range b.AdjL(l) {
			r := b.Edge(id).R
			m := matchR[r]
			if m == -1 {
				matchL[l] = id
				matchR[r] = id
				return true
			}
			nl := b.Edge(m).L
			if dist[nl] == dist[l]+1 && dfs(nl) {
				matchL[l] = id
				matchR[r] = id
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := 0; l < nL; l++ {
			if matchL[l] == -1 {
				dfs(l)
			}
		}
	}
	return collect(matchL)
}

func collect(matchL []int) []int {
	out := make([]int, 0, len(matchL))
	for _, id := range matchL {
		if id != -1 {
			out = append(out, id)
		}
	}
	return out
}

// VerifyMatching checks that ids is a matching of b (no two edges share an
// endpoint) and, if perfect is true, that it covers every node of both
// classes. It returns a descriptive error on the first violation.
func VerifyMatching(b *graph.Bipartite, ids []int, perfect bool) error {
	seenL := make(map[int]bool, len(ids))
	seenR := make(map[int]bool, len(ids))
	for _, id := range ids {
		if id < 0 || id >= b.NumEdges() {
			return fmt.Errorf("matching: edge ID %d out of range", id)
		}
		e := b.Edge(id)
		if seenL[e.L] {
			return fmt.Errorf("matching: left node %d covered twice", e.L)
		}
		if seenR[e.R] {
			return fmt.Errorf("matching: right node %d covered twice", e.R)
		}
		seenL[e.L] = true
		seenR[e.R] = true
	}
	if perfect {
		if len(ids) != b.NLeft() || len(ids) != b.NRight() {
			return fmt.Errorf("matching: size %d is not perfect for %d+%d nodes",
				len(ids), b.NLeft(), b.NRight())
		}
	}
	return nil
}
