package wirebin

import (
	"fmt"
	"testing"

	"pops/internal/popsnet"
	"pops/internal/wire"
)

// replayReader re-serves the same byte slice forever, resetting on EOF, so a
// decode loop can run an unbounded number of iterations over one frame
// without per-iteration reader churn.
type replayReader struct {
	data []byte
	pos  int
}

func (r *replayReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		r.pos = 0
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

// allocBudgetSlot is a representative whole-slot record: 16 sends and 16
// recvs, the shape a d=16 backend streams on the hot path.
func allocBudgetSlot() wire.StreamSlot {
	s := wire.StreamSlot{Slot: 12, Color: -1, Offset: 0, Final: true}
	for i := 0; i < 16; i++ {
		s.Sends = append(s.Sends, popsnet.Send{Src: i * 17, DestGroup: i % 8, Packet: i * 31})
		s.Recvs = append(s.Recvs, popsnet.Recv{Proc: i * 13, SrcGroup: (i + 3) % 8})
	}
	return s
}

// TestWireEncodeAllocBudget is the wire-path half of `make alloc-guard`: a
// steady-state slot record must encode and decode with zero allocations per
// operation, mirroring the factorizer arena budget on the library side.
func TestWireEncodeAllocBudget(t *testing.T) {
	slot := allocBudgetSlot()
	e := GetEncoder()
	defer PutEncoder(e)
	// Warm the encoder buffer once; steady state reuses it.
	frame := append([]byte(nil), e.AppendSlot(&slot)...)

	if got := testing.AllocsPerRun(200, func() {
		e.AppendSlot(&slot)
	}); got != 0 {
		t.Errorf("AppendSlot: %v allocs/op, want 0", got)
	}

	d := NewDecoder(&replayReader{data: frame})
	var out wire.StreamSlot
	// Warm the decoder buffer and the decode-into slices.
	typ, payload, err := d.ReadFrame()
	if err != nil || typ != FrameSlot {
		t.Fatalf("warm ReadFrame: typ=%d err=%v", typ, err)
	}
	if err := DecodeSlot(payload, &out); err != nil {
		t.Fatalf("warm DecodeSlot: %v", err)
	}

	if got := testing.AllocsPerRun(200, func() {
		typ, payload, err := d.ReadFrame()
		if err != nil || typ != FrameSlot {
			panic(fmt.Sprintf("ReadFrame: typ=%d err=%v", typ, err))
		}
		if err := DecodeSlot(payload, &out); err != nil {
			panic(err)
		}
	}); got != 0 {
		t.Errorf("ReadFrame+DecodeSlot: %v allocs/op, want 0", got)
	}
}

// TestReframerAllocBudget keeps the proxy relay path on the same zero
// steady-state budget: relaying a frame must not allocate once the buffer is
// warm.
func TestReframerAllocBudget(t *testing.T) {
	slot := allocBudgetSlot()
	e := GetEncoder()
	defer PutEncoder(e)
	frame := append([]byte(nil), e.AppendSlot(&slot)...)

	rf := NewReframer(&replayReader{data: frame})
	if _, err := rf.Next(); err != nil {
		t.Fatalf("warm Next: %v", err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := rf.Next(); err != nil {
			panic(err)
		}
	}); got != 0 {
		t.Errorf("Reframer.Next: %v allocs/op, want 0", got)
	}
}
