// Package wirebin is the binary wire codec of the serving stack: a compact,
// length-prefixed framing for the payloads POST /route and POST /route/stream
// otherwise speak as JSON/NDJSON (internal/wire). It exists for one loop —
// the per-slot-record stream encode on the hottest serving path — where
// json.Marshal plus the wire.StreamRecord pointer fields cost allocations and
// time the library side already proved unnecessary (the arena Factorizer).
//
// # Frame layout
//
//	frame   := uvarint(len(payload)) payload
//	payload := version(1 byte) type(1 byte) fields...
//
// The length prefix covers the payload only, so a relay can forward frames
// verbatim without understanding the fields, and a reader can skip frame
// types it does not know. Version is a single byte (currently 1); a decoder
// rejects versions it does not speak, which is the forward-evolution hinge:
// new field layouts bump the version, new record kinds add frame types.
//
// Integer fields are unsigned varints (binary.AppendUvarint); the one field
// that can be negative (a slot fragment's Color, -1 for whole-slot
// fragments) is zigzag-encoded. Strings and byte blobs are uvarint length +
// bytes. Booleans travel in a flags byte.
//
// # Frame types
//
// The stream frames mirror wire.StreamRecord's four record kinds — meta,
// slot, done, error — and two more carry the unary bodies: request
// (wire.RouteRequest) and response (wire.RouteResponse).
//
// # Allocation contract
//
// Encoding is zero-allocation in steady state: an Encoder owns one buffer,
// grown to the high-water mark and reused for every frame; Append* methods
// return a slice aliasing it, valid until the next call. Decoding is
// decode-into-caller-owned-structs: DecodeSlot refills the caller's
// wire.StreamSlot reusing its Sends/Recvs capacity, so a warmed
// ReadFrame+DecodeSlot loop allocates nothing per record (guarded by
// TestWireEncodeAllocBudget under make alloc-guard). Frames with string
// fields (meta, error, request, response) allocate for the strings; they
// occur once per stream or once per call, never per slot record.
//
// # Negotiation
//
// The codec is negotiated end to end via standard content negotiation:
// a client that wants binary responses sends Accept: application/x-pops-bin
// (ContentType); a server that speaks it answers with that Content-Type,
// and one that does not keeps answering JSON/NDJSON — which remains the
// default and the debug surface. Accepts implements the server-side check.
package wirebin

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
)

// ContentType is the negotiated media type of the binary codec, offered by
// clients in Accept and announced by servers in Content-Type. JSON and
// NDJSON remain the default wire format; binary is strictly opt-in.
const ContentType = "application/x-pops-bin"

// Version is the frame version this package encodes. Decoders reject any
// other value, so layout changes can never be misparsed as the old layout.
const Version = 1

// Frame types. The stream types mirror wire.StreamRecord's kinds; request
// and response carry the unary /route bodies.
const (
	FrameMeta     byte = 1
	FrameSlot     byte = 2
	FrameDone     byte = 3
	FrameError    byte = 4
	FrameRequest  byte = 5
	FrameResponse byte = 6
)

// MaxFrame bounds a single frame's payload, mirroring the HTTP layers'
// request-body bound: a length prefix past it is corruption (or an attack),
// not a plan.
const MaxFrame = 64 << 20

// ErrCorruptFrame tags every malformed-input failure of the decoder —
// truncated payloads, over-long length prefixes, unknown versions, counts
// that exceed the remaining bytes. errors.Is(err, ErrCorruptFrame) holds for
// all of them, so callers surface one typed verdict instead of string
// matching.
var ErrCorruptFrame = errors.New("wirebin: corrupt frame")

// Accepts reports whether an Accept header value asks for the binary codec:
// some media range names ContentType with a nonzero quality. An empty or
// unknown Accept keeps the JSON/NDJSON default — exactly the behavior old
// clients get without changing a byte.
func Accepts(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaRange, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if !strings.EqualFold(strings.TrimSpace(mediaRange), ContentType) {
			continue
		}
		if q, ok := qualityParam(params); ok && q == 0 {
			return false // explicitly refused: "application/x-pops-bin;q=0"
		}
		return true
	}
	return false
}

// qualityParam extracts a q= parameter from a media range's parameter list.
func qualityParam(params string) (q float64, ok bool) {
	for _, p := range strings.Split(params, ";") {
		k, v, found := strings.Cut(strings.TrimSpace(p), "=")
		if !found || !strings.EqualFold(strings.TrimSpace(k), "q") {
			continue
		}
		var val float64
		if _, err := fmt.Sscanf(strings.TrimSpace(v), "%f", &val); err == nil {
			return val, true
		}
	}
	return 0, false
}

// IsContentType reports whether a Content-Type header value names the binary
// codec (ignoring parameters).
func IsContentType(ct string) bool {
	mediaType, _, _ := strings.Cut(ct, ";")
	return strings.EqualFold(strings.TrimSpace(mediaType), ContentType)
}

// lenReserve is the room reserved at the front of an encoder's buffer for
// the frame's uvarint length prefix (a MaxFrame payload needs 4 bytes; 5
// covers any uint32).
const lenReserve = 5

// Encoder builds frames into one reusable buffer. The slice returned by an
// Append* method aliases that buffer and is valid until the next call.
// An Encoder is not safe for concurrent use; pool them with GetEncoder /
// PutEncoder (one per stream or per response write).
type Encoder struct {
	buf []byte
}

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder checks an Encoder out of the package pool.
func GetEncoder() *Encoder { return encoderPool.Get().(*Encoder) }

// PutEncoder returns an Encoder to the pool. The caller must be done with
// every slice an Append* method returned.
func PutEncoder(e *Encoder) { encoderPool.Put(e) }

// begin resets the buffer to the reserved length prefix plus the version and
// type bytes.
func (e *Encoder) begin(typ byte) {
	if cap(e.buf) < lenReserve+2 {
		e.buf = make([]byte, lenReserve, 256)
	} else {
		e.buf = e.buf[:lenReserve]
	}
	e.buf = append(e.buf, Version, typ)
}

// finish writes the length prefix immediately before the payload and returns
// the completed frame.
func (e *Encoder) finish() []byte {
	payload := len(e.buf) - lenReserve
	var tmp [lenReserve]byte
	n := binary.PutUvarint(tmp[:], uint64(payload))
	start := lenReserve - n
	copy(e.buf[start:lenReserve], tmp[:n])
	return e.buf[start:]
}

func (e *Encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *Encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *Encoder) byteVal(b byte)   { e.buf = append(e.buf, b) }
func (e *Encoder) str(s string)     { e.uvarint(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *Encoder) ints(vals []int) {
	e.uvarint(uint64(len(vals)))
	for _, v := range vals {
		e.varint(int64(v))
	}
}

// Decoder reads frames off an io.Reader, buffering reads and reassembling
// frames that span arbitrary read boundaries (HTTP chunk boundaries
// included — a frame's bytes may arrive in any number of pieces). The
// payload returned by ReadFrame aliases the Decoder's internal buffer and is
// valid until the next ReadFrame. Not safe for concurrent use; pool with
// GetDecoder / PutDecoder.
type Decoder struct {
	br  *bufio.Reader
	buf []byte
}

var decoderPool = sync.Pool{New: func() any { return &Decoder{br: bufio.NewReaderSize(nil, 4096)} }}

// GetDecoder checks a Decoder out of the package pool and points it at r.
func GetDecoder(r io.Reader) *Decoder {
	d := decoderPool.Get().(*Decoder)
	d.br.Reset(r)
	return d
}

// PutDecoder returns a Decoder to the pool. The caller must be done with the
// last payload ReadFrame returned.
func PutDecoder(d *Decoder) {
	d.br.Reset(nil)
	decoderPool.Put(d)
}

// NewDecoder returns an unpooled Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReaderSize(r, 4096)}
}

// Reset points the Decoder at a new reader, keeping its buffers.
func (d *Decoder) Reset(r io.Reader) { d.br.Reset(r) }

// ReadFrame reads one complete frame and returns its type and payload (the
// bytes after the version and type bytes, aliasing the Decoder's buffer).
// io.EOF is returned untouched at a clean frame boundary; a frame truncated
// mid-way decodes as an ErrCorruptFrame-tagged error, never a silent short
// read.
func (d *Decoder) ReadFrame() (typ byte, payload []byte, err error) {
	n, err := binary.ReadUvarint(d.br)
	if err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: length prefix: %v", ErrCorruptFrame, err)
	}
	if n < 2 || n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: payload length %d out of range", ErrCorruptFrame, n)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.br, d.buf); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated payload (%d bytes promised): %v", ErrCorruptFrame, n, err)
	}
	if d.buf[0] != Version {
		return 0, nil, fmt.Errorf("%w: unknown frame version %d (this codec speaks %d)", ErrCorruptFrame, d.buf[0], Version)
	}
	return d.buf[1], d.buf[2:], nil
}

// reader is a cursor over one frame payload. All its take* methods fail with
// ErrCorruptFrame-tagged errors by setting err sticky, so decode functions
// check once at the end.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrCorruptFrame}, args...)...)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// count reads a uvarint element count and sanity-checks it against the bytes
// that could possibly hold it (at least one byte per element), so a corrupt
// count can never drive a huge allocation.
func (r *reader) count() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)) {
		r.fail("count %d exceeds remaining %d bytes", n, len(r.b))
		return 0
	}
	return int(n)
}

func (r *reader) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail("truncated byte")
		return 0
	}
	b := r.b[0]
	r.b = r.b[1:]
	return b
}

func (r *reader) str() string {
	if r.err != nil {
		return ""
	}
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail("string length %d exceeds remaining %d bytes", n, len(r.b))
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *reader) ints() []int {
	n := r.count()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.varint())
	}
	if r.err != nil {
		return nil
	}
	return out
}

// done asserts the payload was consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after payload", ErrCorruptFrame, len(r.b))
	}
	return nil
}
