package wirebin

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"pops/internal/popsnet"
	"pops/internal/wire"
)

// randomSlot builds a random slot fragment of up to n sends/recvs.
func randomSlot(rng *rand.Rand, n int) wire.StreamSlot {
	s := wire.StreamSlot{
		Slot:   rng.Intn(1 << 12),
		Color:  rng.Intn(66) - 1, // includes -1, the whole-slot marker
		Offset: rng.Intn(1 << 10),
		Final:  rng.Intn(2) == 0,
	}
	for i := 0; i < rng.Intn(n+1); i++ {
		s.Sends = append(s.Sends, popsnet.Send{
			Src:       rng.Intn(1 << 16),
			DestGroup: rng.Intn(1 << 8),
			Packet:    rng.Intn(1 << 16),
		})
	}
	for i := 0; i < rng.Intn(n+1); i++ {
		s.Recvs = append(s.Recvs, popsnet.Recv{
			Proc:     rng.Intn(1 << 16),
			SrcGroup: rng.Intn(1 << 8),
		})
	}
	return s
}

// decodeOne runs one encoded frame through a Decoder and returns type and
// payload.
func decodeOne(t *testing.T, frame []byte) (byte, []byte) {
	t.Helper()
	d := NewDecoder(bytes.NewReader(frame))
	typ, payload, err := d.ReadFrame()
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return typ, payload
}

func TestSlotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := GetEncoder()
	defer PutEncoder(e)
	for i := 0; i < 500; i++ {
		in := randomSlot(rng, 64)
		typ, payload := decodeOne(t, e.AppendSlot(&in))
		if typ != FrameSlot {
			t.Fatalf("frame type %d, want %d", typ, FrameSlot)
		}
		var out wire.StreamSlot
		if err := DecodeSlot(payload, &out); err != nil {
			t.Fatalf("DecodeSlot: %v", err)
		}
		// Decode-into leaves empty slices non-nil after reuse; normalize.
		if len(in.Sends) == 0 {
			in.Sends = nil
		}
		if len(in.Recvs) == 0 {
			in.Recvs = nil
		}
		if len(out.Sends) == 0 {
			out.Sends = nil
		}
		if len(out.Recvs) == 0 {
			out.Recvs = nil
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
		}
	}
}

func TestMetaDoneErrorRoundTrip(t *testing.T) {
	e := GetEncoder()
	defer PutEncoder(e)

	meta := wire.StreamMeta{
		D: 16, G: 64, Workload: "hrelation", Slots: 33, Fragments: 130,
		Strategy: "theorem2", Fingerprint: "00deadbeef00cafe", Cached: true,
		RequestID: "0123456789abcdef",
	}
	typ, payload := decodeOne(t, e.AppendMeta(&meta))
	if typ != FrameMeta {
		t.Fatalf("frame type %d, want %d", typ, FrameMeta)
	}
	var gotMeta wire.StreamMeta
	if err := DecodeMeta(payload, &gotMeta); err != nil {
		t.Fatalf("DecodeMeta: %v", err)
	}
	if gotMeta != meta {
		t.Fatalf("meta round trip mismatch:\n in  %+v\n out %+v", meta, gotMeta)
	}

	done := wire.StreamDone{Slots: 33, Fragments: 130}
	typ, payload = decodeOne(t, e.AppendDone(&done))
	if typ != FrameDone {
		t.Fatalf("frame type %d, want %d", typ, FrameDone)
	}
	var gotDone wire.StreamDone
	if err := DecodeDone(payload, &gotDone); err != nil {
		t.Fatalf("DecodeDone: %v", err)
	}
	if gotDone != done {
		t.Fatalf("done round trip mismatch: %+v vs %+v", done, gotDone)
	}

	typ, payload = decodeOne(t, e.AppendError("planner exploded"))
	if typ != FrameError {
		t.Fatalf("frame type %d, want %d", typ, FrameError)
	}
	msg, err := DecodeError(payload)
	if err != nil || msg != "planner exploded" {
		t.Fatalf("DecodeError = %q, %v", msg, err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	e := GetEncoder()
	defer PutEncoder(e)
	cases := []wire.RouteRequest{
		{D: 4, G: 8, Pi: []int{3, 2, 1, 0}},
		{D: 8, G: 8, Pis: [][]int{{1, 0}, {0, 1}}, Strategy: "greedy", IncludeSchedule: true},
		{D: 2, G: 2, Workload: wire.WorkloadHRelation, Requests: []wire.Request{{Src: 0, Dst: 3}, {Src: 1, Dst: 1}}},
		{D: 2, G: 4, Workload: wire.WorkloadOneToAll, Speaker: 5, Tenant: "gold"},
		{D: 4, G: 4, Workload: wire.WorkloadFaultyPermutation, Pi: []int{0, 1, 2, 3},
			Faults: &wire.FaultSet{Couplers: []wire.Coupler{{B: 1, A: 2}}, Groups: []int{3}}},
		{D: 4, G: 4, Workload: wire.WorkloadFaultyPermutation, Pi: []int{1, 0},
			Faults: &wire.FaultSet{}}, // present but empty fault set survives
	}
	for _, in := range cases {
		typ, payload := decodeOne(t, e.AppendRequest(&in))
		if typ != FrameRequest {
			t.Fatalf("frame type %d, want %d", typ, FrameRequest)
		}
		var out wire.RouteRequest
		if err := DecodeRequest(payload, &out); err != nil {
			t.Fatalf("DecodeRequest(%+v): %v", in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("request round trip mismatch:\n in  %+v\n out %+v", in, out)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	e := GetEncoder()
	defer PutEncoder(e)
	sched := &popsnet.Schedule{
		Net: popsnet.Network{D: 2, G: 2},
		Slots: []popsnet.Slot{
			{Sends: []popsnet.Send{{Src: 0, DestGroup: 1, Packet: 2}}, Recvs: []popsnet.Recv{{Proc: 3, SrcGroup: 0}}},
			{Sends: []popsnet.Send{{Src: 1, DestGroup: 0, Packet: 0}}, Recvs: []popsnet.Recv{{Proc: 0, SrcGroup: 1}}},
		},
	}
	in := wire.RouteResponse{
		D: 2, G: 2, RequestID: "feedfacefeedface",
		Plans: []wire.PlanResult{
			{Strategy: "theorem2", Slots: 2, Rounds: 1, Fingerprint: "0011223344556677", Cached: true, Schedule: sched},
			{Error: "no plan for you"},
			{Workload: wire.WorkloadFaultyPermutation, Error: "unroutable",
				Unroutable: &wire.UnroutableInfo{Packet: 7, SrcGroup: 1, DstGroup: 3, SeveredDst: true}},
			{Workload: wire.WorkloadHRelation, Strategy: "hrelation", Slots: 9, Rounds: 3, H: 4, Fingerprint: "8899aabbccddeeff"},
		},
	}
	typ, payload := decodeOne(t, e.AppendResponse(&in))
	if typ != FrameResponse {
		t.Fatalf("frame type %d, want %d", typ, FrameResponse)
	}
	var out wire.RouteResponse
	if err := DecodeResponse(payload, &out); err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("response round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
}

// TestDecoderFrameSequence drains a multi-frame buffer and checks clean EOF
// at the boundary.
func TestDecoderFrameSequence(t *testing.T) {
	e := GetEncoder()
	defer PutEncoder(e)
	var stream []byte
	stream = append(stream, e.AppendMeta(&wire.StreamMeta{D: 2, G: 2, Slots: 1, Fragments: 1, Strategy: "theorem2"})...)
	stream = append(stream, e.AppendSlot(&wire.StreamSlot{Slot: 0, Color: -1, Final: true})...)
	stream = append(stream, e.AppendDone(&wire.StreamDone{Slots: 1, Fragments: 1})...)

	d := GetDecoder(bytes.NewReader(stream))
	defer PutDecoder(d)
	wantTypes := []byte{FrameMeta, FrameSlot, FrameDone}
	for _, want := range wantTypes {
		typ, _, err := d.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if typ != want {
			t.Fatalf("frame type %d, want %d", typ, want)
		}
	}
	if _, _, err := d.ReadFrame(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestDecoderRejectsCorruptInput pins the typed verdict on the adversarial
// inputs that matter: truncation (mid-prefix and mid-payload), oversized
// length prefixes, unknown versions, and counts past the payload.
func TestDecoderRejectsCorruptInput(t *testing.T) {
	e := GetEncoder()
	defer PutEncoder(e)
	slot := randomSlot(rand.New(rand.NewSource(7)), 8)
	frame := append([]byte(nil), e.AppendSlot(&slot)...)

	cases := map[string][]byte{
		"truncated payload":  frame[:len(frame)-1],
		"truncated prefix":   {0x80},
		"zero-length frame":  {0x00},
		"oversized length":   {0xff, 0xff, 0xff, 0xff, 0x7f},
		"unknown version":    {0x02, 99, FrameSlot},
		"huge element count": append(append([]byte{}, frame[:6]...), 0xff, 0xff, 0x03),
	}
	for name, data := range cases {
		d := NewDecoder(bytes.NewReader(data))
		typ, payload, err := d.ReadFrame()
		if err == nil {
			var s wire.StreamSlot
			switch typ {
			case FrameSlot:
				err = DecodeSlot(payload, &s)
			default:
				t.Fatalf("%s: unexpected clean frame type %d", name, typ)
			}
		}
		if !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("%s: error %v, want ErrCorruptFrame", name, err)
		}
	}

	// Trailing garbage after a valid payload must be rejected too.
	grown := append(append([]byte{}, frame...), 0x01)
	grown[0]++ // stretch the announced payload over the garbage byte
	d := NewDecoder(bytes.NewReader(grown))
	typ, payload, err := d.ReadFrame()
	if err == nil && typ == FrameSlot {
		var s wire.StreamSlot
		err = DecodeSlot(payload, &s)
	}
	if !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("trailing bytes: error %v, want ErrCorruptFrame", err)
	}
}

func TestAccepts(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"application/json", false},
		{"application/x-ndjson", false},
		{"text/html, application/xhtml+xml", false},
		{"*/*", false}, // binary is opt-in by name, never by wildcard
		{ContentType, true},
		{"application/X-POPS-BIN", true},
		{"application/x-pops-bin, application/json;q=0.9", true},
		{"application/json;q=0.9, application/x-pops-bin", true},
		{"application/x-pops-bin;q=0", false},
		{"application/x-pops-bin; q=0.0, application/json", false},
		{"application/x-pops-bin;q=0.5", true},
	}
	for _, c := range cases {
		if got := Accepts(c.accept); got != c.want {
			t.Errorf("Accepts(%q) = %v, want %v", c.accept, got, c.want)
		}
	}
}

func TestIsContentType(t *testing.T) {
	cases := []struct {
		ct   string
		want bool
	}{
		{"", false},
		{"application/json", false},
		{ContentType, true},
		{"application/x-pops-bin; charset=binary", true},
		{" Application/X-Pops-Bin ", true},
	}
	for _, c := range cases {
		if got := IsContentType(c.ct); got != c.want {
			t.Errorf("IsContentType(%q) = %v, want %v", c.ct, got, c.want)
		}
	}
}

// TestReframerSplitsFrames drives a reframer over a stream delivered in
// pathological pieces — one byte at a time, so every frame spans many read
// boundaries — and checks each relayed frame is whole and byte-identical.
func TestReframerSplitsFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := GetEncoder()
	defer PutEncoder(e)
	var stream []byte
	var want [][]byte
	meta := e.AppendMeta(&wire.StreamMeta{D: 8, G: 8, Slots: 9, Fragments: 20, Strategy: "theorem2"})
	want = append(want, append([]byte(nil), meta...))
	stream = append(stream, meta...)
	for i := 0; i < 20; i++ {
		s := randomSlot(rng, 32)
		frame := e.AppendSlot(&s)
		want = append(want, append([]byte(nil), frame...))
		stream = append(stream, frame...)
	}
	doneF := e.AppendDone(&wire.StreamDone{Slots: 9, Fragments: 20})
	want = append(want, append([]byte(nil), doneF...))
	stream = append(stream, doneF...)

	rf := NewReframer(iotest{data: stream}.reader())
	for i, wf := range want {
		got, err := rf.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, wf) {
			t.Fatalf("frame %d relayed differently (%d vs %d bytes)", i, len(got), len(wf))
		}
	}
	if _, err := rf.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestReframerTruncatedStream pins that a stream dying mid-frame surfaces a
// typed error instead of a partial relay.
func TestReframerTruncatedStream(t *testing.T) {
	e := GetEncoder()
	defer PutEncoder(e)
	s := randomSlot(rand.New(rand.NewSource(5)), 16)
	frame := e.AppendSlot(&s)
	rf := NewReframer(bytes.NewReader(frame[:len(frame)-3]))
	if _, err := rf.Next(); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("truncated stream: %v, want ErrCorruptFrame", err)
	}
}

// iotest delivers a buffer one byte per Read call.
type iotest struct{ data []byte }

func (it iotest) reader() io.Reader { return &oneByteReader{data: it.data} }

type oneByteReader struct {
	data []byte
	pos  int
}

func (r *oneByteReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	p[0] = r.data[r.pos]
	r.pos++
	return 1, nil
}
