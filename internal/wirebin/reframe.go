package wirebin

import (
	"bufio"
	"fmt"
	"io"
)

// Reframer splits a raw binary stream into complete frames without decoding
// their fields, for relays (the cluster proxy) that forward each frame
// verbatim as its own flush — the binary analogue of relaying NDJSON line by
// line. Frames may span the underlying reader's delivery boundaries
// arbitrarily (HTTP chunk boundaries included); Next blocks until the frame
// in flight is whole, buffering only that one frame, never the plan.
type Reframer struct {
	br  *bufio.Reader
	buf []byte
}

// NewReframer returns a Reframer reading from r.
func NewReframer(r io.Reader) *Reframer {
	return &Reframer{br: bufio.NewReaderSize(r, 4096)}
}

// Next returns the next complete frame, length prefix included, aliasing the
// Reframer's buffer (valid until the next call). io.EOF is returned at a
// clean frame boundary; a stream truncated mid-frame — a backend dying with
// half a record on the wire — fails with an ErrCorruptFrame-tagged error so
// the relay never forwards a partial frame.
func (f *Reframer) Next() ([]byte, error) {
	// Read the uvarint length prefix byte by byte, keeping the raw bytes so
	// the frame can be relayed exactly as it arrived.
	f.buf = f.buf[:0]
	var n uint64
	var shift uint
	for {
		b, err := f.br.ReadByte()
		if err != nil {
			if err == io.EOF && len(f.buf) == 0 {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("%w: truncated length prefix: %v", ErrCorruptFrame, err)
		}
		f.buf = append(f.buf, b)
		n |= uint64(b&0x7f) << shift
		shift += 7
		if b < 0x80 {
			break
		}
		if shift > 35 {
			return nil, fmt.Errorf("%w: length prefix overflows", ErrCorruptFrame)
		}
	}
	if n < 2 || n > MaxFrame {
		return nil, fmt.Errorf("%w: payload length %d out of range", ErrCorruptFrame, n)
	}
	prefix := len(f.buf)
	total := prefix + int(n)
	if cap(f.buf) < total {
		grown := make([]byte, total)
		copy(grown, f.buf)
		f.buf = grown[:prefix]
	}
	f.buf = f.buf[:total]
	if _, err := io.ReadFull(f.br, f.buf[prefix:]); err != nil {
		return nil, fmt.Errorf("%w: truncated payload (%d bytes promised): %v", ErrCorruptFrame, n, err)
	}
	if f.buf[prefix] != Version {
		return nil, fmt.Errorf("%w: unknown frame version %d (this codec speaks %d)", ErrCorruptFrame, f.buf[prefix], Version)
	}
	return f.buf, nil
}
