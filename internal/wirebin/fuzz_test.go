package wirebin

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"pops/internal/wire"
)

// FuzzDecodeFrame feeds arbitrary bytes through the full decode surface —
// frame reader, reframer, and every per-type payload decoder — asserting the
// codec never panics, fails only with typed errors, and that anything it
// accepts re-encodes stably: decode→encode→decode→encode yields identical
// bytes, so an accepted frame has one canonical form.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with one valid frame of every type so the fuzzer starts from
	// well-formed inputs and mutates toward the edges.
	e := GetEncoder()
	rng := rand.New(rand.NewSource(42))
	slot := randomSlot(rng, 16)
	f.Add(append([]byte(nil), e.AppendSlot(&slot)...))
	f.Add(append([]byte(nil), e.AppendMeta(&wire.StreamMeta{
		D: 16, G: 64, Workload: "permutation", Slots: 17, Fragments: 40,
		Strategy: "theorem2", Fingerprint: "aabbccdd", RequestID: "r1",
	})...))
	f.Add(append([]byte(nil), e.AppendDone(&wire.StreamDone{Slots: 17, Fragments: 40})...))
	f.Add(append([]byte(nil), e.AppendError("backend on fire")...))
	req := wire.RouteRequest{D: 4, G: 8, Pi: []int{1, 0, 3, 2}, Strategy: "greedy"}
	f.Add(append([]byte(nil), e.AppendRequest(&req)...))
	resp := wire.RouteResponse{D: 4, G: 8, Plans: []wire.PlanResult{{Strategy: "greedy", Slots: 4, Rounds: 1, Fingerprint: "00ff"}}}
	f.Add(append([]byte(nil), e.AppendResponse(&resp)...))
	PutEncoder(e)
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data))
		for {
			typ, payload, err := d.ReadFrame()
			if err != nil {
				// Any failure must be a clean EOF at a frame boundary or a
				// typed corrupt-frame error — never a raw io error or panic.
				if err != io.EOF && !errors.Is(err, ErrCorruptFrame) {
					t.Fatalf("ReadFrame: untyped error %v", err)
				}
				break
			}
			checkReencodeStable(t, typ, payload)
		}

		// The reframer must agree with the decoder on where frames end.
		rf := NewReframer(bytes.NewReader(data))
		for {
			frame, err := rf.Next()
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrCorruptFrame) {
					t.Fatalf("Reframer.Next: untyped error %v", err)
				}
				break
			}
			if len(frame) < 3 {
				t.Fatalf("Reframer relayed a %d-byte frame", len(frame))
			}
		}
	})
}

// checkReencodeStable decodes one accepted payload; when the decode succeeds
// it re-encodes, decodes the re-encoding, and re-encodes again, asserting the
// two generations are byte-identical. (The first decode may accept
// non-minimal varint spellings, so generation-one bytes are the canonical
// form, not the input.)
func checkReencodeStable(t *testing.T, typ byte, payload []byte) {
	t.Helper()
	gen1 := encodeDecoded(t, typ, payload, true)
	if gen1 == nil {
		return // decode rejected the payload with a typed error
	}
	d := NewDecoder(bytes.NewReader(gen1))
	typ2, payload2, err := d.ReadFrame()
	if err != nil || typ2 != typ {
		t.Fatalf("type %d: canonical frame failed to re-read: typ=%d err=%v", typ, typ2, err)
	}
	gen2 := encodeDecoded(t, typ, payload2, false)
	if !bytes.Equal(gen1, gen2) {
		t.Fatalf("type %d re-encode unstable:\n gen1 %x\n gen2 %x", typ, gen1, gen2)
	}
}

// encodeDecoded decodes payload as frame type typ and returns a copy of its
// re-encoded frame. A decode failure returns nil when lenient (after
// asserting the error is typed) and fails the test otherwise.
func encodeDecoded(t *testing.T, typ byte, payload []byte, lenient bool) []byte {
	t.Helper()
	fail := func(err error) []byte {
		if !lenient {
			t.Fatalf("type %d: canonical payload failed to decode: %v", typ, err)
		}
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("type %d: decode failure not tagged ErrCorruptFrame: %v", typ, err)
		}
		return nil
	}
	e := GetEncoder()
	defer PutEncoder(e)
	switch typ {
	case FrameSlot:
		var s wire.StreamSlot
		if err := DecodeSlot(payload, &s); err != nil {
			return fail(err)
		}
		return append([]byte(nil), e.AppendSlot(&s)...)
	case FrameMeta:
		var m wire.StreamMeta
		if err := DecodeMeta(payload, &m); err != nil {
			return fail(err)
		}
		return append([]byte(nil), e.AppendMeta(&m)...)
	case FrameDone:
		var dn wire.StreamDone
		if err := DecodeDone(payload, &dn); err != nil {
			return fail(err)
		}
		return append([]byte(nil), e.AppendDone(&dn)...)
	case FrameError:
		msg, err := DecodeError(payload)
		if err != nil {
			return fail(err)
		}
		return append([]byte(nil), e.AppendError(msg)...)
	case FrameRequest:
		var r wire.RouteRequest
		if err := DecodeRequest(payload, &r); err != nil {
			return fail(err)
		}
		return append([]byte(nil), e.AppendRequest(&r)...)
	case FrameResponse:
		var r wire.RouteResponse
		if err := DecodeResponse(payload, &r); err != nil {
			return fail(err)
		}
		return append([]byte(nil), e.AppendResponse(&r)...)
	default:
		// Unknown frame types pass through ReadFrame (forward compatibility
		// for relays); there is nothing to re-encode.
		return nil
	}
}
