package wirebin

import (
	"pops/internal/popsnet"
	"pops/internal/wire"
)

// Flag bits of the per-frame flags byte. Each frame type documents which
// bits it uses; unused bits must be zero.
const (
	flagFinal      byte = 1 << 0 // slot: last fragment of its slot
	flagCached     byte = 1 << 1 // meta, plan: answered from the plan cache
	flagSchedule   byte = 1 << 2 // request: include_schedule; plan: schedule present
	flagFaults     byte = 1 << 3 // request: fault set present
	flagError      byte = 1 << 4 // plan: error text present (plan fields zero)
	flagUnroutable byte = 1 << 5 // plan: unroutable info present
	flagSeveredSrc byte = 1 << 6 // unroutable: source side severed
	flagSeveredDst byte = 1 << 7 // unroutable: destination side severed
)

// AppendMeta encodes a stream's opening meta record. The returned slice
// aliases the Encoder's buffer.
func (e *Encoder) AppendMeta(m *wire.StreamMeta) []byte {
	e.begin(FrameMeta)
	e.uvarint(uint64(m.D))
	e.uvarint(uint64(m.G))
	e.str(m.Workload)
	e.uvarint(uint64(m.Slots))
	e.uvarint(uint64(m.Fragments))
	e.str(m.Strategy)
	e.str(m.Fingerprint)
	var flags byte
	if m.Cached {
		flags |= flagCached
	}
	e.byteVal(flags)
	e.str(m.RequestID)
	return e.finish()
}

// DecodeMeta fills m from a FrameMeta payload.
func DecodeMeta(payload []byte, m *wire.StreamMeta) error {
	r := reader{b: payload}
	m.D = int(r.uvarint())
	m.G = int(r.uvarint())
	m.Workload = r.str()
	m.Slots = int(r.uvarint())
	m.Fragments = int(r.uvarint())
	m.Strategy = r.str()
	m.Fingerprint = r.str()
	m.Cached = r.byteVal()&flagCached != 0
	m.RequestID = r.str()
	return r.done()
}

// AppendSlot encodes one slot fragment — the per-record hot path. Allocation
// free once the Encoder's buffer has grown to the largest fragment.
func (e *Encoder) AppendSlot(s *wire.StreamSlot) []byte {
	e.begin(FrameSlot)
	e.uvarint(uint64(s.Slot))
	e.varint(int64(s.Color))
	e.uvarint(uint64(s.Offset))
	var flags byte
	if s.Final {
		flags |= flagFinal
	}
	e.byteVal(flags)
	e.uvarint(uint64(len(s.Sends)))
	for i := range s.Sends {
		e.uvarint(uint64(s.Sends[i].Src))
		e.uvarint(uint64(s.Sends[i].DestGroup))
		e.uvarint(uint64(s.Sends[i].Packet))
	}
	e.uvarint(uint64(len(s.Recvs)))
	for i := range s.Recvs {
		e.uvarint(uint64(s.Recvs[i].Proc))
		e.uvarint(uint64(s.Recvs[i].SrcGroup))
	}
	return e.finish()
}

// DecodeSlot fills s from a FrameSlot payload, reusing s.Sends and s.Recvs
// capacity — the per-record decode allocates nothing once the caller's
// record has seen the stream's largest fragment.
func DecodeSlot(payload []byte, s *wire.StreamSlot) error {
	r := reader{b: payload}
	s.Slot = int(r.uvarint())
	s.Color = int(r.varint())
	s.Offset = int(r.uvarint())
	s.Final = r.byteVal()&flagFinal != 0
	s.Sends, s.Recvs = decodeSendsRecvs(&r, s.Sends, s.Recvs)
	return r.done()
}

// decodeSendsRecvs reads a sends block and a recvs block into the given
// slices, reusing their capacity.
func decodeSendsRecvs(r *reader, sends []popsnet.Send, recvs []popsnet.Recv) ([]popsnet.Send, []popsnet.Recv) {
	nSends := r.count()
	sends = sends[:0]
	for i := 0; i < nSends && r.err == nil; i++ {
		sends = append(sends, popsnet.Send{
			Src:       int(r.uvarint()),
			DestGroup: int(r.uvarint()),
			Packet:    int(r.uvarint()),
		})
	}
	nRecvs := r.count()
	recvs = recvs[:0]
	for i := 0; i < nRecvs && r.err == nil; i++ {
		recvs = append(recvs, popsnet.Recv{
			Proc:     int(r.uvarint()),
			SrcGroup: int(r.uvarint()),
		})
	}
	return sends, recvs
}

// AppendDone encodes a stream's closing record.
func (e *Encoder) AppendDone(d *wire.StreamDone) []byte {
	e.begin(FrameDone)
	e.uvarint(uint64(d.Slots))
	e.uvarint(uint64(d.Fragments))
	return e.finish()
}

// DecodeDone fills d from a FrameDone payload.
func DecodeDone(payload []byte, d *wire.StreamDone) error {
	r := reader{b: payload}
	d.Slots = int(r.uvarint())
	d.Fragments = int(r.uvarint())
	return r.done()
}

// AppendError encodes an in-band error record (mid-stream planning failure,
// or a relay reporting a dead backend).
func (e *Encoder) AppendError(msg string) []byte {
	e.begin(FrameError)
	e.str(msg)
	return e.finish()
}

// DecodeError extracts the error text of a FrameError payload.
func DecodeError(payload []byte) (string, error) {
	r := reader{b: payload}
	msg := r.str()
	return msg, r.done()
}

// AppendRequest encodes a unary route request body.
func (e *Encoder) AppendRequest(req *wire.RouteRequest) []byte {
	e.begin(FrameRequest)
	e.uvarint(uint64(req.D))
	e.uvarint(uint64(req.G))
	e.str(req.Workload)
	e.str(req.Tenant)
	e.str(req.Strategy)
	e.uvarint(uint64(req.Speaker))
	var flags byte
	if req.IncludeSchedule {
		flags |= flagSchedule
	}
	if req.Faults != nil {
		flags |= flagFaults
	}
	e.byteVal(flags)
	e.ints(req.Pi)
	e.uvarint(uint64(len(req.Pis)))
	for _, pi := range req.Pis {
		e.ints(pi)
	}
	e.uvarint(uint64(len(req.Requests)))
	for i := range req.Requests {
		e.uvarint(uint64(req.Requests[i].Src))
		e.uvarint(uint64(req.Requests[i].Dst))
	}
	if req.Faults != nil {
		e.uvarint(uint64(len(req.Faults.Couplers)))
		for i := range req.Faults.Couplers {
			e.uvarint(uint64(req.Faults.Couplers[i].B))
			e.uvarint(uint64(req.Faults.Couplers[i].A))
		}
		e.ints(req.Faults.Groups)
	}
	return e.finish()
}

// DecodeRequest fills req from a FrameRequest payload.
func DecodeRequest(payload []byte, req *wire.RouteRequest) error {
	r := reader{b: payload}
	req.D = int(r.uvarint())
	req.G = int(r.uvarint())
	req.Workload = r.str()
	req.Tenant = r.str()
	req.Strategy = r.str()
	req.Speaker = int(r.uvarint())
	flags := r.byteVal()
	req.IncludeSchedule = flags&flagSchedule != 0
	req.Pi = r.ints()
	nPis := r.count()
	req.Pis = nil
	for i := 0; i < nPis && r.err == nil; i++ {
		req.Pis = append(req.Pis, r.ints())
	}
	nReqs := r.count()
	req.Requests = nil
	for i := 0; i < nReqs && r.err == nil; i++ {
		req.Requests = append(req.Requests, wire.Request{
			Src: int(r.uvarint()),
			Dst: int(r.uvarint()),
		})
	}
	req.Faults = nil
	if flags&flagFaults != 0 {
		fs := &wire.FaultSet{}
		nCouplers := r.count()
		for i := 0; i < nCouplers && r.err == nil; i++ {
			fs.Couplers = append(fs.Couplers, wire.Coupler{
				B: int(r.uvarint()),
				A: int(r.uvarint()),
			})
		}
		fs.Groups = r.ints()
		req.Faults = fs
	}
	return r.done()
}

// AppendResponse encodes a unary route response body.
func (e *Encoder) AppendResponse(resp *wire.RouteResponse) []byte {
	e.begin(FrameResponse)
	e.uvarint(uint64(resp.D))
	e.uvarint(uint64(resp.G))
	e.str(resp.RequestID)
	e.uvarint(uint64(len(resp.Plans)))
	for i := range resp.Plans {
		e.appendPlan(&resp.Plans[i])
	}
	return e.finish()
}

// appendPlan encodes one PlanResult of a response frame.
func (e *Encoder) appendPlan(p *wire.PlanResult) {
	var flags byte
	if p.Cached {
		flags |= flagCached
	}
	if p.Error != "" {
		flags |= flagError
	}
	if p.Unroutable != nil {
		flags |= flagUnroutable
	}
	if p.Schedule != nil {
		flags |= flagSchedule
	}
	e.byteVal(flags)
	e.str(p.Strategy)
	e.str(p.Workload)
	e.uvarint(uint64(p.Slots))
	e.uvarint(uint64(p.Rounds))
	e.uvarint(uint64(p.H))
	e.str(p.Fingerprint)
	e.str(p.Error)
	if p.Unroutable != nil {
		u := p.Unroutable
		var uflags byte
		if u.SeveredSrc {
			uflags |= flagSeveredSrc
		}
		if u.SeveredDst {
			uflags |= flagSeveredDst
		}
		e.byteVal(uflags)
		e.uvarint(uint64(u.Packet))
		e.uvarint(uint64(u.SrcGroup))
		e.uvarint(uint64(u.DstGroup))
	}
	if p.Schedule != nil {
		e.uvarint(uint64(p.Schedule.Net.D))
		e.uvarint(uint64(p.Schedule.Net.G))
		e.uvarint(uint64(len(p.Schedule.Slots)))
		for i := range p.Schedule.Slots {
			slot := &p.Schedule.Slots[i]
			e.uvarint(uint64(len(slot.Sends)))
			for j := range slot.Sends {
				e.uvarint(uint64(slot.Sends[j].Src))
				e.uvarint(uint64(slot.Sends[j].DestGroup))
				e.uvarint(uint64(slot.Sends[j].Packet))
			}
			e.uvarint(uint64(len(slot.Recvs)))
			for j := range slot.Recvs {
				e.uvarint(uint64(slot.Recvs[j].Proc))
				e.uvarint(uint64(slot.Recvs[j].SrcGroup))
			}
		}
	}
}

// DecodeResponse fills resp from a FrameResponse payload.
func DecodeResponse(payload []byte, resp *wire.RouteResponse) error {
	r := reader{b: payload}
	resp.D = int(r.uvarint())
	resp.G = int(r.uvarint())
	resp.RequestID = r.str()
	nPlans := r.count()
	resp.Plans = make([]wire.PlanResult, 0, nPlans)
	for i := 0; i < nPlans && r.err == nil; i++ {
		resp.Plans = append(resp.Plans, decodePlan(&r))
	}
	return r.done()
}

// decodePlan decodes one PlanResult of a response frame.
func decodePlan(r *reader) wire.PlanResult {
	flags := r.byteVal()
	p := wire.PlanResult{
		Cached:   flags&flagCached != 0,
		Strategy: r.str(),
		Workload: r.str(),
		Slots:    int(r.uvarint()),
		Rounds:   int(r.uvarint()),
		H:        int(r.uvarint()),
	}
	p.Fingerprint = r.str()
	p.Error = r.str()
	if flags&flagError != 0 && p.Error == "" && r.err == nil {
		r.fail("plan flagged as error carries no error text")
	}
	if flags&flagUnroutable != 0 {
		uflags := r.byteVal()
		p.Unroutable = &wire.UnroutableInfo{
			SeveredSrc: uflags&flagSeveredSrc != 0,
			SeveredDst: uflags&flagSeveredDst != 0,
			Packet:     int(r.uvarint()),
			SrcGroup:   int(r.uvarint()),
			DstGroup:   int(r.uvarint()),
		}
	}
	if flags&flagSchedule != 0 {
		d := int(r.uvarint())
		g := int(r.uvarint())
		nSlots := r.count()
		sched := &popsnet.Schedule{Net: popsnet.Network{D: d, G: g}}
		sched.Slots = make([]popsnet.Slot, 0, nSlots)
		for i := 0; i < nSlots && r.err == nil; i++ {
			sends, recvs := decodeSendsRecvs(r, nil, nil)
			sched.Slots = append(sched.Slots, popsnet.Slot{Sends: sends, Recvs: recvs})
		}
		p.Schedule = sched
	}
	return p
}
