// Package bitvec provides the dense bit-vector membership sets used by the
// allocation-free edge-coloring engine. A Vec packs 64 membership bits per
// word, so the hot scans of the planner (matched-edge membership during
// class compaction, visited-edge marks during Euler tours) walk whole words
// with math/bits instead of hashing into map[int]bool — the word-at-a-time
// counterpart of the SIMD adjacency-walk item on the roadmap.
//
// Vecs are plain []uint64 slices so callers can keep them inside reusable
// arenas: Resize grows in place when capacity allows and clears the live
// prefix, making the steady state allocation-free.
package bitvec

import "math/bits"

// Vec is a fixed-capacity bit vector. The value semantics are those of a
// slice: copies alias the same words.
type Vec []uint64

const wordBits = 64

// Words returns the number of 64-bit words needed for n bits.
func Words(n int) int { return (n + wordBits - 1) / wordBits }

// Make returns a zeroed Vec with capacity for n bits.
func Make(n int) Vec { return make(Vec, Words(n)) }

// Resize returns a zeroed Vec with capacity for n bits, reusing v's storage
// when it is large enough. Use it to recycle a scratch set across calls:
//
//	v = v.Resize(m) // all bits clear, no allocation once warm
func (v Vec) Resize(n int) Vec {
	w := Words(n)
	if cap(v) < w {
		return make(Vec, w)
	}
	v = v[:w]
	v.Reset()
	return v
}

// Reset clears every bit.
func (v Vec) Reset() {
	for i := range v {
		v[i] = 0
	}
}

// Set sets bit i.
func (v Vec) Set(i int) { v[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Clear clears bit i.
func (v Vec) Clear(i int) { v[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Test reports whether bit i is set.
func (v Vec) Test(i int) bool { return v[i/wordBits]&(1<<(uint(i)%wordBits)) != 0 }

// Count returns the number of set bits among the first n.
func (v Vec) Count(n int) int {
	full := n / wordBits
	total := 0
	for i := 0; i < full; i++ {
		total += bits.OnesCount64(v[i])
	}
	if rem := n % wordBits; rem > 0 {
		total += bits.OnesCount64(v[full] & (1<<uint(rem) - 1))
	}
	return total
}

// AppendSet appends the indices of the set bits among the first n to dst and
// returns the extended slice. The scan is a word walk: zero words cost one
// comparison, and set bits are located with TrailingZeros64.
func (v Vec) AppendSet(dst []int, n int) []int {
	for wi, w := range v[:Words(n)] {
		base := wi * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			i := base + b
			if i >= n {
				return dst
			}
			dst = append(dst, i)
			w &= w - 1
		}
	}
	return dst
}

// AppendClear appends the indices of the clear bits among the first n to dst
// and returns the extended slice — the complement walk used to collect the
// unmatched edges of a color class without a per-edge map lookup.
func (v Vec) AppendClear(dst []int, n int) []int {
	for wi, w := range v[:Words(n)] {
		base := wi * wordBits
		w = ^w
		for w != 0 {
			b := bits.TrailingZeros64(w)
			i := base + b
			if i >= n {
				return dst
			}
			dst = append(dst, i)
			w &= w - 1
		}
	}
	return dst
}
