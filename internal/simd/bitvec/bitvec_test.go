package bitvec

import (
	"math/rand"
	"testing"
)

func TestSetClearTest(t *testing.T) {
	v := Make(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if v.Test(i) {
			t.Fatalf("bit %d set in fresh vec", i)
		}
		v.Set(i)
		if !v.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	v.Clear(64)
	if v.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if !v.Test(65) || !v.Test(63) {
		t.Fatal("Clear disturbed neighbouring bits")
	}
}

func TestResizeReusesStorage(t *testing.T) {
	v := Make(1024)
	v.Set(500)
	w := v.Resize(512)
	if &w[0] != &v[0] {
		t.Fatal("Resize reallocated despite sufficient capacity")
	}
	if w.Test(500) {
		t.Fatal("Resize did not clear live bits")
	}
	big := w.Resize(100000)
	if len(big) != Words(100000) {
		t.Fatalf("Resize(100000) length %d, want %d", len(big), Words(100000))
	}
}

func TestCountAndWalksAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(300) + 1
		v := Make(n)
		ref := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				v.Set(i)
				ref[i] = true
			}
		}
		wantCount := 0
		var wantSet, wantClear []int
		for i, b := range ref {
			if b {
				wantCount++
				wantSet = append(wantSet, i)
			} else {
				wantClear = append(wantClear, i)
			}
		}
		if got := v.Count(n); got != wantCount {
			t.Fatalf("n=%d: Count=%d want %d", n, got, wantCount)
		}
		gotSet := v.AppendSet(nil, n)
		gotClear := v.AppendClear(nil, n)
		if !equalInts(gotSet, wantSet) {
			t.Fatalf("n=%d: AppendSet=%v want %v", n, gotSet, wantSet)
		}
		if !equalInts(gotClear, wantClear) {
			t.Fatalf("n=%d: AppendClear=%v want %v", n, gotClear, wantClear)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
