// Package simd provides the execution harness shared by the application-
// level simulations (hypercube, mesh, matrix multiplication): a wrapper
// around a POPS network that moves SIMD register values by planning each
// data movement as a permutation with the Theorem 2 router, replaying the
// schedule on the popsnet simulator as an oracle, and accumulating the slot
// cost. Applications thus pay — and report — exactly the slot counts the
// paper's theory predicts.
package simd

import (
	"fmt"

	"pops/internal/core"
	"pops/internal/popsnet"
)

// Router executes data movements on a POPS network, charging slots.
type Router struct {
	Net  popsnet.Network
	Opts core.Options
	// Slots accumulates the verified slot cost of all operations.
	Slots int
	// Moves counts permutation routings performed.
	Moves int
	// SkipReplay disables the simulator replay of every schedule (the plans
	// are still constructed). Benchmarks use it to time planning alone;
	// tests keep the oracle on.
	SkipReplay bool
}

// NewRouter builds a router for POPS(d, g).
func NewRouter(d, g int, opts core.Options) (*Router, error) {
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		return nil, err
	}
	return &Router{Net: nw, Opts: opts}, nil
}

// Permute routes values according to pi: after the call,
// values[pi[p]] = old values[p] for every processor p. The movement is
// planned with Theorem 2, verified on the simulator, and charged
// core.OptimalSlots(d, g) slots.
func (r *Router) Permute(values []int64, pi []int) error {
	if len(values) != r.Net.N() {
		return fmt.Errorf("simd: %d values on %d processors", len(values), r.Net.N())
	}
	plan, err := core.PlanRoute(r.Net.D, r.Net.G, pi, r.Opts)
	if err != nil {
		return err
	}
	if !r.SkipReplay {
		if _, err := plan.Verify(); err != nil {
			return fmt.Errorf("simd: schedule failed simulation: %w", err)
		}
	}
	r.Slots += plan.SlotCount()
	r.Moves++
	out := make([]int64, len(values))
	for p, v := range values {
		out[pi[p]] = v
	}
	copy(values, out)
	return nil
}

// Broadcast copies values[src] into every processor using the paper's
// one-slot one-to-all pattern (Section 1), charging one slot.
func (r *Router) Broadcast(values []int64, src int) error {
	if len(values) != r.Net.N() {
		return fmt.Errorf("simd: %d values on %d processors", len(values), r.Net.N())
	}
	if !r.Net.ValidProc(src) {
		return fmt.Errorf("simd: broadcast source %d out of range", src)
	}
	if !r.SkipReplay {
		sched, err := popsnet.OneToAll(r.Net, src, src)
		if err != nil {
			return err
		}
		if _, _, err := popsnet.Run(sched); err != nil {
			return fmt.Errorf("simd: broadcast failed simulation: %w", err)
		}
	}
	r.Slots++
	r.Moves++
	v := values[src]
	for i := range values {
		values[i] = v
	}
	return nil
}
