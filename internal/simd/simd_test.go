package simd

import (
	"testing"

	"pops/internal/core"
	"pops/internal/perms"
)

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(0, 2, core.Options{}); err == nil {
		t.Fatal("invalid shape accepted")
	}
}

func TestPermuteMovesValuesAndCharges(t *testing.T) {
	r, err := NewRouter(2, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{10, 20, 30, 40}
	pi := perms.VectorReversal(4)
	if err := r.Permute(vals, pi); err != nil {
		t.Fatal(err)
	}
	want := []int64{40, 30, 20, 10}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	if r.Slots != core.OptimalSlots(2, 2) {
		t.Fatalf("slots = %d, want %d", r.Slots, core.OptimalSlots(2, 2))
	}
	if r.Moves != 1 {
		t.Fatalf("moves = %d, want 1", r.Moves)
	}
}

func TestPermuteValidation(t *testing.T) {
	r, err := NewRouter(2, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Permute([]int64{1}, perms.Identity(4)); err == nil {
		t.Fatal("short values accepted")
	}
	if err := r.Permute(make([]int64, 4), []int{0, 0, 1, 1}); err == nil {
		t.Fatal("non-permutation accepted")
	}
}

func TestBroadcast(t *testing.T) {
	r, err := NewRouter(2, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{1, 2, 3, 4, 5, 6}
	if err := r.Broadcast(vals, 3); err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != 4 {
			t.Fatalf("vals[%d] = %d after broadcast, want 4", i, v)
		}
	}
	if r.Slots != 1 {
		t.Fatalf("slots = %d, want 1", r.Slots)
	}
	if err := r.Broadcast(vals, 99); err == nil {
		t.Fatal("invalid source accepted")
	}
	if err := r.Broadcast(vals[:2], 0); err == nil {
		t.Fatal("short values accepted")
	}
}

func TestSkipReplayStillCharges(t *testing.T) {
	r, err := NewRouter(2, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r.SkipReplay = true
	vals := make([]int64, 4)
	if err := r.Permute(vals, perms.VectorReversal(4)); err != nil {
		t.Fatal(err)
	}
	if err := r.Broadcast(vals, 0); err != nil {
		t.Fatal(err)
	}
	if r.Slots != core.OptimalSlots(2, 2)+1 {
		t.Fatalf("slots = %d", r.Slots)
	}
}
