package popsnet

import "fmt"

// PermuteWithinGroups builds the one-slot schedule in which every group
// independently permutes its own packets through its diagonal coupler
// c(a, a)… which carries only one packet per slot, so a within-group
// permutation needs d slots via couplers alone. Instead, the standard POPS
// realization (Gravenstreter & Melhem) spreads each group's packets across
// all g couplers c(·, a) in one slot and gathers them back in a second —
// exactly the Theorem 2 two-phase shape. This helper builds the d-slot
// diagonal-coupler schedule, the baseline that motivates relaying.
//
// inner[a] is the permutation applied inside group a (length d, local
// indices); nil entries mean identity (those packets do not move).
func PermuteWithinGroups(nw Network, inner [][]int) (*Schedule, error) {
	if len(inner) != nw.G {
		return nil, fmt.Errorf("popsnet: %d inner permutations for %d groups", len(inner), nw.G)
	}
	// Collect per-group moves; slot k carries the k-th move of each group.
	moves := make([][][2]int, nw.G) // group -> list of (srcLocal, dstLocal)
	maxMoves := 0
	for a, tau := range inner {
		if tau == nil {
			continue
		}
		if len(tau) != nw.D {
			return nil, fmt.Errorf("popsnet: inner permutation %d has %d entries, want %d", a, len(tau), nw.D)
		}
		seen := make([]bool, nw.D)
		for i, v := range tau {
			if v < 0 || v >= nw.D || seen[v] {
				return nil, fmt.Errorf("popsnet: inner permutation %d is not a permutation", a)
			}
			seen[v] = true
			if v != i {
				moves[a] = append(moves[a], [2]int{i, v})
			}
		}
		if len(moves[a]) > maxMoves {
			maxMoves = len(moves[a])
		}
	}
	sched := &Schedule{Net: nw, Slots: make([]Slot, maxMoves)}
	for a := 0; a < nw.G; a++ {
		for k, mv := range moves[a] {
			src := nw.Proc(a, mv[0])
			dst := nw.Proc(a, mv[1])
			sched.Slots[k].Sends = append(sched.Slots[k].Sends, Send{Src: src, DestGroup: a, Packet: src})
			sched.Slots[k].Recvs = append(sched.Slots[k].Recvs, Recv{Proc: dst, SrcGroup: a})
		}
	}
	return sched, nil
}

// GroupBroadcast builds the one-slot schedule in which one speaker per group
// broadcasts to every processor of its own group via the diagonal coupler
// c(a, a). speakers[a] is the local index of group a's speaker.
func GroupBroadcast(nw Network, speakers []int) (*Schedule, error) {
	if len(speakers) != nw.G {
		return nil, fmt.Errorf("popsnet: %d speakers for %d groups", len(speakers), nw.G)
	}
	slot := Slot{}
	for a, local := range speakers {
		if local < 0 || local >= nw.D {
			return nil, fmt.Errorf("popsnet: speaker %d of group %d out of range", local, a)
		}
		src := nw.Proc(a, local)
		slot.Sends = append(slot.Sends, Send{Src: src, DestGroup: a, Packet: src})
		for i := 0; i < nw.D; i++ {
			slot.Recvs = append(slot.Recvs, Recv{Proc: nw.Proc(a, i), SrcGroup: a})
		}
	}
	return &Schedule{Net: nw, Slots: []Slot{slot}}, nil
}

// Stats summarizes the resource usage of a schedule.
type Stats struct {
	Slots         int
	Sends         int
	Recvs         int
	CouplersUsed  int     // distinct (slot, coupler) pairs
	MaxCouplers   int     // couplers available per slot, g²
	Utilization   float64 // CouplersUsed / (Slots · g²)
	BroadcastOnly bool    // true if some sender drove >1 coupler in a slot
}

// ComputeStats walks the schedule and returns its Stats. It does not
// validate the schedule; use Run for that.
func ComputeStats(s *Schedule) Stats {
	st := Stats{Slots: len(s.Slots), MaxCouplers: s.Net.Couplers()}
	for _, slot := range s.Slots {
		st.Sends += len(slot.Sends)
		st.Recvs += len(slot.Recvs)
		used := make(map[int]bool)
		perSender := make(map[int]int)
		for _, snd := range slot.Sends {
			used[s.Net.CouplerID(snd.DestGroup, s.Net.Group(snd.Src))] = true
			perSender[snd.Src]++
			if perSender[snd.Src] > 1 {
				st.BroadcastOnly = true
			}
		}
		st.CouplersUsed += len(used)
	}
	if st.Slots > 0 {
		st.Utilization = float64(st.CouplersUsed) / float64(st.Slots*st.MaxCouplers)
	}
	return st
}
