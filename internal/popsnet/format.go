package popsnet

import (
	"fmt"
	"io"
)

// Format writes a human-readable listing of the schedule: one block per
// slot, sends first (with the coupler each drives), then receives (with the
// coupler each reads). The output is deterministic and is used by the
// popsroute CLI and by golden tests of worked examples.
func (s *Schedule) Format(w io.Writer) error {
	for i, slot := range s.Slots {
		if _, err := fmt.Fprintf(w, "slot %d:\n", i); err != nil {
			return err
		}
		for _, snd := range slot.Sends {
			if _, err := fmt.Fprintf(w, "  proc %3d sends packet %3d on c(%d,%d)\n",
				snd.Src, snd.Packet, snd.DestGroup, s.Net.Group(snd.Src)); err != nil {
				return err
			}
		}
		for _, rcv := range slot.Recvs {
			if _, err := fmt.Fprintf(w, "  proc %3d reads c(%d,%d)\n",
				rcv.Proc, s.Net.Group(rcv.Proc), rcv.SrcGroup); err != nil {
				return err
			}
		}
	}
	return nil
}
