package popsnet

import (
	"errors"
	"fmt"
	"sort"
)

// Coupler names one optical passive star coupler c(B, A): the d processors
// of group A are its sources, the d processors of group B its destinations.
type Coupler struct {
	B int // destination group
	A int // source group
}

// String formats the coupler in the paper's c(b, a) notation.
func (c Coupler) String() string { return fmt.Sprintf("c(%d,%d)", c.B, c.A) }

// FaultSet declares dead hardware: individual dead couplers, and dead groups
// as sugar for killing a whole coupler row and column (a dead group can
// neither source nor sink light — every c(·, a) and c(a, ·) is gone).
//
// The zero value means a fault-free network. Declarations may repeat or
// overlap (a coupler already covered by a dead group is allowed); Canonical
// normalizes the representation so two spellings of the same set compare and
// fingerprint identically.
type FaultSet struct {
	Couplers []Coupler
	Groups   []int
}

// Empty reports whether the set declares no faults at all.
func (fs FaultSet) Empty() bool { return len(fs.Couplers) == 0 && len(fs.Groups) == 0 }

// Validate checks every declared coupler and group against the shape.
func (fs FaultSet) Validate(nw Network) error {
	for _, c := range fs.Couplers {
		if !nw.ValidGroup(c.B) || !nw.ValidGroup(c.A) {
			return fmt.Errorf("popsnet: fault set names coupler %v outside %v", c, nw)
		}
	}
	for _, x := range fs.Groups {
		if !nw.ValidGroup(x) {
			return fmt.Errorf("popsnet: fault set names group %d outside %v", x, nw)
		}
	}
	return nil
}

// Canonical returns a normalized copy: couplers sorted by (B, A) and
// deduplicated, groups sorted and deduplicated. The receiver is not modified.
func (fs FaultSet) Canonical() FaultSet {
	out := FaultSet{}
	if len(fs.Couplers) > 0 {
		cs := append([]Coupler(nil), fs.Couplers...)
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].B != cs[j].B {
				return cs[i].B < cs[j].B
			}
			return cs[i].A < cs[j].A
		})
		out.Couplers = cs[:0]
		for i, c := range cs {
			if i == 0 || c != cs[i-1] {
				out.Couplers = append(out.Couplers, c)
			}
		}
	}
	if len(fs.Groups) > 0 {
		gs := append([]int(nil), fs.Groups...)
		sort.Ints(gs)
		out.Groups = gs[:0]
		for i, x := range gs {
			if i == 0 || x != gs[i-1] {
				out.Groups = append(out.Groups, x)
			}
		}
	}
	return out
}

// AppendIdent flattens the set into dst for fingerprinting:
// [len(couplers), b0, a0, b1, a1, ..., len(groups), g0, g1, ...].
// Canonicalize first if two spellings of one set must key identically.
func (fs FaultSet) AppendIdent(dst []int) []int {
	dst = append(dst, len(fs.Couplers))
	for _, c := range fs.Couplers {
		dst = append(dst, c.B, c.A)
	}
	dst = append(dst, len(fs.Groups))
	return append(dst, fs.Groups...)
}

// Compile validates the set against the shape and returns the fault-injected
// network with every declared coupler and group killed.
func (fs FaultSet) Compile(nw Network) (*FaultyNetwork, error) {
	if err := fs.Validate(nw); err != nil {
		return nil, err
	}
	fn := NewFaultyNetwork(nw)
	for _, c := range fs.Couplers {
		fn.KillCoupler(c.B, c.A)
	}
	for _, x := range fs.Groups {
		fn.KillGroup(x)
	}
	return fn, nil
}

// ErrDeadCoupler is the slot-model violation for fault injection: a send
// drove — or a receiver tuned to — a coupler that is dead.
var ErrDeadCoupler = errors.New("slot uses a dead coupler")

// FaultyNetwork is a POPS(d, g) network with a mutable set of dead couplers.
// It is the injection point for fault simulation: replaying a schedule
// against it rejects any slot that drives a dead coupler, and KillCoupler
// may be called between slots (see Replayer) to model mid-trace fault
// arrival. The zero set of faults behaves exactly like the plain network.
type FaultyNetwork struct {
	nw        Network
	dead      []bool // CouplerID -> dead
	deadCount int
	rowDead   []int // destination group b -> number of dead couplers c(b, ·)
	colDead   []int // source group a -> number of dead couplers c(·, a)
}

// NewFaultyNetwork returns a fault-injected view of nw with no dead couplers.
func NewFaultyNetwork(nw Network) *FaultyNetwork {
	return &FaultyNetwork{
		nw:      nw,
		dead:    make([]bool, nw.Couplers()),
		rowDead: make([]int, nw.G),
		colDead: make([]int, nw.G),
	}
}

// Network returns the underlying shape.
func (f *FaultyNetwork) Network() Network { return f.nw }

// Dead reports whether coupler c(b, a) is dead.
func (f *FaultyNetwork) Dead(b, a int) bool {
	return f.dead[f.nw.CouplerID(b, a)]
}

// DeadCount returns the number of dead couplers.
func (f *FaultyNetwork) DeadCount() int { return f.deadCount }

// KillCoupler marks coupler c(b, a) dead. Killing a dead coupler is a no-op.
// It returns an error only for an out-of-range coupler name.
func (f *FaultyNetwork) KillCoupler(b, a int) error {
	if !f.nw.ValidGroup(b) || !f.nw.ValidGroup(a) {
		return fmt.Errorf("popsnet: coupler %v outside %v", Coupler{B: b, A: a}, f.nw)
	}
	cid := f.nw.CouplerID(b, a)
	if !f.dead[cid] {
		f.dead[cid] = true
		f.deadCount++
		f.rowDead[b]++
		f.colDead[a]++
	}
	return nil
}

// KillGroup kills every coupler group x sources or sinks: the row c(x, ·)
// and the column c(·, x).
func (f *FaultyNetwork) KillGroup(x int) error {
	if !f.nw.ValidGroup(x) {
		return fmt.Errorf("popsnet: group %d outside %v", x, f.nw)
	}
	for y := 0; y < f.nw.G; y++ {
		_ = f.KillCoupler(x, y)
		_ = f.KillCoupler(y, x)
	}
	return nil
}

// SeveredSource reports whether group a has no alive transmit coupler left:
// every c(·, a) is dead, so nothing sent from a can leave it.
func (f *FaultyNetwork) SeveredSource(a int) bool { return f.colDead[a] == f.nw.G }

// SeveredDest reports whether group b has no alive receive coupler left:
// every c(b, ·) is dead, so nothing can reach b.
func (f *FaultyNetwork) SeveredDest(b int) bool { return f.rowDead[b] == f.nw.G }

// AliveRelay returns the smallest intermediate group j such that both hops of
// a two-slot relay from group a to group b survive: c(j, a) and c(b, j) are
// alive. ok is false when no such j exists — an (a → b) packet is unroutable
// by the two-hop construction.
func (f *FaultyNetwork) AliveRelay(a, b int) (j int, ok bool) {
	for j = 0; j < f.nw.G; j++ {
		if !f.Dead(j, a) && !f.Dead(b, j) {
			return j, true
		}
	}
	return -1, false
}

// Replayer steps a schedule one slot at a time against a fault-injected
// network, so faults can arrive mid-trace: call Network().KillCoupler between
// Step calls and the very next slot that touches the newly dead coupler is
// rejected with ErrDeadCoupler. This makes the simulator the oracle for
// fault plans — a plan survives a fault set exactly when every slot replays.
type Replayer struct {
	s    *Schedule
	st   *State
	fn   *FaultyNetwork
	tr   *Trace
	next int
}

// NewReplayer prepares a stepwise replay of s from the custom placement home
// (packet k at processor home[k]) on the fault-injected network fn. A nil fn
// replays fault-free.
func NewReplayer(s *Schedule, home []int, fn *FaultyNetwork) (*Replayer, error) {
	st, err := NewCustomState(s.Net, home)
	if err != nil {
		return nil, err
	}
	if fn != nil && fn.nw != s.Net {
		return nil, fmt.Errorf("popsnet: fault network %v does not match schedule network %v", fn.nw, s.Net)
	}
	return &Replayer{s: s, st: st, fn: fn, tr: &Trace{}}, nil
}

// Step validates and applies the next slot. It reports whether a slot was
// applied — false once the schedule is exhausted — and the first slot-model
// violation as a *SlotError.
func (r *Replayer) Step() (bool, error) {
	if r.next >= len(r.s.Slots) {
		return false, nil
	}
	i := r.next
	if err := step(r.st, &r.s.Slots[i], r.fn); err != nil {
		return false, &SlotError{Slot: i, Err: err}
	}
	r.next++
	r.tr.PacketsMoved = append(r.tr.PacketsMoved, len(r.s.Slots[i].Recvs))
	maxHeld := 0
	for p := range r.st.holding {
		if len(r.st.holding[p]) > maxHeld {
			maxHeld = len(r.st.holding[p])
		}
	}
	r.tr.MaxHeld = append(r.tr.MaxHeld, maxHeld)
	return true, nil
}

// SlotIndex returns the index of the next slot Step would apply.
func (r *Replayer) SlotIndex() int { return r.next }

// Network returns the fault-injected network, the handle for mid-trace
// KillCoupler/KillGroup calls. It is nil for a fault-free replay.
func (r *Replayer) Network() *FaultyNetwork { return r.fn }

// State returns the live state (shared, not a copy).
func (r *Replayer) State() *State { return r.st }

// Trace returns the per-slot statistics accumulated so far.
func (r *Replayer) Trace() *Trace { return r.tr }

// RunFaulty replays the schedule from the canonical permutation-routing
// initial state on the fault-injected network fn, failing with a *SlotError
// wrapping ErrDeadCoupler on the first slot that uses a dead coupler.
func RunFaulty(s *Schedule, fn *FaultyNetwork) (*State, *Trace, error) {
	home := make([]int, s.Net.N())
	for p := range home {
		home[p] = p
	}
	return runFrom(s, home, fn)
}

// VerifyPermutationRoutedFaulty checks that the schedule delivers packet p to
// processor pi[p] for every p when replayed on the fault-injected network fn:
// full delivery with zero dead-coupler use.
func VerifyPermutationRoutedFaulty(s *Schedule, pi []int, fn *FaultyNetwork) (*Trace, error) {
	if len(pi) != s.Net.N() {
		return nil, fmt.Errorf("popsnet: permutation length %d, want %d", len(pi), s.Net.N())
	}
	st, tr, err := RunFaulty(s, fn)
	if err != nil {
		return nil, err
	}
	for p := 0; p < s.Net.N(); p++ {
		if !st.Holds(pi[p], p) {
			return nil, fmt.Errorf("popsnet: packet %d not delivered to processor %d (held by %d)",
				p, pi[p], st.where[p])
		}
	}
	return tr, nil
}
