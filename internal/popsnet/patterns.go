package popsnet

import "fmt"

// OneToAll returns the paper's one-slot broadcast schedule: the speaker
// sends its packet to all g couplers c(a, group(speaker)), and every
// processor (speaker included) tunes its receiver to coupler
// c(group(j), group(speaker)). The diameter-1 property of Section 1.
func OneToAll(nw Network, speaker, packet int) (*Schedule, error) {
	if !nw.ValidProc(speaker) {
		return nil, fmt.Errorf("popsnet: speaker %d out of range", speaker)
	}
	slot := Slot{}
	sg := nw.Group(speaker)
	for a := 0; a < nw.G; a++ {
		slot.Sends = append(slot.Sends, Send{Src: speaker, DestGroup: a, Packet: packet})
	}
	for j := 0; j < nw.N(); j++ {
		slot.Recvs = append(slot.Recvs, Recv{Proc: j, SrcGroup: sg})
	}
	return &Schedule{Net: nw, Slots: []Slot{slot}}, nil
}

// DirectSlot builds the single slot that sends packet p from processor
// src[p] straight to processor dst[p] for every listed packet, or an error
// description of why it cannot be done in one slot (coupler or receiver
// conflict). Both slices are indexed by position; entry i moves packet
// pkts[i] from src[i] to dst[i].
//
// This is the primitive behind Fact 1 (fairly distributed sets route in one
// slot) and the Gravenstreter–Melhem single-slot characterization.
func DirectSlot(nw Network, pkts, src, dst []int) (Slot, error) {
	if len(pkts) != len(src) || len(src) != len(dst) {
		return Slot{}, fmt.Errorf("popsnet: mismatched lengths %d/%d/%d", len(pkts), len(src), len(dst))
	}
	slot := Slot{}
	couplerBusy := make(map[int]bool, len(pkts))
	recvBusy := make(map[int]bool, len(pkts))
	srcBusy := make(map[int]bool, len(pkts))
	for i := range pkts {
		if !nw.ValidProc(src[i]) || !nw.ValidProc(dst[i]) {
			return Slot{}, fmt.Errorf("popsnet: transfer %d endpoints (%d→%d) out of range", i, src[i], dst[i])
		}
		a, b := nw.Group(src[i]), nw.Group(dst[i])
		cid := nw.CouplerID(b, a)
		if couplerBusy[cid] {
			return Slot{}, fmt.Errorf("popsnet: coupler c(%d,%d) needed twice", b, a)
		}
		if recvBusy[dst[i]] {
			return Slot{}, fmt.Errorf("popsnet: processor %d must receive twice", dst[i])
		}
		if srcBusy[src[i]] {
			return Slot{}, fmt.Errorf("popsnet: processor %d must send two packets", src[i])
		}
		couplerBusy[cid] = true
		recvBusy[dst[i]] = true
		srcBusy[src[i]] = true
		slot.Sends = append(slot.Sends, Send{Src: src[i], DestGroup: b, Packet: pkts[i]})
		slot.Recvs = append(slot.Recvs, Recv{Proc: dst[i], SrcGroup: a})
	}
	return slot, nil
}
