package popsnet

import "fmt"

// NewCustomState builds a state holding len(home) packets, with packet k
// starting at processor home[k]. Several packets may share a home — the
// h-relation workloads need exactly that. It returns an error if any home is
// out of range.
func NewCustomState(nw Network, home []int) (*State, error) {
	st := &State{
		nw:      nw,
		holding: make([][]int, nw.N()),
		where:   make([]int, len(home)),
	}
	for k, h := range home {
		if !nw.ValidProc(h) {
			return nil, fmt.Errorf("popsnet: packet %d home %d out of range", k, h)
		}
		st.holding[h] = append(st.holding[h], k)
		st.where[k] = h
	}
	return st, nil
}

// RunFrom replays the schedule starting from the custom initial placement
// home (packet k at processor home[k]), returning the final state and trace.
func RunFrom(s *Schedule, home []int) (*State, *Trace, error) {
	return runFrom(s, home, nil)
}

// runFrom is RunFrom with optional fault injection (nil fn = fault-free).
func runFrom(s *Schedule, home []int, fn *FaultyNetwork) (*State, *Trace, error) {
	r, err := NewReplayer(s, home, fn)
	if err != nil {
		return nil, nil, err
	}
	for {
		ok, err := r.Step()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return r.st, r.tr, nil
		}
	}
}

// VerifyDelivery replays the schedule from the custom placement home and
// checks that packet k ends at processor want[k] for every k with
// want[k] >= 0 (negative entries are don't-care, used for padding packets).
func VerifyDelivery(s *Schedule, home, want []int) (*Trace, error) {
	if len(home) != len(want) {
		return nil, fmt.Errorf("popsnet: %d homes for %d wanted positions", len(home), len(want))
	}
	st, tr, err := RunFrom(s, home)
	if err != nil {
		return nil, err
	}
	for k, w := range want {
		if w < 0 {
			continue
		}
		if !s.Net.ValidProc(w) {
			return nil, fmt.Errorf("popsnet: packet %d wanted at invalid processor %d", k, w)
		}
		if !st.Holds(w, k) {
			return nil, fmt.Errorf("popsnet: packet %d not delivered to processor %d (held by %d)",
				k, w, st.where[k])
		}
	}
	return tr, nil
}
