// Package popsnet simulates a Partitioned Optical Passive Stars network,
// POPS(d, g): n = d·g processors partitioned into g groups of d, with one
// optical passive star coupler c(b, a) for every ordered pair of groups —
// g² couplers in total. Coupler c(b, a) has the d processors of group a as
// sources and the d processors of group b as destinations (Figures 1–2 of
// Mei & Rizzi).
//
// The simulator implements exactly the SIMD slot semantics of the paper:
// during one slot every processor may send one packet to a subset of its g
// transmitters (one per destination group) and receive one packet from one
// of its g receivers (one per source group). A slot is invalid — and the
// simulator rejects it — if two processors drive the same coupler, a
// processor tunes to a coupler nobody drove, a processor receives twice, or
// a sender transmits a packet it does not hold.
//
// Packets are identified by small integers; in permutation routing, packet p
// starts at processor p. The simulator is the oracle every schedule produced
// by the planner is replayed against.
package popsnet

import (
	"errors"
	"fmt"
)

// Network describes the shape of a POPS(d, g) network.
type Network struct {
	D int // processors per group
	G int // number of groups
}

// NewNetwork validates the shape and returns the network descriptor.
func NewNetwork(d, g int) (Network, error) {
	if d < 1 || g < 1 {
		return Network{}, fmt.Errorf("popsnet: invalid shape POPS(%d,%d): both d and g must be ≥ 1", d, g)
	}
	return Network{D: d, G: g}, nil
}

// N returns the number of processors, n = d·g.
func (nw Network) N() int { return nw.D * nw.G }

// Couplers returns the number of couplers, g².
func (nw Network) Couplers() int { return nw.G * nw.G }

// Group returns the group of processor p: ⌊p/d⌋.
func (nw Network) Group(p int) int { return p / nw.D }

// LocalIndex returns the index of processor p within its group.
func (nw Network) LocalIndex(p int) int { return p % nw.D }

// Proc returns the processor with the given group and local index.
func (nw Network) Proc(group, local int) int { return group*nw.D + local }

// CouplerID returns a dense identifier for coupler c(destGroup, srcGroup).
func (nw Network) CouplerID(destGroup, srcGroup int) int {
	return destGroup*nw.G + srcGroup
}

// ValidProc reports whether p is a valid processor index.
func (nw Network) ValidProc(p int) bool { return p >= 0 && p < nw.N() }

// ValidGroup reports whether a is a valid group index.
func (nw Network) ValidGroup(a int) bool { return a >= 0 && a < nw.G }

// String implements fmt.Stringer.
func (nw Network) String() string { return fmt.Sprintf("POPS(%d,%d)", nw.D, nw.G) }

// Send is one transmission: processor Src drives coupler
// c(DestGroup, Group(Src)) with packet Packet. Src must hold Packet at the
// start of the slot. The same source may appear in several Sends of one slot
// only with the same packet (optical broadcast to several couplers).
type Send struct {
	Src       int
	DestGroup int
	Packet    int
}

// Recv is one reception: processor Proc tunes its receiver to coupler
// c(Group(Proc), SrcGroup) and stores whatever packet was driven onto it.
type Recv struct {
	Proc     int
	SrcGroup int
}

// Slot is the communication part of one SIMD step.
type Slot struct {
	Sends []Send
	Recvs []Recv
}

// Schedule is a sequence of slots on a network.
type Schedule struct {
	Net   Network
	Slots []Slot
}

// SlotCount returns the number of slots in the schedule.
func (s *Schedule) SlotCount() int { return len(s.Slots) }

// State tracks which packets each processor holds. Holdings are multisets:
// a processor may hold its own unsent packet plus a packet in transit (and,
// at the destination, delivered packets).
type State struct {
	nw      Network
	holding [][]int // processor -> packet IDs held
	where   []int   // packet -> processor currently holding it (last copy), -1 unknown
}

// NewPermutationState returns the canonical initial state for permutation
// routing: packet p at processor p, for all p.
func NewPermutationState(nw Network) *State {
	st := &State{
		nw:      nw,
		holding: make([][]int, nw.N()),
		where:   make([]int, nw.N()),
	}
	for p := 0; p < nw.N(); p++ {
		st.holding[p] = []int{p}
		st.where[p] = p
	}
	return st
}

// Holds reports whether processor p currently holds packet k.
func (st *State) Holds(p, k int) bool {
	for _, x := range st.holding[p] {
		if x == k {
			return true
		}
	}
	return false
}

// Holding returns a copy of the packets held by processor p.
func (st *State) Holding(p int) []int {
	return append([]int(nil), st.holding[p]...)
}

// remove deletes one copy of packet k from processor p's holdings.
func (st *State) remove(p, k int) {
	h := st.holding[p]
	for i, x := range h {
		if x == k {
			h[i] = h[len(h)-1]
			st.holding[p] = h[:len(h)-1]
			return
		}
	}
}

// SlotError describes a slot-model violation with its slot index.
type SlotError struct {
	Slot int
	Err  error
}

func (e *SlotError) Error() string { return fmt.Sprintf("popsnet: slot %d: %v", e.Slot, e.Err) }

// Unwrap returns the underlying violation.
func (e *SlotError) Unwrap() error { return e.Err }

// Violation categories, usable with errors.Is through SlotError.
var (
	ErrCouplerConflict  = errors.New("two senders drive one coupler")
	ErrReceiverConflict = errors.New("processor receives twice in one slot")
	ErrEmptyCoupler     = errors.New("receiver tuned to a coupler nobody drove")
	ErrSenderNotHolding = errors.New("sender does not hold the packet")
	ErrBadIndex         = errors.New("index out of range")
	ErrSenderAmbiguous  = errors.New("one sender drives couplers with different packets")
)

// Trace records per-slot statistics of an execution.
type Trace struct {
	// MaxHeld[s] is the maximum number of packets any processor holds after
	// slot s. The paper notes its routing keeps this at 1 for d ≤ g.
	MaxHeld []int
	// PacketsMoved[s] is the number of receive operations in slot s.
	PacketsMoved []int
}

// Run replays the schedule from the canonical permutation-routing initial
// state (packet p at processor p) and returns the final state and trace. It
// fails with a *SlotError on the first slot-model violation.
func Run(s *Schedule) (*State, *Trace, error) {
	home := make([]int, s.Net.N())
	for p := range home {
		home[p] = p
	}
	return RunFrom(s, home)
}

// step validates and applies a single slot to the state. A non-nil fn
// injects faults: any send driving — or receiver tuned to — a dead coupler
// rejects the slot with ErrDeadCoupler.
func step(st *State, slot *Slot, fn *FaultyNetwork) error {
	nw := st.nw
	// Phase 1: validate sends, load couplers. Each coupler remembers its
	// driver so a conflict names both processors, not just the coupler.
	type drive struct{ src, packet int }
	coupler := make(map[int]drive, len(slot.Sends)) // coupler ID -> driver
	senderPacket := make(map[int]int, len(slot.Sends))
	for _, snd := range slot.Sends {
		if !nw.ValidProc(snd.Src) || !nw.ValidGroup(snd.DestGroup) {
			return fmt.Errorf("%w: send %+v", ErrBadIndex, snd)
		}
		srcGroup := nw.Group(snd.Src)
		if !st.Holds(snd.Src, snd.Packet) {
			return fmt.Errorf("%w: processor %d does not hold packet %d (driving coupler c(%d,%d))",
				ErrSenderNotHolding, snd.Src, snd.Packet, snd.DestGroup, srcGroup)
		}
		if prev, ok := senderPacket[snd.Src]; ok && prev != snd.Packet {
			return fmt.Errorf("%w: processor %d sends packets %d and %d", ErrSenderAmbiguous, snd.Src, prev, snd.Packet)
		}
		senderPacket[snd.Src] = snd.Packet
		cid := nw.CouplerID(snd.DestGroup, srcGroup)
		if fn != nil && fn.dead[cid] {
			return fmt.Errorf("%w: processor %d drives dead coupler c(%d,%d) with packet %d",
				ErrDeadCoupler, snd.Src, snd.DestGroup, srcGroup, snd.Packet)
		}
		if prev, busy := coupler[cid]; busy {
			return fmt.Errorf("%w: coupler c(%d,%d) driven by processor %d (packet %d) and processor %d (packet %d)",
				ErrCouplerConflict, snd.DestGroup, srcGroup, prev.src, prev.packet, snd.Src, snd.Packet)
		}
		coupler[cid] = drive{src: snd.Src, packet: snd.Packet}
	}
	// Phase 2: validate receives against the loaded couplers.
	seenRecv := make(map[int]bool, len(slot.Recvs))
	type delivery struct{ proc, packet int }
	deliveries := make([]delivery, 0, len(slot.Recvs))
	for _, rcv := range slot.Recvs {
		if !nw.ValidProc(rcv.Proc) || !nw.ValidGroup(rcv.SrcGroup) {
			return fmt.Errorf("%w: recv %+v", ErrBadIndex, rcv)
		}
		if seenRecv[rcv.Proc] {
			return fmt.Errorf("%w: processor %d", ErrReceiverConflict, rcv.Proc)
		}
		seenRecv[rcv.Proc] = true
		cid := nw.CouplerID(nw.Group(rcv.Proc), rcv.SrcGroup)
		pkt, ok := coupler[cid]
		if !ok {
			if fn != nil && fn.dead[cid] {
				return fmt.Errorf("%w: processor %d tuned to dead coupler c(%d,%d)",
					ErrDeadCoupler, rcv.Proc, nw.Group(rcv.Proc), rcv.SrcGroup)
			}
			return fmt.Errorf("%w: processor %d on coupler c(%d,%d)", ErrEmptyCoupler, rcv.Proc, nw.Group(rcv.Proc), rcv.SrcGroup)
		}
		deliveries = append(deliveries, delivery{rcv.Proc, pkt.packet})
	}
	// Phase 3: apply — senders release their packet, receivers store a copy.
	// All sends happen "before" all receives within the slot, as in the SIMD
	// step of the paper.
	for src, pkt := range senderPacket {
		st.remove(src, pkt)
	}
	for _, d := range deliveries {
		st.holding[d.proc] = append(st.holding[d.proc], d.packet)
		st.where[d.packet] = d.proc
	}
	return nil
}

// VerifyPermutationRouted checks that after executing the schedule from the
// canonical initial state, packet p resides at processor pi[p] for every p.
// It returns the trace for inspection on success.
func VerifyPermutationRouted(s *Schedule, pi []int) (*Trace, error) {
	if len(pi) != s.Net.N() {
		return nil, fmt.Errorf("popsnet: permutation length %d, want %d", len(pi), s.Net.N())
	}
	st, tr, err := Run(s)
	if err != nil {
		return nil, err
	}
	for p := 0; p < s.Net.N(); p++ {
		if !st.Holds(pi[p], p) {
			return nil, fmt.Errorf("popsnet: packet %d not delivered to processor %d (held by %d)",
				p, pi[p], st.where[p])
		}
	}
	return tr, nil
}
