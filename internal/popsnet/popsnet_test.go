package popsnet

import (
	"errors"
	"testing"
)

func mustNet(t *testing.T, d, g int) Network {
	t.Helper()
	nw, err := NewNetwork(d, g)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(0, 3); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := NewNetwork(3, 0); err == nil {
		t.Fatal("g=0 accepted")
	}
	nw := mustNet(t, 3, 2)
	if nw.N() != 6 || nw.Couplers() != 4 {
		t.Fatalf("POPS(3,2): n=%d couplers=%d", nw.N(), nw.Couplers())
	}
	if nw.String() != "POPS(3,2)" {
		t.Fatalf("String = %q", nw.String())
	}
}

func TestGroupArithmetic(t *testing.T) {
	nw := mustNet(t, 3, 3)
	// Figure 2/3 layout: group(i) = ⌊i/d⌋.
	for p := 0; p < 9; p++ {
		if got, want := nw.Group(p), p/3; got != want {
			t.Fatalf("Group(%d) = %d, want %d", p, got, want)
		}
		if nw.Proc(nw.Group(p), nw.LocalIndex(p)) != p {
			t.Fatalf("Proc/Group/LocalIndex do not round-trip at %d", p)
		}
	}
	if nw.CouplerID(2, 1) != 7 {
		t.Fatalf("CouplerID(2,1) = %d, want 7", nw.CouplerID(2, 1))
	}
}

func TestTopologyInvariantsFigures1And2(t *testing.T) {
	// F1/F2: a POPS(d,g) has g² couplers; every processor has g transmitters
	// and g receivers (one per group); diameter is 1: any (src,dst) pair is
	// joined by coupler c(group(dst), group(src)).
	nw := mustNet(t, 3, 2)
	if nw.Couplers() != nw.G*nw.G {
		t.Fatal("coupler count is not g²")
	}
	for src := 0; src < nw.N(); src++ {
		for dst := 0; dst < nw.N(); dst++ {
			slot, err := DirectSlot(nw, []int{src}, []int{src}, []int{dst})
			if err != nil {
				t.Fatalf("no one-slot path %d→%d: %v", src, dst, err)
			}
			sched := &Schedule{Net: nw, Slots: []Slot{slot}}
			st, _, err := Run(sched)
			if err != nil {
				t.Fatalf("%d→%d: %v", src, dst, err)
			}
			if !st.Holds(dst, src) {
				t.Fatalf("packet %d did not reach %d", src, dst)
			}
		}
	}
}

func TestRunSimpleExchange(t *testing.T) {
	// POPS(1,2): two processors swap packets in one slot via c(1,0), c(0,1).
	nw := mustNet(t, 1, 2)
	slot := Slot{
		Sends: []Send{{Src: 0, DestGroup: 1, Packet: 0}, {Src: 1, DestGroup: 0, Packet: 1}},
		Recvs: []Recv{{Proc: 1, SrcGroup: 0}, {Proc: 0, SrcGroup: 1}},
	}
	st, tr, err := Run(&Schedule{Net: nw, Slots: []Slot{slot}})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Holds(1, 0) || !st.Holds(0, 1) {
		t.Fatal("swap failed")
	}
	if tr.MaxHeld[0] != 1 {
		t.Fatalf("MaxHeld = %d, want 1", tr.MaxHeld[0])
	}
	if tr.PacketsMoved[0] != 2 {
		t.Fatalf("PacketsMoved = %d, want 2", tr.PacketsMoved[0])
	}
}

func TestCouplerConflictDetected(t *testing.T) {
	// Both processors of group 0 drive coupler c(1,0).
	nw := mustNet(t, 2, 2)
	slot := Slot{
		Sends: []Send{{Src: 0, DestGroup: 1, Packet: 0}, {Src: 1, DestGroup: 1, Packet: 1}},
		Recvs: []Recv{{Proc: 2, SrcGroup: 0}},
	}
	_, _, err := Run(&Schedule{Net: nw, Slots: []Slot{slot}})
	if !errors.Is(err, ErrCouplerConflict) {
		t.Fatalf("err = %v, want ErrCouplerConflict", err)
	}
	var se *SlotError
	if !errors.As(err, &se) || se.Slot != 0 {
		t.Fatalf("slot index not reported: %v", err)
	}
}

func TestReceiverConflictDetected(t *testing.T) {
	nw := mustNet(t, 2, 2)
	slot := Slot{
		Sends: []Send{{Src: 0, DestGroup: 1, Packet: 0}, {Src: 2, DestGroup: 1, Packet: 2}},
		Recvs: []Recv{{Proc: 2, SrcGroup: 0}, {Proc: 2, SrcGroup: 1}},
	}
	_, _, err := Run(&Schedule{Net: nw, Slots: []Slot{slot}})
	if !errors.Is(err, ErrReceiverConflict) {
		t.Fatalf("err = %v, want ErrReceiverConflict", err)
	}
}

func TestEmptyCouplerDetected(t *testing.T) {
	nw := mustNet(t, 2, 2)
	slot := Slot{Recvs: []Recv{{Proc: 0, SrcGroup: 1}}}
	_, _, err := Run(&Schedule{Net: nw, Slots: []Slot{slot}})
	if !errors.Is(err, ErrEmptyCoupler) {
		t.Fatalf("err = %v, want ErrEmptyCoupler", err)
	}
}

func TestSenderNotHoldingDetected(t *testing.T) {
	nw := mustNet(t, 2, 2)
	slot := Slot{Sends: []Send{{Src: 0, DestGroup: 1, Packet: 3}}}
	_, _, err := Run(&Schedule{Net: nw, Slots: []Slot{slot}})
	if !errors.Is(err, ErrSenderNotHolding) {
		t.Fatalf("err = %v, want ErrSenderNotHolding", err)
	}
}

func TestSenderAmbiguousDetected(t *testing.T) {
	// After a first slot that gives processor 0 a second packet, it tries to
	// drive two couplers with different packets.
	nw := mustNet(t, 2, 2)
	s1 := Slot{
		Sends: []Send{{Src: 1, DestGroup: 0, Packet: 1}},
		Recvs: []Recv{{Proc: 0, SrcGroup: 0}},
	}
	s2 := Slot{
		Sends: []Send{
			{Src: 0, DestGroup: 0, Packet: 0},
			{Src: 0, DestGroup: 1, Packet: 1},
		},
	}
	_, _, err := Run(&Schedule{Net: nw, Slots: []Slot{s1, s2}})
	if !errors.Is(err, ErrSenderAmbiguous) {
		t.Fatalf("err = %v, want ErrSenderAmbiguous", err)
	}
}

func TestBadIndicesDetected(t *testing.T) {
	nw := mustNet(t, 2, 2)
	cases := []Slot{
		{Sends: []Send{{Src: -1, DestGroup: 0, Packet: 0}}},
		{Sends: []Send{{Src: 0, DestGroup: 7, Packet: 0}}},
		{Recvs: []Recv{{Proc: 99, SrcGroup: 0}}},
		{Recvs: []Recv{{Proc: 0, SrcGroup: -2}}},
	}
	for i, slot := range cases {
		_, _, err := Run(&Schedule{Net: nw, Slots: []Slot{slot}})
		if !errors.Is(err, ErrBadIndex) {
			t.Fatalf("case %d: err = %v, want ErrBadIndex", i, err)
		}
	}
}

func TestBroadcastSameSenderManyCouplers(t *testing.T) {
	// One sender may drive several couplers with the same packet.
	nw := mustNet(t, 2, 3)
	sched, err := OneToAll(nw, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < nw.N(); p++ {
		if !st.Holds(p, 2) {
			t.Fatalf("processor %d did not receive the broadcast", p)
		}
	}
}

func TestOneToAllSpeakerOutOfRange(t *testing.T) {
	nw := mustNet(t, 2, 2)
	if _, err := OneToAll(nw, 9, 0); err == nil {
		t.Fatal("invalid speaker accepted")
	}
}

func TestSendThenLoseCustody(t *testing.T) {
	// After sending without receiving, the packet is gone from the sender.
	nw := mustNet(t, 1, 2)
	slot := Slot{
		Sends: []Send{{Src: 0, DestGroup: 1, Packet: 0}},
		Recvs: []Recv{{Proc: 1, SrcGroup: 0}},
	}
	st, _, err := Run(&Schedule{Net: nw, Slots: []Slot{slot}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Holds(0, 0) {
		t.Fatal("sender kept the packet after transmission")
	}
	if got := st.Holding(1); len(got) != 2 {
		t.Fatalf("receiver holds %v, want its own packet plus the received one", got)
	}
}

func TestVerifyPermutationRouted(t *testing.T) {
	nw := mustNet(t, 1, 2)
	swap := Slot{
		Sends: []Send{{Src: 0, DestGroup: 1, Packet: 0}, {Src: 1, DestGroup: 0, Packet: 1}},
		Recvs: []Recv{{Proc: 1, SrcGroup: 0}, {Proc: 0, SrcGroup: 1}},
	}
	sched := &Schedule{Net: nw, Slots: []Slot{swap}}
	if _, err := VerifyPermutationRouted(sched, []int{1, 0}); err != nil {
		t.Fatalf("valid routing rejected: %v", err)
	}
	if _, err := VerifyPermutationRouted(sched, []int{0, 1}); err == nil {
		t.Fatal("wrong destination accepted")
	}
	if _, err := VerifyPermutationRouted(sched, []int{0}); err == nil {
		t.Fatal("wrong-length permutation accepted")
	}
}

func TestDirectSlotConflicts(t *testing.T) {
	nw := mustNet(t, 2, 2)
	// Two packets from group 0 to group 1: coupler conflict.
	if _, err := DirectSlot(nw, []int{0, 1}, []int{0, 1}, []int{2, 3}); err == nil {
		t.Fatal("coupler conflict accepted")
	}
	// Two packets to the same destination processor.
	if _, err := DirectSlot(nw, []int{0, 2}, []int{0, 2}, []int{1, 1}); err == nil {
		t.Fatal("receiver conflict accepted")
	}
	// One source sending two packets.
	if _, err := DirectSlot(nw, []int{0, 1}, []int{0, 0}, []int{1, 2}); err == nil {
		t.Fatal("double send accepted")
	}
	// Mismatched lengths.
	if _, err := DirectSlot(nw, []int{0}, []int{0, 1}, []int{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	// Out of range.
	if _, err := DirectSlot(nw, []int{0}, []int{0}, []int{44}); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestDirectSlotIntraGroup(t *testing.T) {
	// c(a,a) couplers allow intra-group movement in one slot.
	nw := mustNet(t, 3, 2)
	slot, err := DirectSlot(nw, []int{0}, []int{0}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := Run(&Schedule{Net: nw, Slots: []Slot{slot}})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Holds(2, 0) {
		t.Fatal("intra-group transfer failed")
	}
}

func TestStateHoldingCopyIsolated(t *testing.T) {
	nw := mustNet(t, 1, 2)
	st := NewPermutationState(nw)
	h := st.Holding(0)
	h[0] = 99
	if !st.Holds(0, 0) {
		t.Fatal("Holding returned a live reference")
	}
}
