package popsnet

import "testing"

func TestNewCustomState(t *testing.T) {
	nw := mustNet(t, 2, 2)
	st, err := NewCustomState(nw, []int{0, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Holds(0, 0) || !st.Holds(0, 1) || !st.Holds(3, 2) {
		t.Fatal("custom placement wrong")
	}
	if got := st.Holding(0); len(got) != 2 {
		t.Fatalf("proc 0 holds %v, want two packets", got)
	}
	if _, err := NewCustomState(nw, []int{9}); err == nil {
		t.Fatal("out-of-range home accepted")
	}
}

func TestRunFromMultiPacketSource(t *testing.T) {
	// Proc 0 holds packets 0 and 1; ship them to procs 2 and 3 in two slots.
	nw := mustNet(t, 2, 2)
	sched := &Schedule{Net: nw, Slots: []Slot{
		{
			Sends: []Send{{Src: 0, DestGroup: 1, Packet: 0}},
			Recvs: []Recv{{Proc: 2, SrcGroup: 0}},
		},
		{
			Sends: []Send{{Src: 0, DestGroup: 1, Packet: 1}},
			Recvs: []Recv{{Proc: 3, SrcGroup: 0}},
		},
	}}
	st, tr, err := RunFrom(sched, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Holds(2, 0) || !st.Holds(3, 1) {
		t.Fatal("multi-packet shipment failed")
	}
	// After slot 0, proc 0 has shipped packet 0 and retains only packet 1.
	if tr.MaxHeld[0] != 1 {
		t.Fatalf("MaxHeld[0] = %d, want 1", tr.MaxHeld[0])
	}
}

func TestRunFromSendingUnheldPacketFails(t *testing.T) {
	nw := mustNet(t, 2, 2)
	sched := &Schedule{Net: nw, Slots: []Slot{
		{Sends: []Send{{Src: 1, DestGroup: 1, Packet: 0}}},
	}}
	if _, _, err := RunFrom(sched, []int{0}); err == nil {
		t.Fatal("send of unheld packet accepted")
	}
}

func TestVerifyDelivery(t *testing.T) {
	nw := mustNet(t, 1, 2)
	sched := &Schedule{Net: nw, Slots: []Slot{
		{
			Sends: []Send{{Src: 0, DestGroup: 1, Packet: 0}},
			Recvs: []Recv{{Proc: 1, SrcGroup: 0}},
		},
	}}
	if _, err := VerifyDelivery(sched, []int{0}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDelivery(sched, []int{0}, []int{0}); err == nil {
		t.Fatal("wrong destination accepted")
	}
	// Don't-care entries skip the check.
	if _, err := VerifyDelivery(sched, []int{0}, []int{-1}); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDelivery(sched, []int{0}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := VerifyDelivery(sched, []int{0}, []int{99}); err == nil {
		t.Fatal("invalid wanted processor accepted")
	}
}
