package popsnet

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestFaultSetCanonical(t *testing.T) {
	fs := FaultSet{
		Couplers: []Coupler{{B: 2, A: 1}, {B: 0, A: 3}, {B: 2, A: 1}, {B: 0, A: 1}},
		Groups:   []int{3, 1, 3},
	}
	got := fs.Canonical()
	want := FaultSet{
		Couplers: []Coupler{{B: 0, A: 1}, {B: 0, A: 3}, {B: 2, A: 1}},
		Groups:   []int{1, 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Canonical() = %+v, want %+v", got, want)
	}
	// The receiver must be untouched.
	if len(fs.Couplers) != 4 || len(fs.Groups) != 3 {
		t.Fatalf("Canonical mutated its receiver: %+v", fs)
	}
	ident := want.AppendIdent(nil)
	wantIdent := []int{3, 0, 1, 0, 3, 2, 1, 2, 1, 3}
	if !reflect.DeepEqual(ident, wantIdent) {
		t.Fatalf("AppendIdent = %v, want %v", ident, wantIdent)
	}
	if got := (FaultSet{}).AppendIdent(nil); !reflect.DeepEqual(got, []int{0, 0}) {
		t.Fatalf("empty AppendIdent = %v, want [0 0]", got)
	}
}

func TestFaultSetValidate(t *testing.T) {
	nw := Network{D: 2, G: 3}
	if err := (FaultSet{Couplers: []Coupler{{B: 3, A: 0}}}).Validate(nw); err == nil {
		t.Fatal("out-of-range coupler row accepted")
	}
	if err := (FaultSet{Couplers: []Coupler{{B: 0, A: -1}}}).Validate(nw); err == nil {
		t.Fatal("negative coupler column accepted")
	}
	if err := (FaultSet{Groups: []int{3}}).Validate(nw); err == nil {
		t.Fatal("out-of-range group accepted")
	}
	if _, err := (FaultSet{Groups: []int{3}}).Compile(nw); err == nil {
		t.Fatal("Compile accepted an invalid set")
	}
	fn, err := (FaultSet{Couplers: []Coupler{{B: 1, A: 2}}, Groups: []int{0}}).Compile(nw)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !fn.Dead(1, 2) || !fn.Dead(0, 1) || !fn.Dead(2, 0) {
		t.Fatal("compiled faults missing")
	}
}

func TestFaultyNetworkKills(t *testing.T) {
	nw := Network{D: 2, G: 3}
	fn := NewFaultyNetwork(nw)
	if fn.DeadCount() != 0 || fn.Dead(0, 0) {
		t.Fatal("fresh network has dead couplers")
	}
	if err := fn.KillCoupler(1, 2); err != nil {
		t.Fatalf("KillCoupler: %v", err)
	}
	if err := fn.KillCoupler(1, 2); err != nil {
		t.Fatalf("idempotent KillCoupler: %v", err)
	}
	if fn.DeadCount() != 1 || !fn.Dead(1, 2) {
		t.Fatalf("DeadCount = %d, Dead(1,2) = %v", fn.DeadCount(), fn.Dead(1, 2))
	}
	if err := fn.KillCoupler(3, 0); err == nil {
		t.Fatal("out-of-range KillCoupler accepted")
	}

	// Kill group 0: row c(0,·) and column c(·,0) die, 2g-1 = 5 couplers.
	if err := fn.KillGroup(0); err != nil {
		t.Fatalf("KillGroup: %v", err)
	}
	if fn.DeadCount() != 6 { // 5 new + the earlier c(1,2)
		t.Fatalf("DeadCount after KillGroup = %d, want 6", fn.DeadCount())
	}
	if !fn.SeveredSource(0) || !fn.SeveredDest(0) {
		t.Fatal("killed group not severed")
	}
	if fn.SeveredSource(1) || fn.SeveredDest(2) {
		t.Fatal("live group reported severed")
	}

	// Relays: group 1 → group 2 must avoid dead hardware. c(j,1) alive for
	// j ∈ {1,2}; c(2,j) alive for j ∈ {1,2} except c(2,1)? c(2,1) is alive
	// (only row 0, column 0, and c(1,2) are dead), so j = 1 works.
	if j, ok := fn.AliveRelay(1, 2); !ok || j != 1 {
		t.Fatalf("AliveRelay(1,2) = %d, %v; want 1, true", j, ok)
	}
	// Anything out of a severed group is unroutable.
	if _, ok := fn.AliveRelay(0, 1); ok {
		t.Fatal("AliveRelay out of a severed group reported a path")
	}
	if _, ok := fn.AliveRelay(2, 0); ok {
		t.Fatal("AliveRelay into a severed group reported a path")
	}
}

// sched22 builds a POPS(2,2) schedule from the given slots. Processors 0,1
// form group 0; processors 2,3 form group 1.
func sched22(slots ...Slot) *Schedule {
	return &Schedule{Net: Network{D: 2, G: 2}, Slots: slots}
}

// runSlot replays a single-slot schedule fault-free; a nil home means the
// canonical permutation-routing state (packet p at processor p).
func runSlot(t *testing.T, slot Slot, home []int) error {
	t.Helper()
	if home == nil {
		home = []int{0, 1, 2, 3}
	}
	_, _, err := RunFrom(sched22(slot), home)
	return err
}

// TestSlotRejectionMessages pins every rejection path of the slot model and
// the diagnostic contract: coupler-related violations name the offending
// coupler c(b,a), and a coupler conflict names both drivers.
func TestSlotRejectionMessages(t *testing.T) {
	cases := []struct {
		name     string
		slot     Slot
		home     []int // nil = canonical packet p at processor p
		wantErr  error
		contains []string
	}{
		{
			name: "coupler conflict names coupler and both drivers",
			slot: Slot{Sends: []Send{
				{Src: 0, DestGroup: 1, Packet: 0},
				{Src: 1, DestGroup: 1, Packet: 1},
			}},
			wantErr:  ErrCouplerConflict,
			contains: []string{"c(1,0)", "processor 0 (packet 0)", "processor 1 (packet 1)"},
		},
		{
			name:     "sender not holding names packet and coupler",
			slot:     Slot{Sends: []Send{{Src: 0, DestGroup: 1, Packet: 3}}},
			wantErr:  ErrSenderNotHolding,
			contains: []string{"processor 0", "packet 3", "c(1,0)"},
		},
		{
			name: "ambiguous sender names both packets",
			slot: Slot{Sends: []Send{
				{Src: 0, DestGroup: 0, Packet: 0},
				{Src: 0, DestGroup: 1, Packet: 1},
			}},
			home:     []int{0, 0, 2, 3}, // processor 0 holds packets 0 and 1
			wantErr:  ErrSenderAmbiguous,
			contains: []string{"processor 0", "packets 0 and 1"},
		},
		{
			name:     "empty coupler names receiver and coupler",
			slot:     Slot{Recvs: []Recv{{Proc: 2, SrcGroup: 0}}},
			wantErr:  ErrEmptyCoupler,
			contains: []string{"processor 2", "c(1,0)"},
		},
		{
			name: "receiver conflict names processor",
			slot: Slot{
				Sends: []Send{{Src: 0, DestGroup: 1, Packet: 0}, {Src: 2, DestGroup: 1, Packet: 2}},
				Recvs: []Recv{{Proc: 3, SrcGroup: 0}, {Proc: 3, SrcGroup: 1}},
			},
			wantErr:  ErrReceiverConflict,
			contains: []string{"processor 3"},
		},
		{
			name:    "bad send index",
			slot:    Slot{Sends: []Send{{Src: 4, DestGroup: 0, Packet: 0}}},
			wantErr: ErrBadIndex,
		},
		{
			name:    "bad recv group",
			slot:    Slot{Recvs: []Recv{{Proc: 0, SrcGroup: 2}}},
			wantErr: ErrBadIndex,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runSlot(t, tc.slot, tc.home)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error = %v, want %v", err, tc.wantErr)
			}
			var se *SlotError
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *SlotError", err)
			}
			for _, want := range tc.contains {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err.Error(), want)
				}
			}
		})
	}
}

func TestDeadCouplerRejections(t *testing.T) {
	nw := Network{D: 2, G: 2}

	t.Run("send drives dead coupler", func(t *testing.T) {
		fn := NewFaultyNetwork(nw)
		if err := fn.KillCoupler(1, 0); err != nil {
			t.Fatal(err)
		}
		s := sched22(Slot{Sends: []Send{{Src: 0, DestGroup: 1, Packet: 0}}})
		_, _, err := RunFaulty(s, fn)
		if !errors.Is(err, ErrDeadCoupler) {
			t.Fatalf("error = %v, want ErrDeadCoupler", err)
		}
		for _, want := range []string{"c(1,0)", "processor 0", "packet 0"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not mention %q", err.Error(), want)
			}
		}
	})

	t.Run("receiver tuned to dead coupler", func(t *testing.T) {
		fn := NewFaultyNetwork(nw)
		if err := fn.KillCoupler(1, 0); err != nil {
			t.Fatal(err)
		}
		s := sched22(Slot{Recvs: []Recv{{Proc: 2, SrcGroup: 0}}})
		_, _, err := RunFaulty(s, fn)
		if !errors.Is(err, ErrDeadCoupler) {
			t.Fatalf("error = %v, want ErrDeadCoupler", err)
		}
		if !strings.Contains(err.Error(), "dead coupler c(1,0)") {
			t.Errorf("error %q does not name the dead coupler", err.Error())
		}
	})

	t.Run("unused faults do not reject", func(t *testing.T) {
		fn := NewFaultyNetwork(nw)
		if err := fn.KillCoupler(0, 1); err != nil { // c(0,1) — never driven below
			t.Fatal(err)
		}
		s := sched22(Slot{
			Sends: []Send{{Src: 0, DestGroup: 1, Packet: 0}},
			Recvs: []Recv{{Proc: 2, SrcGroup: 0}},
		})
		st, tr, err := RunFaulty(s, fn)
		if err != nil {
			t.Fatalf("RunFaulty: %v", err)
		}
		if !st.Holds(2, 0) {
			t.Fatal("packet 0 not delivered to processor 2")
		}
		if len(tr.MaxHeld) != 1 {
			t.Fatalf("trace covers %d slots, want 1", len(tr.MaxHeld))
		}
	})
}

// TestReplayerMidTraceKill kills a coupler between slots: the slot already
// replayed is unaffected, and the very next slot that touches the newly dead
// coupler is rejected.
func TestReplayerMidTraceKill(t *testing.T) {
	s := sched22(
		Slot{Sends: []Send{{Src: 0, DestGroup: 1, Packet: 0}}, Recvs: []Recv{{Proc: 2, SrcGroup: 0}}},
		Slot{Sends: []Send{{Src: 1, DestGroup: 1, Packet: 1}}, Recvs: []Recv{{Proc: 3, SrcGroup: 0}}},
	)
	home := []int{0, 1, 2, 3}

	fn := NewFaultyNetwork(s.Net)
	r, err := NewReplayer(s, home, fn)
	if err != nil {
		t.Fatalf("NewReplayer: %v", err)
	}
	if ok, err := r.Step(); !ok || err != nil {
		t.Fatalf("slot 0: ok=%v err=%v", ok, err)
	}
	// The fault arrives mid-trace, between slots 0 and 1.
	if err := r.Network().KillCoupler(1, 0); err != nil {
		t.Fatal(err)
	}
	_, err = r.Step()
	if !errors.Is(err, ErrDeadCoupler) {
		t.Fatalf("slot 1 after mid-trace kill: %v, want ErrDeadCoupler", err)
	}
	var se *SlotError
	if !errors.As(err, &se) || se.Slot != 1 {
		t.Fatalf("violation not attributed to slot 1: %v", err)
	}

	// Same trace, but the mid-trace fault hits hardware slot 1 never uses:
	// the replay completes and delivers both packets.
	fn2 := NewFaultyNetwork(s.Net)
	r2, err := NewReplayer(s, home, fn2)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := r2.Step(); !ok || err != nil {
		t.Fatalf("slot 0: ok=%v err=%v", ok, err)
	}
	if err := r2.Network().KillCoupler(0, 1); err != nil {
		t.Fatal(err)
	}
	if ok, err := r2.Step(); !ok || err != nil {
		t.Fatalf("slot 1: ok=%v err=%v", ok, err)
	}
	if ok, _ := r2.Step(); ok {
		t.Fatal("Step reported progress past the last slot")
	}
	if !r2.State().Holds(2, 0) || !r2.State().Holds(3, 1) {
		t.Fatal("packets not delivered after benign mid-trace kill")
	}
	if r2.SlotIndex() != 2 || len(r2.Trace().PacketsMoved) != 2 {
		t.Fatalf("SlotIndex = %d, trace slots = %d", r2.SlotIndex(), len(r2.Trace().PacketsMoved))
	}
}
