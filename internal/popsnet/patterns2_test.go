package popsnet

import "testing"

func TestPermuteWithinGroups(t *testing.T) {
	nw := mustNet(t, 3, 2)
	// Group 0 rotates locally, group 1 stays put.
	sched, err := PermuteWithinGroups(nw, [][]int{{1, 2, 0}, nil})
	if err != nil {
		t.Fatal(err)
	}
	// Three real moves in group 0 serialize on coupler c(0,0).
	if sched.SlotCount() != 3 {
		t.Fatalf("slots = %d, want 3", sched.SlotCount())
	}
	st, _, err := Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	// Packet at local i moves to local tau(i): 0->1, 1->2, 2->0.
	for i, want := range []int{1, 2, 0} {
		if !st.Holds(nw.Proc(0, want), nw.Proc(0, i)) {
			t.Fatalf("packet %d not at local %d", i, want)
		}
	}
	// Group 1's packets never moved.
	for i := 0; i < 3; i++ {
		p := nw.Proc(1, i)
		if !st.Holds(p, p) {
			t.Fatalf("group 1 packet %d moved", p)
		}
	}
}

func TestPermuteWithinGroupsValidation(t *testing.T) {
	nw := mustNet(t, 2, 2)
	if _, err := PermuteWithinGroups(nw, [][]int{{1, 0}}); err == nil {
		t.Fatal("wrong group count accepted")
	}
	if _, err := PermuteWithinGroups(nw, [][]int{{0}, nil}); err == nil {
		t.Fatal("short inner accepted")
	}
	if _, err := PermuteWithinGroups(nw, [][]int{{0, 0}, nil}); err == nil {
		t.Fatal("non-permutation inner accepted")
	}
}

func TestPermuteWithinGroupsIdentityIsEmpty(t *testing.T) {
	nw := mustNet(t, 2, 2)
	sched, err := PermuteWithinGroups(nw, [][]int{{0, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sched.SlotCount() != 0 {
		t.Fatalf("identity schedule has %d slots, want 0", sched.SlotCount())
	}
}

func TestGroupBroadcast(t *testing.T) {
	nw := mustNet(t, 3, 2)
	sched, err := GroupBroadcast(nw, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sched.SlotCount() != 1 {
		t.Fatalf("slots = %d, want 1", sched.SlotCount())
	}
	st, _, err := Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	// Everyone in group a holds the speaker's packet.
	for a, local := range []int{1, 2} {
		speaker := nw.Proc(a, local)
		for i := 0; i < nw.D; i++ {
			if !st.Holds(nw.Proc(a, i), speaker) {
				t.Fatalf("group %d proc %d missing broadcast", a, i)
			}
		}
	}
}

func TestGroupBroadcastValidation(t *testing.T) {
	nw := mustNet(t, 2, 2)
	if _, err := GroupBroadcast(nw, []int{0}); err == nil {
		t.Fatal("wrong speaker count accepted")
	}
	if _, err := GroupBroadcast(nw, []int{0, 5}); err == nil {
		t.Fatal("out-of-range speaker accepted")
	}
}

func TestComputeStats(t *testing.T) {
	nw := mustNet(t, 1, 2)
	swap := Slot{
		Sends: []Send{{Src: 0, DestGroup: 1, Packet: 0}, {Src: 1, DestGroup: 0, Packet: 1}},
		Recvs: []Recv{{Proc: 1, SrcGroup: 0}, {Proc: 0, SrcGroup: 1}},
	}
	st := ComputeStats(&Schedule{Net: nw, Slots: []Slot{swap}})
	if st.Slots != 1 || st.Sends != 2 || st.Recvs != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CouplersUsed != 2 || st.MaxCouplers != 4 {
		t.Fatalf("coupler stats = %+v", st)
	}
	if st.Utilization != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", st.Utilization)
	}
	if st.BroadcastOnly {
		t.Fatal("no broadcast in schedule")
	}

	// A broadcast schedule sets BroadcastOnly.
	b, err := OneToAll(nw, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bs := ComputeStats(b); !bs.BroadcastOnly {
		t.Fatal("broadcast not detected")
	}

	// Empty schedule: utilization 0, no division by zero.
	empty := ComputeStats(&Schedule{Net: nw})
	if empty.Utilization != 0 {
		t.Fatalf("empty utilization = %v", empty.Utilization)
	}
}
