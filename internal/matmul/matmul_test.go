package matmul

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pops/internal/core"
)

func randomMatrix(m int, rng *rand.Rand) [][]int64 {
	a := make([][]int64, m)
	for i := range a {
		a[i] = make([]int64, m)
		for j := range a[i] {
			a[i][j] = int64(rng.Intn(19) - 9)
		}
	}
	return a
}

func equalMatrix(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestMultiplyValidation(t *testing.T) {
	if _, err := Multiply(0, 1, 1, nil, nil, core.Options{}); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := Multiply(2, 2, 3, nil, nil, core.Options{}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	bad := [][]int64{{1, 2}}
	good := [][]int64{{1, 2}, {3, 4}}
	if _, err := Multiply(2, 2, 2, bad, good, core.Options{}); err == nil {
		t.Fatal("ragged A accepted")
	}
	if _, err := Multiply(2, 2, 2, good, [][]int64{{1}, {2}}, core.Options{}); err == nil {
		t.Fatal("ragged B accepted")
	}
}

func TestMultiplySmall(t *testing.T) {
	a := [][]int64{{1, 2}, {3, 4}}
	b := [][]int64{{5, 6}, {7, 8}}
	res, err := Multiply(2, 2, 2, a, b, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{19, 22}, {43, 50}}
	if !equalMatrix(res.C, want) {
		t.Fatalf("C = %v, want %v", res.C, want)
	}
	if res.Slots != PredictedSlots(2, 2, 2) {
		t.Fatalf("slots = %d, want %d", res.Slots, PredictedSlots(2, 2, 2))
	}
}

func TestMultiplyAgainstReferenceAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, tc := range []struct{ m, d, g int }{
		{2, 1, 4}, {2, 2, 2}, {2, 4, 1}, {3, 3, 3}, {4, 4, 4}, {4, 2, 8}, {4, 8, 2},
	} {
		a := randomMatrix(tc.m, rng)
		b := randomMatrix(tc.m, rng)
		res, err := Multiply(tc.m, tc.d, tc.g, a, b, core.Options{})
		if err != nil {
			t.Fatalf("m=%d d=%d g=%d: %v", tc.m, tc.d, tc.g, err)
		}
		if want := Reference(tc.m, a, b); !equalMatrix(res.C, want) {
			t.Fatalf("m=%d d=%d g=%d: product differs from reference", tc.m, tc.d, tc.g)
		}
		if res.Slots != PredictedSlots(tc.m, tc.d, tc.g) {
			t.Fatalf("m=%d d=%d g=%d: slots = %d, want %d",
				tc.m, tc.d, tc.g, res.Slots, PredictedSlots(tc.m, tc.d, tc.g))
		}
		if res.Moves != 2+2*(tc.m-1) {
			t.Fatalf("m=%d: moves = %d, want %d", tc.m, res.Moves, 2+2*(tc.m-1))
		}
	}
}

func TestMultiplyIdentityMatrix(t *testing.T) {
	m := 3
	id := make([][]int64, m)
	for i := range id {
		id[i] = make([]int64, m)
		id[i][i] = 1
	}
	rng := rand.New(rand.NewSource(13))
	a := randomMatrix(m, rng)
	res, err := Multiply(m, 3, 3, a, id, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !equalMatrix(res.C, a) {
		t.Fatal("A·I ≠ A")
	}
}

func TestMultiplyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := []int{2, 3, 4}[rng.Intn(3)]
		// Pick a valid (d, g) factorization of m².
		n := m * m
		var d int
		for {
			d = rng.Intn(n) + 1
			if n%d == 0 {
				break
			}
		}
		g := n / d
		a := randomMatrix(m, rng)
		b := randomMatrix(m, rng)
		res, err := Multiply(m, d, g, a, b, core.Options{})
		if err != nil {
			return false
		}
		return equalMatrix(res.C, Reference(m, a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
