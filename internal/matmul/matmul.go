// Package matmul multiplies m×m matrices on a POPS(d, g) network with
// d·g = m² processors, one element per processor — the application of
// Sahni 2000a that motivated routing structured permutations on POPS.
//
// The implementation is Cannon's algorithm on the torus substrate: skew A's
// rows and B's columns (two routed permutations), then m rounds of local
// multiply-accumulate followed by unit shifts of A (left) and B (up). Every
// data movement is a permutation routed by Theorem 2 and replayed on the
// POPS simulator, so the reported slot count is the verified communication
// cost: (2 skews + 2(m−1) unit shifts) × 2⌈d/g⌉ slots for d > 1.
package matmul

import (
	"fmt"

	"pops/internal/core"
	"pops/internal/perms"
	"pops/internal/simd"
)

// Result carries the product and the communication cost actually paid.
type Result struct {
	C     [][]int64
	Slots int
	Moves int
}

// Multiply computes C = A·B for m×m matrices on POPS(d, g), d·g = m².
func Multiply(m, d, g int, a, b [][]int64, opts core.Options) (*Result, error) {
	if m < 1 {
		return nil, fmt.Errorf("matmul: invalid dimension %d", m)
	}
	if d*g != m*m {
		return nil, fmt.Errorf("matmul: POPS(%d,%d) has %d processors, need m² = %d", d, g, d*g, m*m)
	}
	if err := checkMatrix(a, m); err != nil {
		return nil, fmt.Errorf("matmul: A: %w", err)
	}
	if err := checkMatrix(b, m); err != nil {
		return nil, fmt.Errorf("matmul: B: %w", err)
	}
	router, err := simd.NewRouter(d, g, opts)
	if err != nil {
		return nil, err
	}

	n := m * m
	av := make([]int64, n)
	bv := make([]int64, n)
	cv := make([]int64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			av[i*m+j] = a[i][j]
			bv[i*m+j] = b[i][j]
		}
	}

	// Initial skew: A(i,j) -> (i, j-i), B(i,j) -> (i-j, j), as single
	// permutations over the n processors.
	skewA := make([]int, n)
	skewB := make([]int, n)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			skewA[i*m+j] = i*m + mod(j-i, m)
			skewB[i*m+j] = mod(i-j, m)*m + j
		}
	}
	if err := router.Permute(av, skewA); err != nil {
		return nil, err
	}
	if err := router.Permute(bv, skewB); err != nil {
		return nil, err
	}

	shiftLeft, err := perms.MeshShift(m, m, 0, -1)
	if err != nil {
		return nil, err
	}
	shiftUp, err := perms.MeshShift(m, m, -1, 0)
	if err != nil {
		return nil, err
	}
	for round := 0; round < m; round++ {
		for p := 0; p < n; p++ {
			cv[p] += av[p] * bv[p]
		}
		if round == m-1 {
			break
		}
		if err := router.Permute(av, shiftLeft); err != nil {
			return nil, err
		}
		if err := router.Permute(bv, shiftUp); err != nil {
			return nil, err
		}
	}

	c := make([][]int64, m)
	for i := range c {
		c[i] = cv[i*m : (i+1)*m]
	}
	return &Result{C: c, Slots: router.Slots, Moves: router.Moves}, nil
}

// Reference computes C = A·B directly; the oracle the POPS run is tested
// against.
func Reference(m int, a, b [][]int64) [][]int64 {
	c := make([][]int64, m)
	for i := 0; i < m; i++ {
		c[i] = make([]int64, m)
		for k := 0; k < m; k++ {
			aik := a[i][k]
			if aik == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				c[i][j] += aik * b[k][j]
			}
		}
	}
	return c
}

// PredictedSlots returns the communication cost Cannon's algorithm pays on
// POPS(d, g): 2 skews + 2(m−1) unit shifts, each at OptimalSlots(d, g).
func PredictedSlots(m, d, g int) int {
	return (2 + 2*(m-1)) * core.OptimalSlots(d, g)
}

func checkMatrix(a [][]int64, m int) error {
	if len(a) != m {
		return fmt.Errorf("%d rows, want %d", len(a), m)
	}
	for i, row := range a {
		if len(row) != m {
			return fmt.Errorf("row %d has %d columns, want %d", i, len(row), m)
		}
	}
	return nil
}

func mod(a, m int) int { return ((a % m) + m) % m }
