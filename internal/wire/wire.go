// Package wire defines the JSON schema spoken between the popsserved
// routing service (internal/service, cmd/popsserved) and the pops
// ServiceClient. It holds only data types — no server or client logic — so
// that both sides can import it without a dependency cycle: the service
// imports the public pops package for planning, and the public package
// imports wire for the client.
//
// Fingerprints travel as zero-padded hex strings ("%016x"), not JSON
// numbers: a uint64 does not survive the float64 round-trip of generic JSON
// decoders.
package wire

import (
	"fmt"
	"strconv"
	"time"

	"pops/internal/obs"
	"pops/internal/popsnet"
)

// Overload-control headers shared by client, service, and proxy.
const (
	// HeaderDeadline carries the caller's absolute deadline across process
	// boundaries as microseconds since the Unix epoch (see EncodeDeadline).
	// The receiving tier derives its request context's deadline from it, so
	// a queued request whose caller has already given up is shed before it
	// consumes a planner worker.
	HeaderDeadline = "X-Deadline"
	// HeaderTenant names the admission tenant of a request. The body field
	// RouteRequest.Tenant wins when both are set; the header exists so
	// GET-style calls and proxies can tag without rewriting bodies.
	HeaderTenant = "X-Tenant"
	// HeaderRetryAfterMs refines the standard Retry-After header (whole
	// seconds, rounded up) with the server's millisecond-precision backoff
	// hint on 429 responses.
	HeaderRetryAfterMs = "X-Retry-After-Ms"
	// HeaderOverloadQueue names which bound shed the request ("admission",
	// "stream", "direct", "backend"), so clients reconstruct the typed
	// *pops.OverloadError instead of string-matching the body.
	HeaderOverloadQueue = "X-Overload-Queue"
)

// EncodeDeadline renders an absolute deadline for HeaderDeadline.
func EncodeDeadline(t time.Time) string {
	return strconv.FormatInt(t.UnixMicro(), 10)
}

// ParseDeadline decodes a HeaderDeadline value.
func ParseDeadline(s string) (time.Time, error) {
	us, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("wire: deadline header %q is not unix microseconds", s)
	}
	return time.UnixMicro(us), nil
}

// Workload kind tags of the tagged request schema, mirroring the
// pops.Workload constructors. An empty workload field means "permutation".
const (
	WorkloadPermutation       = "permutation"
	WorkloadHRelation         = "hrelation"
	WorkloadAllToAll          = "all-to-all"
	WorkloadOneToAll          = "one-to-all"
	WorkloadFaultyPermutation = "faulty-permutation"
)

// Coupler names one coupler c(b, a) of a fault set: destination group B,
// source group A.
type Coupler struct {
	B int `json:"b"`
	A int `json:"a"`
}

// FaultSet is the wire form of pops.FaultSet: the dead couplers and dead
// groups a faulty-permutation workload must route around.
type FaultSet struct {
	Couplers []Coupler `json:"couplers,omitempty"`
	Groups   []int     `json:"groups,omitempty"`
}

// UnroutableInfo carries the typed planning failure of a faulty-permutation
// workload whose fault set severs some source/destination pair. It rides in
// PlanResult next to the rendered Error text, so clients can reconstruct a
// *pops.UnroutableError instead of string-matching.
type UnroutableInfo struct {
	Packet     int  `json:"packet"`
	SrcGroup   int  `json:"src_group"`
	DstGroup   int  `json:"dst_group"`
	SeveredSrc bool `json:"severed_src,omitempty"`
	SeveredDst bool `json:"severed_dst,omitempty"`
}

// Request is one packet demand of an h-relation workload: move a packet
// from Src to Dst.
type Request struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// RouteRequest is the body of POST /route and POST /route/stream: one
// workload to plan on POPS(D, G). Workload selects the kind ("" means
// "permutation"): permutation workloads carry one permutation (Pi) or — on
// /route only — a batch (Pis); hrelation workloads carry Requests; all-to-all
// needs no payload; one-to-all carries Speaker.
type RouteRequest struct {
	D int `json:"d"`
	G int `json:"g"`
	// Workload tags the request kind (WorkloadPermutation, ...). Empty
	// means WorkloadPermutation, the original untagged schema.
	Workload string `json:"workload,omitempty"`
	// Tenant names the admission tenant this request is charged to (the
	// TenantMix workload model): each tenant holds a weighted-fair share of
	// every shard's admission queue, and /stats reports per-tenant admitted
	// and shed counters. Empty requests share the default quota. The
	// X-Tenant header is a fallback for callers that cannot edit bodies.
	Tenant string `json:"tenant,omitempty"`
	// Pi is the single-permutation form; the response carries one plan.
	Pi []int `json:"pi,omitempty"`
	// Pis is the batch form; the response carries one plan per entry, in
	// order.
	Pis [][]int `json:"pis,omitempty"`
	// Requests is the h-relation form: the packet demands to deliver.
	Requests []Request `json:"requests,omitempty"`
	// Speaker is the broadcasting processor of a one-to-all workload.
	Speaker int `json:"speaker,omitempty"`
	// Faults is the fault set of a faulty-permutation workload (which carries
	// its permutation in Pi). Nil or empty means no faults: the plan is then
	// byte-identical to the plain permutation plan.
	Faults *FaultSet `json:"faults,omitempty"`
	// Strategy selects the routing strategy for permutation workloads
	// ("theorem2", "greedy", "direct-optimal", "singleslot", "auto"). Empty
	// means "theorem2", the only strategy served through the micro-batching
	// + plan-cache path; other strategies are planned per request.
	// Non-permutation workloads reject a non-default strategy.
	Strategy string `json:"strategy,omitempty"`
	// IncludeSchedule asks for the full slot schedule in each plan, so the
	// caller can replay it on a simulator. Off by default: schedules are
	// O(n) per slot and most callers only need the summary.
	IncludeSchedule bool `json:"include_schedule,omitempty"`
}

// PlanResult is one planned permutation of a RouteResponse. Either Error is
// set (and the rest is zero), or the plan fields are.
type PlanResult struct {
	Strategy string `json:"strategy,omitempty"`
	// Workload tags the kind of plan (WorkloadPermutation, ...); empty for
	// permutation plans, preserving the original schema.
	Workload string `json:"workload,omitempty"`
	Slots    int    `json:"slots,omitempty"`
	Rounds   int    `json:"rounds,omitempty"`
	// H is the relation degree of an h-relation or all-to-all plan.
	H           int    `json:"h,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Cached reports that this plan was answered from the shard's
	// fingerprint plan cache rather than replanned.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// Unroutable refines Error for faulty-permutation workloads whose fault
	// set severs a group pair — the one typed planning failure of the kind.
	Unroutable *UnroutableInfo   `json:"unroutable,omitempty"`
	Schedule   *popsnet.Schedule `json:"schedule,omitempty"`
}

// RouteResponse is the body answering POST /route.
type RouteResponse struct {
	D int `json:"d"`
	G int `json:"g"`
	// RequestID echoes the request's X-Request-Id header (client-supplied or
	// server-generated), the key correlating this response with /debug/slow
	// phase breakdowns and proxy-side failover labels.
	RequestID string       `json:"request_id,omitempty"`
	Plans     []PlanResult `json:"plans"`
}

// StreamRecord is one line of the POST /route/stream NDJSON response. The
// server emits exactly one "meta" record first, then "slot" records as the
// planner peels color classes — flushed individually, so slots reach the
// client while later factors are still being computed — and finally one
// "done" record (or one "error" record if planning failed mid-stream).
// Exactly one of Meta, Slot, Done and Error is set, matching Type.
type StreamRecord struct {
	Type  string      `json:"type"` // "meta", "slot", "done" or "error"
	Meta  *StreamMeta `json:"meta,omitempty"`
	Slot  *StreamSlot `json:"slot,omitempty"`
	Done  *StreamDone `json:"done,omitempty"`
	Error string      `json:"error,omitempty"`
}

// StreamMeta opens a slot stream: the shape, the total schedule slot count
// (known before any slot is computed), how many slot records will follow,
// and whether the stream replays a fingerprint-cache hit (whole-slot
// records) or is planned incrementally (one record per color class).
type StreamMeta struct {
	D int `json:"d"`
	G int `json:"g"`
	// Workload tags the kind of plan being streamed; empty for permutation
	// streams, preserving the original schema.
	Workload    string `json:"workload,omitempty"`
	Slots       int    `json:"slots"`
	Fragments   int    `json:"fragments"`
	Strategy    string `json:"strategy"`
	Fingerprint string `json:"fingerprint"`
	Cached      bool   `json:"cached,omitempty"`
	// RequestID echoes the stream's X-Request-Id, mirroring
	// RouteResponse.RequestID for the NDJSON path.
	RequestID string `json:"request_id,omitempty"`
}

// StreamSlot is one streamed fragment of the schedule: the sends and recvs
// that one relay color class contributes to slot Slot, starting Offset
// entries into the slot. Fragments of one slot tile it exactly; Final
// marks its last fragment. Color is -1 for whole-slot fragments (cache
// hits and non-relay strategies). Fragments of different slots may
// interleave, and fragments within a slot may arrive out of Offset order;
// reassemble by (Slot, Offset) to recover the batch-identical schedule.
type StreamSlot struct {
	Slot   int            `json:"slot"`
	Color  int            `json:"color"`
	Offset int            `json:"offset"`
	Final  bool           `json:"final,omitempty"`
	Sends  []popsnet.Send `json:"sends"`
	Recvs  []popsnet.Recv `json:"recvs"`
}

// StreamDone closes a successful slot stream.
type StreamDone struct {
	Slots     int `json:"slots"`
	Fragments int `json:"fragments"`
}

// SlotsResponse answers GET /slots?d=&g=: the Theorem 2 slot count every
// permutation on that shape routes in.
type SlotsResponse struct {
	D     int `json:"d"`
	G     int `json:"g"`
	Slots int `json:"slots"`
}

// CacheStats mirrors pops.CacheStats for one shard's plan cache.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// ShardStats describes one live planner shard.
type ShardStats struct {
	D        int    `json:"d"`
	G        int    `json:"g"`
	Requests uint64 `json:"requests"`
	// Streams counts /route/stream requests admitted by this shard. They
	// bypass the micro-batching queue: each stream owns a worker planner
	// and delivers slot fragments while the queue keeps admitting.
	Streams uint64 `json:"streams,omitempty"`
	// Batches and BatchedRequests describe the micro-batching admission
	// queue: BatchedRequests/Batches is the mean coalesced batch size, and
	// MaxBatch the largest flush observed.
	Batches         uint64 `json:"batches"`
	BatchedRequests uint64 `json:"batched_requests"`
	MaxBatch        uint64 `json:"max_batch"`
	// QueueLen/QueueCap snapshot the bounded admission queue: entries
	// waiting for a micro-batch flush against the configured depth.
	QueueLen int `json:"queue_len,omitempty"`
	QueueCap int `json:"queue_cap,omitempty"`
	// Sheds counts admissions this shard rejected with an overload verdict
	// (queue full, tenant quota, stream cap); DeadlineSheds the queued
	// entries dropped at flush because their deadline had already passed.
	Sheds         uint64 `json:"sheds,omitempty"`
	DeadlineSheds uint64 `json:"deadline_sheds,omitempty"`
	// ActiveStreams is the number of open slot streams held against the
	// shard's concurrent-stream cap.
	ActiveStreams int64      `json:"active_streams,omitempty"`
	Cache         CacheStats `json:"cache"`
}

// TenantStats is one tenant's admission-fairness ledger: its configured
// weight and how many of its requests were admitted or shed.
type TenantStats struct {
	// Tenant is the tenant name; "" reports the default (untagged) tenant.
	Tenant string `json:"tenant"`
	// Weight is the tenant's configured admission weight (1 when unset).
	Weight float64 `json:"weight,omitempty"`
	// Admitted counts requests accepted into a shard queue, stream slot, or
	// direct-execution slot under this tenant.
	Admitted uint64 `json:"admitted"`
	// Shed counts requests rejected with an overload verdict (429).
	Shed uint64 `json:"shed"`
	// DeadlineShed counts queued requests dropped because their propagated
	// deadline expired before a planner worker picked them up.
	DeadlineShed uint64 `json:"deadline_shed,omitempty"`
}

// Codec names used in WireCodecStats.Codec and the wire_codec metric label.
const (
	CodecJSON   = "json"
	CodecNDJSON = "ndjson"
	CodecBinary = "binary"
)

// WireCodecStats is one response codec's wire-path ledger: how many unary
// /route responses and /route/stream streams were answered in that codec,
// and how many stream bytes were flushed. Codec names are "json" (unary
// JSON), "ndjson" (NDJSON stream records, the default/debug surface), and
// "binary" (the length-prefixed application/x-pops-bin framing).
type WireCodecStats struct {
	Codec         string `json:"codec"`
	Requests      uint64 `json:"requests,omitempty"`
	Streams       uint64 `json:"streams,omitempty"`
	StreamedBytes uint64 `json:"streamed_bytes,omitempty"`
}

// LatencyBucket is one bucket of the request-latency histogram: Count
// requests completed in at most LEMicros microseconds (and more than the
// previous bucket's bound). The final bucket has LEMicros == 0, meaning
// "no upper bound". It aliases obs.Bucket so service histograms snapshot
// straight onto the wire.
type LatencyBucket = obs.Bucket

// PlanTimeStat is one per-(d, g, strategy) plan-time entry of
// StatsResponse.PlanTimes: observation count, cache hits, EWMA, and a
// latency histogram of measured planning time.
type PlanTimeStat = obs.PlanTimeStat

// SlowRequest is one retained slow request with its full phase breakdown,
// served by GET /debug/slow.
type SlowRequest = obs.SpanSnapshot

// SlowResponse answers GET /debug/slow: the slowest retained requests,
// slowest first.
type SlowResponse struct {
	// Server identifies the answering node, mirroring StatsResponse.Server.
	Server   string        `json:"server,omitempty"`
	Requests []SlowRequest `json:"requests"`
}

// StatsResponse answers GET /stats: service-wide counters plus one entry per
// live shard. CacheHits/CacheMisses aggregate over live and evicted shards.
//
// A single popsserved node fills Server with its own identity and leaves
// Backends empty. A popsproxy front door answers the same endpoint with the
// fleet aggregate — counters summed, latency histograms merged bucket-wise,
// shard entries concatenated — and one Backends entry per node, so a caller
// reading /stats cannot tell one machine from a fleet unless it asks.
type StatsResponse struct {
	// Server identifies the answering node (its -name flag or listen
	// address); a proxy reports "popsproxy".
	Server        string `json:"server,omitempty"`
	ShardCount    int    `json:"shard_count"`
	MaxShards     int    `json:"max_shards"`
	EvictedShards uint64 `json:"evicted_shards"`
	Requests      uint64 `json:"requests"`
	Streams       uint64 `json:"streams"`
	StreamedSlots uint64 `json:"streamed_slots"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	// FaultPlans counts faulty-permutation workloads served; Unroutable
	// counts the subset rejected with a typed unroutable verdict.
	FaultPlans uint64 `json:"fault_plans,omitempty"`
	Unroutable uint64 `json:"unroutable,omitempty"`
	// Sheds counts requests rejected with an overload verdict (429);
	// DeadlineSheds the queued entries dropped because their propagated
	// deadline expired before planning started. Both are included in
	// neither Requests' successes nor the latency histogram.
	Sheds         uint64 `json:"sheds,omitempty"`
	DeadlineSheds uint64 `json:"deadline_sheds,omitempty"`
	// Tenants is the per-tenant fairness ledger, sorted by tenant name.
	Tenants []TenantStats `json:"tenants,omitempty"`
	// WireCodecs breaks the wire path down by negotiated response codec
	// ("json", "ndjson", "binary"), sorted by codec name. A proxy answers
	// with the fleet merge (counters summed by codec).
	WireCodecs []WireCodecStats `json:"wire_codecs,omitempty"`
	Latency    []LatencyBucket  `json:"latency"`
	// TimeToFirstSlot is the streaming analogue of Latency: time from
	// stream admission until the first slot fragment was ready to flush.
	// It is the measured signal for the per-shape cost model (see ROADMAP).
	TimeToFirstSlot []LatencyBucket `json:"time_to_first_slot"`
	// PlanTimes is the per-(d, g, strategy) measured plan-time table: EWMAs
	// and histograms of actual planning work (cache hits counted separately).
	// This is the data source for the learned Auto cost model. A proxy
	// answers with the fleet merge: counts summed, EWMAs count-weighted,
	// buckets merged bucket-wise.
	PlanTimes []PlanTimeStat `json:"plan_times,omitempty"`
	Shards    []ShardStats   `json:"shards"`
	// Backends is the per-node breakdown of a fleet aggregate: one entry
	// per configured backend, present only when a proxy answered.
	Backends []BackendStats `json:"backends,omitempty"`
}

// BackendStats describes one popsserved node behind a popsproxy front door:
// the proxy's own per-backend counters plus the node's self-reported /stats
// snapshot (nil when the node was unreachable at snapshot time).
type BackendStats struct {
	// ID is the backend's base URL on the proxy's ring.
	ID string `json:"id"`
	// Server echoes the node's self-reported identity (StatsResponse.Server).
	Server string `json:"server,omitempty"`
	// Healthy reports the proxy's current health verdict for the node.
	Healthy bool `json:"healthy"`
	// Requests and Streams count what the proxy placed on this node.
	Requests uint64 `json:"requests"`
	Streams  uint64 `json:"streams"`
	// Failovers counts requests that left this node for the next ring owner
	// after a connection error; Errors counts connection errors observed.
	Failovers uint64 `json:"failovers"`
	Errors    uint64 `json:"errors"`
	// Ejections counts healthy→unhealthy transitions: how often the proxy
	// ejected this node from the ring (health-probe failures or consecutive
	// request errors crossing the threshold).
	Ejections uint64 `json:"ejections,omitempty"`
	// Sheds counts overload verdicts (429) the proxy observed from this
	// node or imposed on its behalf (the per-backend concurrency limit).
	Sheds uint64 `json:"sheds,omitempty"`
	// BreakerState is the proxy's circuit-breaker verdict for the node:
	// "closed" (serving), "open" (tripped, excluded from placement until
	// the cooldown), or "half-open" (probing with one trial request).
	BreakerState string `json:"breaker_state,omitempty"`
	// BreakerOpens counts closed→open breaker transitions.
	BreakerOpens uint64 `json:"breaker_opens,omitempty"`
	// CacheHits/CacheMisses echo the node's own totals, so per-node cache
	// affinity is visible without fetching every node's /stats.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Stats is the node's full /stats snapshot; nil if unreachable.
	Stats *StatsResponse `json:"stats,omitempty"`
}
