package perms

import (
	"fmt"
	"math/rand"
	"testing"
)

// permutations appends every permutation of {0,…,n−1} to out via Heap's
// algorithm. Used to check Fingerprint exhaustively on small n.
func permutations(n int) [][]int {
	var out [][]int
	pi := Identity(n)
	var heap func(k int)
	heap = func(k int) {
		if k == 1 {
			out = append(out, append([]int(nil), pi...))
			return
		}
		for i := 0; i < k; i++ {
			heap(k - 1)
			if k%2 == 0 {
				pi[i], pi[k-1] = pi[k-1], pi[i]
			} else {
				pi[0], pi[k-1] = pi[k-1], pi[0]
			}
		}
	}
	heap(n)
	return out
}

// TestFingerprintDistinctOnAllSmallPermutations is the exhaustive collision
// sanity check: across every permutation of every n ≤ 7 (1+2+6+…+5040 =
// 5913 inputs, including the cross-length pairs) no two fingerprints
// coincide. A 64-bit hash with independent outputs would collide here with
// probability < 2⁻⁴⁰, so any collision indicates structural weakness.
func TestFingerprintDistinctOnAllSmallPermutations(t *testing.T) {
	seen := make(map[uint64][]int)
	for n := 1; n <= 7; n++ {
		for _, pi := range permutations(n) {
			fp := Fingerprint(pi)
			if prev, ok := seen[fp]; ok {
				t.Fatalf("Fingerprint collision: %v and %v both hash to %#016x", prev, pi, fp)
			}
			seen[fp] = pi
		}
	}
}

// TestFingerprintSensitiveToTranspositions checks order sensitivity: every
// adjacent transposition of a structured permutation changes the digest.
// (A hash that merely summed its elements would pass the value tests but
// fail this one.)
func TestFingerprintSensitiveToTranspositions(t *testing.T) {
	const n = 64
	base := VectorReversal(n)
	fp := Fingerprint(base)
	for i := 0; i+1 < n; i++ {
		swapped := append([]int(nil), base...)
		swapped[i], swapped[i+1] = swapped[i+1], swapped[i]
		if got := Fingerprint(swapped); got == fp {
			t.Fatalf("swapping positions %d,%d left the fingerprint unchanged (%#016x)", i, i+1, fp)
		}
	}
}

// TestFingerprintDeterministicAndEqualOnCopies pins the two properties a
// cache key needs: pure function of content (copies hash alike) and
// stability across calls.
func TestFingerprintDeterministicAndEqualOnCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 32; trial++ {
		pi := Random(256, rng)
		cp := append([]int(nil), pi...)
		if Fingerprint(pi) != Fingerprint(cp) {
			t.Fatal("equal permutations fingerprint differently")
		}
		if Fingerprint(pi) != Fingerprint(pi) {
			t.Fatal("fingerprint is not deterministic")
		}
	}
}

// TestFingerprintStructuredFamiliesDistinct feeds the recurring cache
// workloads named in the ROADMAP — mesh shifts and BPC-style structured
// permutations on one shape — and requires pairwise-distinct keys, since
// these are exactly the families a plan cache must keep apart.
func TestFingerprintStructuredFamiliesDistinct(t *testing.T) {
	const rows, cols = 16, 16
	seen := make(map[uint64]string)
	add := func(name string, pi []int) {
		t.Helper()
		fp := Fingerprint(pi)
		if prev, ok := seen[fp]; ok {
			t.Fatalf("families %s and %s share fingerprint %#016x", prev, name, fp)
		}
		seen[fp] = name
	}
	for dr := 0; dr < rows; dr++ {
		for dc := 0; dc < cols; dc++ {
			pi, err := MeshShift(rows, cols, dr, dc)
			if err != nil {
				t.Fatal(err)
			}
			add("meshshift", pi)
		}
	}
	add("reversal", VectorReversal(rows*cols))
	add("transpose", Transpose(rows, cols))
	for s := 1; s < rows*cols; s += 17 {
		add("cyclic", CyclicShift(rows*cols, s))
	}
}

// BenchmarkFingerprint measures the cache-key cost the serving path pays per
// request, at the batch sizes the planner shards see (n = d·g).
func BenchmarkFingerprint(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		pi := VectorReversal(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= Fingerprint(pi)
			}
			_ = sink
		})
	}
}
