package perms

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := Validate([]int{2, 0, 1}); err != nil {
		t.Fatalf("valid permutation rejected: %v", err)
	}
	if err := Validate([]int{}); err != nil {
		t.Fatalf("empty permutation rejected: %v", err)
	}
	if err := Validate([]int{0, 0}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := Validate([]int{0, 2}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := Validate([]int{-1, 0}); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestIdentityInverseCompose(t *testing.T) {
	id := Identity(5)
	for i, v := range id {
		if v != i {
			t.Fatal("Identity wrong")
		}
	}
	pi := []int{2, 0, 3, 1}
	inv := Inverse(pi)
	if !Equal(Compose(pi, inv), Identity(4)) {
		t.Fatal("pi ∘ pi⁻¹ ≠ id")
	}
	if !Equal(Compose(inv, pi), Identity(4)) {
		t.Fatal("pi⁻¹ ∘ pi ≠ id")
	}
}

func TestComposeLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Compose did not panic")
		}
	}()
	Compose([]int{0}, []int{0, 1})
}

func TestEqual(t *testing.T) {
	if Equal([]int{0, 1}, []int{0}) {
		t.Fatal("different lengths equal")
	}
	if Equal([]int{0, 1}, []int{1, 0}) {
		t.Fatal("different values equal")
	}
	if !Equal([]int{1, 0}, []int{1, 0}) {
		t.Fatal("equal values not equal")
	}
}

func TestIsDerangement(t *testing.T) {
	if IsDerangement([]int{0, 2, 1}) {
		t.Fatal("fixed point missed")
	}
	if !IsDerangement([]int{1, 2, 0}) {
		t.Fatal("derangement rejected")
	}
}

func TestRandomDerangement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 2; n <= 40; n++ {
		pi := RandomDerangement(n, rng)
		if err := Validate(pi); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !IsDerangement(pi) {
			t.Fatalf("n=%d: has fixed point", n)
		}
	}
}

func TestRandomDerangementPanicsBelow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=1 did not panic")
		}
	}()
	RandomDerangement(1, rand.New(rand.NewSource(1)))
}

func TestVectorReversal(t *testing.T) {
	pi := VectorReversal(4)
	want := []int{3, 2, 1, 0}
	if !Equal(pi, want) {
		t.Fatalf("reversal = %v, want %v", pi, want)
	}
	if err := Validate(pi); err != nil {
		t.Fatal(err)
	}
	// Reversal is an involution.
	if !Equal(Compose(pi, pi), Identity(4)) {
		t.Fatal("reversal not an involution")
	}
}

func TestTranspose(t *testing.T) {
	// 2x3 matrix: element (i,j) at 3i+j moves to (j,i) at 2j+i.
	pi := Transpose(2, 3)
	if err := Validate(pi); err != nil {
		t.Fatal(err)
	}
	if pi[0*3+1] != 1*2+0 {
		t.Fatalf("element (0,1) moved to %d, want 2", pi[1])
	}
	// Transposing twice (with swapped dims) is the identity.
	back := Transpose(3, 2)
	if !Equal(Compose(back, pi), Identity(6)) {
		t.Fatal("transpose ∘ transpose ≠ id")
	}
}

func TestCyclicShift(t *testing.T) {
	pi := CyclicShift(5, 2)
	if pi[4] != 1 || pi[0] != 2 {
		t.Fatalf("shift = %v", pi)
	}
	if !Equal(CyclicShift(5, -3), pi) {
		t.Fatal("negative shift not normalized")
	}
	if !Equal(CyclicShift(5, 7), pi) {
		t.Fatal("large shift not normalized")
	}
}

func TestBPCValidation(t *testing.T) {
	if _, err := NewBPC(2, []int{0}, 0); err == nil {
		t.Fatal("short bit perm accepted")
	}
	if _, err := NewBPC(2, []int{0, 0}, 0); err == nil {
		t.Fatal("non-permutation bits accepted")
	}
	if _, err := NewBPC(2, []int{0, 1}, 4); err == nil {
		t.Fatal("complement above width accepted")
	}
	if _, err := NewBPC(-1, nil, 0); err == nil {
		t.Fatal("negative width accepted")
	}
	if _, err := NewBPC(63, make([]int, 63), 0); err == nil {
		t.Fatal("oversized width accepted")
	}
}

func TestBPCFamiliesArePermutations(t *testing.T) {
	for bits := 1; bits <= 6; bits++ {
		builders := []func(int) (*BPC, error){
			func(b int) (*BPC, error) { return BitReversal(b) },
			func(b int) (*BPC, error) { return PerfectShuffle(b) },
			func(b int) (*BPC, error) { return ComplementAll(b) },
		}
		for i, mk := range builders {
			bpc, err := mk(bits)
			if err != nil {
				t.Fatalf("builder %d bits %d: %v", i, bits, err)
			}
			if err := Validate(bpc.Permutation()); err != nil {
				t.Fatalf("builder %d bits %d: %v", i, bits, err)
			}
		}
	}
}

func TestHypercubeExchange(t *testing.T) {
	ex, err := HypercubeExchange(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	pi := ex.Permutation()
	for i := range pi {
		if pi[i] != i^2 {
			t.Fatalf("π(%d) = %d, want %d", i, pi[i], i^2)
		}
	}
	if _, err := HypercubeExchange(3, 3); err == nil {
		t.Fatal("bit out of range accepted")
	}
	if _, err := HypercubeExchange(3, -1); err == nil {
		t.Fatal("negative bit accepted")
	}
}

func TestComplementAllEqualsReversal(t *testing.T) {
	for bits := 1; bits <= 5; bits++ {
		bpc, err := ComplementAll(bits)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(bpc.Permutation(), VectorReversal(1<<uint(bits))) {
			t.Fatalf("bits=%d: ¬i ≠ reversal", bits)
		}
	}
}

func TestBitReversalInvolution(t *testing.T) {
	br, err := BitReversal(4)
	if err != nil {
		t.Fatal(err)
	}
	pi := br.Permutation()
	if !Equal(Compose(pi, pi), Identity(16)) {
		t.Fatal("bit reversal not an involution")
	}
}

func TestPerfectShuffleDoubles(t *testing.T) {
	ps, err := PerfectShuffle(3)
	if err != nil {
		t.Fatal(err)
	}
	pi := ps.Permutation()
	// Left rotation of bits: i = b2b1b0 -> b1b0b2, i.e. π(i) = 2i mod 7 for
	// i < 7 with π(7)=7 on 8 elements.
	for i := 0; i < 7; i++ {
		if pi[i] != (2*i)%7 {
			t.Fatalf("π(%d) = %d, want %d", i, pi[i], (2*i)%7)
		}
	}
	if pi[7] != 7 {
		t.Fatalf("π(7) = %d, want 7", pi[7])
	}
}

func TestMeshShift(t *testing.T) {
	pi, err := MeshShift(2, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// (0,0)->(1,0): 0 -> 3; (1,2)->(0,2): 5 -> 2.
	if pi[0] != 3 || pi[5] != 2 {
		t.Fatalf("down shift = %v", pi)
	}
	if err := Validate(pi); err != nil {
		t.Fatal(err)
	}
	// Shifting down then up is the identity.
	up, err := MeshShift(2, 3, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(Compose(up, pi), Identity(6)) {
		t.Fatal("down∘up ≠ id")
	}
	if _, err := MeshShift(0, 3, 0, 0); err == nil {
		t.Fatal("empty mesh accepted")
	}
}

func TestBlockPermutation(t *testing.T) {
	// d=2, g=2, σ = swap, identity inner: π = [2,3,0,1].
	pi, err := BlockPermutation(2, 2, []int{1, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(pi, []int{2, 3, 0, 1}) {
		t.Fatalf("block perm = %v", pi)
	}
	// With inner reversal in group 0 only.
	pi, err = BlockPermutation(2, 2, []int{1, 0}, [][]int{{1, 0}, nil})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(pi, []int{3, 2, 0, 1}) {
		t.Fatalf("block perm with inner = %v", pi)
	}
}

func TestBlockPermutationValidation(t *testing.T) {
	if _, err := BlockPermutation(0, 2, []int{1, 0}, nil); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := BlockPermutation(2, 2, []int{0}, nil); err == nil {
		t.Fatal("short sigma accepted")
	}
	if _, err := BlockPermutation(2, 2, []int{0, 0}, nil); err == nil {
		t.Fatal("non-permutation sigma accepted")
	}
	if _, err := BlockPermutation(2, 2, []int{1, 0}, [][]int{nil}); err == nil {
		t.Fatal("wrong inner count accepted")
	}
	if _, err := BlockPermutation(2, 2, []int{1, 0}, [][]int{{0}, nil}); err == nil {
		t.Fatal("short inner accepted")
	}
	if _, err := BlockPermutation(2, 2, []int{1, 0}, [][]int{{0, 0}, nil}); err == nil {
		t.Fatal("non-permutation inner accepted")
	}
}

func TestGroupRotation(t *testing.T) {
	pi, err := GroupRotation(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(pi, []int{3, 4, 5, 0, 1, 2}) {
		t.Fatalf("group rotation = %v", pi)
	}
}

func TestRandomIsPermutationProperty(t *testing.T) {
	f := func(nSeed uint8, seed int64) bool {
		n := int(nSeed)%64 + 1
		pi := Random(n, rand.New(rand.NewSource(seed)))
		return Validate(pi) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseProperty(t *testing.T) {
	f := func(nSeed uint8, seed int64) bool {
		n := int(nSeed)%64 + 1
		pi := Random(n, rand.New(rand.NewSource(seed)))
		return Equal(Compose(pi, Inverse(pi)), Identity(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
