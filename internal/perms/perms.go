// Package perms provides the permutation families used throughout the POPS
// routing literature: the generic utilities (validation, inverse,
// composition), the random and derangement generators used for sweeps, and
// the structured families the related work routes one by one — vector
// reversal, matrix transpose, BPC permutations (Sahni 2000a), hypercube
// bit-b neighbor exchanges and mesh wraparound shifts (Sahni 2000b), and the
// block permutations realizing the lower-bound classes of Propositions 2–3.
package perms

import (
	"fmt"
	"math/rand"
)

// Validate checks that pi is a permutation of {0, …, len(pi)−1}.
func Validate(pi []int) error {
	return ValidateInto(pi, make([]bool, len(pi)))
}

// ValidateInto is Validate with a caller-provided scratch slice, so repeated
// validations (the planner's batch path) need not allocate. seen must have
// length at least len(pi); its first len(pi) entries are overwritten.
func ValidateInto(pi []int, seen []bool) error {
	seen = seen[:len(pi)]
	for i := range seen {
		seen[i] = false
	}
	for i, v := range pi {
		if v < 0 || v >= len(pi) {
			return fmt.Errorf("perms: π(%d) = %d outside [0,%d)", i, v, len(pi))
		}
		if seen[v] {
			return fmt.Errorf("perms: value %d appears twice", v)
		}
		seen[v] = true
	}
	return nil
}

// Identity returns the identity permutation on n elements.
func Identity(n int) []int {
	pi := make([]int, n)
	for i := range pi {
		pi[i] = i
	}
	return pi
}

// Inverse returns σ with σ(π(i)) = i. It panics if pi is not a permutation
// (callers validate external input with Validate first).
func Inverse(pi []int) []int {
	inv := make([]int, len(pi))
	for i, v := range pi {
		inv[v] = i
	}
	return inv
}

// Compose returns the permutation (a ∘ b)(i) = a(b(i)).
func Compose(a, b []int) []int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("perms: composing lengths %d and %d", len(a), len(b)))
	}
	out := make([]int, len(a))
	for i := range out {
		out[i] = a[b[i]]
	}
	return out
}

// Equal reports whether two permutations are identical.
func Equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsDerangement reports whether π(i) ≠ i for all i — the hypothesis of
// Proposition 1.
func IsDerangement(pi []int) bool {
	for i, v := range pi {
		if v == i {
			return false
		}
	}
	return true
}

// Random returns a uniformly random permutation of n elements.
func Random(n int, rng *rand.Rand) []int { return rng.Perm(n) }

// RandomDerangement returns a random permutation with no fixed point, via
// Sattolo's algorithm (which samples uniformly among n-cycles; every n-cycle
// is a derangement). It panics for n < 2, where no derangement exists.
func RandomDerangement(n int, rng *rand.Rand) []int {
	if n < 2 {
		panic(fmt.Sprintf("perms: no derangement of %d elements", n))
	}
	pi := Identity(n)
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i)
		pi[i], pi[j] = pi[j], pi[i]
	}
	return pi
}

// VectorReversal returns π(i) = n−1−i (Sahni 2000a). For even g it meets
// the 2⌈d/g⌉ lower bound of Proposition 2.
func VectorReversal(n int) []int {
	pi := make([]int, n)
	for i := range pi {
		pi[i] = n - 1 - i
	}
	return pi
}

// Transpose returns the matrix transpose permutation for an r×c matrix laid
// out row-major over n = r·c processors: element (i, j) at processor i·c+j
// moves to position (j, i) at processor j·r+i.
func Transpose(r, c int) []int {
	pi := make([]int, r*c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			pi[i*c+j] = j*r + i
		}
	}
	return pi
}

// Staircase returns the single-slot-routable permutation on POPS(d, g) that
// sends packet i of group h to processor i of group (h+i) mod g (needs
// d ≤ g): every (source group, destination group) coupler carries at most
// one packet.
func Staircase(d, g int) []int {
	pi := make([]int, d*g)
	for h := 0; h < g; h++ {
		for i := 0; i < d; i++ {
			pi[h*d+i] = ((h+i)%g)*d + i
		}
	}
	return pi
}

// CyclicShift returns π(i) = (i + s) mod n.
func CyclicShift(n, s int) []int {
	pi := make([]int, n)
	s = ((s % n) + n) % n
	for i := range pi {
		pi[i] = (i + s) % n
	}
	return pi
}
