package perms

import "fmt"

// MeshShift returns the wraparound-mesh data movement permutation of
// Sahni 2000b, Theorem 2: on an rows×cols mesh stored row-major (element
// (i, j) at processor i·cols + j), every element moves dr rows down and dc
// columns right, with wraparound. (dr, dc) ∈ {(±1, 0), (0, ±1)} are the four
// primitive SIMD mesh steps; arbitrary shifts are supported.
func MeshShift(rows, cols, dr, dc int) ([]int, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("perms: invalid mesh %dx%d", rows, cols)
	}
	pi := make([]int, rows*cols)
	dr = ((dr % rows) + rows) % rows
	dc = ((dc % cols) + cols) % cols
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			ni := (i + dr) % rows
			nj := (j + dc) % cols
			pi[i*cols+j] = ni*cols + nj
		}
	}
	return pi, nil
}

// BlockPermutation builds a permutation of n = d·g processors from a group
// permutation σ on N_g and per-group inner permutations τ_h on N_d:
// π(i + h·d) = τ_h(i) + σ(h)·d. These are exactly the permutations with the
// "group-mapping" property group(i) = group(j) ⇒ group(π(i)) = group(π(j))
// of Propositions 2 and 3. With σ fixed-point free the class meets the
// 2⌈d/g⌉ lower bound of Proposition 2.
//
// inner may be nil, meaning identity inner permutations; individual entries
// may also be nil.
func BlockPermutation(d, g int, sigma []int, inner [][]int) ([]int, error) {
	if d < 1 || g < 1 {
		return nil, fmt.Errorf("perms: invalid shape d=%d g=%d", d, g)
	}
	if len(sigma) != g {
		return nil, fmt.Errorf("perms: group permutation has %d entries, want %d", len(sigma), g)
	}
	if err := Validate(sigma); err != nil {
		return nil, fmt.Errorf("perms: group permutation: %w", err)
	}
	if inner != nil && len(inner) != g {
		return nil, fmt.Errorf("perms: %d inner permutations, want %d", len(inner), g)
	}
	pi := make([]int, d*g)
	for h := 0; h < g; h++ {
		var tau []int
		if inner != nil && inner[h] != nil {
			if len(inner[h]) != d {
				return nil, fmt.Errorf("perms: inner permutation %d has %d entries, want %d", h, len(inner[h]), d)
			}
			if err := Validate(inner[h]); err != nil {
				return nil, fmt.Errorf("perms: inner permutation %d: %w", h, err)
			}
			tau = inner[h]
		}
		for i := 0; i < d; i++ {
			ti := i
			if tau != nil {
				ti = tau[i]
			}
			pi[i+h*d] = ti + sigma[h]*d
		}
	}
	return pi, nil
}

// GroupRotation is the adversarial instance for direct (greedy) routing:
// every packet of group h is destined to group (h+shift) mod g, preserving
// local order. All d packets of a group compete for a single coupler, so
// direct routing needs d slots while Theorem 2 needs 2⌈d/g⌉.
func GroupRotation(d, g, shift int) ([]int, error) {
	sigma := CyclicShift(g, shift)
	return BlockPermutation(d, g, sigma, nil)
}
