package perms

import "fmt"

// BPC is a bit-permute-complement permutation on n = 2^k processors
// (Sahni 2000a): the destination index is obtained by rearranging the bits
// of the source index and complementing a subset of them. Formally, writing
// i = [i_{k−1} … i_0]₂, bit j of π(i) is i_{BitPerm[j]}, XOR-ed with bit j
// of Complement.
type BPC struct {
	Bits       int    // k: index width; n = 2^k
	BitPerm    []int  // destination bit j takes source bit BitPerm[j]
	Complement uint64 // mask of destination bits to flip
}

// NewBPC validates the parameters and returns the BPC descriptor.
func NewBPC(bits int, bitPerm []int, complement uint64) (*BPC, error) {
	if bits < 0 || bits > 62 {
		return nil, fmt.Errorf("perms: BPC bit width %d out of range", bits)
	}
	if len(bitPerm) != bits {
		return nil, fmt.Errorf("perms: BPC bit permutation has %d entries, want %d", len(bitPerm), bits)
	}
	if err := Validate(bitPerm); err != nil {
		return nil, fmt.Errorf("perms: BPC bit permutation invalid: %w", err)
	}
	if bits < 64 && complement>>uint(bits) != 0 {
		return nil, fmt.Errorf("perms: BPC complement mask %#x has bits above width %d", complement, bits)
	}
	return &BPC{Bits: bits, BitPerm: bitPerm, Complement: complement}, nil
}

// N returns the number of processors, 2^Bits.
func (b *BPC) N() int { return 1 << uint(b.Bits) }

// Apply returns π(i) for a single index.
func (b *BPC) Apply(i int) int {
	out := 0
	for j := 0; j < b.Bits; j++ {
		bit := (i >> uint(b.BitPerm[j])) & 1
		out |= bit << uint(j)
	}
	return out ^ int(b.Complement)
}

// Permutation materializes the full permutation vector.
func (b *BPC) Permutation() []int {
	pi := make([]int, b.N())
	for i := range pi {
		pi[i] = b.Apply(i)
	}
	return pi
}

// HypercubeExchange returns the BPC permutation π(i) = i ⊕ 2^bit — the
// primitive SIMD hypercube communication pattern of Sahni 2000b, Theorem 1.
func HypercubeExchange(bits, bit int) (*BPC, error) {
	if bit < 0 || bit >= bits {
		return nil, fmt.Errorf("perms: exchange bit %d outside width %d", bit, bits)
	}
	return NewBPC(bits, Identity(bits), 1<<uint(bit))
}

// BitReversal returns the BPC permutation reversing the order of the index
// bits (the FFT data exchange pattern).
func BitReversal(bits int) (*BPC, error) {
	perm := make([]int, bits)
	for j := range perm {
		perm[j] = bits - 1 - j
	}
	return NewBPC(bits, perm, 0)
}

// PerfectShuffle returns the BPC permutation that rotates the index bits
// left by one (π(i) = 2i mod (n−1) style shuffle).
func PerfectShuffle(bits int) (*BPC, error) {
	perm := make([]int, bits)
	for j := range perm {
		perm[j] = ((j - 1) + bits) % bits
	}
	return NewBPC(bits, perm, 0)
}

// ComplementAll returns the BPC permutation π(i) = ¬i (all bits flipped) —
// exactly VectorReversal on 2^bits elements.
func ComplementAll(bits int) (*BPC, error) {
	var mask uint64
	if bits > 0 {
		mask = (1 << uint(bits)) - 1
	}
	return NewBPC(bits, Identity(bits), mask)
}
