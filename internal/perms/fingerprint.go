package perms

// Fingerprint returns a 64-bit content fingerprint of pi, the cache key of
// the plan-memoization layers: two equal permutations always fingerprint
// identically, and distinct permutations collide with probability ~2⁻⁶⁴.
// Because a 64-bit digest cannot be collision-free, caches keyed by it must
// verify equality (Equal) on every hit before trusting the stored plan.
//
// The hash is an FNV-1a walk over the elements (order-sensitive, so
// transpositions change the digest) seeded with the length, followed by a
// 64-bit finalizer (the murmur3 avalanche) so that low-entropy inputs —
// permutations differ only in small integers — still spread over the whole
// output space. It allocates nothing and needs one multiply per element.
func Fingerprint(pi []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(len(pi))) * prime64
	for _, v := range pi {
		h = (h ^ uint64(v)) * prime64
	}
	// Finalizer: murmur3's 64-bit avalanche. FNV-1a alone mixes the last
	// few elements weakly into the high bits; the avalanche makes every
	// input bit flip every output bit with probability ~1/2.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
