// Package graph implements the bipartite multigraph substrate used by the
// fair-distribution machinery of Mei & Rizzi (Theorem 1).
//
// Graphs are bipartite with node classes L (left) and R (right). Parallel
// edges are first-class: every edge has a stable integer identifier, so
// higher layers (edge coloring, fair distributions) can attach meaning to an
// individual edge (e.g. "the packet originating at processor 7") even when
// several edges join the same node pair.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is a single (possibly parallel) edge of a bipartite multigraph.
// L is an index into the left node class, R into the right one.
type Edge struct {
	L, R int
}

// Bipartite is a bipartite multigraph with a fixed number of left and right
// nodes and an append-only edge list. Edge identifiers are dense: the i-th
// added edge has ID i.
//
// The zero value is an empty graph with no nodes; use New.
type Bipartite struct {
	nLeft, nRight int
	edges         []Edge
	adjL          [][]int // left node -> incident edge IDs
	adjR          [][]int // right node -> incident edge IDs
}

// New returns an empty bipartite multigraph with nLeft left nodes and nRight
// right nodes. It panics if either count is negative.
func New(nLeft, nRight int) *Bipartite {
	if nLeft < 0 || nRight < 0 {
		panic(fmt.Sprintf("graph: negative node count (%d, %d)", nLeft, nRight))
	}
	return &Bipartite{
		nLeft:  nLeft,
		nRight: nRight,
		adjL:   make([][]int, nLeft),
		adjR:   make([][]int, nRight),
	}
}

// NLeft returns the number of left nodes.
func (b *Bipartite) NLeft() int { return b.nLeft }

// NRight returns the number of right nodes.
func (b *Bipartite) NRight() int { return b.nRight }

// NumEdges returns the number of edges (counting multiplicities).
func (b *Bipartite) NumEdges() int { return len(b.edges) }

// AddEdge appends an edge between left node l and right node r and returns
// its ID. Parallel edges are permitted. It panics on out-of-range endpoints;
// endpoints come from internal construction code, not external input, so a
// violation is a programming error.
func (b *Bipartite) AddEdge(l, r int) int {
	if l < 0 || l >= b.nLeft || r < 0 || r >= b.nRight {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range (%d,%d)", l, r, b.nLeft, b.nRight))
	}
	id := len(b.edges)
	b.edges = append(b.edges, Edge{L: l, R: r})
	b.adjL[l] = append(b.adjL[l], id)
	b.adjR[r] = append(b.adjR[r], id)
	return id
}

// Edge returns the endpoints of edge id. It panics if id is out of range.
func (b *Bipartite) Edge(id int) Edge {
	return b.edges[id]
}

// Edges returns a copy of the edge list indexed by edge ID.
func (b *Bipartite) Edges() []Edge {
	out := make([]Edge, len(b.edges))
	copy(out, b.edges)
	return out
}

// EdgeList returns the internal edge list indexed by edge ID, without
// copying. The returned slice must not be modified and is invalidated by
// AddEdge/Reset; it exists so the allocation-free matching and coloring
// engines can scan edges without cloning CSR arrays per call.
func (b *Bipartite) EdgeList() []Edge { return b.edges }

// AdjL returns the IDs of edges incident with left node l. The returned
// slice must not be modified.
func (b *Bipartite) AdjL(l int) []int { return b.adjL[l] }

// AdjR returns the IDs of edges incident with right node r. The returned
// slice must not be modified.
func (b *Bipartite) AdjR(r int) []int { return b.adjR[r] }

// DegreeL returns the degree (with multiplicity) of left node l.
func (b *Bipartite) DegreeL(l int) int { return len(b.adjL[l]) }

// DegreeR returns the degree (with multiplicity) of right node r.
func (b *Bipartite) DegreeR(r int) int { return len(b.adjR[r]) }

// MaxDegree returns the maximum degree over all nodes of both classes.
// The maximum degree of the empty graph is 0.
func (b *Bipartite) MaxDegree() int {
	max := 0
	for l := 0; l < b.nLeft; l++ {
		if d := len(b.adjL[l]); d > max {
			max = d
		}
	}
	for r := 0; r < b.nRight; r++ {
		if d := len(b.adjR[r]); d > max {
			max = d
		}
	}
	return max
}

// IsRegular reports whether every node of both classes has degree exactly k.
func (b *Bipartite) IsRegular(k int) bool {
	for l := 0; l < b.nLeft; l++ {
		if len(b.adjL[l]) != k {
			return false
		}
	}
	for r := 0; r < b.nRight; r++ {
		if len(b.adjR[r]) != k {
			return false
		}
	}
	return true
}

// RegularDegree returns (k, true) if the graph is k-regular on both sides,
// and (0, false) otherwise. The empty graph with nodes is 0-regular.
func (b *Bipartite) RegularDegree() (int, bool) {
	if b.nLeft == 0 && b.nRight == 0 {
		return 0, true
	}
	var k int
	switch {
	case b.nLeft > 0:
		k = len(b.adjL[0])
	default:
		k = len(b.adjR[0])
	}
	if b.IsRegular(k) {
		return k, true
	}
	return 0, false
}

// Reset removes every edge while keeping the node classes and the capacity
// of the internal adjacency lists, so a graph can be refilled without
// reallocating. Used by the planner's batch path to amortize allocations
// across permutations.
func (b *Bipartite) Reset() {
	b.edges = b.edges[:0]
	for l := range b.adjL {
		b.adjL[l] = b.adjL[l][:0]
	}
	for r := range b.adjR {
		b.adjR[r] = b.adjR[r][:0]
	}
}

// Clone returns a deep copy of the graph. Edge IDs are preserved.
func (b *Bipartite) Clone() *Bipartite {
	c := New(b.nLeft, b.nRight)
	c.edges = make([]Edge, len(b.edges))
	copy(c.edges, b.edges)
	for l := range b.adjL {
		c.adjL[l] = append([]int(nil), b.adjL[l]...)
	}
	for r := range b.adjR {
		c.adjR[r] = append([]int(nil), b.adjR[r]...)
	}
	return c
}

// Multiplicity returns how many edges join left node l and right node r.
// This is the l(s, s') quantity of the paper's list systems.
func (b *Bipartite) Multiplicity(l, r int) int {
	n := 0
	for _, id := range b.adjL[l] {
		if b.edges[id].R == r {
			n++
		}
	}
	return n
}

// ErrNotBipartiteRegular is returned by operations that require a k-regular
// bipartite multigraph when the input is not regular.
var ErrNotBipartiteRegular = errors.New("graph: multigraph is not regular")

// Validate performs internal consistency checks (adjacency mirrors the edge
// list, no dangling IDs). It returns an error describing the first violation
// found, or nil. It is used by tests and by failure-injection paths.
func (b *Bipartite) Validate() error {
	if len(b.adjL) != b.nLeft || len(b.adjR) != b.nRight {
		return fmt.Errorf("graph: adjacency size mismatch: %d/%d left, %d/%d right",
			len(b.adjL), b.nLeft, len(b.adjR), b.nRight)
	}
	seenL := 0
	for l, ids := range b.adjL {
		for _, id := range ids {
			if id < 0 || id >= len(b.edges) {
				return fmt.Errorf("graph: left node %d references edge %d out of range", l, id)
			}
			if b.edges[id].L != l {
				return fmt.Errorf("graph: edge %d listed at left node %d but has L=%d", id, l, b.edges[id].L)
			}
			seenL++
		}
	}
	if seenL != len(b.edges) {
		return fmt.Errorf("graph: left adjacency covers %d edge slots, want %d", seenL, len(b.edges))
	}
	seenR := 0
	for r, ids := range b.adjR {
		for _, id := range ids {
			if id < 0 || id >= len(b.edges) {
				return fmt.Errorf("graph: right node %d references edge %d out of range", r, id)
			}
			if b.edges[id].R != r {
				return fmt.Errorf("graph: edge %d listed at right node %d but has R=%d", id, r, b.edges[id].R)
			}
			seenR++
		}
	}
	if seenR != len(b.edges) {
		return fmt.Errorf("graph: right adjacency covers %d edge slots, want %d", seenR, len(b.edges))
	}
	return nil
}

// DegreeSequenceL returns the sorted (ascending) left degree sequence.
func (b *Bipartite) DegreeSequenceL() []int {
	out := make([]int, b.nLeft)
	for l := range out {
		out[l] = len(b.adjL[l])
	}
	sort.Ints(out)
	return out
}

// DegreeSequenceR returns the sorted (ascending) right degree sequence.
func (b *Bipartite) DegreeSequenceR() []int {
	out := make([]int, b.nRight)
	for r := range out {
		out[r] = len(b.adjR[r])
	}
	sort.Ints(out)
	return out
}

// String implements fmt.Stringer with a compact structural summary.
func (b *Bipartite) String() string {
	return fmt.Sprintf("Bipartite(%d+%d nodes, %d edges)", b.nLeft, b.nRight, len(b.edges))
}

// CompleteBipartite returns K_{nLeft,nRight}: one edge for every (l, r)
// pair, in row-major order. It is the H1/H2 padding graph from the proof of
// Theorem 1: every left node has degree nRight and every right node degree
// nLeft.
func CompleteBipartite(nLeft, nRight int) *Bipartite {
	b := New(nLeft, nRight)
	for l := 0; l < nLeft; l++ {
		for r := 0; r < nRight; r++ {
			b.AddEdge(l, r)
		}
	}
	return b
}

// Circulant returns the k-regular bipartite circulant on n+n nodes: left
// node i is joined to right nodes (i+j) mod n for j = 0..k-1. It panics if
// k > n or any argument is negative. Circulants are the standard source of
// structured regular test graphs.
func Circulant(n, k int) *Bipartite {
	if k > n {
		panic(fmt.Sprintf("graph: circulant degree %d exceeds side size %d", k, n))
	}
	b := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			b.AddEdge(i, (i+j)%n)
		}
	}
	return b
}

// SubgraphByEdges returns a new graph on the same node classes containing
// exactly the listed edges (by ID in the receiver), along with a mapping
// from new edge IDs to original IDs: orig[newID] = oldID.
func (b *Bipartite) SubgraphByEdges(ids []int) (*Bipartite, []int) {
	s := New(b.nLeft, b.nRight)
	orig := make([]int, 0, len(ids))
	for _, id := range ids {
		e := b.edges[id]
		s.AddEdge(e.L, e.R)
		orig = append(orig, id)
	}
	return s, orig
}

// Union appends all edges of other (which must have identical node class
// sizes) to a copy of b, returning the combined graph and the offset that
// was added to other's edge IDs. It panics on a size mismatch.
func (b *Bipartite) Union(other *Bipartite) (*Bipartite, int) {
	if b.nLeft != other.nLeft || b.nRight != other.nRight {
		panic(fmt.Sprintf("graph: union size mismatch (%d,%d) vs (%d,%d)",
			b.nLeft, b.nRight, other.nLeft, other.nRight))
	}
	c := b.Clone()
	offset := len(c.edges)
	for _, e := range other.edges {
		c.AddEdge(e.L, e.R)
	}
	return c, offset
}
