package graph

import (
	"fmt"

	"pops/internal/simd/bitvec"
)

// Splitter is a reusable arena for Euler-partitioning edge sets. All scratch
// of the tour — the CSR adjacency built over the input edges, the per-node
// cursors, the visited-edge bit vector and the walk stack — lives in the
// Splitter and is recycled across calls, so steady-state splits are
// allocation-free. The zero value is ready to use. A Splitter is not safe
// for concurrent use.
type Splitter struct {
	offL, offR []int // CSR offsets: offL[l]..offL[l+1] indexes adjL
	adjL, adjR []int // incident edge indices, in input order
	curL, curR []int // per-node cursors into adjL/adjR (absolute)
	used       bitvec.Vec
	stack      []int // walk positions, encoded v<<1 | isLeft
}

// Split partitions edges — every node of which must have even degree — into
// two halves A and B with deg_A(v) = deg_B(v) = deg(v)/2 for every node, and
// writes the edge indices of each half into outA and outB in traversal
// order. It returns the number of edges in each half (always len(edges)/2
// apiece). outA and outB must each hold at least len(edges)/2 entries.
//
// This is the Euler-partition step of the divide-and-conquer
// 1-factorization (Gabow; also the engine inside the Kapoor–Rizzi and Rizzi
// algorithms cited in Remark 1 of the paper): orient the edges along
// Eulerian circuits of each connected component; edges traversed
// left-to-right form A, edges traversed right-to-left form B. In the
// orientation every node has in-degree equal to out-degree, which yields the
// exact halving. Split runs in O(m + nL + nR) time.
//
// The traversal — and therefore the exact partition — is deterministic: the
// adjacency of each node is walked in input edge order, tours start at left
// node 0, 1, … then right node 0, 1, …. This matches the historical
// EulerSplit on a graph whose edges were added in the same order, which the
// factorization golden tests rely on.
func (s *Splitter) Split(nL, nR int, edges []Edge, outA, outB []int) (nA, nB int, err error) {
	m := len(edges)
	s.buildCSR(nL, nR, edges)
	for l := 0; l < nL; l++ {
		if d := s.offL[l+1] - s.offL[l]; d%2 != 0 {
			return 0, 0, fmt.Errorf("graph: EulerSplit: left node %d has odd degree %d", l, d)
		}
	}
	for r := 0; r < nR; r++ {
		if d := s.offR[r+1] - s.offR[r]; d%2 != 0 {
			return 0, 0, fmt.Errorf("graph: EulerSplit: right node %d has odd degree %d", r, d)
		}
	}
	if len(outA) < m/2 || len(outB) < m/2 {
		return 0, 0, fmt.Errorf("graph: EulerSplit: output buffers hold %d+%d of %d edges", len(outA), len(outB), m)
	}

	s.curL = ResizeInts(s.curL, nL)
	copy(s.curL, s.offL[:nL])
	s.curR = ResizeInts(s.curR, nR)
	copy(s.curR, s.offR[:nR])
	s.used = s.used.Resize(m)
	s.stack = s.stack[:0]

	// Hierholzer from every left node, then every right node (isolated
	// right-side components cannot exist in a bipartite graph, but odd
	// components starting on the right are covered for safety). Each tour
	// traverses until stuck; every closed sub-tour alternates sides, so
	// assigning by traversal direction halves the degrees. The stack
	// re-enters nodes with remaining edges.
	for l := 0; l < nL; l++ {
		nA, nB = s.walk(edges, l<<1|1, outA, outB, nA, nB)
	}
	for r := 0; r < nR; r++ {
		nA, nB = s.walk(edges, r<<1, outA, outB, nA, nB)
	}
	if nA+nB != m {
		// Unreachable unless internal invariants are broken.
		return 0, 0, fmt.Errorf("graph: EulerSplit covered %d of %d edges", nA+nB, m)
	}
	return nA, nB, nil
}

// buildCSR fills the splitter's adjacency arrays for the given edge list.
// The fill is stable, so each node's incident edges appear in input order —
// exactly the order AddEdge would have produced on a materialized subgraph.
func (s *Splitter) buildCSR(nL, nR int, edges []Edge) {
	m := len(edges)
	s.offL = ResizeInts(s.offL, nL+1)
	s.offR = ResizeInts(s.offR, nR+1)
	for i := range s.offL {
		s.offL[i] = 0
	}
	for i := range s.offR {
		s.offR[i] = 0
	}
	for _, e := range edges {
		s.offL[e.L+1]++
		s.offR[e.R+1]++
	}
	for l := 0; l < nL; l++ {
		s.offL[l+1] += s.offL[l]
	}
	for r := 0; r < nR; r++ {
		s.offR[r+1] += s.offR[r]
	}
	s.adjL = ResizeInts(s.adjL, m)
	s.adjR = ResizeInts(s.adjR, m)
	s.curL = ResizeInts(s.curL, nL)
	copy(s.curL, s.offL[:nL])
	s.curR = ResizeInts(s.curR, nR)
	copy(s.curR, s.offR[:nR])
	for i, e := range edges {
		s.adjL[s.curL[e.L]] = i
		s.curL[e.L]++
		s.adjR[s.curR[e.R]] = i
		s.curR[e.R]++
	}
}

// walk runs one Hierholzer tour from the encoded start position, appending
// left-to-right traversals to outA and right-to-left ones to outB.
func (s *Splitter) walk(edges []Edge, start int, outA, outB []int, nA, nB int) (int, int) {
	s.stack = append(s.stack, start)
	for len(s.stack) > 0 {
		p := s.stack[len(s.stack)-1]
		v, left := p>>1, p&1 == 1
		id := s.nextEdge(left, v)
		if id < 0 {
			s.stack = s.stack[:len(s.stack)-1]
			continue
		}
		s.used.Set(id)
		if left {
			outA[nA] = id // traversed L -> R
			nA++
			s.stack = append(s.stack, edges[id].R<<1)
		} else {
			outB[nB] = id // traversed R -> L
			nB++
			s.stack = append(s.stack, edges[id].L<<1|1)
		}
	}
	return nA, nB
}

// nextEdge returns an unused edge at the given node (side true = left), or
// -1 if none remains. Per-node cursors make every edge slot inspected O(1)
// times across the whole traversal.
func (s *Splitter) nextEdge(left bool, v int) int {
	if left {
		for s.curL[v] < s.offL[v+1] {
			id := s.adjL[s.curL[v]]
			if !s.used.Test(id) {
				return id
			}
			s.curL[v]++
		}
		return -1
	}
	for s.curR[v] < s.offR[v+1] {
		id := s.adjR[s.curR[v]]
		if !s.used.Test(id) {
			return id
		}
		s.curR[v]++
	}
	return -1
}

// ResizeInts returns an int slice of length n, reusing buf's storage when
// possible. Contents are unspecified. It is the arena growth helper shared
// by the allocation-free engines (Splitter, matching.Matcher,
// edgecolor.Factorizer).
func ResizeInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// ResizeEdges is ResizeInts for edge buffers.
func ResizeEdges(buf []Edge, n int) []Edge {
	if cap(buf) < n {
		return make([]Edge, n)
	}
	return buf[:n]
}

// EulerSplit partitions the edges of a bipartite multigraph in which every
// node has even degree into two halves A and B such that every node's degree
// is exactly halved in each part: deg_A(v) = deg_B(v) = deg(v)/2.
//
// The returned slices contain edge IDs of b. EulerSplit runs in O(m) time.
// It returns an error if some node has odd degree. It is the convenience
// form of Splitter.Split with a throwaway arena; repeated callers (the
// edge-coloring Factorizer, the Alon matching engine) hold a Splitter
// instead and stay allocation-free.
func EulerSplit(b *Bipartite) (a, bb []int, err error) {
	var s Splitter
	m := len(b.edges)
	a = make([]int, m/2)
	bb = make([]int, m/2)
	nA, nB, err := s.Split(b.nLeft, b.nRight, b.edges, a, bb)
	if err != nil {
		return nil, nil, err
	}
	return a[:nA], bb[:nB], nil
}
