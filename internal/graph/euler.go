package graph

import "fmt"

// EulerSplit partitions the edges of a bipartite multigraph in which every
// node has even degree into two halves A and B such that every node's degree
// is exactly halved in each part: deg_A(v) = deg_B(v) = deg(v)/2.
//
// This is the Euler-partition step of the divide-and-conquer 1-factorization
// (Gabow; also the engine inside the Kapoor–Rizzi and Rizzi algorithms cited
// in Remark 1 of the paper): orient the edges along Eulerian circuits of each
// connected component; edges traversed left-to-right form A, edges traversed
// right-to-left form B. In the orientation every node has in-degree equal to
// out-degree, which yields the exact halving.
//
// The returned slices contain edge IDs of b. EulerSplit runs in O(m) time.
// It returns an error if some node has odd degree.
func EulerSplit(b *Bipartite) (a, bb []int, err error) {
	for l := 0; l < b.nLeft; l++ {
		if len(b.adjL[l])%2 != 0 {
			return nil, nil, fmt.Errorf("graph: EulerSplit: left node %d has odd degree %d", l, len(b.adjL[l]))
		}
	}
	for r := 0; r < b.nRight; r++ {
		if len(b.adjR[r])%2 != 0 {
			return nil, nil, fmt.Errorf("graph: EulerSplit: right node %d has odd degree %d", r, len(b.adjR[r]))
		}
	}

	m := len(b.edges)
	used := make([]bool, m)
	// Per-node cursors into adjacency lists so each edge is inspected O(1)
	// times across the whole traversal.
	curL := make([]int, b.nLeft)
	curR := make([]int, b.nRight)

	a = make([]int, 0, m/2)
	bb = make([]int, 0, m/2)

	// nextEdge returns an unused edge at the given node (side true = left),
	// or -1 if none remains.
	nextEdge := func(left bool, v int) int {
		if left {
			adj := b.adjL[v]
			for curL[v] < len(adj) {
				id := adj[curL[v]]
				if !used[id] {
					return id
				}
				curL[v]++
			}
			return -1
		}
		adj := b.adjR[v]
		for curR[v] < len(adj) {
			id := adj[curR[v]]
			if !used[id] {
				return id
			}
			curR[v]++
		}
		return -1
	}

	// Hierholzer from every left node, then every right node (isolated
	// right-side components cannot exist in a bipartite graph, but odd
	// components starting on the right are covered for safety).
	type pos struct {
		left bool
		v    int
	}
	walk := func(start pos) {
		// Iterative tour: traverse until stuck; every closed sub-tour
		// alternates sides, so assigning by traversal direction halves the
		// degrees. The stack re-enters nodes with remaining edges.
		stack := []pos{start}
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			id := nextEdge(p.left, p.v)
			if id < 0 {
				stack = stack[:len(stack)-1]
				continue
			}
			used[id] = true
			e := b.edges[id]
			if p.left {
				// traversed L -> R
				a = append(a, id)
				stack = append(stack, pos{left: false, v: e.R})
			} else {
				// traversed R -> L
				bb = append(bb, id)
				stack = append(stack, pos{left: true, v: e.L})
			}
		}
	}
	for l := 0; l < b.nLeft; l++ {
		walk(pos{left: true, v: l})
	}
	for r := 0; r < b.nRight; r++ {
		walk(pos{left: false, v: r})
	}

	if len(a)+len(bb) != m {
		// Unreachable unless internal invariants are broken.
		return nil, nil, fmt.Errorf("graph: EulerSplit covered %d of %d edges", len(a)+len(bb), m)
	}
	return a, bb, nil
}
