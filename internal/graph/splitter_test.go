package graph

import (
	"math/rand"
	"testing"
)

// TestSplitterViewMatchesSubgraph pins the view contract the edge-coloring
// engine relies on: splitting a gathered edge view must equal EulerSplit on
// the materialized subgraph, index for index.
func TestSplitterViewMatchesSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var s Splitter // one arena across all trials
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(8) + 2
		k := (rng.Intn(4) + 1) * 2 // even-regular
		b := New(n, n)
		for j := 0; j < k; j++ {
			perm := rng.Perm(n)
			for i := 0; i < n; i++ {
				b.AddEdge(i, perm[i])
			}
		}
		// A random even-degree view: take whole permutation rounds.
		rounds := (rng.Intn(k/2) + 1) * 2
		ids := make([]int, 0, rounds*n)
		for j := 0; j < rounds; j++ {
			for i := 0; i < n; i++ {
				ids = append(ids, j*n+i)
			}
		}
		sub, orig := b.SubgraphByEdges(ids)
		wantA, wantB, err := EulerSplit(sub)
		if err != nil {
			t.Fatalf("trial %d: EulerSplit: %v", trial, err)
		}

		edges := make([]Edge, len(ids))
		for i, id := range ids {
			edges[i] = b.Edge(id)
		}
		outA := make([]int, len(ids)/2)
		outB := make([]int, len(ids)/2)
		nA, nB, err := s.Split(n, n, edges, outA, outB)
		if err != nil {
			t.Fatalf("trial %d: Split: %v", trial, err)
		}
		if nA != len(wantA) || nB != len(wantB) {
			t.Fatalf("trial %d: half sizes (%d,%d), want (%d,%d)", trial, nA, nB, len(wantA), len(wantB))
		}
		for i := range wantA {
			if orig[outA[i]] != orig[wantA[i]] {
				t.Fatalf("trial %d: A[%d] = edge %d, want %d", trial, i, outA[i], wantA[i])
			}
		}
		for i := range wantB {
			if orig[outB[i]] != orig[wantB[i]] {
				t.Fatalf("trial %d: B[%d] = edge %d, want %d", trial, i, outB[i], wantB[i])
			}
		}
	}
}

// TestSplitterOddDegreeError checks the splitter rejects odd-degree views
// with the EulerSplit error shape.
func TestSplitterOddDegreeError(t *testing.T) {
	var s Splitter
	edges := []Edge{{L: 0, R: 0}}
	if _, _, err := s.Split(1, 1, edges, []int{0}, []int{0}); err == nil {
		t.Fatal("odd-degree view accepted")
	}
}

// TestSplitterSteadyStateAllocFree guards the arena contract: a warmed
// splitter performs no allocations.
func TestSplitterSteadyStateAllocFree(t *testing.T) {
	b := Circulant(64, 8)
	edges := b.EdgeList()
	outA := make([]int, b.NumEdges()/2)
	outB := make([]int, b.NumEdges()/2)
	var s Splitter
	if _, _, err := s.Split(64, 64, edges, outA, outB); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := s.Split(64, 64, edges, outA, outB); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warmed Splitter allocates %.1f/op, want 0", allocs)
	}
}
