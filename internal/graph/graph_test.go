package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	b := New(3, 4)
	if b.NLeft() != 3 || b.NRight() != 4 {
		t.Fatalf("sizes = (%d,%d), want (3,4)", b.NLeft(), b.NRight())
	}
	if b.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", b.NumEdges())
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := b.MaxDegree(); got != 0 {
		t.Fatalf("MaxDegree = %d, want 0", got)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestAddEdgeIDsAreDense(t *testing.T) {
	b := New(2, 2)
	for want := 0; want < 5; want++ {
		if id := b.AddEdge(want%2, (want+1)%2); id != want {
			t.Fatalf("AddEdge returned %d, want %d", id, want)
		}
	}
	if b.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", b.NumEdges())
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	cases := [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%d,%d) did not panic", c[0], c[1])
				}
			}()
			New(2, 2).AddEdge(c[0], c[1])
		}()
	}
}

func TestParallelEdgesAndMultiplicity(t *testing.T) {
	b := New(2, 2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(0, 0)
	if got := b.Multiplicity(0, 1); got != 2 {
		t.Fatalf("Multiplicity(0,1) = %d, want 2", got)
	}
	if got := b.Multiplicity(0, 0); got != 1 {
		t.Fatalf("Multiplicity(0,0) = %d, want 1", got)
	}
	if got := b.Multiplicity(1, 0); got != 0 {
		t.Fatalf("Multiplicity(1,0) = %d, want 0", got)
	}
	if got := b.DegreeL(0); got != 3 {
		t.Fatalf("DegreeL(0) = %d, want 3", got)
	}
	if got := b.DegreeR(1); got != 2 {
		t.Fatalf("DegreeR(1) = %d, want 2", got)
	}
}

func TestRegularDetection(t *testing.T) {
	b := Circulant(5, 3)
	if !b.IsRegular(3) {
		t.Fatal("Circulant(5,3) not detected 3-regular")
	}
	if b.IsRegular(2) {
		t.Fatal("Circulant(5,3) claimed 2-regular")
	}
	k, ok := b.RegularDegree()
	if !ok || k != 3 {
		t.Fatalf("RegularDegree = (%d,%v), want (3,true)", k, ok)
	}
	b.AddEdge(0, 0)
	if _, ok := b.RegularDegree(); ok {
		t.Fatal("irregular graph reported regular")
	}
}

func TestCompleteBipartite(t *testing.T) {
	b := CompleteBipartite(3, 5)
	if b.NumEdges() != 15 {
		t.Fatalf("K(3,5) edges = %d, want 15", b.NumEdges())
	}
	for l := 0; l < 3; l++ {
		if b.DegreeL(l) != 5 {
			t.Fatalf("left degree %d = %d, want 5", l, b.DegreeL(l))
		}
	}
	for r := 0; r < 5; r++ {
		if b.DegreeR(r) != 3 {
			t.Fatalf("right degree %d = %d, want 3", r, b.DegreeR(r))
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCirculantStructure(t *testing.T) {
	b := Circulant(4, 2)
	// Left node i joined to i and i+1 mod 4.
	for i := 0; i < 4; i++ {
		if b.Multiplicity(i, i) != 1 || b.Multiplicity(i, (i+1)%4) != 1 {
			t.Fatalf("circulant row %d malformed", i)
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCirculantDegreeTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Circulant(3,4) did not panic")
		}
	}()
	Circulant(3, 4)
}

func TestCloneIndependence(t *testing.T) {
	b := Circulant(4, 2)
	c := b.Clone()
	c.AddEdge(0, 3)
	if b.NumEdges() == c.NumEdges() {
		t.Fatal("Clone shares edge storage with original")
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("original corrupted by clone edit: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
}

func TestSubgraphByEdges(t *testing.T) {
	b := Circulant(4, 3)
	ids := []int{0, 5, 7}
	s, orig := b.SubgraphByEdges(ids)
	if s.NumEdges() != 3 {
		t.Fatalf("subgraph edges = %d, want 3", s.NumEdges())
	}
	for newID, oldID := range orig {
		if s.Edge(newID) != b.Edge(oldID) {
			t.Fatalf("edge %d maps to %d but endpoints differ", newID, oldID)
		}
	}
}

func TestUnion(t *testing.T) {
	a := Circulant(3, 1)
	b := Circulant(3, 2)
	u, off := a.Union(b)
	if u.NumEdges() != a.NumEdges()+b.NumEdges() {
		t.Fatalf("union edges = %d", u.NumEdges())
	}
	if off != a.NumEdges() {
		t.Fatalf("offset = %d, want %d", off, a.NumEdges())
	}
	for i := 0; i < b.NumEdges(); i++ {
		if u.Edge(off+i) != b.Edge(i) {
			t.Fatalf("edge %d not preserved in union", i)
		}
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestUnionSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Union did not panic")
		}
	}()
	New(2, 2).Union(New(3, 2))
}

func TestDegreeSequences(t *testing.T) {
	b := New(3, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1)
	gotL := b.DegreeSequenceL()
	wantL := []int{0, 1, 2}
	for i := range wantL {
		if gotL[i] != wantL[i] {
			t.Fatalf("left degree sequence = %v, want %v", gotL, wantL)
		}
	}
	gotR := b.DegreeSequenceR()
	wantR := []int{1, 2}
	for i := range wantR {
		if gotR[i] != wantR[i] {
			t.Fatalf("right degree sequence = %v, want %v", gotR, wantR)
		}
	}
}

// randomRegular builds a random k-regular bipartite multigraph on n+n nodes
// as a union of k random perfect matchings (permutations).
func randomRegular(n, k int, rng *rand.Rand) *Bipartite {
	b := New(n, n)
	for j := 0; j < k; j++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			b.AddEdge(i, perm[i])
		}
	}
	return b
}

func TestEulerSplitHalvesDegreesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, k int }{
		{1, 2}, {2, 2}, {3, 4}, {8, 6}, {16, 8}, {5, 2}, {32, 4},
	} {
		b := randomRegular(tc.n, tc.k, rng)
		a, bb, err := EulerSplit(b)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if len(a)+len(bb) != b.NumEdges() {
			t.Fatalf("n=%d k=%d: split covers %d+%d of %d edges", tc.n, tc.k, len(a), len(bb), b.NumEdges())
		}
		checkHalving(t, b, a, bb, tc.k)
	}
}

func checkHalving(t *testing.T, b *Bipartite, a, bb []int, k int) {
	t.Helper()
	degLA := make([]int, b.NLeft())
	degRA := make([]int, b.NRight())
	seen := make(map[int]bool)
	for _, id := range a {
		if seen[id] {
			t.Fatalf("edge %d appears twice in split", id)
		}
		seen[id] = true
		e := b.Edge(id)
		degLA[e.L]++
		degRA[e.R]++
	}
	for _, id := range bb {
		if seen[id] {
			t.Fatalf("edge %d appears in both halves", id)
		}
		seen[id] = true
	}
	for l, d := range degLA {
		if d != k/2 {
			t.Fatalf("left node %d has %d edges in half A, want %d", l, d, k/2)
		}
	}
	for r, d := range degRA {
		if d != k/2 {
			t.Fatalf("right node %d has %d edges in half A, want %d", r, d, k/2)
		}
	}
}

func TestEulerSplitNonRegularEvenDegrees(t *testing.T) {
	// Degrees need only be even, not uniform: two 4-degree and two 2-degree
	// nodes.
	b := New(2, 2)
	for i := 0; i < 2; i++ {
		b.AddEdge(0, 0)
		b.AddEdge(1, 1)
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 0)
	b.AddEdge(1, 1)
	// degrees: L0=4? L0: 2 +1 +1 = 4, L1: 4; R0: 2+1+1=4, R1: 4. All even.
	a, bb, err := EulerSplit(b)
	if err != nil {
		t.Fatalf("EulerSplit: %v", err)
	}
	if len(a) != 4 || len(bb) != 4 {
		t.Fatalf("split sizes %d/%d, want 4/4", len(a), len(bb))
	}
}

func TestEulerSplitOddDegreeRejected(t *testing.T) {
	b := New(1, 1)
	b.AddEdge(0, 0)
	if _, _, err := EulerSplit(b); err == nil {
		t.Fatal("odd-degree graph accepted")
	}
}

func TestEulerSplitDisconnected(t *testing.T) {
	// Two disjoint 2-regular components.
	b := New(4, 4)
	for i := 0; i < 2; i++ {
		b.AddEdge(0, 1)
		b.AddEdge(1, 0)
		b.AddEdge(2, 3)
		b.AddEdge(3, 2)
	}
	a, bb, err := EulerSplit(b)
	if err != nil {
		t.Fatalf("EulerSplit: %v", err)
	}
	checkHalving(t, b, a, bb, 2)
}

func TestEulerSplitEmptyGraph(t *testing.T) {
	b := New(3, 3)
	a, bb, err := EulerSplit(b)
	if err != nil {
		t.Fatalf("EulerSplit: %v", err)
	}
	if len(a) != 0 || len(bb) != 0 {
		t.Fatalf("empty graph split sizes %d/%d", len(a), len(bb))
	}
}

// Property: for random even-regular multigraphs, EulerSplit is an exact
// edge partition with exact degree halving.
func TestEulerSplitProperty(t *testing.T) {
	f := func(nSeed, kSeed uint8, seed int64) bool {
		n := int(nSeed)%20 + 1
		k := 2 * (int(kSeed)%6 + 1)
		rng := rand.New(rand.NewSource(seed))
		b := randomRegular(n, k, rng)
		a, bb, err := EulerSplit(b)
		if err != nil {
			return false
		}
		if len(a)+len(bb) != n*k {
			return false
		}
		degL := make([]int, n)
		for _, id := range a {
			degL[b.Edge(id).L]++
		}
		for _, d := range degL {
			if d != k/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	b := Circulant(3, 2)
	b.adjL[0][0] = 99 // dangling edge ID
	if err := b.Validate(); err == nil {
		t.Fatal("Validate accepted dangling edge ID")
	}

	c := Circulant(3, 2)
	c.edges[c.adjL[0][0]].L = 1 // adjacency no longer mirrors edge list
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted mismatched endpoint")
	}
}

func TestStringSummary(t *testing.T) {
	b := Circulant(3, 2)
	if got, want := b.String(), "Bipartite(3+3 nodes, 6 edges)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
