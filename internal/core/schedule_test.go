package core

import (
	"math/rand"
	"testing"

	"pops/internal/perms"
	"pops/internal/popsnet"
)

// TestScheduleStructureSmallD checks the exact slot shape for d ≤ g: both
// slots move all n packets, with n distinct couplers and n distinct
// receivers each.
func TestScheduleStructureSmallD(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, tc := range []struct{ d, g int }{{2, 2}, {3, 4}, {4, 8}, {8, 8}} {
		n := tc.d * tc.g
		pi := perms.Random(n, rng)
		p, err := PlanRoute(tc.d, tc.g, pi, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sched := p.Schedule()
		if len(sched.Slots) != 2 {
			t.Fatalf("d=%d g=%d: %d slots", tc.d, tc.g, len(sched.Slots))
		}
		for si, slot := range sched.Slots {
			if len(slot.Sends) != n || len(slot.Recvs) != n {
				t.Fatalf("d=%d g=%d slot %d: %d sends, %d recvs, want %d each",
					tc.d, tc.g, si, len(slot.Sends), len(slot.Recvs), n)
			}
			couplers := make(map[int]bool)
			senders := make(map[int]bool)
			for _, snd := range slot.Sends {
				cid := sched.Net.CouplerID(snd.DestGroup, sched.Net.Group(snd.Src))
				if couplers[cid] {
					t.Fatalf("slot %d: coupler %d reused", si, cid)
				}
				couplers[cid] = true
				if senders[snd.Src] {
					t.Fatalf("slot %d: sender %d reused", si, snd.Src)
				}
				senders[snd.Src] = true
			}
			recvs := make(map[int]bool)
			for _, rcv := range slot.Recvs {
				if recvs[rcv.Proc] {
					t.Fatalf("slot %d: receiver %d reused", si, rcv.Proc)
				}
				recvs[rcv.Proc] = true
			}
		}
	}
}

// TestScheduleStructureLargeD checks the round structure for d > g: each of
// the ⌈d/g⌉ rounds has two slots moving g² packets (the last round
// g·(d mod g) when g ∤ d), with full coupler utilization in complete rounds.
func TestScheduleStructureLargeD(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for _, tc := range []struct{ d, g int }{{4, 2}, {9, 3}, {7, 3}, {16, 4}} {
		n := tc.d * tc.g
		pi := perms.Random(n, rng)
		p, err := PlanRoute(tc.d, tc.g, pi, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sched := p.Schedule()
		rounds := (tc.d + tc.g - 1) / tc.g
		if len(sched.Slots) != 2*rounds {
			t.Fatalf("d=%d g=%d: %d slots, want %d", tc.d, tc.g, len(sched.Slots), 2*rounds)
		}
		total := 0
		for k := 0; k < rounds; k++ {
			want := tc.g * tc.g
			if k == rounds-1 && tc.d%tc.g != 0 {
				want = tc.g * (tc.d % tc.g)
			}
			s1, s2 := sched.Slots[2*k], sched.Slots[2*k+1]
			if len(s1.Sends) != want || len(s2.Sends) != want {
				t.Fatalf("d=%d g=%d round %d: %d/%d sends, want %d",
					tc.d, tc.g, k, len(s1.Sends), len(s2.Sends), want)
			}
			total += len(s1.Sends)
		}
		if total != n {
			t.Fatalf("d=%d g=%d: rounds move %d packets, want %d", tc.d, tc.g, total, n)
		}
		// Complete rounds use every coupler exactly once per slot.
		st := popsnet.ComputeStats(sched)
		if rounds > 1 && tc.d%tc.g == 0 && st.Utilization != 1.0 {
			t.Fatalf("d=%d g=%d: utilization %v, want 1.0", tc.d, tc.g, st.Utilization)
		}
	}
}

// TestCorruptedSchedulesRejected injects faults into valid schedules and
// checks that the simulator oracle catches each one — the failure-injection
// counterpart of Plan.Verify.
func TestCorruptedSchedulesRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	pi := perms.Random(16, rng)
	fresh := func() *popsnet.Schedule {
		p, err := PlanRoute(4, 4, pi, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return p.Schedule()
	}

	t.Run("duplicate-send-conflicts-coupler", func(t *testing.T) {
		s := fresh()
		s.Slots[0].Sends = append(s.Slots[0].Sends, s.Slots[0].Sends[0])
		// Same coupler driven twice (same src, same dest group).
		if _, err := popsnet.VerifyPermutationRouted(s, pi); err == nil {
			t.Fatal("duplicate send accepted")
		}
	})
	t.Run("dropped-send-leaves-empty-coupler", func(t *testing.T) {
		s := fresh()
		s.Slots[0].Sends = s.Slots[0].Sends[1:]
		if _, err := popsnet.VerifyPermutationRouted(s, pi); err == nil {
			t.Fatal("dropped send accepted")
		}
	})
	t.Run("dropped-recv-loses-packet", func(t *testing.T) {
		s := fresh()
		s.Slots[1].Recvs = s.Slots[1].Recvs[1:]
		if _, err := popsnet.VerifyPermutationRouted(s, pi); err == nil {
			t.Fatal("dropped receive accepted")
		}
	})
	t.Run("redirected-recv-misdelivers", func(t *testing.T) {
		s := fresh()
		// Swap the processors of two receivers in the SAME destination
		// group. Each now reads the other's coupler: both reads succeed
		// (no conflict), but the packets land at the wrong processors —
		// only the final delivery check can catch it. Swapping receivers
		// of different groups would be a no-op: the coupler a receiver
		// reads is derived from its own group.
		r := s.Slots[1].Recvs
		i, j := -1, -1
		for a := 0; a < len(r) && i < 0; a++ {
			for b := a + 1; b < len(r); b++ {
				if s.Net.Group(r[a].Proc) == s.Net.Group(r[b].Proc) {
					i, j = a, b
					break
				}
			}
		}
		if i < 0 {
			t.Fatal("no same-group receiver pair found")
		}
		r[i].Proc, r[j].Proc = r[j].Proc, r[i].Proc
		if _, err := popsnet.VerifyPermutationRouted(s, pi); err == nil {
			t.Fatal("misdelivery accepted")
		}
	})
	t.Run("truncated-schedule", func(t *testing.T) {
		s := fresh()
		s.Slots = s.Slots[:1]
		if _, err := popsnet.VerifyPermutationRouted(s, pi); err == nil {
			t.Fatal("truncated schedule accepted")
		}
	})
	t.Run("wrong-packet-in-send", func(t *testing.T) {
		s := fresh()
		s.Slots[0].Sends[0].Packet = 99
		if _, err := popsnet.VerifyPermutationRouted(s, pi); err == nil {
			t.Fatal("phantom packet accepted")
		}
	})
}

// TestPlanDeterministic: same inputs, same schedule, across two runs.
func TestPlanDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	pi := perms.Random(36, rng)
	a, err := PlanRoute(6, 6, pi, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanRoute(6, 6, pi, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Schedule(), b.Schedule()
	if len(sa.Slots) != len(sb.Slots) {
		t.Fatal("slot counts differ between identical runs")
	}
	for i := range sa.Slots {
		if len(sa.Slots[i].Sends) != len(sb.Slots[i].Sends) {
			t.Fatalf("slot %d send counts differ", i)
		}
		for j := range sa.Slots[i].Sends {
			if sa.Slots[i].Sends[j] != sb.Slots[i].Sends[j] {
				t.Fatalf("slot %d send %d differs: %+v vs %+v",
					i, j, sa.Slots[i].Sends[j], sb.Slots[i].Sends[j])
			}
		}
	}
	for p := range a.Colors {
		if a.Colors[p] != b.Colors[p] {
			t.Fatalf("colors differ at packet %d", p)
		}
	}
}

// TestFullCouplerUtilizationSquare checks the paper's throughput intuition:
// with d = g the two-slot schedule uses every one of the g² couplers in both
// slots (n = g² packets, one per coupler).
func TestFullCouplerUtilizationSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for _, g := range []int{2, 4, 8} {
		pi := perms.Random(g*g, rng)
		p, err := PlanRoute(g, g, pi, Options{})
		if err != nil {
			t.Fatal(err)
		}
		st := popsnet.ComputeStats(p.Schedule())
		if st.Utilization != 1.0 {
			t.Fatalf("g=%d: utilization %v, want 1.0", g, st.Utilization)
		}
	}
}
