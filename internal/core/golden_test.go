package core

import (
	"bytes"
	"strings"
	"testing"
)

// TestFigure3GoldenSchedule pins the exact schedule produced for the paper's
// Figure 3 instance with the default backend. The golden text documents the
// two-phase structure: slot 0 spreads each group's packets across distinct
// intermediate groups (the right-hand side of the figure), slot 1 delivers.
// A change in this output means the planner's deterministic behaviour
// changed — review it deliberately before updating the golden text.
func TestFigure3GoldenSchedule(t *testing.T) {
	p, err := PlanRoute(3, 3, figure3Perm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Schedule().Format(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	const golden = `slot 0:
  proc   0 sends packet   0 on c(0,0)
  proc   3 sends packet   3 on c(0,1)
  proc   7 sends packet   7 on c(0,2)
  proc   1 sends packet   1 on c(1,0)
  proc   4 sends packet   4 on c(1,1)
  proc   8 sends packet   8 on c(1,2)
  proc   2 sends packet   2 on c(2,0)
  proc   5 sends packet   5 on c(2,1)
  proc   6 sends packet   6 on c(2,2)
  proc   0 reads c(0,0)
  proc   1 reads c(0,1)
  proc   2 reads c(0,2)
  proc   3 reads c(1,0)
  proc   4 reads c(1,1)
  proc   5 reads c(1,2)
  proc   6 reads c(2,0)
  proc   7 reads c(2,1)
  proc   8 reads c(2,2)
slot 1:
  proc   0 sends packet   0 on c(1,0)
  proc   1 sends packet   3 on c(2,0)
  proc   2 sends packet   7 on c(0,0)
  proc   3 sends packet   1 on c(2,1)
  proc   4 sends packet   4 on c(0,1)
  proc   5 sends packet   8 on c(1,1)
  proc   6 sends packet   2 on c(1,2)
  proc   7 sends packet   5 on c(0,2)
  proc   8 sends packet   6 on c(2,2)
  proc   4 reads c(1,0)
  proc   6 reads c(2,0)
  proc   1 reads c(0,0)
  proc   8 reads c(2,1)
  proc   0 reads c(0,1)
  proc   5 reads c(1,1)
  proc   3 reads c(1,2)
  proc   2 reads c(0,2)
  proc   7 reads c(2,2)
`
	if got != golden {
		t.Fatalf("Figure 3 schedule changed.\ngot:\n%s\nwant:\n%s\nfirst difference near %q",
			got, golden, firstDiff(got, golden))
	}
}

func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return la[i] + " vs " + lb[i]
		}
	}
	return "length mismatch"
}
