// Package core implements the permutation routing algorithm of Mei & Rizzi
// (Theorem 2): a POPS(d, g) network routes any permutation π of its n = d·g
// processors in one slot when d = 1 and 2·⌈d/g⌉ slots when d > 1.
//
// The construction unifies the paper's two cases (1 < d ≤ g and d > g)
// through a single reduction. Build the demand multigraph with one edge per
// packet, from its source group to its destination group; because π is a
// permutation the graph is d-regular on g+g nodes. Color its edges with
// C = max(d, g) colors so that every color class has exactly min(d, g)
// edges (package edgecolor; for d < g this is the balanced coloring of
// Theorem 1, for d ≥ g a plain König 1-factorization). The color c of a
// packet encodes its relay: intermediate group c mod g in round ⌊c/g⌋. Each
// round takes two slots:
//
//	slot 1: every packet of the round is sent from its source to a relay
//	        processor in its intermediate group;
//	slot 2: relays forward the packets to their final destinations.
//
// Properness of the coloring at source groups makes slot 1 coupler-conflict
// free; properness at destination groups makes slot 2 conflict free; the
// exact class size bounds the number of arrivals per group by the number of
// processors. These are precisely invariants (4)–(7) of the paper, and the
// per-packet colors are exactly a fair distribution of the list system
// L(h, i) = group(π(i + h·d)).
package core

import (
	"fmt"

	"pops/internal/edgecolor"
	"pops/internal/fairdist"
	"pops/internal/graph"
	"pops/internal/perms"
	"pops/internal/popsnet"
)

// Options configures the planner.
type Options struct {
	// Algorithm selects the edge-coloring backend. The default,
	// EulerSplitDC, is the near-linear divide-and-conquer variant.
	Algorithm edgecolor.Algorithm
}

// Plan is a verified-constructible routing plan for one permutation.
type Plan struct {
	Net    popsnet.Network
	Pi     []int
	Colors []int // per-packet relay color; nil when d == 1 (direct routing)
	Rounds int   // ⌈d/g⌉ for d > 1, 0 for d = 1

	sched *popsnet.Schedule
}

// OptimalSlots returns the slot count of Theorem 2: 1 when d = 1, and
// 2·⌈d/g⌉ when d > 1.
func OptimalSlots(d, g int) int {
	if d == 1 {
		return 1
	}
	return 2 * ceilDiv(d, g)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// PlanRoute computes the Theorem 2 routing of permutation pi on POPS(d, g).
// The returned plan's schedule uses exactly OptimalSlots(d, g) slots.
func PlanRoute(d, g int, pi []int, opts Options) (*Plan, error) {
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		return nil, err
	}
	if err := perms.Validate(pi); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(pi) != nw.N() {
		return nil, fmt.Errorf("core: permutation has length %d, want n = %d", len(pi), nw.N())
	}

	if d == 1 {
		sched, err := directSchedule(nw, pi)
		if err != nil {
			return nil, err
		}
		return &Plan{Net: nw, Pi: pi, sched: sched}, nil
	}

	colors, err := relayColors(nw, pi, opts.Algorithm)
	if err != nil {
		return nil, err
	}
	return planFromColors(nw, pi, colors)
}

// PlanRouteViaListSystem computes the same routing through the paper's
// literal Section 3.1 formalism: build the proper list system
// L(h, i) = group(π(i + h·d)), obtain a fair distribution f by Theorem 1,
// and use f(h, i) as the relay color of packet i + h·d. It exists to
// cross-check the unified demand-graph construction; both produce schedules
// with identical structure.
func PlanRouteViaListSystem(d, g int, pi []int, opts Options) (*Plan, error) {
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		return nil, err
	}
	if err := perms.Validate(pi); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(pi) != nw.N() {
		return nil, fmt.Errorf("core: permutation has length %d, want n = %d", len(pi), nw.N())
	}
	if d == 1 {
		sched, err := directSchedule(nw, pi)
		if err != nil {
			return nil, err
		}
		return &Plan{Net: nw, Pi: pi, sched: sched}, nil
	}
	ls, err := fairdist.FromPermutation(d, g, pi)
	if err != nil {
		return nil, err
	}
	f, err := ls.FairDistribution(opts.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("core: fair distribution: %w", err)
	}
	colors := make([]int, nw.N())
	for h := 0; h < g; h++ {
		for i := 0; i < d; i++ {
			colors[i+h*d] = f[h][i]
		}
	}
	return planFromColors(nw, pi, colors)
}

// relayColors builds the demand multigraph and colors it with max(d, g)
// colors of exact class size min(d, g).
func relayColors(nw popsnet.Network, pi []int, algo edgecolor.Algorithm) ([]int, error) {
	d, g := nw.D, nw.G
	demand := graph.New(g, g)
	for p := 0; p < nw.N(); p++ {
		demand.AddEdge(nw.Group(p), nw.Group(pi[p]))
	}
	colorCount := d
	if g > d {
		colorCount = g
	}
	colors, err := edgecolor.Balanced(demand, colorCount, algo)
	if err != nil {
		return nil, fmt.Errorf("core: coloring demand graph: %w", err)
	}
	return colors, nil
}

// directSchedule is the d = 1 case: the network is a clique of couplers and
// one slot suffices (each processor is its own group).
func directSchedule(nw popsnet.Network, pi []int) (*popsnet.Schedule, error) {
	slot := popsnet.Slot{}
	for p := 0; p < nw.N(); p++ {
		slot.Sends = append(slot.Sends, popsnet.Send{Src: p, DestGroup: pi[p], Packet: p})
		slot.Recvs = append(slot.Recvs, popsnet.Recv{Proc: pi[p], SrcGroup: p})
	}
	return &popsnet.Schedule{Net: nw, Slots: []popsnet.Slot{slot}}, nil
}

// planFromColors turns per-packet relay colors into the two-slot-per-round
// schedule and sanity-checks the fair-distribution invariants on the way.
func planFromColors(nw popsnet.Network, pi, colors []int) (*Plan, error) {
	d, g := nw.D, nw.G
	colorCount := d
	if g > d {
		colorCount = g
	}
	rounds := ceilDiv(colorCount, g)

	if err := checkFairInvariants(nw, pi, colors, colorCount); err != nil {
		return nil, err
	}

	sched := &popsnet.Schedule{Net: nw}
	for k := 0; k < rounds; k++ {
		lo, hi := k*g, (k+1)*g
		if hi > colorCount {
			hi = colorCount
		}
		// Packets of this round, grouped by intermediate group j = c mod g.
		byInter := make([][]int, g) // j -> packets, in source order
		for p := 0; p < nw.N(); p++ {
			if c := colors[p]; c >= lo && c < hi {
				byInter[c%g] = append(byInter[c%g], p)
			}
		}
		slot1 := popsnet.Slot{}
		slot2 := popsnet.Slot{}
		for j := 0; j < g; j++ {
			// Arrivals at group j come from distinct source groups (the
			// coloring is proper at source nodes), and packet order is by
			// processor index, hence by source group: the rank assignment
			// below gives each arrival a distinct relay processor.
			for rank, p := range byInter[j] {
				src := p
				relay := nw.Proc(j, rank)
				dest := pi[p]
				slot1.Sends = append(slot1.Sends, popsnet.Send{Src: src, DestGroup: j, Packet: p})
				slot1.Recvs = append(slot1.Recvs, popsnet.Recv{Proc: relay, SrcGroup: nw.Group(src)})
				slot2.Sends = append(slot2.Sends, popsnet.Send{Src: relay, DestGroup: nw.Group(dest), Packet: p})
				slot2.Recvs = append(slot2.Recvs, popsnet.Recv{Proc: dest, SrcGroup: j})
			}
		}
		sched.Slots = append(sched.Slots, slot1, slot2)
	}

	return &Plan{Net: nw, Pi: pi, Colors: colors, Rounds: rounds, sched: sched}, nil
}

// checkFairInvariants re-verifies equations (4)–(7) of the paper on the
// computed colors before a schedule is emitted. A violation indicates a bug
// in the coloring layer and is reported rather than silently producing a
// conflicting schedule.
func checkFairInvariants(nw popsnet.Network, pi, colors []int, colorCount int) error {
	d, g := nw.D, nw.G
	if len(colors) != nw.N() {
		return fmt.Errorf("core: %d colors for %d packets", len(colors), nw.N())
	}
	classSize := make([]int, colorCount)
	perSource := make(map[[2]int]bool)
	perDest := make(map[[2]int]bool)
	for p, c := range colors {
		if c < 0 || c >= colorCount {
			return fmt.Errorf("core: packet %d has color %d outside [0,%d)", p, c, colorCount)
		}
		classSize[c]++
		sk := [2]int{nw.Group(p), c}
		if perSource[sk] {
			return fmt.Errorf("core: eq (4) violated: source group %d repeats color %d", sk[0], c)
		}
		perSource[sk] = true
		dk := [2]int{nw.Group(pi[p]), c}
		if perDest[dk] {
			return fmt.Errorf("core: eq (6) violated: destination group %d repeats color %d", dk[0], c)
		}
		perDest[dk] = true
	}
	want := d
	if g < d {
		want = g
	}
	for c, size := range classSize {
		if size != want {
			return fmt.Errorf("core: eq (5)/(7) violated: color %d has %d packets, want %d", c, size, want)
		}
	}
	return nil
}

// Schedule returns the plan's slot schedule.
func (p *Plan) Schedule() *popsnet.Schedule { return p.sched }

// SlotCount returns the number of slots the plan uses.
func (p *Plan) SlotCount() int { return len(p.sched.Slots) }

// Verify replays the schedule on the network simulator and checks that every
// packet reaches its destination. It returns the execution trace.
func (p *Plan) Verify() (*popsnet.Trace, error) {
	return popsnet.VerifyPermutationRouted(p.sched, p.Pi)
}

// IntermediateGroup returns the relay group of packet p in the plan, or -1
// for direct (d = 1) plans.
func (p *Plan) IntermediateGroup(packet int) int {
	if p.Colors == nil {
		return -1
	}
	return p.Colors[packet] % p.Net.G
}

// Round returns the round in which packet p moves, or 0 for direct plans.
func (p *Plan) Round(packet int) int {
	if p.Colors == nil {
		return 0
	}
	return p.Colors[packet] / p.Net.G
}
