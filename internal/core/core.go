// Package core implements the permutation routing algorithm of Mei & Rizzi
// (Theorem 2): a POPS(d, g) network routes any permutation π of its n = d·g
// processors in one slot when d = 1 and 2·⌈d/g⌉ slots when d > 1.
//
// The construction unifies the paper's two cases (1 < d ≤ g and d > g)
// through a single reduction. Build the demand multigraph with one edge per
// packet, from its source group to its destination group; because π is a
// permutation the graph is d-regular on g+g nodes. Color its edges with
// C = max(d, g) colors so that every color class has exactly min(d, g)
// edges (package edgecolor; for d < g this is the balanced coloring of
// Theorem 1, for d ≥ g a plain König 1-factorization). The color c of a
// packet encodes its relay: intermediate group c mod g in round ⌊c/g⌋. Each
// round takes two slots:
//
//	slot 1: every packet of the round is sent from its source to a relay
//	        processor in its intermediate group;
//	slot 2: relays forward the packets to their final destinations.
//
// Properness of the coloring at source groups makes slot 1 coupler-conflict
// free; properness at destination groups makes slot 2 conflict free; the
// exact class size bounds the number of arrivals per group by the number of
// processors. These are precisely invariants (4)–(7) of the paper, and the
// per-packet colors are exactly a fair distribution of the list system
// L(h, i) = group(π(i + h·d)).
//
// Plans are produced either one-shot (PlanRoute) or through a reusable
// Planner that validates the network once and recycles its internal demand
// graph and scratch buffers across calls — the building block of the public
// batch API.
package core

import (
	"fmt"
	"runtime"
	"time"

	"pops/internal/edgecolor"
	"pops/internal/fairdist"
	"pops/internal/perms"
	"pops/internal/popsnet"
)

// PlanObserver receives one observation per planned workload: the resolved
// strategy that produced the plan, whether it was answered from the plan
// cache, and how long planning (or the cache hit) took. The public layer
// invokes it on every Route/Execute/stream completion; the serving layer
// installs an observer that feeds the per-(d, g, strategy) plan-time table
// behind /stats and /metrics. Implementations must be safe for concurrent
// use and should not block.
type PlanObserver interface {
	ObservePlan(strategy string, cached bool, d time.Duration)
}

// Options configures the planner.
type Options struct {
	// Algorithm selects the edge-coloring backend. The zero value — the
	// default — is RepeatedMatching (Hopcroft–Karp peeling); EulerSplitDC
	// is the near-linear divide-and-conquer alternative.
	Algorithm edgecolor.Algorithm
	// Verify replays every produced schedule on the slot-level simulator
	// before returning it; a simulation failure becomes a planning error.
	Verify bool
	// Parallelism bounds the worker pool of batch operations (the public
	// Planner's RouteBatch and hrelation factor routing). Zero or negative
	// means "pick a default" (GOMAXPROCS); a single planner call ignores it.
	Parallelism int
	// PlanNoCopy makes Theorem 2 Plans alias the caller's permutation slice
	// instead of snapshotting it. Ownership contract: the caller must not
	// mutate or reuse the slice for as long as the Plan (or its Verify) is
	// in use. Batch services that keep their permutations immutable set
	// this to drop one O(n) copy per plan.
	PlanNoCopy bool
	// PlanCache bounds the fingerprint-keyed plan memoization of the public
	// Planner to this many entries (LRU). Zero or negative disables caching.
	// The cache lives in the public layer; core planners always plan.
	PlanCache int
	// Observer, when non-nil, is notified of every planned workload with its
	// resolved strategy, cache verdict, and measured planning time. Like the
	// cache, observation happens in the public layer; core planners never
	// call it themselves.
	Observer PlanObserver
}

// snapshotPerm resolves Plan permutation ownership: by default the
// permutation is copied so Plans never alias mutable caller memory; under
// PlanNoCopy the caller's slice is adopted as-is.
func (o Options) snapshotPerm(pi []int) []int {
	if o.PlanNoCopy {
		return pi
	}
	return copyPerm(pi)
}

// Workers resolves the Parallelism option to a concrete worker count: the
// option itself when positive, GOMAXPROCS otherwise. Every batch layer
// (Planner.RouteBatch, hrelation factor routing) sizes its pool with this.
func (o Options) Workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Canonical names of the routing strategies that can produce a Plan. They
// appear in Plan.Strategy and in the public Router implementations.
// StrategyHRelation and StrategyOneToAll name the non-permutation workload
// planners of the unified Execute surface.
const (
	StrategyTheoremTwo    = "theorem2"
	StrategyGreedy        = "greedy"
	StrategyDirectOptimal = "direct-optimal"
	StrategySingleSlot    = "singleslot"
	StrategyAuto          = "auto"
	StrategyHRelation     = "hrelation"
	StrategyOneToAll      = "one-to-all"
	StrategyFaulty        = "faulty-permutation"
)

// Plan is a verified-constructible routing plan for one workload. It is the
// unified result type of every routing strategy and workload kind: the
// Theorem 2 relay router fills Colors/Rounds, direct strategies (greedy,
// direct optimal, single slot) carry only the schedule, h-relation plans
// fill Reqs/H/Factors instead of Pi, and one-to-all plans record the
// Speaker. Strategy records which planner produced the plan, and Verify
// replays the schedule under the matching delivery contract.
type Plan struct {
	Net      popsnet.Network
	Pi       []int
	Strategy string
	Colors   []int // per-packet relay color; nil for direct (relay-free) plans
	Rounds   int   // ⌈d/g⌉ for relayed plans, 0 for direct ones

	// H-relation section (Strategy == StrategyHRelation): the requests, the
	// relation degree, and Factors[k] — the request indices routed in the
	// k-th permutation round (dummy padding requests excluded), ascending.
	Reqs    []Request
	H       int
	Factors [][]int

	// Speaker is the broadcasting processor of a one-to-all plan.
	Speaker int

	// Faults is the canonical fault set a StrategyFaulty plan routed around.
	// Zero for every other strategy — and for fault requests whose set turned
	// out empty, which delegate to the normal planner (byte-identical plans).
	Faults popsnet.FaultSet

	sched *popsnet.Schedule
	// Delivery vectors of an h-relation plan: packet k starts at home[k] and
	// must end at want[k] (-1 for padding dummies). nil for permutation and
	// broadcast plans, whose Verify contracts are derived from Pi / Speaker.
	home, want []int
}

// FromSchedule wraps an already-built schedule as a Plan, recording the
// strategy that produced it. It is how the non-Theorem 2 routers (greedy,
// direct optimal, single slot) adopt the unified result type. pi is copied:
// a Plan owns all memory it references, so callers may reuse their slice.
func FromSchedule(nw popsnet.Network, pi []int, sched *popsnet.Schedule, strategy string) *Plan {
	return &Plan{Net: nw, Pi: copyPerm(pi), Strategy: strategy, sched: sched}
}

// copyPerm snapshots a caller-provided permutation so Plans never alias
// mutable caller memory (batch services routinely reuse request buffers).
func copyPerm(pi []int) []int {
	return append(make([]int, 0, len(pi)), pi...)
}

// OptimalSlots returns the slot count of Theorem 2: 1 when d = 1, and
// 2·⌈d/g⌉ when d > 1.
func OptimalSlots(d, g int) int {
	if d == 1 {
		return 1
	}
	return 2 * ceilDiv(d, g)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// PlanRoute computes the Theorem 2 routing of permutation pi on POPS(d, g).
// The returned plan's schedule uses exactly OptimalSlots(d, g) slots. For
// routing many permutations on one network shape, prefer a Planner, which
// amortizes validation and scratch allocations across calls.
func PlanRoute(d, g int, pi []int, opts Options) (*Plan, error) {
	pl, err := NewPlanner(d, g, opts)
	if err != nil {
		return nil, err
	}
	return pl.Plan(pi)
}

// PlanRouteViaListSystem computes the same routing through the paper's
// literal Section 3.1 formalism: build the proper list system
// L(h, i) = group(π(i + h·d)), obtain a fair distribution f by Theorem 1,
// and use f(h, i) as the relay color of packet i + h·d. It exists to
// cross-check the unified demand-graph construction; both produce schedules
// with identical structure.
func PlanRouteViaListSystem(d, g int, pi []int, opts Options) (*Plan, error) {
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		return nil, err
	}
	if err := perms.Validate(pi); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(pi) != nw.N() {
		return nil, fmt.Errorf("core: permutation has length %d, want n = %d", len(pi), nw.N())
	}
	var plan *Plan
	if d == 1 {
		sched, err := directSchedule(nw, pi)
		if err != nil {
			return nil, err
		}
		plan = &Plan{Net: nw, Pi: copyPerm(pi), Strategy: StrategyTheoremTwo, sched: sched}
	} else {
		ls, err := fairdist.FromPermutation(d, g, pi)
		if err != nil {
			return nil, err
		}
		f, err := ls.FairDistribution(opts.Algorithm)
		if err != nil {
			return nil, fmt.Errorf("core: fair distribution: %w", err)
		}
		colors := make([]int, nw.N())
		for h := 0; h < g; h++ {
			for i := 0; i < d; i++ {
				colors[i+h*d] = f[h][i]
			}
		}
		plan, err = planFromColors(nw, pi, colors)
		if err != nil {
			return nil, err
		}
	}
	if opts.Verify {
		if _, err := plan.Verify(); err != nil {
			return nil, fmt.Errorf("core: schedule failed verification: %w", err)
		}
	}
	return plan, nil
}

// directSchedule is the d = 1 case: the network is a clique of couplers and
// one slot suffices (each processor is its own group).
func directSchedule(nw popsnet.Network, pi []int) (*popsnet.Schedule, error) {
	n := nw.N()
	slot := popsnet.Slot{
		Sends: make([]popsnet.Send, 0, n),
		Recvs: make([]popsnet.Recv, 0, n),
	}
	for p := 0; p < n; p++ {
		slot.Sends = append(slot.Sends, popsnet.Send{Src: p, DestGroup: pi[p], Packet: p})
		slot.Recvs = append(slot.Recvs, popsnet.Recv{Proc: pi[p], SrcGroup: p})
	}
	return &popsnet.Schedule{Net: nw, Slots: []popsnet.Slot{slot}}, nil
}

// planFromColors turns per-packet relay colors into the two-slot-per-round
// schedule, sanity-checking the fair-distribution invariants on the way. It
// is the one-shot form of (*Planner).buildPlan; callers reach it only for
// d > 1, with pi already validated, so just the build scratch is allocated.
func planFromColors(nw popsnet.Network, pi, colors []int) (*Plan, error) {
	pl := &Planner{nw: nw}
	pl.initBuildScratch()
	return pl.buildPlan(pi, colors)
}

// Schedule returns the plan's slot schedule.
func (p *Plan) Schedule() *popsnet.Schedule { return p.sched }

// SlotCount returns the number of slots the plan uses.
func (p *Plan) SlotCount() int { return len(p.sched.Slots) }

// Verify replays the schedule on the network simulator and checks that the
// plan's workload was delivered: every packet of a permutation plan at its
// destination π(p), every real request of an h-relation plan at its Dst, and
// the speaker's packet of a one-to-all plan at every processor. It returns
// the execution trace.
func (p *Plan) Verify() (*popsnet.Trace, error) {
	switch {
	case p.Strategy == StrategyFaulty:
		fn, err := p.Faults.Compile(p.Net)
		if err != nil {
			return nil, err
		}
		return popsnet.VerifyPermutationRoutedFaulty(p.sched, p.Pi, fn)
	case p.Strategy == StrategyHRelation:
		return popsnet.VerifyDelivery(p.sched, p.home, p.want)
	case p.Strategy == StrategyOneToAll:
		st, tr, err := popsnet.Run(p.sched)
		if err != nil {
			return nil, err
		}
		for proc := 0; proc < p.Net.N(); proc++ {
			if !st.Holds(proc, p.Speaker) {
				return tr, fmt.Errorf("core: processor %d did not receive the broadcast packet of speaker %d", proc, p.Speaker)
			}
		}
		return tr, nil
	default:
		return popsnet.VerifyPermutationRouted(p.sched, p.Pi)
	}
}

// IntermediateGroup returns the relay group of packet p in the plan, or -1
// for direct (relay-free) plans.
func (p *Plan) IntermediateGroup(packet int) int {
	if p.Colors == nil {
		return -1
	}
	return p.Colors[packet] % p.Net.G
}

// Round returns the round in which packet p moves, or 0 for direct plans.
func (p *Plan) Round(packet int) int {
	if p.Colors == nil {
		return 0
	}
	return p.Colors[packet] / p.Net.G
}
