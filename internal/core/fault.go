package core

import (
	"context"
	"fmt"

	"pops/internal/edgecolor"
	"pops/internal/obs"
	"pops/internal/perms"
	"pops/internal/popsnet"
)

// UnroutableError reports that a permutation cannot be routed on the faulted
// network: some packet's source/destination group pair has no surviving relay
// path. It is the one way PlanFaulty fails on a valid input — any lesser
// fault load degrades the plan's slot count instead.
type UnroutableError struct {
	Net      popsnet.Network
	Packet   int // an example unroutable packet
	SrcGroup int
	DstGroup int
	// SeveredSrc / SeveredDst single out the total-loss cases: every transmit
	// coupler of the source group, or every receive coupler of the
	// destination group, is dead. A dead group always severs itself, so any
	// FaultSet naming a dead group makes every permutation unroutable.
	SeveredSrc bool
	SeveredDst bool
}

func (e *UnroutableError) Error() string {
	msg := fmt.Sprintf("core: %v: packet %d (group %d → group %d) has no alive relay path",
		e.Net, e.Packet, e.SrcGroup, e.DstGroup)
	switch {
	case e.SeveredSrc:
		msg += fmt.Sprintf("; source group %d is fully severed (every coupler c(·,%d) is dead)", e.SrcGroup, e.SrcGroup)
	case e.SeveredDst:
		msg += fmt.Sprintf("; destination group %d is fully severed (every coupler c(%d,·) is dead)", e.DstGroup, e.DstGroup)
	}
	return msg
}

// PlanFaulty computes a routing of pi that never drives a dead coupler of
// fs. It starts from the normal Theorem 2 balanced coloring and repairs only
// the color classes touching dead hardware: first by moving broken packets
// into classes with slack, then by Kempe-chain component flips, finally by
// appending overflow rounds (two slots each) when no in-schedule repair
// exists — plans degrade in slot count, never fail, unless some packet's
// group pair has no surviving relay path at all, which is reported as a
// typed *UnroutableError. An empty fault set delegates to the normal planner
// and returns a byte-identical plan.
func (pl *Planner) PlanFaulty(ctx context.Context, pi []int, fs popsnet.FaultSet) (*Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nw := pl.nw
	if len(pi) != nw.N() {
		return nil, fmt.Errorf("core: permutation has length %d, want n = %d", len(pi), nw.N())
	}
	if err := perms.ValidateInto(pi, pl.seen); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	fs = fs.Canonical()
	fn, err := fs.Compile(nw)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if fn.DeadCount() == 0 {
		return pl.PlanCtx(ctx, pi)
	}
	if err := checkRoutable(nw, pi, fn); err != nil {
		return nil, err
	}

	// The whole fault path — base coloring plus the repair passes — is the
	// fault-repair phase on the trace span; the normal-planner delegation
	// above records plain factorize time instead.
	sp := obs.SpanFromContext(ctx)
	sp.Begin(obs.PhaseFaultRepair)
	var plan *Plan
	if nw.D == 1 {
		plan, err = pl.planFaultyDirect(pi, fs, fn)
	} else {
		plan, err = pl.planFaultyRelay(ctx, pi, fs, fn)
	}
	if err != nil {
		return nil, err
	}
	sp.End()
	if pl.opts.Verify {
		sp.Begin(obs.PhaseVerify)
		if _, err := plan.Verify(); err != nil {
			return nil, fmt.Errorf("core: fault schedule failed verification: %w", err)
		}
		sp.End()
	}
	return plan, nil
}

// checkRoutable rejects up front any packet whose group pair survives on no
// relay: the repair passes below only ever move packets between relays, so
// existence of an alive relay per pair is exactly the feasibility condition.
// For d = 1 a packet may instead ride its direct coupler c(dst, src).
func checkRoutable(nw popsnet.Network, pi []int, fn *popsnet.FaultyNetwork) error {
	g := nw.G
	verdict := make([]int8, g*g) // (a*g + b) -> 0 unknown, 1 routable, -1 not
	for p, dst := range pi {
		a, b := nw.Group(p), nw.Group(dst)
		switch verdict[a*g+b] {
		case 1:
			continue
		case 0:
			if nw.D == 1 && !fn.Dead(b, a) {
				verdict[a*g+b] = 1
				continue
			}
			if _, ok := fn.AliveRelay(a, b); ok {
				verdict[a*g+b] = 1
				continue
			}
			verdict[a*g+b] = -1
		}
		return &UnroutableError{
			Net: nw, Packet: p, SrcGroup: a, DstGroup: b,
			SeveredSrc: fn.SeveredSource(a), SeveredDst: fn.SeveredDest(b),
		}
	}
	return nil
}

// planFaultyDirect is the d = 1 fault case. The fault-free plan is a single
// direct slot (each processor is its own group); packets whose direct
// coupler died are carried by appended two-slot relay rounds instead, one
// packet per relay group per round (class capacity min(d, g) = 1).
func (pl *Planner) planFaultyDirect(pi []int, fs popsnet.FaultSet, fn *popsnet.FaultyNetwork) (*Plan, error) {
	nw := pl.nw
	n := nw.N()
	slot := popsnet.Slot{}
	var broken []int
	for p := 0; p < n; p++ {
		if fn.Dead(pi[p], p) { // groups == processors when d = 1
			broken = append(broken, p)
			continue
		}
		slot.Sends = append(slot.Sends, popsnet.Send{Src: p, DestGroup: pi[p], Packet: p})
		slot.Recvs = append(slot.Recvs, popsnet.Recv{Proc: pi[p], SrcGroup: p})
	}
	sched := &popsnet.Schedule{Net: nw, Slots: []popsnet.Slot{slot}}

	// Greedy round packing: each broken packet takes the first round where
	// some alive relay of its pair is still unclaimed. checkRoutable
	// guarantees at least one alive relay per pair, so a fresh round always
	// admits the packet and the loop terminates.
	type hop struct{ p, relay int }
	var rounds [][]hop
	used := make([][]bool, 0, 4) // round -> relay group claimed
	for _, p := range broken {
		placed := false
		for r := range rounds {
			for j := 0; j < nw.G && !placed; j++ {
				if !used[r][j] && !fn.Dead(j, p) && !fn.Dead(pi[p], j) {
					rounds[r] = append(rounds[r], hop{p: p, relay: j})
					used[r][j] = true
					placed = true
				}
			}
			if placed {
				break
			}
		}
		if !placed {
			j, _ := fn.AliveRelay(p, pi[p])
			rounds = append(rounds, []hop{{p: p, relay: j}})
			used = append(used, make([]bool, nw.G))
			used[len(used)-1][j] = true
		}
	}
	for _, round := range rounds {
		slot1 := popsnet.Slot{}
		slot2 := popsnet.Slot{}
		for _, h := range round {
			relayProc := nw.Proc(h.relay, 0)
			slot1.Sends = append(slot1.Sends, popsnet.Send{Src: h.p, DestGroup: h.relay, Packet: h.p})
			slot1.Recvs = append(slot1.Recvs, popsnet.Recv{Proc: relayProc, SrcGroup: h.p})
			slot2.Sends = append(slot2.Sends, popsnet.Send{Src: relayProc, DestGroup: pi[h.p], Packet: h.p})
			slot2.Recvs = append(slot2.Recvs, popsnet.Recv{Proc: pi[h.p], SrcGroup: h.relay})
		}
		sched.Slots = append(sched.Slots, slot1, slot2)
	}
	return &Plan{
		Net: nw, Pi: pl.opts.snapshotPerm(pi), Strategy: StrategyFaulty,
		Rounds: len(rounds), Faults: fs, sched: sched,
	}, nil
}

// planFaultyRelay is the d > 1 fault case: balanced coloring, then repair.
func (pl *Planner) planFaultyRelay(ctx context.Context, pi []int, fs popsnet.FaultSet, fn *popsnet.FaultyNetwork) (*Plan, error) {
	nw := pl.nw
	d, g := nw.D, nw.G
	capacity := d
	if g < d {
		capacity = g
	}

	// The normal construction first: demand edge p runs from Group(p) to
	// Group(pi(p)), so demand edge IDs coincide with packet IDs.
	pl.demand.Reset()
	for p := 0; p < nw.N(); p++ {
		pl.demand.AddEdge(nw.Group(p), nw.Group(pi[p]))
	}
	colors := make([]int, nw.N())
	if err := pl.fact.BalancedInto(colors, pl.demand, pl.colorCount, pl.opts.Algorithm); err != nil {
		return nil, fmt.Errorf("core: coloring demand graph: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Color c means relay group c mod g in round ⌊c/g⌋; rounds are padded to
	// a multiple of g colors so every relay group exists in every round (the
	// trailing classes are empty when max(d,g) is not a multiple of g —
	// exactly the schedule slack the repair spends first).
	baseColors := ceilDiv(pl.colorCount, g) * g
	rec, err := edgecolor.NewRecolorer(pl.demand, colors, baseColors)
	if err != nil {
		return nil, fmt.Errorf("core: indexing demand coloring: %w", err)
	}
	size := make([]int, baseColors)
	for _, c := range colors {
		size[c]++
	}
	alive := func(p, c int) bool {
		j := c % g
		return !fn.Dead(j, nw.Group(p)) && !fn.Dead(nw.Group(pi[p]), j)
	}

	var broken []int
	for p, c := range colors {
		if !alive(p, c) {
			broken = append(broken, p)
		}
	}

	// Pass 1 — direct moves: a broken packet joins any class that has slack,
	// an alive relay for it, and neither its source nor destination group yet.
	var unresolved []int
	for _, p := range broken {
		if alive(p, rec.Color(p)) {
			continue // repaired as a side effect of an earlier move
		}
		a, b := nw.Group(p), nw.Group(pi[p])
		moved := false
		for c := 0; c < baseColors; c++ {
			if size[c] >= capacity || !alive(p, c) {
				continue
			}
			if rec.EdgeAtL(a, c) >= 0 || rec.EdgeAtR(b, c) >= 0 {
				continue
			}
			old := rec.Color(p)
			if err := rec.Recolor(p, c); err != nil {
				return nil, fmt.Errorf("core: fault repair: %w", err)
			}
			size[old]--
			size[c]++
			moved = true
			break
		}
		if !moved {
			unresolved = append(unresolved, p)
		}
	}

	// Pass 2 — Kempe flips: swap the two colors along the alternating
	// component through p. The flip is taken only when every flipped edge
	// lands on an alive relay (monotone: no repaired edge ever re-breaks)
	// and both class sizes stay within capacity.
	var overflow []int
	for _, p := range unresolved {
		if alive(p, rec.Color(p)) {
			continue
		}
		fixed := false
		cb := rec.Color(p)
		for ca := 0; ca < baseColors && !fixed; ca++ {
			if ca == cb {
				continue
			}
			comp := rec.Component(p, ca)
			nb, na := 0, 0 // component edges currently colored cb / ca
			ok := true
			for _, q := range comp {
				var next int
				if rec.Color(q) == cb {
					nb++
					next = ca
				} else {
					na++
					next = cb
				}
				if !alive(q, next) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			newB, newA := size[cb]-nb+na, size[ca]-na+nb
			if newB > capacity || newA > capacity {
				continue
			}
			rec.FlipComponent(comp, cb, ca)
			size[cb], size[ca] = newB, newA
			fixed = true
		}
		if !fixed {
			overflow = append(overflow, p)
		}
	}

	// Pass 3 — overflow rounds: packets no in-schedule repair could place get
	// fresh rounds of g empty classes (two slots each). An alive relay exists
	// for every pair (checkRoutable), and its class in a fresh round is empty,
	// so every packet places; usually many share one overflow round.
	totalColors := baseColors
	for _, p := range overflow {
		if alive(p, rec.Color(p)) {
			continue
		}
		a, b := nw.Group(p), nw.Group(pi[p])
		placed := false
		for c := baseColors; c < totalColors; c++ {
			if size[c] >= capacity || !alive(p, c) {
				continue
			}
			if rec.EdgeAtL(a, c) >= 0 || rec.EdgeAtR(b, c) >= 0 {
				continue
			}
			old := rec.Color(p)
			if err := rec.Recolor(p, c); err != nil {
				return nil, fmt.Errorf("core: fault repair: %w", err)
			}
			size[old]--
			size[c]++
			placed = true
			break
		}
		if !placed {
			j, _ := fn.AliveRelay(a, b)
			rec.Grow(totalColors + g)
			size = append(size, make([]int, g)...)
			old := rec.Color(p)
			if err := rec.Recolor(p, totalColors+j); err != nil {
				return nil, fmt.Errorf("core: fault repair: %w", err)
			}
			size[old]--
			size[totalColors+j]++
			totalColors += g
		}
	}

	return pl.buildFaultyPlan(pi, colors, totalColors, capacity, fs, fn)
}

// buildFaultyPlan is buildPlan under the repaired coloring's relaxed
// invariants: classes are proper and within capacity but need not be exactly
// full (repair drains classes and overflow rounds are sparse), and every
// class relay must be alive for all its packets. The schedule layout is
// identical to the fault-free builder — two slots per round, relays assigned
// by arrival rank — so properness and capacity give conflict freedom exactly
// as in the normal proof.
func (pl *Planner) buildFaultyPlan(pi, colors []int, colorCount, capacity int, fs popsnet.FaultSet, fn *popsnet.FaultyNetwork) (*Plan, error) {
	nw := pl.nw
	g := nw.G
	rounds := ceilDiv(colorCount, g)

	byColor := make([][]int, colorCount)
	for p, c := range colors {
		if c < 0 || c >= colorCount {
			return nil, fmt.Errorf("core: packet %d has color %d outside [0,%d)", p, c, colorCount)
		}
		byColor[c] = append(byColor[c], p)
	}
	seenSrc := make([]bool, g)
	seenDst := make([]bool, g)
	for c, class := range byColor {
		if len(class) > capacity {
			return nil, fmt.Errorf("core: fault repair overfilled color %d: %d packets, capacity %d", c, len(class), capacity)
		}
		j := c % g
		for _, p := range class {
			a, b := nw.Group(p), nw.Group(pi[p])
			if seenSrc[a] {
				return nil, fmt.Errorf("core: fault repair broke properness: source group %d repeats color %d", a, c)
			}
			if seenDst[b] {
				return nil, fmt.Errorf("core: fault repair broke properness: destination group %d repeats color %d", b, c)
			}
			seenSrc[a], seenDst[b] = true, true
			if fn.Dead(j, a) || fn.Dead(b, j) {
				return nil, fmt.Errorf("core: fault repair left packet %d on a dead relay path via group %d", p, j)
			}
		}
		for _, p := range class {
			seenSrc[nw.Group(p)] = false
			seenDst[nw.Group(pi[p])] = false
		}
	}

	sched := &popsnet.Schedule{Net: nw, Slots: make([]popsnet.Slot, 0, 2*rounds)}
	for k := 0; k < rounds; k++ {
		lo, hi := k*g, (k+1)*g
		if hi > colorCount {
			hi = colorCount
		}
		slot1 := popsnet.Slot{}
		slot2 := popsnet.Slot{}
		for c := lo; c < hi; c++ {
			j := c % g
			for rank, p := range byColor[c] {
				relay := nw.Proc(j, rank)
				dest := pi[p]
				slot1.Sends = append(slot1.Sends, popsnet.Send{Src: p, DestGroup: j, Packet: p})
				slot1.Recvs = append(slot1.Recvs, popsnet.Recv{Proc: relay, SrcGroup: nw.Group(p)})
				slot2.Sends = append(slot2.Sends, popsnet.Send{Src: relay, DestGroup: nw.Group(dest), Packet: p})
				slot2.Recvs = append(slot2.Recvs, popsnet.Recv{Proc: dest, SrcGroup: j})
			}
		}
		sched.Slots = append(sched.Slots, slot1, slot2)
	}

	return &Plan{
		Net: nw, Pi: pl.opts.snapshotPerm(pi), Strategy: StrategyFaulty,
		Colors: colors, Rounds: rounds, Faults: fs, sched: sched,
	}, nil
}
