package core

import (
	"math/rand"
	"testing"

	"pops/internal/perms"
	"pops/internal/popsnet"
)

// Large-shape stress tests: plan, verify, and check structural invariants on
// networks up to a few thousand processors. Skipped under -short.

func TestStressLargeShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(1234))
	for _, tc := range []struct{ d, g int }{
		{64, 64},  // n = 4096, square
		{16, 128}, // n = 2048, d << g (padding path)
		{128, 16}, // n = 2048, d >> g (multi-round path)
		{1, 2048}, // n = 2048, direct path
		{63, 17},  // awkward non-dividing shape
	} {
		n := tc.d * tc.g
		pi := perms.Random(n, rng)
		p, err := PlanRoute(tc.d, tc.g, pi, Options{})
		if err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
		if got, want := p.SlotCount(), OptimalSlots(tc.d, tc.g); got != want {
			t.Fatalf("d=%d g=%d: slots = %d, want %d", tc.d, tc.g, got, want)
		}
		if _, err := p.Verify(); err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
	}
}

func TestStressAllBackendsMediumShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(4321))
	for _, algo := range allAlgorithms {
		for _, tc := range []struct{ d, g int }{{32, 32}, {8, 64}, {64, 8}} {
			pi := perms.Random(tc.d*tc.g, rng)
			p, err := PlanRoute(tc.d, tc.g, pi, Options{Algorithm: algo})
			if err != nil {
				t.Fatalf("%v d=%d g=%d: %v", algo, tc.d, tc.g, err)
			}
			if _, err := p.Verify(); err != nil {
				t.Fatalf("%v d=%d g=%d: %v", algo, tc.d, tc.g, err)
			}
		}
	}
}

func TestStressWorstCasePermutations(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Structured worst cases at scale: reversal and group rotation.
	for _, tc := range []struct{ d, g int }{{64, 16}, {16, 64}, {48, 48}} {
		n := tc.d * tc.g
		rev := perms.VectorReversal(n)
		p, err := PlanRoute(tc.d, tc.g, rev, Options{})
		if err != nil {
			t.Fatalf("reversal d=%d g=%d: %v", tc.d, tc.g, err)
		}
		if _, err := p.Verify(); err != nil {
			t.Fatalf("reversal d=%d g=%d: %v", tc.d, tc.g, err)
		}
		rot, err := perms.GroupRotation(tc.d, tc.g, 1)
		if err != nil {
			t.Fatal(err)
		}
		p, err = PlanRoute(tc.d, tc.g, rot, Options{})
		if err != nil {
			t.Fatalf("rotation d=%d g=%d: %v", tc.d, tc.g, err)
		}
		if _, err := p.Verify(); err != nil {
			t.Fatalf("rotation d=%d g=%d: %v", tc.d, tc.g, err)
		}
	}
}

func TestStressFullUtilizationAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// d = g at scale: every coupler busy in every slot.
	g := 48
	rng := rand.New(rand.NewSource(99))
	pi := perms.Random(g*g, rng)
	p, err := PlanRoute(g, g, pi, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := popsnet.ComputeStats(p.Schedule())
	if st.Utilization != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", st.Utilization)
	}
	if st.Sends != 2*g*g || st.Recvs != 2*g*g {
		t.Fatalf("sends/recvs = %d/%d, want %d each", st.Sends, st.Recvs, 2*g*g)
	}
}
