package core

import (
	"context"
	"fmt"
	"slices"
	"time"

	"pops/internal/edgecolor"
	"pops/internal/graph"
	"pops/internal/obs"
	"pops/internal/perms"
	"pops/internal/popsnet"
)

// StreamedSlot is one increment of a streaming plan: the fragment of
// schedule slot Slot contributed by one relay color class. Within a round,
// every color class maps to a distinct intermediate group and its packets
// are ranked by processor index alone, so each class independently
// determines a contiguous, conflict-free block of both of its round's
// slots — that per-class independence is what makes slot delivery
// streamable at all.
//
// Fragments alias the final plan's schedule storage: they stay valid for
// the life of the plan and must not be modified. Fragments of one slot can
// arrive interleaved with fragments of other slots (the Euler-split backend
// peels factors out of class order); consumers that need whole slots in
// schedule order collect the stream or buffer until Final.
type StreamedSlot struct {
	Slot   int // index of the schedule slot this fragment belongs to
	Color  int // relay color class that produced the fragment; -1 for whole-slot fragments
	Offset int // position of the fragment's first send/recv within its slot
	Final  bool
	Sends  []popsnet.Send
	Recvs  []popsnet.Recv
}

// PlanStream is an in-progress Theorem 2 planning whose schedule is
// delivered incrementally: StartPlan validates the permutation and builds
// the demand graph, and each Next call resumes the balanced edge coloring
// just long enough to peel one more color class, emitting that class's two
// slot fragments. The paper's fair-distribution invariants (equations
// (4)–(7)) are re-checked per class as it lands rather than at the end.
// Once the final fragment has been emitted, the accumulated Plan — byte
// identical to what Planner.Plan would have produced — is available from
// Collect or Plan.
//
// A PlanStream owns its Planner until it is exhausted or abandoned: any
// other call on the same Planner supersedes the stream mid-flight.
type PlanStream struct {
	pl     *Planner
	ctx    context.Context
	span   *obs.Span // trace span carried by ctx at Start, nil when untraced
	pi     []int
	colors []int
	sched  *popsnet.Schedule
	stream *edgecolor.Stream // nil for the direct d = 1 plan
	rounds int
	want   int // packets per class, min(d, g)

	pending    StreamedSlot // second fragment of the factor just peeled
	hasPending bool
	emitted    int // fragments emitted
	total      int // fragments the stream will emit
	plan       *Plan
	verified   bool
	err        error
	done       bool
}

// StartPlan begins a streaming Theorem 2 planning of pi. It performs the
// same validation as Plan, builds the demand multigraph and the Theorem 1
// padding graph once, and returns a stream whose Next calls deliver the
// schedule fragment by fragment. The first fragment is ready after a single
// color class has been peeled — long before the full factorization that a
// batch Plan call must wait for.
func (pl *Planner) StartPlan(pi []int) (*PlanStream, error) {
	return pl.StartPlanCtx(context.Background(), pi)
}

// StartPlanCtx is StartPlan with a context: cancellation is checked between
// factors (before each color class is peeled), so a cancelled stream stops
// factor production at its next Next call with ctx.Err() as the sticky
// error. An already-cancelled ctx is reported here, before any setup.
func (pl *Planner) StartPlanCtx(ctx context.Context, pi []int) (*PlanStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nw := pl.nw
	if len(pi) != nw.N() {
		return nil, fmt.Errorf("core: permutation has length %d, want n = %d", len(pi), nw.N())
	}
	if err := perms.ValidateInto(pi, pl.seen); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ps := &PlanStream{pl: pl, ctx: ctx, span: obs.SpanFromContext(ctx), pi: pl.opts.snapshotPerm(pi)}
	// Stream setup (demand build, schedule preallocation, coloring kickoff)
	// and each peeled factor count as factorize time on the trace span.
	setupStart := time.Now()
	defer func() { ps.span.Add(obs.PhaseFactorize, time.Since(setupStart)) }()
	if nw.D == 1 {
		sched, err := directSchedule(nw, ps.pi)
		if err != nil {
			return nil, err
		}
		ps.sched = sched
		ps.plan = &Plan{Net: nw, Pi: ps.pi, Strategy: StrategyTheoremTwo, sched: sched}
		ps.total = 1
		return ps, nil
	}

	pl.demand.Reset()
	for p := 0; p < nw.N(); p++ {
		pl.demand.AddEdge(nw.Group(p), nw.Group(pi[p]))
	}
	d, g := nw.D, nw.G
	colorCount := pl.colorCount
	ps.rounds = ceilDiv(colorCount, g)
	ps.want = min(d, g)
	ps.total = 2 * colorCount
	ps.colors = make([]int, nw.N())

	// The schedule is preallocated at its exact final size: every class has
	// exactly want packets (checked as each class lands), so the block each
	// fragment occupies inside its slot is known up front, and fragments can
	// be written straight into the plan's storage in any arrival order.
	ps.sched = &popsnet.Schedule{Net: nw, Slots: make([]popsnet.Slot, 2*ps.rounds)}
	pl.remaining = graph.ResizeInts(pl.remaining, 2*ps.rounds)
	for k := 0; k < ps.rounds; k++ {
		lo, hi := k*g, (k+1)*g
		if hi > colorCount {
			hi = colorCount
		}
		moved := (hi - lo) * ps.want
		for s := 0; s < 2; s++ {
			ps.sched.Slots[2*k+s] = popsnet.Slot{
				Sends: make([]popsnet.Send, moved),
				Recvs: make([]popsnet.Recv, moved),
			}
			pl.remaining[2*k+s] = hi - lo
		}
	}

	ps.stream = pl.fact.StartBalancedCtx(ctx, pl.demand, colorCount, pl.opts.Algorithm)
	if err := ps.stream.Err(); err != nil {
		return nil, fmt.Errorf("core: coloring demand graph: %w", err)
	}
	return ps, nil
}

// Next emits the next slot fragment. It returns ok == false once every
// fragment has been delivered (the assembled plan is then available from
// Plan/Collect) or when the stream has failed — the two cases are told
// apart by Err.
func (ps *PlanStream) Next() (StreamedSlot, bool) {
	if ps.err != nil || ps.done {
		return StreamedSlot{}, false
	}
	if ps.ctx != nil {
		if err := ps.ctx.Err(); err != nil {
			ps.err = err
			return StreamedSlot{}, false
		}
	}
	if ps.hasPending {
		ps.hasPending = false
		ps.emitted++
		frag := ps.pending
		ps.finishIfDelivered()
		return frag, true
	}
	if ps.stream == nil {
		// Direct d = 1 plan: one slot, delivered whole.
		ps.emitted++
		slot := &ps.sched.Slots[0]
		ps.finishIfDelivered()
		return StreamedSlot{Slot: 0, Color: -1, Final: true, Sends: slot.Sends, Recvs: slot.Recvs}, true
	}

	factorStart := time.Now()
	c, ok, err := ps.stream.Next(ps.colors)
	if err != nil {
		ps.err = fmt.Errorf("core: coloring demand graph: %w", err)
		return StreamedSlot{}, false
	}
	if !ok {
		ps.err = fmt.Errorf("core: internal error: coloring ended after %d of %d fragments", ps.emitted, ps.total)
		return StreamedSlot{}, false
	}

	pl, nw := ps.pl, ps.pl.nw
	g := nw.G
	if c < 0 || c >= pl.colorCount {
		ps.err = fmt.Errorf("core: color %d outside [0,%d)", c, pl.colorCount)
		return StreamedSlot{}, false
	}
	// The class arrives in factorization order; rank assignment needs it in
	// processor order (that is what makes arrivals per group hit distinct
	// relays, and what the batch builder uses).
	pl.classBuf = append(pl.classBuf[:0], ps.stream.Factor()...)
	slices.Sort(pl.classBuf)
	class := pl.classBuf
	if err := pl.checkClass(ps.pi, class, c); err != nil {
		ps.err = err
		return StreamedSlot{}, false
	}

	k, j := c/g, c%g
	lo := k * g
	off := (c - lo) * ps.want
	slot1 := &ps.sched.Slots[2*k]
	slot2 := &ps.sched.Slots[2*k+1]
	for rank, p := range class {
		relay := nw.Proc(j, rank)
		dest := ps.pi[p]
		slot1.Sends[off+rank] = popsnet.Send{Src: p, DestGroup: j, Packet: p}
		slot1.Recvs[off+rank] = popsnet.Recv{Proc: relay, SrcGroup: nw.Group(p)}
		slot2.Sends[off+rank] = popsnet.Send{Src: relay, DestGroup: nw.Group(dest), Packet: p}
		slot2.Recvs[off+rank] = popsnet.Recv{Proc: dest, SrcGroup: j}
	}
	end := off + ps.want
	pl.remaining[2*k]--
	pl.remaining[2*k+1]--
	frag1 := StreamedSlot{
		Slot: 2 * k, Color: c, Offset: off, Final: pl.remaining[2*k] == 0,
		Sends: slot1.Sends[off:end:end], Recvs: slot1.Recvs[off:end:end],
	}
	ps.pending = StreamedSlot{
		Slot: 2*k + 1, Color: c, Offset: off, Final: pl.remaining[2*k+1] == 0,
		Sends: slot2.Sends[off:end:end], Recvs: slot2.Recvs[off:end:end],
	}
	ps.hasPending = true
	ps.emitted++
	ps.span.Add(obs.PhaseFactorize, time.Since(factorStart))
	return frag1, true
}

// finishIfDelivered assembles the plan once the last fragment is out.
func (ps *PlanStream) finishIfDelivered() {
	if ps.emitted < ps.total {
		return
	}
	ps.done = true
	if ps.plan == nil {
		ps.plan = &Plan{
			Net: ps.pl.nw, Pi: ps.pi, Strategy: StrategyTheoremTwo,
			Colors: ps.colors, Rounds: ps.rounds, sched: ps.sched,
		}
	}
}

// Collect drains the remaining fragments and returns the assembled plan,
// byte identical to what Planner.Plan would have produced for the same
// permutation. Under Options.Verify the completed schedule is replayed on
// the simulator, exactly like the batch path.
func (ps *PlanStream) Collect() (*Plan, error) {
	for {
		if _, ok := ps.Next(); !ok {
			break
		}
	}
	if ps.err != nil {
		return nil, ps.err
	}
	if ps.pl.opts.Verify && !ps.verified {
		ps.span.Begin(obs.PhaseVerify)
		if _, err := ps.plan.Verify(); err != nil {
			ps.err = fmt.Errorf("core: schedule failed verification: %w", err)
			return nil, ps.err
		}
		ps.span.End()
		ps.verified = true
	}
	return ps.plan, nil
}

// Plan returns the assembled plan once the stream is exhausted, or nil
// while fragments are still outstanding. Unlike Collect it never replays
// the schedule on the simulator.
func (ps *PlanStream) Plan() *Plan { return ps.plan }

// Err returns the stream's sticky error, if any.
func (ps *PlanStream) Err() error { return ps.err }

// SlotCount returns the total number of slots of the final schedule.
func (ps *PlanStream) SlotCount() int { return len(ps.sched.Slots) }

// FragmentCount returns the total number of fragments the stream emits:
// two per color class, or one for the direct d = 1 plan.
func (ps *PlanStream) FragmentCount() int { return ps.total }
