package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"pops/internal/perms"
	"pops/internal/popsnet"
)

// assertFaultPlan replays the plan on the fault-injected simulator and scans
// every send for dead-coupler use: full delivery, zero dead hardware.
func assertFaultPlan(t *testing.T, plan *Plan, pi []int, fs popsnet.FaultSet) {
	t.Helper()
	fn, err := fs.Compile(plan.Net)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if _, err := popsnet.VerifyPermutationRoutedFaulty(plan.Schedule(), pi, fn); err != nil {
		t.Fatalf("fault replay: %v", err)
	}
	for i, slot := range plan.Schedule().Slots {
		for _, snd := range slot.Sends {
			if fn.Dead(snd.DestGroup, plan.Net.Group(snd.Src)) {
				t.Fatalf("slot %d drives dead coupler c(%d,%d)", i, snd.DestGroup, plan.Net.Group(snd.Src))
			}
		}
	}
}

func TestPlanFaultyEmptySetIsByteIdentical(t *testing.T) {
	for _, shape := range [][2]int{{1, 5}, {2, 2}, {3, 4}, {4, 3}, {4, 4}} {
		d, g := shape[0], shape[1]
		pl, err := NewPlanner(d, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(d*100 + g)))
		pi := perms.Random(d*g, rng)
		base, err := pl.Plan(pi)
		if err != nil {
			t.Fatal(err)
		}
		faulty, err := pl.PlanFaulty(context.Background(), pi, popsnet.FaultSet{})
		if err != nil {
			t.Fatal(err)
		}
		if faulty.Strategy != StrategyTheoremTwo {
			t.Fatalf("POPS(%d,%d): empty-fault strategy = %q, want %q", d, g, faulty.Strategy, StrategyTheoremTwo)
		}
		if !reflect.DeepEqual(base.Schedule(), faulty.Schedule()) {
			t.Fatalf("POPS(%d,%d): empty-fault schedule differs from the normal plan", d, g)
		}
		if !reflect.DeepEqual(base.Colors, faulty.Colors) {
			t.Fatalf("POPS(%d,%d): empty-fault colors differ", d, g)
		}
	}
}

func TestPlanFaultyAvoidsDeadCouplers(t *testing.T) {
	shapes := [][2]int{{2, 2}, {2, 4}, {3, 2}, {4, 4}, {6, 3}, {3, 6}, {8, 8}}
	for _, shape := range shapes {
		d, g := shape[0], shape[1]
		pl, err := NewPlanner(d, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(d*1000 + g)))
		for trial := 0; trial < 20; trial++ {
			pi := perms.Random(d*g, rng)
			var fs popsnet.FaultSet
			for b := 0; b < g; b++ {
				for a := 0; a < g; a++ {
					if rng.Intn(5) == 0 {
						fs.Couplers = append(fs.Couplers, popsnet.Coupler{B: b, A: a})
					}
				}
			}
			plan, err := pl.PlanFaulty(context.Background(), pi, fs)
			if err != nil {
				var ue *UnroutableError
				if errors.As(err, &ue) {
					if _, ok := mustCompile(t, plan, d, g, fs).AliveRelay(ue.SrcGroup, ue.DstGroup); ok && d > 1 {
						t.Fatalf("POPS(%d,%d): unroutable verdict for a pair with an alive relay", d, g)
					}
					continue
				}
				t.Fatalf("POPS(%d,%d) trial %d: %v", d, g, trial, err)
			}
			if plan.Strategy != StrategyFaulty && !fs.Empty() {
				t.Fatalf("strategy = %q", plan.Strategy)
			}
			assertFaultPlan(t, plan, pi, fs)
		}
	}
}

// mustCompile compiles fs on the shape regardless of whether planning
// produced a plan (plan may be nil on an unroutable verdict).
func mustCompile(t *testing.T, plan *Plan, d, g int, fs popsnet.FaultSet) *popsnet.FaultyNetwork {
	t.Helper()
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := fs.Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

func TestPlanFaultyUnroutable(t *testing.T) {
	pl, err := NewPlanner(3, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pi := perms.Identity(9)

	// A dead group severs itself: every permutation sends from (and into)
	// every group, so the typed error is guaranteed.
	_, err = pl.PlanFaulty(context.Background(), pi, popsnet.FaultSet{Groups: []int{1}})
	var ue *UnroutableError
	if !errors.As(err, &ue) {
		t.Fatalf("dead group: error = %v, want *UnroutableError", err)
	}
	if !ue.SeveredSrc && !ue.SeveredDst {
		t.Fatalf("dead group verdict not marked severed: %+v", ue)
	}

	// Killing a whole coupler column severs group 0 as a source.
	fs := popsnet.FaultSet{Couplers: []popsnet.Coupler{{B: 0, A: 0}, {B: 1, A: 0}, {B: 2, A: 0}}}
	_, err = pl.PlanFaulty(context.Background(), pi, fs)
	if !errors.As(err, &ue) {
		t.Fatalf("severed column: error = %v, want *UnroutableError", err)
	}
	if !ue.SeveredSrc || ue.SrcGroup != 0 {
		t.Fatalf("severed column verdict: %+v", ue)
	}

	// The planner survives the bad-path and still plans routable sets.
	plan, err := pl.PlanFaulty(context.Background(), pi, popsnet.FaultSet{Couplers: []popsnet.Coupler{{B: 0, A: 0}}})
	if err != nil {
		t.Fatalf("routable set after unroutable calls: %v", err)
	}
	assertFaultPlan(t, plan, pi, popsnet.FaultSet{Couplers: []popsnet.Coupler{{B: 0, A: 0}}})
}

func TestPlanFaultyDirectCase(t *testing.T) {
	// d = 1: the fault-free plan is one direct slot; dead direct couplers
	// reroute through appended relay rounds.
	pl, err := NewPlanner(1, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pi := []int{1, 0, 3, 4, 2}
	fs := popsnet.FaultSet{Couplers: []popsnet.Coupler{{B: 1, A: 0}, {B: 4, A: 3}}}
	plan, err := pl.PlanFaulty(context.Background(), pi, fs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != StrategyFaulty {
		t.Fatalf("strategy = %q", plan.Strategy)
	}
	if plan.Colors != nil {
		t.Fatal("d = 1 fault plan has relay colors")
	}
	assertFaultPlan(t, plan, pi, fs)
	// Both broken packets share one relay round when their relays differ:
	// 1 direct slot + 2 relay slots.
	if got := plan.SlotCount(); got != 3 {
		t.Fatalf("SlotCount = %d, want 3", got)
	}

	// An unroutable d = 1 pair: processor 2's packet has its direct coupler
	// and every two-hop path killed.
	var sever popsnet.FaultSet
	for j := 0; j < 5; j++ {
		sever.Couplers = append(sever.Couplers, popsnet.Coupler{B: j, A: 2})
	}
	_, err = pl.PlanFaulty(context.Background(), pi, sever)
	var ue *UnroutableError
	if !errors.As(err, &ue) || !ue.SeveredSrc {
		t.Fatalf("severed d = 1 source: error = %v", err)
	}
}

// TestPlanFaultyForcedOverflow pins the degradation contract on the smallest
// shape with zero schedule slack: POPS(2,2) under the identity permutation
// has both color classes exactly full, and killing c(0,0) leaves the broken
// (0→0) packet no in-schedule repair — the plan grows by one overflow round
// (two slots) instead of failing.
func TestPlanFaultyForcedOverflow(t *testing.T) {
	pl, err := NewPlanner(2, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pi := perms.Identity(4)
	fs := popsnet.FaultSet{Couplers: []popsnet.Coupler{{B: 0, A: 0}}}
	plan, err := pl.PlanFaulty(context.Background(), pi, fs)
	if err != nil {
		t.Fatal(err)
	}
	assertFaultPlan(t, plan, pi, fs)
	if base := OptimalSlots(2, 2); plan.SlotCount() != base+2 {
		t.Fatalf("SlotCount = %d, want %d (optimal %d + one overflow round)", plan.SlotCount(), base+2, base)
	}
	if plan.Rounds != 2 {
		t.Fatalf("Rounds = %d, want 2", plan.Rounds)
	}
}

// TestPlanFaultyVerifyDispatch pins Plan.Verify's fault branch: a faulty
// plan replays on the fault-injected simulator, so a schedule tampered onto
// dead hardware fails verification.
func TestPlanFaultyVerifyDispatch(t *testing.T) {
	pl, err := NewPlanner(2, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	pi := perms.Random(8, rng)
	fs := popsnet.FaultSet{Couplers: []popsnet.Coupler{{B: 2, A: 1}}}
	plan, err := pl.PlanFaulty(context.Background(), pi, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Tamper: claim a stricter fault set the schedule does not honor. Verify
	// must now reject the replay with a dead-coupler violation (or a
	// delivery failure — either way, an error).
	tampered := *plan
	tampered.Faults = popsnet.FaultSet{Groups: []int{0}}
	if _, err := tampered.Verify(); err == nil {
		t.Fatal("Verify accepted a schedule that drives couplers its fault set declares dead")
	}
}
