package core

import (
	"context"
	"fmt"
	"sync"

	"pops/internal/edgecolor"
	"pops/internal/graph"
	"pops/internal/obs"
	"pops/internal/perms"
	"pops/internal/popsnet"
)

// ForEach runs fn(pl, i) for every i in [0, n), fanning the indices out to at
// most workers goroutines. Each goroutine checks out its own *Planner through
// acquire/release, so scratch memory is never shared; with one worker (or a
// single item) everything runs on the calling goroutine. fn must record its
// own per-index results and errors — ForEach only partitions the work. It is
// the one worker-pool implementation behind the public Planner.RouteBatch and
// the per-factor routing of h-relations.
func ForEach(workers, n int, acquire func() *Planner, release func(*Planner), fn func(pl *Planner, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		pl := acquire()
		defer release(pl)
		for i := 0; i < n; i++ {
			fn(pl, i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pl := acquire()
			defer release(pl)
			for i := range next {
				fn(pl, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Planner computes Theorem 2 routings repeatedly on one POPS(d, g) network.
// The network shape is validated once, and the demand multigraph, the
// edge-coloring arena, the permutation-validation scratch, and the
// invariant-check tables are reused across calls, so planning a stream of
// permutations allocates only what the returned Plans retain (colors,
// slots). A Planner is not safe for concurrent use; the public batch layer
// hands one Planner to each worker, so each worker owns one Factorizer
// arena.
type Planner struct {
	nw   popsnet.Network
	opts Options

	// Scratch reused across Plan calls: demand, fact and the invariant
	// scratch are nil for d = 1, where routing is direct and needs no
	// coloring. fact is the allocation-free edge-coloring engine — the
	// planner's dominant cost — whose arena (Euler-split work stack,
	// matching buffers, Theorem 1 padding graph) persists across calls.
	demand     *graph.Bipartite
	fact       *edgecolor.Factorizer
	seen       []bool  // perms.ValidateInto scratch
	byColor    [][]int // color -> packets of that color (invariant check)
	seenGroup  []bool  // group -> seen within current color class (undo-reset)
	byInter    [][]int // intermediate group -> packets of current round
	colorCount int     // max(d, g)

	// Streaming scratch (StartPlan): per-slot outstanding-class counters and
	// the sorted-class buffer, reused across streams.
	remaining []int
	classBuf  []int

	// H-relation scratch (PlanHRelation / StartHRelation), created lazily on
	// the first h-relation workload. hrelFact is a second coloring arena,
	// separate from fact: the request-graph factorization streams from it
	// while each peeled factor is routed as a permutation on fact, so the
	// two factorizations never supersede each other.
	hrelDemand *graph.Bipartite      // n×n request multigraph, Reset per call
	hrelFact   *edgecolor.Factorizer // request-graph 1-factorization arena
	hrelSrc    []int                 // per-processor send counts (padding)
	hrelDst    []int                 // per-processor receive counts (padding)
	hrelAll    []Request             // padded request list, reused
	hrelColors []int                 // per-request factor index, reused
	hrelPi     []int                 // factor permutation scratch
	hrelReqAt  []int                 // source processor -> request id scratch
	hrelIDs    []int                 // sorted copy of the current factor
}

// NewPlanner validates the POPS(d, g) shape and returns a Planner for it.
func NewPlanner(d, g int, opts Options) (*Planner, error) {
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		return nil, err
	}
	return NewPlannerFor(nw, opts), nil
}

// NewPlannerFor returns a Planner for an already-validated network.
func NewPlannerFor(nw popsnet.Network, opts Options) *Planner {
	pl := &Planner{nw: nw, opts: opts, seen: make([]bool, nw.N())}
	if nw.D > 1 {
		pl.demand = graph.New(nw.G, nw.G)
		pl.fact = edgecolor.NewFactorizer()
		pl.initBuildScratch()
	}
	return pl
}

// initBuildScratch allocates only what buildPlan needs (the invariant-check
// and schedule-construction scratch). The demand graph and validation
// scratch stay separate so the one-shot planFromColors path, which receives
// precomputed colors for an already-validated permutation, can skip them.
func (pl *Planner) initBuildScratch() {
	nw := pl.nw
	pl.colorCount = nw.D
	if nw.G > nw.D {
		pl.colorCount = nw.G
	}
	pl.byColor = make([][]int, pl.colorCount)
	pl.seenGroup = make([]bool, nw.G)
	pl.byInter = make([][]int, nw.G)
}

// Network returns the planner's network shape.
func (pl *Planner) Network() popsnet.Network { return pl.nw }

// Plan computes the Theorem 2 routing of pi, reusing the planner's internal
// buffers. The returned Plan owns all memory it references (pi is copied
// into it) and stays valid across subsequent Plan calls even if the caller
// reuses the pi slice.
func (pl *Planner) Plan(pi []int) (*Plan, error) {
	return pl.PlanCtx(context.Background(), pi)
}

// PlanCtx is Plan with a context: an already-cancelled ctx is reported as
// ctx.Err() before any planning work, and cancellation is re-checked after
// the coloring phase. The batch factorization itself is not interruptible —
// use StartPlanCtx for factor-granular cancellation.
func (pl *Planner) PlanCtx(ctx context.Context, pi []int) (*Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nw := pl.nw
	if len(pi) != nw.N() {
		return nil, fmt.Errorf("core: permutation has length %d, want n = %d", len(pi), nw.N())
	}
	if err := perms.ValidateInto(pi, pl.seen); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Phase attribution: demand build + coloring + schedule assembly are the
	// factorize phase, the optional simulator replay the verify phase. A span
	// left with an open phase by an error return is closed by its Finish.
	sp := obs.SpanFromContext(ctx)
	sp.Begin(obs.PhaseFactorize)
	var plan *Plan
	if nw.D == 1 {
		sched, err := directSchedule(nw, pi)
		if err != nil {
			return nil, err
		}
		plan = &Plan{Net: nw, Pi: pl.opts.snapshotPerm(pi), Strategy: StrategyTheoremTwo, sched: sched}
	} else {
		pl.demand.Reset()
		for p := 0; p < nw.N(); p++ {
			pl.demand.AddEdge(nw.Group(p), nw.Group(pi[p]))
		}
		// The colors slice is retained by the returned Plan, so it is the
		// one coloring allocation a warmed planner makes per call; all
		// factorization scratch lives in the reusable arena.
		colors := make([]int, nw.N())
		if err := pl.fact.BalancedInto(colors, pl.demand, pl.colorCount, pl.opts.Algorithm); err != nil {
			return nil, fmt.Errorf("core: coloring demand graph: %w", err)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		plan, err = pl.buildPlan(pi, colors)
		if err != nil {
			return nil, err
		}
	}
	sp.End()
	if pl.opts.Verify {
		sp.Begin(obs.PhaseVerify)
		if _, err := plan.Verify(); err != nil {
			return nil, fmt.Errorf("core: schedule failed verification: %w", err)
		}
		sp.End()
	}
	return plan, nil
}

// buildPlan turns per-packet relay colors into the two-slot-per-round
// schedule and sanity-checks the fair-distribution invariants on the way.
// PlanStream.Next assembles the identical layout incrementally (per class
// at offset (c−lo)·want instead of byInter bucketing, which keeps this
// batch path O(n) with no per-class sort); the two must stay in lockstep —
// TestStartPlanCollectMatchesPlan and FuzzRouteStreamCollect pin the
// equivalence.
func (pl *Planner) buildPlan(pi, colors []int) (*Plan, error) {
	nw := pl.nw
	d, g := nw.D, nw.G
	colorCount := d
	if g > d {
		colorCount = g
	}
	rounds := ceilDiv(colorCount, g)

	if err := pl.checkFairInvariants(pi, colors, colorCount); err != nil {
		return nil, err
	}

	sched := &popsnet.Schedule{Net: nw, Slots: make([]popsnet.Slot, 0, 2*rounds)}
	for k := 0; k < rounds; k++ {
		lo, hi := k*g, (k+1)*g
		if hi > colorCount {
			hi = colorCount
		}
		// Packets of this round, grouped by intermediate group j = c mod g.
		byInter := pl.byInter
		moved := 0
		for j := range byInter {
			byInter[j] = byInter[j][:0]
		}
		for p := 0; p < nw.N(); p++ {
			if c := colors[p]; c >= lo && c < hi {
				byInter[c%g] = append(byInter[c%g], p) // j -> packets, in source order
				moved++
			}
		}
		slot1 := popsnet.Slot{Sends: make([]popsnet.Send, 0, moved), Recvs: make([]popsnet.Recv, 0, moved)}
		slot2 := popsnet.Slot{Sends: make([]popsnet.Send, 0, moved), Recvs: make([]popsnet.Recv, 0, moved)}
		for j := 0; j < g; j++ {
			// Arrivals at group j come from distinct source groups (the
			// coloring is proper at source nodes), and packet order is by
			// processor index, hence by source group: the rank assignment
			// below gives each arrival a distinct relay processor.
			for rank, p := range byInter[j] {
				src := p
				relay := nw.Proc(j, rank)
				dest := pi[p]
				slot1.Sends = append(slot1.Sends, popsnet.Send{Src: src, DestGroup: j, Packet: p})
				slot1.Recvs = append(slot1.Recvs, popsnet.Recv{Proc: relay, SrcGroup: nw.Group(src)})
				slot2.Sends = append(slot2.Sends, popsnet.Send{Src: relay, DestGroup: nw.Group(dest), Packet: p})
				slot2.Recvs = append(slot2.Recvs, popsnet.Recv{Proc: dest, SrcGroup: j})
			}
		}
		sched.Slots = append(sched.Slots, slot1, slot2)
	}

	return &Plan{Net: nw, Pi: pl.opts.snapshotPerm(pi), Strategy: StrategyTheoremTwo, Colors: colors, Rounds: rounds, sched: sched}, nil
}

// checkFairInvariants re-verifies equations (4)–(7) of the paper on the
// computed colors before a schedule is emitted. A violation indicates a bug
// in the coloring layer and is reported rather than silently producing a
// conflicting schedule.
func (pl *Planner) checkFairInvariants(pi, colors []int, colorCount int) error {
	nw := pl.nw
	if len(colors) != nw.N() {
		return fmt.Errorf("core: %d colors for %d packets", len(colors), nw.N())
	}
	// Bucket packets by color. The scratch is sized for the planner's own
	// colorCount; the list-system cross-check path passes the same max(d, g).
	byColor := pl.byColor[:colorCount]
	for c := range byColor {
		byColor[c] = byColor[c][:0]
	}
	for p, c := range colors {
		if c < 0 || c >= colorCount {
			return fmt.Errorf("core: packet %d has color %d outside [0,%d)", p, c, colorCount)
		}
		byColor[c] = append(byColor[c], p)
	}
	// Properness per color class: checkClass verifies equations (4)–(7) for
	// each bucket. The streaming planner runs the identical check per class
	// as each factor lands instead of over a bucketed table at the end.
	for c, class := range byColor {
		if err := pl.checkClass(pi, class, c); err != nil {
			return err
		}
	}
	return nil
}

// checkClass verifies the fair-distribution invariants for one color class:
// exactly min(d, g) packets (equations (5)/(7)) repeating neither a source
// group (eq (4)) nor a destination group (eq (6)). Each class touches at
// most min(d, g) groups, so one g-sized table with undo-resets keeps the
// whole check O(len(class)) regardless of the shape's aspect ratio.
func (pl *Planner) checkClass(pi, class []int, c int) error {
	nw := pl.nw
	d, g := nw.D, nw.G
	want := d
	if g < d {
		want = g
	}
	seen := pl.seenGroup
	if len(class) != want {
		return fmt.Errorf("core: eq (5)/(7) violated: color %d has %d packets, want %d", c, len(class), want)
	}
	for i, p := range class {
		h := nw.Group(p)
		if seen[h] {
			for _, q := range class[:i] {
				seen[nw.Group(q)] = false
			}
			return fmt.Errorf("core: eq (4) violated: source group %d repeats color %d", h, c)
		}
		seen[h] = true
	}
	for _, p := range class {
		seen[nw.Group(p)] = false
	}
	for i, p := range class {
		h := nw.Group(pi[p])
		if seen[h] {
			for _, q := range class[:i] {
				seen[nw.Group(pi[q])] = false
			}
			return fmt.Errorf("core: eq (6) violated: destination group %d repeats color %d", h, c)
		}
		seen[h] = true
	}
	for _, p := range class {
		seen[nw.Group(pi[p])] = false
	}
	return nil
}
