package core

import (
	"context"
	"fmt"
	"slices"

	"pops/internal/edgecolor"
	"pops/internal/graph"
	"pops/internal/popsnet"
)

// Request is one packet demand of an h-relation: move a packet from Src to
// Dst. Processors may appear in up to h requests as source and up to h as
// destination.
type Request struct {
	Src, Dst int
}

// Degree returns h: the maximum number of times any processor occurs as a
// source or as a destination in reqs.
func Degree(n int, reqs []Request) (int, error) {
	srcCount := make([]int, n)
	dstCount := make([]int, n)
	for i, r := range reqs {
		if r.Src < 0 || r.Src >= n || r.Dst < 0 || r.Dst >= n {
			return 0, fmt.Errorf("core: request %d (%d→%d) out of range [0,%d)", i, r.Src, r.Dst, n)
		}
		srcCount[r.Src]++
		dstCount[r.Dst]++
	}
	h := 0
	for p := 0; p < n; p++ {
		if srcCount[p] > h {
			h = srcCount[p]
		}
		if dstCount[p] > h {
			h = dstCount[p]
		}
	}
	return h, nil
}

// PredictedHRelationSlots returns the slot cost of an h-relation plan:
// h · OptimalSlots(d, g).
func PredictedHRelationSlots(d, g, h int) int {
	return h * OptimalSlots(d, g)
}

// AllToAllRequests builds the complete-exchange relation on n processors:
// every processor sends one distinct packet to every other processor, an
// (n−1)-relation. The request order is deterministic: request index
// k·n + s (k = 0..n−2) moves the packet from processor s to (s+k+1) mod n.
func AllToAllRequests(n int) []Request {
	reqs := make([]Request, 0, n*(n-1))
	for k := 1; k < n; k++ {
		for s := 0; s < n; s++ {
			reqs = append(reqs, Request{Src: s, Dst: (s + k) % n})
		}
	}
	return reqs
}

// BroadcastPlan builds the paper's one-slot one-to-all schedule from the
// given speaker as a Plan (Strategy StrategyOneToAll). It needs no planner
// scratch: the schedule is a single fan-out slot.
func BroadcastPlan(nw popsnet.Network, speaker int) (*Plan, error) {
	sched, err := popsnet.OneToAll(nw, speaker, speaker)
	if err != nil {
		return nil, err
	}
	return &Plan{Net: nw, Strategy: StrategyOneToAll, Speaker: speaker, sched: sched}, nil
}

// PlanHRelation routes an h-relation on the planner's POPS(d, g) network:
// the padded request multigraph is decomposed into h permutations (König),
// each routed by Theorem 2, for h · OptimalSlots(d, g) slots in total. It is
// the batch form of StartHRelation — both drain the same arena steppers, so
// their schedules are byte-identical. The request-graph factorization runs
// on a second arena held by the planner, and all padding/relabeling scratch
// is reused across calls, so repeated h-relation planning allocates only
// what the returned Plan retains.
func (pl *Planner) PlanHRelation(ctx context.Context, reqs []Request) (*Plan, error) {
	ps, err := pl.StartHRelation(ctx, reqs)
	if err != nil {
		return nil, err
	}
	return ps.Collect()
}

// HRelationStream is an in-progress h-relation planning whose schedule is
// delivered incrementally: each König 1-factor of the request multigraph is
// consumed from the coloring stream as it is peeled, routed as a Theorem 2
// permutation, and emitted as whole-slot fragments — so the first slots are
// ready after a single factor, long before the request-graph factorization
// behind a batch PlanHRelation completes. Factor k's slots always occupy
// schedule positions [k·OptimalSlots, (k+1)·OptimalSlots), so fragments of
// different factors can arrive out of factor order (the Euler-split backend
// peels factors out of class order) and still reassemble by Slot index.
//
// Like PlanStream, an HRelationStream owns its Planner until exhausted or
// abandoned; cancellation of the start context is checked between factors.
type HRelationStream struct {
	pl       *Planner
	ctx      context.Context
	reqs     []Request // plan-owned snapshot
	h        int
	slotsPer int
	stream   *edgecolor.Stream // request-graph factor stream; nil for h == 0
	factors  [][]int           // factor index -> real request ids, ascending
	sched    *popsnet.Schedule
	home     []int
	want     []int

	ready    []StreamedSlot // slots of routed factors awaiting emission
	readyIdx int
	routed   int // request-graph factors routed so far
	emitted  int
	total    int
	plan     *Plan
	verified bool
	err      error
	done     bool
}

// StartHRelation begins a streaming h-relation planning. It validates the
// requests, pads the relation to an h-regular multigraph, and returns a
// stream whose Next calls deliver the schedule slot by slot while later
// request factors are still being peeled. An already-cancelled ctx is
// reported here, before any setup.
func (pl *Planner) StartHRelation(ctx context.Context, reqs []Request) (*HRelationStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nw := pl.nw
	h, err := pl.degreeInto(reqs)
	if err != nil {
		return nil, err
	}
	ps := &HRelationStream{
		pl:       pl,
		ctx:      ctx,
		reqs:     append([]Request(nil), reqs...),
		h:        h,
		slotsPer: OptimalSlots(nw.D, nw.G),
		sched:    &popsnet.Schedule{Net: nw},
	}
	n := nw.N()
	if h == 0 {
		ps.plan = ps.assemble()
		return ps, nil
	}
	if err := pl.padHRelation(ps); err != nil {
		return nil, err
	}
	ps.total = h * ps.slotsPer
	ps.factors = make([][]int, h)
	ps.sched.Slots = make([]popsnet.Slot, ps.total)

	// Delivery contract: packet k (= request k, then padding dummies) starts
	// at its source; dummies have no required destination.
	all := pl.hrelAll
	ps.home = make([]int, len(all))
	ps.want = make([]int, len(all))
	for k, r := range all {
		ps.home[k] = r.Src
		if k < len(reqs) {
			ps.want[k] = r.Dst
		} else {
			ps.want[k] = -1
		}
	}

	// The request-graph factorization streams from the planner's second
	// arena so the per-factor Theorem 2 routing (which colors the group
	// demand graph on the first arena) never supersedes it.
	if pl.hrelDemand == nil {
		pl.hrelDemand = graph.New(n, n)
	}
	pl.hrelDemand.Reset()
	for _, r := range all {
		pl.hrelDemand.AddEdge(r.Src, r.Dst)
	}
	if pl.hrelFact == nil {
		pl.hrelFact = edgecolor.NewFactorizer()
	}
	pl.hrelColors = graph.ResizeInts(pl.hrelColors, len(all))
	ps.stream = pl.hrelFact.StartCtx(ctx, pl.hrelDemand, pl.opts.Algorithm)
	if err := ps.stream.Err(); err != nil {
		return nil, fmt.Errorf("core: factorizing request graph: %w", err)
	}
	return ps, nil
}

// degreeInto is the pooled-scratch form of Degree: it validates reqs
// against the planner's shape and counts per-processor sends and receives
// into pl.hrelSrc/pl.hrelDst — which padHRelation then consumes directly,
// so the steady-state h-relation path neither allocates count slices nor
// scans the requests a second time.
func (pl *Planner) degreeInto(reqs []Request) (int, error) {
	n := pl.nw.N()
	pl.hrelSrc = graph.ResizeInts(pl.hrelSrc, n)
	pl.hrelDst = graph.ResizeInts(pl.hrelDst, n)
	clear(pl.hrelSrc)
	clear(pl.hrelDst)
	for i, r := range reqs {
		if r.Src < 0 || r.Src >= n || r.Dst < 0 || r.Dst >= n {
			return 0, fmt.Errorf("core: request %d (%d→%d) out of range [0,%d)", i, r.Src, r.Dst, n)
		}
		pl.hrelSrc[r.Src]++
		pl.hrelDst[r.Dst]++
	}
	h := 0
	for p := 0; p < n; p++ {
		if pl.hrelSrc[p] > h {
			h = pl.hrelSrc[p]
		}
		if pl.hrelDst[p] > h {
			h = pl.hrelDst[p]
		}
	}
	return h, nil
}

// padHRelation extends the relation with dummy requests until every
// processor has exactly h sends and h receives, matching source deficits to
// destination deficits in ascending processor order. It consumes the
// per-processor counts degreeInto left in pl.hrelSrc/pl.hrelDst; the padded
// list lands in pl.hrelAll (reused across calls).
func (pl *Planner) padHRelation(ps *HRelationStream) error {
	n := pl.nw.N()
	h := ps.h
	all := append(pl.hrelAll[:0], ps.reqs...)
	si, di := 0, 0
	for {
		for si < n && pl.hrelSrc[si] == h {
			si++
		}
		for di < n && pl.hrelDst[di] == h {
			di++
		}
		if si == n || di == n {
			break
		}
		all = append(all, Request{Src: si, Dst: di})
		pl.hrelSrc[si]++
		pl.hrelDst[di]++
	}
	pl.hrelAll = all
	if si != n || di != n {
		// Total send deficit always equals total receive deficit, so this is
		// unreachable unless the counting above is broken.
		return fmt.Errorf("core: internal h-relation padding imbalance (si=%d, di=%d)", si, di)
	}
	return nil
}

// Next emits the next slot of the schedule. It returns ok == false once
// every slot has been delivered (the assembled plan is then available from
// Collect) or when the stream has failed — the two cases are told apart by
// Err. Each fragment is one whole schedule slot: Color records the König
// factor that produced it, Offset is 0 and Final is true.
func (ps *HRelationStream) Next() (StreamedSlot, bool) {
	if ps.err != nil || ps.done {
		return StreamedSlot{}, false
	}
	for ps.readyIdx >= len(ps.ready) {
		if ps.routed >= ps.h {
			ps.finish()
			return StreamedSlot{}, false
		}
		if err := ps.routeNextFactor(); err != nil {
			ps.err = err
			return StreamedSlot{}, false
		}
	}
	frag := ps.ready[ps.readyIdx]
	ps.readyIdx++
	ps.emitted++
	if ps.emitted >= ps.total {
		ps.finish()
	}
	return frag, true
}

// routeNextFactor peels one more 1-factor of the request multigraph from
// the coloring stream, routes it as a full Theorem 2 permutation on the
// planner's first arena, and queues its relabeled slots for emission.
func (ps *HRelationStream) routeNextFactor() error {
	pl := ps.pl
	if ps.ctx != nil {
		if err := ps.ctx.Err(); err != nil {
			return err
		}
	}
	factorID, ok, err := ps.stream.Next(pl.hrelColors)
	if err != nil {
		return fmt.Errorf("core: factorizing request graph: %w", err)
	}
	if !ok {
		return fmt.Errorf("core: internal error: request factorization ended after %d of %d factors", ps.routed, ps.h)
	}
	if factorID < 0 || factorID >= ps.h {
		return fmt.Errorf("core: request factor %d outside [0,%d)", factorID, ps.h)
	}

	// The factor arrives in peel order; request ids are sorted so that
	// Factors listings — and therefore the assembled plan — match the batch
	// construction, which scans colors in ascending edge id order.
	ids := append(pl.hrelIDs[:0], ps.stream.Factor()...)
	slices.Sort(ids)
	pl.hrelIDs = ids

	n := pl.nw.N()
	all := pl.hrelAll
	pl.hrelPi = graph.ResizeInts(pl.hrelPi, n)
	pl.hrelReqAt = graph.ResizeInts(pl.hrelReqAt, n)
	for _, id := range ids {
		r := all[id]
		pl.hrelPi[r.Src] = r.Dst
		pl.hrelReqAt[r.Src] = id
	}
	real := make([]int, 0, len(ids))
	for _, id := range ids {
		if id < len(ps.reqs) {
			real = append(real, id)
		}
	}
	ps.factors[factorID] = real

	// Route the factor as a permutation. Per-factor verification is
	// redundant inside an h-relation — the final plan is verified as a
	// whole by Collect — so the planner's Verify option is masked for the
	// sub-plan (the stream owns the worker, so the toggle cannot race).
	savedVerify := pl.opts.Verify
	pl.opts.Verify = false
	sub, err := pl.PlanCtx(ps.ctx, pl.hrelPi)
	pl.opts.Verify = savedVerify
	if err != nil {
		return fmt.Errorf("core: routing factor %d: %w", factorID, err)
	}

	// Relabel the factor's slots into their fixed block of the schedule:
	// core packet ids equal source processors, which hrelReqAt maps back to
	// request ids. Recvs carry no packet ids and are aliased as-is.
	base := factorID * ps.slotsPer
	for s, slot := range sub.Schedule().Slots {
		out := popsnet.Slot{Recvs: slot.Recvs, Sends: make([]popsnet.Send, 0, len(slot.Sends))}
		for _, snd := range slot.Sends {
			snd.Packet = pl.hrelReqAt[snd.Packet]
			out.Sends = append(out.Sends, snd)
		}
		ps.sched.Slots[base+s] = out
		ps.ready = append(ps.ready, StreamedSlot{
			Slot: base + s, Color: factorID, Offset: 0, Final: true,
			Sends: out.Sends, Recvs: out.Recvs,
		})
	}
	ps.routed++
	return nil
}

// finish assembles the plan once the last slot is out.
func (ps *HRelationStream) finish() {
	if ps.done {
		return
	}
	ps.done = true
	if ps.plan == nil {
		ps.plan = ps.assemble()
	}
}

func (ps *HRelationStream) assemble() *Plan {
	return &Plan{
		Net: ps.pl.nw, Strategy: StrategyHRelation,
		Reqs: ps.reqs, H: ps.h, Factors: ps.factors,
		home: ps.home, want: ps.want, sched: ps.sched,
	}
}

// Collect drains the remaining slots and returns the assembled plan,
// byte identical to what PlanHRelation would have produced for the same
// requests. Under Options.Verify the completed schedule is replayed on the
// simulator and every real request checked delivered.
func (ps *HRelationStream) Collect() (*Plan, error) {
	for {
		if _, ok := ps.Next(); !ok {
			break
		}
	}
	if ps.err != nil {
		return nil, ps.err
	}
	if ps.pl.opts.Verify && !ps.verified {
		if _, err := ps.plan.Verify(); err != nil {
			ps.err = fmt.Errorf("core: h-relation schedule failed verification: %w", err)
			return nil, ps.err
		}
		ps.verified = true
	}
	return ps.plan, nil
}

// Plan returns the assembled plan once the stream is exhausted, or nil
// while slots are still outstanding. Unlike Collect it never replays the
// schedule on the simulator.
func (ps *HRelationStream) Plan() *Plan { return ps.plan }

// Err returns the stream's sticky error, if any.
func (ps *HRelationStream) Err() error { return ps.err }

// SlotCount returns the total number of slots of the final schedule:
// h · OptimalSlots(d, g).
func (ps *HRelationStream) SlotCount() int { return ps.total }

// FragmentCount returns how many fragments the stream emits: one per slot.
func (ps *HRelationStream) FragmentCount() int { return ps.total }
