package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pops/internal/edgecolor"
	"pops/internal/perms"
	"pops/internal/popsnet"
)

// figure3Perm is the permutation of Figure 3 of the paper on POPS(3,3):
// destinations (group, processor) read off the figure are
// 15 01 27 02 00 26 13 28 14 for processors 8..0, i.e. π below. Processors
// 4 and 5 (group 1) both target group 0, so one slot is impossible and the
// paper routes it in two.
var figure3Perm = []int{4, 8, 3, 6, 0, 2, 7, 1, 5}

var allAlgorithms = []edgecolor.Algorithm{
	edgecolor.RepeatedMatching, edgecolor.EulerSplitDC, edgecolor.Insertion,
}

func TestOptimalSlots(t *testing.T) {
	cases := []struct{ d, g, want int }{
		{1, 1, 1}, {1, 8, 1}, {2, 2, 2}, {3, 3, 2}, {2, 8, 2},
		{8, 2, 8}, {7, 3, 6}, {6, 3, 4}, {9, 3, 6}, {5, 4, 4},
	}
	for _, tc := range cases {
		if got := OptimalSlots(tc.d, tc.g); got != tc.want {
			t.Errorf("OptimalSlots(%d,%d) = %d, want %d", tc.d, tc.g, got, tc.want)
		}
	}
}

func TestFigure3Example(t *testing.T) {
	// The worked example of the paper: POPS(3,3) routes π in exactly 2 slots.
	for _, algo := range allAlgorithms {
		p, err := PlanRoute(3, 3, figure3Perm, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if got := p.SlotCount(); got != 2 {
			t.Fatalf("%v: slots = %d, want 2", algo, got)
		}
		tr, err := p.Verify()
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		// Theorem 2 remark: with d ≤ g each processor stores exactly one
		// packet at every step.
		for s, m := range tr.MaxHeld {
			if m != 1 {
				t.Fatalf("%v: MaxHeld[%d] = %d, want 1", algo, s, m)
			}
		}
	}
}

func TestFigure3FairDistributionStructure(t *testing.T) {
	p, err := PlanRoute(3, 3, figure3Perm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Processors 4 and 5 share destination group 0: the fair distribution
	// must send them through different intermediate groups.
	if p.IntermediateGroup(4) == p.IntermediateGroup(5) {
		t.Fatal("conflicting packets assigned the same intermediate group")
	}
	// All packets move in round 0 for d = g.
	for pkt := 0; pkt < 9; pkt++ {
		if p.Round(pkt) != 0 {
			t.Fatalf("packet %d in round %d, want 0", pkt, p.Round(pkt))
		}
	}
}

func TestTheorem2SlotCountSweep(t *testing.T) {
	// The headline claim: any permutation in 1 slot (d=1) / 2⌈d/g⌉ (d>1).
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct{ d, g int }{
		{1, 1}, {1, 4}, {1, 16}, {2, 2}, {2, 4}, {4, 4}, {3, 8},
		{8, 8}, {4, 2}, {8, 2}, {9, 3}, {7, 3}, {16, 4}, {5, 5}, {6, 2},
	} {
		n := tc.d * tc.g
		for trial := 0; trial < 3; trial++ {
			pi := perms.Random(n, rng)
			p, err := PlanRoute(tc.d, tc.g, pi, Options{})
			if err != nil {
				t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
			}
			if got, want := p.SlotCount(), OptimalSlots(tc.d, tc.g); got != want {
				t.Fatalf("d=%d g=%d: slots = %d, want %d", tc.d, tc.g, got, want)
			}
			if _, err := p.Verify(); err != nil {
				t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
			}
		}
	}
}

func TestAllAlgorithmsAgreeOnSlotCount(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, tc := range []struct{ d, g int }{{3, 5}, {5, 3}, {4, 4}} {
		pi := perms.Random(tc.d*tc.g, rng)
		for _, algo := range allAlgorithms {
			p, err := PlanRoute(tc.d, tc.g, pi, Options{Algorithm: algo})
			if err != nil {
				t.Fatalf("%v d=%d g=%d: %v", algo, tc.d, tc.g, err)
			}
			if got, want := p.SlotCount(), OptimalSlots(tc.d, tc.g); got != want {
				t.Fatalf("%v: slots = %d, want %d", algo, got, want)
			}
			if _, err := p.Verify(); err != nil {
				t.Fatalf("%v: %v", algo, err)
			}
		}
	}
}

func TestListSystemConstructionMatchesUnified(t *testing.T) {
	// The paper-literal Theorem 1 route and the unified demand-graph route
	// must both verify and use identical slot counts.
	rng := rand.New(rand.NewSource(44))
	for _, tc := range []struct{ d, g int }{{2, 4}, {4, 4}, {6, 3}, {3, 2}, {1, 5}} {
		pi := perms.Random(tc.d*tc.g, rng)
		a, err := PlanRoute(tc.d, tc.g, pi, Options{})
		if err != nil {
			t.Fatalf("unified d=%d g=%d: %v", tc.d, tc.g, err)
		}
		b, err := PlanRouteViaListSystem(tc.d, tc.g, pi, Options{})
		if err != nil {
			t.Fatalf("list-system d=%d g=%d: %v", tc.d, tc.g, err)
		}
		if a.SlotCount() != b.SlotCount() {
			t.Fatalf("d=%d g=%d: slot counts differ: %d vs %d", tc.d, tc.g, a.SlotCount(), b.SlotCount())
		}
		if _, err := b.Verify(); err != nil {
			t.Fatalf("list-system verify d=%d g=%d: %v", tc.d, tc.g, err)
		}
	}
}

func TestIdentityPermutationRoutes(t *testing.T) {
	// Fixed points are routed through couplers like any other packet.
	for _, tc := range []struct{ d, g int }{{1, 4}, {3, 3}, {4, 2}} {
		pi := perms.Identity(tc.d * tc.g)
		p, err := PlanRoute(tc.d, tc.g, pi, Options{})
		if err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
		if _, err := p.Verify(); err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
	}
}

func TestStructuredFamiliesRoute(t *testing.T) {
	// Vector reversal, transpose, BPC, mesh shifts — the families the
	// related work handled one by one all fall out of Theorem 2.
	type namedPerm struct {
		name string
		pi   []int
	}
	build := func(d, g int) []namedPerm {
		n := d * g
		out := []namedPerm{
			{"reversal", perms.VectorReversal(n)},
		}
		if r := isqrt(n); r*r == n {
			out = append(out, namedPerm{"transpose", perms.Transpose(r, r)})
		}
		if bits := log2exact(n); bits >= 1 {
			ex, err := perms.HypercubeExchange(bits, 0)
			if err == nil {
				out = append(out, namedPerm{"hypercube-b0", ex.Permutation()})
			}
			br, err := perms.BitReversal(bits)
			if err == nil {
				out = append(out, namedPerm{"bit-reversal", br.Permutation()})
			}
		}
		return out
	}
	for _, tc := range []struct{ d, g int }{{2, 2}, {4, 4}, {2, 8}, {8, 2}, {4, 16}} {
		for _, np := range build(tc.d, tc.g) {
			p, err := PlanRoute(tc.d, tc.g, np.pi, Options{})
			if err != nil {
				t.Fatalf("%s d=%d g=%d: %v", np.name, tc.d, tc.g, err)
			}
			if got, want := p.SlotCount(), OptimalSlots(tc.d, tc.g); got != want {
				t.Fatalf("%s d=%d g=%d: slots = %d, want %d", np.name, tc.d, tc.g, got, want)
			}
			if _, err := p.Verify(); err != nil {
				t.Fatalf("%s d=%d g=%d: %v", np.name, tc.d, tc.g, err)
			}
		}
	}
}

func TestGroupRotationAdversarial(t *testing.T) {
	// Whole groups map to single groups: the worst case for direct routing
	// still takes exactly 2⌈d/g⌉ with Theorem 2.
	for _, tc := range []struct{ d, g int }{{4, 4}, {8, 2}, {6, 3}} {
		pi, err := perms.GroupRotation(tc.d, tc.g, 1)
		if err != nil {
			t.Fatal(err)
		}
		p, err := PlanRoute(tc.d, tc.g, pi, Options{})
		if err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
		if got, want := p.SlotCount(), OptimalSlots(tc.d, tc.g); got != want {
			t.Fatalf("d=%d g=%d: slots = %d, want %d", tc.d, tc.g, got, want)
		}
		if _, err := p.Verify(); err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
	}
}

func TestMaxHeldOneWhenDLeqG(t *testing.T) {
	// Theorem 2's remark: for d ≤ g every processor stores exactly one
	// packet at each step of the two-slot routing.
	rng := rand.New(rand.NewSource(45))
	for _, tc := range []struct{ d, g int }{{2, 2}, {3, 4}, {4, 8}, {8, 8}} {
		pi := perms.Random(tc.d*tc.g, rng)
		p, err := PlanRoute(tc.d, tc.g, pi, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := p.Verify()
		if err != nil {
			t.Fatal(err)
		}
		for s, m := range tr.MaxHeld {
			if m != 1 {
				t.Fatalf("d=%d g=%d: MaxHeld[%d] = %d, want 1", tc.d, tc.g, s, m)
			}
		}
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := PlanRoute(0, 3, nil, Options{}); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := PlanRoute(2, 2, []int{0, 1, 2}, Options{}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := PlanRoute(2, 2, []int{0, 1, 2, 2}, Options{}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	if _, err := PlanRoute(2, 2, []int{0, 1, 2, 9}, Options{}); err == nil {
		t.Fatal("out-of-range value accepted")
	}
	if _, err := PlanRouteViaListSystem(0, 3, nil, Options{}); err == nil {
		t.Fatal("list-system d=0 accepted")
	}
	if _, err := PlanRouteViaListSystem(2, 2, []int{0, 0, 1, 1}, Options{}); err == nil {
		t.Fatal("list-system non-permutation accepted")
	}
}

func TestCheckFairInvariantsRejectsBadColors(t *testing.T) {
	// Hand the schedule builder corrupted colorings and check each equation
	// fires. POPS(2,2), π = reversal: packets 0,1 (group 0) → group 1;
	// packets 2,3 (group 1) → group 0.
	pi := perms.VectorReversal(4)
	nw := mustNet(t, 2, 2)

	// eq (4): source group repeats a color.
	if _, err := planFromColors(nw, pi, []int{0, 0, 1, 1}); err == nil ||
		!strings.Contains(err.Error(), "(4)") {
		t.Fatalf("eq4: err = %v", err)
	}
	// eq (6): destination group repeats a color. Need distinct per source.
	// pi groups: packets 0,1 → dest group 1; 2,3 → dest 0. Colors 0,1 for
	// packets 0,1 keeps eq4; packets 2,3 get 0,1 — dest groups differ from
	// packets 0,1 so eq6 holds; force eq6 violation with a non-permutation
	// style coloring is impossible while class sizes hold, so use a
	// permutation with mixed destinations.
	pi2 := []int{3, 1, 2, 0} // packet 0→g1, 1→g0, 2→g1, 3→g0
	if _, err := planFromColors(nw, pi2, []int{0, 1, 0, 1}); err == nil ||
		!strings.Contains(err.Error(), "(6)") {
		t.Fatalf("eq6: err = %v", err)
	}
	// eq (5)/(7): class sizes wrong (color 0 used 3 times).
	if _, err := planFromColors(nw, pi, []int{0, 1, 0, 0}); err == nil {
		t.Fatal("bad class size accepted")
	}
	// Color out of range.
	if _, err := planFromColors(nw, pi, []int{0, 1, 2, 7}); err == nil {
		t.Fatal("out-of-range color accepted")
	}
	// Wrong length.
	if _, err := planFromColors(nw, pi, []int{0, 1}); err == nil {
		t.Fatal("short colors accepted")
	}
}

func TestPlanRoutePropertyRandom(t *testing.T) {
	f := func(dSeed, gSeed uint8, seed int64) bool {
		d := int(dSeed)%10 + 1
		g := int(gSeed)%10 + 1
		rng := rand.New(rand.NewSource(seed))
		pi := perms.Random(d*g, rng)
		p, err := PlanRoute(d, g, pi, Options{})
		if err != nil {
			return false
		}
		if p.SlotCount() != OptimalSlots(d, g) {
			return false
		}
		_, err = p.Verify()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanRoutePropertyDerangements(t *testing.T) {
	f := func(dSeed, gSeed uint8, seed int64) bool {
		d := int(dSeed)%8 + 1
		g := int(gSeed)%8 + 1
		if d*g < 2 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		pi := perms.RandomDerangement(d*g, rng)
		p, err := PlanRoute(d, g, pi, Options{})
		if err != nil {
			return false
		}
		_, err = p.Verify()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundAndIntermediateGroupLargeD(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	d, g := 7, 3
	pi := perms.Random(d*g, rng)
	p, err := PlanRoute(d, g, pi, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", p.Rounds)
	}
	counts := make(map[int]int)
	for pkt := 0; pkt < d*g; pkt++ {
		r := p.Round(pkt)
		if r < 0 || r >= p.Rounds {
			t.Fatalf("packet %d round %d out of range", pkt, r)
		}
		j := p.IntermediateGroup(pkt)
		if j < 0 || j >= g {
			t.Fatalf("packet %d intermediate group %d out of range", pkt, j)
		}
		counts[r]++
	}
	// Rounds 0 and 1 carry g² = 9 packets, the last carries g·(d mod g) = 3.
	if counts[0] != 9 || counts[1] != 9 || counts[2] != 3 {
		t.Fatalf("round loads = %v, want 9/9/3", counts)
	}
}

func TestDirectPlanAccessors(t *testing.T) {
	p, err := PlanRoute(1, 4, perms.VectorReversal(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.IntermediateGroup(0) != -1 || p.Round(0) != 0 {
		t.Fatal("direct plan accessors should report no relay")
	}
	if p.SlotCount() != 1 {
		t.Fatalf("slots = %d, want 1", p.SlotCount())
	}
}

func mustNet(t *testing.T, d, g int) popsnet.Network {
	t.Helper()
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func log2exact(n int) int {
	b := 0
	for 1<<uint(b+1) <= n {
		b++
	}
	if 1<<uint(b) != n {
		return -1
	}
	return b
}
