package core

import (
	"math/rand"
	"reflect"
	"testing"

	"pops/internal/edgecolor"
	"pops/internal/perms"
	"pops/internal/popsnet"
)

// streamShapes spans both paper cases (1 < d ≤ g and d > g), the direct
// d = 1 network, and shapes whose last round is partial (g ∤ colorCount).
func streamShapes() []struct{ d, g int } {
	return []struct{ d, g int }{
		{1, 6}, {2, 2}, {3, 3}, {2, 8}, {4, 16}, {8, 4}, {12, 8}, {5, 3}, {16, 4},
	}
}

// TestStartPlanCollectMatchesPlan requires the collected streaming plan to
// be deep-equal to the batch plan — permutation, colors, rounds, strategy,
// and every slot of the schedule — across shapes, algorithms and seeds.
func TestStartPlanCollectMatchesPlan(t *testing.T) {
	for _, algo := range []edgecolor.Algorithm{edgecolor.RepeatedMatching, edgecolor.EulerSplitDC, edgecolor.Insertion} {
		for _, s := range streamShapes() {
			pl, err := NewPlanner(s.d, s.g, Options{Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 3; seed++ {
				pi := perms.Random(s.d*s.g, rand.New(rand.NewSource(seed)))
				want, err := pl.Plan(pi)
				if err != nil {
					t.Fatalf("%v d=%d g=%d: batch: %v", algo, s.d, s.g, err)
				}
				ps, err := pl.StartPlan(pi)
				if err != nil {
					t.Fatalf("%v d=%d g=%d: StartPlan: %v", algo, s.d, s.g, err)
				}
				got, err := ps.Collect()
				if err != nil {
					t.Fatalf("%v d=%d g=%d: Collect: %v", algo, s.d, s.g, err)
				}
				if !reflect.DeepEqual(got.Pi, want.Pi) || !reflect.DeepEqual(got.Colors, want.Colors) ||
					got.Rounds != want.Rounds || got.Strategy != want.Strategy || got.Net != want.Net {
					t.Fatalf("%v d=%d g=%d seed=%d: plan metadata diverges", algo, s.d, s.g, seed)
				}
				if !reflect.DeepEqual(got.Schedule().Slots, want.Schedule().Slots) {
					t.Fatalf("%v d=%d g=%d seed=%d: schedules diverge", algo, s.d, s.g, seed)
				}
			}
		}
	}
}

// TestPlanStreamFragments walks the fragments of one stream and checks the
// streaming contract: every fragment lands inside its declared slot, covers
// it exactly once across the stream, and the Final flag fires exactly when
// its slot has been fully delivered.
func TestPlanStreamFragments(t *testing.T) {
	for _, s := range streamShapes() {
		pl, err := NewPlanner(s.d, s.g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pi := perms.Random(s.d*s.g, rand.New(rand.NewSource(7)))
		ps, err := pl.StartPlan(pi)
		if err != nil {
			t.Fatal(err)
		}
		covered := make([]int, ps.SlotCount())
		finals := make([]bool, ps.SlotCount())
		fragments := 0
		for {
			frag, ok := ps.Next()
			if !ok {
				break
			}
			fragments++
			if frag.Slot < 0 || frag.Slot >= ps.SlotCount() {
				t.Fatalf("d=%d g=%d: fragment slot %d outside schedule", s.d, s.g, frag.Slot)
			}
			if len(frag.Sends) != len(frag.Recvs) || len(frag.Sends) == 0 {
				t.Fatalf("d=%d g=%d: fragment with %d sends, %d recvs", s.d, s.g, len(frag.Sends), len(frag.Recvs))
			}
			covered[frag.Slot] += len(frag.Sends)
			if finals[frag.Slot] {
				t.Fatalf("d=%d g=%d: slot %d received a fragment after Final", s.d, s.g, frag.Slot)
			}
			if frag.Final {
				finals[frag.Slot] = true
			}
		}
		if err := ps.Err(); err != nil {
			t.Fatal(err)
		}
		if fragments != ps.FragmentCount() {
			t.Fatalf("d=%d g=%d: %d fragments, want %d", s.d, s.g, fragments, ps.FragmentCount())
		}
		plan := ps.Plan()
		if plan == nil {
			t.Fatalf("d=%d g=%d: no plan after exhaustion", s.d, s.g)
		}
		for i, slot := range plan.Schedule().Slots {
			if covered[i] != len(slot.Sends) {
				t.Fatalf("d=%d g=%d: slot %d covered by %d of %d sends", s.d, s.g, i, covered[i], len(slot.Sends))
			}
			if !finals[i] {
				t.Fatalf("d=%d g=%d: slot %d never marked Final", s.d, s.g, i)
			}
		}
		// The assembled schedule must route pi.
		if _, err := popsnet.VerifyPermutationRouted(plan.Schedule(), pi); err != nil {
			t.Fatalf("d=%d g=%d: %v", s.d, s.g, err)
		}
	}
}

// TestStartPlanValidation mirrors Plan's validation on the streaming entry.
func TestStartPlanValidation(t *testing.T) {
	pl, err := NewPlanner(2, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.StartPlan([]int{0, 1, 2}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := pl.StartPlan([]int{0, 0, 1, 2, 3, 3}); err == nil {
		t.Fatal("non-permutation accepted")
	}
}

// TestStartPlanVerifyOption pins that Options.Verify replays the collected
// schedule, matching the batch path's behavior.
func TestStartPlanVerifyOption(t *testing.T) {
	pl, err := NewPlanner(4, 4, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	pi := perms.Random(16, rand.New(rand.NewSource(9)))
	ps, err := pl.StartPlan(pi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Collect(); err != nil {
		t.Fatal(err)
	}
}
