// Package hrelation routes h-relations on POPS(d, g) networks — the natural
// generalization of the paper's permutation routing, in the spirit of its
// closing remark that Theorem 2 "unifies and generalizes" the communication
// patterns of the literature. An h-relation is a multiset of (source,
// destination) requests in which every processor appears at most h times as
// a source and at most h times as a destination.
//
// The reduction reuses the paper's machinery one level up: the
// processor-level demand bipartite multigraph of an h-relation is (after
// padding with dummy requests) h-regular, so by König's theorem it
// decomposes into h perfect matchings — h permutations, each routed by
// Theorem 2 in 2⌈d/g⌉ slots (1 slot when d = 1). Total:
// h · OptimalSlots(d, g) slots. The counting lower bound for a saturated
// h-relation of derangements is ⌈h·d/g⌉ slots (h·n packets, g² per slot),
// so the schedule is within a factor 2 of optimal for d ≥ g, matching the
// paper's guarantee for h = 1.
package hrelation

import (
	"fmt"

	"pops/internal/core"
	"pops/internal/edgecolor"
	"pops/internal/graph"
	"pops/internal/popsnet"
)

// Request is one packet demand: move one packet from Src to Dst.
type Request struct {
	Src, Dst int
}

// Degree returns h: the maximum number of times any processor occurs as a
// source or as a destination in reqs.
func Degree(n int, reqs []Request) (int, error) {
	srcCount := make([]int, n)
	dstCount := make([]int, n)
	for i, r := range reqs {
		if r.Src < 0 || r.Src >= n || r.Dst < 0 || r.Dst >= n {
			return 0, fmt.Errorf("hrelation: request %d (%d→%d) out of range [0,%d)", i, r.Src, r.Dst, n)
		}
		srcCount[r.Src]++
		dstCount[r.Dst]++
	}
	h := 0
	for p := 0; p < n; p++ {
		if srcCount[p] > h {
			h = srcCount[p]
		}
		if dstCount[p] > h {
			h = dstCount[p]
		}
	}
	return h, nil
}

// Plan is a routing plan for an h-relation.
type Plan struct {
	Net  popsnet.Network
	Reqs []Request
	H    int
	// Factors[k] lists the request indices routed in the k-th permutation
	// round (dummy padding requests excluded).
	Factors [][]int

	sched *popsnet.Schedule
	home  []int // packet k (= request k, then dummies) -> initial processor
	want  []int // packet k -> required final processor (-1 for dummies)
}

// Schedule returns the complete slot schedule (all factors concatenated).
func (p *Plan) Schedule() *popsnet.Schedule { return p.sched }

// SlotCount returns the total number of slots.
func (p *Plan) SlotCount() int { return len(p.sched.Slots) }

// Verify replays the schedule on the simulator and checks every real
// request was delivered.
func (p *Plan) Verify() (*popsnet.Trace, error) {
	return popsnet.VerifyDelivery(p.sched, p.home, p.want)
}

// Route plans an h-relation on POPS(d, g): decompose into h permutations via
// a König 1-factorization of the padded request multigraph, then route each
// factor with the Theorem 2 planner. The schedule uses exactly
// h · core.OptimalSlots(d, g) slots (0 for an empty relation).
func Route(d, g int, reqs []Request, opts core.Options) (*Plan, error) {
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		return nil, err
	}
	n := nw.N()
	h, err := Degree(n, reqs)
	if err != nil {
		return nil, err
	}
	plan := &Plan{Net: nw, Reqs: reqs, H: h, sched: &popsnet.Schedule{Net: nw}}
	if h == 0 {
		return plan, nil
	}

	// Pad with dummy requests so every processor has exactly h sends and h
	// receives: repeatedly match source deficits to destination deficits.
	srcCount := make([]int, n)
	dstCount := make([]int, n)
	for _, r := range reqs {
		srcCount[r.Src]++
		dstCount[r.Dst]++
	}
	all := append([]Request(nil), reqs...)
	si, di := 0, 0
	for {
		for si < n && srcCount[si] == h {
			si++
		}
		for di < n && dstCount[di] == h {
			di++
		}
		if si == n || di == n {
			break
		}
		all = append(all, Request{Src: si, Dst: di})
		srcCount[si]++
		dstCount[di]++
	}
	if si != n || di != n {
		// Total send deficit always equals total receive deficit (both are
		// h·n − len(all-real-requests) after padding), so this is
		// unreachable unless the counting above is broken.
		return nil, fmt.Errorf("hrelation: internal padding imbalance (si=%d, di=%d)", si, di)
	}

	// Processor-level demand multigraph: h-regular by construction. Factor k
	// lists the request indices of color class k, in ascending order.
	demand := graph.New(n, n)
	for _, r := range all {
		demand.AddEdge(r.Src, r.Dst)
	}
	factors, err := edgecolor.Factorize(demand, opts.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("hrelation: factorizing request graph: %w", err)
	}

	// Packet identities: request index for real packets; padded dummies get
	// ids beyond len(reqs). Every packet starts at its request's source.
	plan.home = make([]int, len(all))
	plan.want = make([]int, len(all))
	for k, r := range all {
		plan.home[k] = r.Src
		if k < len(reqs) {
			plan.want[k] = r.Dst
		} else {
			plan.want[k] = -1 // dummy: don't care
		}
	}

	// Route each factor as a full permutation, relabeling the core
	// schedule's packet ids (which are source processors) to request ids.
	// Factors are independent, so they run on a bounded worker pool sized by
	// opts.Parallelism; results are assembled in factor order regardless.
	type routed struct {
		real  []int
		slots []popsnet.Slot
	}
	results := make([]routed, len(factors))
	errs := make([]error, len(factors))
	routeFactor := func(pl *core.Planner, k int) {
		factor := factors[k]
		pi := make([]int, n)
		reqAt := make([]int, n)
		for _, edgeID := range factor {
			r := all[edgeID]
			pi[r.Src] = r.Dst
			reqAt[r.Src] = edgeID
		}
		sub, err := pl.Plan(pi)
		if err != nil {
			errs[k] = fmt.Errorf("hrelation: routing factor %d: %w", k, err)
			return
		}
		real := make([]int, 0, len(factor))
		for _, edgeID := range factor {
			if edgeID < len(reqs) {
				real = append(real, edgeID)
			}
		}
		slots := make([]popsnet.Slot, 0, sub.SlotCount())
		for _, slot := range sub.Schedule().Slots {
			relabeled := popsnet.Slot{Recvs: slot.Recvs, Sends: make([]popsnet.Send, 0, len(slot.Sends))}
			for _, snd := range slot.Sends {
				// In the core schedule, packet ids equal source processors.
				snd.Packet = reqAt[snd.Packet]
				relabeled.Sends = append(relabeled.Sends, snd)
			}
			slots = append(slots, relabeled)
		}
		results[k] = routed{real: real, slots: slots}
	}

	// Per-factor verification is redundant inside an h-relation (the final
	// plan is verified as a whole below), so workers plan without it.
	subOpts := opts
	subOpts.Verify = false
	core.ForEach(opts.Workers(), len(factors),
		func() *core.Planner { return core.NewPlannerFor(nw, subOpts) },
		func(*core.Planner) {},
		routeFactor)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for k := range results {
		plan.Factors = append(plan.Factors, results[k].real)
		plan.sched.Slots = append(plan.sched.Slots, results[k].slots...)
	}
	if opts.Verify {
		if _, err := plan.Verify(); err != nil {
			return nil, fmt.Errorf("hrelation: schedule failed verification: %w", err)
		}
	}
	return plan, nil
}

// PredictedSlots returns the slot cost of Route for an h-relation:
// h · OptimalSlots(d, g).
func PredictedSlots(d, g, h int) int {
	return h * core.OptimalSlots(d, g)
}

// AllToAll builds the complete-exchange relation — every processor sends one
// distinct packet to every other processor — and routes it. This is the
// heaviest pattern of the POPS literature (an (n−1)-relation), decomposed
// here into n−1 permutation rounds of 2⌈d/g⌉ slots; the counting bound is
// ⌈(n−1)·d/g⌉, so the schedule is within a factor 2 for d ≥ g. The request
// order is deterministic: request index k·n + s (k = 0..n−2) moves the
// packet from processor s to processor (s+k+1) mod n.
func AllToAll(d, g int, opts core.Options) (*Plan, error) {
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		return nil, err
	}
	n := nw.N()
	reqs := make([]Request, 0, n*(n-1))
	for k := 1; k < n; k++ {
		for s := 0; s < n; s++ {
			reqs = append(reqs, Request{Src: s, Dst: (s + k) % n})
		}
	}
	return Route(d, g, reqs, opts)
}
