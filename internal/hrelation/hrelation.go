// Package hrelation routes h-relations on POPS(d, g) networks — the natural
// generalization of the paper's permutation routing, in the spirit of its
// closing remark that Theorem 2 "unifies and generalizes" the communication
// patterns of the literature. An h-relation is a multiset of (source,
// destination) requests in which every processor appears at most h times as
// a source and at most h times as a destination.
//
// The reduction reuses the paper's machinery one level up: the
// processor-level demand bipartite multigraph of an h-relation is (after
// padding with dummy requests) h-regular, so by König's theorem it
// decomposes into h perfect matchings — h permutations, each routed by
// Theorem 2 in 2⌈d/g⌉ slots (1 slot when d = 1). Total:
// h · OptimalSlots(d, g) slots. The counting lower bound for a saturated
// h-relation of derangements is ⌈h·d/g⌉ slots (h·n packets, g² per slot),
// so the schedule is within a factor 2 of optimal for d ≥ g, matching the
// paper's guarantee for h = 1.
//
// The planning itself lives in internal/core (Planner.PlanHRelation /
// StartHRelation), where it shares the per-worker coloring arenas of the
// permutation planner; this package keeps the historical Plan shape and the
// one-shot Route/AllToAll entry points as wrappers over it.
package hrelation

import (
	"context"

	"pops/internal/core"
	"pops/internal/popsnet"
)

// Request is one packet demand: move one packet from Src to Dst.
type Request = core.Request

// Degree returns h: the maximum number of times any processor occurs as a
// source or as a destination in reqs.
func Degree(n int, reqs []Request) (int, error) {
	return core.Degree(n, reqs)
}

// Plan is a routing plan for an h-relation: the historical result shape of
// Route, now a view over the unified core.Plan that Planner.PlanHRelation
// produces.
type Plan struct {
	Net  popsnet.Network
	Reqs []Request
	H    int
	// Factors[k] lists the request indices routed in the k-th permutation
	// round (dummy padding requests excluded).
	Factors [][]int

	core *core.Plan
}

// FromCore wraps a unified h-relation core.Plan in the historical shape.
func FromCore(p *core.Plan) *Plan {
	return &Plan{Net: p.Net, Reqs: p.Reqs, H: p.H, Factors: p.Factors, core: p}
}

// Core returns the underlying unified plan.
func (p *Plan) Core() *core.Plan { return p.core }

// Schedule returns the complete slot schedule (all factors concatenated).
func (p *Plan) Schedule() *popsnet.Schedule { return p.core.Schedule() }

// SlotCount returns the total number of slots.
func (p *Plan) SlotCount() int { return p.core.SlotCount() }

// Verify replays the schedule on the simulator and checks every real
// request was delivered.
func (p *Plan) Verify() (*popsnet.Trace, error) { return p.core.Verify() }

// Route plans an h-relation on POPS(d, g): decompose into h permutations via
// a König 1-factorization of the padded request multigraph, then route each
// factor with the Theorem 2 planner. The schedule uses exactly
// h · core.OptimalSlots(d, g) slots (0 for an empty relation). ctx cancels
// planning between factors.
func Route(ctx context.Context, d, g int, reqs []Request, opts core.Options) (*Plan, error) {
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		return nil, err
	}
	pl := core.NewPlannerFor(nw, opts)
	cp, err := pl.PlanHRelation(ctx, reqs)
	if err != nil {
		return nil, err
	}
	return FromCore(cp), nil
}

// PredictedSlots returns the slot cost of Route for an h-relation:
// h · OptimalSlots(d, g).
func PredictedSlots(d, g, h int) int {
	return core.PredictedHRelationSlots(d, g, h)
}

// AllToAll builds the complete-exchange relation — every processor sends one
// distinct packet to every other processor — and routes it. This is the
// heaviest pattern of the POPS literature (an (n−1)-relation), decomposed
// here into n−1 permutation rounds of 2⌈d/g⌉ slots; the counting bound is
// ⌈(n−1)·d/g⌉, so the schedule is within a factor 2 for d ≥ g. The request
// order is deterministic: request index k·n + s (k = 0..n−2) moves the
// packet from processor s to processor (s+k+1) mod n.
func AllToAll(ctx context.Context, d, g int, opts core.Options) (*Plan, error) {
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		return nil, err
	}
	return Route(ctx, d, g, core.AllToAllRequests(nw.N()), opts)
}
