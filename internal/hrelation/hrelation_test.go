package hrelation

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"pops/internal/core"
	"pops/internal/perms"
)

func TestDegree(t *testing.T) {
	reqs := []Request{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 3, Dst: 0}}
	h, err := Degree(4, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 { // proc 0 sends twice, proc 2 receives twice
		t.Fatalf("h = %d, want 2", h)
	}
	if _, err := Degree(4, []Request{{Src: 0, Dst: 9}}); err == nil {
		t.Fatal("out-of-range request accepted")
	}
	if _, err := Degree(4, []Request{{Src: -1, Dst: 0}}); err == nil {
		t.Fatal("negative source accepted")
	}
	h, err = Degree(4, nil)
	if err != nil || h != 0 {
		t.Fatalf("empty relation: h=%d err=%v", h, err)
	}
}

func TestRouteEmptyRelation(t *testing.T) {
	p, err := Route(context.Background(), 2, 2, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.SlotCount() != 0 {
		t.Fatalf("empty relation uses %d slots", p.SlotCount())
	}
	if _, err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRoutePermutationIsOneFactor(t *testing.T) {
	// h = 1: an ordinary permutation, one factor, OptimalSlots(d,g) slots.
	pi := perms.VectorReversal(8)
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{Src: i, Dst: pi[i]}
	}
	p, err := Route(context.Background(), 4, 2, reqs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.H != 1 || len(p.Factors) != 1 {
		t.Fatalf("h=%d factors=%d, want 1/1", p.H, len(p.Factors))
	}
	if p.SlotCount() != PredictedSlots(4, 2, 1) {
		t.Fatalf("slots = %d, want %d", p.SlotCount(), PredictedSlots(4, 2, 1))
	}
	if _, err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func randomHRelation(n, h int, rng *rand.Rand) []Request {
	// Union of h random permutations: exactly h sends and receives per proc.
	var reqs []Request
	for k := 0; k < h; k++ {
		pi := perms.Random(n, rng)
		for i, v := range pi {
			reqs = append(reqs, Request{Src: i, Dst: v})
		}
	}
	return reqs
}

func TestRouteSaturatedRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, tc := range []struct{ d, g, h int }{
		{2, 2, 2}, {4, 4, 3}, {8, 2, 2}, {3, 5, 4}, {1, 6, 3},
	} {
		reqs := randomHRelation(tc.d*tc.g, tc.h, rng)
		p, err := Route(context.Background(), tc.d, tc.g, reqs, core.Options{})
		if err != nil {
			t.Fatalf("d=%d g=%d h=%d: %v", tc.d, tc.g, tc.h, err)
		}
		if p.H != tc.h {
			t.Fatalf("degree %d, want %d", p.H, tc.h)
		}
		if got, want := p.SlotCount(), PredictedSlots(tc.d, tc.g, tc.h); got != want {
			t.Fatalf("d=%d g=%d h=%d: slots = %d, want %d", tc.d, tc.g, tc.h, got, want)
		}
		if _, err := p.Verify(); err != nil {
			t.Fatalf("d=%d g=%d h=%d: %v", tc.d, tc.g, tc.h, err)
		}
	}
}

func TestRoutePartialRelationWithPadding(t *testing.T) {
	// Unbalanced: proc 0 sends 3 packets, all to proc 5; others idle.
	reqs := []Request{{Src: 0, Dst: 5}, {Src: 0, Dst: 5}, {Src: 0, Dst: 5}}
	p, err := Route(context.Background(), 3, 2, reqs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.H != 3 {
		t.Fatalf("h = %d, want 3", p.H)
	}
	if _, err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	// Each factor carries exactly one real request.
	total := 0
	for _, f := range p.Factors {
		total += len(f)
	}
	if total != 3 {
		t.Fatalf("factors cover %d real requests, want 3", total)
	}
}

func TestRouteBroadcastLikeRelation(t *testing.T) {
	// One source fans out to every processor (an h = n "relation"): the
	// decomposition serializes it into n single-packet factors.
	d, g := 2, 2
	n := d * g
	var reqs []Request
	for p := 0; p < n; p++ {
		reqs = append(reqs, Request{Src: 0, Dst: p})
	}
	p, err := Route(context.Background(), d, g, reqs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.H != n {
		t.Fatalf("h = %d, want %d", p.H, n)
	}
	if _, err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRouteProperty(t *testing.T) {
	f := func(dSeed, gSeed, hSeed uint8, seed int64) bool {
		d := int(dSeed)%5 + 1
		g := int(gSeed)%5 + 1
		h := int(hSeed)%3 + 1
		rng := rand.New(rand.NewSource(seed))
		reqs := randomHRelation(d*g, h, rng)
		p, err := Route(context.Background(), d, g, reqs, core.Options{})
		if err != nil {
			return false
		}
		if p.SlotCount() != PredictedSlots(d, g, h) {
			return false
		}
		_, err = p.Verify()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRoutePropertySparse(t *testing.T) {
	// Sparse random relations (not saturated): padding must fill the gaps.
	f := func(dSeed, gSeed, mSeed uint8, seed int64) bool {
		d := int(dSeed)%4 + 1
		g := int(gSeed)%4 + 1
		n := d * g
		m := int(mSeed) % (2 * n)
		rng := rand.New(rand.NewSource(seed))
		reqs := make([]Request, m)
		for i := range reqs {
			reqs[i] = Request{Src: rng.Intn(n), Dst: rng.Intn(n)}
		}
		p, err := Route(context.Background(), d, g, reqs, core.Options{})
		if err != nil {
			return false
		}
		_, err = p.Verify()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteInvalidShape(t *testing.T) {
	if _, err := Route(context.Background(), 0, 2, nil, core.Options{}); err == nil {
		t.Fatal("invalid shape accepted")
	}
	if _, err := Route(context.Background(), 2, 2, []Request{{Src: 0, Dst: 99}}, core.Options{}); err == nil {
		t.Fatal("bad request accepted")
	}
}

func TestAllToAll(t *testing.T) {
	for _, tc := range []struct{ d, g int }{{2, 2}, {2, 3}, {3, 2}, {1, 4}} {
		p, err := AllToAll(context.Background(), tc.d, tc.g, core.Options{})
		if err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
		n := tc.d * tc.g
		if p.H != n-1 {
			t.Fatalf("d=%d g=%d: degree %d, want %d", tc.d, tc.g, p.H, n-1)
		}
		if got, want := p.SlotCount(), PredictedSlots(tc.d, tc.g, n-1); got != want {
			t.Fatalf("d=%d g=%d: slots = %d, want %d", tc.d, tc.g, got, want)
		}
		if _, err := p.Verify(); err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
		// Every processor must appear exactly n−1 times as src and dst.
		if len(p.Reqs) != n*(n-1) {
			t.Fatalf("d=%d g=%d: %d requests, want %d", tc.d, tc.g, len(p.Reqs), n*(n-1))
		}
	}
}

func TestAllToAllInvalidShape(t *testing.T) {
	if _, err := AllToAll(context.Background(), 0, 2, core.Options{}); err == nil {
		t.Fatal("invalid shape accepted")
	}
}
