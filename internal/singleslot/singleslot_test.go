package singleslot

import (
	"math/rand"
	"testing"

	"pops/internal/perms"
	"pops/internal/popsnet"
)

func TestIsRoutableValidation(t *testing.T) {
	if _, err := IsRoutable(0, 2, nil); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := IsRoutable(2, 2, []int{0}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := IsRoutable(2, 2, []int{0, 0, 1, 1}); err == nil {
		t.Fatal("non-permutation accepted")
	}
}

func TestGroupCollisionNotRoutable(t *testing.T) {
	// The paper's observation: two packets from one group to one group
	// (Figure 3's processors 4 and 5) cannot be routed in one slot.
	ok, err := IsRoutable(3, 3, []int{4, 8, 3, 6, 0, 2, 7, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Figure 3 permutation claimed single-slot routable")
	}
}

func TestBlockRotationNotRoutableForD2(t *testing.T) {
	pi, err := perms.GroupRotation(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsRoutable(2, 2, pi)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("group rotation claimed routable")
	}
	if _, err := Route(2, 2, pi); err == nil {
		t.Fatal("Route accepted unroutable permutation")
	}
}

func TestD1AlwaysRoutable(t *testing.T) {
	// POPS(1, n) is fully interconnected: every permutation routes in one
	// slot (the d = 1 case of Theorem 2).
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 16} {
		pi := perms.Random(n, rng)
		ok, err := IsRoutable(1, n, pi)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("n=%d: permutation not routable with d=1", n)
		}
		sched, err := Route(1, n, pi)
		if err != nil {
			t.Fatal(err)
		}
		if sched.SlotCount() != 1 {
			t.Fatalf("slots = %d, want 1", sched.SlotCount())
		}
		if _, err := popsnet.VerifyPermutationRouted(sched, pi); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRoutableCrossGroupPermutation(t *testing.T) {
	// d=2, g=4: send each group's packets to two different groups so every
	// (src,dst) group pair is used at most once.
	// Group h's packets go to groups (h+1)%4 and (h+2)%4, local slot 0/1.
	d, g := 2, 4
	pi := make([]int, d*g)
	used := make(map[int]bool)
	for h := 0; h < g; h++ {
		a, b := (h+1)%g, (h+2)%g
		// local positions chosen so destinations are a permutation: place
		// packet (h,0) at (a, h%d) and (h,1) at (b, (h/2)%d)… simpler: track
		// used destinations explicitly.
		placed := 0
		for _, dg := range []int{a, b} {
			for local := 0; local < d; local++ {
				dest := dg*d + local
				if !used[dest] {
					used[dest] = true
					pi[h*d+placed] = dest
					placed++
					break
				}
			}
		}
		if placed != 2 {
			t.Fatal("test construction failed")
		}
	}
	if err := perms.Validate(pi); err != nil {
		t.Fatalf("constructed destination map invalid: %v", err)
	}
	ok, err := IsRoutable(d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("cross-group permutation %v not routable", pi)
	}
	sched, err := Route(d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := popsnet.VerifyPermutationRouted(sched, pi); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityRoutableOnlyWhenDLeqG(t *testing.T) {
	// Identity uses pair (h,h) once per packet: routable iff d == 1... no:
	// all d packets of group h use pair (h,h), so routable iff d == 1.
	ok, err := IsRoutable(2, 2, perms.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("identity with d=2 claimed routable")
	}
	ok, err = IsRoutable(1, 4, perms.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("identity with d=1 not routable")
	}
}
