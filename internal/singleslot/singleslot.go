// Package singleslot implements the Gravenstreter & Melhem (1998)
// characterization of permutations routable in a single slot on POPS(d, g),
// and the corresponding one-slot router. This is the baseline Theorem 2
// generalizes: only a very restricted class of permutations qualifies —
// whenever two packets originate in one group and target one group, a
// coupler must carry both and one slot cannot suffice.
package singleslot

import (
	"fmt"

	"pops/internal/perms"
	"pops/internal/popsnet"
)

// IsRoutable reports whether pi can be routed in one slot on POPS(d, g):
// every (source group, destination group) pair carries at most one packet.
// For a permutation this already implies the receiver-side constraints (one
// packet per destination processor, at most g arrivals per group).
func IsRoutable(d, g int, pi []int) (bool, error) {
	if d < 1 || g < 1 {
		return false, fmt.Errorf("singleslot: invalid shape d=%d g=%d", d, g)
	}
	if len(pi) != d*g {
		return false, fmt.Errorf("singleslot: permutation length %d, want %d", len(pi), d*g)
	}
	if err := perms.Validate(pi); err != nil {
		return false, fmt.Errorf("singleslot: %w", err)
	}
	seen := make(map[[2]int]bool, len(pi))
	for p, dest := range pi {
		key := [2]int{p / d, dest / d}
		if seen[key] {
			return false, nil
		}
		seen[key] = true
	}
	return true, nil
}

// Route builds the one-slot schedule for a single-slot-routable permutation,
// or an error explaining the first coupler conflict if it is not routable.
func Route(d, g int, pi []int) (*popsnet.Schedule, error) {
	ok, err := IsRoutable(d, g, pi)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("singleslot: permutation is not single-slot routable on POPS(%d,%d)", d, g)
	}
	return RouteRoutable(d, g, pi)
}

// RouteRoutable builds the one-slot schedule for a permutation the caller
// has already checked with IsRoutable, skipping the re-check. The Auto
// router uses it after classifying the permutation once; the final
// DirectSlot construction still rejects any residual conflict.
func RouteRoutable(d, g int, pi []int) (*popsnet.Schedule, error) {
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		return nil, err
	}
	n := nw.N()
	pkts := make([]int, n)
	src := make([]int, n)
	for p := 0; p < n; p++ {
		pkts[p], src[p] = p, p
	}
	slot, err := popsnet.DirectSlot(nw, pkts, src, pi)
	if err != nil {
		return nil, fmt.Errorf("singleslot: internal error: %w", err)
	}
	return &popsnet.Schedule{Net: nw, Slots: []popsnet.Slot{slot}}, nil
}
