// Package bounds implements the lower-bound machinery of Mei & Rizzi
// (Propositions 1–3) and the permutation classification the propositions
// hinge on. Together with the planner's 2⌈d/g⌉ upper bound this yields the
// paper's optimality statements: the routing is worst-case optimal, within
// a factor 2 of optimal for every derangement, and exactly optimal for the
// group-mapping derangement class.
package bounds

import (
	"fmt"

	"pops/internal/perms"
)

// Class describes the structural properties of a permutation relative to a
// POPS(d, g) partition that the lower bounds depend on.
type Class struct {
	D, G int
	// Derangement: π(i) ≠ i for all i (hypothesis of Propositions 1 and 3).
	Derangement bool
	// GroupMapping: group(i) = group(j) ⇒ group(π(i)) = group(π(j)) — whole
	// groups map to single groups (hypothesis of Propositions 2 and 3).
	GroupMapping bool
	// GroupDerangement: group(π(i)) ≠ group(i) for all i (hypothesis of
	// Proposition 2).
	GroupDerangement bool
}

// Classify computes the Class of pi on POPS(d, g).
func Classify(d, g int, pi []int) (Class, error) {
	if d < 1 || g < 1 {
		return Class{}, fmt.Errorf("bounds: invalid shape d=%d g=%d", d, g)
	}
	if len(pi) != d*g {
		return Class{}, fmt.Errorf("bounds: permutation length %d, want %d", len(pi), d*g)
	}
	if err := perms.Validate(pi); err != nil {
		return Class{}, fmt.Errorf("bounds: %w", err)
	}
	c := Class{D: d, G: g, Derangement: true, GroupMapping: true, GroupDerangement: true}
	groupOf := func(p int) int { return p / d }
	for h := 0; h < g; h++ {
		first := groupOf(pi[h*d])
		for i := 0; i < d; i++ {
			p := i + h*d
			if pi[p] == p {
				c.Derangement = false
			}
			if groupOf(pi[p]) != first {
				c.GroupMapping = false
			}
			if groupOf(pi[p]) == h {
				c.GroupDerangement = false
			}
		}
	}
	return c, nil
}

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Prop1 returns the Proposition 1 lower bound for a derangement:
// ⌈n/g²⌉ = ⌈d/g⌉ slots, because every packet needs at least one hop and at
// most g² packets move per slot. It returns 0 if the hypothesis fails.
func Prop1(c Class) int {
	if !c.Derangement {
		return 0
	}
	return ceilDiv(c.D, c.G)
}

// Prop2 returns the Proposition 2 lower bound: 2⌈d/g⌉ slots when whole
// groups map to distinct single groups (group-mapping + group-derangement).
// It returns 0 if the hypothesis fails.
//
// The proposition implicitly assumes d > 1: with d = 1 every permutation
// routes in a single slot (Theorem 2), so the multi-hop argument behind the
// bound does not apply and Prop2 reports 0.
func Prop2(c Class) int {
	if c.D == 1 || !c.GroupMapping || !c.GroupDerangement {
		return 0
	}
	return 2 * ceilDiv(c.D, c.G)
}

// Prop3 returns the Proposition 3 lower bound: 2⌈d/(1+g)⌉ slots for
// group-mapping derangements (fixed destination groups allowed). It returns
// 0 if the hypothesis fails.
// Like Prop2, the bound presupposes d > 1 (for d = 1 one slot suffices by
// Theorem 2), so Prop3 reports 0 in that case.
func Prop3(c Class) int {
	if c.D == 1 || !c.Derangement || !c.GroupMapping {
		return 0
	}
	return 2 * ceilDiv(c.D, 1+c.G)
}

// LowerBound returns the strongest applicable lower bound on the number of
// slots any algorithm needs to route pi on POPS(d, g), together with the
// name of the proposition that supplies it. Permutations with fixed points
// (and no applicable proposition) get the trivial bound 0 slots ("none"):
// the identity genuinely needs no communication.
func LowerBound(d, g int, pi []int) (int, string, error) {
	c, err := Classify(d, g, pi)
	if err != nil {
		return 0, "", err
	}
	// On ties the stronger statement wins: Prop2 subsumes Prop3 subsumes
	// Prop1 whenever their hypotheses overlap.
	best, name := 0, "none"
	for _, cand := range []struct {
		bound int
		prop  string
	}{
		{Prop2(c), "Prop2"},
		{Prop3(c), "Prop3"},
		{Prop1(c), "Prop1"},
	} {
		if cand.bound > best {
			best, name = cand.bound, cand.prop
		}
	}
	return best, name, nil
}

// OptimalityRatio returns achievedSlots / lowerBound as a float, or 0 when
// the lower bound is 0 (ratio undefined).
func OptimalityRatio(achievedSlots, lowerBound int) float64 {
	if lowerBound == 0 {
		return 0
	}
	return float64(achievedSlots) / float64(lowerBound)
}
