package bounds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pops/internal/core"
	"pops/internal/perms"
)

func TestClassifyValidation(t *testing.T) {
	if _, err := Classify(0, 2, nil); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := Classify(2, 2, []int{0}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := Classify(2, 2, []int{0, 0, 1, 1}); err == nil {
		t.Fatal("non-permutation accepted")
	}
}

func TestClassifyIdentity(t *testing.T) {
	c, err := Classify(2, 3, perms.Identity(6))
	if err != nil {
		t.Fatal(err)
	}
	if c.Derangement || c.GroupDerangement {
		t.Fatal("identity misclassified as derangement")
	}
	if !c.GroupMapping {
		t.Fatal("identity is group-mapping")
	}
}

func TestClassifyVectorReversal(t *testing.T) {
	// Reversal on POPS(2,2): π = 3,2,1,0. Group 0 → group 1 and vice versa:
	// derangement, group-mapping, group-derangement.
	c, err := Classify(2, 2, perms.VectorReversal(4))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Derangement || !c.GroupMapping || !c.GroupDerangement {
		t.Fatalf("reversal class = %+v", c)
	}
}

func TestClassifyMixedDestinations(t *testing.T) {
	// π sends group 0's packets to different groups: not group-mapping.
	pi := []int{0, 2, 1, 3} // d=2, g=2: packet 0 stays, packet 1 → group 1
	c, err := Classify(2, 2, pi)
	if err != nil {
		t.Fatal(err)
	}
	if c.GroupMapping {
		t.Fatal("non-uniform destinations classified group-mapping")
	}
	if c.Derangement {
		t.Fatal("π(0)=0 classified derangement")
	}
}

func TestProp1(t *testing.T) {
	c := Class{D: 8, G: 2, Derangement: true}
	if got := Prop1(c); got != 4 {
		t.Fatalf("Prop1 = %d, want 4", got)
	}
	c.Derangement = false
	if got := Prop1(c); got != 0 {
		t.Fatal("Prop1 fired without hypothesis")
	}
}

func TestProp2(t *testing.T) {
	c := Class{D: 8, G: 2, GroupMapping: true, GroupDerangement: true}
	if got := Prop2(c); got != 8 {
		t.Fatalf("Prop2 = %d, want 8", got)
	}
	c.GroupDerangement = false
	if Prop2(c) != 0 {
		t.Fatal("Prop2 fired without group derangement")
	}
}

func TestProp3(t *testing.T) {
	c := Class{D: 9, G: 2, Derangement: true, GroupMapping: true}
	if got := Prop3(c); got != 6 {
		t.Fatalf("Prop3 = %d, want 2*ceil(9/3) = 6", got)
	}
	c.GroupMapping = false
	if Prop3(c) != 0 {
		t.Fatal("Prop3 fired without group mapping")
	}
}

func TestLowerBoundReversal(t *testing.T) {
	// Vector reversal with even g meets Prop2: lower bound equals the
	// algorithm's 2⌈d/g⌉ — the optimality example of Section 3.3.
	for _, tc := range []struct{ d, g int }{{2, 2}, {4, 2}, {3, 4}, {8, 4}} {
		pi := perms.VectorReversal(tc.d * tc.g)
		lb, name, err := LowerBound(tc.d, tc.g, pi)
		if err != nil {
			t.Fatal(err)
		}
		if name != "Prop2" {
			t.Fatalf("d=%d g=%d: bound from %s, want Prop2", tc.d, tc.g, name)
		}
		if want := core.OptimalSlots(tc.d, tc.g); lb != want {
			t.Fatalf("d=%d g=%d: lb = %d, want %d", tc.d, tc.g, lb, want)
		}
	}
}

func TestLowerBoundIdentity(t *testing.T) {
	lb, name, err := LowerBound(2, 2, perms.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if lb != 0 || name != "none" {
		t.Fatalf("identity bound = %d (%s), want 0 (none)", lb, name)
	}
}

func TestLowerBoundGroupMappingWithFixedGroups(t *testing.T) {
	// Inner derangement within each group, σ = identity: group-mapping
	// derangement with fixed destination groups — Proposition 3 applies,
	// Proposition 2 does not.
	d, g := 6, 2
	inner := [][]int{perms.CyclicShift(d, 1), perms.CyclicShift(d, 1)}
	pi, err := perms.BlockPermutation(d, g, perms.Identity(g), inner)
	if err != nil {
		t.Fatal(err)
	}
	lb, name, err := LowerBound(d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	if name != "Prop3" {
		t.Fatalf("bound from %s, want Prop3", name)
	}
	if want := 2 * ((d + g) / (1 + g)); lb != want {
		t.Fatalf("lb = %d, want %d", lb, want)
	}
}

func TestUpperBoundNeverBelowLowerBound(t *testing.T) {
	// Soundness of the whole story: for random permutations the planner's
	// slot count is ≥ every applicable lower bound, and ≤ 2× Prop1's bound
	// when it applies (the paper's "at most double the optimum").
	rng := rand.New(rand.NewSource(77))
	for _, tc := range []struct{ d, g int }{{2, 2}, {4, 4}, {8, 2}, {3, 5}, {9, 3}} {
		n := tc.d * tc.g
		for trial := 0; trial < 5; trial++ {
			pi := perms.RandomDerangement(n, rng)
			lb, _, err := LowerBound(tc.d, tc.g, pi)
			if err != nil {
				t.Fatal(err)
			}
			got := core.OptimalSlots(tc.d, tc.g)
			if got < lb {
				t.Fatalf("d=%d g=%d: slots %d below lower bound %d", tc.d, tc.g, got, lb)
			}
			// Derangement: Prop1 gives ⌈d/g⌉; 2⌈d/g⌉ ≤ 2·optimum.
			if c, _ := Classify(tc.d, tc.g, pi); c.Derangement {
				if got > 2*Prop1(c) {
					t.Fatalf("d=%d g=%d: slots %d exceed 2× Prop1 bound %d", tc.d, tc.g, got, Prop1(c))
				}
			}
		}
	}
}

func TestOptimalityRatio(t *testing.T) {
	if got := OptimalityRatio(4, 2); got != 2.0 {
		t.Fatalf("ratio = %v, want 2", got)
	}
	if got := OptimalityRatio(4, 0); got != 0 {
		t.Fatalf("undefined ratio = %v, want 0", got)
	}
}

func TestClassifyProperty(t *testing.T) {
	// Block permutations are always group-mapping; with derangement σ they
	// are group-derangements.
	f := func(dSeed, gSeed uint8, seed int64) bool {
		d := int(dSeed)%6 + 1
		g := int(gSeed)%6 + 2
		rng := rand.New(rand.NewSource(seed))
		sigma := perms.RandomDerangement(g, rng)
		pi, err := perms.BlockPermutation(d, g, sigma, nil)
		if err != nil {
			return false
		}
		c, err := Classify(d, g, pi)
		if err != nil {
			return false
		}
		return c.GroupMapping && c.GroupDerangement && c.Derangement
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
