package fairdist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pops/internal/edgecolor"
)

// figure3Perm is the permutation of Figure 3 of the paper (POPS(3,3)):
// processor i's packet is destined to figure3Perm[i].
var figure3Perm = []int{4, 8, 3, 6, 0, 2, 7, 1, 5}

func randPerm(n int, rng *rand.Rand) []int { return rng.Perm(n) }

func TestDelta1Delta2(t *testing.T) {
	ls := &ListSystem{NSources: 3, NTargets: 3, Lists: [][]int{{0, 1}, {2, 0}, {1, 2}}}
	if ls.Delta1() != 2 {
		t.Fatalf("Delta1 = %d, want 2", ls.Delta1())
	}
	if ls.Delta2() != 2 {
		t.Fatalf("Delta2 = %d, want 2", ls.Delta2())
	}
}

func TestCheckRejectsMalformed(t *testing.T) {
	cases := []*ListSystem{
		{NSources: 2, NTargets: 2, Lists: [][]int{{0}}},         // wrong list count
		{NSources: 2, NTargets: 2, Lists: [][]int{{0}, {0, 1}}}, // ragged lists
		{NSources: 2, NTargets: 2, Lists: [][]int{{0}, {2}}},    // value outside S
		{NSources: -1, NTargets: 2, Lists: nil},                 // negative size
		{NSources: 2, NTargets: 2, Lists: [][]int{{-1}, {0}}},   // negative value
	}
	for i, ls := range cases {
		if err := ls.Check(); err == nil {
			t.Errorf("case %d: malformed system accepted", i)
		}
	}
}

func TestIsProper(t *testing.T) {
	// Every element appears Δ1 = 2 times; 3 | 3·2 fails -> wait 6/3=2 ok.
	proper := &ListSystem{NSources: 3, NTargets: 3, Lists: [][]int{{0, 1}, {2, 0}, {1, 2}}}
	if ok, err := proper.IsProper(); err != nil || !ok {
		t.Fatalf("proper system rejected: ok=%v err=%v", ok, err)
	}
	// Element 0 appears 3 times, element 1 once.
	unbalanced := &ListSystem{NSources: 3, NTargets: 3, Lists: [][]int{{0, 0}, {0, 1}, {2, 2}}}
	if ok, _ := unbalanced.IsProper(); ok {
		t.Fatal("unbalanced system accepted")
	}
	// n2 does not divide n1·Δ1: 4 does not divide 6.
	indiv := &ListSystem{NSources: 3, NTargets: 4, Lists: [][]int{{0, 1}, {2, 0}, {1, 2}}}
	if ok, _ := indiv.IsProper(); ok {
		t.Fatal("non-dividing target count accepted")
	}
}

func TestMultiplicity(t *testing.T) {
	ls := &ListSystem{NSources: 2, NTargets: 2, Lists: [][]int{{0, 0, 1}, {1, 1, 0}}}
	if ls.Multiplicity(0, 0) != 2 || ls.Multiplicity(0, 1) != 1 || ls.Multiplicity(1, 1) != 2 {
		t.Fatal("Multiplicity values wrong")
	}
}

func TestGraphEdgeOrder(t *testing.T) {
	ls := &ListSystem{NSources: 2, NTargets: 2, Lists: [][]int{{1, 0}, {0, 1}}}
	g := ls.Graph()
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	// Entry (s, i) must be edge s*Δ1+i.
	if e := g.Edge(0); e.L != 0 || e.R != 1 {
		t.Fatalf("edge 0 = %+v, want (0,1)", e)
	}
	if e := g.Edge(3); e.L != 1 || e.R != 1 {
		t.Fatalf("edge 3 = %+v, want (1,1)", e)
	}
}

func TestFairDistributionSquareCase(t *testing.T) {
	// The paper's running case d = g = √n, via Figure 3's permutation.
	ls, err := FromPermutation(3, 3, figure3Perm)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := ls.IsProper(); err != nil || !ok {
		t.Fatalf("Figure 3 list system not proper: ok=%v err=%v", ok, err)
	}
	for _, algo := range []edgecolor.Algorithm{edgecolor.RepeatedMatching, edgecolor.EulerSplitDC, edgecolor.Insertion} {
		f, err := ls.FairDistribution(algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if err := ls.Verify(f); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
	}
}

func TestFairDistributionSmallD(t *testing.T) {
	// d < g: targets = g, Δ2 = d.
	rng := rand.New(rand.NewSource(31))
	for _, tc := range []struct{ d, g int }{{2, 4}, {3, 5}, {2, 8}, {1, 6}, {4, 4}} {
		pi := randPerm(tc.d*tc.g, rng)
		ls, err := FromPermutation(tc.d, tc.g, pi)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ls.FairDistribution(edgecolor.EulerSplitDC)
		if err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
		if err := ls.Verify(f); err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
	}
}

func TestFairDistributionLargeD(t *testing.T) {
	// d > g: targets = d, Δ2 = g.
	rng := rand.New(rand.NewSource(32))
	for _, tc := range []struct{ d, g int }{{4, 2}, {6, 3}, {8, 2}, {5, 4}, {9, 3}} {
		pi := randPerm(tc.d*tc.g, rng)
		ls, err := FromPermutation(tc.d, tc.g, pi)
		if err != nil {
			t.Fatal(err)
		}
		if ls.NTargets != tc.d {
			t.Fatalf("d=%d g=%d: targets = %d, want %d", tc.d, tc.g, ls.NTargets, tc.d)
		}
		f, err := ls.FairDistribution(edgecolor.EulerSplitDC)
		if err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
		if err := ls.Verify(f); err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
	}
}

func TestFairDistributionRejectsImproper(t *testing.T) {
	ls := &ListSystem{NSources: 3, NTargets: 3, Lists: [][]int{{0, 0}, {0, 1}, {2, 2}}}
	if _, err := ls.FairDistribution(edgecolor.EulerSplitDC); err == nil {
		t.Fatal("improper system accepted")
	}
}

func TestFairDistributionRejectsUnsatisfiable(t *testing.T) {
	// Δ1 = 2 > |T| = 1: condition (1) cannot hold.
	ls := &ListSystem{NSources: 2, NTargets: 1, Lists: [][]int{{0, 1}, {1, 0}}}
	if _, err := ls.FairDistribution(edgecolor.EulerSplitDC); err == nil {
		t.Fatal("unsatisfiable system accepted")
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	ls := &ListSystem{NSources: 3, NTargets: 3, Lists: [][]int{{0, 1}, {2, 0}, {1, 2}}}
	good, err := ls.FairDistribution(edgecolor.RepeatedMatching)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Verify(good); err != nil {
		t.Fatal(err)
	}

	// Condition (1): repeat a target within a row.
	bad1 := [][]int{{0, 0}, {1, 2}, {2, 1}}
	if err := ls.Verify(bad1); err == nil {
		t.Fatal("condition (1) violation accepted")
	}
	// Condition (2): unbalanced loads.
	bad2 := [][]int{{0, 1}, {0, 1}, {0, 1}}
	if err := ls.Verify(bad2); err == nil {
		t.Fatal("condition (2) violation accepted")
	}
	// Condition (3): craft equal list values mapped to the same target.
	// Entries (0,0) and (1,1) both have list value 0.
	bad3 := [][]int{{0, 1}, {2, 0}, {1, 2}}
	if bad3[0][0] != bad3[1][1] {
		bad3[1][1] = bad3[0][0]
		bad3[1][0] = 2 // keep row injective
	}
	if err := ls.Verify(bad3); err == nil {
		t.Fatal("condition (3) violation accepted")
	}
	// Wrong shape.
	if err := ls.Verify([][]int{{0, 1}}); err == nil {
		t.Fatal("wrong row count accepted")
	}
	if err := ls.Verify([][]int{{0}, {1}, {2}}); err == nil {
		t.Fatal("wrong row length accepted")
	}
	// Target out of range.
	if err := ls.Verify([][]int{{0, 5}, {1, 2}, {2, 0}}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestFromPermutationValidation(t *testing.T) {
	if _, err := FromPermutation(0, 3, nil); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := FromPermutation(2, 2, []int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := FromPermutation(2, 2, []int{0, 1, 2, 9}); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestFromPermutationListValues(t *testing.T) {
	// POPS(2,2), π = reversal: groups of destinations.
	pi := []int{3, 2, 1, 0}
	ls, err := FromPermutation(2, 2, pi)
	if err != nil {
		t.Fatal(err)
	}
	// Group 0 packets go to 3,2 (group 1); group 1 packets to 1,0 (group 0).
	want := [][]int{{1, 1}, {0, 0}}
	for h := range want {
		for i := range want[h] {
			if ls.Lists[h][i] != want[h][i] {
				t.Fatalf("Lists = %v, want %v", ls.Lists, want)
			}
		}
	}
}

func TestFairDistributionPropertyRandomPermutations(t *testing.T) {
	f := func(dSeed, gSeed uint8, seed int64) bool {
		d := int(dSeed)%8 + 1
		g := int(gSeed)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		pi := randPerm(d*g, rng)
		ls, err := FromPermutation(d, g, pi)
		if err != nil {
			return false
		}
		fd, err := ls.FairDistribution(edgecolor.EulerSplitDC)
		if err != nil {
			return false
		}
		return ls.Verify(fd) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
