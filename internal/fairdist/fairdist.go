// Package fairdist implements list systems and fair distributions — the
// exact formalism of Section 3.1 and Theorem 1 of Mei & Rizzi.
//
// A list system (S, T, L) has n1 = |S| source nodes, n2 = |T| target nodes,
// and assigns to each source s a list L_s of Δ1 not-necessarily-distinct
// elements of S. It is proper when n2 divides n1·Δ1 and every element of S
// appears exactly Δ1 times across all lists. Theorem 1: every proper list
// system admits a fair distribution f: S×N_Δ1 → T with
//
//	(1) |{f(s,i) : i}| = Δ1 for every s            (per-source injectivity)
//	(2) |{(s,i) : f(s,i) = t}| = Δ2 for every t    (exact balance, Δ2 = n1Δ1/n2)
//	(3) L(s1,i1) = L(s2,i2) ∧ (s1,i1) ≠ (s2,i2) ⇒ f(s1,i1) ≠ f(s2,i2)
//	                                               (same list value ⇒ distinct targets)
//
// The construction reduces to the balanced bipartite edge coloring of
// package edgecolor: build the multigraph with an edge (s, L(s,i)) per list
// entry, color it with n2 colors and exact class size Δ2; the color of entry
// (s, i) is f(s, i).
package fairdist

import (
	"fmt"

	"pops/internal/edgecolor"
	"pops/internal/graph"
)

// ListSystem is the triple (S, T, L) of the paper with S = {0..NSources-1},
// T = {0..NTargets-1}. Lists[s][i] ∈ S is the i-th element of L_s; all lists
// must have equal length Δ1.
type ListSystem struct {
	NSources int
	NTargets int
	Lists    [][]int
}

// Delta1 returns the common list length Δ1, or 0 for an empty system.
func (ls *ListSystem) Delta1() int {
	if len(ls.Lists) == 0 {
		return 0
	}
	return len(ls.Lists[0])
}

// Delta2 returns Δ2 = n1·Δ1 / n2, the exact per-target load of a fair
// distribution. It panics if NTargets is zero.
func (ls *ListSystem) Delta2() int {
	return ls.NSources * ls.Delta1() / ls.NTargets
}

// Check validates structural well-formedness: source count matches the list
// count, every list has the same length, and all list values lie in S.
func (ls *ListSystem) Check() error {
	if ls.NSources < 0 || ls.NTargets < 0 {
		return fmt.Errorf("fairdist: negative sizes (%d, %d)", ls.NSources, ls.NTargets)
	}
	if len(ls.Lists) != ls.NSources {
		return fmt.Errorf("fairdist: %d lists for %d sources", len(ls.Lists), ls.NSources)
	}
	d1 := ls.Delta1()
	for s, list := range ls.Lists {
		if len(list) != d1 {
			return fmt.Errorf("fairdist: list %d has length %d, want %d", s, len(list), d1)
		}
		for i, v := range list {
			if v < 0 || v >= ls.NSources {
				return fmt.Errorf("fairdist: L(%d,%d) = %d outside S", s, i, v)
			}
		}
	}
	return nil
}

// IsProper reports whether the list system is proper: n2 divides n1·Δ1 and
// every element of S appears exactly Δ1 times across all lists. A structural
// error from Check is returned as improper with that error.
func (ls *ListSystem) IsProper() (bool, error) {
	if err := ls.Check(); err != nil {
		return false, err
	}
	d1 := ls.Delta1()
	if ls.NTargets == 0 {
		return ls.NSources == 0 || d1 == 0, nil
	}
	if (ls.NSources*d1)%ls.NTargets != 0 {
		return false, nil
	}
	occur := make([]int, ls.NSources)
	for _, list := range ls.Lists {
		for _, v := range list {
			occur[v]++
		}
	}
	for _, c := range occur {
		if c != d1 {
			return false, nil
		}
	}
	return true, nil
}

// Multiplicity returns l(s, s'): how many times s' occurs in list L_s.
func (ls *ListSystem) Multiplicity(s, sp int) int {
	n := 0
	for _, v := range ls.Lists[s] {
		if v == sp {
			n++
		}
	}
	return n
}

// Graph builds the bipartite multigraph G = (S, S'; E) from the proof of
// Theorem 1: one edge (s, L(s,i)) per list entry. Edge IDs are assigned in
// (s, i) row-major order, so entry (s, i) is edge s·Δ1 + i.
func (ls *ListSystem) Graph() *graph.Bipartite {
	b := graph.New(ls.NSources, ls.NSources)
	for s, list := range ls.Lists {
		for _, v := range list {
			b.AddEdge(s, v)
		}
	}
	return b
}

// FairDistribution computes a fair distribution for a proper list system
// using the given factorization algorithm. The result F satisfies
// F[s][i] = f(s, i) ∈ T and the invariants (1)–(3); Verify re-checks them.
//
// It returns an error if the system is not proper, or if Δ1 > n2 (in which
// case condition (1) is unsatisfiable and no fair distribution exists).
func (ls *ListSystem) FairDistribution(algo edgecolor.Algorithm) ([][]int, error) {
	proper, err := ls.IsProper()
	if err != nil {
		return nil, err
	}
	if !proper {
		return nil, fmt.Errorf("fairdist: list system is not proper")
	}
	d1 := ls.Delta1()
	if d1 > ls.NTargets {
		return nil, fmt.Errorf("fairdist: Δ1=%d exceeds |T|=%d; condition (1) unsatisfiable", d1, ls.NTargets)
	}
	if ls.NSources == 0 || d1 == 0 {
		return make([][]int, ls.NSources), nil
	}

	g := ls.Graph()
	colors, err := edgecolor.Balanced(g, ls.NTargets, algo)
	if err != nil {
		return nil, fmt.Errorf("fairdist: balanced coloring: %w", err)
	}
	f := make([][]int, ls.NSources)
	for s := range f {
		row := make([]int, d1)
		for i := range row {
			row[i] = colors[s*d1+i]
		}
		f[s] = row
	}
	return f, nil
}

// Verify checks that f is a fair distribution for the list system: correct
// shape, values in T, and invariants (1)–(3). It returns a descriptive error
// for the first violation found.
func (ls *ListSystem) Verify(f [][]int) error {
	if err := ls.Check(); err != nil {
		return err
	}
	d1 := ls.Delta1()
	if len(f) != ls.NSources {
		return fmt.Errorf("fairdist: f has %d rows, want %d", len(f), ls.NSources)
	}
	load := make([]int, ls.NTargets)
	for s, row := range f {
		if len(row) != d1 {
			return fmt.Errorf("fairdist: f[%d] has %d entries, want %d", s, len(row), d1)
		}
		seen := make(map[int]bool, d1)
		for i, t := range row {
			if t < 0 || t >= ls.NTargets {
				return fmt.Errorf("fairdist: f(%d,%d) = %d outside T", s, i, t)
			}
			if seen[t] {
				return fmt.Errorf("fairdist: condition (1) violated: f(%d,·) repeats target %d", s, t)
			}
			seen[t] = true
			load[t]++
		}
	}
	d2 := ls.Delta2()
	for t, c := range load {
		if c != d2 {
			return fmt.Errorf("fairdist: condition (2) violated: target %d has load %d, want %d", t, c, d2)
		}
	}
	// Condition (3): entries with the same list value must get distinct
	// targets.
	type key struct{ value, target int }
	prev := make(map[key][2]int)
	for s, row := range f {
		for i, t := range row {
			k := key{ls.Lists[s][i], t}
			if p, dup := prev[k]; dup {
				return fmt.Errorf("fairdist: condition (3) violated: entries (%d,%d) and (%d,%d) share value %d and target %d",
					p[0], p[1], s, i, k.value, t)
			}
			prev[k] = [2]int{s, i}
		}
	}
	return nil
}
