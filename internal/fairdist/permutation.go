package fairdist

import "fmt"

// FromPermutation builds the list system that Theorem 2 derives from a
// permutation routing instance on POPS(d, g): sources are the g groups,
// targets number max(d, g), and L(h, i) = group(π(i + h·d)) — the
// destination group of the i-th packet of group h.
//
// For 1 < d ≤ g this is the paper's (N_g, N_g, L); for d > g it is
// (N_g, N_d, L). Both are proper because π is a permutation: every group is
// the destination of exactly d packets, so every element of S occurs exactly
// Δ1 = d times, and n2 divides n1·Δ1 = g·d in both cases.
func FromPermutation(d, g int, pi []int) (*ListSystem, error) {
	if d < 1 || g < 1 {
		return nil, fmt.Errorf("fairdist: invalid POPS shape d=%d g=%d", d, g)
	}
	n := d * g
	if len(pi) != n {
		return nil, fmt.Errorf("fairdist: permutation length %d, want %d", len(pi), n)
	}
	targets := g
	if d > g {
		targets = d
	}
	ls := &ListSystem{
		NSources: g,
		NTargets: targets,
		Lists:    make([][]int, g),
	}
	for h := 0; h < g; h++ {
		row := make([]int, d)
		for i := 0; i < d; i++ {
			dest := pi[i+h*d]
			if dest < 0 || dest >= n {
				return nil, fmt.Errorf("fairdist: π(%d) = %d outside [0,%d)", i+h*d, dest, n)
			}
			row[i] = dest / d
		}
		ls.Lists[h] = row
	}
	return ls, nil
}
