package mesh

import (
	"math/rand"
	"testing"

	"pops/internal/core"
	"pops/internal/perms"
)

func seq(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(i)
	}
	return v
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, 1, 3, nil, core.Options{}); err == nil {
		t.Fatal("empty mesh accepted")
	}
	if _, err := New(2, 3, 2, 2, nil, core.Options{}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := New(2, 2, 2, 2, []int{0, 1, 2}, core.Options{}); err == nil {
		t.Fatal("short mapping accepted")
	}
	if _, err := New(2, 2, 2, 2, []int{0, 0, 1, 2}, core.Options{}); err == nil {
		t.Fatal("bad mapping accepted")
	}
}

func TestShiftDirections(t *testing.T) {
	// 2x3 torus on POPS(2,3).
	m, err := New(2, 3, 2, 3, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(seq(6)); err != nil {
		t.Fatal(err)
	}
	// Shift down: (i,j) -> (i+1,j). After it, At(1,0) must be old (0,0)=0.
	if err := m.Shift(1, 0); err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 0 || m.At(0, 0) != 3 {
		t.Fatalf("down shift wrong: %v", m.Values)
	}
	// Shift back up restores.
	if err := m.Shift(-1, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Values {
		if v != int64(i) {
			t.Fatalf("up shift did not undo down shift: %v", m.Values)
		}
	}
	// Right shift with wraparound: (0,2) -> (0,0).
	if err := m.Shift(0, 1); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 2 {
		t.Fatalf("right shift wrong: %v", m.Values)
	}
}

func TestShiftCostMatchesTheorem(t *testing.T) {
	for _, tc := range []struct{ rows, cols, d, g int }{
		{2, 2, 2, 2}, {4, 4, 8, 2}, {4, 2, 2, 4}, {3, 3, 9, 1}, {2, 2, 1, 4},
	} {
		m, err := New(tc.rows, tc.cols, tc.d, tc.g, nil, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Load(seq(m.N())); err != nil {
			t.Fatal(err)
		}
		if err := m.Shift(1, 0); err != nil {
			t.Fatalf("%dx%d on POPS(%d,%d): %v", tc.rows, tc.cols, tc.d, tc.g, err)
		}
		if got, want := m.SlotsUsed(), core.OptimalSlots(tc.d, tc.g); got != want {
			t.Fatalf("%dx%d on POPS(%d,%d): slots = %d, want %d", tc.rows, tc.cols, tc.d, tc.g, got, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	m, err := New(3, 3, 3, 3, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(seq(9)); err != nil {
		t.Fatal(err)
	}
	if err := m.Transpose(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != int64(j*3+i) {
				t.Fatalf("transpose wrong at (%d,%d): %v", i, j, m.Values)
			}
		}
	}
	// Non-square transpose is rejected.
	m2, err := New(2, 3, 2, 3, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Transpose(); err == nil {
		t.Fatal("non-square transpose accepted")
	}
}

func TestRowSum(t *testing.T) {
	m, err := New(2, 3, 3, 2, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load([]int64{1, 2, 3, 10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if err := m.RowSum(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if m.At(0, j) != 6 {
			t.Fatalf("row 0 sum = %v", m.Values)
		}
		if m.At(1, j) != 60 {
			t.Fatalf("row 1 sum = %v", m.Values)
		}
	}
	// Cost: (cols-1) primitive steps.
	if got, want := m.SlotsUsed(), 2*m.StepCost(); got != want {
		t.Fatalf("slots = %d, want %d", got, want)
	}
}

func TestMappingIndependence(t *testing.T) {
	// Same data movement, same cost, any mapping (E8 for the mesh).
	rng := rand.New(rand.NewSource(9))
	rows, cols, d, g := 4, 4, 4, 4
	for _, mapping := range [][]int{nil, perms.Random(16, rng)} {
		m, err := New(rows, cols, d, g, mapping, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Load(seq(16)); err != nil {
			t.Fatal(err)
		}
		if err := m.Shift(1, 1); err != nil {
			t.Fatal(err)
		}
		if m.At(1, 1) != 0 {
			t.Fatalf("diagonal shift wrong under mapping: %v", m.Values)
		}
		if got, want := m.SlotsUsed(), core.OptimalSlots(d, g); got != want {
			t.Fatalf("slots = %d, want %d", got, want)
		}
	}
}

func TestLoadValidation(t *testing.T) {
	m, err := New(2, 2, 2, 2, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load([]int64{1}); err == nil {
		t.Fatal("short load accepted")
	}
}
