// Package mesh simulates an R×C SIMD mesh with wraparound (a torus) on a
// POPS(d, g) network with d·g = R·C, reproducing the setting of Sahni 2000b,
// Theorem 2. Element (i, j) lives at mesh processor i·C + j; the four
// primitive SIMD steps move data one position up/down/left/right with
// wraparound, each a permutation routed in 2⌈d/g⌉ slots (1 when d = 1) —
// under any one-to-one mapping of mesh processors onto POPS processors, by
// Mei & Rizzi's Theorem 2.
package mesh

import (
	"fmt"

	"pops/internal/core"
	"pops/internal/perms"
	"pops/internal/simd"
)

// Machine is a SIMD torus with one int64 register per processor, executed
// on a POPS network.
type Machine struct {
	Rows, Cols int
	// Mapping[m] is the POPS processor simulating mesh processor m.
	Mapping []int
	// Values[m] is the register of mesh processor m (row-major).
	Values []int64

	inv    []int
	router *simd.Router
}

// New builds an R×C torus on POPS(d, g) with d·g = R·C. mapping may be nil
// for the identity.
func New(rows, cols, d, g int, mapping []int, opts core.Options) (*Machine, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("mesh: invalid size %dx%d", rows, cols)
	}
	n := rows * cols
	if d*g != n {
		return nil, fmt.Errorf("mesh: POPS(%d,%d) has %d processors, mesh needs %d", d, g, d*g, n)
	}
	if mapping == nil {
		mapping = perms.Identity(n)
	}
	if len(mapping) != n {
		return nil, fmt.Errorf("mesh: mapping length %d, want %d", len(mapping), n)
	}
	if err := perms.Validate(mapping); err != nil {
		return nil, fmt.Errorf("mesh: mapping: %w", err)
	}
	r, err := simd.NewRouter(d, g, opts)
	if err != nil {
		return nil, err
	}
	return &Machine{
		Rows:    rows,
		Cols:    cols,
		Mapping: append([]int(nil), mapping...),
		Values:  make([]int64, n),
		inv:     perms.Inverse(mapping),
		router:  r,
	}, nil
}

// N returns the number of processors.
func (m *Machine) N() int { return m.Rows * m.Cols }

// SlotsUsed returns the accumulated POPS slot cost.
func (m *Machine) SlotsUsed() int { return m.router.Slots }

// Load sets the registers from a row-major slice.
func (m *Machine) Load(vals []int64) error {
	if len(vals) != m.N() {
		return fmt.Errorf("mesh: loading %d values into %d processors", len(vals), m.N())
	}
	copy(m.Values, vals)
	return nil
}

// At returns the register of element (i, j).
func (m *Machine) At(i, j int) int64 { return m.Values[i*m.Cols+j] }

// permute routes mesh values along the mesh-index permutation mpi.
func (m *Machine) permute(mpi []int) error {
	n := m.N()
	popsPi := make([]int, n)
	popsVals := make([]int64, n)
	for p := 0; p < n; p++ {
		popsPi[p] = m.Mapping[mpi[m.inv[p]]]
	}
	for idx, v := range m.Values {
		popsVals[m.Mapping[idx]] = v
	}
	if err := m.router.Permute(popsVals, popsPi); err != nil {
		return err
	}
	for idx := range m.Values {
		m.Values[idx] = popsVals[m.Mapping[idx]]
	}
	return nil
}

// Shift moves every element dr rows down and dc columns right with
// wraparound, as one routed permutation. (dr, dc) = (±1, 0) / (0, ±1) are
// the primitive SIMD mesh steps.
func (m *Machine) Shift(dr, dc int) error {
	mpi, err := perms.MeshShift(m.Rows, m.Cols, dr, dc)
	if err != nil {
		return err
	}
	return m.permute(mpi)
}

// Transpose transposes a square torus in place, as one routed permutation —
// the operation whose ⌈d/g⌉ slot optimum Sahni 2000a establishes (our
// general router spends 2⌈d/g⌉).
func (m *Machine) Transpose() error {
	if m.Rows != m.Cols {
		return fmt.Errorf("mesh: transpose of non-square %dx%d torus", m.Rows, m.Cols)
	}
	return m.permute(perms.Transpose(m.Rows, m.Cols))
}

// RowSum leaves in every processor the sum of its row, using Cols−1
// left-rotations with accumulation.
func (m *Machine) RowSum() error {
	acc := append([]int64(nil), m.Values...)
	for s := 1; s < m.Cols; s++ {
		if err := m.Shift(0, -1); err != nil {
			return err
		}
		for i := range acc {
			acc[i] += m.Values[i]
		}
	}
	copy(m.Values, acc)
	return nil
}

// StepCost returns the slot cost of one primitive mesh step on this
// machine's network: 2⌈d/g⌉, or 1 when d = 1.
func (m *Machine) StepCost() int {
	return core.OptimalSlots(m.router.Net.D, m.router.Net.G)
}
