// Package edgecolor implements bipartite edge coloring — the constructive
// core of Theorem 1 of Mei & Rizzi. By König's edge-coloring theorem a
// bipartite multigraph with maximum degree Δ admits a proper Δ-edge-coloring,
// and a k-regular bipartite multigraph decomposes into k perfect matchings
// (a 1-factorization).
//
// Three factorization algorithms are provided, mirroring the algorithm menu
// of the paper's Remark 1:
//
//   - RepeatedMatching: extract k perfect matchings with Hopcroft–Karp,
//     O(k·m·√n). The simple baseline.
//   - EulerSplitDC: divide and conquer — Euler-split even-degree graphs,
//     peel one perfect matching (Alon's Euler-halving) at odd degrees,
//     ≈O(m·log²) in practice. The approach behind Kapoor–Rizzi and Rizzi.
//   - Insertion: the classic alternating-path insertion proof of König's
//     theorem, O(n·m); colors arbitrary (non-regular) bipartite multigraphs
//     with Δ colors, corresponding to the O(Δm)-style bound of Schrijver.
//
// All three run on the arena-backed Factorizer engine: an iterative work
// stack over index-range views of one edge array, bit-vector membership
// sets, and matching/splitting routines that write into reusable buffers.
// The package-level Factorize, Balanced and ColorInsertion are thin
// compatibility wrappers over a fresh arena; planners that color repeatedly
// hold a Factorizer (one per worker) and stay allocation-free after warm-up.
//
// Balanced colorings with exact color-class sizes — the actual statement of
// Theorem 1, needed when the network has fewer packets per group than groups
// (d < g) — are in balanced.go.
package edgecolor

import (
	"fmt"

	"pops/internal/graph"
)

// Algorithm selects a 1-factorization strategy.
type Algorithm int

const (
	// RepeatedMatching extracts perfect matchings one at a time with
	// Hopcroft–Karp.
	RepeatedMatching Algorithm = iota
	// EulerSplitDC recursively halves the graph with Euler splits, peeling a
	// perfect matching (Alon Euler-halving) when the degree is odd.
	EulerSplitDC
	// Insertion colors edges one at a time, repairing conflicts along
	// alternating paths (the constructive proof of König's theorem).
	Insertion
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case RepeatedMatching:
		return "repeated-matching"
	case EulerSplitDC:
		return "euler-split"
	case Insertion:
		return "insertion"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Factorize decomposes a k-regular bipartite multigraph with equal sides
// into k perfect matchings and returns them as slices of edge IDs, one slice
// per color class. It returns an error if the graph is not regular or the
// sides differ. It is the convenience form of Factorizer.Factorize with a
// throwaway arena; repeated callers hold a Factorizer and reuse its scratch.
func Factorize(b *graph.Bipartite, algo Algorithm) ([][]int, error) {
	var f Factorizer
	return f.Factorize(b, algo)
}

// ColorInsertion properly edge-colors an arbitrary bipartite multigraph with
// Δ = max degree colors using alternating-path repairs, in O(n·m) time. It
// returns the color of every edge (indexed by edge ID) and the number of
// colors Δ.
func ColorInsertion(b *graph.Bipartite) (colors []int, numColors int, err error) {
	var f Factorizer
	colors = make([]int, b.NumEdges())
	numColors, err = f.colorInsertionInto(colors, b)
	if err != nil {
		return nil, 0, err
	}
	return colors, numColors, nil
}

// colorInsertionInto is the arena form of ColorInsertion: the per-node color
// tables live in the Factorizer as flat slices (node*Δ+color indexing) and
// the alternating path reuses one buffer, so steady-state calls do not
// allocate. colors must have length b.NumEdges(); it is fully overwritten.
func (f *Factorizer) colorInsertionInto(colors []int, b *graph.Bipartite) (int, error) {
	delta := b.MaxDegree()
	nL, nR := b.NLeft(), b.NRight()
	// colL[l*Δ+c] / colR[r*Δ+c] = edge ID with color c at that node, or -1.
	f.colL = graph.ResizeInts(f.colL, nL*delta)
	f.colR = graph.ResizeInts(f.colR, nR*delta)
	for i := range f.colL {
		f.colL[i] = -1
	}
	for i := range f.colR {
		f.colR[i] = -1
	}
	for i := range colors {
		colors[i] = -1
	}

	for id := 0; id < b.NumEdges(); id++ {
		e := b.Edge(id)
		a := freeAt(f.colL, e.L, delta)
		bFree := freeAt(f.colR, e.R, delta)
		if a == -1 || bFree == -1 {
			return 0, fmt.Errorf("edgecolor: no free color at edge %d (degree bookkeeping broken)", id)
		}
		if f.colR[e.R*delta+a] == -1 {
			f.assign(colors, b, delta, id, a)
			continue
		}
		if f.colL[e.L*delta+bFree] == -1 {
			f.assign(colors, b, delta, id, bFree)
			continue
		}
		// a is free at L but used at R; bFree is free at R but used at L.
		// Swap colors a <-> bFree along the alternating path starting from
		// e.R via its a-colored edge. The path can never reach e.L: every
		// arrival at a left node uses color a, which is free at e.L.
		f.swapAlternating(colors, b, delta, e.R, a, bFree)
		if f.colR[e.R*delta+a] != -1 || f.colL[e.L*delta+a] != -1 {
			return 0, fmt.Errorf("edgecolor: alternating swap failed to free color %d at edge %d", a, id)
		}
		f.assign(colors, b, delta, id, a)
	}
	return delta, nil
}

// freeAt returns the first color with no edge at node v, or -1.
func freeAt(tab []int, v, delta int) int {
	row := tab[v*delta : (v+1)*delta]
	for c, id := range row {
		if id == -1 {
			return c
		}
	}
	return -1
}

func (f *Factorizer) assign(colors []int, b *graph.Bipartite, delta, id, c int) {
	e := b.Edge(id)
	colors[id] = c
	f.colL[e.L*delta+c] = id
	f.colR[e.R*delta+c] = id
}

// swapAlternating exchanges colors a and bc along the maximal alternating
// path starting at right node r with an a-colored edge. The path is
// collected first and recolored afterwards: recoloring while walking would
// overwrite the table entry that points at the next path edge.
func (f *Factorizer) swapAlternating(colors []int, b *graph.Bipartite, delta, r, a, bc int) {
	f.path = f.path[:0]
	curRight := true
	v := r
	want := a
	for {
		var id int
		if curRight {
			id = f.colR[v*delta+want]
		} else {
			id = f.colL[v*delta+want]
		}
		if id == -1 {
			break
		}
		f.path = append(f.path, id)
		e := b.Edge(id)
		if curRight {
			v = e.L
		} else {
			v = e.R
		}
		curRight = !curRight
		if want == a {
			want = bc
		} else {
			want = a
		}
	}
	// Clear all old entries, then set all new ones. Consecutive path edges
	// share a node but receive different new colors, so the set phase never
	// collides with itself.
	for _, id := range f.path {
		e := b.Edge(id)
		c := colors[id]
		f.colL[e.L*delta+c] = -1
		f.colR[e.R*delta+c] = -1
	}
	for _, id := range f.path {
		e := b.Edge(id)
		c := colors[id]
		nc := a
		if c == a {
			nc = bc
		}
		colors[id] = nc
		f.colL[e.L*delta+nc] = id
		f.colR[e.R*delta+nc] = id
	}
}

// Verify checks that colors (indexed by edge ID, values in [0, numColors))
// is a proper edge coloring of b: no node has two incident edges of the same
// color. If exactClassSize >= 0 it additionally checks that every color
// class has exactly that many edges. It returns nil if all checks pass.
func Verify(b *graph.Bipartite, colors []int, numColors, exactClassSize int) error {
	if len(colors) != b.NumEdges() {
		return fmt.Errorf("edgecolor: %d colors for %d edges", len(colors), b.NumEdges())
	}
	classSize := make([]int, numColors)
	seenL := make(map[[2]int]int)
	seenR := make(map[[2]int]int)
	for id, c := range colors {
		if c < 0 || c >= numColors {
			return fmt.Errorf("edgecolor: edge %d has color %d outside [0,%d)", id, c, numColors)
		}
		classSize[c]++
		e := b.Edge(id)
		if prev, dup := seenL[[2]int{e.L, c}]; dup {
			return fmt.Errorf("edgecolor: left node %d has color %d on edges %d and %d", e.L, c, prev, id)
		}
		if prev, dup := seenR[[2]int{e.R, c}]; dup {
			return fmt.Errorf("edgecolor: right node %d has color %d on edges %d and %d", e.R, c, prev, id)
		}
		seenL[[2]int{e.L, c}] = id
		seenR[[2]int{e.R, c}] = id
	}
	if exactClassSize >= 0 {
		for c, size := range classSize {
			if size != exactClassSize {
				return fmt.Errorf("edgecolor: color class %d has %d edges, want %d", c, size, exactClassSize)
			}
		}
	}
	return nil
}

// ClassesToColors converts a list of color classes (edge-ID slices) into a
// per-edge color array for a graph with m edges. Unlisted edges get -1.
func ClassesToColors(m int, classes [][]int) []int {
	colors := make([]int, m)
	for i := range colors {
		colors[i] = -1
	}
	for c, class := range classes {
		for _, id := range class {
			colors[id] = c
		}
	}
	return colors
}
