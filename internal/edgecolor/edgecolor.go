// Package edgecolor implements bipartite edge coloring — the constructive
// core of Theorem 1 of Mei & Rizzi. By König's edge-coloring theorem a
// bipartite multigraph with maximum degree Δ admits a proper Δ-edge-coloring,
// and a k-regular bipartite multigraph decomposes into k perfect matchings
// (a 1-factorization).
//
// Three factorization algorithms are provided, mirroring the algorithm menu
// of the paper's Remark 1:
//
//   - RepeatedMatching: extract k perfect matchings with Hopcroft–Karp,
//     O(k·m·√n). The simple baseline.
//   - EulerSplitDC: divide and conquer — Euler-split even-degree graphs,
//     peel one perfect matching (Alon's Euler-halving) at odd degrees,
//     ≈O(m·log²) in practice. The approach behind Kapoor–Rizzi and Rizzi.
//   - Insertion: the classic alternating-path insertion proof of König's
//     theorem, O(n·m); colors arbitrary (non-regular) bipartite multigraphs
//     with Δ colors, corresponding to the O(Δm)-style bound of Schrijver.
//
// Balanced colorings with exact color-class sizes — the actual statement of
// Theorem 1, needed when the network has fewer packets per group than groups
// (d < g) — are in balanced.go.
package edgecolor

import (
	"fmt"

	"pops/internal/graph"
	"pops/internal/matching"
)

// Algorithm selects a 1-factorization strategy.
type Algorithm int

const (
	// RepeatedMatching extracts perfect matchings one at a time with
	// Hopcroft–Karp.
	RepeatedMatching Algorithm = iota
	// EulerSplitDC recursively halves the graph with Euler splits, peeling a
	// perfect matching (Alon Euler-halving) when the degree is odd.
	EulerSplitDC
	// Insertion colors edges one at a time, repairing conflicts along
	// alternating paths (the constructive proof of König's theorem).
	Insertion
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case RepeatedMatching:
		return "repeated-matching"
	case EulerSplitDC:
		return "euler-split"
	case Insertion:
		return "insertion"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Factorize decomposes a k-regular bipartite multigraph with equal sides
// into k perfect matchings and returns them as slices of edge IDs, one slice
// per color class. It returns an error if the graph is not regular or the
// sides differ.
func Factorize(b *graph.Bipartite, algo Algorithm) ([][]int, error) {
	if b.NLeft() != b.NRight() {
		return nil, fmt.Errorf("edgecolor: sides differ (%d vs %d)", b.NLeft(), b.NRight())
	}
	k, ok := b.RegularDegree()
	if !ok {
		return nil, graph.ErrNotBipartiteRegular
	}
	switch algo {
	case RepeatedMatching:
		return factorizeRepeated(b, k)
	case EulerSplitDC:
		return factorizeEuler(b, k)
	case Insertion:
		colors, c, err := ColorInsertion(b)
		if err != nil {
			return nil, err
		}
		if c > k {
			return nil, fmt.Errorf("edgecolor: insertion used %d colors on %d-regular graph", c, k)
		}
		classes := make([][]int, k)
		for id, col := range colors {
			classes[col] = append(classes[col], id)
		}
		return classes, nil
	default:
		return nil, fmt.Errorf("edgecolor: unknown algorithm %v", algo)
	}
}

func factorizeRepeated(b *graph.Bipartite, k int) ([][]int, error) {
	classes := make([][]int, 0, k)
	// remaining maps current-subgraph edge IDs back to the original graph.
	cur := b
	curToOrig := make([]int, b.NumEdges())
	for i := range curToOrig {
		curToOrig[i] = i
	}
	for round := 0; round < k; round++ {
		m := matching.HopcroftKarp(cur)
		if len(m) != cur.NLeft() {
			return nil, fmt.Errorf("edgecolor: round %d: matching size %d of %d (graph not regular?)",
				round, len(m), cur.NLeft())
		}
		class := make([]int, 0, len(m))
		inMatch := make(map[int]bool, len(m))
		for _, id := range m {
			class = append(class, curToOrig[id])
			inMatch[id] = true
		}
		classes = append(classes, class)
		rest := make([]int, 0, cur.NumEdges()-len(m))
		for id := 0; id < cur.NumEdges(); id++ {
			if !inMatch[id] {
				rest = append(rest, id)
			}
		}
		sub, origIDs := cur.SubgraphByEdges(rest)
		next := make([]int, len(origIDs))
		for newID, oldID := range origIDs {
			next[newID] = curToOrig[oldID]
		}
		cur, curToOrig = sub, next
	}
	return classes, nil
}

func factorizeEuler(b *graph.Bipartite, k int) ([][]int, error) {
	switch {
	case k == 0:
		return nil, nil
	case k == 1:
		all := make([]int, b.NumEdges())
		for i := range all {
			all[i] = i
		}
		return [][]int{all}, nil
	case k%2 == 1:
		m, err := matching.PerfectMatchingRegular(b)
		if err != nil {
			return nil, fmt.Errorf("edgecolor: peeling matching at degree %d: %w", k, err)
		}
		inMatch := make(map[int]bool, len(m))
		for _, id := range m {
			inMatch[id] = true
		}
		rest := make([]int, 0, b.NumEdges()-len(m))
		for id := 0; id < b.NumEdges(); id++ {
			if !inMatch[id] {
				rest = append(rest, id)
			}
		}
		sub, orig := b.SubgraphByEdges(rest)
		classes, err := factorizeEuler(sub, k-1)
		if err != nil {
			return nil, err
		}
		out := make([][]int, 0, k)
		for _, class := range classes {
			mapped := make([]int, len(class))
			for i, id := range class {
				mapped[i] = orig[id]
			}
			out = append(out, mapped)
		}
		return append(out, m), nil
	default:
		a, bb, err := graph.EulerSplit(b)
		if err != nil {
			return nil, err
		}
		subA, origA := b.SubgraphByEdges(a)
		subB, origB := b.SubgraphByEdges(bb)
		classesA, err := factorizeEuler(subA, k/2)
		if err != nil {
			return nil, err
		}
		classesB, err := factorizeEuler(subB, k/2)
		if err != nil {
			return nil, err
		}
		out := make([][]int, 0, k)
		for _, class := range classesA {
			mapped := make([]int, len(class))
			for i, id := range class {
				mapped[i] = origA[id]
			}
			out = append(out, mapped)
		}
		for _, class := range classesB {
			mapped := make([]int, len(class))
			for i, id := range class {
				mapped[i] = origB[id]
			}
			out = append(out, mapped)
		}
		return out, nil
	}
}

// ColorInsertion properly edge-colors an arbitrary bipartite multigraph with
// Δ = max degree colors using alternating-path repairs, in O(n·m) time. It
// returns the color of every edge (indexed by edge ID) and the number of
// colors Δ.
func ColorInsertion(b *graph.Bipartite) (colors []int, numColors int, err error) {
	delta := b.MaxDegree()
	nL, nR := b.NLeft(), b.NRight()
	// colL[l][c] / colR[r][c] = edge ID with color c at that node, or -1.
	colL := newTable(nL, delta)
	colR := newTable(nR, delta)
	colors = make([]int, b.NumEdges())
	for i := range colors {
		colors[i] = -1
	}

	freeAt := func(tab [][]int, v int) int {
		for c, id := range tab[v] {
			if id == -1 {
				return c
			}
		}
		return -1
	}

	for id := 0; id < b.NumEdges(); id++ {
		e := b.Edge(id)
		a := freeAt(colL, e.L)
		bFree := freeAt(colR, e.R)
		if a == -1 || bFree == -1 {
			return nil, 0, fmt.Errorf("edgecolor: no free color at edge %d (degree bookkeeping broken)", id)
		}
		if colR[e.R][a] == -1 {
			assign(colors, colL, colR, b, id, a)
			continue
		}
		if colL[e.L][bFree] == -1 {
			assign(colors, colL, colR, b, id, bFree)
			continue
		}
		// a is free at L but used at R; bFree is free at R but used at L.
		// Swap colors a <-> bFree along the alternating path starting from
		// e.R via its a-colored edge. The path can never reach e.L: every
		// arrival at a left node uses color a, which is free at e.L.
		swapAlternating(colors, colL, colR, b, e.R, a, bFree)
		if colR[e.R][a] != -1 || colL[e.L][a] != -1 {
			return nil, 0, fmt.Errorf("edgecolor: alternating swap failed to free color %d at edge %d", a, id)
		}
		assign(colors, colL, colR, b, id, a)
	}
	return colors, delta, nil
}

func newTable(n, delta int) [][]int {
	flat := make([]int, n*delta)
	for i := range flat {
		flat[i] = -1
	}
	tab := make([][]int, n)
	for i := range tab {
		tab[i] = flat[i*delta : (i+1)*delta]
	}
	return tab
}

func assign(colors []int, colL, colR [][]int, b *graph.Bipartite, id, c int) {
	e := b.Edge(id)
	colors[id] = c
	colL[e.L][c] = id
	colR[e.R][c] = id
}

// swapAlternating exchanges colors a and bc along the maximal alternating
// path starting at right node r with an a-colored edge. The path is
// collected first and recolored afterwards: recoloring while walking would
// overwrite the table entry that points at the next path edge.
func swapAlternating(colors []int, colL, colR [][]int, b *graph.Bipartite, r, a, bc int) {
	path := make([]int, 0, 8)
	curRight := true
	v := r
	want := a
	for {
		var id int
		if curRight {
			id = colR[v][want]
		} else {
			id = colL[v][want]
		}
		if id == -1 {
			break
		}
		path = append(path, id)
		e := b.Edge(id)
		if curRight {
			v = e.L
		} else {
			v = e.R
		}
		curRight = !curRight
		if want == a {
			want = bc
		} else {
			want = a
		}
	}
	// Clear all old entries, then set all new ones. Consecutive path edges
	// share a node but receive different new colors, so the set phase never
	// collides with itself.
	for _, id := range path {
		e := b.Edge(id)
		c := colors[id]
		colL[e.L][c] = -1
		colR[e.R][c] = -1
	}
	for _, id := range path {
		e := b.Edge(id)
		c := colors[id]
		nc := a
		if c == a {
			nc = bc
		}
		colors[id] = nc
		colL[e.L][nc] = id
		colR[e.R][nc] = id
	}
}

// Verify checks that colors (indexed by edge ID, values in [0, numColors))
// is a proper edge coloring of b: no node has two incident edges of the same
// color. If exactClassSize >= 0 it additionally checks that every color
// class has exactly that many edges. It returns nil if all checks pass.
func Verify(b *graph.Bipartite, colors []int, numColors, exactClassSize int) error {
	if len(colors) != b.NumEdges() {
		return fmt.Errorf("edgecolor: %d colors for %d edges", len(colors), b.NumEdges())
	}
	classSize := make([]int, numColors)
	seenL := make(map[[2]int]int)
	seenR := make(map[[2]int]int)
	for id, c := range colors {
		if c < 0 || c >= numColors {
			return fmt.Errorf("edgecolor: edge %d has color %d outside [0,%d)", id, c, numColors)
		}
		classSize[c]++
		e := b.Edge(id)
		if prev, dup := seenL[[2]int{e.L, c}]; dup {
			return fmt.Errorf("edgecolor: left node %d has color %d on edges %d and %d", e.L, c, prev, id)
		}
		if prev, dup := seenR[[2]int{e.R, c}]; dup {
			return fmt.Errorf("edgecolor: right node %d has color %d on edges %d and %d", e.R, c, prev, id)
		}
		seenL[[2]int{e.L, c}] = id
		seenR[[2]int{e.R, c}] = id
	}
	if exactClassSize >= 0 {
		for c, size := range classSize {
			if size != exactClassSize {
				return fmt.Errorf("edgecolor: color class %d has %d edges, want %d", c, size, exactClassSize)
			}
		}
	}
	return nil
}

// ClassesToColors converts a list of color classes (edge-ID slices) into a
// per-edge color array for a graph with m edges. Unlisted edges get -1.
func ClassesToColors(m int, classes [][]int) []int {
	colors := make([]int, m)
	for i := range colors {
		colors[i] = -1
	}
	for c, class := range classes {
		for _, id := range class {
			colors[id] = c
		}
	}
	return colors
}
