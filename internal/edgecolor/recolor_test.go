package edgecolor

import (
	"sort"
	"testing"

	"pops/internal/graph"
)

// properColoring checks the recolorer's coloring against the graph directly.
func properColoring(t *testing.T, g *graph.Bipartite, r *Recolorer) {
	t.Helper()
	seenL := map[[2]int]int{}
	seenR := map[[2]int]int{}
	for e := 0; e < g.NumEdges(); e++ {
		c := r.Color(e)
		ed := g.Edge(e)
		if prev, ok := seenL[[2]int{c, ed.L}]; ok {
			t.Fatalf("color %d repeated at left %d (edges %d, %d)", c, ed.L, prev, e)
		}
		if prev, ok := seenR[[2]int{c, ed.R}]; ok {
			t.Fatalf("color %d repeated at right %d (edges %d, %d)", c, ed.R, prev, e)
		}
		seenL[[2]int{c, ed.L}] = e
		seenR[[2]int{c, ed.R}] = e
		// Tables agree with the coloring.
		if r.EdgeAtL(ed.L, c) != e || r.EdgeAtR(ed.R, c) != e {
			t.Fatalf("table mismatch for edge %d color %d", e, c)
		}
	}
}

func TestRecolorerRejectsImproper(t *testing.T) {
	g := graph.New(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	if _, err := NewRecolorer(g, []int{0, 0}, 1); err == nil {
		t.Fatal("improper coloring accepted (color repeated at left node)")
	}
	if _, err := NewRecolorer(g, []int{0}, 1); err == nil {
		t.Fatal("short color slice accepted")
	}
	if _, err := NewRecolorer(g, []int{0, 5}, 2); err == nil {
		t.Fatal("out-of-range color accepted")
	}
}

func TestRecolorerRecolorAndGrow(t *testing.T) {
	// K2,2: edges (0,0) (0,1) (1,0) (1,1), properly 2-colored.
	g := graph.New(2, 2)
	g.AddEdge(0, 0) // e0 color 0
	g.AddEdge(0, 1) // e1 color 1
	g.AddEdge(1, 0) // e2 color 1
	g.AddEdge(1, 1) // e3 color 0
	colors := []int{0, 1, 1, 0}
	r, err := NewRecolorer(g, colors, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Color 1 is occupied at both endpoints of e0 — direct move must fail.
	if err := r.Recolor(0, 1); err == nil {
		t.Fatal("Recolor into an occupied color succeeded")
	}
	// Grow and move e0 to a fresh color.
	r.Grow(3)
	if r.ColorCount() != 3 {
		t.Fatalf("ColorCount = %d, want 3", r.ColorCount())
	}
	if err := r.Recolor(0, 2); err != nil {
		t.Fatalf("Recolor into fresh color: %v", err)
	}
	if colors[0] != 2 {
		t.Fatalf("caller slice not updated: colors[0] = %d", colors[0])
	}
	if r.EdgeAtL(0, 0) != -1 || r.EdgeAtL(0, 2) != 0 {
		t.Fatal("tables not moved with the edge")
	}
	properColoring(t, g, r)
	// e3 = (1,1) can join color 2: both its endpoints are free there.
	if err := r.Recolor(3, 2); err != nil {
		t.Fatalf("Recolor e3 into grown color: %v", err)
	}
	// With e0 and e3 gone from color 0, both endpoints of e2 = (1,0) are
	// free there.
	if err := r.Recolor(2, 0); err != nil {
		t.Fatalf("Recolor e2 into vacated color: %v", err)
	}
	properColoring(t, g, r)
}

func TestRecolorerComponentCycle(t *testing.T) {
	// K2,2 with the 2-coloring forms one alternating 4-cycle in {0,1}.
	g := graph.New(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 1)
	r, err := NewRecolorer(g, []int{0, 1, 1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	comp := append([]int(nil), r.Component(0, 1)...)
	sort.Ints(comp)
	if len(comp) != 4 {
		t.Fatalf("component = %v, want all 4 edges", comp)
	}
	r.FlipComponent(comp, 0, 1)
	if r.Color(0) != 1 || r.Color(1) != 0 || r.Color(2) != 0 || r.Color(3) != 1 {
		t.Fatalf("flip produced colors %v", []int{r.Color(0), r.Color(1), r.Color(2), r.Color(3)})
	}
	properColoring(t, g, r)
}

func TestRecolorerComponentPath(t *testing.T) {
	// A 3-edge alternating path: (0,0)c0 — (1,0)c1 — (1,1)c0. Edge (2,2)c1 is
	// a separate component.
	g := graph.New(3, 3)
	g.AddEdge(0, 0) // e0 c0
	g.AddEdge(1, 0) // e1 c1
	g.AddEdge(1, 1) // e2 c0
	g.AddEdge(2, 2) // e3 c1
	r, err := NewRecolorer(g, []int{0, 1, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// From the middle edge, both directions are found.
	comp := append([]int(nil), r.Component(1, 0)...)
	sort.Ints(comp)
	if want := []int{0, 1, 2}; len(comp) != 3 || comp[0] != want[0] || comp[1] != want[1] || comp[2] != want[2] {
		t.Fatalf("component through e1 = %v, want %v", comp, want)
	}
	// From an end edge too.
	comp2 := append([]int(nil), r.Component(0, 1)...)
	sort.Ints(comp2)
	if len(comp2) != 3 {
		t.Fatalf("component through e0 = %v, want 3 edges", comp2)
	}
	// The isolated edge is its own component.
	if comp3 := r.Component(3, 0); len(comp3) != 1 || comp3[0] != 3 {
		t.Fatalf("component through e3 = %v, want [3]", comp3)
	}
	r.FlipComponent(comp, 0, 1)
	if r.Color(0) != 1 || r.Color(1) != 0 || r.Color(2) != 1 || r.Color(3) != 1 {
		t.Fatalf("flip produced colors %v", []int{r.Color(0), r.Color(1), r.Color(2), r.Color(3)})
	}
	properColoring(t, g, r)
}
