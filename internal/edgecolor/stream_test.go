package edgecolor

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pops/internal/graph"
)

// drainStream runs a stream to exhaustion, checking that every yielded
// factor is internally consistent with the colors it wrote and returning
// the per-factor order of emission.
func drainStream(t *testing.T, st *Stream, colors []int, wantFactors int) []int {
	t.Helper()
	for i := range colors {
		colors[i] = -1
	}
	var order []int
	seen := make(map[int]bool)
	for {
		fid, ok, err := st.Next(colors)
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		if !ok {
			break
		}
		if seen[fid] {
			t.Fatalf("stream yielded factor %d twice", fid)
		}
		seen[fid] = true
		order = append(order, fid)
		for _, id := range st.Factor() {
			if colors[id] != fid {
				t.Fatalf("factor %d edge %d has color %d", fid, id, colors[id])
			}
		}
	}
	if st.Produced() != wantFactors || len(order) != wantFactors {
		t.Fatalf("stream produced %d factors, want %d", st.Produced(), wantFactors)
	}
	return order
}

// TestStreamMatchesFactorizeInto drives Start to exhaustion on every
// algorithm and random regular shape, and requires the accumulated colors to
// be identical to the batch FactorizeInto output on a fresh arena.
func TestStreamMatchesFactorizeInto(t *testing.T) {
	for _, algo := range allAlgorithms {
		streamArena := NewFactorizer() // reused across cases: stream state must reset cleanly
		for _, tc := range factorizerCases() {
			b := randomRegular(tc.n, tc.k, rand.New(rand.NewSource(int64(tc.seed))))
			want := make([]int, b.NumEdges())
			if err := NewFactorizer().FactorizeInto(want, b, algo); err != nil {
				t.Fatalf("%v n=%d k=%d: batch: %v", algo, tc.n, tc.k, err)
			}
			got := make([]int, b.NumEdges())
			st := streamArena.Start(b, algo)
			drainStream(t, st, got, tc.k)
			for id := range got {
				if got[id] != want[id] {
					t.Fatalf("%v n=%d k=%d: stream diverges at edge %d: %d vs %d",
						algo, tc.n, tc.k, id, got[id], want[id])
				}
			}
		}
	}
}

// TestStreamBalancedMatchesBalancedInto is the padded (Theorem 1) analogue:
// per-factor filtered emission must reproduce the batch balanced coloring,
// including on shapes where the padding graph grows, shrinks, and repeats.
func TestStreamBalancedMatchesBalancedInto(t *testing.T) {
	cases := []struct{ n, k, colors, seed int }{
		{4, 2, 4, 61}, {6, 3, 6, 62}, {8, 8, 8, 63}, {6, 2, 3, 64},
		{4, 3, 12, 65}, {12, 4, 16, 66}, {4, 2, 4, 61},
	}
	for _, algo := range allAlgorithms {
		f := NewFactorizer()
		for _, tc := range cases {
			b := randomRegular(tc.n, tc.k, rand.New(rand.NewSource(int64(tc.seed))))
			want := make([]int, b.NumEdges())
			if err := NewFactorizer().BalancedInto(want, b, tc.colors, algo); err != nil {
				t.Fatalf("%v n=%d k=%d C=%d: batch: %v", algo, tc.n, tc.k, tc.colors, err)
			}
			got := make([]int, b.NumEdges())
			st := f.StartBalanced(b, tc.colors, algo)
			drainStream(t, st, got, tc.colors)
			for id := range got {
				if got[id] != want[id] {
					t.Fatalf("%v n=%d k=%d C=%d: stream diverges at edge %d: %d vs %d",
						algo, tc.n, tc.k, tc.colors, id, got[id], want[id])
				}
			}
			// Every factor of a balanced stream must carry exactly
			// classSize real edges; sizes were checked per factor by Next,
			// re-check the final coloring end to end.
			if err := Verify(b, got, tc.colors, tc.n*tc.k/tc.colors); err != nil {
				t.Fatalf("%v n=%d k=%d C=%d: %v", algo, tc.n, tc.k, tc.colors, err)
			}
		}
	}
}

// TestStreamFactorOrderRepeatedMatching pins the emission order contract the
// planner's round streaming benefits from: the repeated-matching backend
// yields factors in ascending class order.
func TestStreamFactorOrderRepeatedMatching(t *testing.T) {
	b := randomRegular(9, 7, rand.New(rand.NewSource(53)))
	colors := make([]int, b.NumEdges())
	st := NewFactorizer().Start(b, RepeatedMatching)
	order := drainStream(t, st, colors, 7)
	if !sort.IntsAreSorted(order) {
		t.Fatalf("repeated-matching emission order %v is not ascending", order)
	}
}

// TestStreamProperty mirrors TestFactorizerProperty for the streaming path:
// random regular multigraphs, one reused arena per algorithm, colors always
// a valid 1-factorization equal to the batch output.
func TestStreamProperty(t *testing.T) {
	arenas := map[Algorithm]*Factorizer{}
	for _, algo := range allAlgorithms {
		arenas[algo] = NewFactorizer()
	}
	f := func(nSeed, kSeed uint8, seed int64) bool {
		n := int(nSeed)%14 + 1
		k := int(kSeed)%9 + 1
		b := randomRegular(n, k, rand.New(rand.NewSource(seed)))
		for _, algo := range allAlgorithms {
			want := make([]int, b.NumEdges())
			if err := NewFactorizer().FactorizeInto(want, b, algo); err != nil {
				return false
			}
			got := make([]int, b.NumEdges())
			st := arenas[algo].Start(b, algo)
			for {
				_, ok, err := st.Next(got)
				if err != nil {
					return false
				}
				if !ok {
					break
				}
			}
			for id := range got {
				if got[id] != want[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamSuperseded pins the arena-ownership contract: any other
// factorization on the stream's arena invalidates the stream, and the error
// is sticky.
func TestStreamSuperseded(t *testing.T) {
	f := NewFactorizer()
	b := randomRegular(6, 4, rand.New(rand.NewSource(54)))
	colors := make([]int, b.NumEdges())
	st := f.Start(b, EulerSplitDC)
	if _, ok, err := st.Next(colors); err != nil || !ok {
		t.Fatalf("first factor: ok=%v err=%v", ok, err)
	}
	if err := f.FactorizeInto(colors, b, EulerSplitDC); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Next(colors); !errors.Is(err, ErrStreamSuperseded) {
		t.Fatalf("superseded stream returned %v, want ErrStreamSuperseded", err)
	}
	if _, _, err := st.Next(colors); !errors.Is(err, ErrStreamSuperseded) {
		t.Fatalf("superseded error is not sticky: %v", err)
	}
}

// TestStreamValidationErrors covers the sticky validation failures.
func TestStreamValidationErrors(t *testing.T) {
	f := NewFactorizer()
	uneven := graph.New(2, 3)
	if _, _, err := f.Start(uneven, EulerSplitDC).Next(nil); err == nil {
		t.Fatal("unequal sides accepted")
	}
	irregular := graph.New(2, 2)
	irregular.AddEdge(0, 0)
	if _, _, err := f.Start(irregular, EulerSplitDC).Next([]int{0}); !errors.Is(err, graph.ErrNotBipartiteRegular) {
		t.Fatalf("irregular graph: %v", err)
	}
	b := randomRegular(4, 2, rand.New(rand.NewSource(55)))
	if _, _, err := f.Start(b, Algorithm(99)).Next(make([]int, b.NumEdges())); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	st := f.Start(b, EulerSplitDC)
	if _, _, err := st.Next(make([]int, 1)); err == nil {
		t.Fatal("short color buffer accepted")
	}
	// Balanced validation: 3 colors do not divide the 8 edges of a
	// 2-regular graph on 4+4 nodes evenly.
	if _, _, err := f.StartBalanced(b, 3, EulerSplitDC).Next(make([]int, b.NumEdges())); err == nil {
		t.Fatal("uneven color count accepted by StartBalanced")
	}
}

// TestStreamEmptyGraph: a 0-regular instance streams zero factors.
func TestStreamEmptyGraph(t *testing.T) {
	b := graph.New(3, 3)
	st := NewFactorizer().Start(b, EulerSplitDC)
	if fid, ok, err := st.Next([]int{}); ok || err != nil {
		t.Fatalf("empty graph yielded factor %d (ok=%v err=%v)", fid, ok, err)
	}
}

// TestStreamAllocBudget extends the steady-state allocation guard to the
// streaming path: after one warm-up stream per shape, a full Start +
// drain-to-exhaustion cycle allocates nothing beyond the stream handle
// itself (Next is allocation-free), for both the plain and the padded
// balanced modes. CI runs this with make alloc-guard.
func TestStreamAllocBudget(t *testing.T) {
	const budget = 1 // the *Stream handle; every Next is allocation-free
	for _, algo := range []Algorithm{RepeatedMatching, EulerSplitDC, Insertion} {
		b := randomRegular(32, 16, rand.New(rand.NewSource(71)))
		f := NewFactorizer()
		colors := make([]int, b.NumEdges())
		drain := func() {
			st := f.Start(b, algo)
			for {
				_, ok, err := st.Next(colors)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					return
				}
			}
		}
		drain() // warm up
		if allocs := testing.AllocsPerRun(10, drain); allocs > budget {
			t.Errorf("%v: streaming drain allocates %.1f/op on a warmed arena, budget %d", algo, allocs, budget)
		}
	}
	// Balanced with padding (the d < g planner path): C = n > k.
	b := randomRegular(24, 6, rand.New(rand.NewSource(72)))
	f := NewFactorizer()
	colors := make([]int, b.NumEdges())
	drain := func() {
		st := f.StartBalanced(b, 24, EulerSplitDC)
		for {
			_, ok, err := st.Next(colors)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return
			}
		}
	}
	drain() // warm up
	if allocs := testing.AllocsPerRun(10, drain); allocs > budget {
		t.Errorf("StartBalanced: streaming drain allocates %.1f/op on a warmed arena, budget %d", allocs, budget)
	}
}
