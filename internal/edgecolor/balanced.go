package edgecolor

import (
	"fmt"

	"pops/internal/graph"
)

// Balanced computes the coloring at the heart of Theorem 1 of Mei & Rizzi:
// given a k-regular bipartite multigraph b with n nodes per side and a color
// count C with k ≤ C and C | n·k, it returns a proper edge coloring with C
// colors in which every color class has size exactly Δ2 = n·k/C.
//
// Construction (the paper's proof, Section 3.1): add |V| = n − Δ2 new nodes
// on each side. New left nodes are joined to every original right node and
// new right nodes to every original left node by round-robin biregular
// padding graphs H2 and H1 in which new nodes have degree C and original
// nodes gain degree C − k. The padded graph is C-regular on (2n − Δ2)-node
// sides; König's theorem decomposes it into C perfect matchings; each
// matching uses 2·(n − Δ2) padding edges, so it contains exactly Δ2 real
// edges — the required balanced classes.
//
// The returned slice maps edge ID of b to its color in [0, C). It is the
// convenience form of Factorizer.BalancedInto with a throwaway arena;
// repeated callers (the Theorem 2 planner) hold a Factorizer and reuse the
// padding graph and all coloring scratch across calls.
func Balanced(b *graph.Bipartite, colorCount int, algo Algorithm) ([]int, error) {
	var f Factorizer
	colors := make([]int, b.NumEdges())
	if err := f.BalancedInto(colors, b, colorCount, algo); err != nil {
		return nil, err
	}
	return colors, nil
}

// BalancedInto is the arena form of Balanced: it writes the color of every
// edge of b into colors (indexed by edge ID, len(colors) == b.NumEdges()).
// The Theorem 1 padding graph is rebuilt in place when the shape repeats —
// the common case for a planner coloring a stream of demand graphs on one
// network — so steady-state calls do not allocate.
func (f *Factorizer) BalancedInto(colors []int, b *graph.Bipartite, colorCount int, algo Algorithm) error {
	f.streamGen++ // supersede any in-flight Stream; the arena is reused now
	classSize, padded, err := f.balancedSetup(b, colorCount, len(colors))
	if err != nil || colorCount == 0 {
		return err
	}
	if padded == nil {
		// C == k: a plain 1-factorization already has classes of size n.
		return f.FactorizeInto(colors, b, algo)
	}

	f.padColors = graph.ResizeInts(f.padColors, padded.NumEdges())
	if err := f.FactorizeInto(f.padColors, padded, algo); err != nil {
		return fmt.Errorf("edgecolor: factorizing padded graph: %w", err)
	}
	f.classCount = graph.ResizeInts(f.classCount, colorCount)
	for c := range f.classCount {
		f.classCount[c] = 0
	}
	for id := 0; id < b.NumEdges(); id++ {
		c := f.padColors[id]
		colors[id] = c
		f.classCount[c]++
	}
	for c, size := range f.classCount {
		if size != classSize {
			return fmt.Errorf("edgecolor: internal error: class %d has %d real edges, want %d",
				c, size, classSize)
		}
	}
	return nil
}

// balancedSetup validates a Balanced instance and, when padding is needed
// (classSize < n), rebuilds the Theorem 1 padded graph in the arena and
// returns it; a nil padded graph means a plain 1-factorization of b already
// has the required class sizes. colorsLen is the caller's output-slice
// length, validated against b. Shared by the batch BalancedInto and the
// streaming StartBalanced so both factorize the identical instance.
func (f *Factorizer) balancedSetup(b *graph.Bipartite, colorCount, colorsLen int) (classSize int, padded *graph.Bipartite, err error) {
	n := b.NLeft()
	if n != b.NRight() {
		return 0, nil, fmt.Errorf("edgecolor: Balanced needs equal sides, got %d and %d", n, b.NRight())
	}
	k, ok := b.RegularDegree()
	if !ok {
		return 0, nil, graph.ErrNotBipartiteRegular
	}
	if colorCount < k {
		return 0, nil, fmt.Errorf("edgecolor: %d colors cannot properly color a %d-regular graph", colorCount, k)
	}
	if colorsLen != b.NumEdges() {
		return 0, nil, fmt.Errorf("edgecolor: %d color slots for %d edges", colorsLen, b.NumEdges())
	}
	if colorCount == 0 {
		return 0, nil, nil
	}
	if (n*k)%colorCount != 0 {
		return 0, nil, fmt.Errorf("edgecolor: %d colors do not divide %d edges evenly", colorCount, n*k)
	}
	classSize = n * k / colorCount
	pad := n - classSize // |V| = |V'|
	if pad < 0 {
		return 0, nil, fmt.Errorf("edgecolor: class size %d exceeds side size %d", classSize, n)
	}
	if pad == 0 {
		return classSize, nil, nil
	}

	// Build the padded graph into the arena. Real edges first so their IDs
	// are preserved.
	side := n + pad
	if f.padded == nil || f.padded.NLeft() != side || f.padded.NRight() != side {
		f.padded = graph.New(side, side)
	} else {
		f.padded.Reset()
	}
	p := f.padded
	for id := 0; id < b.NumEdges(); id++ {
		e := b.Edge(id)
		p.AddEdge(e.L, e.R)
	}
	// H1: new left nodes (degree C) vs original right nodes (degree C-k).
	// Round-robin keeps both degree constraints exact; parallel edges are
	// fine in a multigraph (they arise whenever C > n).
	h1 := pad * colorCount // == n*(colorCount-k)
	for c := 0; c < h1; c++ {
		p.AddEdge(n+c/colorCount, c%n)
	}
	// H2: original left nodes (degree C-k) vs new right nodes (degree C).
	for c := 0; c < h1; c++ {
		p.AddEdge(c%n, n+c/colorCount)
	}
	if !p.IsRegular(colorCount) {
		return 0, nil, fmt.Errorf("edgecolor: internal error: padded graph is not %d-regular", colorCount)
	}
	return classSize, p, nil
}
