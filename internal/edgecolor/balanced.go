package edgecolor

import (
	"fmt"

	"pops/internal/graph"
)

// Balanced computes the coloring at the heart of Theorem 1 of Mei & Rizzi:
// given a k-regular bipartite multigraph b with n nodes per side and a color
// count C with k ≤ C and C | n·k, it returns a proper edge coloring with C
// colors in which every color class has size exactly Δ2 = n·k/C.
//
// Construction (the paper's proof, Section 3.1): add |V| = n − Δ2 new nodes
// on each side. New left nodes are joined to every original right node and
// new right nodes to every original left node by round-robin biregular
// padding graphs H2 and H1 in which new nodes have degree C and original
// nodes gain degree C − k. The padded graph is C-regular on (2n − Δ2)-node
// sides; König's theorem decomposes it into C perfect matchings; each
// matching uses 2·(n − Δ2) padding edges, so it contains exactly Δ2 real
// edges — the required balanced classes.
//
// The returned slice maps edge ID of b to its color in [0, C).
func Balanced(b *graph.Bipartite, colorCount int, algo Algorithm) ([]int, error) {
	n := b.NLeft()
	if n != b.NRight() {
		return nil, fmt.Errorf("edgecolor: Balanced needs equal sides, got %d and %d", n, b.NRight())
	}
	k, ok := b.RegularDegree()
	if !ok {
		return nil, graph.ErrNotBipartiteRegular
	}
	if colorCount < k {
		return nil, fmt.Errorf("edgecolor: %d colors cannot properly color a %d-regular graph", colorCount, k)
	}
	if colorCount == 0 {
		return []int{}, nil
	}
	if (n*k)%colorCount != 0 {
		return nil, fmt.Errorf("edgecolor: %d colors do not divide %d edges evenly", colorCount, n*k)
	}
	classSize := n * k / colorCount
	pad := n - classSize // |V| = |V'|
	if pad < 0 {
		return nil, fmt.Errorf("edgecolor: class size %d exceeds side size %d", classSize, n)
	}

	if pad == 0 {
		// C == k: a plain 1-factorization already has classes of size n.
		classes, err := Factorize(b, algo)
		if err != nil {
			return nil, err
		}
		return ClassesToColors(b.NumEdges(), classes), nil
	}

	// Build the padded graph. Real edges first so their IDs are preserved.
	side := n + pad
	p := graph.New(side, side)
	for id := 0; id < b.NumEdges(); id++ {
		e := b.Edge(id)
		p.AddEdge(e.L, e.R)
	}
	// H1: new left nodes (degree C) vs original right nodes (degree C-k).
	// Round-robin keeps both degree constraints exact; parallel edges are
	// fine in a multigraph (they arise whenever C > n).
	h1 := pad * colorCount // == n*(colorCount-k)
	for c := 0; c < h1; c++ {
		p.AddEdge(n+c/colorCount, c%n)
	}
	// H2: original left nodes (degree C-k) vs new right nodes (degree C).
	for c := 0; c < h1; c++ {
		p.AddEdge(c%n, n+c/colorCount)
	}
	if !p.IsRegular(colorCount) {
		return nil, fmt.Errorf("edgecolor: internal error: padded graph is not %d-regular", colorCount)
	}

	classes, err := Factorize(p, algo)
	if err != nil {
		return nil, fmt.Errorf("edgecolor: factorizing padded graph: %w", err)
	}
	colors := make([]int, b.NumEdges())
	for i := range colors {
		colors[i] = -1
	}
	for c, class := range classes {
		real := 0
		for _, id := range class {
			if id < b.NumEdges() {
				colors[id] = c
				real++
			}
		}
		if real != classSize {
			return nil, fmt.Errorf("edgecolor: internal error: class %d has %d real edges, want %d",
				c, real, classSize)
		}
	}
	return colors, nil
}
