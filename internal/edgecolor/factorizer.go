package edgecolor

import (
	"fmt"

	"pops/internal/graph"
	"pops/internal/matching"
	"pops/internal/simd/bitvec"
)

// Factorizer is a reusable arena for bipartite edge coloring — the
// allocation-free engine behind Factorize and Balanced. One Factorizer
// amortizes every piece of scratch the factorization algorithms need across
// calls:
//
//   - the Euler-split divide and conquer runs as an iterative work stack
//     over index-range views of a single edge-ID array, instead of
//     materializing a subgraph per recursion level;
//   - matched-edge membership is tracked in bit vectors
//     (internal/simd/bitvec word walks), not map[int]bool;
//   - the matching routines (Hopcroft–Karp, the Alon Euler-halving perfect
//     matcher) and the Euler splitter write into caller-provided buffers
//     owned by the arena (matching.Matcher, graph.Splitter);
//   - the Balanced padding graph is rebuilt in place (graph.Reset) when the
//     shape repeats.
//
// After a warm-up call per shape, FactorizeInto and BalancedInto perform no
// heap allocations. The zero value is ready to use. A Factorizer is not
// safe for concurrent use; hold one per worker (core.Planner does).
//
// The engine is deterministic and produces exactly the color classes of the
// historical recursive implementation (pinned by the package golden test):
// segment order mirrors subgraph edge-ID order, and class indices are
// assigned by precomputed base offsets that reproduce the recursion's
// concatenation order.
type Factorizer struct {
	matcher matching.Matcher
	split   graph.Splitter

	ids        []int        // edge IDs, permuted in place; a segment [lo,hi) is one subproblem
	edges      []graph.Edge // endpoints of the current segment, gathered per work item
	outA, outB []int        // Euler-split halves (segment-local indices)
	tmp        []int        // segment reorder scratch
	match      []int        // matching output (segment-local indices)
	rest       []int        // unmatched-index word-walk output
	inMatch    bitvec.Vec
	stack      []segTask

	// Insertion coloring scratch: flat color tables and the alternating
	// path, see colorInsertionInto.
	colL, colR []int
	path       []int

	// Balanced scratch: the Theorem 1 padding graph and its coloring.
	padded     *graph.Bipartite
	padColors  []int
	classCount []int
}

// segTask is one pending subproblem of the Euler-split divide and conquer:
// the k-regular sub-multigraph holding the edges ids[lo:hi], whose color
// classes are base..base+k-1. Bases are precomputed on the way down, so
// tasks can run in any order and still reproduce the recursion's class
// numbering (A-half classes, then B-half classes; peeled matching last).
type segTask struct {
	lo, hi, k, base int
}

// NewFactorizer returns an empty arena. The zero value works too; New is
// for callers that want to share one behind a pointer.
func NewFactorizer() *Factorizer { return &Factorizer{} }

// Factorize decomposes a k-regular bipartite multigraph with equal sides
// into k perfect matchings, returned as freshly allocated slices of edge
// IDs (ascending within each class), one slice per color class. The arena
// is reused across calls; only the returned classes are allocated.
func (f *Factorizer) Factorize(b *graph.Bipartite, algo Algorithm) ([][]int, error) {
	k, _ := b.RegularDegree() // validated (with the side check first) by FactorizeInto
	colors := make([]int, b.NumEdges())
	if err := f.FactorizeInto(colors, b, algo); err != nil {
		return nil, err
	}
	classes := make([][]int, k)
	for id, c := range colors {
		classes[c] = append(classes[c], id)
	}
	return classes, nil
}

// FactorizeInto decomposes a k-regular bipartite multigraph with equal
// sides into k perfect matchings, writing the class index of every edge
// into colors (indexed by edge ID, len(colors) == b.NumEdges()). It returns
// an error if the graph is not regular or the sides differ. Steady-state
// calls on a warmed arena do not allocate.
func (f *Factorizer) FactorizeInto(colors []int, b *graph.Bipartite, algo Algorithm) error {
	if b.NLeft() != b.NRight() {
		return fmt.Errorf("edgecolor: sides differ (%d vs %d)", b.NLeft(), b.NRight())
	}
	k, ok := b.RegularDegree()
	if !ok {
		return graph.ErrNotBipartiteRegular
	}
	if len(colors) != b.NumEdges() {
		return fmt.Errorf("edgecolor: %d color slots for %d edges", len(colors), b.NumEdges())
	}
	switch algo {
	case RepeatedMatching:
		return f.factorizeRepeated(colors, b, k)
	case EulerSplitDC:
		return f.factorizeEuler(colors, b, k)
	case Insertion:
		c, err := f.colorInsertionInto(colors, b)
		if err != nil {
			return err
		}
		if c > k {
			return fmt.Errorf("edgecolor: insertion used %d colors on %d-regular graph", c, k)
		}
		return nil
	default:
		return fmt.Errorf("edgecolor: unknown algorithm %v", algo)
	}
}

// prepare sizes the shared view buffers for an m-edge instance and resets
// the segment array to the identity.
func (f *Factorizer) prepare(m, nL int) {
	f.ids = graph.ResizeInts(f.ids, m)
	for i := range f.ids {
		f.ids[i] = i
	}
	f.edges = graph.ResizeEdges(f.edges, m)
	f.tmp = graph.ResizeInts(f.tmp, m)
	f.outA = graph.ResizeInts(f.outA, m/2)
	f.outB = graph.ResizeInts(f.outB, m/2)
	f.match = graph.ResizeInts(f.match, nL)
	if cap(f.rest) < m {
		f.rest = make([]int, 0, m)
	}
}

// gather copies the endpoints of the segment's edges into the arena's edge
// buffer, establishing the view the splitter and matcher operate on:
// segment-local index i is edge seg[i] of b.
func (f *Factorizer) gather(all []graph.Edge, seg []int) []graph.Edge {
	view := f.edges[:len(seg)]
	for i, id := range seg {
		view[i] = all[id]
	}
	return view
}

// compact drops the matched segment-local indices (bits of f.inMatch) from
// ids[lo:lo+segLen], preserving order, and returns the surviving length.
// The scan is a bitvec word walk over the complement.
func (f *Factorizer) compact(lo, segLen int) int {
	f.rest = f.inMatch.AppendClear(f.rest[:0], segLen)
	for w, i := range f.rest {
		f.ids[lo+w] = f.ids[lo+i]
	}
	return len(f.rest)
}

// factorizeEuler is the Euler-split divide and conquer, iteratively: halve
// even-degree segments with the arena splitter, peel one perfect matching
// (Alon Euler-halving) at odd degrees, color whole segments at degree one.
func (f *Factorizer) factorizeEuler(colors []int, b *graph.Bipartite, k int) error {
	if k == 0 {
		return nil
	}
	m := b.NumEdges()
	nL, nR := b.NLeft(), b.NRight()
	f.prepare(m, nL)
	all := b.EdgeList()
	f.stack = append(f.stack[:0], segTask{lo: 0, hi: m, k: k, base: 0})
	for len(f.stack) > 0 {
		t := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		seg := f.ids[t.lo:t.hi]
		switch {
		case t.k == 1:
			for _, id := range seg {
				colors[id] = t.base
			}
		case t.k%2 == 1:
			view := f.gather(all, seg)
			nMatch, err := f.matcher.PerfectMatchingRegularInto(nL, t.k, view, f.match)
			if err != nil {
				return fmt.Errorf("edgecolor: peeling matching at degree %d: %w", t.k, err)
			}
			f.inMatch = f.inMatch.Resize(len(seg))
			for _, j := range f.match[:nMatch] {
				colors[seg[j]] = t.base + t.k - 1
				f.inMatch.Set(j)
			}
			restLen := f.compact(t.lo, len(seg))
			f.stack = append(f.stack, segTask{lo: t.lo, hi: t.lo + restLen, k: t.k - 1, base: t.base})
		default:
			view := f.gather(all, seg)
			nA, _, err := f.split.Split(nL, nR, view, f.outA, f.outB)
			if err != nil {
				return err
			}
			// Reorder the segment to A-half then B-half, in traversal order
			// — the order a materialized subgraph would list its edges in.
			nB := len(seg) - nA
			for j := 0; j < nA; j++ {
				f.tmp[j] = seg[f.outA[j]]
			}
			for j := 0; j < nB; j++ {
				f.tmp[nA+j] = seg[f.outB[j]]
			}
			copy(seg, f.tmp[:len(seg)])
			f.stack = append(f.stack,
				segTask{lo: t.lo + nA, hi: t.hi, k: t.k / 2, base: t.base + t.k/2},
				segTask{lo: t.lo, hi: t.lo + nA, k: t.k / 2, base: t.base})
		}
	}
	return nil
}

// factorizeRepeated extracts k perfect matchings one at a time with
// Hopcroft–Karp, compacting the surviving segment after each round.
func (f *Factorizer) factorizeRepeated(colors []int, b *graph.Bipartite, k int) error {
	m := b.NumEdges()
	nL, nR := b.NLeft(), b.NRight()
	f.prepare(m, nL)
	all := b.EdgeList()
	curLen := m
	for round := 0; round < k; round++ {
		view := f.gather(all, f.ids[:curLen])
		nMatch := f.matcher.HopcroftKarpInto(nL, nR, view, f.match)
		if nMatch != nL {
			return fmt.Errorf("edgecolor: round %d: matching size %d of %d (graph not regular?)",
				round, nMatch, nL)
		}
		f.inMatch = f.inMatch.Resize(curLen)
		for _, j := range f.match[:nMatch] {
			colors[f.ids[j]] = round
			f.inMatch.Set(j)
		}
		curLen = f.compact(0, curLen)
	}
	return nil
}
