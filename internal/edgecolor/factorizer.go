package edgecolor

import (
	"fmt"

	"pops/internal/graph"
	"pops/internal/matching"
	"pops/internal/simd/bitvec"
)

// Factorizer is a reusable arena for bipartite edge coloring — the
// allocation-free engine behind Factorize and Balanced. One Factorizer
// amortizes every piece of scratch the factorization algorithms need across
// calls:
//
//   - the Euler-split divide and conquer runs as an iterative work stack
//     over index-range views of a single edge-ID array, instead of
//     materializing a subgraph per recursion level;
//   - matched-edge membership is tracked in bit vectors
//     (internal/simd/bitvec word walks), not map[int]bool;
//   - the matching routines (Hopcroft–Karp, the Alon Euler-halving perfect
//     matcher) and the Euler splitter write into caller-provided buffers
//     owned by the arena (matching.Matcher, graph.Splitter);
//   - the Balanced padding graph is rebuilt in place (graph.Reset) when the
//     shape repeats.
//
// After a warm-up call per shape, FactorizeInto and BalancedInto perform no
// heap allocations. The zero value is ready to use. A Factorizer is not
// safe for concurrent use; hold one per worker (core.Planner does).
//
// The engine is deterministic and produces exactly the color classes of the
// historical recursive implementation (pinned by the package golden test):
// segment order mirrors subgraph edge-ID order, and class indices are
// assigned by precomputed base offsets that reproduce the recursion's
// concatenation order.
type Factorizer struct {
	matcher matching.Matcher
	split   graph.Splitter

	ids        []int        // edge IDs, permuted in place; a segment [lo,hi) is one subproblem
	edges      []graph.Edge // endpoints of the current segment, gathered per work item
	outA, outB []int        // Euler-split halves (segment-local indices)
	tmp        []int        // segment reorder scratch
	match      []int        // matching output (segment-local indices)
	rest       []int        // unmatched-index word-walk output
	inMatch    bitvec.Vec
	stack      []segTask
	factorBuf  []int // edge IDs of the factor peeled by a matching step
	realBuf    []int // factorBuf filtered to real (unpadded) edge IDs

	// Repeated-matching resumption state: the round about to be extracted
	// and the live segment length. The Euler-split stepper needs no extra
	// state — its work stack is the resumable position.
	repRound, repK, repLen int

	// streamGen invalidates the in-flight Stream (see Start) whenever
	// another arena entry point reuses the factorization scratch.
	streamGen uint64

	// Insertion coloring scratch: flat color tables and the alternating
	// path, see colorInsertionInto.
	colL, colR []int
	path       []int

	// Balanced scratch: the Theorem 1 padding graph and its coloring.
	padded     *graph.Bipartite
	padColors  []int
	classCount []int
}

// segTask is one pending subproblem of the Euler-split divide and conquer:
// the k-regular sub-multigraph holding the edges ids[lo:hi], whose color
// classes are base..base+k-1. Bases are precomputed on the way down, so
// tasks can run in any order and still reproduce the recursion's class
// numbering (A-half classes, then B-half classes; peeled matching last).
type segTask struct {
	lo, hi, k, base int
}

// NewFactorizer returns an empty arena. The zero value works too; New is
// for callers that want to share one behind a pointer.
func NewFactorizer() *Factorizer { return &Factorizer{} }

// Factorize decomposes a k-regular bipartite multigraph with equal sides
// into k perfect matchings, returned as freshly allocated slices of edge
// IDs (ascending within each class), one slice per color class. The arena
// is reused across calls; only the returned classes are allocated.
func (f *Factorizer) Factorize(b *graph.Bipartite, algo Algorithm) ([][]int, error) {
	k, _ := b.RegularDegree() // validated (with the side check first) by FactorizeInto
	colors := make([]int, b.NumEdges())
	if err := f.FactorizeInto(colors, b, algo); err != nil {
		return nil, err
	}
	classes := make([][]int, k)
	for id, c := range colors {
		classes[c] = append(classes[c], id)
	}
	return classes, nil
}

// FactorizeInto decomposes a k-regular bipartite multigraph with equal
// sides into k perfect matchings, writing the class index of every edge
// into colors (indexed by edge ID, len(colors) == b.NumEdges()). It returns
// an error if the graph is not regular or the sides differ. Steady-state
// calls on a warmed arena do not allocate.
func (f *Factorizer) FactorizeInto(colors []int, b *graph.Bipartite, algo Algorithm) error {
	if b.NLeft() != b.NRight() {
		return fmt.Errorf("edgecolor: sides differ (%d vs %d)", b.NLeft(), b.NRight())
	}
	k, ok := b.RegularDegree()
	if !ok {
		return graph.ErrNotBipartiteRegular
	}
	if len(colors) != b.NumEdges() {
		return fmt.Errorf("edgecolor: %d color slots for %d edges", len(colors), b.NumEdges())
	}
	f.streamGen++ // supersede any in-flight Stream; the arena is reused now
	switch algo {
	case RepeatedMatching:
		return f.factorizeRepeated(colors, b, k)
	case EulerSplitDC:
		return f.factorizeEuler(colors, b, k)
	case Insertion:
		c, err := f.colorInsertionInto(colors, b)
		if err != nil {
			return err
		}
		if c > k {
			return fmt.Errorf("edgecolor: insertion used %d colors on %d-regular graph", c, k)
		}
		return nil
	default:
		return fmt.Errorf("edgecolor: unknown algorithm %v", algo)
	}
}

// prepare sizes the shared view buffers for an m-edge instance and resets
// the segment array to the identity.
func (f *Factorizer) prepare(m, nL int) {
	f.ids = graph.ResizeInts(f.ids, m)
	for i := range f.ids {
		f.ids[i] = i
	}
	f.edges = graph.ResizeEdges(f.edges, m)
	f.tmp = graph.ResizeInts(f.tmp, m)
	f.outA = graph.ResizeInts(f.outA, m/2)
	f.outB = graph.ResizeInts(f.outB, m/2)
	f.match = graph.ResizeInts(f.match, nL)
	if cap(f.rest) < m {
		f.rest = make([]int, 0, m)
	}
	if cap(f.factorBuf) < nL {
		f.factorBuf = make([]int, 0, nL)
	}
	if cap(f.realBuf) < nL {
		f.realBuf = make([]int, 0, nL)
	}
}

// gather copies the endpoints of the segment's edges into the arena's edge
// buffer, establishing the view the splitter and matcher operate on:
// segment-local index i is edge seg[i] of b.
func (f *Factorizer) gather(all []graph.Edge, seg []int) []graph.Edge {
	view := f.edges[:len(seg)]
	for i, id := range seg {
		view[i] = all[id]
	}
	return view
}

// compact drops the matched segment-local indices (bits of f.inMatch) from
// ids[lo:lo+segLen], preserving order, and returns the surviving length.
// The scan is a bitvec word walk over the complement.
func (f *Factorizer) compact(lo, segLen int) int {
	f.rest = f.inMatch.AppendClear(f.rest[:0], segLen)
	for w, i := range f.rest {
		f.ids[lo+w] = f.ids[lo+i]
	}
	return len(f.rest)
}

// eulerStart seeds the Euler-split work stack for a fresh factorization.
// The k == 0 (empty) instance leaves the stack empty, so the first
// eulerNext reports exhaustion.
func (f *Factorizer) eulerStart(b *graph.Bipartite, k int) {
	m := b.NumEdges()
	f.prepare(m, b.NLeft())
	f.stack = f.stack[:0]
	if k > 0 {
		f.stack = append(f.stack, segTask{lo: 0, hi: m, k: k, base: 0})
	}
}

// eulerNext resumes the Euler-split divide and conquer until exactly one
// more 1-factor is complete: it halves even-degree segments with the arena
// splitter, peels one perfect matching (Alon Euler-halving) at odd degrees,
// and colors whole segments at degree one. The completed factor's class
// index is written into colors for each of its edges, whose IDs are
// returned in factor (arena-owned, valid until the next arena call).
// ok is false once every factor has been produced.
func (f *Factorizer) eulerNext(colors []int, all []graph.Edge, nL, nR int) (factorID int, factor []int, ok bool, err error) {
	for len(f.stack) > 0 {
		t := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		seg := f.ids[t.lo:t.hi]
		switch {
		case t.k == 1:
			for _, id := range seg {
				colors[id] = t.base
			}
			// seg is never revisited: segments are disjoint and this one
			// leaves the stack for good, so it is safe to hand out.
			return t.base, seg, true, nil
		case t.k%2 == 1:
			view := f.gather(all, seg)
			nMatch, err := f.matcher.PerfectMatchingRegularInto(nL, t.k, view, f.match)
			if err != nil {
				return 0, nil, false, fmt.Errorf("edgecolor: peeling matching at degree %d: %w", t.k, err)
			}
			f.inMatch = f.inMatch.Resize(len(seg))
			f.factorBuf = f.factorBuf[:0]
			for _, j := range f.match[:nMatch] {
				id := seg[j]
				colors[id] = t.base + t.k - 1
				f.factorBuf = append(f.factorBuf, id)
				f.inMatch.Set(j)
			}
			restLen := f.compact(t.lo, len(seg))
			f.stack = append(f.stack, segTask{lo: t.lo, hi: t.lo + restLen, k: t.k - 1, base: t.base})
			return t.base + t.k - 1, f.factorBuf, true, nil
		default:
			view := f.gather(all, seg)
			nA, _, err := f.split.Split(nL, nR, view, f.outA, f.outB)
			if err != nil {
				return 0, nil, false, err
			}
			// Reorder the segment to A-half then B-half, in traversal order
			// — the order a materialized subgraph would list its edges in.
			nB := len(seg) - nA
			for j := 0; j < nA; j++ {
				f.tmp[j] = seg[f.outA[j]]
			}
			for j := 0; j < nB; j++ {
				f.tmp[nA+j] = seg[f.outB[j]]
			}
			copy(seg, f.tmp[:len(seg)])
			f.stack = append(f.stack,
				segTask{lo: t.lo + nA, hi: t.hi, k: t.k / 2, base: t.base + t.k/2},
				segTask{lo: t.lo, hi: t.lo + nA, k: t.k / 2, base: t.base})
		}
	}
	return 0, nil, false, nil
}

// factorizeEuler drains the Euler-split stepper — the batch path and
// Stream.Next resume exactly the same loop, so their colorings cannot
// diverge.
func (f *Factorizer) factorizeEuler(colors []int, b *graph.Bipartite, k int) error {
	f.eulerStart(b, k)
	all := b.EdgeList()
	nL, nR := b.NLeft(), b.NRight()
	for {
		_, _, ok, err := f.eulerNext(colors, all, nL, nR)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// repStart resets the repeated-matching resumption state.
func (f *Factorizer) repStart(b *graph.Bipartite, k int) {
	m := b.NumEdges()
	f.prepare(m, b.NLeft())
	f.repRound, f.repK, f.repLen = 0, k, m
}

// repNext extracts one more perfect matching with Hopcroft–Karp and compacts
// the surviving segment. Same contract as eulerNext.
func (f *Factorizer) repNext(colors []int, all []graph.Edge, nL, nR int) (factorID int, factor []int, ok bool, err error) {
	if f.repRound >= f.repK {
		return 0, nil, false, nil
	}
	round := f.repRound
	view := f.gather(all, f.ids[:f.repLen])
	nMatch := f.matcher.HopcroftKarpInto(nL, nR, view, f.match)
	if nMatch != nL {
		return 0, nil, false, fmt.Errorf("edgecolor: round %d: matching size %d of %d (graph not regular?)",
			round, nMatch, nL)
	}
	f.inMatch = f.inMatch.Resize(f.repLen)
	f.factorBuf = f.factorBuf[:0]
	for _, j := range f.match[:nMatch] {
		id := f.ids[j]
		colors[id] = round
		f.factorBuf = append(f.factorBuf, id)
		f.inMatch.Set(j)
	}
	f.repLen = f.compact(0, f.repLen)
	f.repRound++
	return round, f.factorBuf, true, nil
}

// factorizeRepeated drains the repeated-matching stepper (see
// factorizeEuler on why batch and stream share it).
func (f *Factorizer) factorizeRepeated(colors []int, b *graph.Bipartite, k int) error {
	f.repStart(b, k)
	all := b.EdgeList()
	nL, nR := b.NLeft(), b.NRight()
	for {
		_, _, ok, err := f.repNext(colors, all, nL, nR)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}
