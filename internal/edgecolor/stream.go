package edgecolor

import (
	"context"
	"errors"
	"fmt"

	"pops/internal/graph"
)

// ErrStreamSuperseded is returned by Stream.Next once another factorization
// (batch or streaming) has run on the stream's Factorizer: the arena that
// held the stream's resumable state has been reused.
var ErrStreamSuperseded = errors.New("edgecolor: stream superseded by a later call on its Factorizer")

// Stream is a paused 1-factorization: each Next call resumes the underlying
// algorithm just long enough to peel one more 1-factor and then suspends it
// again, leaving the factor's class index in the caller's color buffer. It
// is the incremental form of FactorizeInto/BalancedInto — driving a Stream
// to exhaustion writes exactly the colors the batch call would have written,
// because batch and stream drain the same arena steppers.
//
// A Stream borrows its Factorizer's arena: starting another factorization
// on the same arena (FactorizeInto, BalancedInto, Start, StartBalanced)
// supersedes the stream, and its Next then returns ErrStreamSuperseded.
// Steady-state Next calls on a warmed arena do not allocate; Start itself
// allocates only the stream handle.
type Stream struct {
	f    *Factorizer
	gen  uint64
	algo Algorithm
	ctx  context.Context // cancellation checked between factors; nil = never

	b     *graph.Bipartite // caller's graph; colorBuf and Factor are indexed by its edge IDs
	inner *graph.Bipartite // graph actually factorized (the padded graph, or b itself)
	all   []graph.Edge     // inner's edge list
	nL    int
	nR    int
	k     int // total number of factors this stream will produce

	// padded marks the Theorem 1 balanced mode: factors are peeled from the
	// padded graph and filtered down to real edges, each class carrying
	// exactly classSize of them.
	padded    bool
	classSize int

	insReady bool // insertion backend: inner coloring materialized

	produced int
	factor   []int
	err      error
	done     bool
}

// Start begins a streaming 1-factorization of a k-regular bipartite
// multigraph with equal sides: the stream's Next calls yield the k perfect
// matchings one at a time. Validation errors (unequal sides, irregular
// graph, unknown algorithm) surface on the first Next. The returned stream
// borrows the Factorizer's arena — one stream per arena at a time.
func (f *Factorizer) Start(b *graph.Bipartite, algo Algorithm) *Stream {
	return f.StartCtx(context.Background(), b, algo)
}

// StartCtx is Start with a context: ctx is checked between factors, so
// cancelling it stops factor production at the next Next call, which then
// returns ctx.Err() as the stream's sticky error.
func (f *Factorizer) StartCtx(ctx context.Context, b *graph.Bipartite, algo Algorithm) *Stream {
	f.streamGen++
	st := &Stream{f: f, gen: f.streamGen, algo: algo, ctx: ctx, b: b, inner: b}
	if b.NLeft() != b.NRight() {
		st.err = fmt.Errorf("edgecolor: sides differ (%d vs %d)", b.NLeft(), b.NRight())
		return st
	}
	k, ok := b.RegularDegree()
	if !ok {
		st.err = graph.ErrNotBipartiteRegular
		return st
	}
	st.k = k
	st.classSize = -1
	st.start()
	return st
}

// StartBalanced begins a streaming balanced coloring (Theorem 1): the
// stream yields colorCount classes of exactly n·k/C real edges each,
// peeling them from the padded graph of BalancedInto. Driving the stream to
// exhaustion writes exactly the colors BalancedInto would have written. The
// per-class size check runs as each factor lands instead of at the end.
func (f *Factorizer) StartBalanced(b *graph.Bipartite, colorCount int, algo Algorithm) *Stream {
	return f.StartBalancedCtx(context.Background(), b, colorCount, algo)
}

// StartBalancedCtx is StartBalanced with a context, checked between factors
// like StartCtx.
func (f *Factorizer) StartBalancedCtx(ctx context.Context, b *graph.Bipartite, colorCount int, algo Algorithm) *Stream {
	f.streamGen++
	st := &Stream{f: f, gen: f.streamGen, algo: algo, ctx: ctx, b: b, inner: b}
	classSize, padded, err := f.balancedSetup(b, colorCount, b.NumEdges())
	if err != nil {
		st.err = err
		return st
	}
	st.k = colorCount
	st.classSize = -1
	if padded != nil {
		st.inner = padded
		st.padded = true
		st.classSize = classSize
		f.padColors = graph.ResizeInts(f.padColors, padded.NumEdges())
	}
	st.start()
	return st
}

// start finishes stream setup once the inner graph and factor count are
// known: it validates the algorithm and seeds the matching stepper.
func (st *Stream) start() {
	st.all = st.inner.EdgeList()
	st.nL, st.nR = st.inner.NLeft(), st.inner.NRight()
	switch st.algo {
	case EulerSplitDC:
		st.f.eulerStart(st.inner, st.k)
	case RepeatedMatching:
		st.f.repStart(st.inner, st.k)
	case Insertion:
		// Materialized lazily on the first Next (the coloring needs its
		// target buffer in hand); nothing to seed here.
	default:
		st.err = fmt.Errorf("edgecolor: unknown algorithm %v", st.algo)
	}
}

// Next resumes the factorization until one more 1-factor is complete,
// writing the factor's class index into colorBuf (indexed by edge ID of the
// graph passed to Start/StartBalanced) for every edge of the factor. It
// returns the class index and ok == true, or ok == false once all factors
// have been produced. The same colorBuf must be passed to every Next call
// of one stream; after the final factor it is identical to what the batch
// FactorizeInto/BalancedInto call would have produced. Errors are sticky.
func (st *Stream) Next(colorBuf []int) (factorID int, ok bool, err error) {
	if st.err != nil {
		return 0, false, st.err
	}
	if st.done {
		return 0, false, nil
	}
	if st.gen != st.f.streamGen {
		st.err = ErrStreamSuperseded
		return 0, false, st.err
	}
	if st.ctx != nil {
		if err := st.ctx.Err(); err != nil {
			st.err = err
			return 0, false, st.err
		}
	}
	if len(colorBuf) != st.b.NumEdges() {
		st.err = fmt.Errorf("edgecolor: %d color slots for %d edges", len(colorBuf), st.b.NumEdges())
		return 0, false, st.err
	}

	// In padded mode the steppers color the padded graph into the arena's
	// padColors; the real classes are filtered out below.
	target := colorBuf
	if st.padded {
		target = st.f.padColors
	}
	var factor []int
	switch st.algo {
	case EulerSplitDC:
		factorID, factor, ok, err = st.f.eulerNext(target, st.all, st.nL, st.nR)
	case RepeatedMatching:
		factorID, factor, ok, err = st.f.repNext(target, st.all, st.nL, st.nR)
	case Insertion:
		factorID, factor, ok, err = st.insNext(target)
	}
	if err != nil {
		st.err = err
		return 0, false, err
	}
	if !ok {
		if st.produced != st.k {
			st.err = fmt.Errorf("edgecolor: internal error: stream produced %d of %d factors", st.produced, st.k)
			return 0, false, st.err
		}
		st.done = true
		st.factor = nil
		return 0, false, nil
	}
	if st.padded {
		real := st.b.NumEdges()
		st.f.realBuf = st.f.realBuf[:0]
		for _, id := range factor {
			if id < real {
				st.f.realBuf = append(st.f.realBuf, id)
				colorBuf[id] = factorID
			}
		}
		factor = st.f.realBuf
		if len(factor) != st.classSize {
			st.err = fmt.Errorf("edgecolor: internal error: class %d has %d real edges, want %d",
				factorID, len(factor), st.classSize)
			return 0, false, st.err
		}
	}
	st.produced++
	st.factor = factor
	return factorID, true, nil
}

// insNext adapts the insertion coloring — which repairs earlier colors
// along alternating paths and therefore cannot expose intermediate state —
// to the stream contract: the full coloring is materialized on the first
// call, then emitted one class per call in ascending color order.
func (st *Stream) insNext(target []int) (factorID int, factor []int, ok bool, err error) {
	f := st.f
	if !st.insReady {
		c, err := f.colorInsertionInto(target, st.inner)
		if err != nil {
			return 0, nil, false, err
		}
		if c > st.k {
			return 0, nil, false, fmt.Errorf("edgecolor: insertion used %d colors on %d-regular graph", c, st.k)
		}
		st.insReady = true
	}
	if st.produced >= st.k {
		return 0, nil, false, nil
	}
	factorID = st.produced
	f.factorBuf = f.factorBuf[:0]
	for id, c := range target[:st.inner.NumEdges()] {
		if c == factorID {
			f.factorBuf = append(f.factorBuf, id)
		}
	}
	return factorID, f.factorBuf, true, nil
}

// Factor returns the edge IDs of the most recently produced factor, in the
// graph passed to Start/StartBalanced (padding edges are already filtered
// out). The slice is arena-owned: it is valid until the next Next call or
// any other call on the stream's Factorizer, and must not be modified. The
// IDs are in no particular order.
func (st *Stream) Factor() []int { return st.factor }

// NumFactors returns the total number of factors the stream produces: the
// regular degree for Start, colorCount for StartBalanced.
func (st *Stream) NumFactors() int { return st.k }

// Produced returns how many factors Next has yielded so far.
func (st *Stream) Produced() int { return st.produced }

// Err returns the stream's sticky error, if any.
func (st *Stream) Err() error { return st.err }
