package edgecolor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pops/internal/graph"
)

func randomRegular(n, k int, rng *rand.Rand) *graph.Bipartite {
	b := graph.New(n, n)
	for j := 0; j < k; j++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			b.AddEdge(i, perm[i])
		}
	}
	return b
}

var allAlgorithms = []Algorithm{RepeatedMatching, EulerSplitDC, Insertion}

func checkFactorization(t *testing.T, b *graph.Bipartite, classes [][]int, k int) {
	t.Helper()
	if len(classes) != k {
		t.Fatalf("got %d classes, want %d", len(classes), k)
	}
	colors := ClassesToColors(b.NumEdges(), classes)
	for id, c := range colors {
		if c == -1 {
			t.Fatalf("edge %d uncolored", id)
		}
	}
	if err := Verify(b, colors, k, b.NLeft()); err != nil {
		t.Fatal(err)
	}
}

func TestFactorizeAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cases := []struct{ n, k int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 4}, {5, 3}, {8, 8}, {16, 5}, {9, 7}, {12, 1},
	}
	for _, algo := range allAlgorithms {
		for _, tc := range cases {
			b := randomRegular(tc.n, tc.k, rng)
			classes, err := Factorize(b, algo)
			if err != nil {
				t.Fatalf("%v n=%d k=%d: %v", algo, tc.n, tc.k, err)
			}
			checkFactorization(t, b, classes, tc.k)
		}
	}
}

func TestFactorizeParallelEdgeBundles(t *testing.T) {
	// d parallel copies of a cyclic permutation: the demand multigraph of the
	// adversarial "whole group to next group" routing instance.
	for _, algo := range allAlgorithms {
		for _, d := range []int{1, 2, 5, 8} {
			g := 6
			b := graph.New(g, g)
			for c := 0; c < d; c++ {
				for h := 0; h < g; h++ {
					b.AddEdge(h, (h+1)%g)
				}
			}
			classes, err := Factorize(b, algo)
			if err != nil {
				t.Fatalf("%v d=%d: %v", algo, d, err)
			}
			checkFactorization(t, b, classes, d)
		}
	}
}

func TestFactorizeRejectsIrregular(t *testing.T) {
	b := graph.New(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1)
	for _, algo := range []Algorithm{RepeatedMatching, EulerSplitDC} {
		if _, err := Factorize(b, algo); err == nil {
			t.Fatalf("%v accepted irregular graph", algo)
		}
	}
}

func TestFactorizeRejectsUnequalSides(t *testing.T) {
	if _, err := Factorize(graph.New(2, 3), RepeatedMatching); err == nil {
		t.Fatal("unequal sides accepted")
	}
}

func TestFactorizeUnknownAlgorithm(t *testing.T) {
	b := randomRegular(3, 2, rand.New(rand.NewSource(1)))
	if _, err := Factorize(b, Algorithm(99)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	if RepeatedMatching.String() != "repeated-matching" ||
		EulerSplitDC.String() != "euler-split" ||
		Insertion.String() != "insertion" {
		t.Fatal("Algorithm String values changed")
	}
	if Algorithm(42).String() != "Algorithm(42)" {
		t.Fatal("unknown algorithm String")
	}
}

func TestColorInsertionNonRegular(t *testing.T) {
	// Arbitrary bipartite multigraph: Δ colors must suffice (König).
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		nL := rng.Intn(10) + 1
		nR := rng.Intn(10) + 1
		m := rng.Intn(6 * (nL + nR))
		b := graph.New(nL, nR)
		for e := 0; e < m; e++ {
			b.AddEdge(rng.Intn(nL), rng.Intn(nR))
		}
		colors, c, err := ColorInsertion(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if c != b.MaxDegree() {
			t.Fatalf("trial %d: used %d colors, Δ=%d", trial, c, b.MaxDegree())
		}
		if err := Verify(b, colors, max(c, 1), -1); err != nil && m > 0 {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestColorInsertionEmptyGraph(t *testing.T) {
	b := graph.New(3, 3)
	colors, c, err := ColorInsertion(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(colors) != 0 || c != 0 {
		t.Fatalf("empty graph: %d colors array, Δ=%d", len(colors), c)
	}
}

func TestColorInsertionTriggersAlternatingPath(t *testing.T) {
	// Force the swap: edges inserted so that the free colors at the two
	// endpoints of a later edge are disjoint.
	b := graph.New(2, 2)
	b.AddEdge(0, 0) // gets color 0
	b.AddEdge(1, 1) // gets color 0
	b.AddEdge(1, 0) // color 1 at both
	b.AddEdge(0, 1) // L0 free {1}? no: L0 has 0; R1 has 0,1 -> needs swap path
	b.AddEdge(0, 0)
	b.AddEdge(1, 1)
	colors, c, err := ColorInsertion(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(b, colors, c, -1); err != nil {
		t.Fatal(err)
	}
	if c != 3 {
		t.Fatalf("Δ = %d, want 3", c)
	}
}

func TestColorInsertionProperty(t *testing.T) {
	f := func(nSeed, kSeed uint8, seed int64) bool {
		n := int(nSeed)%16 + 1
		k := int(kSeed)%6 + 1
		b := randomRegular(n, k, rand.New(rand.NewSource(seed)))
		colors, c, err := ColorInsertion(b)
		if err != nil || c != k {
			return false
		}
		return Verify(b, colors, c, n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedExactClassSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cases := []struct{ n, k, colors int }{
		{4, 2, 4},   // d < g case shape: class size 2
		{6, 3, 6},   // class size 3
		{8, 8, 8},   // no padding
		{5, 1, 5},   // class size 1
		{6, 2, 3},   // C between k and n: class size 4
		{6, 2, 4},   // class size 3
		{9, 3, 9},   // class size 3
		{4, 3, 12},  // C > n: class size 1, heavy padding with parallel edges
		{3, 2, 6},   // C = 2n: class size 1
		{12, 4, 16}, // class size 3
	}
	for _, algo := range allAlgorithms {
		for _, tc := range cases {
			b := randomRegular(tc.n, tc.k, rng)
			colors, err := Balanced(b, tc.colors, algo)
			if err != nil {
				t.Fatalf("%v n=%d k=%d C=%d: %v", algo, tc.n, tc.k, tc.colors, err)
			}
			want := tc.n * tc.k / tc.colors
			if err := Verify(b, colors, tc.colors, want); err != nil {
				t.Fatalf("%v n=%d k=%d C=%d: %v", algo, tc.n, tc.k, tc.colors, err)
			}
		}
	}
}

func TestBalancedRejectsBadParameters(t *testing.T) {
	b := randomRegular(4, 3, rand.New(rand.NewSource(2)))
	if _, err := Balanced(b, 2, RepeatedMatching); err == nil {
		t.Fatal("accepted fewer colors than degree")
	}
	if _, err := Balanced(b, 5, RepeatedMatching); err == nil {
		t.Fatal("accepted color count not dividing edge count")
	}
	if _, err := Balanced(graph.New(2, 3), 2, RepeatedMatching); err == nil {
		t.Fatal("accepted unequal sides")
	}
	irr := graph.New(2, 2)
	irr.AddEdge(0, 0)
	if _, err := Balanced(irr, 2, RepeatedMatching); err == nil {
		t.Fatal("accepted irregular graph")
	}
}

func TestBalancedProperty(t *testing.T) {
	// Random (n, k) with C = n (the Theorem 2 d<g configuration).
	f := func(nSeed, kSeed uint8, seed int64) bool {
		n := int(nSeed)%12 + 1
		k := int(kSeed)%n + 1
		b := randomRegular(n, k, rand.New(rand.NewSource(seed)))
		colors, err := Balanced(b, n, EulerSplitDC)
		if err != nil {
			return false
		}
		return Verify(b, colors, n, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	b := graph.New(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(1, 1)

	if err := Verify(b, []int{0, 0, 1, 1}, 2, -1); err == nil {
		t.Fatal("double color at left node accepted")
	}
	if err := Verify(b, []int{0, 1, 0, 1}, 2, -1); err == nil {
		t.Fatal("double color at right node accepted")
	}
	if err := Verify(b, []int{0, 1}, 2, -1); err == nil {
		t.Fatal("wrong length accepted")
	}
	if err := Verify(b, []int{0, 1, 2, 0}, 2, -1); err == nil {
		t.Fatal("out-of-range color accepted")
	}
	if err := Verify(b, []int{0, 1, 1, 0}, 2, 1); err == nil {
		t.Fatal("wrong class size accepted")
	}
}

func TestVerifyAcceptsProper(t *testing.T) {
	b := graph.New(2, 2)
	b.AddEdge(0, 0) // color 0
	b.AddEdge(0, 1) // color 1
	b.AddEdge(1, 0) // color 1
	b.AddEdge(1, 1) // color 0
	if err := Verify(b, []int{0, 1, 1, 0}, 2, 2); err != nil {
		t.Fatalf("proper balanced coloring rejected: %v", err)
	}
}

func TestClassesToColors(t *testing.T) {
	colors := ClassesToColors(5, [][]int{{0, 3}, {1}, {4}})
	want := []int{0, 1, -1, 0, 2}
	for i := range want {
		if colors[i] != want[i] {
			t.Fatalf("colors = %v, want %v", colors, want)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
