package edgecolor

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pops/internal/graph"
)

// factorizerCases spans the shapes the engine must handle: k odd and even,
// parallel-edge bundles, single nodes, and k == n.
func factorizerCases() []struct{ n, k, seed int } {
	return []struct{ n, k, seed int }{
		{1, 1, 41}, {2, 2, 42}, {3, 2, 43}, {4, 4, 44}, {5, 3, 45},
		{8, 8, 46}, {16, 5, 47}, {9, 7, 48}, {12, 1, 49}, {7, 6, 50},
	}
}

// TestFactorizerAllCombinations checks that every algorithm × arena-reuse
// combination produces k disjoint perfect matchings, and that a reused
// arena is colorwise identical to the package-level wrapper (fresh arena).
func TestFactorizerAllCombinations(t *testing.T) {
	for _, algo := range allAlgorithms {
		reused := NewFactorizer() // one arena across every case of this algorithm
		for _, tc := range factorizerCases() {
			b := randomRegular(tc.n, tc.k, rand.New(rand.NewSource(int64(tc.seed))))
			classes, err := Factorize(b, algo) // fresh arena per call
			if err != nil {
				t.Fatalf("%v n=%d k=%d: wrapper: %v", algo, tc.n, tc.k, err)
			}
			checkFactorization(t, b, classes, tc.k)

			colors := make([]int, b.NumEdges())
			if err := reused.FactorizeInto(colors, b, algo); err != nil {
				t.Fatalf("%v n=%d k=%d: reused arena: %v", algo, tc.n, tc.k, err)
			}
			want := ClassesToColors(b.NumEdges(), classes)
			for id := range colors {
				if colors[id] != want[id] {
					t.Fatalf("%v n=%d k=%d: reused arena diverges at edge %d: %d vs %d",
						algo, tc.n, tc.k, id, colors[id], want[id])
				}
			}
		}
	}
}

// TestFactorizerParallelBundles exercises the d parallel copies of a cyclic
// permutation — the adversarial "whole group to next group" demand graph —
// on a single reused arena across both odd and even multiplicities.
func TestFactorizerParallelBundles(t *testing.T) {
	for _, algo := range allAlgorithms {
		f := NewFactorizer()
		for _, d := range []int{1, 2, 3, 5, 8} {
			g := 6
			b := graph.New(g, g)
			for c := 0; c < d; c++ {
				for h := 0; h < g; h++ {
					b.AddEdge(h, (h+1)%g)
				}
			}
			colors := make([]int, b.NumEdges())
			if err := f.FactorizeInto(colors, b, algo); err != nil {
				t.Fatalf("%v d=%d: %v", algo, d, err)
			}
			if err := Verify(b, colors, d, g); err != nil {
				t.Fatalf("%v d=%d: %v", algo, d, err)
			}
		}
	}
}

// TestFactorizerReuseDeterministic pins that a warmed arena reproduces its
// own output exactly: scratch reuse must not leak state between calls.
func TestFactorizerReuseDeterministic(t *testing.T) {
	b := randomRegular(12, 7, rand.New(rand.NewSource(51)))
	for _, algo := range allAlgorithms {
		f := NewFactorizer()
		first := make([]int, b.NumEdges())
		if err := f.FactorizeInto(first, b, algo); err != nil {
			t.Fatal(err)
		}
		// Perturb the arena with a different instance in between.
		other := randomRegular(9, 4, rand.New(rand.NewSource(52)))
		otherColors := make([]int, other.NumEdges())
		if err := f.FactorizeInto(otherColors, other, algo); err != nil {
			t.Fatal(err)
		}
		again := make([]int, b.NumEdges())
		if err := f.FactorizeInto(again, b, algo); err != nil {
			t.Fatal(err)
		}
		for id := range first {
			if first[id] != again[id] {
				t.Fatalf("%v: arena reuse changed edge %d: %d vs %d", algo, id, first[id], again[id])
			}
		}
	}
}

// TestBalancedIntoMatchesWrapperAcrossShapes runs one arena through a
// shape-changing stream of Balanced instances (padding graph grows, shrinks
// and repeats) and compares against the fresh-arena wrapper.
func TestBalancedIntoMatchesWrapperAcrossShapes(t *testing.T) {
	cases := []struct{ n, k, colors, seed int }{
		{4, 2, 4, 61}, {6, 3, 6, 62}, {8, 8, 8, 63}, {6, 2, 3, 64},
		{4, 3, 12, 65}, {12, 4, 16, 66}, {4, 2, 4, 61}, // repeat of the first shape
	}
	for _, algo := range allAlgorithms {
		f := NewFactorizer()
		for _, tc := range cases {
			b := randomRegular(tc.n, tc.k, rand.New(rand.NewSource(int64(tc.seed))))
			want, err := Balanced(b, tc.colors, algo)
			if err != nil {
				t.Fatalf("%v n=%d k=%d C=%d: wrapper: %v", algo, tc.n, tc.k, tc.colors, err)
			}
			got := make([]int, b.NumEdges())
			if err := f.BalancedInto(got, b, tc.colors, algo); err != nil {
				t.Fatalf("%v n=%d k=%d C=%d: arena: %v", algo, tc.n, tc.k, tc.colors, err)
			}
			for id := range got {
				if got[id] != want[id] {
					t.Fatalf("%v n=%d k=%d C=%d: edge %d: %d vs %d",
						algo, tc.n, tc.k, tc.colors, id, got[id], want[id])
				}
			}
		}
	}
}

// TestFactorizerProperty is the randomized property check of the issue: for
// random k-regular bipartite multigraphs (parallel edges arise naturally
// from overlapping permutation rounds), every algorithm on a reused arena
// yields k disjoint perfect matchings.
func TestFactorizerProperty(t *testing.T) {
	arenas := map[Algorithm]*Factorizer{}
	for _, algo := range allAlgorithms {
		arenas[algo] = NewFactorizer()
	}
	f := func(nSeed, kSeed uint8, seed int64) bool {
		n := int(nSeed)%14 + 1
		k := int(kSeed)%9 + 1
		b := randomRegular(n, k, rand.New(rand.NewSource(seed)))
		for _, algo := range allAlgorithms {
			colors := make([]int, b.NumEdges())
			if err := arenas[algo].FactorizeInto(colors, b, algo); err != nil {
				return false
			}
			if err := Verify(b, colors, k, n); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// FuzzFactorizeInto drives the arena engine with fuzzer-chosen shapes and
// seeds; the corpus covers odd/even degrees and parallel-bundle graphs.
func FuzzFactorizeInto(f *testing.F) {
	f.Add(uint8(4), uint8(3), int64(1))
	f.Add(uint8(8), uint8(8), int64(2))
	f.Add(uint8(5), uint8(2), int64(3))
	f.Add(uint8(1), uint8(1), int64(4))
	f.Add(uint8(13), uint8(6), int64(5))
	fact := NewFactorizer()
	f.Fuzz(func(t *testing.T, nSeed, kSeed uint8, seed int64) {
		n := int(nSeed)%16 + 1
		k := int(kSeed)%10 + 1
		b := randomRegular(n, k, rand.New(rand.NewSource(seed)))
		for _, algo := range allAlgorithms {
			colors := make([]int, b.NumEdges())
			if err := fact.FactorizeInto(colors, b, algo); err != nil {
				t.Fatalf("%v n=%d k=%d: %v", algo, n, k, err)
			}
			if err := Verify(b, colors, k, n); err != nil {
				t.Fatalf("%v n=%d k=%d: %v", algo, n, k, err)
			}
		}
	})
}

// TestFactorizerAllocBudget is the steady-state allocation guard: after one
// warm-up call, FactorizeInto and BalancedInto on a reused arena must stay
// within a fixed allocation budget (the engine itself is allocation-free;
// the budget of 0 is the contract the planner's hot path relies on). CI
// runs this test as its perf-regression smoke.
func TestFactorizerAllocBudget(t *testing.T) {
	const budget = 0
	for _, algo := range []Algorithm{RepeatedMatching, EulerSplitDC, Insertion} {
		b := randomRegular(32, 16, rand.New(rand.NewSource(71)))
		f := NewFactorizer()
		colors := make([]int, b.NumEdges())
		if err := f.FactorizeInto(colors, b, algo); err != nil { // warm up
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if err := f.FactorizeInto(colors, b, algo); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > budget {
			t.Errorf("%v: FactorizeInto allocates %.1f/op on a warmed arena, budget %d", algo, allocs, budget)
		}
	}
	// Balanced with padding (the d < g planner path): C = n > k.
	b := randomRegular(24, 6, rand.New(rand.NewSource(72)))
	f := NewFactorizer()
	colors := make([]int, b.NumEdges())
	if err := f.BalancedInto(colors, b, 24, EulerSplitDC); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := f.BalancedInto(colors, b, 24, EulerSplitDC); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Errorf("BalancedInto allocates %.1f/op on a warmed arena, budget %d", allocs, budget)
	}
}

// BenchmarkFactorizerReuse contrasts the compatibility wrapper (fresh arena
// per call) with a reused arena on the planner-shaped workload.
func BenchmarkFactorizerReuse(b *testing.B) {
	for _, g := range []int{32, 128} {
		bb := randomRegular(g, g/2, rand.New(rand.NewSource(81)))
		b.Run(fmt.Sprintf("wrapper/g=%d", g), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Factorize(bb, EulerSplitDC); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("arena/g=%d", g), func(b *testing.B) {
			f := NewFactorizer()
			colors := make([]int, bb.NumEdges())
			if err := f.FactorizeInto(colors, bb, EulerSplitDC); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.FactorizeInto(colors, bb, EulerSplitDC); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
