package edgecolor

import (
	"fmt"

	"pops/internal/graph"
)

// Recolorer performs Kempe-chain (alternating-path) repairs on an
// edge-colored bipartite multigraph. It maintains, per color, the edge
// incident to each node — so properness (no two same-colored edges sharing a
// node) is enforced structurally: an edge can only move to a color that is
// free at both its endpoints, and flipping a full two-color component swaps
// the colors along a path or even cycle, which preserves properness by the
// classic Kempe argument.
//
// The fault-aware planner uses it to move demand edges off color classes
// whose relay coupler died: first by direct recoloring into classes with
// slack, then by component flips, finally by growing the color space
// (extra rounds) when no in-schedule repair exists.
type Recolorer struct {
	g      *graph.Bipartite
	colors []int // edge -> color; mutated in place (caller's slice)
	nL, nR int
	ncolor int   // colors currently tabled
	colL   []int // [c*nL + l] -> edge ID + 1 (0 = no edge of color c at l)
	colR   []int // [c*nR + r] -> edge ID + 1
	comp   []int // Component scratch, reused across calls
}

// NewRecolorer indexes an existing proper coloring of g: colors[e] is the
// color of edge e, every color in [0, ncolor). The colors slice is retained
// and mutated in place by Recolor/FlipComponent. It returns an error if the
// coloring is out of range or not proper.
func NewRecolorer(g *graph.Bipartite, colors []int, ncolor int) (*Recolorer, error) {
	if len(colors) != g.NumEdges() {
		return nil, fmt.Errorf("edgecolor: %d colors for %d edges", len(colors), g.NumEdges())
	}
	r := &Recolorer{
		g:      g,
		colors: colors,
		nL:     g.NLeft(),
		nR:     g.NRight(),
		ncolor: ncolor,
		colL:   make([]int, ncolor*g.NLeft()),
		colR:   make([]int, ncolor*g.NRight()),
	}
	for e, c := range colors {
		if c < 0 || c >= ncolor {
			return nil, fmt.Errorf("edgecolor: edge %d has color %d outside [0,%d)", e, c, ncolor)
		}
		ed := g.Edge(e)
		if prev := r.colL[c*r.nL+ed.L]; prev != 0 {
			return nil, fmt.Errorf("edgecolor: color %d repeated at left node %d (edges %d, %d)", c, ed.L, prev-1, e)
		}
		if prev := r.colR[c*r.nR+ed.R]; prev != 0 {
			return nil, fmt.Errorf("edgecolor: color %d repeated at right node %d (edges %d, %d)", c, ed.R, prev-1, e)
		}
		r.colL[c*r.nL+ed.L] = e + 1
		r.colR[c*r.nR+ed.R] = e + 1
	}
	return r, nil
}

// ColorCount returns the number of colors currently tabled.
func (r *Recolorer) ColorCount() int { return r.ncolor }

// Color returns the current color of edge e.
func (r *Recolorer) Color(e int) int { return r.colors[e] }

// Grow extends the color space to ncolor colors, all initially empty. The
// table layout keys by [color*nodeCount + node], so growth is an append.
func (r *Recolorer) Grow(ncolor int) {
	if ncolor <= r.ncolor {
		return
	}
	r.colL = append(r.colL, make([]int, (ncolor-r.ncolor)*r.nL)...)
	r.colR = append(r.colR, make([]int, (ncolor-r.ncolor)*r.nR)...)
	r.ncolor = ncolor
}

// EdgeAtL returns the edge of color c incident to left node l, or -1.
func (r *Recolorer) EdgeAtL(l, c int) int { return r.colL[c*r.nL+l] - 1 }

// EdgeAtR returns the edge of color c incident to right node rn, or -1.
func (r *Recolorer) EdgeAtR(rn, c int) int { return r.colR[c*r.nR+rn] - 1 }

// Recolor moves edge e to color c directly. The move must keep the coloring
// proper: c must be free at both endpoints of e.
func (r *Recolorer) Recolor(e, c int) error {
	if c < 0 || c >= r.ncolor {
		return fmt.Errorf("edgecolor: color %d outside [0,%d)", c, r.ncolor)
	}
	ed := r.g.Edge(e)
	if c == r.colors[e] {
		return nil
	}
	if other := r.EdgeAtL(ed.L, c); other >= 0 {
		return fmt.Errorf("edgecolor: color %d already at left node %d (edge %d)", c, ed.L, other)
	}
	if other := r.EdgeAtR(ed.R, c); other >= 0 {
		return fmt.Errorf("edgecolor: color %d already at right node %d (edge %d)", c, ed.R, other)
	}
	old := r.colors[e]
	r.colL[old*r.nL+ed.L] = 0
	r.colR[old*r.nR+ed.R] = 0
	r.colL[c*r.nL+ed.L] = e + 1
	r.colR[c*r.nR+ed.R] = e + 1
	r.colors[e] = c
	return nil
}

// Component returns the edges of the two-color alternating component through
// e in colors {Color(e), other} — a path or an even cycle, since each node
// touches at most one edge of each color. The result includes e and is valid
// until the next Component call. Passing other == Color(e) returns just e.
func (r *Recolorer) Component(e, other int) []int {
	a := r.colors[e]
	comp := append(r.comp[:0], e)
	if other == a {
		r.comp = comp
		return comp
	}
	closed := false
	// Walk away from e's left endpoint, then — unless the walk closed a
	// cycle back at e — away from its right endpoint.
	for dir := 0; dir < 2 && !closed; dir++ {
		onLeft := dir == 0
		var node int
		if onLeft {
			node = r.g.Edge(e).L
		} else {
			node = r.g.Edge(e).R
		}
		want := other
		for {
			var nxt int
			if onLeft {
				nxt = r.EdgeAtL(node, want)
			} else {
				nxt = r.EdgeAtR(node, want)
			}
			if nxt < 0 {
				break
			}
			if nxt == e {
				closed = true // even cycle: both walks would retrace it
				break
			}
			comp = append(comp, nxt)
			if onLeft {
				node = r.g.Edge(nxt).R
			} else {
				node = r.g.Edge(nxt).L
			}
			onLeft = !onLeft
			if r.colors[nxt] == a {
				want = other
			} else {
				want = a
			}
		}
	}
	r.comp = comp
	return comp
}

// FlipComponent swaps colors a and b along comp, which must be a complete
// two-color component as returned by Component(e, b) with Color(e) == a (or
// the symmetric call). Completeness is what makes the flip proper; flipping
// a partial chain would corrupt the tables, so violations panic.
func (r *Recolorer) FlipComponent(comp []int, a, b int) {
	for _, e := range comp {
		c := r.colors[e]
		ed := r.g.Edge(e)
		r.colL[c*r.nL+ed.L] = 0
		r.colR[c*r.nR+ed.R] = 0
	}
	for _, e := range comp {
		var c int
		switch r.colors[e] {
		case a:
			c = b
		case b:
			c = a
		default:
			panic(fmt.Sprintf("edgecolor: FlipComponent(%d,%d) over edge %d colored %d", a, b, e, r.colors[e]))
		}
		ed := r.g.Edge(e)
		if r.colL[c*r.nL+ed.L] != 0 || r.colR[c*r.nR+ed.R] != 0 {
			panic(fmt.Sprintf("edgecolor: FlipComponent over a partial component: edge %d collides at color %d", e, c))
		}
		r.colL[c*r.nL+ed.L] = e + 1
		r.colR[c*r.nR+ed.R] = e + 1
		r.colors[e] = c
	}
}
