package edgecolor

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pops/internal/graph"
)

// goldenPath pins the per-edge color assignment of every backend on a fixed
// family of graphs. The file was recorded with the original recursive
// implementation (pre-Factorizer); the arena engine must reproduce it
// byte-identically, so any diff means the deterministic coloring behaviour
// changed — review deliberately and regenerate with REGEN_GOLDEN=1.
const goldenPath = "testdata/factorize_golden.txt"

func goldenBundle(g, d int) *graph.Bipartite {
	b := graph.New(g, g)
	for c := 0; c < d; c++ {
		for h := 0; h < g; h++ {
			b.AddEdge(h, (h+1)%g)
		}
	}
	return b
}

// goldenCases enumerates (label, graph, k) factorization instances and
// (label, graph, C) balanced instances, all deterministic.
func goldenLines() []string {
	var lines []string
	factorize := []struct{ n, k, seed int }{
		{1, 1, 11}, {2, 2, 12}, {3, 2, 13}, {4, 4, 14}, {5, 3, 15},
		{8, 8, 16}, {16, 5, 17}, {9, 7, 18}, {12, 1, 19}, {6, 6, 20},
	}
	for _, algo := range allAlgorithms {
		for _, tc := range factorize {
			b := randomRegular(tc.n, tc.k, rand.New(rand.NewSource(int64(tc.seed))))
			classes, err := Factorize(b, algo)
			if err != nil {
				panic(fmt.Sprintf("golden %v n=%d k=%d: %v", algo, tc.n, tc.k, err))
			}
			colors := ClassesToColors(b.NumEdges(), classes)
			lines = append(lines, fmt.Sprintf("factorize algo=%v n=%d k=%d seed=%d colors=%s",
				algo, tc.n, tc.k, tc.seed, joinInts(colors)))
		}
		for _, d := range []int{1, 2, 5, 8} {
			b := goldenBundle(6, d)
			classes, err := Factorize(b, algo)
			if err != nil {
				panic(fmt.Sprintf("golden bundle %v d=%d: %v", algo, d, err))
			}
			colors := ClassesToColors(b.NumEdges(), classes)
			lines = append(lines, fmt.Sprintf("factorize-bundle algo=%v g=6 d=%d colors=%s",
				algo, d, joinInts(colors)))
		}
		balanced := []struct{ n, k, colors, seed int }{
			{4, 2, 4, 31}, {6, 3, 6, 32}, {8, 8, 8, 33}, {6, 2, 3, 34},
			{4, 3, 12, 35}, {12, 4, 16, 36}, {9, 3, 9, 37},
		}
		for _, tc := range balanced {
			b := randomRegular(tc.n, tc.k, rand.New(rand.NewSource(int64(tc.seed))))
			colors, err := Balanced(b, tc.colors, algo)
			if err != nil {
				panic(fmt.Sprintf("golden balanced %v n=%d k=%d C=%d: %v", algo, tc.n, tc.k, tc.colors, err))
			}
			lines = append(lines, fmt.Sprintf("balanced algo=%v n=%d k=%d C=%d seed=%d colors=%s",
				algo, tc.n, tc.k, tc.colors, tc.seed, joinInts(colors)))
		}
	}
	return lines
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}

func TestFactorizeGoldenColors(t *testing.T) {
	got := strings.Join(goldenLines(), "\n") + "\n"
	if os.Getenv("REGEN_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d lines)", goldenPath, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (REGEN_GOLDEN=1 to regenerate): %v", err)
	}
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("golden colors changed at line %d:\ngot:  %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("golden colors changed: got %d lines, want %d", len(gl), len(wl))
	}
}
