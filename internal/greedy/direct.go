package greedy

import (
	"fmt"

	"pops/internal/perms"
	"pops/internal/popsnet"
)

// MaxPairMultiplicity returns µmax: the largest number of packets sharing
// one (source group, destination group) pair under pi. Every direct
// (relay-free) router needs at least µmax slots, because those packets
// serialize on a single coupler.
func MaxPairMultiplicity(d, g int, pi []int) (int, error) {
	if d < 1 || g < 1 {
		return 0, fmt.Errorf("greedy: invalid shape d=%d g=%d", d, g)
	}
	if len(pi) != d*g {
		return 0, fmt.Errorf("greedy: permutation length %d, want %d", len(pi), d*g)
	}
	if err := perms.Validate(pi); err != nil {
		return 0, fmt.Errorf("greedy: %w", err)
	}
	mult := make(map[[2]int]int)
	max := 0
	for p, dest := range pi {
		key := [2]int{p / d, dest / d}
		mult[key]++
		if mult[key] > max {
			max = mult[key]
		}
	}
	return max, nil
}

// DirectOptimal routes pi with direct transfers in exactly
// MaxPairMultiplicity(d, g, pi) slots — the optimum over all relay-free
// routers. The k-th packet of every (source group, destination group)
// bundle is scheduled in slot k: within a slot every coupler carries at most
// one packet by construction, and sender/receiver constraints are trivially
// met because each processor sends and receives exactly one packet overall.
//
// This recovers the specialized results of Sahni 2000a that the general
// 2⌈d/g⌉ bound does not reach: matrix transpose has µmax = ⌈d/g⌉, so
// DirectOptimal routes it in ⌈d/g⌉ slots, half of Theorem 2's budget.
func DirectOptimal(d, g int, pi []int) (*Result, error) {
	maxMult, err := MaxPairMultiplicity(d, g, pi)
	if err != nil {
		return nil, err
	}
	return DirectOptimalWithMu(d, g, pi, maxMult)
}

// DirectOptimalWithMu is DirectOptimal with a precomputed
// MaxPairMultiplicity(d, g, pi) value, for callers (the Auto router) that
// already classified the permutation and must not pay for a second counting
// pass. maxMult must be exact: a smaller value makes the slot assignment
// below index out of range.
func DirectOptimalWithMu(d, g int, pi []int, maxMult int) (*Result, error) {
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		return nil, err
	}
	slots := make([]popsnet.Slot, maxMult)
	rank := make(map[[2]int]int)
	for p, dest := range pi {
		key := [2]int{nw.Group(p), nw.Group(dest)}
		k := rank[key]
		rank[key] = k + 1
		slots[k].Sends = append(slots[k].Sends, popsnet.Send{
			Src: p, DestGroup: nw.Group(dest), Packet: p,
		})
		slots[k].Recvs = append(slots[k].Recvs, popsnet.Recv{
			Proc: dest, SrcGroup: nw.Group(p),
		})
	}
	sched := &popsnet.Schedule{Net: nw, Slots: slots}
	return &Result{Schedule: sched, Slots: maxMult}, nil
}
