package greedy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pops/internal/core"
	"pops/internal/perms"
	"pops/internal/popsnet"
)

func TestMaxPairMultiplicity(t *testing.T) {
	// Group rotation: all d packets of a group share one pair.
	pi, err := perms.GroupRotation(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MaxPairMultiplicity(4, 2, pi)
	if err != nil {
		t.Fatal(err)
	}
	if m != 4 {
		t.Fatalf("µmax = %d, want 4", m)
	}
	// d = 1: every pair is distinct.
	m, err = MaxPairMultiplicity(1, 4, perms.VectorReversal(4))
	if err != nil {
		t.Fatal(err)
	}
	if m != 1 {
		t.Fatalf("µmax = %d, want 1", m)
	}
	if _, err := MaxPairMultiplicity(0, 2, nil); err == nil {
		t.Fatal("bad shape accepted")
	}
	if _, err := MaxPairMultiplicity(2, 2, []int{0, 0, 1, 1}); err == nil {
		t.Fatal("non-permutation accepted")
	}
}

func TestDirectOptimalDelivers(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, tc := range []struct{ d, g int }{{1, 6}, {2, 2}, {4, 4}, {8, 2}, {3, 5}} {
		pi := perms.Random(tc.d*tc.g, rng)
		res, err := DirectOptimal(tc.d, tc.g, pi)
		if err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
		if _, err := popsnet.VerifyPermutationRouted(res.Schedule, pi); err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
		mu, err := MaxPairMultiplicity(tc.d, tc.g, pi)
		if err != nil {
			t.Fatal(err)
		}
		if res.Slots != mu {
			t.Fatalf("d=%d g=%d: slots = %d, want µmax = %d", tc.d, tc.g, res.Slots, mu)
		}
	}
}

func TestDirectOptimalTransposeMeetsSahniBound(t *testing.T) {
	// Sahni 2000a: transpose routes in ⌈d/g⌉ slots, half of the general
	// 2⌈d/g⌉. DirectOptimal recovers it because transpose demand has
	// µmax = ⌈d/g⌉.
	for _, tc := range []struct{ m, d, g int }{
		{4, 4, 4},  // d = g: one slot
		{4, 8, 2},  // d > g: 4 slots = d/g
		{4, 2, 8},  // d < g: 1 slot = ⌈d/g⌉
		{8, 16, 4}, // 4 slots
		{8, 8, 8},  // 1 slot
	} {
		pi := perms.Transpose(tc.m, tc.m)
		res, err := DirectOptimal(tc.d, tc.g, pi)
		if err != nil {
			t.Fatal(err)
		}
		want := (tc.d + tc.g - 1) / tc.g
		if res.Slots != want {
			t.Fatalf("m=%d d=%d g=%d: transpose slots = %d, want ⌈d/g⌉ = %d",
				tc.m, tc.d, tc.g, res.Slots, want)
		}
		if _, err := popsnet.VerifyPermutationRouted(res.Schedule, pi); err != nil {
			t.Fatal(err)
		}
		// Half of the universal bound whenever d > g.
		if general := core.OptimalSlots(tc.d, tc.g); res.Slots*2 != general && tc.d > 1 {
			t.Fatalf("m=%d d=%d g=%d: specialized %d vs general %d, want exactly half",
				tc.m, tc.d, tc.g, res.Slots, general)
		}
	}
}

func TestDirectOptimalNeverBeatenByGreedy(t *testing.T) {
	// DirectOptimal is optimal among direct routers, so greedy (also direct)
	// can never use fewer slots.
	f := func(dSeed, gSeed uint8, seed int64) bool {
		d := int(dSeed)%6 + 1
		g := int(gSeed)%6 + 1
		pi := perms.Random(d*g, rand.New(rand.NewSource(seed)))
		opt, err := DirectOptimal(d, g, pi)
		if err != nil {
			return false
		}
		gr, err := Route(d, g, pi)
		if err != nil {
			return false
		}
		if gr.Slots < opt.Slots {
			return false
		}
		_, err = popsnet.VerifyPermutationRouted(opt.Schedule, pi)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectOptimalAdversarialStillD(t *testing.T) {
	// Group rotation is the instance where NO direct router helps: µmax = d,
	// while Theorem 2's relay routing needs only 2⌈d/g⌉.
	pi, err := perms.GroupRotation(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DirectOptimal(16, 4, pi)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 16 {
		t.Fatalf("direct-optimal slots = %d, want 16", res.Slots)
	}
	if relay := core.OptimalSlots(16, 4); relay >= res.Slots {
		t.Fatalf("relay routing (%d) should beat direct optimum (%d)", relay, res.Slots)
	}
}
