// Package greedy is the direct-routing baseline: packets travel straight
// from source to destination (no relays), and each slot greedily packs a
// maximal conflict-free subset of the remaining packets. Without the
// two-phase fair-distribution idea of Theorem 2, adversarial permutations —
// all d packets of a group targeting one group — serialize on a single
// coupler and need d slots instead of 2⌈d/g⌉.
//
// Greedy always terminates: the lowest-numbered undelivered packet is always
// schedulable, so every slot delivers at least one packet.
package greedy

import (
	"fmt"

	"pops/internal/perms"
	"pops/internal/popsnet"
)

// Result is a greedy routing outcome.
type Result struct {
	Schedule *popsnet.Schedule
	// Slots is the number of slots used (len(Schedule.Slots)).
	Slots int
}

// Route computes the greedy direct schedule for pi on POPS(d, g).
func Route(d, g int, pi []int) (*Result, error) {
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		return nil, err
	}
	if len(pi) != nw.N() {
		return nil, fmt.Errorf("greedy: permutation length %d, want %d", len(pi), nw.N())
	}
	if err := perms.Validate(pi); err != nil {
		return nil, fmt.Errorf("greedy: %w", err)
	}

	n := nw.N()
	delivered := make([]bool, n)
	remaining := n
	sched := &popsnet.Schedule{Net: nw}
	for remaining > 0 {
		slot := popsnet.Slot{}
		couplerBusy := make(map[int]bool)
		recvBusy := make(map[int]bool)
		for p := 0; p < n; p++ {
			if delivered[p] {
				continue
			}
			dest := pi[p]
			cid := nw.CouplerID(nw.Group(dest), nw.Group(p))
			if couplerBusy[cid] || recvBusy[dest] {
				continue
			}
			couplerBusy[cid] = true
			recvBusy[dest] = true
			slot.Sends = append(slot.Sends, popsnet.Send{Src: p, DestGroup: nw.Group(dest), Packet: p})
			slot.Recvs = append(slot.Recvs, popsnet.Recv{Proc: dest, SrcGroup: nw.Group(p)})
			delivered[p] = true
			remaining--
		}
		if len(slot.Sends) == 0 {
			// Unreachable: the first undelivered packet always fits.
			return nil, fmt.Errorf("greedy: internal error: empty slot with %d packets left", remaining)
		}
		sched.Slots = append(sched.Slots, slot)
	}
	return &Result{Schedule: sched, Slots: len(sched.Slots)}, nil
}
