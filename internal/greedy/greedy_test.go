package greedy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pops/internal/core"
	"pops/internal/perms"
	"pops/internal/popsnet"
)

func TestRouteValidation(t *testing.T) {
	if _, err := Route(0, 2, nil); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := Route(2, 2, []int{0}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := Route(2, 2, []int{0, 0, 1, 1}); err == nil {
		t.Fatal("non-permutation accepted")
	}
}

func TestGreedyDeliversRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, tc := range []struct{ d, g int }{{1, 4}, {2, 2}, {4, 4}, {8, 2}, {3, 5}} {
		pi := perms.Random(tc.d*tc.g, rng)
		res, err := Route(tc.d, tc.g, pi)
		if err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
		if _, err := popsnet.VerifyPermutationRouted(res.Schedule, pi); err != nil {
			t.Fatalf("d=%d g=%d: %v", tc.d, tc.g, err)
		}
	}
}

func TestGreedyAdversarialNeedsDSlots(t *testing.T) {
	// Group rotation: all d packets of each group fight for one coupler.
	// Greedy (direct) needs exactly d slots; Theorem 2 needs 2⌈d/g⌉.
	for _, tc := range []struct{ d, g int }{{4, 4}, {8, 2}, {16, 4}, {6, 3}} {
		pi, err := perms.GroupRotation(tc.d, tc.g, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Route(tc.d, tc.g, pi)
		if err != nil {
			t.Fatal(err)
		}
		if res.Slots != tc.d {
			t.Fatalf("d=%d g=%d: greedy slots = %d, want %d", tc.d, tc.g, res.Slots, tc.d)
		}
		if opt := core.OptimalSlots(tc.d, tc.g); tc.d > opt && res.Slots <= opt {
			t.Fatalf("d=%d g=%d: adversarial instance did not separate greedy from Theorem 2", tc.d, tc.g)
		}
		if _, err := popsnet.VerifyPermutationRouted(res.Schedule, pi); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGreedyOneSlotWhenRoutable(t *testing.T) {
	// A permutation with all distinct group pairs routes greedily in 1 slot.
	rng := rand.New(rand.NewSource(56))
	pi := perms.Random(6, rng) // d=1, g=6: always one slot
	res, err := Route(1, 6, pi)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 1 {
		t.Fatalf("slots = %d, want 1", res.Slots)
	}
}

func TestGreedyIdentity(t *testing.T) {
	// Identity on POPS(d,g): all d packets of group h use coupler c(h,h);
	// greedy needs d slots even though zero communication is semantically
	// needed — greedy always physically moves packets.
	res, err := Route(3, 2, perms.Identity(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 3 {
		t.Fatalf("slots = %d, want 3", res.Slots)
	}
	if _, err := popsnet.VerifyPermutationRouted(res.Schedule, perms.Identity(6)); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyNeverBeatsCouplerCapacity(t *testing.T) {
	// Sanity: greedy can move at most g² packets per slot, so it uses at
	// least ⌈n/g²⌉ slots; and it is never worse than n slots.
	f := func(dSeed, gSeed uint8, seed int64) bool {
		d := int(dSeed)%6 + 1
		g := int(gSeed)%6 + 1
		n := d * g
		pi := perms.Random(n, rand.New(rand.NewSource(seed)))
		res, err := Route(d, g, pi)
		if err != nil {
			return false
		}
		min := (n + g*g - 1) / (g * g)
		if res.Slots < min || res.Slots > n {
			return false
		}
		_, err = popsnet.VerifyPermutationRouted(res.Schedule, pi)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
