package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"pops"
	"pops/internal/obs"
	"pops/internal/wire"
	"pops/internal/wirebin"
)

// maxRequestBody mirrors the backend bound (internal/service): the largest
// sensible request is a batch of large permutations, far under this.
const maxRequestBody = 64 << 20

// Handler returns the proxy's HTTP surface — byte-compatible with a single
// popsserved node, so clients move between one machine and a fleet by
// changing a URL:
//
//	POST /route         placed on the workload's ring owner, failover on
//	                    connection errors (planning is idempotent)
//	POST /route/stream  placed the same way; backend NDJSON records are
//	                    re-framed chunk by chunk, never buffering the plan
//	GET  /slots         any owner (pure function of the shape)
//	GET  /stats         fleet aggregate with per-backend breakdown
//	GET  /metrics       Prometheus text exposition, backends labeled by id
//	GET  /debug/slow    slowest proxied requests with phase breakdowns
//	GET  /healthz       "ok" while ≥1 backend is admitted to placement
//
// Every proxied request carries an X-Request-Id — the client's if it sent
// one, a generated one otherwise — forwarded on the backend hop and echoed
// in the proxy's response headers, so one ID follows a request across tiers.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /route", p.handleRoute)
	mux.HandleFunc("POST /route/stream", p.handleRouteStream)
	mux.HandleFunc("GET /slots", p.handleSlots)
	mux.HandleFunc("GET /stats", p.handleStats)
	mux.Handle("GET /metrics", p.metrics)
	mux.HandleFunc("GET /debug/slow", p.handleSlow)
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	return mux
}

// requestID resolves the request's ID: the caller's X-Request-Id when
// present, else a fresh one.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		return id
	}
	return obs.NewRequestID()
}

// enter admits one proxied request into the drain group; it reports false —
// and the caller answers 503 — once Close has started.
func (p *Proxy) enter() bool {
	p.inflight.Add(1)
	if p.closed.Load() {
		p.inflight.Done()
		return false
	}
	return true
}

// requestKey reads just enough of a route request to place it: the shape
// plus the workload fingerprint, computed exactly as the backends compute it
// so proxy placement and backend caches agree. A batch is keyed by the fold
// of its members' fingerprints — a replayed batch lands on the node that
// planned it. Unknown workload kinds (a newer client behind an older proxy)
// are keyed by shape alone and forwarded; the owning backend produces the
// authoritative error or answer.
func requestKey(req *wire.RouteRequest) uint64 {
	switch req.Workload {
	case "", wire.WorkloadPermutation:
		if len(req.Pis) > 0 {
			var fp uint64
			for _, pi := range req.Pis {
				fp = mix64(fp ^ pops.PermutationFingerprint(pi))
			}
			return placementKey(req.D, req.G, fp)
		}
		return placementKey(req.D, req.G, pops.PermutationFingerprint(req.Pi))
	case wire.WorkloadHRelation:
		reqs := make([]pops.Request, len(req.Requests))
		for i, r := range req.Requests {
			reqs[i] = pops.Request{Src: r.Src, Dst: r.Dst}
		}
		return placementKey(req.D, req.G, pops.WorkloadFingerprint(pops.HRelation(reqs)))
	case wire.WorkloadAllToAll:
		return placementKey(req.D, req.G, pops.WorkloadFingerprint(pops.AllToAll()))
	case wire.WorkloadOneToAll:
		return placementKey(req.D, req.G, pops.WorkloadFingerprint(pops.OneToAll(req.Speaker)))
	case wire.WorkloadFaultyPermutation:
		var fs pops.FaultSet
		if req.Faults != nil {
			fs.Couplers = make([]pops.Coupler, len(req.Faults.Couplers))
			for i, c := range req.Faults.Couplers {
				fs.Couplers[i] = pops.Coupler{B: c.B, A: c.A}
			}
			fs.Groups = req.Faults.Groups
		}
		return placementKey(req.D, req.G, pops.WorkloadFingerprint(pops.FaultyPermutation(req.Pi, fs)))
	default:
		return placementKey(req.D, req.G, 0)
	}
}

// forward posts body to path on the owners of key in failover order and
// returns the first reachable backend's response (non-2xx answers other than
// overload verdicts are deterministic and are relayed, not retried; a 429 is
// surfaced as *pops.OverloadError so tryOwners can spill it once). The
// caller owns the response body. The request ID travels on the backend hop
// as X-Request-Id, the caller's deadline and tenant headers travel with it,
// and sp (nil-safe) records which backend ultimately answered; attempts run
// sequentially on the calling goroutine, so the last write wins without
// synchronization.
func (p *Proxy) forward(ctx context.Context, key uint64, path string, body []byte, stream bool, id string, hdr http.Header, sp *obs.Span) (*http.Response, error) {
	return tryOwners(p, ctx, key, func(b *backend) (*http.Response, error) {
		b.requests.Add(1)
		if stream {
			b.streams.Add(1)
		}
		if sp != nil {
			sp.Backend = b.id
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.id+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		// The backend hop carries the caller's codec negotiation unchanged:
		// its request Content-Type (binary-framed bodies pass through) and
		// its Accept (the backend picks the response codec, the proxy just
		// relays whatever framing comes back).
		ct := hdr.Get("Content-Type")
		if ct == "" {
			ct = "application/json"
		}
		req.Header.Set("Content-Type", ct)
		req.Header.Set("X-Request-Id", id)
		for _, h := range []string{wire.HeaderDeadline, wire.HeaderTenant, "Accept"} {
			if v := hdr.Get(h); v != "" {
				req.Header.Set(h, v)
			}
		}
		resp, err := p.cfg.Client.Do(req)
		if err != nil {
			return nil, err
		}
		if oe := pops.OverloadFromResponse(resp); oe != nil {
			// Shedding is not death: drain the 429 and hand tryOwners the
			// typed verdict — it spills to the next ring owner once instead
			// of ejecting a backend that is alive and protecting itself.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
			resp.Body.Close()
			return nil, oe
		}
		return resp, nil
	})
}

// forwardError maps a forwarding failure to the proxy's answer: a caller
// hang-up stays silent, an overload verdict is relayed as 429 + Retry-After,
// exhausted failover is 502.
func forwardError(w http.ResponseWriter, ctx context.Context, err error) {
	if ctx.Err() != nil {
		return // the caller went away; nobody is reading the answer
	}
	var oe *pops.OverloadError
	if errors.As(err, &oe) {
		writeOverload(w, oe)
		return
	}
	http.Error(w, err.Error(), http.StatusBadGateway)
}

// writeOverload answers an overload verdict exactly as popsserved does —
// 429 with the Retry-After pair and attribution headers — so a client
// behind the proxy sheds and backs off identically to one talking to a
// single node.
func writeOverload(w http.ResponseWriter, oe *pops.OverloadError) {
	ra := oe.RetryAfter
	if ra <= 0 {
		ra = 50 * time.Millisecond
	}
	secs := int64((ra + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set(wire.HeaderRetryAfterMs, strconv.FormatInt(int64((ra+time.Millisecond-1)/time.Millisecond), 10))
	if oe.Queue != "" {
		w.Header().Set(wire.HeaderOverloadQueue, oe.Queue)
	}
	if oe.Tenant != "" {
		w.Header().Set(wire.HeaderTenant, oe.Tenant)
	}
	http.Error(w, oe.Error(), http.StatusTooManyRequests)
}

// decodeProxyRequest reads a route request body in whichever codec the
// caller framed it — a binary FrameRequest when the Content-Type says so,
// JSON otherwise — so placement sees the same fields either way. The raw
// body bytes are forwarded to the backend unchanged regardless of codec.
func decodeProxyRequest(contentType string, body []byte, req *wire.RouteRequest) error {
	if !wirebin.IsContentType(contentType) {
		return json.Unmarshal(body, req)
	}
	dec := wirebin.GetDecoder(bytes.NewReader(body))
	defer wirebin.PutDecoder(dec)
	typ, payload, err := dec.ReadFrame()
	if err != nil {
		return err
	}
	if typ != wirebin.FrameRequest {
		return fmt.Errorf("frame type %d, want request", typ)
	}
	return wirebin.DecodeRequest(payload, req)
}

func (p *Proxy) handleRoute(w http.ResponseWriter, r *http.Request) {
	if !p.enter() {
		http.Error(w, ErrClosed.Error(), http.StatusServiceUnavailable)
		return
	}
	defer p.inflight.Done()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		http.Error(w, "cluster: reading request: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req wire.RouteRequest
	if err := decodeProxyRequest(r.Header.Get("Content-Type"), body, &req); err != nil {
		http.Error(w, "cluster: decoding request: "+err.Error(), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	id := requestID(r)
	w.Header().Set("X-Request-Id", id)
	sp := p.tracer.Start(id, req.D, req.G)
	sp.Strategy = req.Strategy
	sp.Workload = req.Workload
	sp.Begin(obs.PhaseForward)
	resp, err := p.forward(ctx, requestKey(&req), "/route", body, false, id, r.Header, sp)
	sp.End()
	if err != nil {
		forwardError(w, ctx, err)
		p.latency.Observe(p.tracer.Finish(sp))
		return
	}
	defer resp.Body.Close()
	relayHeader(w, resp)
	sp.Begin(obs.PhaseEncode)
	_, _ = io.Copy(w, resp.Body) // mid-copy failures mean the caller went away
	p.latency.Observe(p.tracer.Finish(sp))
}

// relayHeader copies the backend's content type, request ID, and status
// through.
func relayHeader(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if id := resp.Header.Get("X-Request-Id"); id != "" {
		w.Header().Set("X-Request-Id", id)
	}
	w.WriteHeader(resp.StatusCode)
}

// handleRouteStream places a slot stream on its ring owner and re-frames the
// backend's NDJSON records one line at a time: each complete line is written
// and flushed as its own chunk, so the proxy adds one record of latency, not
// one plan — nothing is buffered beyond the line in flight. Failover covers
// stream admission only; once records have been relayed, a backend failure
// becomes a wire "error" record (delivered fragments cannot be replayed).
func (p *Proxy) handleRouteStream(w http.ResponseWriter, r *http.Request) {
	if !p.enter() {
		http.Error(w, ErrClosed.Error(), http.StatusServiceUnavailable)
		return
	}
	defer p.inflight.Done()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		http.Error(w, "cluster: reading request: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req wire.RouteRequest
	if err := decodeProxyRequest(r.Header.Get("Content-Type"), body, &req); err != nil {
		http.Error(w, "cluster: decoding request: "+err.Error(), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	id := requestID(r)
	w.Header().Set("X-Request-Id", id)
	sp := p.tracer.Start(id, req.D, req.G)
	sp.Strategy = req.Strategy
	sp.Workload = req.Workload
	// Stream spans feed the slow ring only, not the latency histogram: a
	// stream's wall clock is dominated by how fast the caller reads.
	defer p.tracer.Finish(sp)
	sp.Begin(obs.PhaseForward)
	resp, err := p.forward(ctx, requestKey(&req), "/route/stream", body, true, id, r.Header, sp)
	sp.End()
	if err != nil {
		forwardError(w, ctx, err)
		return
	}
	defer resp.Body.Close()
	// Relay the backend's response headers — content type and X-Request-Id —
	// for every status: a stream answered 200 used to overwrite them with a
	// hardcoded content type, dropping the backend's request-ID echo.
	relayHeader(w, resp)
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(w, resp.Body)
		return
	}

	flusher, _ := w.(http.Flusher)
	if wirebin.IsContentType(resp.Header.Get("Content-Type")) {
		p.relayBinaryStream(ctx, w, flusher, resp.Body, sp)
		return
	}
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadBytes('\n')
		// Relay only complete records: a partial line truncated by a backend
		// failure is dropped, and the failure surfaces as an error record.
		if len(line) > 0 && line[len(line)-1] == '\n' {
			sp.Begin(obs.PhaseEncode)
			_, werr := w.Write(line)
			if flusher != nil {
				flusher.Flush()
			}
			sp.End()
			if werr != nil {
				return // the caller went away; the deferred Close hangs up upstream
			}
		}
		if err == io.EOF {
			return
		}
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			rec, _ := json.Marshal(wire.StreamRecord{Type: "error", Error: fmt.Sprintf("cluster: backend stream: %v", err)})
			if _, werr := w.Write(append(rec, '\n')); werr == nil && flusher != nil {
				flusher.Flush()
			}
			return
		}
	}
}

// relayBinaryStream re-frames a backend's binary slot stream one whole frame
// at a time: the Reframer reassembles frames that span HTTP chunk boundaries
// (the backend's flush points and the proxy transport's reads need not
// agree), and each reassembled frame is written and flushed as its own
// chunk without decoding its fields. A backend failure mid-stream becomes an
// in-band binary error frame, mirroring the NDJSON error record.
func (p *Proxy) relayBinaryStream(ctx context.Context, w http.ResponseWriter, flusher http.Flusher, body io.Reader, sp *obs.Span) {
	rf := wirebin.NewReframer(body)
	for {
		frame, err := rf.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			enc := wirebin.GetEncoder()
			errFrame := enc.AppendError(fmt.Sprintf("cluster: backend stream: %v", err))
			if _, werr := w.Write(errFrame); werr == nil && flusher != nil {
				flusher.Flush()
			}
			wirebin.PutEncoder(enc)
			return
		}
		sp.Begin(obs.PhaseEncode)
		_, werr := w.Write(frame)
		if flusher != nil {
			flusher.Flush()
		}
		sp.End()
		if werr != nil {
			return // the caller went away; the deferred Close hangs up upstream
		}
	}
}

func (p *Proxy) handleSlots(w http.ResponseWriter, r *http.Request) {
	if !p.enter() {
		http.Error(w, ErrClosed.Error(), http.StatusServiceUnavailable)
		return
	}
	defer p.inflight.Done()
	q := r.URL.Query()
	d, errD := strconv.Atoi(q.Get("d"))
	g, errG := strconv.Atoi(q.Get("g"))
	if errD != nil || errG != nil {
		http.Error(w, "cluster: /slots needs integer query parameters d and g", http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	slots, err := p.Slots(ctx, d, g)
	if err != nil {
		var oe *pops.OverloadError
		if isConnErr(err) || errors.As(err, &oe) || ctx.Err() != nil {
			forwardError(w, ctx, err)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, wire.SlotsResponse{D: d, G: g, Slots: slots})
}

func (p *Proxy) handleStats(w http.ResponseWriter, r *http.Request) {
	if !p.enter() {
		http.Error(w, ErrClosed.Error(), http.StatusServiceUnavailable)
		return
	}
	defer p.inflight.Done()
	stats, err := p.Stats(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, stats)
}

// handleSlow serves GET /debug/slow: the slowest proxied requests, worst
// first, with forward/encode phase breakdowns and the answering backend's
// identity. ?n= bounds the list.
func (p *Proxy) handleSlow(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("n"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, "cluster: /debug/slow?n= takes a non-negative integer", http.StatusBadRequest)
			return
		}
		limit = n
	}
	writeJSON(w, wire.SlowResponse{
		Server:   "popsproxy",
		Requests: p.tracer.Slow.Snapshot(limit),
	})
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := p.Healthz(r.Context()); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(v)
}
