package cluster

import (
	"pops/internal/obs"
)

// collectMetrics renders the proxy's own counters in Prometheus text
// exposition format: per-backend placement series labeled by backend
// identity — so failovers and ejections are attributable to the node that
// caused them — plus fleet-level aggregates and the proxy's end-to-end
// /route latency histogram. It runs on every GET /metrics scrape against
// the live counters; backend-reported metrics are not re-exported here
// (scrape the backends, or read the fleet-merged GET /stats).
func (p *Proxy) collectMetrics(mw *obs.MetricWriter) {
	var healthy, requests, streams, failovers, errors, ejections, sheds, opens uint64
	for _, b := range p.backends {
		if b.healthy.Load() {
			healthy++
		}
		requests += b.requests.Load()
		streams += b.streams.Load()
		failovers += b.failovers.Load()
		errors += b.errors.Load()
		ejections += b.ejections.Load()
		sheds += b.sheds.Load()
		opens += b.brOpens.Load()
	}

	mw.Gauge("pops_fleet_backends", "Backends configured on the ring.")
	mw.Value("", float64(len(p.backends)))
	mw.Gauge("pops_fleet_healthy_backends", "Backends currently admitted to placement.")
	mw.Value("", float64(healthy))
	mw.Counter("pops_fleet_requests_total", "Requests the proxy placed, summed across backends.")
	mw.Value("", float64(requests))
	mw.Counter("pops_fleet_streams_total", "Slot streams the proxy placed, summed across backends.")
	mw.Value("", float64(streams))
	mw.Counter("pops_fleet_failovers_total", "Placements that left their ring owner for a successor.")
	mw.Value("", float64(failovers))
	mw.Counter("pops_fleet_errors_total", "Connection errors observed across backends.")
	mw.Value("", float64(errors))
	mw.Counter("pops_fleet_ejections_total", "Healthy-to-ejected backend transitions.")
	mw.Value("", float64(ejections))
	mw.Counter("pops_fleet_sheds_total", "Overload verdicts observed across backends (429s plus proxy-cap skips).")
	mw.Value("", float64(sheds))
	mw.Counter("pops_fleet_breaker_opens_total", "Circuit-breaker open transitions across backends.")
	mw.Value("", float64(opens))

	mw.Gauge("pops_proxy_backend_healthy", "Whether the backend is admitted to placement (1) or ejected (0).")
	for _, b := range p.backends {
		v := 0.0
		if b.healthy.Load() {
			v = 1
		}
		mw.Value(obs.Labels("backend", b.id), v)
	}
	mw.Counter("pops_proxy_backend_requests_total", "Requests placed on the backend.")
	for _, b := range p.backends {
		mw.Value(obs.Labels("backend", b.id), float64(b.requests.Load()))
	}
	mw.Counter("pops_proxy_backend_streams_total", "Slot streams placed on the backend.")
	for _, b := range p.backends {
		mw.Value(obs.Labels("backend", b.id), float64(b.streams.Load()))
	}
	mw.Counter("pops_proxy_backend_failovers_total", "Requests that left the backend for the next ring owner.")
	for _, b := range p.backends {
		mw.Value(obs.Labels("backend", b.id), float64(b.failovers.Load()))
	}
	mw.Counter("pops_proxy_backend_errors_total", "Connection errors observed on the backend.")
	for _, b := range p.backends {
		mw.Value(obs.Labels("backend", b.id), float64(b.errors.Load()))
	}
	mw.Counter("pops_proxy_backend_ejections_total", "Healthy-to-ejected transitions of the backend.")
	for _, b := range p.backends {
		mw.Value(obs.Labels("backend", b.id), float64(b.ejections.Load()))
	}
	mw.Counter("pops_proxy_backend_sheds_total", "Overload verdicts observed on the backend (429s plus proxy-cap skips).")
	for _, b := range p.backends {
		mw.Value(obs.Labels("backend", b.id), float64(b.sheds.Load()))
	}
	mw.Gauge("pops_proxy_backend_inflight", "Proxied forwards currently in flight on the backend.")
	for _, b := range p.backends {
		mw.Value(obs.Labels("backend", b.id), float64(b.inflight.Load()))
	}
	mw.Gauge("pops_proxy_backend_breaker_state", "Circuit-breaker state: 0 closed, 1 half-open, 2 open.")
	for _, b := range p.backends {
		v := 0.0
		switch b.brState.Load() {
		case brHalfOpen:
			v = 1
		case brOpen:
			v = 2
		}
		mw.Value(obs.Labels("backend", b.id), v)
	}
	mw.Counter("pops_proxy_backend_breaker_opens_total", "Circuit-breaker open transitions of the backend.")
	for _, b := range p.backends {
		mw.Value(obs.Labels("backend", b.id), float64(b.brOpens.Load()))
	}
	mw.Gauge("pops_proxy_backend_latency_ewma_seconds", "Forward-latency EWMA of the backend (alpha 0.2).")
	for _, b := range p.backends {
		mw.Value(obs.Labels("backend", b.id), b.latencyEWMA().Seconds())
	}

	mw.HistogramFamily("pops_proxy_request_latency_seconds", "Proxy end-to-end /route latency (forward plus relay).")
	mw.Histogram("", p.latency.Snapshot(), p.latency.Sum())
}
