package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pops"
	"pops/internal/service"
	"pops/internal/wire"
)

// fleet boots n in-process popsserved backends (real service handlers over
// real HTTP) plus a proxy over them. Callers get the proxy, the backend
// servers (kill one with .Close()), and the services for direct inspection.
func fleet(t testing.TB, n int, svcCfg service.Config, proxyCfg Config) (*Proxy, []*httptest.Server, []*service.Service) {
	t.Helper()
	servers := make([]*httptest.Server, n)
	services := make([]*service.Service, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := svcCfg
		cfg.Name = fmt.Sprintf("node-%d", i)
		svc := service.New(cfg)
		srv := httptest.NewServer(svc.Handler())
		servers[i], services[i], urls[i] = srv, svc, srv.URL
		t.Cleanup(srv.Close)
		t.Cleanup(svc.Close)
	}
	proxyCfg.Backends = urls
	if proxyCfg.HealthInterval == 0 {
		proxyCfg.HealthInterval = 20 * time.Millisecond
	}
	if proxyCfg.RetryBackoff == 0 {
		proxyCfg.RetryBackoff = time.Millisecond
	}
	p, err := New(proxyCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p, servers, services
}

// TestProxyPlacementAffinity is the cache-affinity core of the design: a
// replayed workload must land on the node that planned it, so the replay is
// a fingerprint-cache hit — across every workload kind — while distinct
// workloads spread over more than one backend.
func TestProxyPlacementAffinity(t *testing.T) {
	p, _, _ := fleet(t, 3, service.Config{BatchDelay: 200 * time.Microsecond}, Config{})
	ctx := context.Background()
	const d, g = 4, 8
	n := d * g

	var workloads []pops.Workload
	for i := 0; i < 12; i++ {
		pi := pops.IdentityPermutation(n)
		// Distinct rotations: i+1 positions.
		for j := range pi {
			pi[j] = (j + i + 1) % n
		}
		workloads = append(workloads, pops.Permutation(pi))
	}
	var reqs []pops.Request
	for s := 0; s < n; s++ {
		reqs = append(reqs, pops.Request{Src: s, Dst: (s + 1) % n}, pops.Request{Src: s, Dst: (s + 2) % n})
	}
	workloads = append(workloads, pops.HRelation(reqs), pops.AllToAll())

	for _, w := range workloads {
		first, err := p.Execute(ctx, d, g, w)
		if err != nil {
			t.Fatalf("%s: %v", w.Kind(), err)
		}
		if first.Cached {
			t.Fatalf("%s: first execution reported a cache hit", w.Kind())
		}
		second, err := p.Execute(ctx, d, g, w)
		if err != nil {
			t.Fatalf("%s replay: %v", w.Kind(), err)
		}
		if !second.Cached {
			t.Fatalf("%s: replay was not a cache hit — placement is not affine", w.Kind())
		}
	}

	used := 0
	for _, bs := range p.Backends() {
		if bs.Requests > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("all workloads landed on %d backend(s); the ring is not spreading", used)
	}
}

// TestProxyFailoverOnBackendDeath kills one backend and asserts every
// subsequent request still succeeds: connection errors eject the node
// immediately and fail over to the next ring owner.
func TestProxyFailoverOnBackendDeath(t *testing.T) {
	p, servers, _ := fleet(t, 3, service.Config{BatchDelay: 200 * time.Microsecond}, Config{})
	ctx := context.Background()
	const d, g = 4, 8
	n := d * g

	servers[1].CloseClientConnections()
	servers[1].Close()

	for i := 0; i < 20; i++ {
		pi := make([]int, n)
		for j := range pi {
			pi[j] = (j + i + 1) % n
		}
		if _, err := p.Execute(ctx, d, g, pops.Permutation(pi)); err != nil {
			t.Fatalf("request %d failed after backend death: %v", i, err)
		}
	}
	bs := p.Backends()
	if bs[1].Healthy {
		t.Fatal("dead backend still marked healthy")
	}
	var failovers uint64
	for _, b := range bs {
		failovers += b.Failovers
	}
	if failovers == 0 {
		t.Fatal("no failovers recorded although a backend died mid-trace")
	}
}

// TestProxyHealthEjectionAndReadmission drives a backend through
// unhealthy → ejected → recovered → re-admitted via the background checker.
func TestProxyHealthEjectionAndReadmission(t *testing.T) {
	var sick atomic.Bool
	svc := service.New(service.Config{})
	t.Cleanup(svc.Close)
	inner := svc.Handler()
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sick.Load() {
			http.Error(w, "sick", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	p, err := New(Config{
		Backends:       []string{flaky.URL},
		HealthInterval: 10 * time.Millisecond,
		FailAfter:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	waitHealthy := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if p.Backends()[0].Healthy == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("backend never became healthy=%v", want)
	}

	waitHealthy(true)
	sick.Store(true)
	waitHealthy(false)
	if err := p.Healthz(context.Background()); err == nil {
		t.Fatal("proxy healthy with every backend ejected")
	}
	sick.Store(false)
	waitHealthy(true)
	if err := p.Healthz(context.Background()); err != nil {
		t.Fatalf("proxy unhealthy after re-admission: %v", err)
	}
}

// TestProxyHTTPRouteAndStream drives the proxy's HTTP surface with the
// unchanged single-node client: plans, a batch, and a slot stream re-framed
// through the proxy must be indistinguishable from one node, and the
// streamed replay must be a cache hit on the owning node.
func TestProxyHTTPRouteAndStream(t *testing.T) {
	p, _, _ := fleet(t, 3, service.Config{BatchDelay: 200 * time.Microsecond}, Config{})
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)
	client := pops.NewServiceClient(front.URL, nil)
	ctx := context.Background()
	const d, g = 4, 8
	n := d * g

	if err := client.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	slots, err := client.Slots(ctx, d, g)
	if err != nil {
		t.Fatal(err)
	}
	if slots != pops.OptimalSlots(d, g) {
		t.Fatalf("slots = %d, want %d", slots, pops.OptimalSlots(d, g))
	}

	pi := pops.VectorReversal(n)
	plan, err := client.Route(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Slots != slots {
		t.Fatalf("plan.Slots = %d, want %d", plan.Slots, slots)
	}

	pis := [][]int{pi, pops.IdentityPermutation(n)}
	plans, err := client.RouteBatch(ctx, d, g, pis)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 || plans[0].Error != "" || plans[1].Error != "" {
		t.Fatalf("batch plans: %+v", plans)
	}

	// Stream through the proxy: meta, every fragment, done.
	st, err := client.RouteStream(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := 0
	for {
		rec, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			break
		}
		got++
	}
	if got != st.Meta().Fragments {
		t.Fatalf("streamed %d fragments, meta promised %d", got, st.Meta().Fragments)
	}
	if st.Done() == nil {
		t.Fatal("stream ended without a done record")
	}
	st.Close()

	// The same permutation again: the stream was collected into the owning
	// node's plan cache, and affine placement must find it there.
	st2, err := client.RouteStream(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !st2.Meta().Cached {
		t.Fatal("streamed replay was not a cache hit on the owning node")
	}
}

// TestProxyStreamBackendDeathSurfacesError pins the non-idempotent half of
// the failover contract: a backend dying mid-stream, after records have
// been delivered, must surface as a wire error record — never a silent
// short plan, and never a replay on another node.
func TestProxyStreamBackendDeathSurfacesError(t *testing.T) {
	// A fake backend that speaks just enough of the stream protocol: meta
	// plus one slot record, then the connection is torn down mid-plan.
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl := w.(http.Flusher)
		enc := json.NewEncoder(w)
		_ = enc.Encode(wire.StreamRecord{Type: "meta", Meta: &wire.StreamMeta{D: 4, G: 8, Slots: 2, Fragments: 8, Strategy: "theorem2"}})
		fl.Flush()
		_ = enc.Encode(wire.StreamRecord{Type: "slot", Slot: &wire.StreamSlot{Slot: 0, Color: 0}})
		fl.Flush()
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close() // hang up mid-stream
		}
	}))
	t.Cleanup(fake.Close)

	p, err := New(Config{Backends: []string{fake.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)

	client := pops.NewServiceClient(front.URL, nil)
	st, err := client.RouteStream(context.Background(), 4, 8, pops.VectorReversal(32))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec, err := st.Next()
	if err != nil || rec == nil {
		t.Fatalf("first slot record: %v %v", rec, err)
	}
	_, err = st.Next()
	if err == nil {
		t.Fatal("backend hang-up mid-stream did not surface an error")
	}
	if !strings.Contains(err.Error(), "cluster: backend stream") {
		t.Fatalf("mid-stream failure error = %v, want a cluster backend-stream error record", err)
	}
}

// TestProxyStreamIsReframedChunkByChunk speaks raw HTTP/1.1 to the proxy so
// the chunked framing can be counted: the pass-through must flush each
// relayed NDJSON record as its own chunk (the pipelining property), not
// buffer the backend's plan and forward it whole.
func TestProxyStreamIsReframedChunkByChunk(t *testing.T) {
	p, _, _ := fleet(t, 2, service.Config{BatchDelay: 200 * time.Microsecond}, Config{})
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)

	const d, g = 4, 8
	body, err := json.Marshal(wire.RouteRequest{D: d, G: g, Pi: pops.VectorReversal(d * g)})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialTimeout("tcp", front.Listener.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	defer conn.Close()
	fmt.Fprintf(conn, "POST /route/stream HTTP/1.1\r\nHost: popsproxy\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body), body)

	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil || !strings.Contains(status, "200") {
		t.Fatalf("status %q err %v", strings.TrimSpace(status), err)
	}
	chunked := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(line) == "" {
			break
		}
		if strings.EqualFold(strings.TrimSpace(line), "Transfer-Encoding: chunked") {
			chunked = true
		}
	}
	if !chunked {
		t.Fatal("proxy stream response is not chunked")
	}
	chunks, records := 0, 0
	for {
		sizeLine, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		var size uint64
		if _, err := fmt.Sscanf(strings.TrimSpace(sizeLine), "%x", &size); err != nil {
			t.Fatalf("chunk size line %q: %v", strings.TrimSpace(sizeLine), err)
		}
		if size == 0 {
			break
		}
		chunks++
		buf := make([]byte, size+2)
		if _, err := io.ReadFull(br, buf); err != nil {
			t.Fatal(err)
		}
		records += strings.Count(string(buf[:size]), "\n")
	}
	if chunks < 2 {
		t.Fatalf("proxy stream arrived in %d chunk(s); want >= 2 (one per re-framed record)", chunks)
	}
	if records < 3 {
		t.Fatalf("only %d NDJSON records relayed", records)
	}
}

// TestProxyStatsAggregation routes traffic through a 3-node fleet and
// checks GET /stats merges it: counters summed, per-backend identity and
// cache counters attributed, histograms merged.
func TestProxyStatsAggregation(t *testing.T) {
	p, _, _ := fleet(t, 3, service.Config{BatchDelay: 200 * time.Microsecond}, Config{})
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)
	client := pops.NewServiceClient(front.URL, nil)
	ctx := context.Background()
	const d, g = 4, 8
	n := d * g

	const trace = 15
	for i := 0; i < trace; i++ {
		pi := make([]int, n)
		for j := range pi {
			pi[j] = (j + i + 1) % n
		}
		if _, err := client.Route(ctx, d, g, pi); err != nil {
			t.Fatal(err)
		}
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Server != "popsproxy" {
		t.Fatalf("stats.Server = %q, want popsproxy", stats.Server)
	}
	if len(stats.Backends) != 3 {
		t.Fatalf("stats lists %d backends, want 3", len(stats.Backends))
	}
	if stats.Requests != trace {
		t.Fatalf("aggregate requests = %d, want %d", stats.Requests, trace)
	}
	var viaBackends, latency uint64
	for i, bs := range stats.Backends {
		if bs.ID == "" || !bs.Healthy {
			t.Fatalf("backend %d: %+v", i, bs)
		}
		if bs.Stats == nil {
			t.Fatalf("backend %d: no self-reported snapshot", i)
		}
		if want := fmt.Sprintf("node-%d", i); bs.Server != want {
			t.Fatalf("backend %d identity = %q, want %q", i, bs.Server, want)
		}
		viaBackends += bs.Stats.Requests
	}
	if viaBackends != trace {
		t.Fatalf("backends report %d requests total, want %d", viaBackends, trace)
	}
	for _, b := range stats.Latency {
		latency += b.Count
	}
	if latency != trace {
		t.Fatalf("merged latency histogram counts %d, want %d", latency, trace)
	}
}

// TestProxyDrain pins Close semantics: after Close the proxy answers 503 on
// /route and Healthz errors, mirroring popsserved's drain.
func TestProxyDrain(t *testing.T) {
	p, _, _ := fleet(t, 1, service.Config{}, Config{})
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)
	p.Close()
	resp, err := http.Post(front.URL+"/route", "application/json", strings.NewReader(`{"d":4,"g":8,"pi":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain /route status = %d, want 503", resp.StatusCode)
	}
	if err := p.Healthz(context.Background()); err == nil {
		t.Fatal("Healthz nil after Close")
	}
}

// TestFailoverBackoffJitter pins the retry decorrelation contract: every
// failover pause is routed through the proxy's jitter hook with the doubling
// base as input, and the default jitter keeps each pause within [base/2, base]
// without collapsing to a constant.
func TestFailoverBackoffJitter(t *testing.T) {
	for _, d := range []time.Duration{time.Millisecond, 10 * time.Millisecond, time.Second} {
		lo, hi := d, time.Duration(0)
		for i := 0; i < 500; i++ {
			j := defaultJitter(d)
			if j < d/2 || j > d {
				t.Fatalf("defaultJitter(%v) = %v, outside [%v, %v]", d, j, d/2, d)
			}
			if j < lo {
				lo = j
			}
			if j > hi {
				hi = j
			}
		}
		if lo == hi {
			t.Fatalf("defaultJitter(%v) returned %v on every draw; no jitter at all", d, lo)
		}
	}
	if got := defaultJitter(1); got != 1 {
		t.Fatalf("defaultJitter(1) = %v, want 1 (degenerate pause passes through)", got)
	}

	// Dead backends on every ring position: one Execute walks the full
	// failover chain, so the recorded jitter inputs are exactly the doubling
	// backoff bases.
	urls := make([]string, 3)
	for i := range urls {
		srv := httptest.NewServer(http.NotFoundHandler())
		urls[i] = srv.URL
		srv.Close()
	}
	p, err := New(Config{Backends: urls, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	var seen []time.Duration
	p.jitter = func(d time.Duration) time.Duration {
		seen = append(seen, d)
		return 0
	}
	if _, err := p.Execute(context.Background(), 2, 4, pops.Permutation(pops.IdentityPermutation(8))); err == nil {
		t.Fatal("Execute succeeded against a fleet of dead backends")
	}
	if want := p.cfg.Retries; len(seen) != want {
		t.Fatalf("jitter consulted %d times, want %d (one per failover pause)", len(seen), want)
	}
	for i, d := range seen {
		if want := p.cfg.RetryBackoff << uint(i); d != want {
			t.Fatalf("failover pause %d fed %v to the jitter hook, want %v", i, d, want)
		}
	}
}

// TestRequestKeyFaultyPlacement pins proxy/backend cache agreement for the
// fault-aware workload: the HTTP placement key must equal the fingerprint key
// of the equivalent pops.FaultyPermutation (including fault-set
// canonicalization), and must differ from the plain permutation's key so the
// two cannot collide on one backend's cache entry.
func TestRequestKeyFaultyPlacement(t *testing.T) {
	pi := []int{1, 0, 3, 2}
	req := &wire.RouteRequest{
		D: 2, G: 2, Workload: wire.WorkloadFaultyPermutation, Pi: pi,
		// Deliberately non-canonical spelling: duplicate coupler, unsorted.
		Faults: &wire.FaultSet{Couplers: []wire.Coupler{{B: 1, A: 0}, {B: 1, A: 0}}, Groups: []int{1}},
	}
	w := pops.FaultyPermutation(pi, pops.FaultSet{Couplers: []pops.Coupler{{B: 1, A: 0}}, Groups: []int{1}})
	if got, want := requestKey(req), placementKey(2, 2, pops.WorkloadFingerprint(w)); got != want {
		t.Fatalf("requestKey = %#x, want the workload fingerprint key %#x", got, want)
	}
	plain := &wire.RouteRequest{D: 2, G: 2, Pi: pi}
	if requestKey(req) == requestKey(plain) {
		t.Fatal("faulty-permutation request keyed identically to the plain permutation")
	}
}
