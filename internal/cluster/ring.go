package cluster

import (
	"sort"
)

// ring is the consistent-hash ring the proxy places requests on: every
// backend owns Replicas pseudo-random points on a 64-bit circle, and a
// request key is served by the first backend point at or after it. Placement
// is therefore stable under membership change — ejecting one backend moves
// only the keys it owned (to their next ring successor) and leaves every
// other backend's keys, and thus its shard LRU and fingerprint plan cache,
// untouched. The ring itself is immutable after construction; liveness is
// layered on top by walking successors past ejected backends.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // number of distinct backends
}

// ringPoint is one virtual node: a hash position owned by a backend index.
type ringPoint struct {
	hash    uint64
	backend int
}

// newRing builds the ring over the backend identifiers (base URLs), with
// replicas virtual nodes per backend. More replicas smooth the key
// distribution at the cost of a larger (still tiny) sorted array.
func newRing(ids []string, replicas int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(ids)*replicas), n: len(ids)}
	for i, id := range ids {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(id, v), backend: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// owners appends to out the first want distinct backends in ring order
// starting at key's successor: out[0] is the key's owner, out[1] the first
// failover target, and so on. want is clamped to the backend count.
func (r *ring) owners(key uint64, want int, out []int) []int {
	if want > r.n {
		want = r.n
	}
	if want <= 0 || len(r.points) == 0 {
		return out
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	var seen uint64 // backend-index bitset; backends are capped far below 64
	for i := 0; i < len(r.points) && want > 0; i++ {
		b := r.points[(start+i)%len(r.points)].backend
		if b < 64 {
			if seen&(1<<uint(b)) != 0 {
				continue
			}
			seen |= 1 << uint(b)
		} else if contains(out, b) {
			continue
		}
		out = append(out, b)
		want--
	}
	return out
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// pointHash positions virtual node v of backend id on the circle: FNV-1a
// over the id bytes and the replica number, then a 64-bit avalanche so
// near-identical URLs ("…:9001", "…:9002") still spread uniformly.
func pointHash(id string, v int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * prime64
	}
	h = (h ^ uint64(v)) * prime64
	return mix64(h)
}

// placementKey is the ring key of one request: the workload fingerprint
// mixed with the POPS shape. Keying on (d, g, fingerprint) makes placement
// shape- and content-affine — a replayed workload, or a duplicate one in
// flight, always resolves to the node that already owns its materialized
// plan (cache hit) or is already planning it (micro-batch coalescing).
func placementKey(d, g int, fp uint64) uint64 {
	return mix64(fp ^ (uint64(uint(d))*0x9e3779b97f4a7c15 + uint64(uint(g))*0xc2b2ae3d27d4eb4f))
}

// mix64 is the splitmix64 finalizer: every input bit flips every output bit
// with probability ~1/2, so low-entropy keys spread over the whole circle.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
