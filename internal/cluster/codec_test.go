package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pops"
	"pops/internal/service"
	"pops/internal/wire"
	"pops/internal/wirebin"
)

// TestProxyBinaryStreamEndToEnd drives the negotiated binary codec through a
// real fleet: a binary-framed request body places correctly, /route answers a
// binary response frame, /route/stream relays the backend's binary frames,
// and the fleet-merged GET /stats carries the backends' per-codec ledger.
func TestProxyBinaryStreamEndToEnd(t *testing.T) {
	p, _, _ := fleet(t, 2, service.Config{BatchDelay: 200 * time.Microsecond}, Config{})
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)
	ctx := context.Background()
	const d, g = 4, 8

	wreq := wire.RouteRequest{D: d, G: g, Pi: pops.VectorReversal(d * g)}
	enc := wirebin.GetEncoder()
	binBody := append([]byte(nil), enc.AppendRequest(&wreq)...)
	wirebin.PutEncoder(enc)

	// Unary: binary request body in, binary response frame out.
	req, err := http.NewRequest(http.MethodPost, front.URL+"/route", bytes.NewReader(binBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wirebin.ContentType)
	req.Header.Set("Accept", wirebin.ContentType)
	resp, err := front.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("binary /route status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); !wirebin.IsContentType(ct) {
		t.Fatalf("binary /route answered Content-Type %q", ct)
	}
	typ, payload, err := wirebin.NewDecoder(resp.Body).ReadFrame()
	if err != nil || typ != wirebin.FrameResponse {
		t.Fatalf("ReadFrame: typ=%d err=%v", typ, err)
	}
	var rr wire.RouteResponse
	if err := wirebin.DecodeResponse(payload, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Plans) != 1 || rr.Plans[0].Slots != pops.OptimalSlots(d, g) {
		t.Fatalf("binary response plans: %+v", rr.Plans)
	}

	// Stream: JSON body, binary Accept; the proxy must relay the backend's
	// frames intact — meta first, done last, every fragment in between.
	body, err := json.Marshal(wreq)
	if err != nil {
		t.Fatal(err)
	}
	sreq, err := http.NewRequest(http.MethodPost, front.URL+"/route/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	sreq.Header.Set("Content-Type", "application/json")
	sreq.Header.Set("Accept", wirebin.ContentType)
	sresp, err := front.Client().Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); !wirebin.IsContentType(ct) {
		t.Fatalf("binary stream Content-Type = %q", ct)
	}
	dec := wirebin.NewDecoder(sresp.Body)
	var meta wire.StreamMeta
	slots := 0
	sawDone := false
	for {
		typ, payload, err := dec.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		switch typ {
		case wirebin.FrameMeta:
			if err := wirebin.DecodeMeta(payload, &meta); err != nil {
				t.Fatal(err)
			}
		case wirebin.FrameSlot:
			slots++
		case wirebin.FrameDone:
			sawDone = true
		default:
			t.Fatalf("unexpected frame type %d", typ)
		}
	}
	if !sawDone || meta.Fragments == 0 || slots != meta.Fragments {
		t.Fatalf("relayed %d slot frames, meta promised %d (done=%v)", slots, meta.Fragments, sawDone)
	}

	// The fleet-merged stats carry the backends' binary ledger.
	stats, err := pops.NewServiceClient(front.URL, nil).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var bin *wire.WireCodecStats
	for i := range stats.WireCodecs {
		if stats.WireCodecs[i].Codec == wire.CodecBinary {
			bin = &stats.WireCodecs[i]
		}
	}
	if bin == nil || bin.Requests == 0 || bin.Streams == 0 || bin.StreamedBytes == 0 {
		t.Fatalf("fleet wire_codecs missing binary traffic: %+v", stats.WireCodecs)
	}
}

// TestProxyBinaryStreamReassemblesSplitFrames is the chunk-boundary core of
// the re-framing contract: a backend that flushes its binary stream one byte
// at a time forces every frame to span many HTTP chunks, and the proxy must
// reassemble each frame before relaying it. The backend then hangs up
// mid-frame; the partial frame must be dropped and the failure surfaced as an
// in-band binary error frame — never relayed garbage.
func TestProxyBinaryStreamReassemblesSplitFrames(t *testing.T) {
	enc := wirebin.GetEncoder()
	var whole []byte
	whole = append(whole, enc.AppendMeta(&wire.StreamMeta{D: 4, G: 8, Slots: 2, Fragments: 2, Strategy: "theorem2"})...)
	whole = append(whole, enc.AppendSlot(&wire.StreamSlot{Slot: 0, Color: 0})...)
	whole = append(whole, enc.AppendSlot(&wire.StreamSlot{Slot: 1, Color: -1, Final: true})...)
	partial := append([]byte(nil), enc.AppendSlot(&wire.StreamSlot{Slot: 2, Color: 1})...)
	wirebin.PutEncoder(enc)

	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		w.Header().Set("Content-Type", wirebin.ContentType)
		fl := w.(http.Flusher)
		for _, b := range whole {
			_, _ = w.Write([]byte{b})
			fl.Flush()
		}
		_, _ = w.Write(partial[:len(partial)/2])
		fl.Flush()
		if conn, _, err := w.(http.Hijacker).Hijack(); err == nil {
			conn.Close() // hang up mid-frame
		}
	}))
	t.Cleanup(fake.Close)

	p, err := New(Config{Backends: []string{fake.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)

	client := pops.NewServiceClient(front.URL, nil)
	st, err := client.RouteStream(context.Background(), 4, 8, pops.VectorReversal(32))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Meta().Fragments != 2 || st.Meta().Strategy != "theorem2" {
		t.Fatalf("meta = %+v", st.Meta())
	}
	for i := 0; i < 2; i++ {
		rec, err := st.Next()
		if err != nil || rec == nil {
			t.Fatalf("fragment %d: %v %v", i, rec, err)
		}
		if rec.Slot != i {
			t.Fatalf("fragment %d has slot %d", i, rec.Slot)
		}
	}
	_, err = st.Next()
	if err == nil {
		t.Fatal("backend hang-up mid-frame did not surface an error")
	}
	if !strings.Contains(err.Error(), "cluster: backend stream") {
		t.Fatalf("mid-frame failure error = %v, want an in-band cluster error frame", err)
	}
}
