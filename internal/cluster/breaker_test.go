package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pops"
	"pops/internal/wire"
)

// routeOK answers every /route with one trivial plan and /healthz with ok.
func routeOK() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok\n")) })
	mux.HandleFunc("/route", func(w http.ResponseWriter, r *http.Request) {
		var req wire.RouteRequest
		json.NewDecoder(r.Body).Decode(&req)
		json.NewEncoder(w).Encode(wire.RouteResponse{D: req.D, G: req.G, Plans: []wire.PlanResult{{Slots: 1}}})
	})
	return mux
}

// shed429 answers /route with the overload verdict and /healthz with ok —
// a node that is alive and explicitly protecting itself.
func shed429(sheds *atomic.Int64) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok\n")) })
	mux.HandleFunc("/route", func(w http.ResponseWriter, r *http.Request) {
		sheds.Add(1)
		w.Header().Set("Retry-After", "1")
		w.Header().Set(wire.HeaderRetryAfterMs, "20")
		w.Header().Set(wire.HeaderOverloadQueue, "admission")
		http.Error(w, "pops: overloaded", http.StatusTooManyRequests)
	})
	return mux
}

// TestProxyOverloadSpillsOnce pins 429-aware failover: a shedding backend is
// not ejected — the request spills to the next ring owner exactly once and
// succeeds there, with the shed charged to the backend that refused it.
func TestProxyOverloadSpillsOnce(t *testing.T) {
	var shedCount atomic.Int64
	shedder := httptest.NewServer(shed429(&shedCount))
	t.Cleanup(shedder.Close)
	ok := httptest.NewServer(routeOK())
	t.Cleanup(ok.Close)

	p, err := New(Config{Backends: []string{shedder.URL, ok.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	p.jitter = func(d time.Duration) time.Duration {
		t.Fatalf("overload spill paused %v; 429 failover must not back off", d)
		return 0
	}

	// Drive enough distinct workloads that some are owned by the shedder.
	for i := 0; i < 16; i++ {
		pi := pops.IdentityPermutation(8)
		pi[0], pi[i%8] = pi[i%8], pi[0]
		if _, err := p.Execute(context.Background(), 2, 4, pops.Permutation(pi)); err != nil {
			t.Fatalf("Execute %d: %v (want spill to the healthy sibling)", i, err)
		}
	}
	if shedCount.Load() == 0 {
		t.Fatal("no workload ever landed on the shedding backend; test lost its subject")
	}
	for _, bs := range p.Backends() {
		if bs.ID == shedder.URL {
			if bs.Sheds == 0 {
				t.Fatal("shedding backend has no sheds recorded")
			}
			if !bs.Healthy {
				t.Fatal("shedding backend was ejected; 429 is not a connection error")
			}
			if bs.BreakerState != "closed" {
				t.Fatalf("shedding backend breaker %q, want closed", bs.BreakerState)
			}
		}
	}
}

// jsonBody marshals v for an HTTP post.
func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// TestProxyAllSheddingRelays429 drives a fleet where every owner sheds: the
// typed verdict must come back to the caller (and over HTTP as 429 with
// Retry-After), not a 502.
func TestProxyAllSheddingRelays429(t *testing.T) {
	var a, b atomic.Int64
	s1 := httptest.NewServer(shed429(&a))
	t.Cleanup(s1.Close)
	s2 := httptest.NewServer(shed429(&b))
	t.Cleanup(s2.Close)

	p, err := New(Config{Backends: []string{s1.URL, s2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	_, err = p.Execute(context.Background(), 2, 4, pops.Permutation(pops.IdentityPermutation(8)))
	var oe *pops.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("Execute error %v, want *pops.OverloadError", err)
	}
	if oe.RetryAfter != 20*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want the backend's 20ms hint", oe.RetryAfter)
	}

	// The HTTP surface relays the verdict with headers intact.
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)
	resp, err := http.Post(front.URL+"/route", "application/json",
		jsonBody(t, &wire.RouteRequest{D: 2, G: 4, Pi: pops.IdentityPermutation(8)}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("proxy answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 relay lost the Retry-After header")
	}
}

// TestProxyConcurrencyCapSheds pins the per-backend in-flight gate: with
// MaxPerBackend=1 and the only backend busy, a second request sheds with a
// "backend" overload verdict instead of queueing behind the first.
func TestProxyConcurrencyCapSheds(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok\n")) })
	mux.HandleFunc("/route", func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		json.NewEncoder(w).Encode(wire.RouteResponse{D: 2, G: 4, Plans: []wire.PlanResult{{Slots: 1}}})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { close(release) })

	p, err := New(Config{Backends: []string{srv.URL}, MaxPerBackend: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	go p.Execute(context.Background(), 2, 4, pops.Permutation(pops.IdentityPermutation(8)))
	<-entered // the slow request holds the backend's one slot

	_, err = p.Execute(context.Background(), 2, 4, pops.Permutation(pops.IdentityPermutation(8)))
	var oe *pops.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("second Execute error %v, want *pops.OverloadError", err)
	}
	if oe.Queue != "backend" {
		t.Fatalf("overload queue %q, want backend", oe.Queue)
	}
}

// TestBreakerTripsAndRecovers walks the full breaker cycle against a node
// that flaps: /healthz keeps answering ok while /route drops connections, so
// health ejection alone re-admits it every probe round — only the
// consecutive-error breaker holds it out. Once the node recovers, the
// cooldown plus a healthz probe half-opens the breaker and the next request
// closes it.
func TestBreakerTripsAndRecovers(t *testing.T) {
	var broken atomic.Bool
	broken.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok\n")) })
	mux.HandleFunc("/route", func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("response writer cannot hijack")
				return
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close() // drop the connection mid-request: a conn error, not a 5xx
			}
			return
		}
		var req wire.RouteRequest
		json.NewDecoder(r.Body).Decode(&req)
		json.NewEncoder(w).Encode(wire.RouteResponse{D: req.D, G: req.G, Plans: []wire.PlanResult{{Slots: 1}}})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	p, err := New(Config{
		Backends:        []string{srv.URL},
		Retries:         -1, // no failover: every conn error charges this backend once
		HealthInterval:  5 * time.Millisecond,
		BreakerFailures: 2,
		BreakerCooldown: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	b := p.backends[0]

	for i := 0; i < 2; i++ {
		if _, err := p.Execute(context.Background(), 2, 4, pops.Permutation(pops.IdentityPermutation(8))); err == nil {
			t.Fatalf("Execute %d succeeded against a connection-dropping backend", i)
		}
		// The health loop re-admits the flapping node between failures; wait
		// for re-admission so the next attempt reaches the backend instead of
		// shedding on "no admittable owners".
		waitFor(t, func() bool { return b.healthy.Load() || b.brState.Load() == brOpen })
	}
	if got := b.brState.Load(); got != brOpen {
		t.Fatalf("breaker state %s after %d consecutive errors, want open", breakerStateName(got), 2)
	}
	if got := b.brOpens.Load(); got != 1 {
		t.Fatalf("breaker opens = %d, want 1", got)
	}

	// While open, the node is excluded and the proxy sheds: a request must
	// come back as an overload verdict without touching the backend.
	_, err = p.Execute(context.Background(), 2, 4, pops.Permutation(pops.IdentityPermutation(8)))
	var oe *pops.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("Execute with the breaker open: %v, want *pops.OverloadError", err)
	}

	// Recovery: the node starts serving again; cooldown passes; a healthz
	// probe half-opens the breaker; the next request is the probe and closes
	// it.
	broken.Store(false)
	waitFor(t, func() bool { return b.brState.Load() == brHalfOpen })
	if _, err := p.Execute(context.Background(), 2, 4, pops.Permutation(pops.IdentityPermutation(8))); err != nil {
		t.Fatalf("probe request after recovery: %v", err)
	}
	if got := b.brState.Load(); got != brClosed {
		t.Fatalf("breaker state %s after a successful probe, want closed", breakerStateName(got))
	}
}

// TestBreakerLatencyTrip pins the slow-node trip: a backend that answers
// successfully but slower than BreakerLatency opens its breaker once the
// EWMA has enough samples.
func TestBreakerLatencyTrip(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte("ok\n"))
			return
		}
		time.Sleep(5 * time.Millisecond)
		var req wire.RouteRequest
		json.NewDecoder(r.Body).Decode(&req)
		json.NewEncoder(w).Encode(wire.RouteResponse{D: req.D, G: req.G, Plans: []wire.PlanResult{{Slots: 1}}})
	}))
	t.Cleanup(slow.Close)

	p, err := New(Config{
		Backends:       []string{slow.URL},
		BreakerLatency: time.Millisecond, // every 5ms answer breaches it
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	b := p.backends[0]

	for i := 0; i < brMinSamples+1 && b.brState.Load() == brClosed; i++ {
		p.Execute(context.Background(), 2, 4, pops.Permutation(pops.IdentityPermutation(8)))
	}
	if got := b.brState.Load(); got != brOpen {
		t.Fatalf("breaker state %s after sustained slow answers, want open", breakerStateName(got))
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
