package cluster

import (
	"math"
	"testing"

	"pops/internal/wire"
)

func buckets(counts ...uint64) []wire.LatencyBucket {
	out := make([]wire.LatencyBucket, len(counts))
	for i, c := range counts {
		le := uint64(1) << i
		if i == len(counts)-1 {
			le = 0 // unbounded overflow bucket
		}
		out[i] = wire.LatencyBucket{LEMicros: le, Count: c}
	}
	return out
}

func counts(bs []wire.LatencyBucket) []uint64 {
	out := make([]uint64, len(bs))
	for i, b := range bs {
		out[i] = b.Count
	}
	return out
}

func TestMergeBucketsSameSchema(t *testing.T) {
	dst := buckets(1, 2, 3, 0)
	src := buckets(4, 0, 1, 2)
	got := counts(mergeBuckets(dst, src))
	want := []uint64{5, 2, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged counts = %v, want %v", got, want)
		}
	}
}

func TestMergeBucketsEmptyDst(t *testing.T) {
	src := buckets(1, 2, 3)
	got := mergeBuckets(nil, src)
	if len(got) != len(src) {
		t.Fatalf("merge into empty dst kept %d buckets, want %d", len(got), len(src))
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("merged[%d] = %+v, want %+v", i, got[i], src[i])
		}
	}
	// The copy must be independent: mutating the result cannot reach into
	// the source node's snapshot.
	got[0].Count = 99
	if src[0].Count == 99 {
		t.Fatal("merge aliased the source slice")
	}
}

func TestMergeBucketsEmptySrc(t *testing.T) {
	dst := buckets(1, 2, 3)
	got := counts(mergeBuckets(dst, nil))
	want := []uint64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge with empty src = %v, want unchanged %v", got, want)
		}
	}
}

// TestMergeBucketsMismatchedSchema covers a mid-upgrade fleet: a node
// emitting a coarser schema contributes every count to the closest dst
// bound instead of being dropped.
func TestMergeBucketsMismatchedSchema(t *testing.T) {
	dst := buckets(0, 0, 0, 0) // bounds 1, 2, 4, +Inf
	src := []wire.LatencyBucket{
		{LEMicros: 3, Count: 5},  // closest dst bound >= 3 is 4
		{LEMicros: 64, Count: 2}, // beyond every bounded dst bucket -> overflow
		{LEMicros: 0, Count: 7},  // unbounded -> overflow
	}
	got := counts(mergeBuckets(dst, src))
	want := []uint64{0, 0, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatched-schema merge = %v, want %v", got, want)
		}
	}
	var total uint64
	for _, c := range got {
		total += c
	}
	if total != 14 {
		t.Fatalf("merge dropped observations: total %d, want 14", total)
	}
}

func TestMergePlanTimes(t *testing.T) {
	dst := mergePlanTimes(nil, []wire.PlanTimeStat{
		{D: 4, G: 8, Strategy: "theorem2", Count: 3, CacheHits: 1, EWMAMicros: 100, SumMicros: 300, Buckets: buckets(3, 0)},
	})
	dst = mergePlanTimes(dst, []wire.PlanTimeStat{
		{D: 4, G: 8, Strategy: "theorem2", Count: 1, CacheHits: 2, EWMAMicros: 200, SumMicros: 180, Buckets: buckets(0, 1)},
		{D: 8, G: 8, Strategy: "greedy", Count: 2, EWMAMicros: 50, SumMicros: 90, Buckets: buckets(2, 0)},
	})
	if len(dst) != 2 {
		t.Fatalf("merged %d keys, want 2", len(dst))
	}
	var merged, fresh *wire.PlanTimeStat
	for i := range dst {
		if dst[i].Strategy == "theorem2" {
			merged = &dst[i]
		} else {
			fresh = &dst[i]
		}
	}
	if merged == nil || fresh == nil {
		t.Fatalf("keys missing from merge: %+v", dst)
	}
	if merged.Count != 4 || merged.CacheHits != 3 || merged.SumMicros != 480 {
		t.Errorf("merged totals = count %d hits %d sum %g, want 4/3/480", merged.Count, merged.CacheHits, merged.SumMicros)
	}
	// Count-weighted EWMA: (100*3 + 200*1) / 4 = 125.
	if math.Abs(merged.EWMAMicros-125) > 1e-9 {
		t.Errorf("merged EWMA = %g, want the count-weighted 125", merged.EWMAMicros)
	}
	if got := counts(merged.Buckets); got[0] != 3 || got[1] != 1 {
		t.Errorf("merged buckets = %v, want [3 1]", got)
	}
	if fresh.Count != 2 || fresh.EWMAMicros != 50 {
		t.Errorf("unmatched key mutated: %+v", fresh)
	}
}

func TestMergePlanTimesZeroCounts(t *testing.T) {
	// Two nodes that only ever answered this key from cache: merging must
	// not divide by the zero combined count.
	dst := mergePlanTimes(nil, []wire.PlanTimeStat{{D: 4, G: 4, Strategy: "theorem2", CacheHits: 5}})
	dst = mergePlanTimes(dst, []wire.PlanTimeStat{{D: 4, G: 4, Strategy: "theorem2", CacheHits: 2}})
	if len(dst) != 1 || dst[0].CacheHits != 7 || dst[0].Count != 0 {
		t.Fatalf("cache-only merge = %+v", dst)
	}
	if math.IsNaN(dst[0].EWMAMicros) {
		t.Fatal("zero-count merge produced a NaN EWMA")
	}
}

func TestSortPlanTimes(t *testing.T) {
	pts := []wire.PlanTimeStat{
		{D: 8, G: 8, Strategy: "theorem2"},
		{D: 4, G: 8, Strategy: "theorem2"},
		{D: 4, G: 8, Strategy: "greedy"},
		{D: 4, G: 4, Strategy: "theorem2"},
	}
	sortPlanTimes(pts)
	want := []wire.PlanTimeStat{
		{D: 4, G: 4, Strategy: "theorem2"},
		{D: 4, G: 8, Strategy: "greedy"},
		{D: 4, G: 8, Strategy: "theorem2"},
		{D: 8, G: 8, Strategy: "theorem2"},
	}
	for i := range want {
		if pts[i].D != want[i].D || pts[i].G != want[i].G || pts[i].Strategy != want[i].Strategy {
			t.Fatalf("sorted[%d] = (%d,%d,%s), want (%d,%d,%s)",
				i, pts[i].D, pts[i].G, pts[i].Strategy, want[i].D, want[i].G, want[i].Strategy)
		}
	}
}
