package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"pops"
	"pops/internal/service"
)

// BenchmarkClusterScaling measures aggregate proxy throughput as the fleet
// grows 1 → 2 → 4 backends under a zipfian permutation trace whose working
// set (256 distinct permutations) exceeds any single backend's plan cache
// (64 entries). Consistent hashing partitions the key space, so the fleet's
// aggregate cache capacity — and with it the hit rate — grows with the node
// count: scaling here is cache capacity, not CPU parallelism, which makes
// the benchmark meaningful even on a single-core host. RPS = 1e9 / ns_per_op.
func BenchmarkClusterScaling(b *testing.B) {
	const (
		d, g       = 16, 32
		perms      = 256 // distinct permutations in the trace
		cachePer   = 64  // per-backend plan cache entries
		zipfS      = 1.07
		traceSteps = 1 << 16 // fixed trace replayed modulo its length
	)

	// One fixed trace for every fleet size: 256 distinct permutations drawn
	// once, visited in a zipfian order so a hot head stays cache-resident
	// everywhere while the tail only fits in the aggregate fleet cache.
	rng := rand.New(rand.NewSource(7))
	pis := make([][]int, perms)
	for i := range pis {
		pis[i] = rng.Perm(d * g)
	}
	zipf := rand.NewZipf(rng, zipfS, 1, perms-1)
	trace := make([]int, traceSteps)
	for i := range trace {
		trace[i] = int(zipf.Uint64())
	}

	for _, nodes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("backends=%d", nodes), func(b *testing.B) {
			servers := make([]*httptest.Server, nodes)
			urls := make([]string, nodes)
			for i := range servers {
				svc := service.New(service.Config{
					Name:      fmt.Sprintf("bench-%d", i),
					BatchSize: 1, // sequential driver: flush immediately
					CacheSize: cachePer,
				})
				servers[i] = httptest.NewServer(svc.Handler())
				urls[i] = servers[i].URL
				defer servers[i].Close()
				defer svc.Close()
			}
			proxy, err := New(Config{Backends: urls, HealthInterval: time.Second})
			if err != nil {
				b.Fatal(err)
			}
			defer proxy.Close()

			ctx := context.Background()
			// Warm: one pass over the hot head so steady-state cache
			// behaviour, not cold misses, is what b.N measures.
			for i := 0; i < perms/4; i++ {
				if _, err := proxy.Execute(ctx, d, g, pops.Permutation(pis[trace[i]])); err != nil {
					b.Fatal(err)
				}
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pi := pis[trace[i%traceSteps]]
				if _, err := proxy.Execute(ctx, d, g, pops.Permutation(pi)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
