package cluster

import (
	"context"
	"sort"
	"sync"

	"pops/internal/wire"
)

// Stats aggregates GET /stats across the fleet: every backend is snapshot
// concurrently, counters are summed, the latency and time-to-first-slot
// histograms are merged bucket-wise (all nodes share the power-of-two
// bucket schema), shard entries are concatenated, and each node appears
// under Backends with the proxy's placement counters, its health verdict,
// and its full self-reported snapshot (nil if it was unreachable). The
// result is a wire.StatsResponse, so a ServiceClient pointed at the proxy
// decodes it exactly as it would a single node's.
func (p *Proxy) Stats(ctx context.Context) (*wire.StatsResponse, error) {
	snaps := make([]*wire.StatsResponse, len(p.backends))
	var wg sync.WaitGroup
	for i, b := range p.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			if s, err := b.client.Stats(ctx); err == nil {
				snaps[i] = s
			}
		}(i, b)
	}
	wg.Wait()

	agg := &wire.StatsResponse{Server: "popsproxy", Backends: p.Backends()}
	for i := range p.backends {
		s := snaps[i]
		if s == nil {
			continue // unreachable: its Backends entry still records identity
		}
		bs := &agg.Backends[i]
		bs.Server = s.Server
		bs.CacheHits = s.CacheHits
		bs.CacheMisses = s.CacheMisses
		bs.Stats = s

		agg.ShardCount += s.ShardCount
		agg.MaxShards += s.MaxShards
		agg.EvictedShards += s.EvictedShards
		agg.Requests += s.Requests
		agg.Streams += s.Streams
		agg.StreamedSlots += s.StreamedSlots
		agg.CacheHits += s.CacheHits
		agg.CacheMisses += s.CacheMisses
		agg.FaultPlans += s.FaultPlans
		agg.Unroutable += s.Unroutable
		agg.Sheds += s.Sheds
		agg.DeadlineSheds += s.DeadlineSheds
		agg.Tenants = mergeTenants(agg.Tenants, s.Tenants)
		agg.WireCodecs = mergeWireCodecs(agg.WireCodecs, s.WireCodecs)
		agg.Latency = mergeBuckets(agg.Latency, s.Latency)
		agg.TimeToFirstSlot = mergeBuckets(agg.TimeToFirstSlot, s.TimeToFirstSlot)
		agg.PlanTimes = mergePlanTimes(agg.PlanTimes, s.PlanTimes)
		agg.Shards = append(agg.Shards, s.Shards...)
	}
	sortPlanTimes(agg.PlanTimes)
	sort.Slice(agg.Tenants, func(a, b int) bool { return agg.Tenants[a].Tenant < agg.Tenants[b].Tenant })
	sort.Slice(agg.WireCodecs, func(a, b int) bool { return agg.WireCodecs[a].Codec < agg.WireCodecs[b].Codec })
	return agg, nil
}

// mergeWireCodecs folds one node's per-codec wire ledger into the fleet
// aggregate, keyed by codec name.
func mergeWireCodecs(dst, src []wire.WireCodecStats) []wire.WireCodecStats {
	for _, s := range src {
		merged := false
		for i := range dst {
			if dst[i].Codec != s.Codec {
				continue
			}
			dst[i].Requests += s.Requests
			dst[i].Streams += s.Streams
			dst[i].StreamedBytes += s.StreamedBytes
			merged = true
			break
		}
		if !merged {
			dst = append(dst, s)
		}
	}
	return dst
}

// mergeTenants folds one node's per-tenant fairness ledger into the fleet
// aggregate, keyed by tenant name. Weights are configuration, identical
// across a correctly-deployed fleet, so the first node to report one wins.
func mergeTenants(dst, src []wire.TenantStats) []wire.TenantStats {
	for _, s := range src {
		merged := false
		for i := range dst {
			if dst[i].Tenant != s.Tenant {
				continue
			}
			dst[i].Admitted += s.Admitted
			dst[i].Shed += s.Shed
			dst[i].DeadlineShed += s.DeadlineShed
			if dst[i].Weight == 0 {
				dst[i].Weight = s.Weight
			}
			merged = true
			break
		}
		if !merged {
			dst = append(dst, s)
		}
	}
	return dst
}

// mergePlanTimes folds one node's per-(d, g, strategy) plan-time table into
// the fleet aggregate: counts and sums add, histograms merge bucket-wise,
// and the EWMA becomes the count-weighted mean of the nodes' EWMAs — not a
// true fleet EWMA (observation order across nodes is gone), but an estimate
// weighted toward the nodes doing the planning, which is what a cost model
// reading the aggregate wants.
func mergePlanTimes(dst, src []wire.PlanTimeStat) []wire.PlanTimeStat {
	for _, s := range src {
		merged := false
		for i := range dst {
			d := &dst[i]
			if d.D != s.D || d.G != s.G || d.Strategy != s.Strategy {
				continue
			}
			if d.Count+s.Count > 0 {
				d.EWMAMicros = (d.EWMAMicros*float64(d.Count) + s.EWMAMicros*float64(s.Count)) / float64(d.Count+s.Count)
			}
			d.Count += s.Count
			d.CacheHits += s.CacheHits
			d.SumMicros += s.SumMicros
			d.Buckets = mergeBuckets(d.Buckets, s.Buckets)
			merged = true
			break
		}
		if !merged {
			cp := s
			cp.Buckets = append([]wire.LatencyBucket(nil), s.Buckets...)
			dst = append(dst, cp)
		}
	}
	return dst
}

// sortPlanTimes restores the (d, g, strategy) order individual nodes emit,
// so the fleet aggregate is stable regardless of which backends answered.
func sortPlanTimes(pts []wire.PlanTimeStat) {
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].D != pts[b].D {
			return pts[a].D < pts[b].D
		}
		if pts[a].G != pts[b].G {
			return pts[a].G < pts[b].G
		}
		return pts[a].Strategy < pts[b].Strategy
	})
}

// mergeBuckets sums src into dst bucket-wise. Every node emits the same
// power-of-two schema, so buckets align by index; a node speaking a
// different schema (mid-upgrade) contributes its counts to the closest
// bound instead of being dropped.
func mergeBuckets(dst, src []wire.LatencyBucket) []wire.LatencyBucket {
	if len(dst) == 0 {
		return append(dst, src...)
	}
	for i, b := range src {
		if i < len(dst) && dst[i].LEMicros == b.LEMicros {
			dst[i].Count += b.Count
			continue
		}
		j := len(dst) - 1 // the unbounded overflow bucket
		for k, d := range dst {
			if d.LEMicros >= b.LEMicros && b.LEMicros != 0 {
				j = k
				break
			}
		}
		dst[j].Count += b.Count
	}
	return dst
}
