package cluster

import (
	"math"
	"time"
)

// Per-backend circuit breaker. The health checker answers "is the node
// reachable"; the breaker answers "is the node behaving" — a backend that
// accepts connections but fails forwards repeatedly, or whose latency EWMA
// has drifted past the configured ceiling, is cut out of placement before it
// drags every request down with it.
//
// States: closed (normal placement) → open (excluded from placement; trips
// on BreakerFailures consecutive live-traffic errors or a latency-EWMA
// breach) → half-open (after BreakerCooldown, once the node answers /healthz
// again: exactly one live request is admitted as the probe) → closed on
// probe success, back to open on probe failure.
const (
	brClosed int32 = iota
	brOpen
	brHalfOpen
)

const (
	// brAlpha weighs the newest forward latency in the backend's EWMA,
	// matching obs.PlanTimes so the two estimates are comparable.
	brAlpha = 0.2
	// brMinSamples is how many forwards the latency trip waits for before
	// trusting the EWMA: one cold-start outlier must not open the breaker.
	brMinSamples = 8
)

func breakerStateName(s int32) string {
	switch s {
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// acquire admits one placement onto b, or reports that the caller should
// skip to the next ring owner (no error is charged to the backend): the
// breaker must not be open, a half-open breaker admits exactly one request —
// the probe — and the backend must be under MaxPerBackend forwards in
// flight. The returned release must be called once the forward attempt
// resolves; the in-flight gate covers admission through response headers (a
// stream's relay phase runs after release).
func (p *Proxy) acquire(b *backend) (release func(), ok bool) {
	probe := false
	switch b.brState.Load() {
	case brOpen:
		return nil, false
	case brHalfOpen:
		if !b.brProbe.CompareAndSwap(false, true) {
			return nil, false
		}
		probe = true
	}
	if n := b.inflight.Add(1); p.cfg.MaxPerBackend > 0 && n > int64(p.cfg.MaxPerBackend) {
		b.inflight.Add(-1)
		if probe {
			b.brProbe.Store(false)
		}
		b.sheds.Add(1)
		return nil, false
	}
	return func() {
		b.inflight.Add(-1)
		if probe {
			b.brProbe.Store(false)
		}
	}, true
}

// noteSuccess records a completed forward: the consecutive-error run ends,
// the latency EWMA absorbs the sample, a half-open probe success closes the
// breaker, and a closed breaker checks the latency trip. When the breaker
// enforces a latency ceiling, a half-open probe must also MEET it — a node
// that answers its probe in 200ms is still the slow node the breaker
// removed, so the probe re-opens instead of closing.
func (p *Proxy) noteSuccess(b *backend, elapsed time.Duration) {
	b.reqFails.Store(0)
	ewma := b.observeLatency(elapsed)
	if b.brState.Load() == brHalfOpen {
		if p.cfg.BreakerLatency > 0 && elapsed > p.cfg.BreakerLatency {
			p.openBreaker(b)
			return
		}
	}
	if b.brState.CompareAndSwap(brHalfOpen, brClosed) {
		return
	}
	if p.cfg.BreakerLatency > 0 && b.latSamples.Load() >= brMinSamples &&
		ewma > p.cfg.BreakerLatency && b.brState.Load() == brClosed {
		p.openBreaker(b)
	}
}

// noteFailure records a live-traffic connection error: a half-open probe
// failure re-opens immediately; a closed breaker opens after
// BreakerFailures consecutive errors.
func (p *Proxy) noteFailure(b *backend) {
	if b.brState.CompareAndSwap(brHalfOpen, brOpen) {
		b.brOpens.Add(1)
		b.brOpenedAt.Store(time.Now().UnixNano())
		return
	}
	if p.cfg.BreakerFailures > 0 && b.reqFails.Add(1) >= int32(p.cfg.BreakerFailures) {
		p.openBreaker(b)
	}
}

// openBreaker trips b open and resets its failure run and latency estimate:
// a poisoned EWMA from the bad period must not instantly re-trip the breaker
// after recovery — the estimate restarts with the half-open probe.
func (p *Proxy) openBreaker(b *backend) {
	if b.brState.CompareAndSwap(brClosed, brOpen) || b.brState.CompareAndSwap(brHalfOpen, brOpen) {
		b.brOpens.Add(1)
		b.brOpenedAt.Store(time.Now().UnixNano())
		b.reqFails.Store(0)
		b.latEWMA.Store(0)
		b.latSamples.Store(0)
	}
}

// maybeHalfOpen moves an open breaker to half-open once its cooldown has
// passed and the node answers /healthz again — the breaker's recovery path
// rides the same prober that re-admits ejected nodes. The next placement
// acquired on the backend is the probe that decides between closing and
// re-opening.
func (p *Proxy) maybeHalfOpen(b *backend) {
	if b.brState.Load() != brOpen {
		return
	}
	if time.Since(time.Unix(0, b.brOpenedAt.Load())) < p.cfg.BreakerCooldown {
		return
	}
	if b.brState.CompareAndSwap(brOpen, brHalfOpen) {
		b.brProbe.Store(false)
	}
}

// observeLatency folds one forward's wall clock into the backend's EWMA
// (lock-free CAS on the float bits, like obs.PlanTimes) and returns the
// updated estimate.
func (b *backend) observeLatency(d time.Duration) time.Duration {
	us := float64(d) / float64(time.Microsecond)
	for {
		old := b.latEWMA.Load()
		next := us
		if old != 0 {
			prev := math.Float64frombits(old)
			next = prev + brAlpha*(us-prev)
		}
		if b.latEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			b.latSamples.Add(1)
			return time.Duration(next * float64(time.Microsecond))
		}
	}
}

// latencyEWMA reads the backend's current forward-latency estimate (0 until
// a sample lands).
func (b *backend) latencyEWMA() time.Duration {
	bits := b.latEWMA.Load()
	if bits == 0 {
		return 0
	}
	return time.Duration(math.Float64frombits(bits) * float64(time.Microsecond))
}
