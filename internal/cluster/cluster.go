// Package cluster is the POPS front door: a consistent-hash fan-out of
// routing workloads across a fleet of popsserved backends, the subsystem
// behind cmd/popsproxy.
//
// One process of the sharded planner service (internal/service) caps out at
// one machine's cores. The Proxy scales the same wire protocol horizontally:
// each request is placed on a consistent-hash ring keyed by
// (d, g, WorkloadFingerprint), so a replayed workload — or a duplicate one
// in flight — always lands on the backend that already owns its
// materialized plan, keeping every node's shard LRU and fingerprint plan
// cache hot (shape- and content-affine placement). A background health
// checker probes every backend's GET /healthz, ejecting nodes after
// consecutive failures and re-admitting them on recovery; placement walks
// ring successors past ejected nodes, so only the keys of a dead backend
// move. Connection errors fail over to the next ring owner with bounded
// backoff — but only for idempotent work: a slot stream that has already
// delivered records surfaces the error instead of replaying.
//
// The Proxy implements pops.Backend, the same contract pops.ServiceClient
// satisfies against a single node — a caller cannot tell one machine from a
// fleet — and Handler exposes the identical HTTP surface (POST /route,
// POST /route/stream re-framed chunk by chunk without buffering whole
// plans, GET /slots, GET /stats aggregated across the fleet, GET /healthz),
// so pops.ServiceClient pointed at a popsproxy works unchanged.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"pops"
	"pops/internal/backoff"
	"pops/internal/obs"
	"pops/internal/wire"
)

// Config tunes the proxy. Backends is required; the zero value of every
// other field selects the default noted on it.
type Config struct {
	// Backends are the popsserved base URLs (e.g. "http://10.0.0.1:8714")
	// forming the fleet. At least one is required.
	Backends []string
	// Replicas is the number of virtual nodes per backend on the hash ring.
	// Default 64.
	Replicas int
	// HealthInterval is the period of the background health checker.
	// Default 1s.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe. Default 2s.
	HealthTimeout time.Duration
	// FailAfter is the number of consecutive failed probes that ejects a
	// backend from placement (a connection error on live traffic ejects
	// immediately). One successful probe re-admits it. Default 2.
	FailAfter int
	// Retries bounds failover: a request that hits a connection error is
	// retried on up to Retries further ring owners. Default 2.
	Retries int
	// RetryBackoff is the pause before the first failover attempt, doubled
	// per further attempt. Default 10ms.
	RetryBackoff time.Duration
	// MaxPerBackend caps how many proxied forwards may be in flight on one
	// backend; placements over the cap skip to the next ring owner, and shed
	// with 429 + Retry-After when no owner can take them. Default 128;
	// negative uncaps.
	MaxPerBackend int
	// BreakerFailures is the consecutive live-traffic connection-error count
	// that trips a backend's circuit breaker open. Default 5; negative
	// disables the consecutive-error trip.
	BreakerFailures int
	// BreakerLatency trips the breaker open when a backend's forward-latency
	// EWMA exceeds it (after a minimum of 8 samples) — cutting out a node
	// that is alive but pathologically slow. Default 0 = disabled.
	BreakerLatency time.Duration
	// BreakerCooldown is how long an open breaker waits before a successful
	// health probe moves it to half-open. Default 1s.
	BreakerCooldown time.Duration
	// Client is the HTTP client shared by placement traffic and health
	// probes. Default: a dedicated client with a pooled transport.
	Client *http.Client
	// SlowRequests is how many of the slowest proxied requests the tracer
	// retains for GET /debug/slow. Default 64.
	SlowRequests int
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.MaxPerBackend == 0 {
		c.MaxPerBackend = 128
	} else if c.MaxPerBackend < 0 {
		c.MaxPerBackend = 0
	}
	if c.BreakerFailures == 0 {
		c.BreakerFailures = 5
	} else if c.BreakerFailures < 0 {
		c.BreakerFailures = 0
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 128}}
	}
	return c
}

// ErrClosed is returned for requests admitted after Close started.
var ErrClosed = errors.New("cluster: shutting down")

// backend is one popsserved node: its ring identity, a ServiceClient for
// typed calls, the proxy's health verdict, and per-backend counters.
type backend struct {
	id     string // base URL, the ring identity
	client *pops.ServiceClient

	healthy atomic.Bool
	fails   atomic.Int32 // consecutive failed probes

	requests  atomic.Uint64 // requests the proxy placed here
	streams   atomic.Uint64 // streams the proxy placed here
	failovers atomic.Uint64 // requests that left here for the next owner
	errors    atomic.Uint64 // connection errors observed here
	ejections atomic.Uint64 // healthy -> ejected transitions

	inflight atomic.Int64  // proxied forwards currently on this backend
	sheds    atomic.Uint64 // overload verdicts here: backend 429s + proxy-cap skips

	// Circuit breaker (see breaker.go): state machine, trip inputs, and the
	// forward-latency EWMA (float64 bits, microseconds).
	brState    atomic.Int32
	brOpens    atomic.Uint64
	brOpenedAt atomic.Int64 // unix nanos of the last open transition
	brProbe    atomic.Bool  // half-open single-probe token
	reqFails   atomic.Int32 // consecutive live-traffic connection errors
	latEWMA    atomic.Uint64
	latSamples atomic.Int64
}

// markDown ejects the backend immediately (live-traffic connection error):
// re-admission requires a fresh successful health probe.
func (b *backend) markDown(failAfter int) {
	b.fails.Store(int32(failAfter))
	b.eject()
}

// eject flips the backend unhealthy, counting only the transition — repeated
// failures of an already-ejected node are not new ejections.
func (b *backend) eject() {
	if b.healthy.CompareAndSwap(true, false) {
		b.ejections.Add(1)
	}
}

// Proxy is the cluster front door. Create one with New, mount Handler on an
// HTTP server (or call the pops.Backend methods directly for an in-process
// fleet client), and Close it on shutdown. All methods are safe for
// concurrent use.
type Proxy struct {
	cfg      Config
	backends []*backend
	ring     *ring

	// jitter perturbs each failover backoff pause (defaultJitter unless a
	// test injects its own), so proxies that lose the same backend at the
	// same moment do not retry the survivors in lockstep.
	jitter func(time.Duration) time.Duration

	closed     atomic.Bool
	stop       chan struct{}
	healthDone chan struct{}
	inflight   sync.WaitGroup // in-flight proxied HTTP requests and streams

	// tracer owns proxy-side request spans (forward and encode phases,
	// backend attribution) and the /debug/slow ring; latency is the proxy's
	// own end-to-end /route histogram; metrics the /metrics registry.
	tracer  *obs.Tracer
	latency obs.Histogram
	metrics *obs.Registry
}

// Proxy answers for the fleet exactly as ServiceClient answers for one node.
var _ pops.Backend = (*Proxy)(nil)

// New builds a Proxy over cfg.Backends and starts its background health
// checker. Backends start admitted; the first probe round (run immediately)
// corrects the verdict for nodes that are already down.
func New(cfg Config) (*Proxy, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: at least one backend is required")
	}
	seen := make(map[string]bool, len(cfg.Backends))
	p := &Proxy{cfg: cfg, jitter: defaultJitter, stop: make(chan struct{}), healthDone: make(chan struct{})}
	ids := make([]string, 0, len(cfg.Backends))
	for _, raw := range cfg.Backends {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: backend %q is not an absolute URL", raw)
		}
		id := u.Scheme + "://" + u.Host
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate backend %q", id)
		}
		seen[id] = true
		b := &backend{id: id, client: pops.NewServiceClient(id, cfg.Client)}
		b.healthy.Store(true)
		p.backends = append(p.backends, b)
		ids = append(ids, id)
	}
	p.ring = newRing(ids, cfg.Replicas)
	p.tracer = obs.NewTracer(cfg.SlowRequests)
	p.metrics = obs.NewRegistry()
	p.metrics.Register(p.collectMetrics)
	go p.healthLoop()
	return p, nil
}

// Tracer exposes the proxy's tracer, so the binary can mirror /debug/slow on
// a separate debug listener.
func (p *Proxy) Tracer() *obs.Tracer { return p.tracer }

// Metrics exposes the /metrics registry, so the binary can mirror it on a
// separate debug listener.
func (p *Proxy) Metrics() *obs.Registry { return p.metrics }

// Close stops the health checker, stops admitting HTTP requests, and waits
// for in-flight proxied requests and streams to finish — the drain half of
// popsproxy's graceful shutdown, mirroring popsserved. Idempotent.
func (p *Proxy) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.stop)
	}
	<-p.healthDone
	p.inflight.Wait()
}

// healthLoop probes every backend each HealthInterval, ejecting after
// FailAfter consecutive failures and re-admitting on the first success.
func (p *Proxy) healthLoop() {
	defer close(p.healthDone)
	t := time.NewTicker(p.cfg.HealthInterval)
	defer t.Stop()
	p.probeAll()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

// probeAll runs one concurrent health round across the fleet.
func (p *Proxy) probeAll() {
	var wg sync.WaitGroup
	for _, b := range p.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), p.cfg.HealthTimeout)
			defer cancel()
			if err := b.client.Healthz(ctx); err != nil {
				if b.fails.Add(1) >= int32(p.cfg.FailAfter) {
					b.eject()
				}
				return
			}
			b.fails.Store(0)
			b.healthy.Store(true)
			p.maybeHalfOpen(b)
		}(b)
	}
	wg.Wait()
}

// ownersFor resolves the failover chain of one placement key: the live ring
// owners in successor order, excluding nodes whose circuit breaker is open
// (half-open nodes stay in the chain — one placement is their recovery
// probe). If every backend is ejected or open the full ring order is
// returned instead — placement degrades to "try them all" rather than
// refusing traffic on a pessimistic verdict.
func (p *Proxy) ownersFor(key uint64) []*backend {
	idx := p.ring.owners(key, p.ring.n, make([]int, 0, p.ring.n))
	live := make([]*backend, 0, len(idx))
	for _, i := range idx {
		if p.backends[i].healthy.Load() && p.backends[i].brState.Load() != brOpen {
			live = append(live, p.backends[i])
		}
	}
	if len(live) > 0 {
		return live
	}
	all := make([]*backend, 0, len(idx))
	for _, i := range idx {
		all = append(all, p.backends[i])
	}
	return all
}

// defaultJitter maps a doubling backoff step to a uniform pause in
// [d/2, d]. Without it, every proxy that observed the same backend death
// at the same moment retries the surviving owners in synchronized waves.
// The spread is shared with the client's overload retries (internal/backoff)
// so both tiers decorrelate the same way.
func defaultJitter(d time.Duration) time.Duration {
	return backoff.Jitter(d)
}

// isConnErr reports whether err is a transport-level failure — the backend
// could not be reached or hung up before answering — as opposed to a
// deterministic request- or plan-level error that every node would repeat.
// Only connection errors are worth failing over.
func isConnErr(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue)
}

// tryOwners runs fn against the owners of key in failover order: the ring
// owner first, then successors. How a failure moves on depends on what kind
// it is — that distinction is the heart of overload-aware failover:
//
//   - Unadmittable owner (breaker open, or at the MaxPerBackend cap): skipped
//     silently, no pause — nothing was sent, so nothing is charged.
//   - Connection error: the node is dead — ejected immediately (markDown) and
//     charged to its breaker; the next owner is tried after a doubling,
//     jittered backoff, up to Retries times. The health loop re-admits the
//     node when its /healthz recovers.
//   - Overload verdict (*pops.OverloadError — the backend answered 429): the
//     node is alive and explicitly shedding, so it is neither ejected nor
//     backed off from; the request spills to the next owner once, and a
//     second shed is relayed to the caller, whose Retry-After backoff is the
//     correct response to fleet-wide pressure.
//   - Deterministic error (bad request, per-plan failure): returned from the
//     first node that produced it — every node would repeat it.
//
// If no owner could even be attempted, the proxy itself sheds with a typed
// overload verdict ("backend" queue), which the HTTP layer maps to 429.
func tryOwners[T any](p *Proxy, ctx context.Context, key uint64, fn func(*backend) (T, error)) (T, error) {
	var zero T
	owners := p.ownersFor(key)
	var lastErr error      // last connection error
	var lastOverload error // last overload verdict
	connRetries, spills, tried := 0, 0, 0
	for _, b := range owners {
		release, ok := p.acquire(b)
		if !ok {
			continue
		}
		tried++
		start := time.Now()
		v, err := fn(b)
		release()
		if err == nil {
			p.noteSuccess(b, time.Since(start))
			return v, nil
		}
		if ctx.Err() != nil {
			return zero, ctx.Err()
		}
		var oe *pops.OverloadError
		if errors.As(err, &oe) {
			b.sheds.Add(1)
			if spills == 0 {
				spills++
				lastOverload = err
				continue // spill once, without a pause: siblings may have room
			}
			return zero, err
		}
		if !isConnErr(err) {
			b.reqFails.Store(0) // a deterministic answer means the node is alive
			return zero, err
		}
		b.errors.Add(1)
		b.failovers.Add(1)
		b.markDown(p.cfg.FailAfter)
		p.noteFailure(b)
		lastErr = err
		if connRetries >= p.cfg.Retries {
			break
		}
		connRetries++
		pause := p.jitter(p.cfg.RetryBackoff << uint(connRetries-1))
		select {
		case <-time.After(pause):
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
	if lastErr != nil {
		return zero, fmt.Errorf("cluster: all %d placement attempt(s) failed: %w", tried, lastErr)
	}
	if lastOverload != nil {
		return zero, lastOverload
	}
	return zero, &pops.OverloadError{Queue: "backend", RetryAfter: 50 * time.Millisecond}
}

// Execute plans one workload on POPS(d, g) on the workload's ring owner,
// failing over on connection errors (planning is pure, so a retry is
// idempotent). It is the fleet form of pops.ServiceClient.Execute.
func (p *Proxy) Execute(ctx context.Context, d, g int, w pops.Workload) (*pops.ServicePlan, error) {
	if w == nil {
		return nil, pops.ErrNilWorkload
	}
	key := placementKey(d, g, pops.WorkloadFingerprint(w))
	return tryOwners(p, ctx, key, func(b *backend) (*pops.ServicePlan, error) {
		b.requests.Add(1)
		return b.client.Execute(ctx, d, g, w)
	})
}

// ExecuteStream opens a slot stream on the workload's ring owner. Failover
// covers stream admission only — a connection error while opening moves to
// the next owner, but once records are flowing a failure surfaces through
// the stream (delivered fragments cannot be replayed on another node).
func (p *Proxy) ExecuteStream(ctx context.Context, d, g int, w pops.Workload) (*pops.ServiceStream, error) {
	if w == nil {
		return nil, pops.ErrNilWorkload
	}
	key := placementKey(d, g, pops.WorkloadFingerprint(w))
	return tryOwners(p, ctx, key, func(b *backend) (*pops.ServiceStream, error) {
		b.streams.Add(1)
		b.requests.Add(1)
		return b.client.ExecuteStream(ctx, d, g, w)
	})
}

// Slots returns the Theorem 2 slot count for POPS(d, g). The answer is a
// pure function of the shape, so any backend serves it; placement still
// hashes the shape so repeated asks reuse one node's connection.
func (p *Proxy) Slots(ctx context.Context, d, g int) (int, error) {
	return tryOwners(p, ctx, placementKey(d, g, 0), func(b *backend) (int, error) {
		return b.client.Slots(ctx, d, g)
	})
}

// Healthz reports fleet liveness: nil while the proxy admits requests and
// at least one backend is admitted to placement.
func (p *Proxy) Healthz(ctx context.Context) error {
	if p.closed.Load() {
		return ErrClosed
	}
	for _, b := range p.backends {
		if b.healthy.Load() {
			return nil
		}
	}
	return errors.New("cluster: no healthy backends")
}

// Backends snapshots the proxy-side view of every node: identity, health
// verdict, and placement counters (no network round-trips).
func (p *Proxy) Backends() []wire.BackendStats {
	out := make([]wire.BackendStats, len(p.backends))
	for i, b := range p.backends {
		out[i] = wire.BackendStats{
			ID:           b.id,
			Healthy:      b.healthy.Load(),
			Requests:     b.requests.Load(),
			Streams:      b.streams.Load(),
			Failovers:    b.failovers.Load(),
			Errors:       b.errors.Load(),
			Ejections:    b.ejections.Load(),
			Sheds:        b.sheds.Load(),
			BreakerState: breakerStateName(b.brState.Load()),
			BreakerOpens: b.brOpens.Load(),
		}
	}
	return out
}
