package cluster

import (
	"fmt"
	"testing"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("http://10.0.0.%d:8714", i+1)
	}
	return ids
}

// TestRingOwnersDistinctAndComplete pins the failover chain contract: for
// any key, owners returns every backend exactly once, in a deterministic
// order led by the key's ring owner.
func TestRingOwnersDistinctAndComplete(t *testing.T) {
	const n = 5
	r := newRing(ringIDs(n), 64)
	for key := uint64(0); key < 1000; key++ {
		chain := r.owners(mix64(key), n, nil)
		if len(chain) != n {
			t.Fatalf("key %d: %d owners, want %d", key, len(chain), n)
		}
		seen := make(map[int]bool)
		for _, b := range chain {
			if b < 0 || b >= n || seen[b] {
				t.Fatalf("key %d: invalid or duplicate backend %d in chain %v", key, b, chain)
			}
			seen[b] = true
		}
		again := r.owners(mix64(key), n, nil)
		for i := range chain {
			if chain[i] != again[i] {
				t.Fatalf("key %d: owner chain not deterministic: %v vs %v", key, chain, again)
			}
		}
	}
}

// TestRingBalance checks the virtual nodes spread keys roughly evenly: with
// 64 replicas per backend no node should own more than ~2.5x its fair share.
func TestRingBalance(t *testing.T) {
	const n, keys = 4, 20000
	r := newRing(ringIDs(n), 64)
	counts := make([]int, n)
	buf := make([]int, 0, 1)
	for k := 0; k < keys; k++ {
		buf = r.owners(mix64(uint64(k)), 1, buf[:0])
		counts[buf[0]]++
	}
	fair := keys / n
	for b, c := range counts {
		if c < fair*2/5 || c > fair*5/2 {
			t.Fatalf("backend %d owns %d of %d keys (fair share %d): %v", b, c, keys, fair, counts)
		}
	}
}

// TestRingStabilityUnderEjection is the consistent-hashing property the
// cluster's cache affinity rests on: skipping one backend (its ejection)
// must not move any key that backend did not own — the survivor owners stay
// exactly where they were, so their plan caches stay hot.
func TestRingStabilityUnderEjection(t *testing.T) {
	const n = 4
	r := newRing(ringIDs(n), 64)
	const ejected = 2
	for k := 0; k < 5000; k++ {
		chain := r.owners(mix64(uint64(k)), n, nil)
		if chain[0] == ejected {
			continue // this key's owner died; it may move (to chain[1])
		}
		// Walking past the ejected backend must preserve the first live owner.
		for _, b := range chain {
			if b == ejected {
				continue
			}
			if b != chain[0] {
				t.Fatalf("key %d moved from %d to %d after ejecting %d", k, chain[0], b, ejected)
			}
			break
		}
	}
}

// TestPlacementKeyAffinity pins that placement is deterministic in
// (d, g, fingerprint) and that each coordinate matters.
func TestPlacementKeyAffinity(t *testing.T) {
	if placementKey(8, 16, 42) != placementKey(8, 16, 42) {
		t.Fatal("placementKey is not deterministic")
	}
	base := placementKey(8, 16, 42)
	if placementKey(16, 8, 42) == base {
		t.Fatal("swapping d and g did not move the key")
	}
	if placementKey(8, 16, 43) == base {
		t.Fatal("changing the fingerprint did not move the key")
	}
	if placementKey(4, 16, 42) == base {
		t.Fatal("changing d did not move the key")
	}
}
