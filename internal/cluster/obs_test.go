package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pops"
	"pops/internal/obs"
	"pops/internal/service"
	"pops/internal/wire"
)

func proxyRouteBody(t *testing.T, d, g int, pi []int) *bytes.Reader {
	t.Helper()
	blob, err := json.Marshal(wire.RouteRequest{D: d, G: g, Pi: pi})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(blob)
}

// TestProxyRelaysRequestIDAndHeaders pins the pass-through contract of both
// proxied paths: the backend's X-Request-Id echo and content type must reach
// the client — on /route/stream the 200 path used to overwrite them with a
// hardcoded content type, dropping the request-ID echo entirely.
func TestProxyRelaysRequestIDAndHeaders(t *testing.T) {
	p, _, _ := fleet(t, 2, service.Config{BatchDelay: 200 * time.Microsecond}, Config{})
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)
	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)

	req, _ := http.NewRequest("POST", front.URL+"/route", proxyRouteBody(t, d, g, pi))
	req.Header.Set("X-Request-Id", "hop-trace-1")
	resp, err := front.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var rr wire.RouteResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "hop-trace-1" {
		t.Errorf("/route header through proxy = %q, want hop-trace-1", got)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Errorf("/route Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	// The same ID travelled proxy -> backend -> response body.
	if rr.RequestID != "hop-trace-1" {
		t.Errorf("backend request_id through proxy = %q, want hop-trace-1", rr.RequestID)
	}

	req, _ = http.NewRequest("POST", front.URL+"/route/stream", proxyRouteBody(t, d, g, pi))
	req.Header.Set("X-Request-Id", "hop-trace-2")
	resp, err = front.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "hop-trace-2" {
		t.Errorf("/route/stream header through proxy = %q, want hop-trace-2", got)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("/route/stream Content-Type = %q, want the backend's application/x-ndjson", got)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no meta record: %v", sc.Err())
	}
	var rec wire.StreamRecord
	if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Meta == nil || rec.Meta.RequestID != "hop-trace-2" {
		t.Errorf("stream meta through proxy = %+v, want request_id hop-trace-2", rec.Meta)
	}
}

func TestProxyMetricsEndpoint(t *testing.T) {
	p, _, _ := fleet(t, 2, service.Config{BatchDelay: 200 * time.Microsecond}, Config{})
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)
	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)

	resp, err := front.Client().Post(front.URL+"/route", "application/json", proxyRouteBody(t, d, g, pi))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = front.Client().Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"pops_fleet_backends 2",
		"pops_fleet_healthy_backends 2",
		"pops_fleet_requests_total 1",
		"# TYPE pops_proxy_request_latency_seconds histogram",
		"pops_proxy_request_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("proxy /metrics missing %q\n%s", want, text)
		}
	}
	// Per-backend series are labeled by ring identity, and exactly one
	// backend took the placement.
	placed := 0
	for _, bs := range p.Backends() {
		if strings.Contains(text, `pops_proxy_backend_requests_total{backend="`+bs.ID+`"} 1`) {
			placed++
		}
	}
	if placed != 1 {
		t.Errorf("found %d backends with 1 placed request in the exposition, want 1", placed)
	}
}

func TestProxyDebugSlowAttributesBackend(t *testing.T) {
	p, _, _ := fleet(t, 2, service.Config{BatchDelay: 200 * time.Microsecond}, Config{})
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)
	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)

	req, _ := http.NewRequest("POST", front.URL+"/route", proxyRouteBody(t, d, g, pi))
	req.Header.Set("X-Request-Id", "slow-hop-1")
	resp, err := front.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = front.Client().Get(front.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	var slow wire.SlowResponse
	if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slow.Server != "popsproxy" {
		t.Errorf("server = %q, want popsproxy", slow.Server)
	}
	if len(slow.Requests) != 1 {
		t.Fatalf("retained %d requests, want 1", len(slow.Requests))
	}
	r := slow.Requests[0]
	if r.ID != "slow-hop-1" || r.Backend == "" {
		t.Errorf("proxy slow entry missing id or backend identity: %+v", r)
	}
	var sawForward bool
	for _, ph := range r.Phases {
		if ph.Phase == "forward" && ph.Micros > 0 {
			sawForward = true
		}
	}
	if !sawForward {
		t.Errorf("proxy span has no forward phase: %+v", r.Phases)
	}
}

func TestProxyStatsAggregatesPlanTimes(t *testing.T) {
	p, _, _ := fleet(t, 3, service.Config{BatchDelay: 200 * time.Microsecond}, Config{})
	ctx := context.Background()
	const d, g = 4, 8
	n := d * g
	for i := 0; i < 6; i++ {
		pi := pops.IdentityPermutation(n)
		for j := range pi {
			pi[j] = (j + i + 1) % n
		}
		if _, err := p.Execute(ctx, d, g, pops.Permutation(pi)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := p.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PlanTimes) == 0 {
		t.Fatal("fleet stats has no plan_times")
	}
	var total uint64
	for _, pt := range st.PlanTimes {
		if pt.D != d || pt.G != g {
			t.Errorf("unexpected plan-time key (%d,%d,%s)", pt.D, pt.G, pt.Strategy)
		}
		if pt.Count > 0 && pt.EWMAMicros <= 0 {
			t.Errorf("key (%d,%d,%s): %d plans but EWMA %g", pt.D, pt.G, pt.Strategy, pt.Count, pt.EWMAMicros)
		}
		total += pt.Count
	}
	// Every planned permutation across the fleet shows up in the aggregate.
	if total != 6 {
		t.Errorf("aggregate plan count = %d, want 6", total)
	}
}

func TestProxyEjectionCounter(t *testing.T) {
	p, servers, _ := fleet(t, 2, service.Config{BatchDelay: 200 * time.Microsecond}, Config{FailAfter: 1})
	ctx := context.Background()
	const d, g = 4, 8

	// Kill one backend and keep routing until its ejection is observed —
	// either the failed placement or the health probe flips it.
	servers[0].Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		pi := pops.VectorReversal(d * g)
		_, _ = p.Execute(ctx, d, g, pops.Permutation(pi))
		var ejections uint64
		for _, bs := range p.Backends() {
			ejections += bs.Ejections
		}
		if ejections >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backend death never counted as an ejection")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Staying unhealthy must not inflate the counter: ejections count
	// healthy-to-ejected transitions, not failed probes.
	time.Sleep(100 * time.Millisecond)
	var ejections uint64
	for _, bs := range p.Backends() {
		ejections += bs.Ejections
	}
	if ejections > 2 {
		t.Errorf("ejections = %d after one backend death; repeated probe failures must not re-count", ejections)
	}
}
