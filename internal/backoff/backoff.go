// Package backoff holds the retry pacing shared by the pops ServiceClient
// and the cluster proxy: capped exponential delays with half-to-full
// jitter, so a fleet of callers that observed the same overload or the same
// backend death at the same moment does not retry in synchronized waves.
package backoff

import (
	"math/rand"
	"time"
)

// Jitter maps a backoff step to a uniform pause in [d/2, d]. It is the
// jitter the cluster proxy has always applied to failover pauses, shared
// here so client-side 429 retries pace the same way.
func Jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(d-half)+1))
}

// Delay computes the un-jittered pause before retry attempt (0-based):
// base doubled per attempt, raised to floor when the server's Retry-After
// hint asks for longer, and clamped to max (when max > 0). Callers jitter
// the result themselves so tests can pin the schedule.
func Delay(base, max time.Duration, attempt int, floor time.Duration) time.Duration {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	d := base
	for i := 0; i < attempt && d < (1<<62)/2; i++ {
		d *= 2
	}
	if d < floor {
		d = floor
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}
