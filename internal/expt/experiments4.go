package expt

import (
	"context"
	"fmt"
	"math/rand"

	"pops/internal/core"
	"pops/internal/hrelation"
	"pops/internal/perms"
)

// E15 extends the paper's closing generalization claim to h-relations:
// decompose into h permutations (König on the request multigraph), route
// each with Theorem 2, pay h·2⌈d/g⌉ slots, and compare with the counting
// lower bound ⌈h·d/g⌉ for saturated derangement relations.
func E15(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "Extension: h-relation routing via repeated Theorem 2",
		Columns: []string{"d", "g", "h", "requests", "slots", "h·2⌈d/g⌉", "counting lower ⌈hd/g⌉", "verified"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, s := range []struct{ d, g, h int }{
		{2, 2, 1}, {2, 2, 4}, {4, 4, 2}, {4, 4, 8}, {8, 2, 2}, {3, 6, 3}, {1, 8, 4},
	} {
		n := s.d * s.g
		var reqs []hrelation.Request
		for k := 0; k < s.h; k++ {
			var pi []int
			if n >= 2 {
				pi = perms.RandomDerangement(n, rng)
			} else {
				pi = perms.Identity(n)
			}
			for i, v := range pi {
				reqs = append(reqs, hrelation.Request{Src: i, Dst: v})
			}
		}
		p, err := hrelation.Route(context.Background(), s.d, s.g, reqs, core.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := p.Verify(); err != nil {
			return nil, fmt.Errorf("E15 d=%d g=%d h=%d: %w", s.d, s.g, s.h, err)
		}
		lower := (s.h*s.d + s.g - 1) / s.g
		t.AddRow(s.d, s.g, s.h, len(reqs), p.SlotCount(),
			hrelation.PredictedSlots(s.d, s.g, s.h), lower, true)
	}
	t.Notes = append(t.Notes,
		"within factor 2 of the counting bound for d ≥ g, mirroring the paper's h = 1 guarantee; the padding handles sparse and unbalanced relations too")
	return t, nil
}
