package expt

import (
	"fmt"
	"math/rand"
	"time"

	"pops/internal/bounds"
	"pops/internal/core"
	"pops/internal/edgecolor"
	"pops/internal/greedy"
	"pops/internal/hypercube"
	"pops/internal/matmul"
	"pops/internal/mesh"
	"pops/internal/perms"
)

// E8 reproduces the mapping-independence corollary the paper highlights:
// hypercube and mesh simulations (Sahni 2000b, Theorems 1–2) cost exactly
// 2⌈d/g⌉ slots per step under ANY one-to-one processor mapping.
func E8(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Sahni 2000b as corollary: hypercube/mesh steps under arbitrary mappings",
		Columns: []string{"machine", "mapping", "d", "g", "steps", "slots", "per-step", "2⌈d/g⌉", "correct"},
	}
	rng := rand.New(rand.NewSource(seed))

	// Hypercube: D exchange rounds of a data sum.
	bits, d, g := 4, 4, 4
	n := 1 << uint(bits)
	br, err := perms.BitReversal(bits)
	if err != nil {
		return nil, err
	}
	mappings := []struct {
		name string
		m    []int
	}{
		{"identity", nil},
		{"random", perms.Random(n, rng)},
		{"bit-reversal", br.Permutation()},
	}
	for _, mp := range mappings {
		m, err := hypercube.New(bits, d, g, mp.m, core.Options{})
		if err != nil {
			return nil, err
		}
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i + 1)
		}
		if err := m.Load(vals); err != nil {
			return nil, err
		}
		sum, err := m.DataSum()
		if err != nil {
			return nil, err
		}
		correct := sum == int64(n*(n+1)/2)
		perStep := m.SlotsUsed() / bits
		t.AddRow("hypercube-16", mp.name, d, g, bits, m.SlotsUsed(), perStep, core.OptimalSlots(d, g), correct)
		if !correct || perStep != core.OptimalSlots(d, g) {
			return nil, fmt.Errorf("E8 hypercube mapping %s: per-step %d, correct=%v", mp.name, perStep, correct)
		}
	}

	// Mesh: four primitive steps (one in each direction).
	rows, cols, md, mg := 4, 4, 8, 2
	for _, mp := range mappings {
		m, err := mesh.New(rows, cols, md, mg, mp.m, core.Options{})
		if err != nil {
			return nil, err
		}
		vals := make([]int64, rows*cols)
		for i := range vals {
			vals[i] = int64(i)
		}
		if err := m.Load(vals); err != nil {
			return nil, err
		}
		for _, dir := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			if err := m.Shift(dir[0], dir[1]); err != nil {
				return nil, err
			}
		}
		// Four opposite shifts restore the data.
		correct := true
		for i, v := range m.Values {
			if v != int64(i) {
				correct = false
			}
		}
		perStep := m.SlotsUsed() / 4
		t.AddRow("mesh-4x4", mp.name, md, mg, 4, m.SlotsUsed(), perStep, core.OptimalSlots(md, mg), correct)
		if !correct || perStep != core.OptimalSlots(md, mg) {
			return nil, fmt.Errorf("E8 mesh mapping %s failed", mp.name)
		}
	}
	t.Notes = append(t.Notes, "paper: simulation results do not depend on the processor mapping — any permutation routes in 2⌈d/g⌉")
	return t, nil
}

// E9 routes the structured families of Sahni 2000a — BPC permutations,
// vector reversal, matrix transpose — with the universal router and reports
// slot counts against the specialized results.
func E9() (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Sahni 2000a families: BPC, reversal, transpose",
		Columns: []string{"family", "d", "g", "slots", "2⌈d/g⌉", "direct-optimal", "specialized-optimum"},
	}
	type inst struct {
		family string
		d, g   int
		pi     []int
		opt    string
	}
	var instances []inst
	for _, s := range []struct{ d, g int }{{4, 4}, {8, 2}, {2, 8}, {16, 16}} {
		n := s.d * s.g
		bits := 0
		for 1<<uint(bits+1) <= n {
			bits++
		}
		if 1<<uint(bits) != n {
			continue
		}
		br, err := perms.BitReversal(bits)
		if err != nil {
			return nil, err
		}
		ps, err := perms.PerfectShuffle(bits)
		if err != nil {
			return nil, err
		}
		ex, err := perms.HypercubeExchange(bits, bits-1)
		if err != nil {
			return nil, err
		}
		instances = append(instances,
			inst{"BPC bit-reversal", s.d, s.g, br.Permutation(), "2⌈d/g⌉ (Sahni)"},
			inst{"BPC shuffle", s.d, s.g, ps.Permutation(), "2⌈d/g⌉ (Sahni)"},
			inst{"BPC hypercube", s.d, s.g, ex.Permutation(), "2⌈d/g⌉ (Sahni)"},
			inst{"reversal", s.d, s.g, perms.VectorReversal(n), "2⌈d/g⌉, optimal even g"},
		)
		if r := isqrt(n); r*r == n {
			instances = append(instances, inst{"transpose", s.d, s.g, perms.Transpose(r, r), "⌈d/g⌉ (specialized)"})
		}
	}
	for _, in := range instances {
		p, err := core.PlanRoute(in.d, in.g, in.pi, core.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := p.Verify(); err != nil {
			return nil, err
		}
		direct, err := greedy.DirectOptimal(in.d, in.g, in.pi)
		if err != nil {
			return nil, err
		}
		t.AddRow(in.family, in.d, in.g, p.SlotCount(), core.OptimalSlots(in.d, in.g), direct.Slots, in.opt)
	}
	t.Notes = append(t.Notes,
		"the universal router matches the specialized 2⌈d/g⌉ results; transpose's specialized ⌈d/g⌉ optimum is recovered by the direct-optimal router (µmax slots)")
	return t, nil
}

// E10 reproduces Remark 1's algorithm menu: time the three 1-factorization
// backends on the planning workload (random permutations) as g grows.
func E10(seed int64, sizes []int) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Remark 1: edge-coloring backend comparison (plan time)",
		Columns: []string{"d", "g", "n", "algorithm", "time"},
	}
	rng := rand.New(rand.NewSource(seed))
	if len(sizes) == 0 {
		sizes = []int{16, 64, 256}
	}
	algos := []edgecolor.Algorithm{edgecolor.RepeatedMatching, edgecolor.EulerSplitDC, edgecolor.Insertion}
	for _, g := range sizes {
		d := g // square case, the paper's running example
		pi := perms.Random(d*g, rng)
		for _, algo := range algos {
			start := time.Now()
			p, err := core.PlanRoute(d, g, pi, core.Options{Algorithm: algo})
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if p.SlotCount() != core.OptimalSlots(d, g) {
				return nil, fmt.Errorf("E10 %v g=%d: wrong slot count", algo, g)
			}
			t.AddRow(d, g, d*g, algo.String(), elapsed.Round(time.Microsecond).String())
		}
	}
	t.Notes = append(t.Notes, "paper cites O(Δm) (Schrijver) vs O(m log Δ + …) (Kapoor–Rizzi/Rizzi); shapes match: insertion ~ O(n·m), euler-split near-linear")
	return t, nil
}

// E11 measures planning-cost scaling at fixed d/g ratios, the paper's
// O(g³)/O(n log d) complexity discussion after Theorem 2.
func E11(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Planning cost scaling (euler-split backend)",
		Columns: []string{"shape", "d", "g", "n", "time"},
	}
	rng := rand.New(rand.NewSource(seed))
	type shape struct {
		name string
		d, g int
	}
	var shapes []shape
	for _, g := range []int{16, 64, 256} {
		shapes = append(shapes, shape{"d=g", g, g})
	}
	for _, g := range []int{16, 64, 256} {
		shapes = append(shapes, shape{"d=4g", 4 * g, g})
	}
	for _, d := range []int{4, 16} {
		shapes = append(shapes, shape{"g=4d", d, 4 * d})
	}
	for _, s := range shapes {
		pi := perms.Random(s.d*s.g, rng)
		start := time.Now()
		if _, err := core.PlanRoute(s.d, s.g, pi, core.Options{}); err != nil {
			return nil, err
		}
		t.AddRow(s.name, s.d, s.g, s.d*s.g, time.Since(start).Round(time.Microsecond).String())
	}
	return t, nil
}

// E12 reports end-to-end application slot counts on POPS: data sum, prefix
// sum (hypercube), row sum (mesh), matrix multiplication (Cannon).
func E12(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Applications on POPS: verified slot costs",
		Columns: []string{"application", "d", "g", "n", "slots", "predicted", "match"},
	}
	rng := rand.New(rand.NewSource(seed))

	// Hypercube data sum and prefix sum on POPS(4,4).
	bits, d, g := 4, 4, 4
	n := 1 << uint(bits)
	for _, op := range []string{"data-sum", "prefix-sum"} {
		m, err := hypercube.New(bits, d, g, nil, core.Options{})
		if err != nil {
			return nil, err
		}
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(100))
		}
		if err := m.Load(vals); err != nil {
			return nil, err
		}
		switch op {
		case "data-sum":
			if _, err := m.DataSum(); err != nil {
				return nil, err
			}
		case "prefix-sum":
			if err := m.PrefixSum(); err != nil {
				return nil, err
			}
		}
		pred := bits * core.OptimalSlots(d, g)
		t.AddRow(op, d, g, n, m.SlotsUsed(), pred, m.SlotsUsed() == pred)
	}

	// Mesh row sum on POPS(8,2) (4x4 torus).
	mm, err := mesh.New(4, 4, 8, 2, nil, core.Options{})
	if err != nil {
		return nil, err
	}
	vals := make([]int64, 16)
	for i := range vals {
		vals[i] = int64(i)
	}
	if err := mm.Load(vals); err != nil {
		return nil, err
	}
	if err := mm.RowSum(); err != nil {
		return nil, err
	}
	predMesh := 3 * core.OptimalSlots(8, 2)
	t.AddRow("mesh-row-sum", 8, 2, 16, mm.SlotsUsed(), predMesh, mm.SlotsUsed() == predMesh)

	// Cannon matrix multiply, 4x4 matrices on POPS(4,4).
	mdim := 4
	a := randomMatrix(mdim, rng)
	b := randomMatrix(mdim, rng)
	res, err := matmul.Multiply(mdim, 4, 4, a, b, core.Options{})
	if err != nil {
		return nil, err
	}
	okProduct := equalMatrix(res.C, matmul.Reference(mdim, a, b))
	pred := matmul.PredictedSlots(mdim, 4, 4)
	t.AddRow("matmul-cannon", 4, 4, 16, res.Slots, pred, res.Slots == pred && okProduct)
	if !okProduct {
		return nil, fmt.Errorf("E12: matmul product incorrect")
	}
	return t, nil
}

// EF validates the structural invariants of Figures 1–2: coupler count g²,
// per-processor transmitter/receiver counts, and the diameter-1 property.
func EF() (*Table, error) {
	t := &Table{
		ID:      "F1/F2",
		Title:   "Topology invariants (Figures 1–2)",
		Columns: []string{"d", "g", "n", "couplers", "diameter-1", "lower-bound-check"},
	}
	for _, s := range []struct{ d, g int }{{3, 2}, {2, 3}, {4, 4}, {1, 8}} {
		// Diameter 1: every ordered pair is one-slot reachable (checked in
		// popsnet tests exhaustively); here record the structural counts and
		// verify routing a full permutation stays within bounds.
		pi := perms.VectorReversal(s.d * s.g)
		p, err := core.PlanRoute(s.d, s.g, pi, core.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := p.Verify(); err != nil {
			return nil, err
		}
		lb, _, err := bounds.LowerBound(s.d, s.g, pi)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.d, s.g, s.d*s.g, s.g*s.g, true, p.SlotCount() >= lb)
	}
	return t, nil
}

func randomMatrix(m int, rng *rand.Rand) [][]int64 {
	a := make([][]int64, m)
	for i := range a {
		a[i] = make([]int64, m)
		for j := range a[i] {
			a[i][j] = int64(rng.Intn(9) - 4)
		}
	}
	return a
}

func equalMatrix(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// All runs every experiment with default parameters, in ID order.
func All(seed int64) ([]*Table, error) {
	var tables []*Table
	add := func(t *Table, err error) error {
		if err != nil {
			return err
		}
		tables = append(tables, t)
		return nil
	}
	if err := add(E1(seed, 3)); err != nil {
		return nil, err
	}
	if err := add(E2(seed)); err != nil {
		return nil, err
	}
	if err := add(E3()); err != nil {
		return nil, err
	}
	if err := add(E4(seed, 3)); err != nil {
		return nil, err
	}
	if err := add(E5()); err != nil {
		return nil, err
	}
	if err := add(E6()); err != nil {
		return nil, err
	}
	if err := add(E7(seed)); err != nil {
		return nil, err
	}
	if err := add(E8(seed)); err != nil {
		return nil, err
	}
	if err := add(E9()); err != nil {
		return nil, err
	}
	if err := add(E10(seed, nil)); err != nil {
		return nil, err
	}
	if err := add(E11(seed)); err != nil {
		return nil, err
	}
	if err := add(E12(seed)); err != nil {
		return nil, err
	}
	if err := add(E13(seed)); err != nil {
		return nil, err
	}
	if err := add(E14(seed)); err != nil {
		return nil, err
	}
	if err := add(E15(seed)); err != nil {
		return nil, err
	}
	if err := add(E16(seed)); err != nil {
		return nil, err
	}
	if err := add(EF()); err != nil {
		return nil, err
	}
	return tables, nil
}
