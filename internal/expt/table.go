// Package expt defines the reproduction experiments E1–E12 mapped out in
// DESIGN.md: one per theorem, proposition, figure, and related-work claim of
// Mei & Rizzi. Each experiment returns a Table that cmd/popsexp renders; the
// same tables back EXPERIMENTS.md.
package expt

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells formatted with fmt.Sprint.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case bool:
			if v {
				row[i] = "yes"
			} else {
				row[i] = "no"
			}
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return "  " + strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(seps)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Markdown writes the table as a GitHub-flavored markdown table, used to
// regenerate EXPERIMENTS.md.
func (t *Table) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
