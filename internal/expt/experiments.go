package expt

import (
	"fmt"
	"math/rand"

	"pops"
	"pops/internal/bounds"
	"pops/internal/core"
	"pops/internal/perms"
	"pops/internal/popsnet"
)

// Figure3Perm is the permutation of Figure 3 of the paper on POPS(3,3).
var Figure3Perm = []int{4, 8, 3, 6, 0, 2, 7, 1, 5}

// Shapes swept by the slot-count experiments.
var sweepShapes = []struct{ D, G int }{
	{1, 4}, {1, 16}, {2, 2}, {2, 8}, {4, 4}, {3, 8}, {8, 8},
	{4, 2}, {8, 2}, {9, 3}, {16, 4}, {32, 8}, {16, 16},
}

// E1 validates Theorem 2's headline slot count on random permutations:
// 1 slot when d = 1, 2⌈d/g⌉ when d > 1, all schedules replayed on the
// simulator.
func E1(seed int64, trials int) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Theorem 2 slot counts on random permutations",
		Columns: []string{"d", "g", "n", "slots", "theorem", "verified", "trials"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, s := range sweepShapes {
		n := s.D * s.G
		slots := -1
		for trial := 0; trial < trials; trial++ {
			pi := perms.Random(n, rng)
			p, err := core.PlanRoute(s.D, s.G, pi, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("E1 d=%d g=%d: %w", s.D, s.G, err)
			}
			if _, err := p.Verify(); err != nil {
				return nil, fmt.Errorf("E1 d=%d g=%d: %w", s.D, s.G, err)
			}
			if slots == -1 {
				slots = p.SlotCount()
			} else if slots != p.SlotCount() {
				return nil, fmt.Errorf("E1 d=%d g=%d: slot count varies across permutations", s.D, s.G)
			}
		}
		t.AddRow(s.D, s.G, n, slots, core.OptimalSlots(s.D, s.G), slots == core.OptimalSlots(s.D, s.G), trials)
	}
	t.Notes = append(t.Notes, "paper: any permutation routes in 1 slot (d=1) / 2⌈d/g⌉ slots (d>1)")
	return t, nil
}

// E2 validates Fact 1: a fairly distributed packet set routes in one slot.
// The fair distribution is taken from the planner's relay colors: after slot
// one of the Theorem 2 schedule, the in-flight packets form a fair
// distribution, and a single DirectSlot delivers them.
func E2(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Fact 1: fairly distributed sets route in one slot",
		Columns: []string{"d", "g", "packets", "one-slot"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, s := range []struct{ D, G int }{{2, 2}, {2, 4}, {3, 6}, {4, 4}, {8, 8}} {
		n := s.D * s.G
		pi := perms.Random(n, rng)
		p, err := core.PlanRoute(s.D, s.G, pi, core.Options{})
		if err != nil {
			return nil, err
		}
		nw := p.Net
		// Relay position of each packet after slot 1 (d ≤ g: single round).
		relays := make([]int, n)
		rankInGroup := make(map[int]int)
		for pkt := 0; pkt < n; pkt++ {
			j := p.IntermediateGroup(pkt)
			relays[pkt] = nw.Proc(j, rankInGroup[j])
			rankInGroup[j]++
		}
		pkts := make([]int, n)
		dests := make([]int, n)
		for i := range pkts {
			pkts[i] = i
			dests[i] = pi[i]
		}
		_, err = popsnet.DirectSlot(nw, pkts, relays, dests)
		t.AddRow(s.D, s.G, n, err == nil)
		if err != nil {
			return nil, fmt.Errorf("E2 d=%d g=%d: fair distribution not one-slot routable: %w", s.D, s.G, err)
		}
	}
	return t, nil
}

// E3 reproduces the Figure 3 worked example: the POPS(3,3) permutation, the
// intermediate destination of every packet, and the two-slot routing.
func E3() (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Figure 3 worked example on POPS(3,3)",
		Columns: []string{"packet(proc)", "dest xy", "intermediate group", "round"},
	}
	p, err := core.PlanRoute(3, 3, Figure3Perm, core.Options{})
	if err != nil {
		return nil, err
	}
	if _, err := p.Verify(); err != nil {
		return nil, err
	}
	for pkt := 0; pkt < 9; pkt++ {
		dest := Figure3Perm[pkt]
		t.AddRow(pkt, fmt.Sprintf("%d%d", dest/3, dest), p.IntermediateGroup(pkt), p.Round(pkt))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("routed in %d slots (paper: 2); packets 4 and 5 share destination group 0 and get distinct relays", p.SlotCount()))
	return t, nil
}

// E4 validates Proposition 1 on random derangements: the planner's
// 2⌈d/g⌉ is within a factor 2 of the ⌈d/g⌉ lower bound.
func E4(seed int64, trials int) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Proposition 1: derangements need ≥ ⌈d/g⌉ slots",
		Columns: []string{"d", "g", "lower", "achieved", "ratio"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, s := range sweepShapes {
		n := s.D * s.G
		if n < 2 {
			continue
		}
		worst := 0.0
		lb := 0
		for trial := 0; trial < trials; trial++ {
			pi := perms.RandomDerangement(n, rng)
			var name string
			var err error
			lb, name, err = bounds.LowerBound(s.D, s.G, pi)
			if err != nil {
				return nil, err
			}
			_ = name
			if r := bounds.OptimalityRatio(core.OptimalSlots(s.D, s.G), lb); r > worst {
				worst = r
			}
		}
		t.AddRow(s.D, s.G, lb, core.OptimalSlots(s.D, s.G), worst)
		if worst > 2.0 {
			return nil, fmt.Errorf("E4 d=%d g=%d: ratio %v exceeds paper's factor 2", s.D, s.G, worst)
		}
	}
	t.Notes = append(t.Notes, "paper: at most double the optimum for every derangement")
	return t, nil
}

// E5 validates Proposition 2: on the group-mapping group-derangement class
// (vector reversal with even g, group rotations) the algorithm is exactly
// optimal.
func E5() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Proposition 2: optimal instances (lower bound = achieved)",
		Columns: []string{"family", "d", "g", "lower", "achieved", "optimal"},
	}
	type inst struct {
		family string
		d, g   int
		pi     []int
	}
	var instances []inst
	for _, s := range []struct{ d, g int }{{2, 2}, {4, 2}, {8, 4}, {3, 4}, {16, 2}} {
		instances = append(instances, inst{"reversal", s.d, s.g, perms.VectorReversal(s.d * s.g)})
	}
	for _, s := range []struct{ d, g int }{{4, 4}, {8, 2}, {6, 3}} {
		pi, err := perms.GroupRotation(s.d, s.g, 1)
		if err != nil {
			return nil, err
		}
		instances = append(instances, inst{"group-rotation", s.d, s.g, pi})
	}
	for _, in := range instances {
		lb, name, err := bounds.LowerBound(in.d, in.g, in.pi)
		if err != nil {
			return nil, err
		}
		if name != "Prop2" {
			return nil, fmt.Errorf("E5 %s d=%d g=%d: expected Prop2 bound, got %s", in.family, in.d, in.g, name)
		}
		ach := core.OptimalSlots(in.d, in.g)
		p, err := core.PlanRoute(in.d, in.g, in.pi, core.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := p.Verify(); err != nil {
			return nil, err
		}
		t.AddRow(in.family, in.d, in.g, lb, ach, lb == ach)
	}
	t.Notes = append(t.Notes, "paper: vector reversal (even g) shows Theorem 2 is optimal; Prop 2 generalizes")
	return t, nil
}

// E6 validates Proposition 3: group-mapping derangements with fixed
// destination groups need ≥ 2⌈d/(1+g)⌉ slots.
func E6() (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Proposition 3: group-mapping derangements, fixed groups allowed",
		Columns: []string{"d", "g", "lower 2⌈d/(1+g)⌉", "achieved", "ratio"},
	}
	for _, s := range []struct{ d, g int }{{6, 2}, {9, 2}, {8, 4}, {12, 3}, {4, 4}} {
		// Identity group map with a cyclic inner derangement: group-mapping,
		// derangement, but not group-derangement — only Prop 3 applies.
		inner := make([][]int, s.g)
		for h := range inner {
			inner[h] = perms.CyclicShift(s.d, 1)
		}
		pi, err := perms.BlockPermutation(s.d, s.g, perms.Identity(s.g), inner)
		if err != nil {
			return nil, err
		}
		lb, name, err := bounds.LowerBound(s.d, s.g, pi)
		if err != nil {
			return nil, err
		}
		if name != "Prop3" {
			return nil, fmt.Errorf("E6 d=%d g=%d: expected Prop3, got %s", s.d, s.g, name)
		}
		ach := core.OptimalSlots(s.d, s.g)
		t.AddRow(s.d, s.g, lb, ach, bounds.OptimalityRatio(ach, lb))
	}
	return t, nil
}

// E7 compares the Theorem 2 router against the greedy direct baseline and
// the single-slot characterization, on random, adversarial, and reversal
// workloads. The strategies run through the public Router interface with
// WithVerify, so every schedule in the table replayed on the simulator.
func E7(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Theorem 2 vs greedy direct routing vs single-slot baseline",
		Columns: []string{"workload", "d", "g", "theorem2", "greedy", "speedup", "1-slot?"},
	}
	rng := rand.New(rand.NewSource(seed))
	type wl struct {
		name string
		d, g int
		pi   []int
	}
	var wls []wl
	for _, s := range []struct{ d, g int }{{4, 4}, {8, 8}, {16, 4}, {8, 2}, {32, 8}} {
		n := s.d * s.g
		wls = append(wls, wl{"random", s.d, s.g, perms.Random(n, rng)})
		rot, err := perms.GroupRotation(s.d, s.g, 1)
		if err != nil {
			return nil, err
		}
		wls = append(wls, wl{"group-rotation", s.d, s.g, rot})
		wls = append(wls, wl{"reversal", s.d, s.g, perms.VectorReversal(n)})
	}
	for _, w := range wls {
		theorem, err := pops.NewTheoremTwo(w.d, w.g, pops.WithVerify(true))
		if err != nil {
			return nil, err
		}
		p, err := theorem.Route(w.pi)
		if err != nil {
			return nil, err
		}
		gr, err := pops.NewGreedy(w.d, w.g, pops.WithVerify(true))
		if err != nil {
			return nil, err
		}
		gp, err := gr.Route(w.pi)
		if err != nil {
			return nil, err
		}
		ss, err := pops.NewSingleSlot(w.d, w.g)
		if err != nil {
			return nil, err
		}
		_, ssErr := ss.PredictedSlots(w.pi)
		t.AddRow(w.name, w.d, w.g, p.SlotCount(), gp.SlotCount(),
			float64(gp.SlotCount())/float64(p.SlotCount()), ssErr == nil)
	}
	t.Notes = append(t.Notes, "group-rotation serializes greedy on one coupler: d slots vs 2⌈d/g⌉")
	return t, nil
}
