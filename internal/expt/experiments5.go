package expt

import (
	"fmt"
	"math/rand"

	"pops"
	"pops/internal/perms"
)

// E16 exercises the unified Router API end to end: every strategy routes the
// same workloads through the pops.Router interface, single-slot
// applicability shows up as "n/a" where the characterization rejects the
// permutation, and the Auto router's per-permutation choice (recorded in
// Plan.Strategy) is tabulated together with the invariant that it never
// costs more than Theorem 2. The batch is planned twice — sequentially and
// through Planner.RouteBatch — and the slot counts must agree.
func E16(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E16",
		Title: "Unified Router API: slots per strategy and Auto's choice",
		Columns: []string{
			"workload", "d", "g", "theorem2", "greedy", "direct-optimal", "singleslot",
			"auto", "auto picked",
		},
	}
	rng := rand.New(rand.NewSource(seed))
	type wl struct {
		name string
		d, g int
		pi   []int
	}
	var wls []wl
	for _, s := range []struct{ d, g int }{{4, 4}, {8, 8}, {16, 4}} {
		wls = append(wls, wl{"random", s.d, s.g, perms.Random(s.d*s.g, rng)})
		rot, err := perms.GroupRotation(s.d, s.g, 1)
		if err != nil {
			return nil, err
		}
		wls = append(wls, wl{"group-rotation", s.d, s.g, rot})
	}
	// Transpose on POPS(8,2): µmax = ⌈d/g⌉ = 4 < 2⌈d/g⌉ = 8, so Auto must
	// route direct. The staircase on POPS(2,4) uses every (source group,
	// destination group) pair at most once: single-slot routable.
	wls = append(wls, wl{"transpose", 8, 2, perms.Transpose(4, 4)})
	wls = append(wls, wl{"staircase", 2, 4, perms.Staircase(2, 4)})

	for _, w := range wls {
		routers, err := pops.AllRouters(w.d, w.g, pops.WithVerify(true))
		if err != nil {
			return nil, err
		}
		cells := []interface{}{w.name, w.d, w.g}
		var theoremSlots, autoSlots int
		var autoPicked string
		for _, r := range routers {
			// Genuine non-applicability (single slot on an unroutable
			// permutation) renders as n/a; any error from an applicable
			// strategy — including a verification failure — fails the
			// experiment.
			if r.Name() == pops.StrategySingleSlot {
				if _, err := r.PredictedSlots(w.pi); err != nil {
					cells = append(cells, "n/a")
					continue
				}
			}
			plan, err := r.Route(w.pi)
			if err != nil {
				return nil, fmt.Errorf("E16 %s d=%d g=%d %s: %w", w.name, w.d, w.g, r.Name(), err)
			}
			cells = append(cells, plan.SlotCount())
			switch r.Name() {
			case pops.StrategyTheoremTwo:
				theoremSlots = plan.SlotCount()
			case pops.StrategyAuto:
				autoSlots = plan.SlotCount()
				autoPicked = plan.Strategy
			}
		}
		// Hard invariant, enforced rather than tabulated: a violating row
		// must fail the experiment, not render a "no" cell.
		if autoSlots > theoremSlots {
			return nil, fmt.Errorf("E16 %s d=%d g=%d: auto used %d slots, theorem2 only %d",
				w.name, w.d, w.g, autoSlots, theoremSlots)
		}
		cells = append(cells, autoPicked)
		t.AddRow(cells...)
	}

	// Batch path: RouteBatch must agree with sequential Route plan for plan.
	d, g := 8, 8
	planner, err := pops.NewPlanner(d, g, pops.WithParallelism(2))
	if err != nil {
		return nil, err
	}
	pis := make([][]int, 16)
	for i := range pis {
		pis[i] = perms.Random(d*g, rng)
	}
	plans, err := planner.RouteBatch(pis)
	if err != nil {
		return nil, err
	}
	for i, plan := range plans {
		seq, err := pops.Route(d, g, pis[i])
		if err != nil {
			return nil, err
		}
		if plan.SlotCount() != seq.SlotCount() {
			return nil, fmt.Errorf("E16 batch: plan %d has %d slots, sequential %d",
				i, plan.SlotCount(), seq.SlotCount())
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("RouteBatch(%d perms on POPS(%d,%d), 2 workers) matches sequential Route slot for slot", len(pis), d, g),
		"auto picks singleslot on one-slot-routable permutations, direct-optimal when µmax < 2⌈d/g⌉, theorem2 otherwise")
	return t, nil
}
