package expt

import (
	"fmt"
	"math/rand"

	"pops/internal/core"
	"pops/internal/greedy"
	"pops/internal/perms"
)

// E13 charts the congestion crossover between direct routing and Theorem 2's
// two-phase relay routing. Workloads interpolate between fully spread
// demand (random permutations, per-coupler multiplicity ≈ small) and fully
// concentrated demand (group rotation, multiplicity d) by composing a group
// rotation on a fraction of the groups with random traffic on the rest.
// Direct-optimal needs µmax slots; Theorem 2 always needs 2⌈d/g⌉. The
// crossover sits where µmax = 2⌈d/g⌉.
func E13(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Congestion crossover: direct-optimal vs Theorem 2 relay routing",
		Columns: []string{"d", "g", "concentrated groups", "µmax", "direct-optimal", "theorem2", "winner"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, s := range []struct{ d, g int }{{8, 2}, {16, 2}, {16, 4}, {32, 8}} {
		n := s.d * s.g
		fracs := []int{0}
		if s.g >= 4 {
			fracs = append(fracs, s.g/4)
		}
		fracs = append(fracs, s.g/2, s.g)
		for _, frac := range fracs {
			pi, err := mixedCongestion(s.d, s.g, frac, rng)
			if err != nil {
				return nil, err
			}
			direct, err := greedy.DirectOptimal(s.d, s.g, pi)
			if err != nil {
				return nil, err
			}
			relay := core.OptimalSlots(s.d, s.g)
			winner := "direct"
			if relay < direct.Slots {
				winner = "theorem2"
			} else if relay == direct.Slots {
				winner = "tie"
			}
			mu, err := greedy.MaxPairMultiplicity(s.d, s.g, pi)
			if err != nil {
				return nil, err
			}
			// Sanity: the relay router still handles the instance.
			p, err := core.PlanRoute(s.d, s.g, pi, core.Options{})
			if err != nil {
				return nil, err
			}
			if _, err := p.Verify(); err != nil {
				return nil, err
			}
			_ = n
			t.AddRow(s.d, s.g, frac, mu, direct.Slots, relay, winner)
		}
	}
	t.Notes = append(t.Notes,
		"direct routing wins on spread demand; once any coupler carries more than 2⌈d/g⌉ packets, Theorem 2's relays win — by Θ(g) at full concentration")
	return t, nil
}

// mixedCongestion builds a permutation in which the first `concentrated`
// groups send all their packets to a single group (rotated by one), while
// the remaining groups exchange random traffic among themselves.
func mixedCongestion(d, g, concentrated int, rng *rand.Rand) ([]int, error) {
	if concentrated > g {
		concentrated = g
	}
	pi := make([]int, d*g)
	// Concentrated block: groups 0..concentrated-1 rotate among themselves.
	for h := 0; h < concentrated; h++ {
		dst := (h + 1) % concentrated
		if concentrated == 0 {
			break
		}
		if concentrated == 1 {
			dst = h // single group maps to itself
		}
		for i := 0; i < d; i++ {
			pi[h*d+i] = dst*d + i
		}
	}
	// Spread block: random permutation of the remaining processors.
	rest := make([]int, 0, (g-concentrated)*d)
	for p := concentrated * d; p < g*d; p++ {
		rest = append(rest, p)
	}
	shuffled := append([]int(nil), rest...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	for i, p := range rest {
		pi[p] = shuffled[i]
	}
	if err := perms.Validate(pi); err != nil {
		return nil, fmt.Errorf("expt: mixedCongestion produced invalid permutation: %w", err)
	}
	return pi, nil
}

// E14 measures the paper's storage remark: with d ≤ g every processor holds
// exactly one packet at every step of the routing; with d > g the verified
// maximum is two (own undelivered packet plus one in transit or delivered).
func E14(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Storage per processor during routing (Theorem 2 remark)",
		Columns: []string{"d", "g", "max held (measured)", "claim"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, s := range []struct{ d, g int }{{2, 2}, {4, 8}, {8, 8}, {8, 4}, {16, 2}, {9, 3}} {
		pi := perms.Random(s.d*s.g, rng)
		p, err := core.PlanRoute(s.d, s.g, pi, core.Options{})
		if err != nil {
			return nil, err
		}
		tr, err := p.Verify()
		if err != nil {
			return nil, err
		}
		max := 0
		for _, m := range tr.MaxHeld {
			if m > max {
				max = m
			}
		}
		claim := "exactly 1 (paper)"
		wantMax := 1
		if s.d > s.g {
			claim = "≤ 3 (own + delivered + relay)"
			wantMax = 3
		}
		if max > wantMax {
			return nil, fmt.Errorf("E14 d=%d g=%d: max held %d exceeds %d", s.d, s.g, max, wantMax)
		}
		t.AddRow(s.d, s.g, max, claim)
	}
	t.Notes = append(t.Notes,
		"for d > g the literal 'exactly one packet' of the paper counts only the routing buffer: a destination can simultaneously hold its not-yet-sent packet, an already-delivered packet (retained by the simulator), and one packet in transit — at most one of which is in the relay buffer, matching the paper's intent")
	return t, nil
}
