package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestE1(t *testing.T) {
	tab, err := E1(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("E1 produced no rows")
	}
	for _, row := range tab.Rows {
		if row[5] != "yes" {
			t.Fatalf("E1 row not verified: %v", row)
		}
	}
}

func TestE2(t *testing.T) {
	tab, err := E2(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[3] != "yes" {
			t.Fatalf("E2 fair distribution not one-slot routable: %v", row)
		}
	}
}

func TestE3GoldenFigure(t *testing.T) {
	tab, err := E3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("E3 rows = %d, want 9", len(tab.Rows))
	}
	// Destination "xy" encoding of the figure for packet 0: dest 4 = group 1,
	// processor 4 → "14".
	if tab.Rows[0][1] != "14" {
		t.Fatalf("E3 packet 0 dest = %s, want 14", tab.Rows[0][1])
	}
}

func TestE4ThroughE7(t *testing.T) {
	if _, err := E4(3, 2); err != nil {
		t.Fatal(err)
	}
	tab5, err := E5()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab5.Rows {
		if row[5] != "yes" {
			t.Fatalf("E5 instance not optimal: %v", row)
		}
	}
	if _, err := E6(); err != nil {
		t.Fatal(err)
	}
	tab7, err := E7(4)
	if err != nil {
		t.Fatal(err)
	}
	// Group rotation rows must show greedy ≥ theorem2.
	for _, row := range tab7.Rows {
		if row[0] == "group-rotation" && row[6] == "yes" {
			t.Fatalf("adversarial instance claimed single-slot routable: %v", row)
		}
	}
}

func TestE8(t *testing.T) {
	tab, err := E8(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("E8 rows = %d, want 6 (3 mappings × 2 machines)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[8] != "yes" {
			t.Fatalf("E8 incorrect computation: %v", row)
		}
	}
}

func TestE9(t *testing.T) {
	tab, err := E9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("E9 produced no rows")
	}
}

func TestE10SmallSizes(t *testing.T) {
	tab, err := E10(6, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("E10 rows = %d, want 6 (2 sizes × 3 algorithms)", len(tab.Rows))
	}
}

func TestE12(t *testing.T) {
	tab, err := E12(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[6] != "yes" {
			t.Fatalf("E12 application cost mismatch: %v", row)
		}
	}
}

func TestEF(t *testing.T) {
	tab, err := EF()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[4] != "yes" || row[5] != "yes" {
			t.Fatalf("topology invariant failed: %v", row)
		}
	}
}

func TestE16RouterTable(t *testing.T) {
	tab, err := E16(9)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		switch row[0] {
		case "staircase":
			if row[8] != "singleslot" {
				t.Fatalf("E16 auto picked %s for staircase, want singleslot: %v", row[8], row)
			}
		case "transpose":
			if row[8] != "direct-optimal" {
				t.Fatalf("E16 auto picked %s for transpose, want direct-optimal: %v", row[8], row)
			}
		case "group-rotation":
			if row[8] != "theorem2" {
				t.Fatalf("E16 auto picked %s for group-rotation, want theorem2: %v", row[8], row)
			}
		}
	}
}

func TestRenderFormats(t *testing.T) {
	tab := &Table{
		ID:      "T",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow(true, "x")

	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T: demo", "2.50", "yes", "a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := tab.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	for _, want := range []string{"### T — demo", "| a | bb |", "| --- | --- |", "*a note*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("Markdown output missing %q:\n%s", want, md)
		}
	}
}

func TestE13CrossoverShowsBothWinners(t *testing.T) {
	tab, err := E13(1)
	if err != nil {
		t.Fatal(err)
	}
	winners := make(map[string]bool)
	for _, row := range tab.Rows {
		winners[row[6]] = true
	}
	if !winners["direct"] || !winners["theorem2"] {
		t.Fatalf("crossover not demonstrated: winners = %v", winners)
	}
}

func TestE14StorageBounds(t *testing.T) {
	tab, err := E14(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[3] == "exactly 1 (paper)" && row[2] != "1" {
			t.Fatalf("d<=g row with max held %s", row[2])
		}
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("All() includes timing sweeps; skipped in -short")
	}
	tables, err := All(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 17 {
		t.Fatalf("All returned %d tables, want 17", len(tables))
	}
	seen := make(map[string]bool)
	for _, tab := range tables {
		if seen[tab.ID] {
			t.Fatalf("duplicate table %s", tab.ID)
		}
		seen[tab.ID] = true
		if len(tab.Rows) == 0 {
			t.Fatalf("table %s has no rows", tab.ID)
		}
	}
}
