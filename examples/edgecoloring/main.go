// Edge coloring and fair distributions: the Theorem 1 machinery exposed.
// Builds the proper list system of the Figure 3 permutation on POPS(3,3),
// computes a fair distribution with each of the three coloring backends, and
// shows the invariants (1)–(3) holding.
package main

import (
	"fmt"
	"log"

	"pops"
	"pops/internal/fairdist"
)

func main() {
	// Figure 3 of the paper: POPS(3,3), destinations per processor.
	pi := []int{4, 8, 3, 6, 0, 2, 7, 1, 5}
	d, g := 3, 3

	ls, err := fairdist.FromPermutation(d, g, pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("list system from Figure 3's permutation (L(h,i) = destination group of packet i of group h):\n")
	for h, list := range ls.Lists {
		fmt.Printf("  L_%d = %v\n", h, list)
	}
	proper, err := ls.IsProper()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proper: %v (every group appears Δ1 = %d times; n2 = %d divides n1·Δ1 = %d)\n\n",
		proper, ls.Delta1(), ls.NTargets, ls.NSources*ls.Delta1())

	for _, algo := range []pops.Algorithm{
		pops.RepeatedMatching, pops.EulerSplitDC, pops.Insertion,
	} {
		f, err := ls.FairDistribution(algo)
		if err != nil {
			log.Fatalf("%v: %v", algo, err)
		}
		if err := ls.Verify(f); err != nil {
			log.Fatalf("%v: fair distribution invalid: %v", algo, err)
		}
		fmt.Printf("fair distribution via %s:\n", algo)
		for h, row := range f {
			fmt.Printf("  f(%d,·) = %v\n", h, row)
		}
		fmt.Printf("  invariants (1)-(3) verified: per-source injective, per-target load Δ2 = %d, conflicting packets separated\n\n",
			ls.Delta2())
	}
}
