// Quickstart: route a random permutation on a POPS(8,16) network (128
// processors) through the Planner, verify the schedule on the slot-level
// simulator, and compare routing strategies through the Router interface —
// Theorem 2's universal relay router, the greedy direct baseline, and the
// Auto strategy selector.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pops"
)

func main() {
	const d, g = 8, 16
	rng := rand.New(rand.NewSource(2026))

	// A Planner validates the network once and reuses its internal buffers
	// across Route calls — hold one per network shape.
	planner, err := pops.NewPlanner(d, g)
	if err != nil {
		log.Fatal(err)
	}
	nw := planner.Network()
	fmt.Printf("network: %v — %d processors, %d couplers, diameter 1\n",
		nw, nw.N(), nw.Couplers())

	pi := pops.RandomDerangement(nw.N(), rng)

	plan, err := planner.Route(pi)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := plan.Verify()
	if err != nil {
		log.Fatalf("schedule failed simulation: %v", err)
	}
	fmt.Printf("%s routing: %d slots (bound 2⌈d/g⌉ = %d)\n",
		plan.Strategy, plan.SlotCount(), pops.OptimalSlots(d, g))
	fmt.Printf("packets moved per slot: %v\n", trace.PacketsMoved)

	lb, prop, err := pops.LowerBound(d, g, pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lower bound: %d slots (%s) — within factor %.1f\n",
		lb, prop, float64(plan.SlotCount())/float64(lb))

	greedy, err := pops.NewGreedy(d, g, pops.WithVerify(true))
	if err != nil {
		log.Fatal(err)
	}
	greedyPlan, err := greedy.Route(pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy direct baseline: %d slots\n", greedyPlan.SlotCount())

	// The adversarial case where two-phase routing shines: every packet of
	// group h heads to group h+1. The Auto router recognizes that no direct
	// strategy beats Theorem 2 here and picks the relay route.
	adv, err := pops.GroupRotation(d, g, 1)
	if err != nil {
		log.Fatal(err)
	}
	auto, err := pops.NewAuto(d, g, pops.WithVerify(true))
	if err != nil {
		log.Fatal(err)
	}
	advPlan, err := auto.Route(adv)
	if err != nil {
		log.Fatal(err)
	}
	advGreedy, err := greedy.PredictedSlots(adv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("group-rotation adversary: auto picked %s, %d slots vs greedy %d slots\n",
		advPlan.Strategy, advPlan.SlotCount(), advGreedy)
}
