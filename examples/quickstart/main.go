// Quickstart: route a random permutation on a POPS(8,16) network (128
// processors), verify the schedule on the slot-level simulator, and compare
// against the greedy direct baseline and the lower bound.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pops"
)

func main() {
	const d, g = 8, 16
	rng := rand.New(rand.NewSource(2026))

	nw, err := pops.NewNetwork(d, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %v — %d processors, %d couplers, diameter 1\n",
		nw, nw.N(), nw.Couplers())

	pi := pops.RandomDerangement(nw.N(), rng)

	plan, err := pops.Route(d, g, pi)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := plan.Verify()
	if err != nil {
		log.Fatalf("schedule failed simulation: %v", err)
	}
	fmt.Printf("Theorem 2 routing: %d slots (bound 2⌈d/g⌉ = %d)\n",
		plan.SlotCount(), pops.OptimalSlots(d, g))
	fmt.Printf("packets moved per slot: %v\n", trace.PacketsMoved)

	lb, prop, err := pops.LowerBound(d, g, pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lower bound: %d slots (%s) — within factor %.1f\n",
		lb, prop, float64(plan.SlotCount())/float64(lb))

	_, greedySlots, err := pops.GreedyRoute(d, g, pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy direct baseline: %d slots\n", greedySlots)

	// The adversarial case where two-phase routing shines: every packet of
	// group h heads to group h+1.
	adv, err := pops.GroupRotation(d, g, 1)
	if err != nil {
		log.Fatal(err)
	}
	advPlan, err := pops.Route(d, g, adv)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := advPlan.Verify(); err != nil {
		log.Fatal(err)
	}
	_, advGreedy, err := pops.GreedyRoute(d, g, adv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("group-rotation adversary: Theorem 2 %d slots vs greedy %d slots\n",
		advPlan.SlotCount(), advGreedy)
}
