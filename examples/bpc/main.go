// BPC permutations on POPS: routes the bit-permute-complement families of
// Sahni 2000a (bit reversal, perfect shuffle, hypercube exchanges, vector
// reversal as full complement) on a POPS(8,8) network with the universal
// Theorem 2 router, reporting slots against the specialized per-family
// results from the literature.
package main

import (
	"fmt"
	"log"

	"pops"
)

func main() {
	const d, g = 8, 8 // n = 64 = 2^6
	const bits = 6

	type family struct {
		name string
		pi   []int
	}
	var families []family

	br, err := pops.BitReversal(bits)
	if err != nil {
		log.Fatal(err)
	}
	families = append(families, family{"bit reversal (FFT exchange)", br.Permutation()})

	shuffle, err := pops.NewBPC(bits, []int{5, 0, 1, 2, 3, 4}, 0)
	if err != nil {
		log.Fatal(err)
	}
	families = append(families, family{"perfect shuffle", shuffle.Permutation()})

	for _, b := range []int{0, 3, 5} {
		ex, err := pops.HypercubeExchange(bits, b)
		if err != nil {
			log.Fatal(err)
		}
		families = append(families, family{fmt.Sprintf("hypercube exchange bit %d", b), ex.Permutation()})
	}

	comp, err := pops.NewBPC(bits, []int{0, 1, 2, 3, 4, 5}, (1<<bits)-1)
	if err != nil {
		log.Fatal(err)
	}
	families = append(families, family{"vector reversal (complement all)", comp.Permutation()})

	fmt.Printf("BPC permutations on POPS(%d,%d), n = %d\n", d, g, d*g)
	fmt.Printf("Sahni 2000a: every BPC routes in 2⌈d/g⌉ = %d slots; Theorem 2 extends this to ALL permutations\n\n",
		pops.OptimalSlots(d, g))

	// The whole family sweep goes through one Planner batch: the network is
	// validated once, planning buffers are shared, and every schedule is
	// replayed on the simulator (WithVerify).
	planner, err := pops.NewPlanner(d, g, pops.WithVerify(true), pops.WithParallelism(2))
	if err != nil {
		log.Fatal(err)
	}
	pis := make([][]int, len(families))
	for i, f := range families {
		pis[i] = f.pi
	}
	plans, err := planner.RouteBatch(pis)
	if err != nil {
		log.Fatal(err)
	}
	for i, f := range families {
		lb, prop, err := pops.LowerBound(d, g, f.pi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %d slots (lower bound %d via %s)\n", f.name, plans[i].SlotCount(), lb, prop)
	}
}
