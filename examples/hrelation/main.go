// h-relation routing on POPS: an all-to-all personalized exchange between
// two halves of the machine, where every left processor sends one packet to
// each of h right processors — the generalization of permutation routing the
// paper's machinery supports directly. The relation is decomposed into h
// permutations (König on the request multigraph), each routed by Theorem 2.
//
// The workload runs through the unified Planner.Execute surface, and then
// again through ExecuteStream, whose slot fragments become available while
// the request-graph factorization is still peeling later factors — each
// fragment is one whole schedule slot, ready as soon as its König factor
// has been routed.
package main

import (
	"context"
	"fmt"
	"log"

	"pops"
)

func main() {
	const d, g = 4, 4 // 16 processors
	n := d * g
	half := n / 2
	const h = 4 // each left processor talks to 4 right processors

	var reqs []pops.Request
	for src := 0; src < half; src++ {
		for k := 0; k < h; k++ {
			dst := half + (src+k)%half
			reqs = append(reqs, pops.Request{Src: src, Dst: dst})
		}
	}

	// One Planner per shape: the h-relation shares its pooled worker arenas
	// (and, with WithPlanCache, its plan cache) with permutation planning.
	ctx := context.Background()
	planner, err := pops.NewPlanner(d, g, pops.WithVerify(true))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.Execute(ctx, pops.HRelation(reqs))
	if err != nil {
		log.Fatal(err)
	}
	trace, err := plan.Verify()
	if err != nil {
		log.Fatalf("schedule failed simulation: %v", err)
	}

	fmt.Printf("h-relation: %d requests on POPS(%d,%d), degree h = %d\n", len(reqs), d, g, plan.H)
	fmt.Printf("decomposed into %d permutation factors\n", len(plan.Factors))
	for k, f := range plan.Factors {
		fmt.Printf("  factor %d routes %d real requests\n", k, len(f))
	}
	fmt.Printf("total slots: %d (= h · 2⌈d/g⌉ = %d)\n", plan.SlotCount(), pops.HRelationSlots(d, g, plan.H))
	fmt.Printf("packets moved per slot: %v\n", trace.PacketsMoved)
	fmt.Println("all requests delivered and verified on the simulator")

	// Streaming: the first slots are usable after a single König factor has
	// been peeled and routed — long before the whole factorization is done.
	stream, err := planner.ExecuteStream(ctx, pops.HRelation(reqs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreaming the same relation: %d slots in %d fragments\n", stream.SlotCount(), stream.FragmentCount())
	shown := 0
	for {
		frag, ok := stream.Next()
		if !ok {
			break
		}
		if shown < 3 {
			fmt.Printf("  fragment: slot %2d from factor %d (%d sends)\n", frag.Slot, frag.Color, len(frag.Sends))
		}
		shown++
	}
	collected, err := stream.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ... %d fragments total; collected plan identical to Execute: %v\n",
		shown, collected.SlotCount() == plan.SlotCount())
}
