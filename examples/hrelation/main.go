// h-relation routing on POPS: an all-to-all personalized exchange between
// two halves of the machine, where every left processor sends one packet to
// each of h right processors — the generalization of permutation routing the
// paper's machinery supports directly. The relation is decomposed into h
// permutations (König on the request multigraph), each routed by Theorem 2.
package main

import (
	"fmt"
	"log"

	"pops"
)

func main() {
	const d, g = 4, 4 // 16 processors
	n := d * g
	half := n / 2
	const h = 4 // each left processor talks to 4 right processors

	var reqs []pops.Request
	for src := 0; src < half; src++ {
		for k := 0; k < h; k++ {
			dst := half + (src+k)%half
			reqs = append(reqs, pops.Request{Src: src, Dst: dst})
		}
	}

	// The h factors route independently; WithParallelism bounds the worker
	// pool that plans them, WithVerify replays the full schedule.
	plan, err := pops.RouteHRelation(d, g, reqs, pops.WithParallelism(2), pops.WithVerify(true))
	if err != nil {
		log.Fatal(err)
	}
	trace, err := plan.Verify()
	if err != nil {
		log.Fatalf("schedule failed simulation: %v", err)
	}

	fmt.Printf("h-relation: %d requests on POPS(%d,%d), degree h = %d\n", len(reqs), d, g, plan.H)
	fmt.Printf("decomposed into %d permutation factors\n", len(plan.Factors))
	for k, f := range plan.Factors {
		fmt.Printf("  factor %d routes %d real requests\n", k, len(f))
	}
	fmt.Printf("total slots: %d (= h · 2⌈d/g⌉ = %d)\n", plan.SlotCount(), pops.HRelationSlots(d, g, plan.H))
	fmt.Printf("packets moved per slot: %v\n", trace.PacketsMoved)
	fmt.Println("all requests delivered and verified on the simulator")
}
