// Serving routing plans over the network: starts the sharded planner
// service (the subsystem behind cmd/popsserved) on an ephemeral port and
// drives it with pops.ServiceClient — two POPS shapes, a batched BPC family
// sweep, a repeated mesh-shift permutation answered by the fingerprint plan
// cache, and a slot stream whose first records arrive while the server is
// still factorizing. The final /stats snapshot shows the shard registry,
// the micro-batch coalescing, the cache hit counter, and the
// time-to-first-slot histogram at work.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"pops"
	"pops/internal/service"
)

func main() {
	// In production this is `popsserved -addr :8714`; here the service runs
	// in-process so the example is self-contained.
	svc := service.New(service.Config{BatchSize: 16})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	ctx := context.Background()
	client := pops.NewServiceClient("http://"+ln.Addr().String(), nil)
	if err := client.Healthz(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("popsserved speaking on %s\n\n", ln.Addr())

	// Two shapes served by one process: each gets its own planner shard,
	// created lazily on first use.
	for _, shape := range []struct{ d, g int }{{8, 8}, {16, 4}} {
		slots, err := client.Slots(ctx, shape.d, shape.g)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := client.Route(ctx, shape.d, shape.g, pops.VectorReversal(shape.d*shape.g))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("POPS(%2d,%2d)  reversal: %d slots (= predicted %d), strategy %s\n",
			shape.d, shape.g, plan.Slots, slots, plan.Strategy)
	}

	// A BPC family sweep as one wire batch: the server coalesces it onto
	// the planner's RouteBatch, so the arena-backed coloring engine is
	// amortized across the whole family.
	const bits = 6 // n = 64 on POPS(8,8)
	var pis [][]int
	for b := 0; b < bits; b++ {
		ex, err := pops.HypercubeExchange(bits, b)
		if err != nil {
			log.Fatal(err)
		}
		pis = append(pis, ex.Permutation())
	}
	plans, err := client.RouteBatch(ctx, 8, 8, pis)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhypercube exchange family (%d permutations) as one batch:\n", len(pis))
	for b, plan := range plans {
		fmt.Printf("  bit %d: %d slots, fingerprint %s\n", b, plan.Slots, plan.Fingerprint)
	}

	// Recurring traffic: the same mesh shift requested three times. The
	// first plans, the rest are answered from the fingerprint plan cache.
	shift, err := pops.MeshShift(8, 8, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmesh shift (1,2) requested three times:\n")
	for i := 0; i < 3; i++ {
		plan, err := client.Route(ctx, 8, 8, shift)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  request %d: %d slots, cached=%v\n", i+1, plan.Slots, plan.Cached)
	}

	// Streaming: POST /route/stream delivers the schedule slot by slot.
	// The meta record and the first slot fragments arrive while the server
	// is still peeling later color classes of the same plan.
	const sd, sg = 8, 16
	stream, err := client.RouteStream(ctx, sd, sg, pops.VectorReversal(sd*sg))
	if err != nil {
		log.Fatal(err)
	}
	meta := stream.Meta()
	fmt.Printf("\nstreaming POPS(%d,%d): %d slots in %d fragments\n", sd, sg, meta.Slots, meta.Fragments)
	shown := 0
	for {
		rec, err := stream.Next()
		if err != nil {
			log.Fatal(err)
		}
		if rec == nil {
			break
		}
		if shown < 3 {
			fmt.Printf("  fragment: slot %d offset %3d (%2d sends, color %2d, final=%v)\n",
				rec.Slot, rec.Offset, len(rec.Sends), rec.Color, rec.Final)
		}
		shown++
	}
	fmt.Printf("  ... %d fragments total, done record: %+v\n", shown, *stream.Done())
	stream.Close()

	// Workloads over the wire: an h-relation streamed slot by slot while the
	// server is still factorizing its request multigraph, then replayed — the
	// second stream is answered by the shard's workload plan cache.
	const hd, hg, hh = 4, 8, 2
	hn := hd * hg
	var reqs []pops.Request
	for k := 0; k < hh; k++ {
		for s := 0; s < hn; s++ {
			reqs = append(reqs, pops.Request{Src: s, Dst: (s + k + 1) % hn})
		}
	}
	for attempt := 1; attempt <= 2; attempt++ {
		hst, err := client.ExecuteStream(ctx, hd, hg, pops.HRelation(reqs))
		if err != nil {
			log.Fatal(err)
		}
		hmeta := hst.Meta()
		count := 0
		for {
			rec, err := hst.Next()
			if err != nil {
				log.Fatal(err)
			}
			if rec == nil {
				break
			}
			count++
		}
		hst.Close()
		fmt.Printf("\nh-relation stream %d on POPS(%d,%d): h=%d, %d slots, cached=%v\n",
			attempt, hd, hg, hh, count, hmeta.Cached)
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/stats: %d shards, %d requests (%d streamed), cache %d hits / %d misses\n",
		stats.ShardCount, stats.Requests, stats.Streams, stats.CacheHits, stats.CacheMisses)
	for _, sh := range stats.Shards {
		fmt.Printf("  POPS(%2d,%2d): %d requests in %d batches (max batch %d)\n",
			sh.D, sh.G, sh.Requests, sh.Batches, sh.MaxBatch)
	}
}
