// Mesh torus on POPS: runs a 4-neighbor stencil relaxation (integer heat
// diffusion) on an 8×8 wraparound mesh simulated by a POPS(8,8) network.
// Every mesh step is a permutation routed by Theorem 2 in 2⌈d/g⌉ slots; the
// example reports the exact communication bill and cross-checks the final
// state against a direct computation.
package main

import (
	"fmt"
	"log"

	"pops"
	"pops/internal/mesh"
)

const (
	rows, cols = 8, 8
	d, g       = 8, 8
	iterations = 5
)

func main() {
	m, err := mesh.New(rows, cols, d, g, nil, pops.NewOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A hot spot in one corner, scaled so integer division keeps signal.
	grid := make([]int64, rows*cols)
	grid[0] = 1 << 20
	if err := m.Load(grid); err != nil {
		log.Fatal(err)
	}

	// Reference computation on a plain array.
	ref := append([]int64(nil), grid...)
	neighbors := func(v []int64, i, j int) int64 {
		up := v[((i-1+rows)%rows)*cols+j]
		down := v[((i+1)%rows)*cols+j]
		left := v[i*cols+(j-1+cols)%cols]
		right := v[i*cols+(j+1)%cols]
		return up + down + left + right
	}

	for it := 0; it < iterations; it++ {
		// On the POPS machine: gather the four shifted copies.
		center := append([]int64(nil), m.Values...)
		acc := make([]int64, len(center))
		for _, dir := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			if err := m.Load(center); err != nil {
				log.Fatal(err)
			}
			if err := m.Shift(dir[0], dir[1]); err != nil {
				log.Fatal(err)
			}
			for i := range acc {
				acc[i] += m.Values[i]
			}
		}
		for i := range acc {
			acc[i] = (center[i] + acc[i]/4) / 2
		}
		if err := m.Load(acc); err != nil {
			log.Fatal(err)
		}

		// Reference step.
		next := make([]int64, len(ref))
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				next[i*cols+j] = (ref[i*cols+j] + neighbors(ref, i, j)/4) / 2
			}
		}
		ref = next
	}

	for i := range ref {
		if m.Values[i] != ref[i] {
			log.Fatalf("POPS result diverges from reference at %d: %d != %d", i, m.Values[i], ref[i])
		}
	}

	fmt.Printf("%d stencil iterations on an %dx%d torus over POPS(%d,%d)\n", iterations, rows, cols, d, g)
	fmt.Printf("mesh steps routed: %d, total slots: %d (per step: %d = 2⌈d/g⌉)\n",
		4*iterations, m.SlotsUsed(), m.StepCost())
	fmt.Println("final grid (row 0):", m.Values[:cols])
	fmt.Println("matches direct computation: yes")
}
