// Hypercube simulation on POPS: computes a prefix sum on a 32-processor
// SIMD hypercube simulated by a POPS(4,8) network, under three different
// one-to-one processor mappings. Theorem 2 makes the slot cost identical for
// all of them — the corollary Mei & Rizzi highlight about Sahni's
// simulations not depending on the mapping.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pops"
	"pops/internal/hypercube"
	"pops/internal/perms"
)

func main() {
	const bits, d, g = 5, 4, 8 // 2^5 = 32 = 4·8
	n := 1 << bits
	rng := rand.New(rand.NewSource(7))

	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(50))
	}

	br, err := pops.BitReversal(bits)
	if err != nil {
		log.Fatal(err)
	}
	mappings := []struct {
		name string
		m    []int
	}{
		{"identity", nil},
		{"random", perms.Random(n, rng)},
		{"bit-reversal", br.Permutation()},
	}

	fmt.Printf("prefix sum of %d values on a hypercube simulated by POPS(%d,%d)\n", n, d, g)
	fmt.Printf("per-exchange cost from Theorem 2: %d slots\n\n", pops.OptimalSlots(d, g))

	var want []int64
	for _, mp := range mappings {
		m, err := hypercube.New(bits, d, g, mp.m, pops.NewOptions(pops.WithAlgorithm(pops.EulerSplitDC)))
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Load(vals); err != nil {
			log.Fatal(err)
		}
		if err := m.PrefixSum(); err != nil {
			log.Fatal(err)
		}
		if want == nil {
			want = append([]int64(nil), m.Values...)
			// Check against the direct computation once.
			var run int64
			for i, v := range vals {
				run += v
				if m.Values[i] != run {
					log.Fatalf("prefix sum wrong at %d: %d != %d", i, m.Values[i], run)
				}
			}
		}
		for i := range want {
			if m.Values[i] != want[i] {
				log.Fatalf("mapping %s disagrees at %d", mp.name, i)
			}
		}
		fmt.Printf("mapping %-12s: %2d exchanges, %3d slots, result verified\n",
			mp.name, bits, m.SlotsUsed())
	}
	fmt.Println("\nall mappings cost the same — any permutation routes in 2⌈d/g⌉ slots")
}
