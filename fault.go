package pops

import (
	"pops/internal/core"
	"pops/internal/popsnet"
)

// Coupler names one optical passive star coupler c(B, A): sources in group
// A, destinations in group B.
type Coupler = popsnet.Coupler

// FaultSet declares dead hardware: individual dead couplers, and dead groups
// as sugar for a whole coupler row and column. The zero value is fault-free.
type FaultSet = popsnet.FaultSet

// FaultyNetwork is the fault-injected simulator network: compile a FaultSet
// with FaultSet.Compile, replay schedules against it, and kill couplers
// between slots to model mid-trace fault arrival.
type FaultyNetwork = popsnet.FaultyNetwork

// UnroutableError is the one typed planning failure of FaultyPermutation: a
// packet's source/destination group pair has no surviving relay path. Any
// lesser fault load degrades the plan in slot count instead of failing.
// Detect it with errors.As — it survives the service round-trip.
type UnroutableError = core.UnroutableError

// ErrDeadCoupler is the simulator's fault-injection violation: a slot drove,
// or tuned a receiver to, a dead coupler.
var ErrDeadCoupler = popsnet.ErrDeadCoupler

// StrategyFaulty names the fault-aware planner in Plan.Strategy. Plans for
// empty fault sets delegate to the normal planner and report
// StrategyTheoremTwo — they are byte-identical to Permutation plans.
const StrategyFaulty = core.StrategyFaulty

type faultyWorkload struct {
	pi     []int
	faults FaultSet // canonical: sorted, deduplicated
}

func (faultyWorkload) Kind() string { return WorkloadFaultyPermutation }
func (faultyWorkload) sealed()      {}

// FaultyPermutation is the fault-tolerant Theorem 2 workload: route pi
// without ever driving a dead coupler of faults. The planner starts from the
// normal balanced coloring and repairs only the color classes touching dead
// hardware — alternating-path recoloring first, extra slots when the
// schedule's slack is exhausted — so plans degrade in slot count rather than
// fail. The one failure mode is a severed source/destination pair, reported
// as a typed *UnroutableError.
//
// The fault set is canonicalized (sorted, deduplicated) on construction, so
// two spellings of the same faults share one fingerprint, one cache entry,
// and one cluster placement. An empty set plans byte-identically to
// Permutation(pi) — but under its own cache key, since the fault set is part
// of the workload's identity.
func FaultyPermutation(pi []int, faults FaultSet) Workload {
	return faultyWorkload{pi: pi, faults: faults.Canonical()}
}

// faultyIdent flattens a fault workload for fingerprinting and cache
// identity re-verification: the canonical fault set, then the permutation.
// The layout is length-prefixed ([#couplers, b,a..., #groups, groups...,
// pi...]), so distinct sets can never alias.
func faultyIdent(faults FaultSet, pi []int) []int {
	flat := make([]int, 0, 2+2*len(faults.Couplers)+len(faults.Groups)+len(pi))
	flat = faults.AppendIdent(flat)
	return append(flat, pi...)
}
