package pops

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"pops/internal/popsnet"
	"pops/internal/wire"
	"pops/internal/wirebin"
)

// binaryStreamBytes encodes a meta + slots + trailer binary stream. trailer
// frames are appended verbatim, so tests can end streams with done, error,
// or garbage.
func binaryStreamBytes(t *testing.T, slots []wire.StreamSlot, trailer ...[]byte) []byte {
	t.Helper()
	enc := wirebin.GetEncoder()
	defer wirebin.PutEncoder(enc)
	var out []byte
	out = append(out, enc.AppendMeta(&wire.StreamMeta{
		D: 4, G: 8, Slots: 2, Fragments: len(slots), Strategy: "theorem2",
	})...)
	for i := range slots {
		out = append(out, enc.AppendSlot(&slots[i])...)
	}
	for _, tr := range trailer {
		out = append(out, tr...)
	}
	return out
}

// rawStreamServer serves raw for every POST, flushed in two halves so the
// client sees a real chunked stream, with the binary Content-Type.
func rawStreamServer(t *testing.T, raw []byte) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", wirebin.ContentType)
		fl := w.(http.Flusher)
		half := len(raw) / 2
		w.Write(raw[:half])
		fl.Flush()
		w.Write(raw[half:])
		fl.Flush()
	}))
	t.Cleanup(srv.Close)
	return srv
}

func doneFrame(t *testing.T, fragments int) []byte {
	t.Helper()
	enc := wirebin.GetEncoder()
	defer wirebin.PutEncoder(enc)
	return append([]byte(nil), enc.AppendDone(&wire.StreamDone{Slots: 2, Fragments: fragments})...)
}

// TestServiceClientBinaryStream drives a complete binary stream through the
// client and checks slots, done record, and the decoded meta.
func TestServiceClientBinaryStream(t *testing.T) {
	slots := []wire.StreamSlot{
		{Slot: 0, Color: 0, Sends: []popsnet.Send{{Src: 1, DestGroup: 2, Packet: 3}}, Recvs: []popsnet.Recv{{Proc: 4, SrcGroup: 0}}},
		{Slot: 1, Color: -1, Final: true},
	}
	raw := binaryStreamBytes(t, slots, doneFrame(t, 2))
	srv := rawStreamServer(t, raw)
	client := NewServiceClient(srv.URL, nil)

	st, err := client.RouteStream(context.Background(), 4, 8, VectorReversal(32))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Meta().Fragments != 2 || st.Meta().Strategy != "theorem2" {
		t.Fatalf("meta = %+v", st.Meta())
	}
	for i := 0; ; i++ {
		rec, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			if i != 2 {
				t.Fatalf("stream ended after %d of 2 fragments", i)
			}
			break
		}
		if rec.Slot != i {
			t.Fatalf("fragment %d has slot %d", i, rec.Slot)
		}
		if i == 0 && (len(rec.Sends) != 1 || rec.Sends[0].Packet != 3) {
			t.Fatalf("fragment 0 sends = %+v", rec.Sends)
		}
	}
	if d := st.Done(); d == nil || d.Fragments != 2 {
		t.Fatalf("done = %+v", st.Done())
	}
}

// TestServiceClientTruncatedBinaryStream pins the malformed-stream contract
// on the binary codec: a stream cut mid-frame (or cut before done) surfaces
// a typed error from Next — never a silently short plan.
func TestServiceClientTruncatedBinaryStream(t *testing.T) {
	slots := []wire.StreamSlot{
		{Slot: 0, Color: 0, Sends: []popsnet.Send{{Src: 1, DestGroup: 2, Packet: 3}}, Recvs: []popsnet.Recv{{Proc: 4, SrcGroup: 0}}},
		{Slot: 1, Color: 1, Sends: []popsnet.Send{{Src: 5, DestGroup: 1, Packet: 6}}, Recvs: []popsnet.Recv{{Proc: 7, SrcGroup: 2}}},
	}
	full := binaryStreamBytes(t, slots) // no done frame
	for name, raw := range map[string][]byte{
		"cut mid-frame":   full[:len(full)-3],
		"cut before done": full,
	} {
		srv := rawStreamServer(t, raw)
		client := NewServiceClient(srv.URL, nil)
		st, err := client.RouteStream(context.Background(), 4, 8, VectorReversal(32))
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		got := 0
		var streamErr error
		for {
			rec, err := st.Next()
			if err != nil {
				streamErr = err
				break
			}
			if rec == nil {
				t.Fatalf("%s: stream ended cleanly after %d fragments", name, got)
			}
			got++
		}
		if streamErr == nil {
			t.Fatalf("%s: truncated stream produced no error", name)
		}
		if st.Done() != nil {
			t.Fatalf("%s: truncated stream reported done", name)
		}
		// Sticky, like the NDJSON malformed suite.
		if _, err := st.Next(); err == nil {
			t.Fatalf("%s: stream error was not sticky", name)
		}
		st.Close()
	}
}

// TestServiceClientCorruptBinaryFrame pins garbage-between-frames: a frame
// whose announced length or version byte is wrong errors out with the typed
// wirebin corruption verdict.
func TestServiceClientCorruptBinaryFrame(t *testing.T) {
	slots := []wire.StreamSlot{{Slot: 0, Color: -1, Final: true}}
	raw := binaryStreamBytes(t, slots, []byte{0x03, 0x77, 0x77, 0x77}) // bad version frame
	srv := rawStreamServer(t, raw)
	client := NewServiceClient(srv.URL, nil)
	st, err := client.RouteStream(context.Background(), 4, 8, VectorReversal(32))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if rec, err := st.Next(); err != nil || rec == nil {
		t.Fatalf("first slot: %v %v", rec, err)
	}
	if _, err := st.Next(); err == nil {
		t.Fatal("corrupt frame produced no error")
	}
}

// TestServiceClientBinaryErrorFrame pins the in-band failure path on the
// binary codec, mirroring the NDJSON error-record test.
func TestServiceClientBinaryErrorFrame(t *testing.T) {
	enc := wirebin.GetEncoder()
	errFrame := append([]byte(nil), enc.AppendError("planning exploded")...)
	wirebin.PutEncoder(enc)
	slots := []wire.StreamSlot{{Slot: 0, Color: -1, Final: true}}
	srv := rawStreamServer(t, binaryStreamBytes(t, slots, errFrame))
	client := NewServiceClient(srv.URL, nil)

	st, err := client.RouteStream(context.Background(), 4, 8, VectorReversal(32))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if rec, err := st.Next(); err != nil || rec == nil {
		t.Fatalf("first slot: %v %v", rec, err)
	}
	_, err = st.Next()
	if err == nil || !strings.Contains(err.Error(), "planning exploded") {
		t.Fatalf("error frame surfaced as %v", err)
	}
}

// TestServiceClientCodecFallbackOn406 pins the transparent downgrade: a
// server that 406es the binary offer is retried as plain JSON within the
// same call, and the downgrade is sticky — later calls never offer binary
// again.
func TestServiceClientCodecFallbackOn406(t *testing.T) {
	var rejected, jsonCalls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.Header.Get("Accept"), "x-pops-bin") {
			rejected.Add(1)
			http.Error(w, "binary not spoken here", http.StatusNotAcceptable)
			return
		}
		jsonCalls.Add(1)
		var req wire.RouteRequest
		json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wire.RouteResponse{D: req.D, G: req.G, Plans: []wire.PlanResult{{Slots: 8}}})
	}))
	t.Cleanup(srv.Close)
	client := NewServiceClient(srv.URL, nil)

	for i := 0; i < 3; i++ {
		plan, err := client.Route(context.Background(), 4, 8, VectorReversal(32))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if plan.Slots != 8 {
			t.Fatalf("call %d: plan %+v", i, plan)
		}
	}
	if got := rejected.Load(); got != 1 {
		t.Fatalf("binary offered %d times, want exactly 1 (sticky downgrade)", got)
	}
	if got := jsonCalls.Load(); got != 3 {
		t.Fatalf("JSON served %d calls, want 3", got)
	}
}

// TestServiceClientCodecJSONSendsNoAccept pins the escape hatch: a CodecJSON
// client's requests carry no Accept header at all — byte-identical to the
// pre-binary client — and CodecBinary refuses a JSON answer.
func TestServiceClientCodecJSONSendsNoAccept(t *testing.T) {
	var sawAccept atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Accept") != "" {
			sawAccept.Add(1)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wire.RouteResponse{Plans: []wire.PlanResult{{Slots: 8}}})
	}))
	t.Cleanup(srv.Close)

	jsonClient := NewServiceClient(srv.URL, nil).WithCodec(CodecJSON)
	if _, err := jsonClient.Route(context.Background(), 4, 8, VectorReversal(32)); err != nil {
		t.Fatal(err)
	}
	if sawAccept.Load() != 0 {
		t.Fatal("CodecJSON sent an Accept header")
	}

	binClient := NewServiceClient(srv.URL, nil).WithCodec(CodecBinary)
	_, err := binClient.Route(context.Background(), 4, 8, VectorReversal(32))
	if err == nil || !strings.Contains(err.Error(), "want "+wirebin.ContentType) {
		t.Fatalf("CodecBinary accepted a JSON answer: %v", err)
	}
}
