package pops

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pops/internal/core"
	"pops/internal/obs"
)

// StreamedSlot is one increment of a streaming plan: the fragment of one
// schedule slot contributed by a single relay color class, one whole slot
// of an h-relation factor, or a whole slot replayed from the fingerprint
// cache. See ExecuteStream.
type StreamedSlot = core.StreamedSlot

// coreStream is the incremental planner behind a PlanStream: the Theorem 2
// per-color-class stream (core.PlanStream) or the per-factor h-relation
// stream (core.HRelationStream). Both deliver StreamedSlots and assemble
// the identical *Plan their batch counterparts produce.
type coreStream interface {
	Next() (core.StreamedSlot, bool)
	Collect() (*core.Plan, error)
	Plan() *core.Plan
	Err() error
	FragmentCount() int
	SlotCount() int
}

var (
	_ coreStream = (*core.PlanStream)(nil)
	_ coreStream = (*core.HRelationStream)(nil)
)

// PlanStream is an in-progress routing plan whose schedule is delivered
// incrementally: the first slot fragment is ready after a single color
// class (or, for h-relation workloads, a single König factor) has been
// peeled, long before the full factorization behind a batch Execute call
// completes. Drive it with Next, or Collect the remaining fragments into
// the finished *Plan — byte identical to what Execute would have returned
// for the same workload.
//
// Ownership contract: a live stream owns one of its Planner's worker
// planners. The worker returns to the pool when the stream is exhausted
// (Next returned false, or Collect was called), when the stream fails —
// including context cancellation, whose ctx.Err() surfaces through Err —
// or when an abandoned stream is Closed. Callers that stop consuming a
// stream early MUST call Close, or the worker planner leaks from the free
// list for the stream's lifetime. Close is idempotent and safe after
// exhaustion.
//
// A PlanStream is not safe for concurrent use, but different streams of one
// Planner — and concurrent Route/RouteBatch calls — are independent.
type PlanStream struct {
	p      *Planner
	worker *core.Planner
	cs     coreStream

	// Cache-hit replay state: the memoized plan is emitted as one
	// whole-slot fragment per schedule slot, no worker needed.
	plan      *Plan
	cached    bool
	replayIdx int

	// Memoization key (valid when hasKey): the workload cache key and kind.
	// nocache marks streams that are never memoized (one-to-all replay).
	ckey    uint64
	ckind   uint8
	hasKey  bool
	nocache bool

	collected bool // Collect ran (and, with WithVerify, the replay passed)
	err       error
	done      bool
	total     int

	// Plan-time observation state of incremental streams: the span carried
	// by the ExecuteStream ctx and the stream's start time. obsStart is
	// non-zero only for streams that still owe a PlanObserver notification
	// (materialized streams — cache hits, broadcasts, fault plans — were
	// observed at ExecuteStream time).
	span     *obs.Span
	obsStart time.Time
}

// RouteStream begins streaming the Theorem 2 routing of pi.
//
// Deprecated: use ExecuteStream with a Permutation workload, which also
// carries a context for cancellation. RouteStream remains a thin wrapper
// over it and behaves identically.
func (p *Planner) RouteStream(pi []int) (*PlanStream, error) {
	return p.ExecuteStream(context.Background(), Permutation(pi))
}

// Next emits the next slot fragment; ok is false once the stream is
// exhausted (the assembled plan is then available from Collect) or has
// failed (see Err). Fragments alias the final plan's schedule storage and
// must not be modified. Fragment granularity is one color class per
// fragment for permutation workloads, one whole slot for h-relation
// workloads and cache-hit replays; either way the fragments of one slot
// tile it exactly, and Final marks each slot's last fragment.
func (ps *PlanStream) Next() (StreamedSlot, bool) {
	if ps.done || ps.err != nil {
		return StreamedSlot{}, false
	}
	if ps.cs == nil {
		slots := ps.plan.Schedule().Slots
		if ps.replayIdx >= len(slots) {
			ps.finish()
			return StreamedSlot{}, false
		}
		i := ps.replayIdx
		ps.replayIdx++
		slot := &slots[i]
		return StreamedSlot{Slot: i, Color: -1, Final: true, Sends: slot.Sends, Recvs: slot.Recvs}, true
	}
	frag, ok := ps.cs.Next()
	if !ok {
		ps.err = ps.cs.Err()
		ps.plan = ps.cs.Plan()
		ps.finish()
		return StreamedSlot{}, false
	}
	return frag, true
}

// Collect drains the remaining fragments and returns the finished plan,
// byte identical to Execute's result for the same workload (golden-pinned
// by the package tests). Like Execute, a collected plan is memoized in the
// fingerprint cache. With WithVerify the completed schedule is replayed on
// the simulator first. Collect on a Closed (abandoned) stream returns an
// error: its worker planner is already back in the pool.
func (ps *PlanStream) Collect() (*Plan, error) {
	if ps.done {
		// Exhausted (plan ready), failed (sticky error), or abandoned via
		// Close — never touch the released worker again. A Next-drained
		// plan still owes its WithVerify replay and memoization: both need
		// only the finished plan, not the worker.
		if ps.err != nil {
			return nil, ps.err
		}
		if ps.plan == nil {
			return nil, errors.New("pops: plan stream closed before completion")
		}
		if ps.p.opts.Verify && !ps.collected && !ps.cached {
			ps.span.Begin(obs.PhaseVerify)
			if _, err := ps.plan.Verify(); err != nil {
				ps.err = fmt.Errorf("pops: schedule failed verification: %w", err)
				return nil, ps.err
			}
			ps.span.End()
			ps.collected = true
			ps.memoize()
		}
		return ps.plan, nil
	}
	if ps.cs == nil {
		// Cache hit (or broadcast): the plan is already materialized (and
		// was verified by whichever call originally planned it).
		ps.replayIdx = ps.plan.SlotCount()
		ps.finish()
		return ps.plan, nil
	}
	plan, err := ps.cs.Collect()
	if err != nil {
		ps.err = err
	} else {
		ps.collected = true
	}
	ps.plan = plan
	ps.finish()
	return plan, err
}

// Close releases the stream's worker planner back to the pool without
// draining the remaining fragments. Abandoning a stream without Close
// leaks its worker from the free list. Idempotent; safe after exhaustion.
func (ps *PlanStream) Close() { ps.finish() }

// finish is the single release point: it returns the worker to the pool
// exactly once and memoizes a successfully completed plan.
func (ps *PlanStream) finish() {
	if ps.done {
		return
	}
	ps.done = true
	if ps.worker != nil {
		ps.p.release(ps.worker)
		ps.worker = nil
	}
	ps.memoize()
	if !ps.obsStart.IsZero() && ps.err == nil && ps.plan != nil {
		ps.p.observePlan(ps.plan.Strategy, false, ps.obsStart)
		ps.obsStart = time.Time{}
	}
}

// memoize caches a successfully completed plan like Execute would — except
// a Next-drained stream under WithVerify, whose plan has not been replayed
// yet: cached plans must be as trustworthy as Execute's, so memoization
// waits for the Collect that performs the replay.
func (ps *PlanStream) memoize() {
	if ps.p.cache == nil || !ps.hasKey || ps.nocache || ps.cached {
		return
	}
	verifiedEnough := !ps.p.opts.Verify || ps.collected
	if ps.err == nil && ps.plan != nil && verifiedEnough {
		ps.p.cache.put(ps.ckey, ps.ckind, cacheIdentFor(ps.ckind, ps.plan), ps.plan)
	}
}

// Err returns the stream's sticky planning error, if any — including the
// context error when the stream's ctx was cancelled mid-flight.
func (ps *PlanStream) Err() error { return ps.err }

// Cached reports whether the stream replays a fingerprint-cache hit rather
// than planning incrementally.
func (ps *PlanStream) Cached() bool { return ps.cached }

// Strategy reports the routing strategy of the streamed plan. Materialized
// streams (cache hits, broadcasts, fault-repaired plans) read it off the
// finished plan; incremental streams read it off the plan under assembly.
func (ps *PlanStream) Strategy() string {
	if ps.plan != nil {
		return ps.plan.Strategy
	}
	if ps.cs != nil {
		if p := ps.cs.Plan(); p != nil {
			return p.Strategy
		}
	}
	return StrategyTheoremTwo
}

// SlotCount returns the number of slots of the final schedule, known before
// any fragment is produced.
func (ps *PlanStream) SlotCount() int {
	if ps.cs != nil {
		return ps.cs.SlotCount()
	}
	return ps.plan.SlotCount()
}

// FragmentCount returns how many fragments the stream will emit in total.
func (ps *PlanStream) FragmentCount() int { return ps.total }
