package pops

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"pops/internal/wire"
)

// shedThenServe answers the first n /route posts with a 429 overload
// verdict carrying retryAfter, then serves real plans.
func shedThenServe(t *testing.T, n int, retryAfter time.Duration) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			w.Header().Set("Retry-After", "1")
			w.Header().Set(wire.HeaderRetryAfterMs, strconv.FormatInt(retryAfter.Milliseconds(), 10))
			w.Header().Set(wire.HeaderOverloadQueue, "admission")
			w.Header().Set(wire.HeaderTenant, "bronze")
			http.Error(w, "pops: overloaded", http.StatusTooManyRequests)
			return
		}
		var req wire.RouteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := wire.RouteResponse{D: req.D, G: req.G, Plans: []wire.PlanResult{{Slots: 1}}}
		json.NewEncoder(w).Encode(&resp)
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// TestClientRetrySchedule pins the full backoff schedule: the pause before
// retry k is BaseBackoff<<k, raised to the server's Retry-After hint, capped
// at MaxBackoff — with jitter and sleeping injected so nothing is timed.
func TestClientRetrySchedule(t *testing.T) {
	srv, calls := shedThenServe(t, 4, 40*time.Millisecond)
	var slept []time.Duration
	c := NewServiceClient(srv.URL, nil).WithRetry(RetryPolicy{
		MaxRetries:  4,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  60 * time.Millisecond,
	})
	c.jitter = func(d time.Duration) time.Duration { return d } // identity: pin the schedule
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}

	if _, err := c.Route(context.Background(), 4, 4, []int{0, 1, 2, 3}); err != nil {
		t.Fatalf("Route after retries: %v", err)
	}
	if got := calls.Load(); got != 5 {
		t.Fatalf("server saw %d calls, want 5 (1 + 4 retries)", got)
	}
	// Attempt 0: base 10ms raised to the 40ms hint. Attempt 1: 20ms → 40ms.
	// Attempt 2: 40ms. Attempt 3: 80ms capped at 60ms.
	want := []time.Duration{40 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond, 60 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("pause %d = %v, want %v (schedule %v)", i, slept[i], want[i], slept)
		}
	}
}

// TestClientRetryExhaustion asserts the typed verdict surfaces once retries
// run out, with the server's pacing hint intact for the caller.
func TestClientRetryExhaustion(t *testing.T) {
	srv, calls := shedThenServe(t, 100, 25*time.Millisecond)
	c := NewServiceClient(srv.URL, nil).WithRetry(RetryPolicy{MaxRetries: 2})
	c.jitter = func(d time.Duration) time.Duration { return d }
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }

	_, err := c.Route(context.Background(), 4, 4, []int{0, 1, 2, 3})
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v, want *OverloadError", err)
	}
	if oe.RetryAfter != 25*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 25ms", oe.RetryAfter)
	}
	if oe.Tenant != "bronze" || oe.Queue != "admission" {
		t.Fatalf("verdict = %+v, want tenant bronze / queue admission", oe)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestClientRetryRespectsDeadline: a pause that would outlive the request
// deadline is never taken — the overload verdict returns immediately, and a
// request whose context is already done is not replayed at all.
func TestClientRetryRespectsDeadline(t *testing.T) {
	srv, calls := shedThenServe(t, 100, 10*time.Second)
	c := NewServiceClient(srv.URL, nil).WithRetry(RetryPolicy{MaxRetries: 5, MaxBackoff: time.Minute})
	c.jitter = func(d time.Duration) time.Duration { return d }
	c.sleep = func(ctx context.Context, d time.Duration) error {
		t.Fatalf("slept %v past the request deadline", d)
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err := c.Route(ctx, 4, 4, []int{0, 1, 2, 3})
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v, want *OverloadError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry fits a 1s deadline against a 10s hint)", got)
	}
}

// TestClientNoRetryOnDeterministicError: a 400 is not an overload and must
// not burn retries.
func TestClientNoRetryOnDeterministicError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "pops: d must be positive", http.StatusBadRequest)
	}))
	t.Cleanup(srv.Close)
	c := NewServiceClient(srv.URL, nil).WithRetry(RetryPolicy{MaxRetries: 5})
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }

	if _, err := c.Route(context.Background(), 0, 4, nil); err == nil {
		t.Fatal("want error from 400")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (deterministic errors never retry)", got)
	}
}

// TestClientStreamRetriesAtAdmissionOnly: a shed stream open (429 before
// meta) retries; the eventually-opened stream then plays out normally.
func TestClientStreamRetriesAtAdmissionOnly(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set(wire.HeaderRetryAfterMs, "5")
			w.Header().Set(wire.HeaderOverloadQueue, "stream")
			http.Error(w, "pops: overloaded", http.StatusTooManyRequests)
			return
		}
		enc := json.NewEncoder(w)
		enc.Encode(wire.StreamRecord{Type: "meta", Meta: &wire.StreamMeta{D: 4, G: 4, Slots: 1}})
		enc.Encode(wire.StreamRecord{Type: "slot", Slot: &wire.StreamSlot{Slot: 0}})
		enc.Encode(wire.StreamRecord{Type: "done", Done: &wire.StreamDone{Slots: 1}})
	}))
	t.Cleanup(srv.Close)
	c := NewServiceClient(srv.URL, nil).WithRetry(RetryPolicy{MaxRetries: 2})
	c.jitter = func(d time.Duration) time.Duration { return d }
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }

	st, err := c.RouteStream(context.Background(), 4, 4, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatalf("RouteStream after shed: %v", err)
	}
	defer st.Close()
	if st.Meta().Slots != 1 {
		t.Fatalf("meta slots = %d, want 1", st.Meta().Slots)
	}
	for {
		slot, err := st.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if slot == nil {
			break
		}
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

// TestClientSendsDeadlineAndTenantHeaders pins the propagation headers the
// serving side sheds on.
func TestClientSendsDeadlineAndTenantHeaders(t *testing.T) {
	var gotDeadline, gotTenant atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotDeadline.Store(r.Header.Get(wire.HeaderDeadline))
		gotTenant.Store(r.Header.Get(wire.HeaderTenant))
		json.NewEncoder(w).Encode(wire.RouteResponse{D: 4, G: 4, Plans: []wire.PlanResult{{Slots: 1}}})
	}))
	t.Cleanup(srv.Close)
	c := NewServiceClient(srv.URL, nil)

	deadline := time.Now().Add(30 * time.Second)
	ctx, cancel := context.WithDeadline(ContextWithTenant(context.Background(), "gold"), deadline)
	defer cancel()
	if _, err := c.Route(ctx, 4, 4, []int{0, 1, 2, 3}); err != nil {
		t.Fatalf("Route: %v", err)
	}
	if got := gotTenant.Load(); got != "gold" {
		t.Fatalf("X-Tenant = %q, want gold", got)
	}
	hdr, _ := gotDeadline.Load().(string)
	parsed, err := wire.ParseDeadline(hdr)
	if err != nil {
		t.Fatalf("X-Deadline %q: %v", hdr, err)
	}
	if d := parsed.Sub(deadline); d > time.Millisecond || d < -time.Millisecond {
		t.Fatalf("X-Deadline decoded to %v, want %v", parsed, deadline)
	}
}
