package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"pops"
	"pops/internal/popsnet"
	"pops/internal/wire"
	"pops/internal/wirebin"
)

// TestServeSmoke is the end-to-end smoke `make serve-smoke` runs: start
// popsserved on an ephemeral port, route one permutation through the Go
// client, route it again, and assert the second answer came from the
// fingerprint plan cache (both on the plan's cached flag and the /stats hit
// counter), then shut down gracefully.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-batch-delay", "200us"}, testWriter{t}, ready)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	client := pops.NewServiceClient("http://"+addr.String(), nil)
	if err := client.Healthz(ctx); err != nil {
		t.Fatal(err)
	}

	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)
	first, err := client.Route(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first route reported a cache hit")
	}
	if first.Slots != pops.OptimalSlots(d, g) {
		t.Fatalf("slots = %d, want %d", first.Slots, pops.OptimalSlots(d, g))
	}
	second, err := client.Route(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second route of the same permutation was not a cache hit")
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits < 1 {
		t.Fatalf("stats.cache_hits = %d, want ≥ 1", stats.CacheHits)
	}
	if stats.ShardCount != 1 || stats.Requests != 2 {
		t.Fatalf("stats = %+v, want 1 shard, 2 requests", stats)
	}

	// Graceful shutdown must complete promptly.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain within 15s")
	}
}

// startServer boots popsserved on an ephemeral port and returns its
// address, the cancel that triggers graceful shutdown (the SIGINT path),
// and the channel run's error arrives on.
func startServer(t *testing.T, args ...string) (net.Addr, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), testWriter{t}, ready)
	}()
	select {
	case addr := <-ready:
		return addr, cancel, done
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	return nil, nil, nil
}

// TestServeSmokeStream is the streaming smoke `make serve-smoke` also runs:
// it speaks raw HTTP/1.1 over TCP to POST /route/stream so it can parse the
// chunked transfer encoding itself, asserting that the slot records really
// arrive as multiple separate chunks (one per server-side flush) — the
// pipelining property, not just the payload — and that the NDJSON records
// reassemble into meta + slots + done.
func TestServeSmokeStream(t *testing.T) {
	addr, cancel, done := startServer(t)

	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)
	body, err := json.Marshal(wire.RouteRequest{D: d, G: g, Pi: pi})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialTimeout("tcp", addr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	fmt.Fprintf(conn, "POST /route/stream HTTP/1.1\r\nHost: popsserved\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body), body)

	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("status line %q", strings.TrimSpace(status))
	}
	chunked := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		if strings.EqualFold(line, "Transfer-Encoding: chunked") {
			chunked = true
		}
	}
	if !chunked {
		t.Fatal("response is not chunked")
	}

	// Parse the chunked framing by hand, counting the chunks.
	var payload []byte
	chunks := 0
	for {
		sizeLine, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		size, err := strconv.ParseUint(strings.TrimSpace(sizeLine), 16, 32)
		if err != nil {
			t.Fatalf("chunk size line %q: %v", strings.TrimSpace(sizeLine), err)
		}
		if size == 0 {
			break
		}
		chunks++
		buf := make([]byte, size+2) // chunk data + trailing CRLF
		if _, err := io.ReadFull(br, buf); err != nil {
			t.Fatal(err)
		}
		payload = append(payload, buf[:size]...)
	}
	if chunks < 2 {
		t.Fatalf("stream arrived in %d chunk(s); want >= 2 (one per flushed record)", chunks)
	}

	// The concatenated NDJSON must be meta, slot records, done.
	lines := strings.Split(strings.TrimSpace(string(payload)), "\n")
	var meta wire.StreamRecord
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil || meta.Type != "meta" || meta.Meta == nil {
		t.Fatalf("first record %q (err %v)", lines[0], err)
	}
	if meta.Meta.Slots != pops.OptimalSlots(d, g) {
		t.Fatalf("meta.slots = %d, want %d", meta.Meta.Slots, pops.OptimalSlots(d, g))
	}
	slotRecords := 0
	for _, line := range lines[1 : len(lines)-1] {
		var rec wire.StreamRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.Type != "slot" || rec.Slot == nil {
			t.Fatalf("slot record %q (err %v)", line, err)
		}
		slotRecords++
	}
	if slotRecords != meta.Meta.Fragments {
		t.Fatalf("%d slot records, meta promised %d", slotRecords, meta.Meta.Fragments)
	}
	var doneRec wire.StreamRecord
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &doneRec); err != nil || doneRec.Type != "done" {
		t.Fatalf("last record %q (err %v)", lines[len(lines)-1], err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain within 15s")
	}
}

// TestServeSmokeStreamBinary repeats the raw-TCP streaming smoke with the
// binary framing negotiated via Accept: the response must carry the
// application/x-pops-bin Content-Type, still arrive as >= 2 separate HTTP
// chunks (the pipelining property is codec-independent), and the
// concatenated chunk payload must decode as meta + slot frames + done.
func TestServeSmokeStreamBinary(t *testing.T) {
	addr, cancel, done := startServer(t)

	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)
	body, err := json.Marshal(wire.RouteRequest{D: d, G: g, Pi: pi})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialTimeout("tcp", addr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	fmt.Fprintf(conn, "POST /route/stream HTTP/1.1\r\nHost: popsserved\r\nContent-Type: application/json\r\nAccept: %s\r\nContent-Length: %d\r\n\r\n%s", wirebin.ContentType, len(body), body)

	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("status line %q", strings.TrimSpace(status))
	}
	chunked, binaryCT := false, false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		if strings.EqualFold(line, "Transfer-Encoding: chunked") {
			chunked = true
		}
		if strings.EqualFold(line, "Content-Type: "+wirebin.ContentType) {
			binaryCT = true
		}
	}
	if !chunked {
		t.Fatal("response is not chunked")
	}
	if !binaryCT {
		t.Fatalf("response did not negotiate Content-Type %s", wirebin.ContentType)
	}

	// Parse the chunked framing by hand, counting the chunks.
	var payload []byte
	chunks := 0
	for {
		sizeLine, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		size, err := strconv.ParseUint(strings.TrimSpace(sizeLine), 16, 32)
		if err != nil {
			t.Fatalf("chunk size line %q: %v", strings.TrimSpace(sizeLine), err)
		}
		if size == 0 {
			break
		}
		chunks++
		buf := make([]byte, size+2) // chunk data + trailing CRLF
		if _, err := io.ReadFull(br, buf); err != nil {
			t.Fatal(err)
		}
		payload = append(payload, buf[:size]...)
	}
	if chunks < 2 {
		t.Fatalf("stream arrived in %d chunk(s); want >= 2 (one per flushed frame)", chunks)
	}

	// The concatenated frames must be meta, slot frames, done.
	dec := wirebin.NewDecoder(bytes.NewReader(payload))
	var meta wire.StreamMeta
	slotFrames, sawDone := 0, false
	first := true
	for {
		typ, framePayload, err := dec.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if first && typ != wirebin.FrameMeta {
			t.Fatalf("first frame type %d, want meta", typ)
		}
		first = false
		switch typ {
		case wirebin.FrameMeta:
			if err := wirebin.DecodeMeta(framePayload, &meta); err != nil {
				t.Fatal(err)
			}
		case wirebin.FrameSlot:
			slotFrames++
		case wirebin.FrameDone:
			sawDone = true
		default:
			t.Fatalf("unexpected frame type %d", typ)
		}
	}
	if meta.Slots != pops.OptimalSlots(d, g) {
		t.Fatalf("meta.slots = %d, want %d", meta.Slots, pops.OptimalSlots(d, g))
	}
	if slotFrames != meta.Fragments {
		t.Fatalf("%d slot frames, meta promised %d", slotFrames, meta.Fragments)
	}
	if !sawDone {
		t.Fatal("stream ended without a done frame")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain within 15s")
	}
}

// TestServeSmokeStreamHRelation rounds an h-relation workload through
// POST /route/stream: raw HTTP/1.1 over TCP so the chunked framing can be
// counted (the slot records must arrive as >= 2 separate flushes while the
// server is still peeling later König factors), then the identical workload
// again through the Go client, asserting the replay is answered by the
// shard's workload plan cache.
func TestServeSmokeStreamHRelation(t *testing.T) {
	addr, cancel, done := startServer(t)

	const d, g, h = 4, 8, 2
	n := d * g
	var reqs []wire.Request
	for k := 0; k < h; k++ {
		for s := 0; s < n; s++ {
			reqs = append(reqs, wire.Request{Src: s, Dst: (s + k + 1) % n})
		}
	}
	body, err := json.Marshal(wire.RouteRequest{D: d, G: g, Workload: wire.WorkloadHRelation, Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialTimeout("tcp", addr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	fmt.Fprintf(conn, "POST /route/stream HTTP/1.1\r\nHost: popsserved\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body), body)

	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("status line %q", strings.TrimSpace(status))
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(line) == "" {
			break
		}
	}

	// Parse the chunked framing by hand, counting the flushes.
	var payload []byte
	chunks := 0
	for {
		sizeLine, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		size, err := strconv.ParseUint(strings.TrimSpace(sizeLine), 16, 32)
		if err != nil {
			t.Fatalf("chunk size line %q: %v", strings.TrimSpace(sizeLine), err)
		}
		if size == 0 {
			break
		}
		chunks++
		buf := make([]byte, size+2) // chunk data + trailing CRLF
		if _, err := io.ReadFull(br, buf); err != nil {
			t.Fatal(err)
		}
		payload = append(payload, buf[:size]...)
	}
	if chunks < 2 {
		t.Fatalf("h-relation stream arrived in %d chunk(s); want >= 2 (one per flushed record)", chunks)
	}

	lines := strings.Split(strings.TrimSpace(string(payload)), "\n")
	var meta wire.StreamRecord
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil || meta.Type != "meta" || meta.Meta == nil {
		t.Fatalf("first record %q (err %v)", lines[0], err)
	}
	wantSlots := h * pops.OptimalSlots(d, g)
	if meta.Meta.Workload != wire.WorkloadHRelation || meta.Meta.Slots != wantSlots || meta.Meta.Cached {
		t.Fatalf("meta = %+v, want workload %q with %d uncached slots", *meta.Meta, wire.WorkloadHRelation, wantSlots)
	}
	slotRecords := 0
	for _, line := range lines[1 : len(lines)-1] {
		var rec wire.StreamRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.Type != "slot" || rec.Slot == nil {
			t.Fatalf("slot record %q (err %v)", line, err)
		}
		slotRecords++
	}
	if slotRecords != meta.Meta.Fragments {
		t.Fatalf("%d slot records, meta promised %d", slotRecords, meta.Meta.Fragments)
	}
	var doneRec wire.StreamRecord
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &doneRec); err != nil || doneRec.Type != "done" {
		t.Fatalf("last record %q (err %v)", lines[len(lines)-1], err)
	}

	// Replay the identical workload through the Go client: the stream must
	// be answered from the shard's workload plan cache.
	client := pops.NewServiceClient("http://"+addr.String(), nil)
	popsReqs := make([]pops.Request, len(reqs))
	for i, r := range reqs {
		popsReqs[i] = pops.Request{Src: r.Src, Dst: r.Dst}
	}
	st, err := client.ExecuteStream(context.Background(), d, g, pops.HRelation(popsReqs))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Meta().Cached {
		t.Fatal("replayed h-relation stream was not a cache hit")
	}
	replayed := 0
	for {
		rec, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			break
		}
		replayed++
	}
	if replayed != wantSlots {
		t.Fatalf("replay delivered %d slots, want %d", replayed, wantSlots)
	}
	st.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain within 15s")
	}
}

// TestGracefulDrainFinishesStreams opens a slot stream, consumes only its
// first record, signals shutdown, and then asserts every remaining slot —
// and the done record — still arrives before the server exits: graceful
// drain must finish in-flight streams, not just micro-batches.
func TestGracefulDrainFinishesStreams(t *testing.T) {
	addr, cancel, done := startServer(t)
	client := pops.NewServiceClient("http://"+addr.String(), nil)

	const d, g = 8, 16 // 2·max(d,g) = 32 fragments: plenty left after the signal
	pi := pops.VectorReversal(d * g)
	st, err := client.RouteStream(context.Background(), d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if rec, err := st.Next(); err != nil || rec == nil {
		t.Fatalf("first fragment: %v %v", rec, err)
	}

	cancel() // SIGINT path: listener stops, drain begins with our stream open

	got := 1
	for {
		rec, err := st.Next()
		if err != nil {
			t.Fatalf("fragment %d after shutdown began: %v", got, err)
		}
		if rec == nil {
			break
		}
		got++
	}
	if got != st.Meta().Fragments {
		t.Fatalf("drained %d of %d fragments after signal", got, st.Meta().Fragments)
	}
	if st.Done() == nil {
		t.Fatal("no done record after drain")
	}
	st.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit after draining the stream")
	}
}

// TestDrainTimeoutBoundsWedgedConnection pins the -drain-timeout contract:
// a connection that can never finish — here a request whose body never
// arrives — must not hold graceful shutdown open past the deadline. The
// server force-closes it, exits, and reports the blown deadline.
func TestDrainTimeoutBoundsWedgedConnection(t *testing.T) {
	addr, cancel, done := startServer(t, "-drain-timeout", "300ms")

	// Wedge a connection: claim a large body, send one byte, go silent. The
	// handler blocks decoding the request body, keeping the connection
	// active through shutdown.
	conn, err := net.DialTimeout("tcp", addr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /route HTTP/1.1\r\nHost: popsserved\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n{")
	time.Sleep(200 * time.Millisecond) // let the request reach the handler

	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("shutdown with a wedged connection returned %v, want the blown drain deadline", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("wedged connection held shutdown past the drain deadline")
	}
	if waited := time.Since(start); waited < 250*time.Millisecond {
		t.Fatalf("server exited after %s, before the 300ms drain deadline", waited)
	}

	// The force-close must reach the wedged peer: its next read fails.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(conn, buf); err == nil {
		// A byte may arrive if the server wrote an error response before
		// closing; the connection must still be torn down right after.
		if _, err := io.Copy(io.Discard, conn); err == nil {
			t.Log("server wrote a response before closing the wedged connection")
		}
	}
}

// TestRunRejectsBadFlags pins flag-parse failures to an error, not an
// os.Exit deep in the run path.
func TestRunRejectsBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-batch", "x"}, testWriter{t}, nil)
	if err == nil {
		t.Fatal("bad flags accepted")
	}
}

// TestRunFailsOnUnusableAddr covers the listen error path.
func TestRunFailsOnUnusableAddr(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, testWriter{t}, nil)
	if err == nil {
		t.Fatal("unusable address accepted")
	}
}

// testWriter routes the server's stdout lines into the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// TestFaultSmoke is the end-to-end fault-tolerance smoke `make fault-smoke`
// runs: round-trip a FaultyPermutation workload through a live popsserved,
// verify the returned schedule on the fault-injected simulator (full delivery,
// zero dead-coupler use), replay it for a cache hit, read the fault counters
// off /stats, and assert a dead-group request comes back as a typed
// *pops.UnroutableError across the wire.
func TestFaultSmoke(t *testing.T) {
	addr, cancel, done := startServer(t, "-batch-delay", "200us")
	ctx := context.Background()
	client := pops.NewServiceClient("http://"+addr.String(), nil)

	const d, g = 3, 4
	pi := pops.VectorReversal(d * g)
	faults := &wire.FaultSet{Couplers: []wire.Coupler{{B: 1, A: 2}, {B: 3, A: 0}, {B: 0, A: 0}}}

	resp, err := client.Do(ctx, &pops.ServiceRouteRequest{
		D: d, G: g, Workload: wire.WorkloadFaultyPermutation,
		Pi: pi, Faults: faults, IncludeSchedule: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Plans) != 1 || resp.Plans[0].Error != "" {
		t.Fatalf("route response: %+v", resp.Plans)
	}
	plan := resp.Plans[0]
	if plan.Workload != wire.WorkloadFaultyPermutation || plan.Strategy != pops.StrategyFaulty {
		t.Fatalf("plan tags: workload=%q strategy=%q", plan.Workload, plan.Strategy)
	}
	if plan.Schedule == nil {
		t.Fatal("no schedule despite include_schedule")
	}

	// The served schedule is the oracle: replay it on the fault-injected
	// simulator and scan every send against the dead set.
	nw, err := popsnet.NewNetwork(d, g)
	if err != nil {
		t.Fatal(err)
	}
	fs := popsnet.FaultSet{Couplers: []popsnet.Coupler{{B: 1, A: 2}, {B: 3, A: 0}, {B: 0, A: 0}}}
	fn, err := fs.Compile(nw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := popsnet.VerifyPermutationRoutedFaulty(plan.Schedule, pi, fn); err != nil {
		t.Fatalf("served schedule failed fault replay: %v", err)
	}
	for i, slot := range plan.Schedule.Slots {
		for _, snd := range slot.Sends {
			if fn.Dead(snd.DestGroup, nw.Group(snd.Src)) {
				t.Fatalf("served slot %d drives dead coupler c(%d,%d)", i, snd.DestGroup, nw.Group(snd.Src))
			}
		}
	}

	// The identical workload through the typed client is a fingerprint-cache
	// hit on the same shard.
	replay, err := client.Execute(ctx, d, g, pops.FaultyPermutation(pi, fs))
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Cached {
		t.Fatal("replayed fault workload was not a cache hit")
	}

	// A dead group severs every permutation: the verdict must round-trip as
	// a typed *pops.UnroutableError, not a string.
	_, err = client.Execute(ctx, d, g, pops.FaultyPermutation(pi, pops.FaultSet{Groups: []int{2}}))
	var ue *pops.UnroutableError
	if !errors.As(err, &ue) {
		t.Fatalf("dead-group request: error = %v, want *pops.UnroutableError", err)
	}
	if !ue.SeveredSrc && !ue.SeveredDst {
		t.Fatalf("unroutable verdict not marked severed: %+v", ue)
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FaultPlans != 3 {
		t.Fatalf("stats.fault_plans = %d, want 3", stats.FaultPlans)
	}
	if stats.Unroutable != 1 {
		t.Fatalf("stats.unroutable = %d, want 1", stats.Unroutable)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain within 15s")
	}
}
