package main

import (
	"context"
	"net"
	"testing"
	"time"

	"pops"
)

// TestServeSmoke is the end-to-end smoke `make serve-smoke` runs: start
// popsserved on an ephemeral port, route one permutation through the Go
// client, route it again, and assert the second answer came from the
// fingerprint plan cache (both on the plan's cached flag and the /stats hit
// counter), then shut down gracefully.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-batch-delay", "200us"}, testWriter{t}, ready)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	client := pops.NewServiceClient("http://"+addr.String(), nil)
	if err := client.Healthz(ctx); err != nil {
		t.Fatal(err)
	}

	const d, g = 4, 8
	pi := pops.VectorReversal(d * g)
	first, err := client.Route(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first route reported a cache hit")
	}
	if first.Slots != pops.OptimalSlots(d, g) {
		t.Fatalf("slots = %d, want %d", first.Slots, pops.OptimalSlots(d, g))
	}
	second, err := client.Route(ctx, d, g, pi)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second route of the same permutation was not a cache hit")
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits < 1 {
		t.Fatalf("stats.cache_hits = %d, want ≥ 1", stats.CacheHits)
	}
	if stats.ShardCount != 1 || stats.Requests != 2 {
		t.Fatalf("stats = %+v, want 1 shard, 2 requests", stats)
	}

	// Graceful shutdown must complete promptly.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain within 15s")
	}
}

// TestRunRejectsBadFlags pins flag-parse failures to an error, not an
// os.Exit deep in the run path.
func TestRunRejectsBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-batch", "x"}, testWriter{t}, nil)
	if err == nil {
		t.Fatal("bad flags accepted")
	}
}

// TestRunFailsOnUnusableAddr covers the listen error path.
func TestRunFailsOnUnusableAddr(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, testWriter{t}, nil)
	if err == nil {
		t.Fatal("unusable address accepted")
	}
}

// testWriter routes the server's stdout lines into the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
